package webmeasure

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// benchCrawlFile is where `make bench-crawl` (cmd/benchcrawl via
// scripts/bench_crawl.sh) records the site-parallel crawl measurements.
const benchCrawlFile = "BENCH_crawl.json"

type benchCrawlCase struct {
	Name    string  `json:"name"`
	Mode    string  `json:"mode"`
	Workers int     `json:"site_workers"`
	Faults  string  `json:"faults"`
	Sites   int     `json:"sites"`
	Visits  int     `json:"visits"`
	Bytes   int64   `json:"bytes"`
	WallMS  float64 `json:"wall_ms"`
	RSSKB   int64   `json:"max_rss_kb"`
}

type benchCrawlSummary struct {
	Faults      string  `json:"faults"`
	WallW1MS    float64 `json:"wall_w1_ms"`
	WallW4MS    float64 `json:"wall_w4_ms"`
	WallW8MS    float64 `json:"wall_w8_ms"`
	SpeedupW4   float64 `json:"speedup_w4"`
	SpeedupW8   float64 `json:"speedup_w8"`
	StreamRSS   int64   `json:"stream_rss_kb"`
	BufferedRSS int64   `json:"buffered_rss_kb"`
	RSSRatio    float64 `json:"rss_ratio"`
}

// TestBenchCrawlJSONWellFormed guards the shape of BENCH_crawl.json so a
// broken benchcrawl run can't silently record garbage. The file is a
// build artifact, not a source file, so the test skips when it hasn't
// been generated (tier-1 stays independent of `make bench-crawl`).
func TestBenchCrawlJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile(benchCrawlFile)
	if os.IsNotExist(err) {
		t.Skipf("%s not generated; run `make bench-crawl`", benchCrawlFile)
	}
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		GoMaxProcs int                 `json:"gomaxprocs"`
		Sites      int                 `json:"sites"`
		Pages      int                 `json:"pages"`
		Cases      []benchCrawlCase    `json:"cases"`
		Summary    []benchCrawlSummary `json:"summary"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid JSON: %v", benchCrawlFile, err)
	}
	if doc.GoMaxProcs <= 0 || doc.Sites <= 0 || doc.Pages <= 0 {
		t.Fatalf("%s misses run parameters: gomaxprocs=%d sites=%d pages=%d",
			benchCrawlFile, doc.GoMaxProcs, doc.Sites, doc.Pages)
	}
	if len(doc.Cases) == 0 || len(doc.Summary) == 0 {
		t.Fatalf("%s holds %d cases and %d summary rows, want both non-empty",
			benchCrawlFile, len(doc.Cases), len(doc.Summary))
	}
	seen := map[string]benchCrawlCase{}
	var visitsByFaults = map[string]int{}
	for _, c := range doc.Cases {
		if c.Name == "" {
			t.Error("case with empty name")
		}
		if _, dup := seen[c.Name]; dup {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = c
		if c.WallMS <= 0 || c.Bytes <= 0 || c.Visits <= 0 || c.RSSKB <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", c.Name, c)
		}
		// Parallel determinism shows up in the benchmark too: every
		// worker count (and both modes) of one fault profile crawls the
		// same universe, so visit counts and output bytes must agree.
		if prev, ok := visitsByFaults[c.Faults]; ok && prev != c.Visits {
			t.Errorf("%s: %d visits, other cases of faults=%q saw %d — the crawl is not worker-invariant",
				c.Name, c.Visits, c.Faults, prev)
		}
		visitsByFaults[c.Faults] = c.Visits
	}
	for _, s := range doc.Summary {
		for _, w := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("stream/w%d/%s", w, s.Faults)
			if _, ok := seen[name]; !ok {
				t.Errorf("%s records no case %q", benchCrawlFile, name)
			}
		}
		if _, ok := seen[fmt.Sprintf("buffered/w4/%s", s.Faults)]; !ok {
			t.Errorf("%s records no buffered baseline for faults=%s", benchCrawlFile, s.Faults)
		}
		if s.WallW1MS <= 0 || s.WallW4MS <= 0 || s.WallW8MS <= 0 {
			t.Errorf("faults=%s: non-positive wall times: %+v", s.Faults, s)
			continue
		}
		// Wall speedup is machine-dependent (it scales with GOMAXPROCS,
		// which the file records), so assert only sanity here; the
		// streaming-vs-buffered memory gap is a property of the pipeline
		// and must show on any machine.
		if s.SpeedupW4 <= 0 || s.SpeedupW8 <= 0 {
			t.Errorf("faults=%s: non-positive speedup: %+v", s.Faults, s)
		}
		if doc.GoMaxProcs >= 4 && s.SpeedupW4 < 2 {
			t.Errorf("faults=%s: 4 site workers on %d procs reach only %.2fx over 1 worker",
				s.Faults, doc.GoMaxProcs, s.SpeedupW4)
		}
		if s.BufferedRSS < s.StreamRSS {
			t.Errorf("faults=%s: buffered baseline peak RSS %d KB below streaming %d KB",
				s.Faults, s.BufferedRSS, s.StreamRSS)
		}
		if s.RSSRatio <= 1 {
			t.Errorf("faults=%s: streaming does not reduce peak RSS (ratio %.2f)", s.Faults, s.RSSRatio)
		}
	}
}
