package webmeasure

import (
	"bytes"
	"context"
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/trace"
)

// crawlBytes runs one small crawl and returns the dataset in both
// formats.
func crawlBytes(t *testing.T, cfg Config) (jsonl, col []byte) {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var jl, cl bytes.Buffer
	if err := res.WriteDataset(&jl); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteDatasetCol(&cl); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), cl.Bytes()
}

// TestDatasetColRoundTripByteIdentical is the losslessness golden: a
// JSONL dataset converted to the columnar format and back must reproduce
// the original file byte for byte, on a clean crawl and under heavy
// fault injection (failure/fault/retry fields populated).
func TestDatasetColRoundTripByteIdentical(t *testing.T) {
	for _, faults := range []string{"", "heavy"} {
		name := faults
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			jsonl, col := crawlBytes(t, Config{Seed: 11, Sites: 8, PagesPerSite: 3, FaultProfile: faults})

			ds, err := dataset.ReadCol(bytes.NewReader(col))
			if err != nil {
				t.Fatal(err)
			}
			var back bytes.Buffer
			if err := ds.WriteJSONL(&back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back.Bytes(), jsonl) {
				t.Errorf("jsonl -> col -> jsonl is not byte-identical (%d vs %d bytes)",
					back.Len(), len(jsonl))
			}
			// Re-encoding the decoded dataset must also be columnar-stable.
			var col2 bytes.Buffer
			if err := ds.WriteCol(&col2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(col2.Bytes(), col) {
				t.Errorf("col -> jsonl -> col is not byte-identical (%d vs %d bytes)",
					col2.Len(), len(col))
			}
			// ReadAuto must land on the same dataset for both encodings.
			dsAuto, err := dataset.ReadAuto(bytes.NewReader(jsonl))
			if err != nil {
				t.Fatal(err)
			}
			if dsAuto.Len() != ds.Len() {
				t.Errorf("ReadAuto(jsonl) has %d visits, ReadCol has %d", dsAuto.Len(), ds.Len())
			}
			t.Logf("dataset size: %d bytes jsonl, %d bytes col (%.1fx)",
				len(jsonl), len(col), float64(len(jsonl))/float64(len(col)))
		})
	}
}

// formatExport captures the complete analysis export surface for the
// cross-format comparison.
type formatExport struct {
	report, json, csv, traceJL []byte
}

// analyzeArtifacts loads raw dataset bytes (either format — sniffed) and
// exports every artifact. shards > 1 routes through the shard-and-merge
// pipeline; a bytes.Reader input gives the columnar path random access,
// so the sharded columnar run exercises the footer-index block seeks.
func analyzeArtifacts(t *testing.T, raw []byte, cfg Config, shards int) formatExport {
	t.Helper()
	cfg.Shards = shards
	if shards > 1 {
		res, err := LoadAndAnalyzeSharded(bytes.NewReader(raw), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exportAll(t, res)
	}
	tc := trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: 1})
	cfg.Tracer = tc
	res, err := LoadAndAnalyze(bytes.NewReader(raw), cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := exportAll(t, res)
	var jl bytes.Buffer
	if err := tc.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	exp.traceJL = jl.Bytes()
	return exp
}

func exportAll(t *testing.T, res *Results) formatExport {
	t.Helper()
	var rep, js, csv bytes.Buffer
	res.WriteReport(&rep)
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return formatExport{report: rep.Bytes(), json: js.Bytes(), csv: csv.Bytes()}
}

// TestAnalysisByteIdenticalAcrossFormats is the cross-format golden: the
// same crawl analyzed from its JSONL file and from its columnar file —
// including through the sharded pipeline, where the columnar input is
// read via footer-index block seeks — must export byte-identical
// reports, JSON bundles, CSV tables, and span traces. The columnar path
// takes a different code route end to end (site-streamed decode, per-
// block interned key caches, the tree builder's int32-id fast path), so
// this golden pins the whole new subsystem to the existing one.
func TestAnalysisByteIdenticalAcrossFormats(t *testing.T) {
	for _, faults := range []string{"", "heavy"} {
		name := faults
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: 11, Sites: 8, PagesPerSite: 3, FaultProfile: faults}
			jsonl, col := crawlBytes(t, cfg)

			fromJSONL := analyzeArtifacts(t, jsonl, cfg, 0)
			fromCol := analyzeArtifacts(t, col, cfg, 0)
			jsonlSharded := analyzeArtifacts(t, jsonl, cfg, 4)
			colSharded := analyzeArtifacts(t, col, cfg, 4)

			check := func(label string, a, b []byte) {
				t.Helper()
				if !bytes.Equal(a, b) {
					t.Errorf("%s differs (%d vs %d bytes)", label, len(a), len(b))
				}
			}
			check("report jsonl-vs-col", fromJSONL.report, fromCol.report)
			check("json jsonl-vs-col", fromJSONL.json, fromCol.json)
			check("csv jsonl-vs-col", fromJSONL.csv, fromCol.csv)
			check("trace jsonl-vs-col", fromJSONL.traceJL, fromCol.traceJL)
			if len(fromJSONL.traceJL) == 0 {
				t.Error("trace export is empty")
			}
			check("report unsharded-vs-col-sharded", fromJSONL.report, colSharded.report)
			check("json unsharded-vs-col-sharded", fromJSONL.json, colSharded.json)
			check("csv unsharded-vs-col-sharded", fromJSONL.csv, colSharded.csv)
			check("report jsonl-sharded-vs-col-sharded", jsonlSharded.report, colSharded.report)
			check("json jsonl-sharded-vs-col-sharded", jsonlSharded.json, colSharded.json)
			check("csv jsonl-sharded-vs-col-sharded", jsonlSharded.csv, colSharded.csv)
		})
	}
}
