// Longitudinal study: §3.1.1's motivation for the Old profile made
// explicit — how comparable is a measurement to one taken months earlier?
// The paper varies the *browser* version; this example additionally varies
// the *web* itself (webgen's epoch model: content churn, tracker swaps,
// page turnover) and separates the two effects.
//
//	go run ./examples/longitudinalstudy
package main

import (
	"fmt"

	"webmeasure/internal/browser"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/stats"
	"webmeasure/internal/tranco"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/webgen"
)

const (
	seed   = 12
	nSites = 30
)

func main() {
	u := webgen.New(webgen.DefaultConfig(seed))
	filter, _ := filterlist.Parse(u.FilterListText())
	builder := &tree.Builder{Filter: filter}
	list := tranco.Generate(nSites*2, seed)
	sim1, _ := browser.ProfileByName("Sim1")
	old, _ := browser.ProfileByName("Old")

	// visitTree renders a site's landing page at an epoch with a profile.
	visitTree := func(entry tranco.Entry, epoch int, prof browser.Profile) *tree.Tree {
		site := u.GenerateSiteAt(entry, epoch)
		if site.Unreachable {
			return nil
		}
		b := browser.New(prof)
		for attempt := 0; attempt < 10; attempt++ {
			nonce := webgen.NonceFor(seed, fmt.Sprintf("%s/e%d/%d", prof.Name, epoch, attempt), site.Landing.URL)
			v := b.Visit(site.Landing, nonce)
			if !v.Success {
				continue
			}
			t, err := builder.Build(v)
			if err != nil {
				continue
			}
			return t
		}
		return nil
	}

	fmt.Println("Longitudinal comparability: the web drifts under your study")
	fmt.Println("-------------------------------------------------------------")
	fmt.Println("mean landing-page tree similarity against epoch 0 (same browser):")
	for _, epoch := range []int{0, 1, 2, 4, 6} {
		var sims []float64
		for i := 1; i <= nSites; i++ {
			entry, _ := list.At(i)
			t0 := visitTree(entry, 0, sim1)
			tE := visitTree(entry, epoch, sim1)
			if t0 == nil || tE == nil {
				continue
			}
			cmp := treediff.Compare([]*tree.Tree{t0, tE})
			sims = append(sims, cmp.AllNodesSimilarity())
		}
		s := stats.Summarize(sims)
		fmt.Printf("  epoch %d: similarity %.2f (SD %.2f, %d sites)\n", epoch, s.Mean, s.SD, s.N)
	}

	fmt.Println()
	fmt.Println("separating the two axes at epoch 4:")
	var sameBrowser, oldBrowser []float64
	for i := 1; i <= nSites; i++ {
		entry, _ := list.At(i)
		t0 := visitTree(entry, 0, sim1)
		tSame := visitTree(entry, 4, sim1)
		tOld := visitTree(entry, 4, old)
		if t0 == nil || tSame == nil || tOld == nil {
			continue
		}
		sameBrowser = append(sameBrowser,
			treediff.Compare([]*tree.Tree{t0, tSame}).AllNodesSimilarity())
		oldBrowser = append(oldBrowser,
			treediff.Compare([]*tree.Tree{t0, tOld}).AllNodesSimilarity())
	}
	sb, ob := stats.Summarize(sameBrowser), stats.Summarize(oldBrowser)
	fmt.Printf("  new web + current browser vs old snapshot: %.2f\n", sb.Mean)
	fmt.Printf("  new web + old browser     vs old snapshot: %.2f\n", ob.Mean)
	if mw, err := stats.MannWhitneyU(sameBrowser, oldBrowser); err == nil {
		delta, _ := stats.CliffsDelta(sameBrowser, oldBrowser)
		fmt.Printf("  Mann-Whitney U p=%.3g, Cliff's δ=%.2f (%s)\n",
			mw.P, delta, stats.DeltaMagnitude(delta))
	}
	fmt.Println()
	fmt.Println("takeaway: most longitudinal incomparability comes from the web's")
	fmt.Println("own drift, not from the browser version — matching the paper's")
	fmt.Println("finding that the Old profile behaves like Sim2 on today's pages.")
}
