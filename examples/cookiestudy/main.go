// Cookie study: reproduce the §5.2 case study — do different measurement
// setups observe the same cookies? Cookies are identified by (name, domain,
// path) per RFC 6265; even their security attributes can differ between
// profiles.
//
//	go run ./examples/cookiestudy
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"webmeasure"
)

func main() {
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed:         99,
		Sites:        60,
		PagesPerSite: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ck := res.Analysis().CookieStudy("NoAction")

	fmt.Println("Case study: cookies (§5.2)")
	fmt.Println("---------------------------")
	fmt.Printf("observed %d cookies overall, %d distinct (name, domain, path) identities\n",
		ck.TotalObservations, ck.DistinctCookies)
	fmt.Println()
	fmt.Println("cookies per profile (NoAction sets the fewest — no lazy trackers):")
	var profiles []string
	for p := range ck.PerProfile {
		profiles = append(profiles, p)
	}
	sort.Strings(profiles)
	for _, p := range profiles {
		fmt.Printf("  %-9s %6d\n", p, ck.PerProfile[p])
	}
	fmt.Println()
	fmt.Printf("cookies present in all five profiles: %.0f%%\n", ck.ShareInAllProfiles*100)
	fmt.Printf("cookies present in exactly one:       %.0f%%\n", ck.ShareInOneProfile*100)
	fmt.Printf("per-page cookie-set similarity:       %.2f (SD %.2f)\n",
		ck.MeanJaccard.Mean, ck.MeanJaccard.SD)
	fmt.Printf("comparing against NoAction only:      %.2f\n", ck.InteractionVsNone.Mean)
	fmt.Println()
	fmt.Printf("cookies whose security attributes (Secure/HttpOnly/SameSite) differed\n")
	fmt.Printf("between profiles: %d — surprising, these are 'hard-coded' attributes.\n",
		ck.AttributeMismatch)
}
