// Filter lists: §6's limitation made concrete — the set of "tracking
// requests" a study reports depends on which blocklists define tracking.
// Compares the same crawl classified by the EasyList-style list alone and
// by the stacked EasyList+EasyPrivacy-style combination.
//
//	go run ./examples/filterlists
package main

import (
	"context"
	"fmt"
	"log"

	"webmeasure"
	"webmeasure/internal/core"
	"webmeasure/internal/filterlist"
)

func main() {
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed: 61, Sites: 50, PagesPerSite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	u := res.Universe()
	base, _ := filterlist.Parse(u.FilterListText())
	privacy, _ := filterlist.Parse(u.PrivacyListText())
	combined := filterlist.Merge(base, privacy)

	ds := res.Analysis().Dataset()
	profiles := ds.Profiles()
	study := func(name string, list *filterlist.List) {
		a, err := core.New(ds, list, core.Options{Profiles: profiles})
		if err != nil {
			log.Fatal(err)
		}
		tr := a.TrackingStudy()
		fmt.Printf("%-28s tracking share %5.1f%%   set similarity %.2f   triggered by trackers %.0f%%\n",
			name, tr.TrackingShare*100, tr.TrackingNodeSim.Mean, tr.TriggeredByTracker*100)
	}

	fmt.Println("How the blocklist choice moves a tracking study's results")
	fmt.Println("-----------------------------------------------------------")
	fmt.Printf("primary list: %d rules; secondary: %d rules\n\n", base.Len(), privacy.Len())
	study("EasyList-style only", base)
	study("+ EasyPrivacy-style", combined)
	fmt.Println()
	fmt.Println("takeaway (§6): stacking lists increases coverage but also shifts")
	fmt.Println("the phenomenon's definition — a cross-study comparison must pin")
	fmt.Println("the exact list versions, not just 'we used EasyList'.")
}
