// Coverage study: the paper's fourth takeaway in practice — how many
// measurements does one page need before a study has seen (nearly) all of
// its behaviour? Renders node-accumulation curves for repeated single-
// profile measurements and for the multi-profile strategy §4.3 recommends,
// and reports the experiment-level stability metric (§8 takeaway 1).
//
//	go run ./examples/coveragestudy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"webmeasure"
	"webmeasure/internal/browser"
	"webmeasure/internal/coverage"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func main() {
	const seed = 31

	// Part 1: accumulation curves on a handful of pages.
	u := webgen.New(webgen.DefaultConfig(seed))
	filter, _ := filterlist.Parse(u.FilterListText())
	runner := &coverage.Runner{Filter: filter, Seed: seed}
	sim1, _ := browser.ProfileByName("Sim1")

	fmt.Println("Node-accumulation: repeated measurements of the same page")
	fmt.Println("----------------------------------------------------------")
	list := tranco.Generate(40, seed)
	const visits = 10
	pagesDone := 0
	var needFor95 []int
	for rank := 1; rank <= 40 && pagesDone < 5; rank++ {
		entry, _ := list.At(rank)
		site := u.GenerateSite(entry)
		if site.Unreachable {
			continue
		}
		page := site.Landing
		curve, err := runner.Accumulate(page, sim1, visits)
		if err != nil {
			log.Fatal(err)
		}
		pagesDone++
		fmt.Printf("\n%s\n", page.URL)
		fmt.Printf("  distinct nodes after k visits: ")
		for _, d := range curve.Distinct {
			fmt.Printf("%d ", d)
		}
		fmt.Println()
		fmt.Printf("  first visit captured %.0f%% of what %d visits found\n",
			curve.CoverageAt(1)*100, visits)
		if k := curve.MeasurementsFor(0.95); k > 0 {
			needFor95 = append(needFor95, k)
			fmt.Printf("  95%% coverage reached after %d visit(s)\n", k)
		}

		multi, err := runner.AccumulateAcrossProfiles(page, browser.DefaultProfiles(), visits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  multi-profile strategy: %d distinct nodes (single profile: %d)\n",
			multi.Total(), curve.Total())
	}
	if len(needFor95) > 0 {
		sum := 0
		for _, k := range needFor95 {
			sum += k
		}
		fmt.Printf("\non average %.1f measurements reach 95%% coverage of a page\n",
			float64(sum)/float64(len(needFor95)))
	}

	// Part 2: the experiment-level stability metric.
	fmt.Println()
	fmt.Println(strings.Repeat("-", 58))
	fmt.Println("Experiment-level stability metric (§8 takeaway 1)")
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed: seed, Sites: 40, PagesPerSite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Analysis().Stability()
	fmt.Printf("mean page stability: %.2f (SD %.2f) — %d high / %d medium / %d low pages\n",
		rep.PageStability.Mean, rep.PageStability.SD, rep.HighPages, rep.MediumPages, rep.LowPages)
	fmt.Printf("expected new-node mass from one more measurement: %.1f%%\n", rep.ExpectedDiscovery*100)
	fmt.Printf("measurements needed to push unseen mass below 1%%: %d\n", rep.RequiredMeasurements(0.01))
	fmt.Println("\nstability by node population (most → least stable):")
	for _, c := range rep.ByCategory {
		fmt.Printf("  %-22s presence %.2f  child sim %.2f  (%d nodes)\n",
			c.Category, c.MeanPresence, c.ChildSim, c.Nodes)
	}
}
