// Tracking study: reproduce the §5.3 case study — how stable are tracking
// requests across measurement setups, and who triggers them? This is the
// workload the paper's introduction motivates: a privacy study counting
// trackers will see different trackers depending on its setup.
//
//	go run ./examples/trackingstudy
package main

import (
	"context"
	"fmt"
	"log"

	"webmeasure"
)

func main() {
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed:         7,
		Sites:        60,
		PagesPerSite: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis()

	tr := a.TrackingStudy()
	fmt.Println("Case study: tracking requests (§5.3)")
	fmt.Println("-------------------------------------")
	fmt.Printf("%.0f%% of all observed nodes are tracking requests\n", tr.TrackingShare*100)
	fmt.Printf("per-page similarity of the tracking-node set: %.2f (SD %.2f)\n",
		tr.TrackingNodeSim.Mean, tr.TrackingNodeSim.SD)
	fmt.Println()
	fmt.Println("stability compared to non-tracking content:")
	fmt.Printf("  children similarity: %.2f (tracking) vs %.2f (other)\n",
		tr.TrackingChildSim.Mean, tr.NonTrackingChildSim.Mean)
	fmt.Printf("  parent similarity:   %.2f (tracking) vs %.2f (other)\n",
		tr.TrackingParentSim.Mean, tr.NonTrackingParentSim.Mean)
	fmt.Printf("  mean children:       %.1f (tracking) vs %.1f (other)\n",
		tr.TrackingMeanChildren, tr.NonTrackingMeanChildren)
	fmt.Println()
	if len(tr.DepthShares) == 5 {
		fmt.Println("where trackers sit in the tree:")
		labels := []string{"depth 1", "depth 2", "depth 3", "depth 4", "deeper"}
		for i, l := range labels {
			fmt.Printf("  %-8s %5.1f%%\n", l, tr.DepthShares[i]*100)
		}
	}
	fmt.Println()
	fmt.Println("who triggers tracking requests:")
	fmt.Printf("  other trackers:  %.0f%%  (of those, %.0f%% third-party)\n",
		tr.TriggeredByTracker*100, tr.TrackerParentThirdParty*100)
	fmt.Printf("  first-party parents: %.0f%%\n", tr.TriggeredByFirstParty*100)
	fmt.Printf("  parent types: script %.0f%%, subframe %.0f%%, mainframe %.0f%%\n",
		tr.ParentTypeScript*100, tr.ParentTypeSubframe*100, tr.ParentTypeMainframe*100)

	// A tracker census per profile: the number a study would have reported
	// under each setup.
	fmt.Println()
	fmt.Println("tracker nodes a study would report, by setup:")
	for _, row := range a.ProfileTotals() {
		fmt.Printf("  %-9s %6d tracker nodes (%d nodes total)\n", row.Profile, row.Tracker, row.Nodes)
	}
	fmt.Println()
	fmt.Println("takeaway: the NoAction profile misses the engagement-triggered")
	fmt.Println("trackers; two identically configured profiles (Sim1/Sim2) still")
	fmt.Println("disagree on which trackers fired.")
}
