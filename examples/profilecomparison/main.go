// Profile comparison: reproduce §4.4 — what does each setup knob do to the
// measurement? Compares every profile against the reference (Sim1), the
// identical-configuration pair (Sim1 vs Sim2), and runs the paper's
// Mann-Whitney U test on the interaction effect.
//
//	go run ./examples/profilecomparison
package main

import (
	"context"
	"fmt"
	"log"

	"webmeasure"
)

func main() {
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed:         4,
		Sites:        60,
		PagesPerSite: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis()

	fmt.Println("Assessing setup implications (§4.4)")
	fmt.Println("------------------------------------")
	fmt.Println("tree totals per profile (Table 5):")
	for _, r := range a.ProfileTotals() {
		fmt.Printf("  %-9s nodes=%6d  third-party=%6d  tracker=%6d  depth=%d  breadth=%d\n",
			r.Profile, r.Nodes, r.ThirdParty, r.Tracker, r.MaxDepth, r.MaxBreadth)
	}

	fmt.Println()
	fmt.Println("each profile vs the reference Sim1 (Table 6):")
	for _, r := range a.ProfilePairTable("Sim1") {
		fmt.Printf("  %-9s FP children perfect %.0f%%  TP children perfect %.0f%%  "+
			"mean parent sim %.2f  mean child sim %.2f\n",
			r.Other, r.FPChildrenPerfect*100, r.TPChildrenPerfect*100,
			r.MeanParentSim, r.MeanChildSim)
	}

	sc := a.CompareSameConfig("Sim1", "Sim2")
	fmt.Println()
	fmt.Printf("identical configuration, run in parallel (Sim1 vs Sim2, %d pages):\n", sc.Pages)
	fmt.Printf("  upper levels (≤5): %.2f   deeper levels: %.2f\n", sc.UpperSim, sc.DeepSim)
	fmt.Println("  → even the same setup does not reproduce itself.")

	tests := a.RunTests("Sim1", "NoAction")
	fmt.Println()
	if tests.InteractionDepthErr == nil {
		verdict := "no significant effect"
		if tests.InteractionDepth.Significant() {
			verdict = "significant: interaction pushes nodes deeper"
		}
		fmt.Printf("Mann-Whitney U (node depth, Sim1 vs NoAction): U=%.0f p=%.3g → %s\n",
			tests.InteractionDepth.Statistic, tests.InteractionDepth.P, verdict)
	}
	if tests.TypeEffectErr == nil {
		fmt.Printf("Kruskal-Wallis (resource type vs similarity):  H=%.1f p=%.3g → significant=%v\n",
			tests.TypeEffect.Statistic, tests.TypeEffect.P, tests.TypeEffect.Significant())
	}
}
