// Quickstart: run a small end-to-end experiment and print the headline
// findings — how similar are web measurements across the five setups?
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"webmeasure"
)

func main() {
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed:         2023,
		Sites:        50,
		PagesPerSite: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summary()
	fmt.Println("Quickstart: similarity of web measurements under different setups")
	fmt.Println("------------------------------------------------------------------")
	fmt.Printf("crawled %d sites / %d pages with 5 profiles (%d visits)\n", s.Sites, s.Pages, s.Visits)
	fmt.Printf("pages comparable across all profiles: %d (%.0f%%)\n", s.VettedPages, s.VettedShare*100)
	fmt.Println()
	fmt.Printf("a dependency tree has %.0f nodes on average (depth %.1f)\n", s.MeanNodesPerTree, s.MeanTreeDepth)
	fmt.Printf("a node appears in %.1f of 5 profiles on average\n", s.MeanNodePresence)
	fmt.Printf("  … in all five: %.0f%%    … in only one: %.0f%%\n",
		s.ShareInAllProfiles*100, s.ShareInOneProfile*100)
	fmt.Println()
	fmt.Printf("first-party content is stable  (depth similarity %.2f)\n", s.FirstPartyDepthSimilarity)
	fmt.Printf("third-party content is not     (depth similarity %.2f)\n", s.ThirdPartyDepthSimilarity)
	fmt.Printf("%.0f%% of nodes are tracking requests; %.0f%% of all nodes are unique to one tree\n",
		s.TrackingShare*100, s.UniqueNodeShare*100)
	fmt.Println()
	fmt.Println("run `go run ./cmd/webmeasure` for the full set of tables and figures.")
}
