// Quickstart: run a small end-to-end experiment and print the headline
// findings — how similar are web measurements across the five setups?
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"webmeasure"
)

func main() {
	cfg := webmeasure.Config{
		Seed:         2023,
		Sites:        50,
		PagesPerSite: 8,
	}
	if err := quickstart(context.Background(), cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// quickstart runs the experiment and prints the headline findings to w.
func quickstart(ctx context.Context, cfg webmeasure.Config, w io.Writer) error {
	res, err := webmeasure.Run(ctx, cfg)
	if err != nil {
		return err
	}

	s := res.Summary()
	fmt.Fprintln(w, "Quickstart: similarity of web measurements under different setups")
	fmt.Fprintln(w, "------------------------------------------------------------------")
	fmt.Fprintf(w, "crawled %d sites / %d pages with 5 profiles (%d visits)\n", s.Sites, s.Pages, s.Visits)
	fmt.Fprintf(w, "pages comparable across all profiles: %d (%.0f%%)\n", s.VettedPages, s.VettedShare*100)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "a dependency tree has %.0f nodes on average (depth %.1f)\n", s.MeanNodesPerTree, s.MeanTreeDepth)
	fmt.Fprintf(w, "a node appears in %.1f of 5 profiles on average\n", s.MeanNodePresence)
	fmt.Fprintf(w, "  … in all five: %.0f%%    … in only one: %.0f%%\n",
		s.ShareInAllProfiles*100, s.ShareInOneProfile*100)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "first-party content is stable  (depth similarity %.2f)\n", s.FirstPartyDepthSimilarity)
	fmt.Fprintf(w, "third-party content is not     (depth similarity %.2f)\n", s.ThirdPartyDepthSimilarity)
	fmt.Fprintf(w, "%.0f%% of nodes are tracking requests; %.0f%% of all nodes are unique to one tree\n",
		s.TrackingShare*100, s.UniqueNodeShare*100)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "run `go run ./cmd/webmeasure` for the full set of tables and figures.")
	return nil
}
