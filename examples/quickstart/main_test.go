package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"

	"webmeasure"
)

// TestQuickstartTinyUniverse executes the example end-to-end on a tiny
// universe and checks the headline lines render with real numbers.
func TestQuickstartTinyUniverse(t *testing.T) {
	var buf bytes.Buffer
	err := quickstart(context.Background(), webmeasure.Config{
		Seed: 11, Sites: 5, PagesPerSite: 3, Workers: 2,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Quickstart: similarity of web measurements",
		"pages comparable across all profiles",
		"tracking requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The crawl line must report a non-zero number of visits.
	m := regexp.MustCompile(`crawled (\d+) sites / (\d+) pages with 5 profiles \((\d+) visits\)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("crawl line missing:\n%s", out)
	}
	if m[1] == "0" || m[3] == "0" {
		t.Errorf("quickstart crawled nothing: %v", m)
	}
}

// TestQuickstartCancelledContext checks the error path surfaces instead of
// printing a partial report.
func TestQuickstartCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := quickstart(ctx, webmeasure.Config{Seed: 11, Sites: 5, PagesPerSite: 3}, &buf); err == nil {
		t.Fatal("cancelled context should error")
	}
	if strings.Contains(buf.String(), "Quickstart") {
		t.Error("no output should be written on error")
	}
}
