package webmeasure

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"webmeasure/internal/core"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
)

// artifacts renders every text export of a Results.
type artifacts struct {
	report, json, csv []byte
}

func renderArtifacts(t *testing.T, res *Results) artifacts {
	t.Helper()
	var rep, js, csv bytes.Buffer
	res.WriteReport(&rep)
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return artifacts{report: rep.Bytes(), json: js.Bytes(), csv: csv.Bytes()}
}

// shardedRun executes the full distributed pipeline for nShards: one
// shard-restricted Run per shard (each with its own registry and tracer),
// a wire round-trip of every partial, then metric/trace/analysis merges —
// exactly what a coordinator with remote workers does.
func shardedRun(t *testing.T, cfg Config, nShards int) (artifacts, *metrics.Registry, *trace.Tracer) {
	t.Helper()
	parts := make([]*core.Partial, nShards)
	for i := 0; i < nShards; i++ {
		reg := metrics.New()
		tr := trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: 1, Metrics: reg})
		shardCfg := cfg
		shardCfg.Shards = nShards
		shardCfg.ShardIndex = i
		shardCfg.Metrics = reg
		shardCfg.Tracer = tr
		res, err := Run(context.Background(), shardCfg)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, nShards, err)
		}
		part, err := res.Partial()
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, nShards, err)
		}
		dump := reg.Dump()
		part.Metrics = &dump
		part.Traces = tr.Export()
		wire, err := part.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if parts[i], err = core.DecodePartial(wire); err != nil {
			t.Fatal(err)
		}
	}
	merged := metrics.New()
	mergedTracer := trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: 1})
	for _, part := range parts {
		if err := merged.Merge(*part.Metrics); err != nil {
			t.Fatal(err)
		}
		if err := mergedTracer.Import(part.Traces); err != nil {
			t.Fatal(err)
		}
	}
	asmCfg := cfg
	asmCfg.Shards = nShards
	res, err := AssembleFromPartials(context.Background(), asmCfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	return renderArtifacts(t, res), merged, mergedTracer
}

// traceBytes renders both trace exports.
func traceBytes(t *testing.T, tr *trace.Tracer) (jsonl, chrome []byte) {
	t.Helper()
	var jl, ch bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&ch); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ch.Bytes()
}

// TestShardMergeByteIdentical is the golden 1-vs-N determinism suite for
// the distributed shard-and-merge pipeline: one process and four shard
// workers must produce byte-identical report, JSON, CSV, and trace
// exports — on a clean network and under heavy fault injection — and the
// page-granular counters of the merged registry must equal the single
// run's exactly (satellite: mergeable metrics).
func TestShardMergeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults string
	}{
		{name: "clean", faults: ""},
		{name: "heavy-faults", faults: "heavy"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: 11, Sites: 10, PagesPerSite: 4, FaultProfile: tc.faults}

			singleReg := metrics.New()
			singleTracer := trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: 1, Metrics: singleReg})
			singleCfg := cfg
			singleCfg.Metrics = singleReg
			singleCfg.Tracer = singleTracer
			singleRes, err := Run(context.Background(), singleCfg)
			if err != nil {
				t.Fatal(err)
			}
			single := renderArtifacts(t, singleRes)
			singleJL, singleCh := traceBytes(t, singleTracer)

			sharded, mergedReg, mergedTracer := shardedRun(t, cfg, 4)
			shardJL, shardCh := traceBytes(t, mergedTracer)

			if !bytes.Equal(single.report, sharded.report) {
				t.Errorf("report differs between 1 process and 4 shards (%d vs %d bytes)",
					len(single.report), len(sharded.report))
			}
			if !bytes.Equal(single.json, sharded.json) {
				t.Errorf("JSON differs between 1 process and 4 shards (%d vs %d bytes)",
					len(single.json), len(sharded.json))
			}
			if !bytes.Equal(single.csv, sharded.csv) {
				t.Errorf("CSV differs between 1 process and 4 shards (%d vs %d bytes)",
					len(single.csv), len(sharded.csv))
			}
			if !bytes.Equal(singleJL, shardJL) {
				t.Errorf("trace JSONL differs between 1 process and 4 shards (%d vs %d bytes)",
					len(singleJL), len(shardJL))
			}
			if !bytes.Equal(singleCh, shardCh) {
				t.Errorf("Chrome trace differs between 1 process and 4 shards (%d vs %d bytes)",
					len(singleCh), len(shardCh))
			}

			// Page-granular counters must sum to the single run exactly;
			// the fault-injection and retry families are the satellite's
			// headline assertion. Site-granular instruments (crawl.sites,
			// crawl.site_ms) are excluded by design: a site is counted once
			// per shard that touches it.
			mergedVals := map[string]int64{}
			for _, c := range mergedReg.Snapshot().Counters {
				mergedVals[c.Name] = c.Value
			}
			sawFault, sawRetry := false, false
			for _, c := range singleReg.Snapshot().Counters {
				exact := strings.HasPrefix(c.Name, "faults.injected") ||
					strings.HasPrefix(c.Name, "crawl.retries.total") ||
					c.Name == "crawl.pages" || c.Name == "crawl.visits" ||
					c.Name == "crawl.attempts" || c.Name == "crawl.visits.failed" ||
					c.Name == "crawl.visits.degraded" || c.Name == "crawl.visits.retried" ||
					c.Name == "analysis.pages" || c.Name == "analysis.pages.vetted" ||
					c.Name == "analysis.trees"
				if !exact {
					continue
				}
				if strings.HasPrefix(c.Name, "faults.injected") {
					sawFault = true
				}
				if strings.HasPrefix(c.Name, "crawl.retries.total") {
					sawRetry = true
				}
				if got := mergedVals[c.Name]; got != c.Value {
					t.Errorf("counter %s: merged shards have %d, single run has %d", c.Name, got, c.Value)
				}
			}
			if tc.faults == "heavy" {
				if !sawFault {
					t.Error("heavy-fault run recorded no faults.injected counters")
				}
				if !sawRetry {
					t.Error("heavy-fault run recorded no crawl.retries.total counters")
				}
			}
		})
	}
}

// TestShardMergeStateful covers the stateful-crawl corner: shard workers
// must still replay off-shard pages against the shared cookie jar so the
// kept pages' bytes match the full crawl's.
func TestShardMergeStateful(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, Sites: 6, PagesPerSite: 3, Stateful: true}
	singleRes, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := renderArtifacts(t, singleRes)
	sharded, _, _ := shardedRun(t, cfg, 3)
	if !bytes.Equal(single.report, sharded.report) {
		t.Error("stateful report differs between 1 process and 3 shards")
	}
	if !bytes.Equal(single.json, sharded.json) {
		t.Error("stateful JSON differs between 1 process and 3 shards")
	}
}

// TestLoadAndAnalyzeSharded proves the in-process shard pipeline (what
// cmd/analyze -shards runs) reproduces the plain analysis byte for byte
// from the same stored dataset.
func TestLoadAndAnalyzeSharded(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 5, Sites: 8, PagesPerSite: 3, FaultProfile: "light"}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ds bytes.Buffer
	if err := res.WriteDataset(&ds); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadAndAnalyze(bytes.NewReader(ds.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := cfg
	shardCfg.Shards = 4
	sharded, err := LoadAndAnalyzeSharded(bytes.NewReader(ds.Bytes()), shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderArtifacts(t, plain), renderArtifacts(t, sharded)
	if !bytes.Equal(a.report, b.report) {
		t.Error("report differs between plain and sharded load-and-analyze")
	}
	if !bytes.Equal(a.json, b.json) {
		t.Error("JSON differs between plain and sharded load-and-analyze")
	}
	if !bytes.Equal(a.csv, b.csv) {
		t.Error("CSV differs between plain and sharded load-and-analyze")
	}
}
