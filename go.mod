module webmeasure

go 1.22
