package webmeasure

import (
	"context"
	"testing"

	"webmeasure/internal/trace"
)

// BenchmarkTraceOverhead measures what span tracing costs the full
// pipeline (crawl + analysis) at three settings: tracing off, head-
// sampled 1-in-100 (the production recommendation), and every page
// traced. EXPERIMENTS.md records the measured overhead; the acceptance
// bar is <5% at 1-in-100.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sample int // 0 = tracing off
	}{
		{"off", 0},
		{"sampled-1-in-100", 100},
		{"full", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := Config{Seed: benchSeed, Sites: 20, PagesPerSite: 4}
				if bc.sample > 0 {
					cfg.Tracer = trace.New(trace.Options{Seed: benchSeed, SampleEvery: bc.sample})
				}
				if _, err := Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
