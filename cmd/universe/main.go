// Command universe inspects the synthetic web a seed generates: the
// third-party ecosystem, the entity map, the generated filter lists, and
// the statistical profile of the sites an experiment would crawl — the
// calibration dashboard behind DESIGN.md §5.
package main

import (
	"flag"
	"fmt"
	"os"

	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "master seed")
		sites    = flag.Int("sites", 50, "sites to profile")
		services = flag.Bool("services", false, "list every third-party service and its organization")
		lists    = flag.Bool("lists", false, "print the generated filter lists")
	)
	flag.Parse()

	u := webgen.New(webgen.DefaultConfig(*seed))

	if *lists {
		fmt.Println("----- EasyList-style (primary) -----")
		fmt.Print(u.FilterListText())
		fmt.Println("----- EasyPrivacy-style (secondary) -----")
		fmt.Print(u.PrivacyListText())
		return
	}

	if *services {
		fmt.Printf("%-32s %-12s %-10s %s\n", "DOMAIN", "KIND", "TRACKING", "ORGANIZATION")
		for _, s := range u.AllServices() {
			fmt.Printf("%-32s %-12s %-10v %s\n", s.Domain, s.Kind, s.Tracking, u.OrganizationOf(s.Domain))
		}
		orgs := u.Organizations()
		multi := 0
		for _, o := range orgs {
			if len(o.Domains) > 1 {
				multi++
			}
		}
		fmt.Printf("\n%d services, %d organizations (%d conglomerates)\n",
			len(u.AllServices()), len(orgs), multi)
		return
	}

	list := tranco.Generate(*sites*2, *seed)
	entries := list.Entries()[:*sites]
	profile := u.Describe(entries)
	profile.Write(os.Stdout)
}
