package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndToEnd boots the command on an ephemeral port, walks the
// full client flow over real HTTP (health, submit, poll, artifacts,
// cache hit, metrics), then sends the shutdown signal and expects a
// clean drain and exit code 0.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"},
			&stdout, &stderr, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	if code, _ := httpGet(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}

	submit := func() (id, state string, cacheHit bool, code int) {
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"seed": 5, "sites": 5, "pages_per_site": 2}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v struct {
			ID       string `json:"id"`
			State    string `json:"state"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.ID, v.State, v.CacheHit, resp.StatusCode
	}

	id, _, _, code := submit()
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		_, body := httpGet(t, base+"/v1/jobs/"+id)
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == "done" {
			break
		}
		if v.State == "failed" || v.State == "canceled" {
			t.Fatalf("job ended %s: %s", v.State, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, rep := httpGet(t, base+"/v1/jobs/"+id+"/report"); code != 200 || len(rep) == 0 {
		t.Fatalf("report = %d (%d bytes)", code, len(rep))
	}

	// Identical resubmission: served from cache with a 200.
	_, state, hit, code := submit()
	if code != http.StatusOK || state != "done" || !hit {
		t.Fatalf("resubmit: code=%d state=%s cache_hit=%v, want cached 200/done", code, state, hit)
	}
	if code, prom := httpGet(t, base+"/metrics"); code != 200 ||
		!bytes.Contains(prom, []byte("service_cache_hits 1")) {
		t.Fatalf("/metrics = %d, missing cache-hit counter:\n%s", code, prom)
	}

	cancel() // deliver the "signal"
	select {
	case got := <-exit:
		if got != 0 {
			t.Fatalf("exit = %d, stderr:\n%s", got, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after shutdown signal")
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("stderr missing drain confirmation:\n%s", stderr.String())
	}
	for _, want := range []string{`msg="job queued"`, `msg="job done"`} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing job lifecycle log %q:\n%s", want, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), "serving on http://") {
		t.Errorf("stdout missing banner:\n%s", stdout.String())
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeBadFlags exits 2 on flag errors without binding a port.
func TestServeBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &buf, &buf, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
