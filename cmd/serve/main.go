// Command serve runs the measurement job server: a long-running HTTP
// service that accepts experiment specs (POST /v1/jobs), executes them on
// a bounded worker pool, deduplicates identical configurations through a
// deterministic result cache, and exposes Prometheus metrics. See the
// README's "Serving mode" section for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webmeasure/internal/drift"
	"webmeasure/internal/service"
	"webmeasure/internal/trace"
	"webmeasure/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable body of the command. ready, if non-nil, receives
// the bound listen address once the server accepts connections (the smoke
// test and -addr :0 callers use it to find the port).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers    = fs.Int("workers", 2, "concurrent job executors at start")
		minWorkers = fs.Int("min-workers", 0, "autoscaling floor (0 = pin the pool at -workers)")
		maxWorkers = fs.Int("max-workers", 0, "autoscaling ceiling (0 = pin the pool at -workers)")
		scaleEvery = fs.Duration("scale-interval", 250*time.Millisecond, "autoscaler evaluation period")
		queue      = fs.Int("queue", 16, "queued-job bound before submissions get 429")
		cache      = fs.Int("cache", 64, "LRU result cache entries (negative disables)")
		maxSites   = fs.Int("max-sites", 2000, "largest per-job site count accepted")
		maxPages   = fs.Int("max-pages", 100, "largest per-job pages-per-site accepted")
		drain      = fs.Duration("drain", time.Minute, "shutdown grace period for running jobs")
		logLevel   = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logJSON    = fs.Bool("log-json", false, "emit log records as JSON instead of key=value text")

		shardWorkers = fs.String("shard-workers", "", "comma-separated base URLs of peer servers coordinator jobs fan shard jobs out to (empty = run shards in-process)")
		maxShards    = fs.Int("max-shards", 16, "largest per-job shard count accepted")

		monitorEpochs = fs.Int("monitor-epochs", 0, "run the longitudinal drift monitor for N epochs (0 = off)")
		monitorStart  = fs.Int("monitor-start-epoch", 0, "first monitored epoch")
		monitorEvery  = fs.Duration("monitor-interval", 0, "pause between monitored epochs (0 = back to back)")
		monitorSeed   = fs.Int64("monitor-seed", 1, "seed of the monitored experiment")
		monitorSites  = fs.Int("monitor-sites", 20, "sites the monitored experiment crawls per epoch")
		monitorPages  = fs.Int("monitor-pages", 5, "pages per site the monitored experiment crawls")
		monitorFaults = fs.String("monitor-faults", "", "fault profile of the monitored experiment: off, light, or heavy")
		monitorPin    = fs.Int("monitor-pin", -1, "epoch every baseline is additionally diffed against (-1 = the start epoch)")
		stateDir      = fs.String("state-dir", "drift-state", "directory for monitor baselines, deltas, alerts.jsonl, and drift.csv")
		driftRules    = fs.String("drift-rules", "", "JSON file of alert rules (empty = the built-in default rules)")

		showVersion = fs.Bool("version", false, "print the build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String())
		return 0
	}
	logger, err := trace.NewLogger(stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 2
	}

	var peers []string
	for _, w := range strings.Split(*shardWorkers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			peers = append(peers, strings.TrimRight(w, "/"))
		}
	}
	cfg := service.Config{
		Workers:       *workers,
		MinWorkers:    *minWorkers,
		MaxWorkers:    *maxWorkers,
		ScaleInterval: *scaleEvery,
		QueueDepth:    *queue,
		CacheSize:     *cache,
		Limits:        service.Limits{MaxSites: *maxSites, MaxPagesPerSite: *maxPages, MaxShards: *maxShards},
		Logger:        logger,
		ShardWorkers:  peers,
	}
	if *monitorEpochs > 0 {
		mc := &service.MonitorConfig{
			Spec: service.JobSpec{
				Seed:         *monitorSeed,
				Sites:        *monitorSites,
				PagesPerSite: *monitorPages,
				FaultProfile: *monitorFaults,
			},
			Epochs:     *monitorEpochs,
			StartEpoch: *monitorStart,
			Interval:   *monitorEvery,
			StateDir:   *stateDir,
			PinEpoch:   *monitorPin,
		}
		if *driftRules != "" {
			rf, err := os.Open(*driftRules)
			if err != nil {
				fmt.Fprintf(stderr, "serve: %v\n", err)
				return 2
			}
			rules, err := drift.ParseRules(rf)
			rf.Close()
			if err != nil {
				fmt.Fprintf(stderr, "serve: -drift-rules: %v\n", err)
				return 2
			}
			mc.Rules = rules
		}
		cfg.Monitor = mc
		logger.Info("drift monitor enabled",
			"epochs", *monitorEpochs, "start", *monitorStart, "state_dir", *stateDir,
			"sites", *monitorSites, "pages", *monitorPages, "seed", *monitorSeed)
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	st := srv.Stats()
	fmt.Fprintf(stdout, "serving on http://%s (workers=%d..%d queue=%d cache=%d)\n",
		ln.Addr(), st.MinWorkers, st.MaxWorkers, *queue, *cache)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Graceful stop: close the listener and idle connections first, then
	// drain the job pool so running measurements finish (or are cut off
	// at the -drain deadline).
	fmt.Fprintln(stderr, "serve: shutting down, draining jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "serve: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "serve: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "serve: drained cleanly")
	return 0
}
