// Command crawl runs only the measurement (no analysis) and streams the
// raw visit records to disk as they are collected — the commander/clients
// half of the paper's framework (Appendix C). Sites are crawled by
// -site-workers concurrent workers and written in site-list order as each
// finishes, so peak memory is bounded by the in-flight crawl window, not
// the dataset size, and the output bytes are identical for every worker
// count. Feed the output to cmd/analyze with the same -sites/-pages/-seed
// flags. While the crawl runs, -progress prints live counter/timing
// snapshots (sites done, visit latency percentiles), and -trace records
// one deterministic span trace per page (load the output in
// chrome://tracing or Perfetto). Diagnostics are structured log records on
// stderr (-log-level, -log-json).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webmeasure"
	"webmeasure/internal/dataset"
	"webmeasure/internal/metrics"
	"webmeasure/internal/report"
	"webmeasure/internal/trace"
)

func main() {
	// A first Ctrl-C cancels the crawl context so the run stops between
	// site batches instead of dying mid-write; a second one kills the
	// process (NotifyContext unregisters after the context fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: parse args, crawl, write the
// dataset. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sites       = fs.Int("sites", 100, "number of sites to sample")
		pages       = fs.Int("pages", 10, "max subpages per site")
		seed        = fs.Int64("seed", 1, "master seed")
		epoch       = fs.Int("epoch", 0, "measurement epoch: the universe deterministically churns per epoch (0 = base snapshot)")
		siteWorkers = fs.Int("site-workers", 0, "concurrent site crawls (0 = all CPUs); output is byte-identical for any value")
		progress    = fs.Duration("progress", 10*time.Second, "interval between progress lines on stderr (0 = off)")
		out         = fs.String("o", "dataset.jsonl", "output path for the dataset")
		format      = fs.String("format", "jsonl", "dataset output format: jsonl or col (compact columnar)")
		resume      = fs.String("resume", "", "checkpoint dataset to continue from, jsonl or col (reuses its successful visits)")
		faults      = fs.String("faults", "", "deterministic fault-injection profile: off, light, or heavy (default off)")
		traceOut    = fs.String("trace", "", "write a Chrome trace-event JSON of the crawl to this file (chrome://tracing)")
		traceJSONL  = fs.String("trace-jsonl", "", "write the span trace as JSON Lines to this file")
		traceSample = fs.Int("trace-sample", 1, "trace one page in N (head-based sampling; 1 = every page)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logJSON     = fs.Bool("log-json", false, "emit log records as JSON instead of key=value text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != dataset.FormatJSONL && *format != dataset.FormatCol {
		fmt.Fprintf(stderr, "crawl: unknown -format %q (want jsonl or col)\n", *format)
		return 2
	}
	logger, err := trace.NewLogger(stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(stderr, "crawl: %v\n", err)
		return 2
	}

	reg := metrics.New()
	var tracer *trace.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		tracer = trace.New(trace.Options{Seed: *seed, SampleEvery: *traceSample, Metrics: reg})
		// The tracer rides the context into the crawler — the same
		// propagation path an embedding library user gets for free.
		ctx = trace.NewContext(ctx, tracer)
	}
	cfg := webmeasure.Config{
		Seed: *seed, Sites: *sites, PagesPerSite: *pages, Epoch: *epoch,
		FaultProfile: *faults,
		SiteWorkers:  *siteWorkers, Metrics: reg,
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				logger.Info("crawl progress", "done", done, "total", total)
			}
		},
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			logger.Error("crawl failed", "error", err.Error())
			return 1
		}
		defer f.Close()
		cfg.ResumeJSONL = f
	}
	// The dataset streams to disk while the crawl runs: each site's visits
	// are written as soon as the site is emitted, so a long crawl never
	// holds the whole dataset in memory. A failed run removes the partial
	// file — the command either produces a complete dataset or none.
	f, err := os.Create(*out)
	if err != nil {
		logger.Error("crawl failed", "error", err.Error())
		return 1
	}
	var sink dataset.SiteWriter = dataset.NewJSONLSiteWriter(f)
	if *format == dataset.FormatCol {
		sink = dataset.NewColSiteWriter(f)
	}
	stopProgress := metrics.StartProgress(ctx, stderr, reg, *progress)
	st, err := webmeasure.CrawlStream(ctx, cfg, sink)
	stopProgress()
	if err == nil {
		if cerr := sink.Close(); cerr != nil {
			err = cerr
		} else if cerr := f.Close(); cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		f.Close()
		os.Remove(*out)
		logger.Error("crawl failed", "error", err.Error())
		return 1
	}
	logger.Info("metrics", "snapshot", fmt.Sprint(reg.Snapshot()))
	logger.Info("crawl done",
		"sites", st.SitesVisited, "pages", st.PagesDiscovered,
		"visits", st.VisitsTotal, "failed", st.VisitsFailed, "reused", st.VisitsReused,
		"output", *out)
	if tracer != nil {
		report.WriteStageBreakdown(stderr, tracer.StageBreakdown())
		if err := tracer.WriteFiles(*traceOut, *traceJSONL); err != nil {
			logger.Error("trace write failed", "error", err.Error())
			return 1
		}
		logger.Info("trace written",
			"traces", tracer.TraceCount(), "spans", tracer.SpanCount(),
			"sample_every", tracer.SampleEvery(), "dropped", tracer.Dropped())
	}
	hint := fmt.Sprintf("analyze with: analyze -i %s -sites %d -pages %d -seed %d",
		*out, *sites, *pages, *seed)
	if *epoch != 0 {
		hint += fmt.Sprintf(" -epoch %d", *epoch)
	}
	fmt.Fprintln(stderr, hint)
	return 0
}
