// Command crawl runs only the measurement (no analysis) and writes the raw
// visit records as JSON Lines — the commander/clients half of the paper's
// framework (Appendix C). Feed the output to cmd/analyze with the same
// -sites/-pages/-seed flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"webmeasure"
)

func main() {
	var (
		sites  = flag.Int("sites", 100, "number of sites to sample")
		pages  = flag.Int("pages", 10, "max subpages per site")
		seed   = flag.Int64("seed", 1, "master seed")
		out    = flag.String("o", "dataset.jsonl", "output path for the JSONL dataset")
		resume = flag.String("resume", "", "checkpoint dataset to continue from (reuses its successful visits)")
	)
	flag.Parse()

	cfg := webmeasure.Config{
		Seed: *seed, Sites: *sites, PagesPerSite: *pages,
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "crawled %d/%d sites\n", done, total)
			}
		},
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.ResumeJSONL = f
	}
	res, err := webmeasure.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteDataset(f); err != nil {
		fmt.Fprintf(os.Stderr, "crawl: write: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "crawl: close: %v\n", err)
		os.Exit(1)
	}
	st := res.CrawlStats()
	fmt.Fprintf(os.Stderr, "done: %d sites, %d pages discovered, %d visits (%d failed, %d reused) → %s\n",
		st.SitesVisited, st.PagesDiscovered, st.VisitsTotal, st.VisitsFailed, st.VisitsReused, *out)
	fmt.Fprintf(os.Stderr, "analyze with: analyze -i %s -sites %d -pages %d -seed %d\n",
		*out, *sites, *pages, *seed)
}
