// Command crawl runs only the measurement (no analysis) and writes the raw
// visit records as JSON Lines — the commander/clients half of the paper's
// framework (Appendix C). Feed the output to cmd/analyze with the same
// -sites/-pages/-seed flags. While the crawl runs, -progress prints live
// counter/timing snapshots (sites done, visit latency percentiles).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webmeasure"
	"webmeasure/internal/metrics"
)

func main() {
	// A first Ctrl-C cancels the crawl context so the run stops between
	// site batches instead of dying mid-write; a second one kills the
	// process (NotifyContext unregisters after the context fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: parse args, crawl, write the
// dataset. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sites    = fs.Int("sites", 100, "number of sites to sample")
		pages    = fs.Int("pages", 10, "max subpages per site")
		seed     = fs.Int64("seed", 1, "master seed")
		workers  = fs.Int("workers", 0, "analysis worker goroutines (0 = all CPUs)")
		progress = fs.Duration("progress", 10*time.Second, "interval between progress lines on stderr (0 = off)")
		out      = fs.String("o", "dataset.jsonl", "output path for the JSONL dataset")
		resume   = fs.String("resume", "", "checkpoint dataset to continue from (reuses its successful visits)")
		faults   = fs.String("faults", "", "deterministic fault-injection profile: off, light, or heavy (default off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := metrics.New()
	cfg := webmeasure.Config{
		Seed: *seed, Sites: *sites, PagesPerSite: *pages,
		FaultProfile: *faults,
		Workers:      *workers, Metrics: reg,
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(stderr, "crawled %d/%d sites\n", done, total)
			}
		},
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fmt.Fprintf(stderr, "crawl: %v\n", err)
			return 1
		}
		defer f.Close()
		cfg.ResumeJSONL = f
	}
	stopProgress := metrics.StartProgress(stderr, reg, *progress)
	res, err := webmeasure.Run(ctx, cfg)
	stopProgress()
	if err != nil {
		fmt.Fprintf(stderr, "crawl: %v\n", err)
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "crawl: %v\n", err)
		return 1
	}
	if err := res.WriteDataset(f); err != nil {
		fmt.Fprintf(stderr, "crawl: write: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "crawl: %v\n", err)
		return 1
	}
	st := res.CrawlStats()
	fmt.Fprintf(stderr, "metrics: %s\n", reg.Snapshot())
	fmt.Fprintf(stderr, "done: %d sites, %d pages discovered, %d visits (%d failed, %d reused) → %s\n",
		st.SitesVisited, st.PagesDiscovered, st.VisitsTotal, st.VisitsFailed, st.VisitsReused, *out)
	fmt.Fprintf(stderr, "analyze with: analyze -i %s -sites %d -pages %d -seed %d\n",
		*out, *sites, *pages, *seed)
	return 0
}
