package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestCrawlSmoke runs a tiny end-to-end crawl through the command's run
// function and checks the written dataset is valid JSONL.
func TestCrawlSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.jsonl")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-sites", "5", "-pages", "3", "-seed", "7", "-o", out, "-progress", "0"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if rec["site"] == "" {
			t.Fatalf("line %d has no site: %s", lines, sc.Text())
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if lines == 0 {
		t.Fatal("crawl wrote an empty dataset")
	}
	for _, want := range []string{"msg=metrics", "crawl.sites=5", `msg="crawl done"`, "sites=5"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestCrawlTrace runs the crawl with tracing on and checks both trace
// exports land on disk, the Chrome file has loadable trace-event shape,
// and the stage breakdown table reaches stderr.
func TestCrawlTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.jsonl")
	chrome := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "trace.jsonl")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-sites", "5", "-pages", "3", "-seed", "7", "-o", out, "-progress", "0",
			"-trace", chrome, "-trace-jsonl", jsonl},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("-trace output does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, e := range tf.TraceEvents {
		names[e.Name] = true
	}
	if !names["crawl.visit"] || !names["crawl.fetch"] {
		t.Errorf("-trace output missing crawl spans, got %v", names)
	}
	if fi, err := os.Stat(jsonl); err != nil || fi.Size() == 0 {
		t.Errorf("-trace-jsonl output missing or empty: %v", err)
	}
	for _, want := range []string{"Stage breakdown", "crawl.fetch", `msg="trace written"`} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestCrawlResume re-crawls with the first run's dataset as checkpoint and
// expects reused visits.
func TestCrawlResume(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.jsonl")
	second := filepath.Join(dir, "second.jsonl")
	var buf bytes.Buffer
	if code := run(context.Background(),
		[]string{"-sites", "5", "-pages", "3", "-seed", "7", "-o", first, "-progress", "0"},
		&buf, &buf); code != 0 {
		t.Fatalf("first run exited %d: %s", code, buf.String())
	}
	var stderr bytes.Buffer
	if code := run(context.Background(),
		[]string{"-sites", "5", "-pages", "3", "-seed", "7", "-o", second, "-resume", first, "-progress", "0"},
		&bytes.Buffer{}, &stderr); code != 0 {
		t.Fatalf("resume run exited %d: %s", code, stderr.String())
	}
	reused := regexp.MustCompile(`reused=([0-9]+)`).FindStringSubmatch(stderr.String())
	if reused == nil || reused[1] == "0" {
		t.Errorf("resume run should reuse checkpointed visits:\n%s", stderr.String())
	}
}

// TestCrawlBadFlags checks flag errors surface as exit code 2 and missing
// resume files as exit code 1.
func TestCrawlBadInput(t *testing.T) {
	var buf bytes.Buffer
	if code := run(context.Background(), []string{"-definitely-not-a-flag"}, &buf, &buf); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	if code := run(context.Background(),
		[]string{"-sites", "2", "-resume", filepath.Join(t.TempDir(), "missing.jsonl")},
		&buf, &buf); code != 1 {
		t.Errorf("missing resume file should exit 1, got %d", code)
	}
}
