// Command loadgen is the deterministic load harness for the job service.
// By default it runs the seeded discrete-event simulator and prints an
// SLO report — same seed and config, byte-identical report — which makes
// capacity questions scriptable: exit status 3 means the run completed
// but an SLO target failed. With -target it drives a real cmd/serve over
// HTTP with the same arrival schedule and job mix, scraping /metrics and
// /debug/scale into the same report format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"webmeasure/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configPath = fs.String("config", "", "JSON config file ('-' for stdin); flags below override it")
		seed       = fs.Int64("seed", 0, "override the config's seed")
		target     = fs.String("target", "", "live server base URL (implies live mode)")
		loop       = fs.String("loop", "", "override the loop: open or closed")
		arrival    = fs.String("arrival", "", "override the arrival process: fixed, poisson, or burst")
		rate       = fs.Float64("rate", 0, "override the open-loop arrival rate (jobs/sec)")
		clients    = fs.Int("clients", 0, "override the closed-loop client count")
		duration   = fs.Int64("duration-ms", 0, "override how long arrivals run (ms)")
		workers    = fs.Int("workers", 0, "override the per-job analysis worker count (never changes sim reports)")
		asJSON     = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg loadgen.Config
	if *configPath != "" {
		data, err := readConfig(*configPath)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
		if cfg, err = loadgen.Parse(data); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *target != "" {
		cfg.Target = *target
		cfg.Mode = "live"
	}
	if *loop != "" {
		cfg.Loop = *loop
	}
	if *arrival != "" {
		cfg.Arrival = *arrival
	}
	if *rate != 0 {
		cfg.RatePerSec = *rate
	}
	if *clients != 0 {
		cfg.Clients = *clients
	}
	if *duration != 0 {
		cfg.DurationMS = *duration
	}
	if *workers != 0 {
		cfg.Mix.AnalysisWorkers = *workers
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
	} else {
		rep.WriteText(stdout)
	}
	if !rep.Pass {
		return 3
	}
	return 0
}

func readConfig(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
