package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "loadgen.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// goldenConfig is a small burst scenario that scales and passes its SLO.
const goldenConfig = `{
  "seed": 42, "arrival": "burst", "rate_per_sec": 60,
  "burst_on_ms": 3000, "burst_off_ms": 9000, "duration_ms": 40000,
  "mix": {"cached_share": 0.3, "fault_light_share": 0.2, "fault_heavy_share": 0.1, "sharded_share": 0.1},
  "service": {
    "min_workers": 1, "max_workers": 6, "queue_depth": 32,
    "job_base_us": 20000, "job_per_visit_us": 4000,
    "scaler": {"up_cooldown_ms": 500, "down_cooldown_ms": 2000, "down_stable_ms": 1000}
  },
  "slo": {"queue_wait_p95_ms": 2000, "e2e_p99_ms": 5000, "max_rejected_share": 0.2, "min_cache_hit_ratio": 0.05}
}`

// TestCLIDeterministic: the CLI's stdout is byte-identical across runs of
// the same config, in both text and JSON form.
func TestCLIDeterministic(t *testing.T) {
	cfgPath := writeConfig(t, goldenConfig)
	code1, out1, stderr1 := runCLI(t, "-config", cfgPath)
	if code1 != 0 {
		t.Fatalf("exit %d, stderr: %s", code1, stderr1)
	}
	code2, out2, _ := runCLI(t, "-config", cfgPath)
	if code2 != 0 || out1 != out2 {
		t.Fatalf("same config, different output:\n--- 1 ---\n%s\n--- 2 ---\n%s", out1, out2)
	}
	if !strings.Contains(out1, "=== loadgen SLO report ===") || !strings.Contains(out1, "overall: PASS") {
		t.Fatalf("unexpected report:\n%s", out1)
	}

	codeJ, outJ, _ := runCLI(t, "-config", cfgPath, "-json")
	if codeJ != 0 {
		t.Fatalf("-json exit %d", codeJ)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(outJ), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, outJ)
	}
	if rep["mode"] != "sim" || rep["pass"] != true {
		t.Fatalf("json report: mode=%v pass=%v", rep["mode"], rep["pass"])
	}
	codeJ2, outJ2, _ := runCLI(t, "-config", cfgPath, "-json")
	if codeJ2 != 0 || outJ != outJ2 {
		t.Fatal("-json output is not deterministic")
	}
}

// TestCLIFlagOverrides: -seed changes the report; -workers never does.
func TestCLIFlagOverrides(t *testing.T) {
	cfgPath := writeConfig(t, goldenConfig)
	_, base, _ := runCLI(t, "-config", cfgPath)
	_, reseeded, _ := runCLI(t, "-config", cfgPath, "-seed", "43")
	if base == reseeded {
		t.Fatal("-seed 43 produced the same report as the config's seed 42")
	}
	code, workers8, _ := runCLI(t, "-config", cfgPath, "-workers", "8")
	if code != 0 || base != workers8 {
		t.Fatalf("-workers 8 changed the sim report (exit %d)", code)
	}
}

// TestCLISLOFailureExitCode: a hopeless SLO target exits 3, and the
// report says FAIL — so scripts can tell "SLO missed" from "broke".
func TestCLISLOFailureExitCode(t *testing.T) {
	cfgPath := writeConfig(t, `{
	  "seed": 1, "arrival": "fixed", "rate_per_sec": 50, "duration_ms": 5000,
	  "service": {"min_workers": 1, "max_workers": 1, "queue_depth": 4, "job_base_us": 200000},
	  "slo": {"e2e_p99_ms": 1}
	}`)
	code, out, _ := runCLI(t, "-config", cfgPath)
	if code != 3 {
		t.Fatalf("SLO failure exit = %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "overall: FAIL") {
		t.Fatalf("report should FAIL:\n%s", out)
	}
}

// TestCLIBadInput: unparseable flags, configs, and files exit 2 before
// any run starts.
func TestCLIBadInput(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "-config", writeConfig(t, `{"sede": 3}`)); code != 2 || !strings.Contains(stderr, "invalid config") {
		t.Fatalf("typoed config field: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runCLI(t, "-config", filepath.Join(t.TempDir(), "absent.json")); code != 2 {
		t.Fatal("missing config file should exit 2")
	}
	if code, _, stderr := runCLI(t, "-config", writeConfig(t, `{"mode": "chaos"}`)); code != 1 || !strings.Contains(stderr, "unknown mode") {
		t.Fatalf("invalid mode: exit %d, stderr %q", code, stderr)
	}
}
