// Command benchdataset measures the dataset-format trade-off end to end:
// decode throughput (MB/s), full load-and-analyze wall time, and peak
// RSS for the JSONL and columnar encodings of the same crawl, at 1×/4×/
// 16× scale. Every (format, operation, scale) case runs in its own child
// process — re-executing this binary with -case — so getrusage MaxRSS is
// an honest per-case peak, not an artifact of allocator reuse across
// cases. The driver writes the numbers as machine-readable JSON
// (BENCH_dataset.json by default), shape-guarded by
// TestBenchDatasetJSONWellFormed.
//
// Dataset generation also runs in a child (-gen): Linux carries the
// parent's peak RSS into a forked child's ru_maxrss, so a driver that
// crawled in-process would put a ~hundreds-of-MB floor under every
// measurement. The driver itself never touches a dataset.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"webmeasure"
	"webmeasure/internal/dataset"
)

// scales are the dataset sizes measured, as multiples of the base
// (sites=10, pages=4) experiment.
var scales = []int{1, 4, 16}

const (
	baseSites = 10
	basePages = 4
	benchSeed = 11
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdataset", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "BENCH_dataset.json", "output path for the benchmark JSON")
		caseMode = fs.Bool("case", false, "run one measurement case and print its JSON (internal: the driver re-executes itself with this flag)")
		genMode  = fs.Bool("gen", false, "crawl one scale and write both dataset formats (internal, see -case)")
		dir      = fs.String("dir", "", "gen mode: directory to write the dataset files into")
		scale    = fs.Int("scale", 0, "gen mode: dataset scale multiplier")
		input    = fs.String("input", "", "case mode: dataset file to measure")
		op       = fs.String("op", "", "case mode: load (decode only) or analyze (full pipeline)")
		sites    = fs.Int("sites", 0, "case mode: sites the dataset was crawled with")
		pages    = fs.Int("pages", 0, "case mode: pages per site the dataset was crawled with")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *caseMode:
		return runCase(*input, *op, *sites, *pages, stdout, stderr)
	case *genMode:
		return runGen(*dir, *scale, stderr)
	}
	return runDriver(*out, stdout, stderr)
}

// caseResult is one measured (format, op, scale) cell.
type caseResult struct {
	Name    string  `json:"name"`
	Scale   int     `json:"scale"`
	Format  string  `json:"format"`
	Op      string  `json:"op"`
	Sites   int     `json:"sites"`
	Bytes   int64   `json:"bytes"`
	Visits  int     `json:"visits"`
	WallMS  float64 `json:"wall_ms"`
	MBPerS  float64 `json:"mb_per_s"`
	RSSKB   int64   `json:"max_rss_kb"`
}

// dsPath is the naming convention shared by the -gen child and the
// driver.
func dsPath(dir string, scale int, format string) string {
	ext := "jsonl"
	if format == dataset.FormatCol {
		ext = "col"
	}
	return filepath.Join(dir, fmt.Sprintf("ds-%dx.%s", scale, ext))
}

// runGen crawls one scale and writes both encodings of the dataset.
func runGen(dir string, scale int, stderr io.Writer) int {
	if dir == "" || scale <= 0 {
		fmt.Fprintln(stderr, "benchdataset: -gen needs -dir and -scale")
		return 2
	}
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed: benchSeed, Sites: baseSites * scale, PagesPerSite: basePages,
	})
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: crawl: %v\n", err)
		return 1
	}
	if err := writeFile(dsPath(dir, scale, dataset.FormatJSONL), res.WriteDataset); err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	if err := writeFile(dsPath(dir, scale, dataset.FormatCol), res.WriteDatasetCol); err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	return 0
}

// runCase executes one measurement in this process and prints the JSON
// result: open the file, run the operation, report wall time and the
// process's peak RSS.
func runCase(input, op string, sites, pages int, stdout, stderr io.Writer) int {
	f, err := os.Open(input)
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}

	visits := 0
	start := time.Now()
	switch op {
	case "load":
		ds, err := dataset.ReadAuto(f)
		if err != nil {
			fmt.Fprintf(stderr, "benchdataset: load: %v\n", err)
			return 1
		}
		visits = ds.Len()
	case "analyze":
		res, err := webmeasure.LoadAndAnalyze(f, webmeasure.Config{
			Seed: benchSeed, Sites: sites, PagesPerSite: pages,
		})
		if err != nil {
			fmt.Fprintf(stderr, "benchdataset: analyze: %v\n", err)
			return 1
		}
		visits = res.Dataset().Len()
	default:
		fmt.Fprintf(stderr, "benchdataset: unknown -op %q\n", op)
		return 2
	}
	wall := time.Since(start)

	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		fmt.Fprintf(stderr, "benchdataset: getrusage: %v\n", err)
		return 1
	}
	r := caseResult{
		Bytes:  st.Size(),
		Visits: visits,
		WallMS: float64(wall) / float64(time.Millisecond),
		MBPerS: float64(st.Size()) / (1 << 20) / wall.Seconds(),
		// Linux reports ru_maxrss in KiB.
		RSSKB: ru.Maxrss,
	}
	if err := json.NewEncoder(stdout).Encode(r); err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	return 0
}

// summaryRow compares the two formats at one scale.
type summaryRow struct {
	Scale          int     `json:"scale"`
	Sites          int     `json:"sites"`
	JSONLBytes     int64   `json:"jsonl_bytes"`
	ColBytes       int64   `json:"col_bytes"`
	SizeRatio      float64 `json:"size_ratio"`
	LoadSpeedup    float64 `json:"load_speedup"`
	AnalyzeSpeedup float64 `json:"analyze_speedup"`
	LoadRSSRatio   float64 `json:"load_rss_ratio"`
}

// runDriver generates the datasets at every scale, fans the measurement
// cases out to child processes, and writes the combined JSON.
func runDriver(out string, stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	work, err := os.MkdirTemp("", "benchdataset")
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	defer os.RemoveAll(work)

	var cases []caseResult
	var summary []summaryRow
	for _, scale := range scales {
		sites := baseSites * scale
		fmt.Fprintf(stderr, "benchdataset: generating %dx dataset (%d sites)...\n", scale, sites)
		gen := exec.Command(self, "-gen", "-dir", work, "-scale", fmt.Sprint(scale))
		gen.Stderr = stderr
		if err := gen.Run(); err != nil {
			fmt.Fprintf(stderr, "benchdataset: generate %dx: %v\n", scale, err)
			return 1
		}

		byKey := map[string]caseResult{}
		for _, format := range []string{dataset.FormatJSONL, dataset.FormatCol} {
			for _, op := range []string{"load", "analyze"} {
				r, err := runChild(self, dsPath(work, scale, format), op, sites, basePages, stderr)
				if err != nil {
					fmt.Fprintf(stderr, "benchdataset: %s/%s/%dx: %v\n", op, format, scale, err)
					return 1
				}
				r.Name = fmt.Sprintf("%s/%s/%dx", op, format, scale)
				r.Scale, r.Format, r.Op, r.Sites = scale, format, op, sites
				fmt.Fprintf(stderr, "benchdataset: %-20s %8.1f ms  %7.1f MB/s  %8d KB rss  (%d visits, %d bytes)\n",
					r.Name, r.WallMS, r.MBPerS, r.RSSKB, r.Visits, r.Bytes)
				cases = append(cases, r)
				byKey[format+"/"+op] = r
			}
		}
		jl, cl := byKey["jsonl/load"], byKey["col/load"]
		ja, ca := byKey["jsonl/analyze"], byKey["col/analyze"]
		summary = append(summary, summaryRow{
			Scale:          scale,
			Sites:          sites,
			JSONLBytes:     jl.Bytes,
			ColBytes:       cl.Bytes,
			SizeRatio:      ratio(float64(jl.Bytes), float64(cl.Bytes)),
			LoadSpeedup:    ratio(jl.WallMS, cl.WallMS),
			AnalyzeSpeedup: ratio(ja.WallMS, ca.WallMS),
			LoadRSSRatio:   ratio(float64(jl.RSSKB), float64(cl.RSSKB)),
		})
	}

	doc := struct {
		Cases   []caseResult `json:"cases"`
		Summary []summaryRow `json:"summary"`
	}{Cases: cases, Summary: summary}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchdataset: %v\n", err)
		return 1
	}
	for _, s := range summary {
		fmt.Fprintf(stdout, "benchdataset: %2dx (%3d sites): col is %.1fx smaller, loads %.1fx faster, analyzes %.1fx faster, load peak RSS %.1fx lower\n",
			s.Scale, s.Sites, s.SizeRatio, s.LoadSpeedup, s.AnalyzeSpeedup, s.LoadRSSRatio)
	}
	fmt.Fprintf(stdout, "benchdataset: %d cases written to %s\n", len(cases), out)
	return 0
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runChild re-executes this binary for one case and parses its JSON.
func runChild(self, input, op string, sites, pages int, stderr io.Writer) (caseResult, error) {
	var outBuf bytes.Buffer
	cmd := exec.Command(self, "-case",
		"-input", input, "-op", op,
		"-sites", fmt.Sprint(sites), "-pages", fmt.Sprint(pages))
	cmd.Stdout = &outBuf
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return caseResult{}, err
	}
	var r caseResult
	if err := json.Unmarshal(outBuf.Bytes(), &r); err != nil {
		return caseResult{}, fmt.Errorf("parse case output: %w", err)
	}
	return r, nil
}
