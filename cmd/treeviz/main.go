// Command treeviz renders the dependency trees the five profiles observe
// for one page of the synthetic web, side by side with the per-node
// cross-comparison — an inspection tool for the paper's core method.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"webmeasure/internal/browser"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/webgen"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "master seed")
		rank = flag.Int("rank", 1, "site rank to inspect")
		page = flag.Int("page", 0, "page index (0 = landing page)")
		full = flag.Bool("full", false, "print every tree, not just the first profile's")
		dot  = flag.String("dot", "", "write the trees as Graphviz DOT to this file instead of text output")
		diff = flag.Bool("diff", false, "print pairwise diffs against the first profile instead of trees")
		cons = flag.Bool("consensus", false, "print the consensus skeleton (majority quorum) instead of trees")
	)
	flag.Parse()

	u := webgen.New(webgen.DefaultConfig(*seed))
	list := tranco.Generate(*rank+10, *seed)
	entry, ok := list.At(*rank)
	if !ok {
		fmt.Fprintf(os.Stderr, "treeviz: rank %d out of range\n", *rank)
		os.Exit(1)
	}
	site := u.GenerateSite(entry)
	pages := site.AllPages()
	if *page < 0 || *page >= len(pages) {
		fmt.Fprintf(os.Stderr, "treeviz: site has %d pages\n", len(pages))
		os.Exit(1)
	}
	target := pages[*page]
	filter, _ := filterlist.Parse(u.FilterListText())
	builder := &tree.Builder{Filter: filter}

	var trees []*tree.Tree
	for _, prof := range browser.DefaultProfiles() {
		b := browser.New(prof)
		nonce := webgen.NonceFor(uint64(*seed), prof.Name, target.URL)
		v := b.Visit(target, nonce)
		if !v.Success {
			fmt.Printf("%s: visit failed (%s)\n", prof.Name, v.Failure)
			continue
		}
		t, err := builder.Build(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treeviz: %v\n", err)
			os.Exit(1)
		}
		trees = append(trees, t)
	}
	if len(trees) == 0 {
		fmt.Fprintln(os.Stderr, "treeviz: no successful visits")
		os.Exit(1)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treeviz: %v\n", err)
			os.Exit(1)
		}
		writeDOT(f, trees)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "treeviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "DOT graph written to %s (render with: dot -Tsvg %s)\n", *dot, *dot)
		return
	}

	fmt.Printf("page %s (site rank %d)\n\n", target.URL, entry.Rank)
	if *diff {
		for _, t := range trees[1:] {
			d := treediff.ComputeDiff(trees[0], t)
			d.Write(os.Stdout, 10)
			fmt.Println()
		}
		return
	}
	if *cons {
		nodes := treediff.Consensus(trees, 0)
		fmt.Printf("consensus skeleton (majority of %d trees): %d nodes, %.0f%% of the union\n\n",
			len(trees), len(nodes), treediff.ConsensusShare(trees, 0)*100)
		for _, n := range nodes {
			marks := ""
			if n.Tracking {
				marks += " [tracking]"
			}
			if n.ThirdParty {
				marks += " [3p]"
			}
			fmt.Printf("%d/%d  parent-agreement %.2f  %s%s\n",
				n.Presence, len(trees), n.ParentAgreement, trim(n.Key, 90), marks)
		}
		return
	}
	for _, t := range trees {
		fmt.Printf("--- %s: %d nodes, depth %d, breadth %d ---\n",
			t.Profile, t.NodeCount(), t.MaxDepth(), t.Breadth())
		if *full || t == trees[0] {
			printTree(t.Root, "")
		}
		fmt.Println()
	}

	cmp := treediff.Compare(trees)
	fmt.Printf("--- cross-comparison over %d trees ---\n", len(trees))
	type row struct {
		key string
		ni  *treediff.NodeInfo
	}
	var rows []row
	for k, ni := range cmp.Nodes {
		rows = append(rows, row{k, ni})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ni.Presence != rows[j].ni.Presence {
			return rows[i].ni.Presence < rows[j].ni.Presence
		}
		return rows[i].key < rows[j].key
	})
	for _, r := range rows {
		marks := ""
		if r.ni.Tracking {
			marks += " [tracking]"
		}
		if r.ni.Party == tree.ThirdParty {
			marks += " [3p]"
		}
		fmt.Printf("%d/%d  child=%.2f parent=%.2f  %s%s\n",
			r.ni.Presence, len(trees), r.ni.ChildSim, r.ni.ParentSim, trim(r.key, 90), marks)
	}
}

func printTree(n *tree.Node, indent string) {
	label := trim(n.Key, 100-len(indent))
	suffix := ""
	if n.Tracking {
		suffix = " *"
	}
	fmt.Printf("%s%s (%s)%s\n", indent, label, n.Type, suffix)
	sort.Slice(n.Children, func(a, b int) bool { return n.Children[a].Key < n.Children[b].Key })
	for _, c := range n.Children {
		printTree(c, indent+"  ")
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// writeDOT renders all trees as one Graphviz digraph, one cluster per
// profile, tracking nodes highlighted.
func writeDOT(w io.Writer, trees []*tree.Tree) {
	fmt.Fprintln(w, "digraph dependency_trees {")
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontsize=9];")
	for ti, t := range trees {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", ti)
		fmt.Fprintf(w, "    label=%q;\n", t.Profile)
		id := func(n *tree.Node) string {
			return fmt.Sprintf("n%d_%x", ti, fnvHash(n.Key))
		}
		for _, n := range t.Nodes() {
			attrs := fmt.Sprintf("label=%q", dotLabel(n))
			if n.Tracking {
				attrs += ", style=filled, fillcolor=lightcoral"
			} else if n.Party == tree.ThirdParty {
				attrs += ", style=filled, fillcolor=lightyellow"
			}
			fmt.Fprintf(w, "    %s [%s];\n", id(n), attrs)
			if n.Parent != nil {
				fmt.Fprintf(w, "    %s -> %s;\n", id(n.Parent), id(n))
			}
		}
		fmt.Fprintln(w, "  }")
	}
	fmt.Fprintln(w, "}")
}

func dotLabel(n *tree.Node) string {
	label := n.Key
	if len(label) > 48 {
		label = "…" + label[len(label)-47:]
	}
	return label
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
