// Command convert transcodes a dataset between the JSONL interchange
// format (one visit per line, greppable, the released raw-data artifact)
// and the compact columnar format (per-site blocks with interned strings
// and delta-coded columns, the fast analysis input). The conversion is
// lossless in both directions: jsonl → col → jsonl reproduces the
// original file byte for byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"webmeasure/internal/dataset"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable body of the command: parse args, read the input in
// its detected format, write the output in the requested one. It returns
// the process exit code.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in  = fs.String("i", "", "input dataset (jsonl or columnar, auto-detected)")
		out = fs.String("o", "", "output path")
		to  = fs.String("to", "auto", "output format: jsonl, col, or auto (the opposite of the input's)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "convert: -i and -o are required")
		return 2
	}
	switch *to {
	case "auto", dataset.FormatJSONL, dataset.FormatCol:
	default:
		fmt.Fprintf(stderr, "convert: unknown -to %q (want jsonl, col, or auto)\n", *to)
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	defer f.Close()
	inFormat, rd, err := dataset.DetectFormat(f)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	outFormat := *to
	if outFormat == "auto" {
		outFormat = dataset.FormatCol
		if inFormat == dataset.FormatCol {
			outFormat = dataset.FormatJSONL
		}
	}
	ds, err := dataset.ReadAuto(rd)
	if err != nil {
		fmt.Fprintf(stderr, "convert: read %s: %v\n", *in, err)
		return 1
	}

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	write := ds.WriteJSONL
	if outFormat == dataset.FormatCol {
		write = ds.WriteCol
	}
	if err := write(of); err != nil {
		of.Close()
		fmt.Fprintf(stderr, "convert: write %s: %v\n", *out, err)
		return 1
	}
	if err := of.Close(); err != nil {
		fmt.Fprintf(stderr, "convert: write %s: %v\n", *out, err)
		return 1
	}
	fmt.Fprintf(stderr, "convert: %s (%s) -> %s (%s), %d visits\n", *in, inFormat, *out, outFormat, ds.Len())
	return 0
}
