// Command tracecheck validates a Chrome trace-event JSON file the way a
// trace viewer would have to parse it: the top-level object must carry a
// traceEvents array; every event needs a name, a known phase, and a
// non-negative timestamp; complete ("X") events need non-negative
// durations; and -require asserts that specific span names are present.
// The trace smoke test (make trace-smoke) runs it over a real crawl's
// -trace output so a regression in the exporter fails CI, not a viewer.
//
// Usage:
//
//	tracecheck [-require crawl.visit,analyze.compare] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// traceEventFile mirrors the trace-event JSON format's top level. Extra
// fields are tolerated (the format allows metadata keys).
type traceEventFile struct {
	TraceEvents *[]traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   *int64 `json:"ts"`
	Dur  *int64 `json:"dur"`
}

// knownPhases are the trace-event phases this pipeline emits (complete
// spans, instants, metadata); anything else marks exporter drift.
var knownPhases = map[string]bool{"X": true, "i": true, "M": true}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	require := fs.String("require", "", "comma-separated span names that must appear in the trace")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracecheck [-require name,name] trace.json")
		return 2
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "tracecheck: %v\n", err)
		return 1
	}
	var tf traceEventFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fmt.Fprintf(stderr, "tracecheck: %s is not valid JSON: %v\n", path, err)
		return 1
	}
	if tf.TraceEvents == nil {
		fmt.Fprintf(stderr, "tracecheck: %s has no traceEvents array\n", path)
		return 1
	}
	names := map[string]bool{}
	var spans int
	for i, e := range *tf.TraceEvents {
		if e.Name == "" {
			fmt.Fprintf(stderr, "tracecheck: event %d has no name\n", i)
			return 1
		}
		if !knownPhases[e.Ph] {
			fmt.Fprintf(stderr, "tracecheck: event %d (%s) has unknown phase %q\n", i, e.Name, e.Ph)
			return 1
		}
		if e.Ph == "M" {
			continue // metadata events carry no timeline fields
		}
		if e.Ts == nil || *e.Ts < 0 {
			fmt.Fprintf(stderr, "tracecheck: event %d (%s) has a missing or negative ts\n", i, e.Name)
			return 1
		}
		if e.Ph == "X" {
			if e.Dur == nil || *e.Dur < 0 {
				fmt.Fprintf(stderr, "tracecheck: X event %d (%s) has a missing or negative dur\n", i, e.Name)
				return 1
			}
			spans++
			names[e.Name] = true
		}
	}
	if *require != "" {
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !names[want] {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(stderr, "tracecheck: %s is missing required spans: %s\n",
				path, strings.Join(missing, ", "))
			return 1
		}
	}
	fmt.Fprintf(stdout, "tracecheck: OK (%d events, %d spans, %d distinct span names)\n",
		len(*tf.TraceEvents), spans, len(names))
	return 0
}
