package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// check writes body to a temp file and runs the validator over it.
func check(t *testing.T, body string, flags ...string) (int, string, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(append(flags, path), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestTracecheckAcceptsValidTrace(t *testing.T) {
	body := `{"displayTimeUnit":"ms","traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"page a"}},
		{"name":"crawl.visit","ph":"X","ts":100,"dur":50,"pid":1,"tid":1},
		{"name":"retry.decided","ph":"i","ts":120,"s":"t","pid":1,"tid":1}
	]}`
	code, stdout, stderr := check(t, body, "-require", "crawl.visit")
	if code != 0 {
		t.Fatalf("valid trace rejected (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "tracecheck: OK") || !strings.Contains(stdout, "1 spans") {
		t.Fatalf("unexpected output: %s", stdout)
	}
}

func TestTracecheckRejectsBadShapes(t *testing.T) {
	for name, tc := range map[string]struct {
		body  string
		flags []string
		want  string
	}{
		"not json":         {body: "nope", want: "not valid JSON"},
		"no traceEvents":   {body: `{"foo": 1}`, want: "no traceEvents array"},
		"null traceEvents": {body: `{"traceEvents": null}`, want: "no traceEvents array"},
		"nameless event":   {body: `{"traceEvents":[{"ph":"X","ts":1,"dur":1}]}`, want: "has no name"},
		"unknown phase":    {body: `{"traceEvents":[{"name":"x","ph":"Z","ts":1}]}`, want: "unknown phase"},
		"missing ts":       {body: `{"traceEvents":[{"name":"x","ph":"X","dur":1}]}`, want: "missing or negative ts"},
		"negative dur":     {body: `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2}]}`, want: "negative dur"},
		"missing span": {
			body:  `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1}]}`,
			flags: []string{"-require", "x,crawl.visit"},
			want:  "missing required spans: crawl.visit",
		},
	} {
		code, _, stderr := check(t, tc.body, tc.flags...)
		if code != 1 {
			t.Errorf("%s: exit = %d, want 1", name, code)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr missing %q: %s", name, tc.want, stderr)
		}
	}
}

func TestTracecheckUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag", "x"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "absent.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit = %d, want 1", code)
	}
}
