// Command webmeasure runs the full experiment end to end — crawl the
// synthetic web with the paper's five profiles, build and cross-compare the
// dependency trees, and print every table and figure of the evaluation.
//
// Usage:
//
//	webmeasure [-sites N] [-pages N] [-seed N] [-dataset FILE] [-trace FILE] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"webmeasure"
	"webmeasure/internal/metrics"
	"webmeasure/internal/report"
	"webmeasure/internal/trace"
	"webmeasure/internal/version"
)

func main() {
	var (
		sites       = flag.Int("sites", 100, "number of sites to sample across the five rank buckets")
		pages       = flag.Int("pages", 10, "max subpages per site (the paper uses 25)")
		seed        = flag.Int64("seed", 1, "master seed; the whole experiment is reproducible from it")
		dsPath      = flag.String("dataset", "", "also write the raw visit records (JSON Lines) to this file")
		epoch       = flag.Int("epoch", 0, "web snapshot epoch (0 = base; higher = later in time)")
		faults      = flag.String("faults", "", "deterministic fault-injection profile: off, light, or heavy (default off)")
		quiet       = flag.Bool("quiet", false, "suppress crawl progress")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (chrome://tracing)")
		traceJSONL  = flag.String("trace-jsonl", "", "write the span trace as JSON Lines to this file")
		traceSample = flag.Int("trace-sample", 1, "trace one page in N (head-based sampling; 1 = every page)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logJSON     = flag.Bool("log-json", false, "emit log records as JSON instead of key=value text")
		showVersion = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	logger, err := trace.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webmeasure: %v\n", err)
		os.Exit(2)
	}

	cfg := webmeasure.Config{Seed: *seed, Sites: *sites, PagesPerSite: *pages, Epoch: *epoch, FaultProfile: *faults}
	var tracer *trace.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		cfg.Metrics = metrics.New()
		tracer = trace.New(trace.Options{Seed: *seed, SampleEvery: *traceSample, Metrics: cfg.Metrics})
		cfg.Tracer = tracer
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				logger.Info("crawl progress", "done", done, "total", total)
			}
		}
	}

	res, err := webmeasure.Run(context.Background(), cfg)
	if err != nil {
		logger.Error("run failed", "error", err.Error())
		os.Exit(1)
	}
	if *dsPath != "" {
		f, err := os.Create(*dsPath)
		if err != nil {
			logger.Error("dataset write failed", "error", err.Error())
			os.Exit(1)
		}
		if err := res.WriteDataset(f); err != nil {
			logger.Error("dataset write failed", "error", err.Error())
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logger.Error("dataset write failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("raw dataset written", "path", *dsPath)
	}
	if tracer != nil {
		report.WriteStageBreakdown(os.Stderr, tracer.StageBreakdown())
		if err := tracer.WriteFiles(*traceOut, *traceJSONL); err != nil {
			logger.Error("trace write failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("trace written",
			"traces", tracer.TraceCount(), "spans", tracer.SpanCount(),
			"sample_every", tracer.SampleEvery(), "dropped", tracer.Dropped())
	}
	res.WriteReport(os.Stdout)
}
