// Command webmeasure runs the full experiment end to end — crawl the
// synthetic web with the paper's five profiles, build and cross-compare the
// dependency trees, and print every table and figure of the evaluation.
//
// Usage:
//
//	webmeasure [-sites N] [-pages N] [-seed N] [-dataset FILE] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"webmeasure"
)

func main() {
	var (
		sites  = flag.Int("sites", 100, "number of sites to sample across the five rank buckets")
		pages  = flag.Int("pages", 10, "max subpages per site (the paper uses 25)")
		seed   = flag.Int64("seed", 1, "master seed; the whole experiment is reproducible from it")
		dsPath = flag.String("dataset", "", "also write the raw visit records (JSON Lines) to this file")
		epoch  = flag.Int("epoch", 0, "web snapshot epoch (0 = base; higher = later in time)")
		faults = flag.String("faults", "", "deterministic fault-injection profile: off, light, or heavy (default off)")
		quiet  = flag.Bool("quiet", false, "suppress crawl progress")
	)
	flag.Parse()

	cfg := webmeasure.Config{Seed: *seed, Sites: *sites, PagesPerSite: *pages, Epoch: *epoch, FaultProfile: *faults}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "crawled %d/%d sites\n", done, total)
			}
		}
	}

	res, err := webmeasure.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webmeasure: %v\n", err)
		os.Exit(1)
	}
	if *dsPath != "" {
		f, err := os.Create(*dsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webmeasure: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteDataset(f); err != nil {
			fmt.Fprintf(os.Stderr, "webmeasure: write dataset: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "webmeasure: close dataset: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "raw dataset written to %s\n", *dsPath)
	}
	res.WriteReport(os.Stdout)
}
