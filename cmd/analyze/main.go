// Command analyze loads a dataset written by cmd/crawl and regenerates the
// paper's tables and figures from it. The -sites/-pages/-seed flags must
// match the crawl so the universe (filter list, rank sample) is rebuilt
// identically.
package main

import (
	"flag"
	"fmt"
	"os"

	"webmeasure"
)

func main() {
	var (
		in      = flag.String("i", "dataset.jsonl", "input JSONL dataset")
		sites   = flag.Int("sites", 100, "sites used for the crawl")
		pages   = flag.Int("pages", 10, "pages per site used for the crawl")
		seed    = flag.Int64("seed", 1, "seed used for the crawl")
		csvDir  = flag.String("csv", "", "also export tables/figures as CSV files into this directory")
		jsonOut = flag.String("json", "", "also export all results as one JSON bundle to this file")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	res, err := webmeasure.LoadAndAnalyze(f, webmeasure.Config{
		Seed: *seed, Sites: *sites, PagesPerSite: *pages,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	res.WriteReport(os.Stdout)
	if *jsonOut != "" {
		jf, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(jf); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: json export: %v\n", err)
			os.Exit(1)
		}
		if err := jf.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "JSON bundle written to %s\n", *jsonOut)
	}
	if *csvDir != "" {
		if err := res.WriteCSVFiles(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "analyze: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV files written to %s\n", *csvDir)
	}
}
