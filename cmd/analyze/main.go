// Command analyze loads a dataset written by cmd/crawl and regenerates the
// paper's tables and figures from it. The -sites/-pages/-seed flags must
// match the crawl so the universe (filter list, rank sample) is rebuilt
// identically. The analysis fans out over -workers goroutines; its output
// is byte-identical for every worker count. -trace records deterministic
// spans for every analysis stage (vet, build, compare) and prints a
// per-stage breakdown table; diagnostics are structured log records on
// stderr (-log-level, -log-json).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"webmeasure"
	"webmeasure/internal/colstore"
	"webmeasure/internal/dataset"
	"webmeasure/internal/drift"
	"webmeasure/internal/metrics"
	"webmeasure/internal/report"
	"webmeasure/internal/trace"
)

func main() {
	// A first Ctrl-C cancels the analysis context so the worker pool
	// stops between pages and no half-written export is left behind; a
	// second one kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: parse args, analyze, export.
// It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("i", "dataset.jsonl", "input dataset (jsonl or columnar)")
		format    = fs.String("format", "auto", "input dataset format: auto (sniff the magic bytes), jsonl, or col")
		sites     = fs.Int("sites", 100, "sites used for the crawl")
		pages     = fs.Int("pages", 10, "pages per site used for the crawl")
		seed      = fs.Int64("seed", 1, "seed used for the crawl")
		epoch     = fs.Int("epoch", 0, "epoch used for the crawl (0 = base snapshot)")
		workers   = fs.Int("workers", 0, "analysis worker goroutines (0 = all CPUs)")
		shards    = fs.Int("shards", 0, "run the shard-and-merge pipeline over N page-key shards (0/1 = single analysis; output is byte-identical either way)")
		shardSeed = fs.Int64("shard-seed", 0, "seed of the shard plan's page-key hash (0 = -seed)")
		progress  = fs.Duration("progress", 10*time.Second, "interval between progress lines on stderr (0 = off)")
		csvDir    = fs.String("csv", "", "also export tables/figures as CSV files into this directory")
		jsonOut   = fs.String("json", "", "also export all results as one JSON bundle to this file")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the analysis to this file (go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a heap profile after the analysis to this file (go tool pprof)")

		baselineOut = fs.String("baseline-out", "", "write this run's drift baseline (per-site third parties, similarity summaries) to this JSON file")
		driftFrom   = fs.String("drift-from", "", "compare against a prior baseline JSON file and print the drift section")
		driftJSON   = fs.String("drift-json", "", "with -drift-from, also write the delta as JSON to this file")

		traceOut    = fs.String("trace", "", "write a Chrome trace-event JSON of the analysis to this file (chrome://tracing)")
		traceJSONL  = fs.String("trace-jsonl", "", "write the span trace as JSON Lines to this file")
		traceSample = fs.Int("trace-sample", 1, "trace one page in N (head-based sampling; 1 = every page)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logJSON     = fs.Bool("log-json", false, "emit log records as JSON instead of key=value text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := trace.NewLogger(stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(stderr, "analyze: %v\n", err)
		return 2
	}
	if *driftJSON != "" && *driftFrom == "" {
		fmt.Fprintln(stderr, "analyze: -drift-json requires -drift-from")
		return 2
	}

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "analyze: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(stderr, "analyze: cpuprofile: %v\n", err)
			pf.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProf != "" {
		// Written on the way out so the profile covers the analysis'
		// steady state, after a GC settles what is actually retained.
		defer func() {
			pf, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "analyze: memprofile: %v\n", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintf(stderr, "analyze: memprofile: %v\n", err)
			}
		}()
	}

	f, err := os.Open(*in)
	if err != nil {
		logger.Error("analysis failed", "error", err.Error())
		return 1
	}
	defer f.Close()

	// -format=jsonl/col asserts the input's detected format; the load
	// itself always dispatches on the magic bytes.
	head := make([]byte, len(colstore.Magic))
	n, _ := f.ReadAt(head, 0)
	detected := dataset.FormatJSONL
	if colstore.Sniff(head[:n]) {
		detected = dataset.FormatCol
	}
	switch *format {
	case "auto":
	case dataset.FormatJSONL, dataset.FormatCol:
		if *format != detected {
			fmt.Fprintf(stderr, "analyze: -format=%s but %s is a %s dataset\n", *format, *in, detected)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "analyze: unknown -format %q (want auto, jsonl, or col)\n", *format)
		return 2
	}

	reg := metrics.New()
	var tracer *trace.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		tracer = trace.New(trace.Options{Seed: *seed, SampleEvery: *traceSample, Metrics: reg})
	}
	stopProgress := metrics.StartProgress(ctx, stderr, reg, *progress)
	res, err := webmeasure.LoadAndAnalyzeShardedContext(ctx, f, webmeasure.Config{
		Seed: *seed, Sites: *sites, PagesPerSite: *pages, Epoch: *epoch,
		Workers: *workers, Metrics: reg, Tracer: tracer,
		Shards: *shards, ShardSeed: *shardSeed,
	})
	stopProgress()
	if err != nil {
		logger.Error("analysis failed", "error", err.Error())
		return 1
	}
	res.WriteReport(stdout)
	if *baselineOut != "" || *driftFrom != "" {
		// The baseline/delta pair is the longitudinal half of the analysis:
		// -baseline-out persists this epoch's snapshot, -drift-from diffs it
		// against a prior epoch's and appends the drift section.
		b := res.DriftBaseline()
		if *baselineOut != "" {
			data, err := b.Encode()
			if err == nil {
				err = os.WriteFile(*baselineOut, data, 0o644)
			}
			if err != nil {
				logger.Error("baseline export failed", "error", err.Error())
				return 1
			}
			logger.Info("baseline written", "path", *baselineOut, "epoch", b.Meta.Epoch)
		}
		if *driftFrom != "" {
			prevData, err := os.ReadFile(*driftFrom)
			if err != nil {
				logger.Error("drift comparison failed", "error", err.Error())
				return 1
			}
			prev, err := drift.DecodeBaseline(prevData)
			if err != nil {
				logger.Error("drift comparison failed", "error", err.Error())
				return 1
			}
			d, err := drift.Diff(prev, b)
			if err != nil {
				logger.Error("drift comparison failed", "error", err.Error())
				return 1
			}
			fmt.Fprintln(stdout)
			report.WriteDriftSection(stdout, d, nil)
			if *driftJSON != "" {
				data, err := d.Encode()
				if err == nil {
					err = os.WriteFile(*driftJSON, data, 0o644)
				}
				if err != nil {
					logger.Error("drift export failed", "error", err.Error())
					return 1
				}
				logger.Info("drift delta written", "path", *driftJSON)
			}
		}
	}
	logger.Info("metrics", "snapshot", fmt.Sprint(reg.Snapshot()))
	if tracer != nil {
		report.WriteStageBreakdown(stderr, tracer.StageBreakdown())
		if err := tracer.WriteFiles(*traceOut, *traceJSONL); err != nil {
			logger.Error("trace write failed", "error", err.Error())
			return 1
		}
		logger.Info("trace written",
			"traces", tracer.TraceCount(), "spans", tracer.SpanCount(),
			"sample_every", tracer.SampleEvery(), "dropped", tracer.Dropped())
	}
	if *jsonOut != "" {
		jf, err := os.Create(*jsonOut)
		if err != nil {
			logger.Error("json export failed", "error", err.Error())
			return 1
		}
		if err := res.WriteJSON(jf); err != nil {
			logger.Error("json export failed", "error", err.Error())
			return 1
		}
		if err := jf.Close(); err != nil {
			logger.Error("json export failed", "error", err.Error())
			return 1
		}
		logger.Info("json bundle written", "path", *jsonOut)
	}
	if *csvDir != "" {
		if err := res.WriteCSVFiles(*csvDir); err != nil {
			logger.Error("csv export failed", "error", err.Error())
			return 1
		}
		logger.Info("csv files written", "dir", *csvDir)
	}
	return 0
}
