package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webmeasure"
)

// writeTinyDataset crawls a tiny universe and writes its dataset to a temp
// JSONL file, returning the path and the matching flag values.
func writeTinyDataset(t *testing.T) string {
	t.Helper()
	res, err := webmeasure.Run(context.Background(), webmeasure.Config{
		Seed: 7, Sites: 5, PagesPerSite: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteDataset(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalyzeSmoke feeds a tiny crawled dataset through the command's run
// function and checks the full report plus both export formats appear.
func TestAnalyzeSmoke(t *testing.T) {
	path := writeTinyDataset(t)
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "bundle.json")
	csvDir := filepath.Join(dir, "csv")
	traceOut := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-i", path, "-sites", "5", "-pages", "3", "-seed", "7",
		"-workers", "2", "-progress", "0",
		"-json", jsonOut, "-csv", csvDir, "-trace", traceOut,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	for _, want := range []string{"Table 1", "Table 2", "Figure 1"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "analysis.pages.vetted=") {
		t.Errorf("stderr missing metrics snapshot:\n%s", stderr.String())
	}
	for _, want := range []string{"Stage breakdown", "analyze.compare"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	raw, err := os.ReadFile(traceOut)
	if err != nil || !strings.Contains(string(raw), `"traceEvents"`) {
		t.Errorf("-trace output missing or malformed: %v", err)
	}
	if fi, err := os.Stat(jsonOut); err != nil || fi.Size() == 0 {
		t.Errorf("JSON bundle missing or empty: %v", err)
	}
	entries, err := os.ReadDir(csvDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("CSV export missing: %v (%d files)", err, len(entries))
	}
}

// TestAnalyzeWorkersAgree runs the same dataset with 1 and 8 workers and
// requires the rendered reports to be byte-identical — the command-level
// face of the determinism guarantee.
func TestAnalyzeWorkersAgree(t *testing.T) {
	path := writeTinyDataset(t)
	reportWith := func(workers string) string {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{
			"-i", path, "-sites", "5", "-pages", "3", "-seed", "7",
			"-workers", workers, "-progress", "0",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("workers=%s exited %d: %s", workers, code, stderr.String())
		}
		return stdout.String()
	}
	if one, eight := reportWith("1"), reportWith("8"); one != eight {
		t.Error("reports differ between -workers 1 and -workers 8")
	}
}

func TestAnalyzeBadInput(t *testing.T) {
	var buf bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &buf, &buf); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	if code := run(context.Background(), []string{"-i", filepath.Join(t.TempDir(), "missing.jsonl")}, &buf, &buf); code != 1 {
		t.Errorf("missing dataset should exit 1, got %d", code)
	}
}
