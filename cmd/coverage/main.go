// Command coverage renders the repeated-measurement accumulation curve for
// one page: how much of the page's behaviour k measurements capture, and
// how many measurements a chosen coverage target needs (takeaway 4).
package main

import (
	"flag"
	"fmt"
	"os"

	"webmeasure/internal/browser"
	"webmeasure/internal/coverage"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "master seed")
		rank    = flag.Int("rank", 1, "site rank to measure")
		page    = flag.Int("page", 0, "page index (0 = landing page)")
		visits  = flag.Int("visits", 10, "number of repeated measurements")
		profile = flag.String("profile", "Sim1", "profile name, or 'all' for the multi-profile strategy")
		target  = flag.Float64("target", 0.95, "coverage target to report")
	)
	flag.Parse()

	u := webgen.New(webgen.DefaultConfig(*seed))
	list := tranco.Generate(*rank+10, *seed)
	entry, ok := list.At(*rank)
	if !ok {
		fmt.Fprintf(os.Stderr, "coverage: rank %d out of range\n", *rank)
		os.Exit(1)
	}
	site := u.GenerateSite(entry)
	if site.Unreachable {
		fmt.Fprintf(os.Stderr, "coverage: site %s is unreachable\n", site.Domain)
		os.Exit(1)
	}
	pages := site.AllPages()
	if *page < 0 || *page >= len(pages) {
		fmt.Fprintf(os.Stderr, "coverage: site has %d pages\n", len(pages))
		os.Exit(1)
	}
	measured := pages[*page]
	filter, _ := filterlist.Parse(u.FilterListText())
	runner := &coverage.Runner{Filter: filter, Seed: *seed}

	var curve coverage.Curve
	var err error
	if *profile == "all" {
		curve, err = runner.AccumulateAcrossProfiles(measured, browser.DefaultProfiles(), *visits)
	} else {
		prof, ok := browser.ProfileByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "coverage: unknown profile %q\n", *profile)
			os.Exit(1)
		}
		curve, err = runner.Accumulate(measured, prof, *visits)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverage: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("page %s, %d measurements (%s)\n\n", measured.URL, *visits, *profile)
	fmt.Printf("%-6s %-10s %-10s %-9s\n", "visit", "nodes", "distinct", "coverage")
	for k := 1; k <= curve.Measurements(); k++ {
		fmt.Printf("%-6d %-10d %-10d %6.1f%%\n",
			k, curve.PerVisit[k-1], curve.Distinct[k-1], curve.CoverageAt(k)*100)
	}
	fmt.Println()
	if k := curve.MeasurementsFor(*target); k > 0 {
		fmt.Printf("%.0f%% coverage reached after %d measurement(s)\n", *target*100, k)
	} else {
		fmt.Printf("%.0f%% coverage not reached within %d measurements\n", *target*100, *visits)
	}
	fmt.Printf("failed visits retried along the way: %d\n", curve.Failures)
}
