// Command benchcrawl measures the site-parallel crawl end to end: wall
// time and peak RSS across site-worker counts {1, 2, 4, 8}, on a clean
// network and under heavy fault injection, in streaming mode (dataset
// written site by site as the crawl runs) — plus a buffered baseline
// (whole dataset accumulated in memory, written at the end) at 4 workers
// for the memory comparison. Every case runs in its own child process —
// re-executing this binary with -case — so getrusage MaxRSS is an honest
// per-case peak, not an artifact of allocator reuse across cases. The
// driver records GOMAXPROCS alongside the numbers: wall speedup scales
// with available cores, while the streamed-vs-buffered RSS gap is a
// property of the pipeline and shows on any machine. Output is
// machine-readable JSON (BENCH_crawl.json by default), shape-guarded by
// TestBenchCrawlJSONWellFormed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"webmeasure"
	"webmeasure/internal/dataset"
	"webmeasure/internal/measurement"
)

const (
	benchSites = 150
	benchPages = 6
	benchSeed  = 11
)

var workerCounts = []int{1, 2, 4, 8}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcrawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "BENCH_crawl.json", "output path for the benchmark JSON")
		caseMode = fs.Bool("case", false, "run one measurement case and print its JSON (internal: the driver re-executes itself with this flag)")
		mode     = fs.String("mode", "", "case mode: stream (write sites as they finish) or buffered (accumulate, write at the end)")
		workers  = fs.Int("site-workers", 0, "case mode: crawl site-worker count")
		faults   = fs.String("faults", "", "case mode: fault profile (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *caseMode {
		return runCase(*mode, *workers, *faults, stdout, stderr)
	}
	return runDriver(*out, stdout, stderr)
}

// caseResult is one measured (mode, workers, faults) cell.
type caseResult struct {
	Name    string  `json:"name"`
	Mode    string  `json:"mode"`
	Workers int     `json:"site_workers"`
	Faults  string  `json:"faults"`
	Sites   int     `json:"sites"`
	Visits  int     `json:"visits"`
	Bytes   int64   `json:"bytes"`
	WallMS  float64 `json:"wall_ms"`
	RSSKB   int64   `json:"max_rss_kb"`
}

// bufferedSink reproduces the pre-streaming memory profile: every visit
// is held in an in-memory dataset until the crawl completes, then the
// whole dataset is written at once.
type bufferedSink struct {
	ds *dataset.Dataset
}

func (s *bufferedSink) WriteSite(site string, visits []*measurement.Visit) error {
	for _, v := range visits {
		s.ds.Add(v)
	}
	return nil
}

// runCase executes one crawl in this process and prints the JSON result.
// The dataset lands in a temp file (removed afterwards); wall time covers
// crawl plus dataset write — the full producer path either mode pays.
func runCase(mode string, workers int, faultProfile string, stdout, stderr io.Writer) int {
	work, err := os.MkdirTemp("", "benchcrawl")
	if err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	defer os.RemoveAll(work)
	path := filepath.Join(work, "ds.jsonl")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	defer f.Close()

	cfg := webmeasure.Config{
		Seed: benchSeed, Sites: benchSites, PagesPerSite: benchPages,
		FaultProfile: faultProfile, SiteWorkers: workers,
	}
	visits := 0
	start := time.Now()
	switch mode {
	case "stream":
		sw := dataset.NewJSONLSiteWriter(f)
		stats, err := webmeasure.CrawlStream(context.Background(), cfg, sw)
		if err != nil {
			fmt.Fprintf(stderr, "benchcrawl: crawl: %v\n", err)
			return 1
		}
		if err := sw.Close(); err != nil {
			fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
			return 1
		}
		visits = stats.VisitsTotal
	case "buffered":
		sink := &bufferedSink{ds: dataset.New()}
		if _, err := webmeasure.CrawlStream(context.Background(), cfg, sink); err != nil {
			fmt.Fprintf(stderr, "benchcrawl: crawl: %v\n", err)
			return 1
		}
		if err := sink.ds.WriteJSONL(f); err != nil {
			fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
			return 1
		}
		visits = sink.ds.Len()
	default:
		fmt.Fprintf(stderr, "benchcrawl: unknown -mode %q\n", mode)
		return 2
	}
	wall := time.Since(start)

	st, err := f.Stat()
	if err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		fmt.Fprintf(stderr, "benchcrawl: getrusage: %v\n", err)
		return 1
	}
	r := caseResult{
		Mode: mode, Workers: workers, Faults: faultProfile,
		Sites:  benchSites,
		Visits: visits,
		Bytes:  st.Size(),
		WallMS: float64(wall) / float64(time.Millisecond),
		// Linux reports ru_maxrss in KiB.
		RSSKB: ru.Maxrss,
	}
	if err := json.NewEncoder(stdout).Encode(r); err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	return 0
}

// summaryRow condenses one fault profile's scaling and memory story.
type summaryRow struct {
	Faults      string  `json:"faults"`
	WallW1MS    float64 `json:"wall_w1_ms"`
	WallW4MS    float64 `json:"wall_w4_ms"`
	WallW8MS    float64 `json:"wall_w8_ms"`
	SpeedupW4   float64 `json:"speedup_w4"`
	SpeedupW8   float64 `json:"speedup_w8"`
	StreamRSS   int64   `json:"stream_rss_kb"`   // at 4 workers
	BufferedRSS int64   `json:"buffered_rss_kb"` // at 4 workers
	RSSRatio    float64 `json:"rss_ratio"`       // buffered / stream
}

// runDriver fans the cases out to child processes and writes the JSON.
func runDriver(out string, stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	var cases []caseResult
	var summary []summaryRow
	for _, faults := range []string{"", "heavy"} {
		label := faults
		if label == "" {
			label = "off"
		}
		byKey := map[string]caseResult{}
		measure := func(mode string, workers int) bool {
			r, err := runChild(self, mode, workers, faults, stderr)
			if err != nil {
				fmt.Fprintf(stderr, "benchcrawl: %s/w%d/%s: %v\n", mode, workers, label, err)
				return false
			}
			r.Name = fmt.Sprintf("%s/w%d/%s", mode, workers, label)
			fmt.Fprintf(stderr, "benchcrawl: %-18s %8.1f ms  %8d KB rss  (%d visits, %d bytes)\n",
				r.Name, r.WallMS, r.RSSKB, r.Visits, r.Bytes)
			cases = append(cases, r)
			byKey[fmt.Sprintf("%s/w%d", mode, workers)] = r
			return true
		}
		for _, w := range workerCounts {
			if !measure("stream", w) {
				return 1
			}
		}
		if !measure("buffered", 4) {
			return 1
		}
		w1, w4, w8 := byKey["stream/w1"], byKey["stream/w4"], byKey["stream/w8"]
		buf4 := byKey["buffered/w4"]
		summary = append(summary, summaryRow{
			Faults:      label,
			WallW1MS:    w1.WallMS,
			WallW4MS:    w4.WallMS,
			WallW8MS:    w8.WallMS,
			SpeedupW4:   ratio(w1.WallMS, w4.WallMS),
			SpeedupW8:   ratio(w1.WallMS, w8.WallMS),
			StreamRSS:   w4.RSSKB,
			BufferedRSS: buf4.RSSKB,
			RSSRatio:    ratio(float64(buf4.RSSKB), float64(w4.RSSKB)),
		})
	}

	doc := struct {
		GoMaxProcs int          `json:"gomaxprocs"`
		Sites      int          `json:"sites"`
		Pages      int          `json:"pages"`
		Cases      []caseResult `json:"cases"`
		Summary    []summaryRow `json:"summary"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0), Sites: benchSites, Pages: benchPages, Cases: cases, Summary: summary}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchcrawl: %v\n", err)
		return 1
	}
	for _, s := range summary {
		fmt.Fprintf(stdout, "benchcrawl: faults=%-5s  4 workers %.2fx, 8 workers %.2fx vs 1 (GOMAXPROCS=%d); streaming cuts peak RSS %.1fx vs buffered\n",
			s.Faults, s.SpeedupW4, s.SpeedupW8, doc.GoMaxProcs, s.RSSRatio)
	}
	fmt.Fprintf(stdout, "benchcrawl: %d cases written to %s\n", len(cases), out)
	return 0
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runChild re-executes this binary for one case and parses its JSON.
func runChild(self, mode string, workers int, faults string, stderr io.Writer) (caseResult, error) {
	var outBuf bytes.Buffer
	cmd := exec.Command(self, "-case",
		"-mode", mode, "-site-workers", fmt.Sprint(workers), "-faults", faults)
	cmd.Stdout = &outBuf
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return caseResult{}, err
	}
	var r caseResult
	if err := json.Unmarshal(outBuf.Bytes(), &r); err != nil {
		return caseResult{}, fmt.Errorf("parse case output: %w", err)
	}
	return r, nil
}
