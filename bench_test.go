// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// measures the cost of the corresponding analysis over a shared, fully
// crawled dataset and logs the rows/series the paper reports on its first
// iteration:
//
//	go test -bench=. -benchmem
//
// Absolute values come from the synthetic web, not the authors' testbed;
// EXPERIMENTS.md records paper-vs-measured per experiment.
package webmeasure

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"webmeasure/internal/core"
	"webmeasure/internal/report"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// benchScale configures the shared benchmark experiment: large enough for
// stable shapes, small enough to crawl in a few seconds.
const (
	benchSeed  = 42
	benchSites = 60
	benchPages = 8
)

var (
	benchOnce sync.Once
	benchRes  *Results
)

func benchExperiment(b *testing.B) *Results {
	benchOnce.Do(func() {
		res, err := Run(context.Background(), Config{
			Seed: benchSeed, Sites: benchSites, PagesPerSite: benchPages,
		})
		if err != nil {
			panic(err)
		}
		benchRes = res
	})
	if benchRes == nil {
		b.Fatal("benchmark experiment failed")
	}
	return benchRes
}

// logSection renders one report section once per benchmark run.
func logSection(b *testing.B, res *Results, write func(*report.Experiment, *bytes.Buffer)) {
	b.Helper()
	exp := &report.Experiment{Analysis: res.Analysis(), RankBoundaries: res.RankBoundaries()}
	var buf bytes.Buffer
	write(exp, &buf)
	b.Log("\n" + buf.String())
}

func BenchmarkTable1Profiles(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteTable1(w) })
	b.ResetTimer()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		(&report.Experiment{Analysis: res.Analysis()}).WriteTable1(&buf)
	}
}

func BenchmarkTable2TreeOverview(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteTable2(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.TreeOverview()
	}
}

func BenchmarkTable3DepthSimilarity(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteTable3(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.DepthSimilarityTable()
	}
}

func BenchmarkTable4ResourceChains(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) {
		e.WriteTable4(w)
		e.WriteChainStability(w)
	})
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.ResourceChainTable()
		_ = a.ChainStability()
	}
}

func BenchmarkTable5ProfileTotals(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteTable5(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.ProfileTotals()
	}
}

func BenchmarkTable6ProfileDiffs(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) {
		e.WriteTable6(w)
		e.WriteSameConfig(w)
	})
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.ProfilePairTable("Sim1")
	}
}

func BenchmarkTable7RankBuckets(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteTable7(w) })
	a := res.Analysis()
	bounds := res.RankBoundaries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.RankBuckets(bounds)
	}
}

func BenchmarkFigure1DepthBreadth(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure1(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.DepthBreadthHistogram()
	}
}

func BenchmarkFigure2SimilarityDistribution(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure2(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.SimilarityDistribution()
	}
}

func BenchmarkFigure3NodeTypesByDepth(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure3(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.NodeTypeVolume()
	}
}

func BenchmarkFigure4SimilarityByDepth(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure4(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.SimilarityByDepth()
	}
}

func BenchmarkFigure5TypeShares(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) {
		e.WriteFigure5(w)
		e.WriteSubframeImpact(w)
	})
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.TypeSharesBySimilarity("parent", 8)
		_ = a.TypeSharesBySimilarity("children", 8)
	}
}

// BenchmarkFigure6WorkedExample exercises the Appendix D example: three
// hand-built trees whose similarities the paper computes by hand (.77 for
// depth one, .3 for e's parent). The unit test asserting the exact values
// lives in internal/treediff.
func BenchmarkFigure6WorkedExample(b *testing.B) {
	trees := appendixDTrees(b)
	cmp := treediff.Compare(trees)
	root := cmp.Nodes["https://fig6.example/"]
	e := cmp.Nodes["https://fig6.example/e"]
	b.Logf("\nAppendix D worked example: depth-one similarity %.2f (paper .77), parent of e %.2f (paper .3)",
		root.ChildSim, e.ParentSim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = treediff.Compare(trees)
	}
}

func BenchmarkFigure7TypeDepthSimilarity(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure7(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.TypeDepthSimilarity(8)
	}
}

func BenchmarkFigure8ChildrenByDepth(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteFigure8(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.ChildrenByDepth(20, true)
	}
}

func BenchmarkStatisticalTests(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteStatisticalTests(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.RunTests("Sim1", "NoAction")
	}
}

func BenchmarkCase1UniqueNodes(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteCase1UniqueNodes(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.UniqueNodes()
	}
}

func BenchmarkCase2Cookies(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteCase2Cookies(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CookieStudy("NoAction")
	}
}

func BenchmarkCase3Tracking(b *testing.B) {
	res := benchExperiment(b)
	logSection(b, res, func(e *report.Experiment, w *bytes.Buffer) { e.WriteCase3Tracking(w) })
	a := res.Analysis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.TrackingStudy()
	}
}

// BenchmarkEndToEnd measures a complete small experiment: universe, crawl,
// vetting, trees, comparison — the pipeline a user pays for per run.
func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(context.Background(), Config{Seed: int64(i + 1), Sites: 10, PagesPerSite: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §6) -------------------------------------

// ablationAnalysis rebuilds the shared dataset's analysis under a variant
// configuration and reports the headline similarity for comparison with the
// paper-faithful pipeline.
func ablationAnalysis(b *testing.B, opts core.Options) *core.Analysis {
	b.Helper()
	res := benchExperiment(b)
	base := res.Analysis()
	if opts.Profiles == nil {
		opts.Profiles = base.Dataset().Profiles()
	}
	a, err := core.New(base.Dataset(), nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAblationRawURLIdentity quantifies §3.2's normalization decision:
// with raw URLs as node identity, session identifiers make equal resources
// incomparable and similarity collapses.
func BenchmarkAblationRawURLIdentity(b *testing.B) {
	res := benchExperiment(b)
	normal := res.Analysis().TreeOverview()
	raw := ablationAnalysis(b, core.Options{TreeBuilder: &tree.Builder{RawURLIdentity: true}})
	rawOv := raw.TreeOverview()
	b.Logf("\nnode present in all profiles: normalized %.0f%% vs raw-URL %.0f%% (normalization recovers comparability)",
		normal.ShareInAll*100, rawOv.ShareInAll*100)
	if rawOv.ShareInAll >= normal.ShareInAll {
		b.Errorf("raw identity should reduce cross-profile presence: %.2f vs %.2f",
			rawOv.ShareInAll, normal.ShareInAll)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = raw.TreeOverview()
	}
}

// BenchmarkAblationNoCallStacks quantifies the call-stack signal: without
// it, scripts' children collapse to the root and the trees flatten.
func BenchmarkAblationNoCallStacks(b *testing.B) {
	res := benchExperiment(b)
	normal := res.Analysis().TreeOverview()
	flat := ablationAnalysis(b, core.Options{TreeBuilder: &tree.Builder{IgnoreCallStacks: true}})
	flatOv := flat.TreeOverview()
	b.Logf("\nmean tree depth: with call stacks %.2f vs frames/redirects only %.2f",
		normal.Depth.Mean, flatOv.Depth.Mean)
	if flatOv.Depth.Mean >= normal.Depth.Mean {
		b.Errorf("dropping call stacks should flatten trees: %.2f vs %.2f",
			flatOv.Depth.Mean, normal.Depth.Mean)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = flat.TreeOverview()
	}
}

// BenchmarkAblationNoVetting quantifies the all-profiles vetting rule:
// admitting pages with ≥2 successful profiles inflates the page count but
// compares unequal snapshots.
func BenchmarkAblationNoVetting(b *testing.B) {
	res := benchExperiment(b)
	strict := res.Analysis()
	loose := ablationAnalysis(b, core.Options{MinSuccessProfiles: 2})
	b.Logf("\nvetted pages: strict %d vs ≥2-profiles %d",
		len(strict.Pages()), len(loose.Pages()))
	if len(loose.Pages()) <= len(strict.Pages()) {
		b.Error("loose vetting should admit more pages")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = loose.TreeOverview()
	}
}

// BenchmarkAblationChildlessDepthOne quantifies §3.2's exclusion of
// childless depth-one nodes: keeping them over-reports similarity.
func BenchmarkAblationChildlessDepthOne(b *testing.B) {
	res := benchExperiment(b)
	a := res.Analysis()
	var withAll, withChildren float64
	for _, r := range a.DepthSimilarityTable() {
		switch r.Label {
		case "across all depths (all nodes)":
			withAll = r.Sim
		case "across all depths (only nodes with children)":
			withChildren = r.Sim
		}
	}
	b.Logf("\nper-depth similarity: all nodes %.2f vs only-with-children %.2f", withAll, withChildren)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.DepthSimilarityTable()
	}
}

// appendixDTrees rebuilds the Fig. 6 example trees through the public
// builder (mirrors internal/treediff's fixture).
func appendixDTrees(b *testing.B) []*tree.Tree {
	b.Helper()
	const rootURL = "https://fig6.example/"
	u := func(n string) string { return rootURL + n }
	type edge = [2]string
	build := func(profile string, edges []edge) *tree.Tree {
		v := fig6Visit(profile, rootURL, edges)
		t, err := (&tree.Builder{}).Build(v)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	t1 := build("P1", []edge{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("e"), u("d")}, {u("x"), u("e")}, {u("y"), u("e")},
	})
	t2 := build("P2", []edge{
		{u("a"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("e"), u("d")}, {u("x"), u("e")}, {u("y"), u("e")},
	})
	t3 := build("P3", []edge{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("y"), u("d")},
	})
	return []*tree.Tree{t1, t2, t3}
}
