# Build/verify targets. tier1 is the seed gate every PR must keep green;
# tier2 adds static vetting (go vet over every package, the job-server
# service included), the race detector over the concurrent pipeline
# (crawler clients, analysis worker pool, metrics, service queue), the
# serve-smoke end-to-end boot of cmd/serve, the trace-smoke validation of
# the span-trace exports, and the per-package coverage floor (cover).

GO ?= go

.PHONY: all tier1 tier2 bench bench-workers bench-service bench-throughput bench-json bench-dataset bench-crawl bench-smoke serve-smoke trace-smoke shard-smoke col-smoke load-smoke drift-smoke race-service race-crawl cover fuzz-smoke clean

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: serve-smoke trace-smoke shard-smoke col-smoke load-smoke drift-smoke race-service race-crawl cover bench-smoke
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Race-harden the serving layer specifically: the autoscaling pool
# (grow/shrink/drain under concurrent submits and cancels), the scaler,
# and the load harness, at full length (-short elides the long soak).
race-service:
	$(GO) test -race -count=1 ./internal/service ./internal/service/scaler ./internal/loadgen

# Run the golden loadgen scenario twice and require byte-identical SLO
# reports, then drive a freshly booted autoscaling cmd/serve in live
# mode; see scripts/loadgen_smoke.sh.
load-smoke:
	$(GO) build -o ./load-smoke-gen ./cmd/loadgen
	$(GO) build -o ./load-smoke-serve ./cmd/serve
	sh scripts/loadgen_smoke.sh ./load-smoke-gen ./load-smoke-serve
	rm -f ./load-smoke-gen ./load-smoke-serve

# Race-harden the site-parallel crawl pool at full length: worker
# submit/cancel/drain, the reorder sequencer, and the scratch-state merge
# under concurrent site completions.
race-crawl:
	$(GO) test -race -count=1 ./internal/crawler

# Per-package coverage floor (default 80%) over the packages the fault
# injection and analysis correctness lean on; see scripts/cover_gate.sh.
cover:
	sh scripts/cover_gate.sh 80

# Short native-fuzzing smoke over every fuzz target: a few seconds each of
# coverage-guided input generation on top of the committed seeds.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzNormalize$$' -fuzztime $(FUZZTIME) ./internal/urlutil
	$(GO) test -run '^$$' -fuzz '^FuzzSite$$' -fuzztime $(FUZZTIME) ./internal/urlutil
	$(GO) test -run '^$$' -fuzz '^FuzzParseLinks$$' -fuzztime $(FUZZTIME) ./internal/linkextract
	$(GO) test -run '^$$' -fuzz '^FuzzRedirectChain$$' -fuzztime $(FUZZTIME) ./internal/faults
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/faults
	$(GO) test -run '^$$' -fuzz '^FuzzShardPlanPartition$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzColBlockDecode$$' -fuzztime $(FUZZTIME) ./internal/colstore
	$(GO) test -run '^$$' -fuzz '^FuzzSpecCanonical$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzConfigParse$$' -fuzztime $(FUZZTIME) ./internal/loadgen
	$(GO) test -run '^$$' -fuzz '^FuzzBaselineDecode$$' -fuzztime $(FUZZTIME) ./internal/drift

# Crawl with -trace, validate the Chrome trace-event export with
# cmd/tracecheck (shape + per-stage span coverage), and require the trace
# bytes to be reproducible; see scripts/trace_smoke.sh.
trace-smoke:
	$(GO) build -o ./trace-smoke-crawl ./cmd/crawl
	$(GO) build -o ./trace-smoke-analyze ./cmd/analyze
	$(GO) build -o ./trace-smoke-check ./cmd/tracecheck
	sh scripts/trace_smoke.sh ./trace-smoke-crawl ./trace-smoke-analyze ./trace-smoke-check
	rm -f ./trace-smoke-crawl ./trace-smoke-analyze ./trace-smoke-check

# Boot the job server, submit a job over HTTP, assert the report artifact
# comes back 200 + non-empty, and require a clean SIGINT drain.
serve-smoke:
	$(GO) build -o ./serve-smoke-bin ./cmd/serve
	sh scripts/serve_smoke.sh ./serve-smoke-bin
	rm -f ./serve-smoke-bin

# Boot cmd/serve in monitor mode for 3 epochs, wait for the drift
# schedule to finish via /debug/drift, assert the state directory holds
# the full baseline/delta/csv/report set, and diff the alert JSONL
# against the committed golden; see scripts/drift_smoke.sh.
drift-smoke:
	$(GO) build -o ./drift-smoke-bin ./cmd/serve
	sh scripts/drift_smoke.sh ./drift-smoke-bin
	rm -f ./drift-smoke-bin

# Boot a coordinator plus two shard workers as separate processes, run the
# same experiment whole and sharded, and require byte-identical artifacts;
# see scripts/shard_smoke.sh.
shard-smoke:
	$(GO) build -o ./shard-smoke-bin ./cmd/serve
	sh scripts/shard_smoke.sh ./shard-smoke-bin
	rm -f ./shard-smoke-bin

# Crawl to the columnar format, round-trip it through JSONL with
# cmd/convert, and require byte-identical reports from both encodings
# (whole and sharded); see scripts/col_smoke.sh.
col-smoke:
	$(GO) build -o ./col-smoke-crawl ./cmd/crawl
	$(GO) build -o ./col-smoke-analyze ./cmd/analyze
	$(GO) build -o ./col-smoke-convert ./cmd/convert
	sh scripts/col_smoke.sh ./col-smoke-crawl ./col-smoke-analyze ./col-smoke-convert
	rm -f ./col-smoke-crawl ./col-smoke-analyze ./col-smoke-convert

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The parallel-analysis speedup trajectory (workers 1/4/8).
bench-workers:
	$(GO) test -run '^$$' -bench BenchmarkAnalysisWorkers -benchmem .

# Service load scenarios recorded as machine-readable JSON
# (BENCH_service.json) via the deterministic loadgen simulator — four
# seeded sim runs (steady poisson, burst autoscale, closed loop,
# overload), byte-reproducible across machines, shape-checked by
# TestBenchServiceJSONWellFormed. The wall-clock throughput benchmark
# remains available as `make bench-throughput`.
bench-service:
	sh scripts/bench_service.sh BENCH_service.json
	$(GO) test -run '^TestBenchServiceJSONWellFormed$$' .

# Job-server throughput (workers 1/4/8 × cache off/on), wall-clock.
bench-throughput:
	$(GO) test -run '^$$' -bench BenchmarkServiceThroughput -benchmem .

# Tree-diff hot-path benchmarks recorded as machine-readable JSON
# (BENCH_treediff.json), then shape-checked by TestBenchJSONWellFormed.
bench-json:
	sh scripts/bench_json.sh BENCH_treediff.json
	$(GO) test -run '^TestBenchJSONWellFormed$$' .

# Dataset-format measurements recorded as machine-readable JSON
# (BENCH_dataset.json): decode MB/s, load-and-analyze wall time, and
# peak RSS, JSONL vs columnar at 1x/4x/16x scale, each case in a fresh
# process; see cmd/benchdataset.
bench-dataset:
	sh scripts/bench_dataset.sh BENCH_dataset.json
	$(GO) test -run '^TestBenchDatasetJSONWellFormed$$' .

# Site-parallel crawl measurements recorded as machine-readable JSON
# (BENCH_crawl.json): wall time and peak RSS at site-worker counts
# 1/2/4/8, clean and heavy-fault, streaming vs a buffered baseline, each
# case in a fresh process; see cmd/benchcrawl.
bench-crawl:
	sh scripts/bench_crawl.sh BENCH_crawl.json
	$(GO) test -run '^TestBenchCrawlJSONWellFormed$$' .

# One iteration of every hot-path benchmark: catches benchmarks that no
# longer compile or panic, without paying for a full timed run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/treediff ./internal/stats

clean:
	$(GO) clean ./...
