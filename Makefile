# Build/verify targets. tier1 is the seed gate every PR must keep green;
# tier2 adds static vetting and the race detector over the concurrent
# pipeline (crawler clients, analysis worker pool, metrics).

GO ?= go

.PHONY: all tier1 tier2 bench bench-workers clean

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The parallel-analysis speedup trajectory (workers 1/4/8).
bench-workers:
	$(GO) test -run '^$$' -bench BenchmarkAnalysisWorkers -benchmem .

clean:
	$(GO) clean ./...
