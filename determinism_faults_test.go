package webmeasure

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"webmeasure/internal/metrics"
)

// TestFaultSweepDeterministic extends the determinism golden test across
// the fault-injection profiles: for each of off/light/heavy, one crawl's
// dataset analyzed with Workers=1 and Workers=8 must export byte-identical
// report, JSON bundle, and CSV stream; under active faults the vetting
// stage must actually exclude pages; and a full re-crawl (Run) with a
// different worker count must reproduce the same bytes — the injected
// faults, retries, and backoff are all simulated-time and seed-derived,
// so no schedule may leak into the output.
func TestFaultSweepDeterministic(t *testing.T) {
	const seed, sites, pages = 5, 8, 3
	for _, profile := range []string{"off", "light", "heavy"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			t.Parallel()
			reg := metrics.New()
			cfg := Config{Seed: seed, Sites: sites, PagesPerSite: pages, FaultProfile: profile, Metrics: reg}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var raw bytes.Buffer
			if err := res.WriteDataset(&raw); err != nil {
				t.Fatal(err)
			}
			sum := res.Summary()

			// Per-kind observability counters: the injector counts every
			// disturbed attempt by kind, the crawler counts committed
			// retries by the fault that triggered them.
			var injected, retried int64
			for _, c := range reg.Snapshot().Counters {
				switch {
				case strings.HasPrefix(c.Name, "faults.injected.total|kind="):
					injected += c.Value
				case strings.HasPrefix(c.Name, "crawl.retries.total|kind="):
					retried += c.Value
				}
			}
			if profile == "off" {
				if sum.ExcludedDegraded != 0 {
					t.Errorf("faults off but %d pages degraded", sum.ExcludedDegraded)
				}
				if injected != 0 || retried != 0 {
					t.Errorf("faults off but counters report %d injected, %d retried", injected, retried)
				}
			} else {
				if sum.ExcludedPages == 0 {
					t.Errorf("%s faults produced no vetting exclusions: %+v", profile, sum)
				}
				if injected == 0 {
					t.Errorf("%s faults but faults.injected.total{kind} counters are zero", profile)
				}
				if retried == 0 {
					t.Errorf("%s faults but crawl.retries.total{kind} counters are zero", profile)
				}
			}

			type export struct{ report, json, csv []byte }
			analyzeWith := func(workers int) export {
				t.Helper()
				acfg := cfg
				acfg.Workers = workers
				r, err := LoadAndAnalyze(bytes.NewReader(raw.Bytes()), acfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var rep, js, csv bytes.Buffer
				r.WriteReport(&rep)
				if err := r.WriteJSON(&js); err != nil {
					t.Fatalf("workers=%d: json: %v", workers, err)
				}
				if err := r.WriteCSV(&csv); err != nil {
					t.Fatalf("workers=%d: csv: %v", workers, err)
				}
				return export{report: rep.Bytes(), json: js.Bytes(), csv: csv.Bytes()}
			}
			one, eight := analyzeWith(1), analyzeWith(8)
			if !bytes.Equal(one.report, eight.report) {
				t.Error("report differs between workers=1 and workers=8")
			}
			if !bytes.Equal(one.json, eight.json) {
				t.Error("JSON bundle differs between workers=1 and workers=8")
			}
			if !bytes.Equal(one.csv, eight.csv) {
				t.Error("CSV stream differs between workers=1 and workers=8")
			}

			// Re-crawl with a parallel analysis: the whole pipeline, faults
			// included, must reproduce the exact bytes.
			cfg2 := cfg
			cfg2.Workers = 8
			res2, err := Run(context.Background(), cfg2)
			if err != nil {
				t.Fatal(err)
			}
			var rep2 bytes.Buffer
			res2.WriteReport(&rep2)
			if !bytes.Equal(rep2.Bytes(), one.report) {
				t.Error("re-crawled report differs from first crawl's analysis")
			}
		})
	}
}

// TestUnknownFaultProfileRejected: Run must refuse a profile name the
// faults package does not know.
func TestUnknownFaultProfileRejected(t *testing.T) {
	_, err := Run(context.Background(), Config{Seed: 1, Sites: 2, FaultProfile: "chaos"})
	if err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}
