package webmeasure

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// benchDatasetFile is where `make bench-dataset` (cmd/benchdataset via
// scripts/bench_dataset.sh) records the dataset-format measurements.
const benchDatasetFile = "BENCH_dataset.json"

type benchDatasetCase struct {
	Name   string  `json:"name"`
	Scale  int     `json:"scale"`
	Format string  `json:"format"`
	Op     string  `json:"op"`
	Sites  int     `json:"sites"`
	Bytes  int64   `json:"bytes"`
	Visits int     `json:"visits"`
	WallMS float64 `json:"wall_ms"`
	MBPerS float64 `json:"mb_per_s"`
	RSSKB  int64   `json:"max_rss_kb"`
}

type benchDatasetSummary struct {
	Scale          int     `json:"scale"`
	Sites          int     `json:"sites"`
	JSONLBytes     int64   `json:"jsonl_bytes"`
	ColBytes       int64   `json:"col_bytes"`
	SizeRatio      float64 `json:"size_ratio"`
	LoadSpeedup    float64 `json:"load_speedup"`
	AnalyzeSpeedup float64 `json:"analyze_speedup"`
	LoadRSSRatio   float64 `json:"load_rss_ratio"`
}

// TestBenchDatasetJSONWellFormed guards the shape of BENCH_dataset.json
// so a broken benchdataset run can't silently record garbage. The file
// is a build artifact, not a source file, so the test skips when it
// hasn't been generated (tier-1 stays independent of `make
// bench-dataset`).
func TestBenchDatasetJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile(benchDatasetFile)
	if os.IsNotExist(err) {
		t.Skipf("%s not generated; run `make bench-dataset`", benchDatasetFile)
	}
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cases   []benchDatasetCase    `json:"cases"`
		Summary []benchDatasetSummary `json:"summary"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid JSON: %v", benchDatasetFile, err)
	}
	if len(doc.Cases) == 0 || len(doc.Summary) == 0 {
		t.Fatalf("%s holds %d cases and %d summary rows, want both non-empty",
			benchDatasetFile, len(doc.Cases), len(doc.Summary))
	}
	// Every (op, format) cell must be measured at every summarized scale.
	seen := map[string]bool{}
	for _, c := range doc.Cases {
		if c.Name == "" || seen[c.Name] {
			t.Errorf("missing or duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.WallMS <= 0 || c.Bytes <= 0 || c.Visits <= 0 || c.RSSKB <= 0 || c.MBPerS <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", c.Name, c)
		}
	}
	for _, s := range doc.Summary {
		for _, op := range []string{"load", "analyze"} {
			for _, format := range []string{"jsonl", "col"} {
				name := fmt.Sprintf("%s/%s/%dx", op, format, s.Scale)
				if !seen[name] {
					t.Errorf("%s records no case %q", benchDatasetFile, name)
				}
			}
		}
		if s.JSONLBytes <= 0 || s.ColBytes <= 0 {
			t.Errorf("scale %dx: non-positive sizes: %+v", s.Scale, s)
		}
		// The ratios are properties of the encoding, not of machine load:
		// the columnar file must be smaller and decode faster.
		if s.SizeRatio <= 1 {
			t.Errorf("scale %dx: columnar file is not smaller than JSONL (ratio %.2f)", s.Scale, s.SizeRatio)
		}
		if s.LoadSpeedup <= 1 {
			t.Errorf("scale %dx: columnar decode is not faster than JSONL (speedup %.2f)", s.Scale, s.LoadSpeedup)
		}
		if s.AnalyzeSpeedup <= 0 || s.LoadRSSRatio <= 0 {
			t.Errorf("scale %dx: non-positive ratio: %+v", s.Scale, s)
		}
	}
}
