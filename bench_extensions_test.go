package webmeasure

import (
	"context"
	"testing"

	"webmeasure/internal/browser"
	"webmeasure/internal/core"
	"webmeasure/internal/coverage"
	"webmeasure/internal/crawler"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/webgen"
)

// BenchmarkExtensionStabilityMetric runs the §8-takeaway-1 metric: the
// per-experiment fluctuation score and the estimated number of repeated
// measurements needed to exhaust a page's behaviour.
func BenchmarkExtensionStabilityMetric(b *testing.B) {
	res := benchExperiment(b)
	a := res.Analysis()
	rep := a.Stability()
	b.Logf("\nstability: page mean %.2f (high %d / med %d / low %d); expected discovery %.1f%%; "+
		"measurements for <1%% unseen: %d",
		rep.PageStability.Mean, rep.HighPages, rep.MediumPages, rep.LowPages,
		rep.ExpectedDiscovery*100, rep.RequiredMeasurements(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Stability()
	}
}

// BenchmarkExtensionCoverageCurve measures the repeated-measurement
// accumulation analysis (§8 takeaway 4) on one page.
func BenchmarkExtensionCoverageCurve(b *testing.B) {
	u := webgen.New(webgen.DefaultConfig(benchSeed))
	list := tranco.Generate(20, benchSeed)
	var page *webgen.Page
	for _, e := range list.Entries() {
		s := u.GenerateSite(e)
		// Pick a content-rich page so the curve has something to find.
		if !s.Unreachable && s.Landing.CountResources() > 120 {
			page = s.Landing
			break
		}
	}
	if page == nil {
		b.Fatal("no content-rich page in scan range")
	}
	filter, _ := filterlist.Parse(u.FilterListText())
	runner := &coverage.Runner{Filter: filter, Seed: benchSeed}
	prof, _ := browser.ProfileByName("Sim1")
	curve, err := runner.Accumulate(page, prof, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\ncoverage: first visit %.0f%% of 10-visit population; 95%% after %d visits; distinct %v",
		curve.CoverageAt(1)*100, curve.MeasurementsFor(0.95), curve.Distinct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Accumulate(page, prof, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCombinedFilterLists quantifies §6's list-stacking
// discussion: adding an EasyPrivacy-style list reclassifies tag managers
// and consent platforms as tracking, shifting the tracking share.
func BenchmarkAblationCombinedFilterLists(b *testing.B) {
	res := benchExperiment(b)
	u := res.Universe()
	base, _ := filterlist.Parse(u.FilterListText())
	privacy, _ := filterlist.Parse(u.PrivacyListText())
	combined := filterlist.Merge(base, privacy)

	profiles := res.Analysis().Dataset().Profiles()
	baseA := res.Analysis()
	combinedA, err := core.New(res.Analysis().Dataset(), combined, core.Options{Profiles: profiles})
	if err != nil {
		b.Fatal(err)
	}
	ts1 := baseA.TrackingStudy()
	ts2 := combinedA.TrackingStudy()
	b.Logf("\ntracking share: EasyList-only %.1f%% vs +EasyPrivacy %.1f%% — the phenomenon's definition moves with the lists",
		ts1.TrackingShare*100, ts2.TrackingShare*100)
	if ts2.TrackingShare <= ts1.TrackingShare {
		b.Errorf("combined lists must increase tracking share: %.3f vs %.3f",
			ts2.TrackingShare, ts1.TrackingShare)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = combinedA.TrackingStudy()
	}
}

// BenchmarkAblationStatefulCrawl quantifies Appendix C's stateless-vs-
// stateful design choice on cookie observations.
func BenchmarkAblationStatefulCrawl(b *testing.B) {
	u := webgen.New(webgen.DefaultConfig(benchSeed))
	list := tranco.Generate(60, benchSeed)
	sites := list.Entries()[:12]
	profiles := browser.DefaultProfiles()[1:2]

	count := func(stateful bool) (cookies int) {
		ds, _, err := crawler.Run(context.Background(), crawler.Config{
			Universe: u, Sites: sites, MaxPages: 5, Instances: 4,
			Seed: benchSeed, Stateful: stateful, Profiles: profiles,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range ds.Visits() {
			cookies += len(v.Cookies)
		}
		return cookies
	}
	stateless, stateful := count(false), count(true)
	b.Logf("\ncookie observations: stateless %d vs stateful %d — state accumulates across a site's pages",
		stateless, stateful)
	if stateful <= stateless {
		b.Errorf("stateful crawl should observe more cookies: %d vs %d", stateful, stateless)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = count(true)
	}
}

// BenchmarkExtensionStaticDynamic runs the takeaway-3 contrast: static
// HTTP facets (status, content type, size) vs dynamic facets (presence,
// parents, children).
func BenchmarkExtensionStaticDynamic(b *testing.B) {
	res := benchExperiment(b)
	a := res.Analysis()
	r := a.StaticDynamic()
	b.Logf("\nstatic: content-type %.0f%% status %.0f%% size %.0f%% | dynamic: presence %.0f%% parent %.0f%% children %.0f%% | advantage %+.2f",
		r.ContentTypeStable*100, r.StatusStable*100, r.SizeStable*100,
		r.PresenceStable*100, r.ParentStable*100, r.ChildStable*100, r.StaticAdvantage())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.StaticDynamic()
	}
}

// BenchmarkAblationWholeTreeDistance evaluates the comparison method the
// paper rejects (§3.2): whole-tree scores (edge Jaccard, vectorized
// Hamming) versus the node-level analysis. The scores correlate with the
// node-level similarity but cannot attribute differences to nodes.
func BenchmarkAblationWholeTreeDistance(b *testing.B) {
	res := benchExperiment(b)
	a := res.Analysis()
	var edgeSum, hamSum, nodeSum float64
	n := 0
	for _, pa := range a.Pages() {
		edgeSum += treediff.EdgeSimilarity(pa.Trees)
		hamSum += treediff.HammingSimilarity(pa.Trees)
		nodeSum += pa.Cmp.AllNodesSimilarity()
		n++
	}
	b.Logf("\nmean per-page similarity: node-level %.2f vs edge-Jaccard %.2f vs Hamming %.2f (whole-tree scores are systematically lower: every moved edge double-counts)",
		nodeSum/float64(n), edgeSum/float64(n), hamSum/float64(n))
	pages := a.Pages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = treediff.HammingSimilarity(pages[i%len(pages)].Trees)
	}
}

// BenchmarkExtensionTemporalDrift quantifies longitudinal comparability:
// how similar is a page's tree to the one measured k epochs earlier, with
// the same setup? (The drift axis behind §3.1.1's Old-browser motivation.)
func BenchmarkExtensionTemporalDrift(b *testing.B) {
	u := webgen.New(webgen.DefaultConfig(benchSeed))
	filter, _ := filterlist.Parse(u.FilterListText())
	builder := &tree.Builder{Filter: filter}
	list := tranco.Generate(40, benchSeed)
	prof, _ := browser.ProfileByName("Sim1")
	br := browser.New(prof)

	treeAt := func(entry tranco.Entry, epoch int) *tree.Tree {
		site := u.GenerateSiteAt(entry, epoch)
		if site.Unreachable {
			return nil
		}
		for attempt := 0; attempt < 8; attempt++ {
			nonce := webgen.NonceFor(benchSeed, prof.Name+"-drift", site.Landing.URL+string(rune('a'+attempt)))
			if v := br.Visit(site.Landing, nonce); v.Success {
				if t, err := builder.Build(v); err == nil {
					return t
				}
			}
		}
		return nil
	}
	meanSim := func(epoch int) float64 {
		var sum float64
		n := 0
		for i := 1; i <= 20; i++ {
			entry, _ := list.At(i)
			t0, tE := treeAt(entry, 0), treeAt(entry, epoch)
			if t0 == nil || tE == nil {
				continue
			}
			sum += treediff.Compare([]*tree.Tree{t0, tE}).AllNodesSimilarity()
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	e1, e4 := meanSim(1), meanSim(4)
	b.Logf("\ntemporal drift: similarity vs epoch-0 snapshot: e1 %.2f, e4 %.2f (same-setup same-epoch baseline ≈ .7)", e1, e4)
	if e4 > e1 {
		b.Errorf("drift must grow with epoch distance: e1=%.2f e4=%.2f", e1, e4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = meanSim(1)
	}
}

// BenchmarkExtensionEntityStability compares domain-level vs entity-level
// third-party analysis: aggregating domains to their owning organizations
// absorbs intra-organization churn (sister-domain sync partners) and
// stabilizes the measurement.
func BenchmarkExtensionEntityStability(b *testing.B) {
	res := benchExperiment(b)
	a := res.Analysis()
	u := res.Universe()
	rep := a.EntityStability(u.OrganizationOf)
	b.Logf("\nthird-party sets per page: domain-level sim %.3f vs entity-level %.3f; "+
		"%d domains → %d entities; entity view wins on %.0f%% of pages",
		rep.DomainSim.Mean, rep.EntitySim.Mean,
		rep.DistinctDomains, rep.DistinctEntities, rep.AdvantageShare*100)
	if rep.EntitySim.Mean < rep.DomainSim.Mean {
		b.Errorf("entity aggregation must not reduce stability: %.3f vs %.3f",
			rep.EntitySim.Mean, rep.DomainSim.Mean)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.EntityStability(u.OrganizationOf)
	}
}

// BenchmarkExtensionAttributionAccuracy scores the paper's parent
// heuristics against the simulator's ground truth — quantifying §6's
// "branches might be collapsed" concession on real traffic.
func BenchmarkExtensionAttributionAccuracy(b *testing.B) {
	u := webgen.New(webgen.DefaultConfig(benchSeed))
	list := tranco.Generate(30, benchSeed)
	prof, _ := browser.ProfileByName("Sim1")
	br := browser.New(prof)
	builder := &tree.Builder{}

	var total tree.AttributionAccuracy
	var visits []*measurement.Visit
	for i := 1; i <= 20; i++ {
		entry, _ := list.At(i)
		site := u.GenerateSite(entry)
		if site.Unreachable {
			continue
		}
		for _, p := range site.AllPages()[:minInt(3, len(site.AllPages()))] {
			v := br.Visit(p, 9)
			if !v.Success {
				continue
			}
			visits = append(visits, v)
			rep, err := builder.EvaluateAttribution(v)
			if err != nil {
				b.Fatal(err)
			}
			total.Attributable += rep.Attributable
			total.Correct += rep.Correct
			total.RootFallbacks += rep.RootFallbacks
			total.MergeArtifacts += rep.MergeArtifacts
		}
	}
	b.Logf("\nattribution vs ground truth over %d visits: accuracy %.1f%% (%d/%d); root fallbacks %d; merge artifacts %d",
		len(visits), total.Accuracy()*100, total.Correct, total.Attributable,
		total.RootFallbacks, total.MergeArtifacts)
	if total.Accuracy() < 0.9 {
		b.Errorf("attribution accuracy %.2f below 0.9 — heuristics broken", total.Accuracy())
	}
	if total.MergeArtifacts == 0 {
		b.Log("note: no merge artifacts in this sample (the §6 collapse is rare)")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.EvaluateAttribution(visits[i%len(visits)]); err != nil {
			b.Fatal(err)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkExtensionConsensus measures the §4.3 "complete view" strategy:
// how much of a page's union of behaviour survives majority / strict
// consensus across the five profiles.
func BenchmarkExtensionConsensus(b *testing.B) {
	res := benchExperiment(b)
	pages := res.Analysis().Pages()
	var majSum, strictSum float64
	for _, pa := range pages {
		majSum += treediff.ConsensusShare(pa.Trees, 0)
		strictSum += treediff.ConsensusShare(pa.Trees, len(pa.Trees))
	}
	n := float64(len(pages))
	b.Logf("\nconsensus share of the union: majority quorum %.0f%%, all-profiles quorum %.0f%% — "+
		"the reliably measurable skeleton vs the full behaviour",
		majSum/n*100, strictSum/n*100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = treediff.Consensus(pages[i%len(pages)].Trees, 0)
	}
}

// BenchmarkAblationDepthWeighting compares the population-weighted per-depth
// similarity (this repository's documented choice) with equal-weight
// averaging; the paper does not specify its weighting (EXPERIMENTS.md
// deviation 4).
func BenchmarkAblationDepthWeighting(b *testing.B) {
	res := benchExperiment(b)
	pages := res.Analysis().Pages()
	var wSum, uSum float64
	n := 0
	for _, pa := range pages {
		w, dw := pa.Cmp.DepthSimilarity(treediff.DepthFilter{})
		u, du := pa.Cmp.DepthSimilarity(treediff.DepthFilter{Unweighted: true})
		if dw == 0 || du == 0 {
			continue
		}
		wSum += w
		uSum += u
		n++
	}
	b.Logf("\nper-depth similarity: population-weighted %.2f vs equal-weight %.2f "+
		"(sparse deep levels drag the unweighted mean)",
		wSum/float64(n), uSum/float64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = pages[i%len(pages)].Cmp.DepthSimilarity(treediff.DepthFilter{Unweighted: true})
	}
}
