// Package webmeasure reproduces the experiment of "On the Similarity of Web
// Measurements Under Different Experimental Setups" (Demir et al., IMC '23)
// end to end: it crawls a synthetic web with the paper's five browser
// profiles, builds a dependency tree per page visit, cross-compares the
// trees, and regenerates every table and figure of the evaluation.
//
// The package is a facade over the internal substrates (web generator,
// browser simulator, crawler, tree builder, comparison engine, statistics):
//
//	res, err := webmeasure.Run(ctx, webmeasure.Config{Seed: 42, Sites: 200})
//	if err != nil { ... }
//	res.WriteReport(os.Stdout)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package webmeasure

import (
	"context"
	"fmt"
	"io"
	"sort"

	"webmeasure/internal/browser"
	"webmeasure/internal/colstore"
	"webmeasure/internal/core"
	"webmeasure/internal/crawler"
	"webmeasure/internal/dataset"
	"webmeasure/internal/drift"
	"webmeasure/internal/faults"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/metrics"
	"webmeasure/internal/report"
	"webmeasure/internal/trace"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// Config parameterizes an experiment. The zero value is completed with
// laptop-scale defaults by Run.
type Config struct {
	// Seed makes the whole experiment reproducible (default 1).
	Seed int64
	// Sites is the number of sites sampled from the ranked list across
	// the paper's five popularity buckets (default 100; the paper uses
	// 25,000).
	Sites int
	// TrancoSize is the size of the full ranked list sampled from
	// (default 10× Sites, mirroring the paper's 25k-of-500k sampling).
	TrancoSize int
	// PagesPerSite bounds the subpages visited per site in addition to
	// the landing page (default 10; the paper collects 25).
	PagesPerSite int
	// Instances is the number of parallel browser instances per profile
	// client (default 15, the paper's value).
	Instances int
	// Epoch selects the synthetic web's point in time (0 = base
	// snapshot); run the same seed at two epochs for a longitudinal
	// comparison.
	Epoch int
	// Profiles restricts the crawl and analysis to a named subset of the
	// paper's five browser profiles (Table 1). Empty means all five;
	// unknown names are an error.
	Profiles []string
	// Stateful preserves cookies across a site's pages within each client
	// (Appendix C's alternative design choice; default stateless).
	Stateful bool
	// FaultProfile names the deterministic fault-injection profile applied
	// to every page fetch (one of faults.Names(): "off", "light", "heavy";
	// empty = off). Faults are seeded from Seed, so the same configuration
	// reproduces the same failures byte for byte.
	FaultProfile string
	// Retry bounds the crawler's per-visit retry loop for transient
	// (injected) failures; the zero value uses the crawler's defaults.
	Retry crawler.RetryPolicy
	// Progress, if non-nil, receives crawl progress (sites done, total).
	Progress func(done, total int)
	// ResumeJSONL, if non-nil, streams a previously written dataset
	// (WriteDataset or WriteDatasetCol output — the format is sniffed
	// from the magic bytes); successful visits found there are reused so
	// an interrupted crawl continues where it stopped.
	ResumeJSONL io.Reader
	// Workers bounds the analysis worker pool that fans per-page work
	// (vetting, tree building, cross-comparison) out over CPUs. The
	// merge is deterministic, so every report/JSON/CSV export is
	// byte-identical for any worker count. 0 = GOMAXPROCS.
	Workers int
	// SiteWorkers bounds the crawl's site-level worker pool: that many
	// sites are crawled concurrently, each on isolated scratch state, and
	// a sequencer re-emits them in site-list order. Every artifact —
	// dataset bytes in both formats, report, metrics counters, trace
	// exports — is identical for any value. 0 = GOMAXPROCS.
	SiteWorkers int
	// Shards splits the experiment's page-key space into this many slices
	// for distributed shard-and-merge analysis (0 or 1 = the whole
	// experiment in one process). With Shards > 1 the run covers only the
	// slice ShardIndex selects; one Partial per shard is then assembled
	// with AssembleFromPartials into results byte-identical to the
	// single-process run.
	Shards int
	// ShardIndex selects this run's slice (0-based, < Shards) when Shards
	// is set.
	ShardIndex int
	// ShardSeed seeds the shard plan's page-key hash; every worker and the
	// coordinator must agree on it. 0 = Seed.
	ShardSeed int64
	// Metrics, if non-nil, collects live crawl and analysis counters and
	// timing histograms; snapshot it from another goroutine for progress
	// lines (see metrics.StartProgress).
	Metrics *metrics.Registry
	// Tracer, if non-nil, records one deterministic span trace per page
	// across the whole pipeline — crawl fetch/retry/backoff through tree
	// build, vetting, and comparison (see internal/trace). A tracer
	// carried by the run's context (trace.NewContext) is picked up when
	// this field is nil.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sites <= 0 {
		c.Sites = 100
	}
	if c.TrancoSize <= 0 {
		c.TrancoSize = c.Sites * 10
	}
	if c.TrancoSize < c.Sites {
		c.TrancoSize = c.Sites
	}
	if c.PagesPerSite <= 0 {
		c.PagesPerSite = 10
	}
	if c.Shards > 1 && c.ShardSeed == 0 {
		c.ShardSeed = c.Seed
	}
	return c
}

// shardPlan returns the config's shard plan (Count 1 when unsharded).
func (c Config) shardPlan() core.ShardPlan {
	count := c.Shards
	if count < 1 {
		count = 1
	}
	return core.ShardPlan{Count: count, Seed: c.ShardSeed}
}

// Results is a completed experiment: the collected dataset plus the full
// analysis.
type Results struct {
	cfg        Config
	universe   *webgen.Universe
	dataset    *dataset.Dataset
	analysis   *core.Analysis
	boundaries []int
	stats      crawler.Stats
}

// experimentFrame regenerates the deterministic scaffolding every entry
// point shares: the universe, the rank-bucket boundaries, and the sampled
// site list. cfg must already carry defaults.
func experimentFrame(cfg Config) (*webgen.Universe, []tranco.Entry, []int) {
	u := webgen.New(webgenConfig(cfg))
	list := tranco.Generate(cfg.TrancoSize, cfg.Seed)
	boundaries := tranco.ScaledBoundaries(cfg.TrancoSize)
	perBucket := cfg.Sites / len(boundaries)
	if perBucket < 1 {
		perBucket = 1
	}
	sample := list.Sample(boundaries, perBucket, cfg.Seed)
	return u, sample, boundaries
}

// validateShard checks the Shards/ShardIndex pair.
func (c Config) validateShard() error {
	if c.Shards > 1 && (c.ShardIndex < 0 || c.ShardIndex >= c.Shards) {
		return fmt.Errorf("webmeasure: shard index %d out of range for %d shards", c.ShardIndex, c.Shards)
	}
	return nil
}

// Run executes the experiment: generate the universe, sample the ranked
// site list, crawl with the five profiles of Table 1, vet, and analyze.
// With Config.Shards > 1 the run restricts itself to shard ShardIndex's
// slice of the page-key space — every visit is a pure function of (seed,
// profile, page), so the shard's records are byte-identical to the full
// crawl's records for the same pages.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateShard(); err != nil {
		return nil, err
	}
	u, sample, boundaries := experimentFrame(cfg)
	ccfg, err := cfg.crawlerConfig(u, sample)
	if err != nil {
		return nil, err
	}
	ds, crawlStats, err := crawler.Run(ctx, ccfg)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: crawl: %w", err)
	}
	res, err := AnalyzeContext(ctx, ds, u, sample, boundaries, cfg)
	if err != nil {
		return nil, err
	}
	res.stats = crawlStats
	return res, nil
}

// crawlerConfig resolves the crawl inputs Run and CrawlStream share —
// resume dataset, profile selection, fault profile, shard page filter —
// into the crawler's configuration.
func (c Config) crawlerConfig(u *webgen.Universe, sample []tranco.Entry) (crawler.Config, error) {
	var resume *dataset.Dataset
	if c.ResumeJSONL != nil {
		var err error
		resume, err = dataset.ReadAuto(c.ResumeJSONL)
		if err != nil {
			return crawler.Config{}, fmt.Errorf("webmeasure: resume dataset: %w", err)
		}
	}
	profs, err := selectProfiles(c.Profiles)
	if err != nil {
		return crawler.Config{}, err
	}
	faultProfile, err := faults.ByName(c.FaultProfile)
	if err != nil {
		return crawler.Config{}, fmt.Errorf("webmeasure: %w", err)
	}
	var pageFilter func(site, pageURL string) bool
	if c.Shards > 1 {
		if c.Stateful && resume != nil {
			// A resumed stateful crawl reuses visits without replaying them,
			// so the shared cookie jar would diverge from the full crawl's.
			return crawler.Config{}, fmt.Errorf("webmeasure: sharded crawls cannot combine Stateful with ResumeJSONL")
		}
		pageFilter = c.shardPlan().Keep(c.ShardIndex)
	}
	return crawler.Config{
		Universe:    u,
		Sites:       sample,
		MaxPages:    c.PagesPerSite,
		Instances:   c.Instances,
		Profiles:    profs,
		Seed:        c.Seed,
		Epoch:       c.Epoch,
		Stateful:    c.Stateful,
		Faults:      faultProfile,
		Retry:       c.Retry,
		Progress:    c.Progress,
		Resume:      resume,
		Metrics:     c.Metrics,
		Tracer:      c.Tracer,
		PageFilter:  pageFilter,
		SiteWorkers: c.SiteWorkers,
	}, nil
}

// CrawlStream runs only the measurement, streaming each finished site
// into sink in site-list order instead of accumulating the whole dataset
// in memory: peak RSS is bounded by the crawl's in-flight reorder window,
// not the dataset size. The sink receives exactly the visit sequence
// Run's dataset would hold (a dataset.SiteWriter therefore produces the
// same bytes WriteDataset/WriteDatasetCol would); Close stays with the
// caller. Analysis runs separately — feed the written file to
// LoadAndAnalyze.
func CrawlStream(ctx context.Context, cfg Config, sink crawler.SiteSink) (crawler.Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateShard(); err != nil {
		return crawler.Stats{}, err
	}
	u, sample, _ := experimentFrame(cfg)
	ccfg, err := cfg.crawlerConfig(u, sample)
	if err != nil {
		return crawler.Stats{}, err
	}
	ccfg.Sink = sink
	ccfg.DiscardDataset = true
	_, stats, err := crawler.Run(ctx, ccfg)
	if err != nil {
		return stats, fmt.Errorf("webmeasure: crawl: %w", err)
	}
	return stats, nil
}

// Analyze runs the analysis over an existing dataset (e.g. one loaded with
// LoadDataset). sample and boundaries supply the rank information for the
// popularity analysis and may be nil.
func Analyze(ds *dataset.Dataset, u *webgen.Universe, sample []tranco.Entry, boundaries []int, cfg Config) (*Results, error) {
	return AnalyzeContext(context.Background(), ds, u, sample, boundaries, cfg)
}

// analysisEnv derives the analysis inputs every entry point shares from
// the regenerated universe: the filter list, the site→rank map, and the
// ordered profile names.
func analysisEnv(u *webgen.Universe, sample []tranco.Entry, cfg Config) (*filterlist.List, map[string]int, []string, error) {
	filter, skipped := filterlist.Parse(u.FilterListText())
	if skipped != 0 {
		return nil, nil, nil, fmt.Errorf("webmeasure: generated filter list has %d bad rules", skipped)
	}
	ranks := make(map[string]int, len(sample))
	for _, e := range sample {
		ranks[e.Site] = e.Rank
	}
	profs, err := selectProfiles(cfg.Profiles)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, len(profs))
	for i, p := range profs {
		names[i] = p.Name
	}
	return filter, ranks, names, nil
}

// analysisOptions assembles the core options shared by the batch and
// streaming analysis paths.
func analysisOptions(ctx context.Context, names []string, ranks map[string]int, cfg Config) core.Options {
	return core.Options{
		Profiles: names,
		SiteRank: ranks,
		Workers:  cfg.Workers,
		Metrics:  cfg.Metrics,
		Context:  ctx,
		Tracer:   cfg.Tracer,
		// One shard's slice can legitimately vet down to nothing; the
		// coordinator judges emptiness after merging all shards.
		AllowEmpty: cfg.Shards > 1,
	}
}

// AnalyzeContext is Analyze with cancellation: the context aborts the
// per-page analysis pool between pages (a canceled job server request
// stops burning CPU mid-analysis).
func AnalyzeContext(ctx context.Context, ds *dataset.Dataset, u *webgen.Universe, sample []tranco.Entry, boundaries []int, cfg Config) (*Results, error) {
	filter, ranks, names, err := analysisEnv(u, sample, cfg)
	if err != nil {
		return nil, err
	}
	analysis, err := core.New(ds, filter, analysisOptions(ctx, names, ranks, cfg))
	if err != nil {
		return nil, fmt.Errorf("webmeasure: analyze: %w", err)
	}
	return &Results{
		cfg:        cfg,
		universe:   u,
		dataset:    ds,
		analysis:   analysis,
		boundaries: boundaries,
	}, nil
}

func webgenConfig(cfg Config) webgen.Config {
	wc := webgen.DefaultConfig(cfg.Seed)
	wc.PagesPerSite = cfg.PagesPerSite
	return wc
}

// selectProfiles resolves Config.Profiles against the paper's five
// default profiles, preserving the Table 1 order; empty selects all.
func selectProfiles(names []string) ([]browser.Profile, error) {
	all := browser.DefaultProfiles()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		found := false
		for _, p := range all {
			if p.Name == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("webmeasure: unknown profile %q", n)
		}
		want[n] = true
	}
	out := make([]browser.Profile, 0, len(want))
	for _, p := range all {
		if want[p.Name] {
			out = append(out, p)
		}
	}
	return out, nil
}

// WriteReport renders every table and figure of the paper to w.
func (r *Results) WriteReport(w io.Writer) {
	exp := &report.Experiment{
		Analysis:       r.analysis,
		RankBoundaries: r.boundaries,
	}
	exp.WriteAll(w)
}

// WriteDataset streams the raw visit records as JSON Lines (the released
// raw-data artifact of Appendix A).
func (r *Results) WriteDataset(w io.Writer) error {
	return r.dataset.WriteJSONL(w)
}

// WriteDatasetCol writes the raw visit records in the compact columnar
// format (internal/colstore): one block per site with interned strings
// and delta-coded columns, plus a footer index for site-granular seeks.
// ReadCol of the output reproduces WriteDataset's JSONL byte for byte.
func (r *Results) WriteDatasetCol(w io.Writer) error {
	return r.dataset.WriteCol(w)
}

// WriteJSON exports every analysis result as one machine-readable JSON
// bundle (deterministic for a fixed seed — diffable in CI).
func (r *Results) WriteJSON(w io.Writer) error {
	return r.analysis.Export(core.ExportOptions{RankBoundaries: r.boundaries}).WriteJSON(w)
}

// WriteCSVFiles exports every table and figure as CSV files into dir for
// external plotting.
func (r *Results) WriteCSVFiles(dir string) error {
	exp := &report.Experiment{
		Analysis:       r.analysis,
		RankBoundaries: r.boundaries,
	}
	return exp.WriteCSVFiles(dir)
}

// WriteCSV streams every table and figure as one concatenated CSV
// document ("# <name>" section headers), the single-response form served
// over HTTP.
func (r *Results) WriteCSV(w io.Writer) error {
	exp := &report.Experiment{
		Analysis:       r.analysis,
		RankBoundaries: r.boundaries,
	}
	return exp.WriteCSV(w)
}

// Summary is the headline outcome of an experiment.
type Summary struct {
	Sites       int
	Pages       int
	Visits      int
	VettedPages int
	VettedShare float64
	// ExcludedPages counts pages the vetting stage dropped; the Degraded
	// share is the part attributable to fault-truncated observations.
	ExcludedPages    int
	ExcludedDegraded int

	MeanNodesPerTree   float64
	MeanTreeDepth      float64
	MeanNodePresence   float64 // of 5 profiles
	ShareInAllProfiles float64
	ShareInOneProfile  float64

	FirstPartyDepthSimilarity float64
	ThirdPartyDepthSimilarity float64
	TrackingShare             float64
	UniqueNodeShare           float64
}

// Summary computes the headline numbers.
func (r *Results) Summary() Summary {
	cs := r.analysis.CrawlSummary()
	ov := r.analysis.TreeOverview()
	pa := r.analysis.PartyAppearance()
	tr := r.analysis.TrackingStudy()
	un := r.analysis.UniqueNodes()
	var fpSim, tpSim float64
	for _, row := range r.analysis.DepthSimilarityTable() {
		switch row.Label {
		case "first-party nodes":
			fpSim = row.Sim
		case "third-party nodes":
			tpSim = row.Sim
		}
	}
	_ = pa
	return Summary{
		Sites:            cs.Sites,
		Pages:            cs.Pages,
		Visits:           cs.Visits,
		VettedPages:      cs.VettedPages,
		VettedShare:      cs.VettedShare,
		ExcludedPages:    cs.Vetting.Excluded(),
		ExcludedDegraded: cs.Vetting.ExcludedDegraded,

		MeanNodesPerTree:   ov.Nodes.Mean,
		MeanTreeDepth:      ov.Depth.Mean,
		MeanNodePresence:   ov.MeanPresence,
		ShareInAllProfiles: ov.ShareInAll,
		ShareInOneProfile:  ov.ShareInOne,

		FirstPartyDepthSimilarity: fpSim,
		ThirdPartyDepthSimilarity: tpSim,
		TrackingShare:             tr.TrackingShare,
		UniqueNodeShare:           un.UniqueShare,
	}
}

// Analysis exposes the full analysis for advanced consumers (examples, the
// benchmark harness).
func (r *Results) Analysis() *core.Analysis { return r.analysis }

// Universe exposes the generated web universe.
func (r *Results) Universe() *webgen.Universe { return r.universe }

// DriftBaseline snapshots the analysis into a longitudinal drift
// baseline (see internal/drift): the per-epoch artifact the monitor
// persists and later diffs against other epochs of the same experiment.
func (r *Results) DriftBaseline() *drift.Baseline {
	cfg := r.cfg.withDefaults()
	return drift.Snapshot(r.analysis, drift.Meta{
		Epoch:        cfg.Epoch,
		Seed:         cfg.Seed,
		Sites:        cfg.Sites,
		TrancoSize:   cfg.TrancoSize,
		PagesPerSite: cfg.PagesPerSite,
		Profiles:     r.analysis.Profiles(),
		FaultProfile: cfg.FaultProfile,
	})
}

// Dataset exposes the collected visits, e.g. for streaming JSONL
// downloads (dataset.StreamJSONL) from a serving layer.
func (r *Results) Dataset() *dataset.Dataset { return r.dataset }

// RankBoundaries returns the rank-bucket boundaries used for sampling.
func (r *Results) RankBoundaries() []int { return r.boundaries }

// CrawlStats returns the crawler's bookkeeping (zero when the dataset was
// loaded rather than crawled).
func (r *Results) CrawlStats() crawler.Stats { return r.stats }

// LoadAndAnalyze reads a dataset written by WriteDataset or
// WriteDatasetCol — the format is auto-detected from the magic bytes —
// and analyzes it. cfg must carry the same Seed/Sites/TrancoSize/
// PagesPerSite the crawl used, so the universe (and with it the filter
// list and rank sample) can be regenerated deterministically.
func LoadAndAnalyze(datasetIn io.Reader, cfg Config) (*Results, error) {
	return LoadAndAnalyzeContext(context.Background(), datasetIn, cfg)
}

// LoadAndAnalyzeContext is LoadAndAnalyze with cancellation (see
// AnalyzeContext). A columnar dataset is analyzed site by site as it
// decodes: each block's page groups enter the worker pool while only
// that block occupies transient decode memory, and the retained visits
// share the block's interned strings. A seekable columnar input (an
// *os.File) is read through its footer index, whose blocks are listed in
// ascending site order regardless of the order the crawl streamed them,
// so block decode memory stays bounded even for files written in
// crawl order by CrawlStream.
func LoadAndAnalyzeContext(ctx context.Context, datasetIn io.Reader, cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if ra, size, ok := readerAtSize(datasetIn); ok {
		head := make([]byte, len(colstore.Magic))
		if n, _ := ra.ReadAt(head, 0); colstore.Sniff(head[:n]) {
			return loadAndAnalyzeColIndexed(ctx, ra, size, cfg)
		}
	}
	format, rd, err := dataset.DetectFormat(datasetIn)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	if format == dataset.FormatCol {
		return loadAndAnalyzeCol(ctx, rd, cfg)
	}
	ds, err := dataset.ReadJSONL(rd)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	u, sample, boundaries := experimentFrame(cfg)
	return AnalyzeContext(ctx, ds, u, sample, boundaries, cfg)
}

// colStream is the scaffolding the two columnar load paths share: the
// regenerated experiment frame plus an open streaming analysis.
type colStream struct {
	u          *webgen.Universe
	boundaries []int
	ds         *dataset.Dataset
	stream     *core.Stream
	cfg        Config
}

func newColStream(ctx context.Context, cfg Config) (*colStream, error) {
	u, sample, boundaries := experimentFrame(cfg)
	filter, ranks, names, err := analysisEnv(u, sample, cfg)
	if err != nil {
		return nil, err
	}
	ds := dataset.New()
	stream, err := core.NewStream(ds, filter, analysisOptions(ctx, names, ranks, cfg))
	if err != nil {
		return nil, fmt.Errorf("webmeasure: analyze: %w", err)
	}
	return &colStream{u: u, boundaries: boundaries, ds: ds, stream: stream, cfg: cfg}, nil
}

// addBlock feeds one decoded site block to the analysis. Blocks must
// arrive in ascending site order.
func (cs *colStream) addBlock(sb *colstore.SiteBlock) error {
	for _, v := range sb.Visits {
		cs.ds.Add(v)
	}
	return cs.stream.AddSite(sb.Site, dataset.GroupVisits(sb.Visits), sb.KeyCache())
}

func (cs *colStream) finish() (*Results, error) {
	analysis, err := cs.stream.Finish()
	if err != nil {
		return nil, fmt.Errorf("webmeasure: analyze: %w", err)
	}
	return &Results{
		cfg:        cs.cfg,
		universe:   cs.u,
		dataset:    cs.ds,
		analysis:   analysis,
		boundaries: cs.boundaries,
	}, nil
}

// loadAndAnalyzeColIndexed streams a random-access columnar dataset
// through the incremental analysis in footer-index order: decode one
// site block, analyze its pages (through the block's pre-interned key
// cache), move to the next. The decoded visits are retained — the
// derived analyses read raw requests back after the page pool — but
// they alias each block's string table, and no JSONL-sized row buffers
// ever exist. The footer lists blocks in ascending site order whatever
// order the body holds, so this path accepts crawl-order files at the
// same bounded decode memory as site-sorted ones.
func loadAndAnalyzeColIndexed(ctx context.Context, ra io.ReaderAt, size int64, cfg Config) (*Results, error) {
	colr, err := dataset.OpenCol(ra, size)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	cs, err := newColStream(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for bi := range colr.Index().Blocks {
		sb, err := colr.Block(bi)
		if err != nil {
			return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
		}
		if err := cs.addBlock(sb); err != nil {
			return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
		}
	}
	return cs.finish()
}

// loadAndAnalyzeCol handles a non-seekable columnar stream. The body's
// block order is not guaranteed (CrawlStream writes blocks in crawl
// order) and the footer cannot be consulted first, so the blocks are
// buffered, sorted by site, and then fed to the streaming analysis —
// correct for any order, at the cost of holding every decoded block at
// once. Seekable inputs take loadAndAnalyzeColIndexed instead, which
// keeps decode memory bounded.
func loadAndAnalyzeCol(ctx context.Context, r io.Reader, cfg Config) (*Results, error) {
	cs, err := newColStream(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var blocks []*colstore.SiteBlock
	if _, err := dataset.ScanColSites(r, func(sb *colstore.SiteBlock) error {
		blocks = append(blocks, sb)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Site < blocks[j].Site })
	for _, sb := range blocks {
		if err := cs.addBlock(sb); err != nil {
			return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
		}
	}
	return cs.finish()
}

// Partial exports this run's analysis as one shard's contribution to a
// distributed shard-and-merge analysis. The run must have been sharded
// (Config.Shards > 1); the partial carries the shard's vetted trees,
// vetting tally, and raw visits (metrics dumps and trace exports are
// attached by the caller, which owns those registries).
func (r *Results) Partial() (*core.Partial, error) {
	if r.cfg.Shards <= 1 {
		return nil, fmt.Errorf("webmeasure: Partial requires a sharded run (Shards > 1)")
	}
	return r.analysis.Partial(r.cfg.shardPlan(), r.cfg.ShardIndex)
}

// AssembleFromPartials merges one Partial per shard into full Results,
// byte-identical in every export to a single-process run of the same
// config. cfg must carry the same experiment parameters the shard workers
// used (Seed, Sites, TrancoSize, PagesPerSite, Profiles, Shards,
// ShardSeed); the union dataset is rebuilt from the partials' visits in
// shard order.
func AssembleFromPartials(ctx context.Context, cfg Config, parts []*core.Partial) (*Results, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return nil, fmt.Errorf("webmeasure: AssembleFromPartials requires Shards > 1")
	}
	u, sample, boundaries := experimentFrame(cfg)
	filter, skipped := filterlist.Parse(u.FilterListText())
	if skipped != 0 {
		return nil, fmt.Errorf("webmeasure: generated filter list has %d bad rules", skipped)
	}
	ranks := make(map[string]int, len(sample))
	for _, e := range sample {
		ranks[e.Site] = e.Rank
	}
	profs, err := selectProfiles(cfg.Profiles)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(profs))
	for i, p := range profs {
		names[i] = p.Name
	}
	// The union dataset: every shard's visits, in shard order. Exports
	// that depend on visit *grouping* use the page-key-sorted view, so
	// the concatenation order is invisible to every artifact.
	byShard := make([]*core.Partial, cfg.Shards)
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.Shard >= 0 && p.Shard < cfg.Shards && byShard[p.Shard] == nil {
			byShard[p.Shard] = p
		}
	}
	ds := dataset.New()
	for _, p := range byShard {
		if p == nil {
			continue
		}
		for _, v := range p.Visits {
			ds.Add(v)
		}
	}
	analysis, err := core.NewFromPartials(ds, filter, core.Options{
		Profiles: names,
		SiteRank: ranks,
		Workers:  cfg.Workers,
		Metrics:  cfg.Metrics,
	}, cfg.shardPlan(), parts)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: assemble: %w", err)
	}
	return &Results{
		cfg:        cfg,
		universe:   u,
		dataset:    ds,
		analysis:   analysis,
		boundaries: boundaries,
	}, nil
}

// LoadAndAnalyzeSharded is LoadAndAnalyzeShardedContext with a background
// context.
func LoadAndAnalyzeSharded(datasetIn io.Reader, cfg Config) (*Results, error) {
	return LoadAndAnalyzeShardedContext(context.Background(), datasetIn, cfg)
}

// LoadAndAnalyzeShardedContext analyzes a loaded dataset through the
// distributed shard-and-merge pipeline inside one process: it splits the
// dataset into Config.Shards slices of the page-key space, analyzes each
// slice independently, round-trips every Partial through its wire
// encoding, and assembles the merged Results — byte-identical in every
// export to the unsharded analysis, which is what cmd/analyze -shards
// exercises. Shards <= 1 falls back to LoadAndAnalyzeContext. The input
// format is auto-detected; a seekable columnar input (an *os.File) is
// read through its footer index, so each shard decodes only the blocks
// whose page lists intersect its slice.
func LoadAndAnalyzeShardedContext(ctx context.Context, datasetIn io.Reader, cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return LoadAndAnalyzeContext(ctx, datasetIn, cfg)
	}
	if ra, size, ok := readerAtSize(datasetIn); ok {
		head := make([]byte, len(colstore.Magic))
		if n, _ := ra.ReadAt(head, 0); colstore.Sniff(head[:n]) {
			return loadAndAnalyzeShardedCol(ctx, ra, size, cfg)
		}
	}
	ds, err := dataset.ReadAuto(datasetIn)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	plan := cfg.shardPlan()
	parts := make([]*core.Partial, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		keep := plan.Keep(i)
		shardDS := ds.FilterPages(func(k dataset.PageKey) bool { return keep(k.Site, k.PageURL) })
		if err := analyzeShard(ctx, cfg, i, shardDS, parts); err != nil {
			return nil, err
		}
	}
	return AssembleFromPartials(ctx, cfg, parts)
}

// loadAndAnalyzeShardedCol runs the in-process shard-and-merge pipeline
// against a random-access columnar dataset: each shard consults the
// footer index's per-block page lists and decodes only the blocks
// holding pages of its slice — the I/O pattern a remote shard worker
// with the file on shared storage would use.
func loadAndAnalyzeShardedCol(ctx context.Context, ra io.ReaderAt, size int64, cfg Config) (*Results, error) {
	colr, err := dataset.OpenCol(ra, size)
	if err != nil {
		return nil, fmt.Errorf("webmeasure: load dataset: %w", err)
	}
	plan := cfg.shardPlan()
	parts := make([]*core.Partial, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		keep := plan.Keep(i)
		shardDS := dataset.New()
		for bi, meta := range colr.Index().Blocks {
			hit := false
			for _, page := range meta.Pages {
				if keep(meta.Site, page) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			sb, err := colr.Block(bi)
			if err != nil {
				return nil, fmt.Errorf("webmeasure: shard %d/%d: %w", i, cfg.Shards, err)
			}
			for _, v := range sb.Visits {
				if keep(v.Site, v.PageURL) {
					shardDS.Add(v)
				}
			}
		}
		if err := analyzeShard(ctx, cfg, i, shardDS, parts); err != nil {
			return nil, err
		}
	}
	return AssembleFromPartials(ctx, cfg, parts)
}

// analyzeShard analyzes one shard's slice and stores its wire-round-
// tripped Partial in parts[i].
func analyzeShard(ctx context.Context, cfg Config, i int, shardDS *dataset.Dataset, parts []*core.Partial) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("webmeasure: sharded analysis canceled: %w", err)
	}
	shardCfg := cfg
	shardCfg.ShardIndex = i
	u, sample, boundaries := experimentFrame(shardCfg)
	res, err := AnalyzeContext(ctx, shardDS, u, sample, boundaries, shardCfg)
	if err != nil {
		return fmt.Errorf("webmeasure: shard %d/%d: %w", i, cfg.Shards, err)
	}
	part, err := res.Partial()
	if err != nil {
		return err
	}
	// Round-trip through the wire form so the in-process path exercises
	// exactly what a remote worker ships.
	wire, err := part.Encode()
	if err != nil {
		return err
	}
	parts[i], err = core.DecodePartial(wire)
	return err
}

// readerAtSize reports whether r supports random access from its start,
// returning the ReaderAt view and total size. Only a reader positioned
// at offset zero qualifies — a partially-consumed stream cannot be
// safely re-read by offset.
func readerAtSize(r io.Reader) (io.ReaderAt, int64, bool) {
	ras, ok := r.(interface {
		io.ReaderAt
		io.Seeker
	})
	if !ok {
		return nil, 0, false
	}
	cur, err := ras.Seek(0, io.SeekCurrent)
	if err != nil || cur != 0 {
		return nil, 0, false
	}
	size, err := ras.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, false
	}
	if _, err := ras.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false
	}
	return ras, size, true
}
