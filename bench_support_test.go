package webmeasure

import "webmeasure/internal/measurement"

// fig6Visit constructs a visit whose tree has exactly the given
// (child, parent) edges, expressed through synthetic call stacks.
func fig6Visit(profile, rootURL string, edges [][2]string) *measurement.Visit {
	v := &measurement.Visit{
		Site: "fig6.example", PageURL: rootURL, Profile: profile, Success: true,
		Requests: []measurement.Request{{URL: rootURL, Type: measurement.TypeMainFrame}},
	}
	for _, e := range edges {
		req := measurement.Request{URL: e[0], Type: measurement.TypeScript}
		if e[1] != rootURL {
			req.CallStack = []measurement.StackFrame{{FuncName: "f", URL: e[1]}}
		}
		v.Requests = append(v.Requests, req)
	}
	return v
}
