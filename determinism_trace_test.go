package webmeasure

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"webmeasure/internal/trace"
)

// traceRun crawls and analyzes one configuration under a fresh tracer and
// returns both trace exports plus the tracer itself.
func traceRun(t *testing.T, cfg Config, sampleEvery int) (jsonl, chrome []byte, tc *trace.Tracer) {
	t.Helper()
	tc = trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: sampleEvery})
	cfg.Tracer = tc
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var jl, ch bytes.Buffer
	if err := tc.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := tc.WriteChromeTrace(&ch); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ch.Bytes(), tc
}

// TestTraceByteIdenticalAcrossWorkers folds the span trace into the
// determinism golden suite: the same seed must export byte-identical
// trace JSONL and Chrome trace-event JSON at Workers=1 and Workers=8 —
// span IDs are seeded hashes and timestamps are simulated, so no
// goroutine schedule may leak into the trace. Runs both on a clean
// network and under heavy fault injection (retry/backoff spans included),
// and repeats the clean run with head-sampling on.
func TestTraceByteIdenticalAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name    string
		faults  string
		sample  int
		require []string
	}{
		{
			name: "clean", faults: "", sample: 1,
			require: []string{
				"crawl.visit", "crawl.fetch",
				"analyze.vet", "analyze.build", "analyze.compare",
				"treediff.intern", "treediff.fill",
			},
		},
		{
			name: "heavy-faults", faults: "heavy", sample: 1,
			require: []string{"crawl.visit", "crawl.fetch", "crawl.backoff", "analyze.compare"},
		},
		{name: "sampled-1-in-3", faults: "", sample: 3, require: []string{"crawl.visit"}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: 11, Sites: 8, PagesPerSite: 3, FaultProfile: tc.faults}
			cfg.Workers = 1
			oneJL, oneCh, tr1 := traceRun(t, cfg, tc.sample)
			cfg.Workers = 8
			eightJL, eightCh, tr8 := traceRun(t, cfg, tc.sample)

			if !bytes.Equal(oneJL, eightJL) {
				t.Errorf("trace JSONL differs between workers=1 and workers=8 (%d vs %d bytes)",
					len(oneJL), len(eightJL))
			}
			if !bytes.Equal(oneCh, eightCh) {
				t.Errorf("Chrome trace differs between workers=1 and workers=8 (%d vs %d bytes)",
					len(oneCh), len(eightCh))
			}
			if tr1.SpanCount() == 0 || tr1.SpanCount() != tr8.SpanCount() {
				t.Errorf("span counts: workers=1 has %d, workers=8 has %d",
					tr1.SpanCount(), tr8.SpanCount())
			}
			got := string(oneJL)
			for _, span := range tc.require {
				if !strings.Contains(got, `"name":"`+span+`"`) {
					t.Errorf("trace missing %q spans", span)
				}
			}
			if tc.sample > 1 {
				full := Config{Seed: 11, Sites: 8, PagesPerSite: 3}
				fullJL, _, _ := traceRun(t, full, 1)
				if len(oneJL) >= len(fullJL) {
					t.Errorf("1-in-%d sampling did not shrink the trace (%d vs %d bytes)",
						tc.sample, len(oneJL), len(fullJL))
				}
			}
			if tc.faults == "heavy" {
				if !strings.Contains(got, `"fault.kind"`) {
					t.Error("fault run recorded no fault.kind attributes")
				}
				if !strings.Contains(got, `"attempt":"2"`) {
					t.Error("fault run recorded no second fetch attempts")
				}
			}
		})
	}
}
