package webmeasure_test

import (
	"context"
	"fmt"
	"testing"

	"webmeasure/internal/service"
)

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// measurement service (submit → queue → execute → render artifacts) at
// several worker-pool sizes, with the result cache off and on. With the
// cache off every iteration is a distinct experiment (seed varies per
// job); with it on every iteration after the first is the same spec, so
// the steady state is pure cache-hit serving — the amortization the
// serving layer exists for.
func BenchmarkServiceThroughput(b *testing.B) {
	spec := func(seed int64) service.JobSpec {
		return service.JobSpec{Seed: seed, Sites: 5, PagesPerSite: 2}
	}
	for _, workers := range []int{1, 4, 8} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/cache=%v", workers, cached)
			b.Run(name, func(b *testing.B) {
				cacheSize := -1 // disabled
				if cached {
					cacheSize = 64
				}
				s := service.New(service.Config{
					Workers:    workers,
					QueueDepth: 2 * workers,
					CacheSize:  cacheSize,
				})
				b.ReportAllocs()
				b.ResetTimer()
				inflight := make([]*service.Job, 0, b.N)
				for i := 0; i < b.N; i++ {
					seed := int64(i + 1)
					if cached {
						seed = 1
					}
					for {
						j, err := s.Submit(spec(seed))
						if err == service.ErrQueueFull {
							// Backpressure: wait for the oldest job.
							<-inflight[0].Done()
							inflight = inflight[1:]
							continue
						}
						if err != nil {
							b.Fatal(err)
						}
						inflight = append(inflight, j)
						break
					}
				}
				for _, j := range inflight {
					<-j.Done()
				}
				b.StopTimer()
				if err := s.Shutdown(context.Background()); err != nil {
					b.Fatal(err)
				}
				hits := s.Metrics().Counter("service.cache.hits").Value()
				// Identical jobs submitted while the first is still
				// running all miss; hits are only guaranteed once the
				// iteration count clears the concurrent window.
				if cached && b.N > 4*workers && hits == 0 {
					b.Fatal("cached run recorded no cache hits")
				}
				if !cached && hits != 0 {
					b.Fatalf("uncached run recorded %d cache hits", hits)
				}
			})
		}
	}
}
