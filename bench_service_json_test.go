package webmeasure_test

import (
	"encoding/json"
	"os"
	"testing"

	"webmeasure/internal/loadgen"
)

// benchServiceFile is where `make bench-service` (cmd/loadgen via
// scripts/bench_service.sh) records the service load scenarios.
const benchServiceFile = "BENCH_service.json"

// TestBenchServiceJSONWellFormed guards the shape of BENCH_service.json
// so a broken bench run can't silently record garbage. The file is a
// build artifact, not a source file, so the test skips when it hasn't
// been generated (tier-1 stays independent of `make bench-service`).
func TestBenchServiceJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile(benchServiceFile)
	if os.IsNotExist(err) {
		t.Skipf("%s not generated; run `make bench-service`", benchServiceFile)
	}
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scenarios []struct {
			Name   string          `json:"name"`
			Report *loadgen.Report `json:"report"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid JSON: %v", benchServiceFile, err)
	}
	if len(doc.Scenarios) < 4 {
		t.Fatalf("%s holds %d scenarios, want at least 4", benchServiceFile, len(doc.Scenarios))
	}
	seen := map[string]bool{}
	var sawScaling, sawRejection bool
	for _, s := range doc.Scenarios {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("missing or duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		r := s.Report
		if r == nil {
			t.Errorf("%s: no report recorded", s.Name)
			continue
		}
		if r.Mode != "sim" {
			t.Errorf("%s: mode %q — bench scenarios must be reproducible sim runs", s.Name, r.Mode)
		}
		if r.Submitted <= 0 || r.Completed <= 0 {
			t.Errorf("%s: no traffic recorded: %+v", s.Name, r)
		}
		if r.Submitted != r.Completed+r.CacheHits+r.Rejected {
			t.Errorf("%s: traffic does not balance: submitted %d != completed %d + hits %d + rejected %d",
				s.Name, r.Submitted, r.Completed, r.CacheHits, r.Rejected)
		}
		if len(r.Checks) == 0 {
			t.Errorf("%s: no SLO checks recorded", s.Name)
		}
		if r.ScaleUps > 0 && r.ScaleDowns > 0 {
			sawScaling = true
		}
		if r.Rejected > 0 {
			sawRejection = true
		}
	}
	// The matrix must cover both headline behaviors: a scenario where the
	// pool scales both ways, and one where backpressure rejects.
	if !sawScaling {
		t.Errorf("%s: no scenario exercises scale-up and scale-down", benchServiceFile)
	}
	if !sawRejection {
		t.Errorf("%s: no scenario exercises 429 backpressure", benchServiceFile)
	}
}
