package webmeasure

import (
	"strconv"
	"testing"

	"webmeasure/internal/core"
	"webmeasure/internal/filterlist"
)

// BenchmarkAnalysisWorkers measures the sharded analysis pipeline at
// several worker-pool sizes over the shared benchmark dataset — the
// speedup trajectory of the parallel rework (the outputs are proven
// byte-identical across worker counts by TestAnalysisByteIdenticalAcross-
// Workers, so this benchmark tracks pure wall-clock).
func BenchmarkAnalysisWorkers(b *testing.B) {
	res := benchExperiment(b)
	ds := res.Analysis().Dataset()
	filter, skipped := filterlist.Parse(res.Universe().FilterListText())
	if skipped != 0 {
		b.Fatalf("filter list has %d bad rules", skipped)
	}
	profiles := res.Analysis().Profiles()
	for _, workers := range []int{1, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(ds, filter, core.Options{
					Profiles: profiles,
					Workers:  workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
