package psl

import "sync"

// defaultListText is a compact public suffix list: a representative subset of
// the real publicsuffix.org data (including its classic wildcard and
// exception rules, so the full algorithm is exercised) plus the suffixes used
// by the synthetic web universe in internal/webgen.
const defaultListText = `
// ===BEGIN ICANN DOMAINS===
// ICANN TLDs (subset)
com
net
org
io
info
biz
de
fr
nl
edu
gov

// Multi-label ICANN suffixes (subset)
co.uk
org.uk
ac.uk
gov.uk
com.au
net.au
org.au
co.jp
ne.jp
or.jp
com.br
net.br

// Classic wildcard/exception rules from the real list
*.ck
!www.ck
*.kawasaki.jp
*.kitakyushu.jp

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
// Private-domain style suffixes (subset)
github.io
gitlab.io
blogspot.com
cloudfront.net
herokuapp.com
s3.amazonaws.com

// Suffixes reserved for documentation / testing
example
test
invalid
localhost
// ===END PRIVATE DOMAINS===
`

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns the embedded list. The list is parsed once and shared; it
// must not be mutated.
func Default() *List {
	defaultOnce.Do(func() {
		defaultList = MustParse(defaultListText)
	})
	return defaultList
}
