// Package psl implements the Public Suffix List algorithm used to determine
// the registrable part of a domain name (the "eTLD+1", called a *site* in the
// paper). The matcher supports the full PSL rule semantics: plain rules,
// wildcard labels ("*.ck"), and exception rules ("!www.ck").
//
// The package ships with a compact embedded list (see data.go) covering the
// suffixes that appear in the synthetic web universe plus a representative
// set of real-world suffixes, and can parse any list in the standard
// publicsuffix.org format.
package psl

import (
	"bufio"
	"fmt"
	"strings"
)

// List is a parsed public suffix list. The zero value matches nothing; use
// Parse or Default to obtain a usable list.
type List struct {
	// rules maps a rule's label sequence (joined with ".") to its kind.
	rules map[string]ruleKind
	// icann marks rules from the ICANN section of the list; the rest are
	// PRIVATE-section rules (registry-operator suffixes like github.io).
	// Measurement studies care about the distinction: a private suffix
	// turns every customer subdomain into its own "site".
	icann map[string]bool
	// maxLabels bounds the lookup walk.
	maxLabels int

	currentICANN bool
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota + 1
	ruleWildcard
	ruleException
)

// Parse reads a public suffix list in the standard format: one rule per
// line, "//" comments, blank lines ignored. Rules are lower-cased. An empty
// input yields a list with only the implicit "*" rule (every TLD is a public
// suffix), matching publicsuffix.org semantics.
func Parse(text string) (*List, error) {
	l := &List{rules: make(map[string]ruleKind), icann: make(map[string]bool)}
	inICANN := false
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "//") {
			// Track the standard section markers of the canonical list.
			switch {
			case strings.Contains(line, "===BEGIN ICANN DOMAINS==="):
				inICANN = true
			case strings.Contains(line, "===END ICANN DOMAINS==="):
				inICANN = false
			}
			continue
		}
		if line == "" {
			continue
		}
		l.currentICANN = inICANN
		// The canonical list terminates rules at whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		if err := l.addRule(strings.ToLower(line)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// currentICANN is consulted by addRule during Parse; it is not part of the
// list's immutable state after parsing.

// MustParse is Parse, panicking on error. It is intended for embedded data.
func MustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic("psl: invalid embedded list: " + err.Error())
	}
	return l
}

func (l *List) addRule(rule string) error {
	kind := ruleNormal
	if strings.HasPrefix(rule, "!") {
		kind = ruleException
		rule = rule[1:]
	}
	if rule == "" || strings.HasPrefix(rule, ".") || strings.HasSuffix(rule, ".") {
		return fmt.Errorf("psl: malformed rule %q", rule)
	}
	labels := strings.Split(rule, ".")
	for i, lab := range labels {
		if lab == "" {
			return fmt.Errorf("psl: empty label in rule %q", rule)
		}
		// A "*" is only meaningful as the leftmost label; the PSL never
		// uses interior wildcards and we reject them for clarity.
		if strings.Contains(lab, "*") && (lab != "*" || i != 0) {
			return fmt.Errorf("psl: unsupported wildcard in rule %q", rule)
		}
	}
	if labels[0] == "*" {
		if kind == ruleException {
			return fmt.Errorf("psl: exception rule cannot be a wildcard: %q", rule)
		}
		kind = ruleWildcard
		rule = strings.Join(labels[1:], ".")
		if rule == "" {
			return fmt.Errorf("psl: bare wildcard rule")
		}
	}
	if n := len(labels); n > l.maxLabels {
		l.maxLabels = n
	}
	l.rules[rule] = kind
	if l.currentICANN {
		l.icann[rule] = true
	}
	return nil
}

// IsICANN reports whether the domain's public suffix comes from the ICANN
// section of the list. Suffixes outside any marked section (including the
// implicit "*" rule) report false.
func (l *List) IsICANN(domain string) bool {
	suffix := l.PublicSuffix(domain)
	if suffix == "" {
		return false
	}
	if _, exact := l.rules[suffix]; exact {
		return l.icann[suffix]
	}
	// The suffix came from a wildcard extension ("foo.ck" via "*.ck",
	// stored under "ck") or the implicit "*" rule; inherit the parent
	// rule's section, if one exists.
	if i := strings.IndexByte(suffix, '.'); i >= 0 {
		parent := suffix[i+1:]
		if l.rules[parent] == ruleWildcard {
			return l.icann[parent]
		}
	}
	return false
}

// Len reports the number of rules in the list.
func (l *List) Len() int { return len(l.rules) }

// PublicSuffix returns the public suffix of domain according to the list and
// the implicit "*" rule. The domain must be a bare host name (no scheme,
// port, or trailing dot); it is lower-cased before matching. For a domain
// that is itself a public suffix, the domain is returned unchanged.
func (l *List) PublicSuffix(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	if domain == "" {
		return ""
	}
	labels := strings.Split(domain, ".")

	// Walk suffixes from the TLD leftward, recording the prevailing match.
	// Exception rules beat everything; otherwise the longest match wins
	// (which the left-to-right extension walk gives us naturally).
	bestLen := 1 // implicit "*" rule: the TLD itself
	for i := len(labels) - 1; i >= 0; i-- {
		suffix := strings.Join(labels[i:], ".")
		switch l.rules[suffix] {
		case ruleException:
			// The exception's suffix is the rule with its leftmost
			// label removed.
			return strings.Join(labels[i+1:], ".")
		case ruleNormal:
			if n := len(labels) - i; n > bestLen {
				bestLen = n
			}
		case ruleWildcard:
			// "*.<suffix>" extends the match one label to the left,
			// if such a label exists.
			if i > 0 {
				if n := len(labels) - i + 1; n > bestLen {
					bestLen = n
				}
			}
		}
	}
	return strings.Join(labels[len(labels)-bestLen:], ".")
}

// RegistrableDomain returns the eTLD+1 of domain: the public suffix plus one
// more label. It returns "" when domain is itself a public suffix (or empty),
// mirroring golang.org/x/net/publicsuffix.EffectiveTLDPlusOne's error case.
func (l *List) RegistrableDomain(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	suffix := l.PublicSuffix(domain)
	if suffix == "" || domain == suffix {
		return ""
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	if rest == domain {
		return "" // suffix was not a proper suffix; defensive
	}
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	if rest == "" {
		return ""
	}
	return rest + "." + suffix
}

// IsPublicSuffix reports whether domain exactly equals a public suffix.
func (l *List) IsPublicSuffix(domain string) bool {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	return domain != "" && l.PublicSuffix(domain) == domain
}
