package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, want string
	}{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"a.b.example.co.uk", "co.uk"},
		{"com", "com"},
		{"co.uk", "co.uk"},
		{"foo.github.io", "github.io"},
		{"github.io", "github.io"},
		{"site-0001.example", "example"},
		{"cdn.site-0001.example", "example"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.domain); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.domain, got, c.want)
		}
	}
}

func TestPublicSuffixWildcardAndException(t *testing.T) {
	l := Default()
	// *.ck: any single label under ck is a public suffix.
	if got := l.PublicSuffix("foo.ck"); got != "foo.ck" {
		t.Errorf("PublicSuffix(foo.ck) = %q, want foo.ck", got)
	}
	if got := l.PublicSuffix("bar.foo.ck"); got != "foo.ck" {
		t.Errorf("PublicSuffix(bar.foo.ck) = %q, want foo.ck", got)
	}
	// !www.ck: exception — suffix is "ck".
	if got := l.PublicSuffix("www.ck"); got != "ck" {
		t.Errorf("PublicSuffix(www.ck) = %q, want ck", got)
	}
	if got := l.RegistrableDomain("www.ck"); got != "www.ck" {
		t.Errorf("RegistrableDomain(www.ck) = %q, want www.ck", got)
	}
	if got := l.RegistrableDomain("a.b.foo.ck"); got != "b.foo.ck" {
		t.Errorf("RegistrableDomain(a.b.foo.ck) = %q, want b.foo.ck", got)
	}
}

func TestImplicitStarRule(t *testing.T) {
	l := Default()
	// "zz" is not on the list; the implicit * rule makes the TLD a suffix.
	if got := l.PublicSuffix("example.zz"); got != "zz" {
		t.Errorf("PublicSuffix(example.zz) = %q, want zz", got)
	}
	if got := l.RegistrableDomain("www.example.zz"); got != "example.zz" {
		t.Errorf("RegistrableDomain(www.example.zz) = %q, want example.zz", got)
	}
}

func TestRegistrableDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, want string
	}{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.co.uk", "example.co.uk"},
		{"com", ""},
		{"co.uk", ""},
		{"", ""},
		{"foo.github.io", "foo.github.io"},
		{"a.foo.github.io", "foo.github.io"},
		{"github.io", ""},
		{"WWW.EXAMPLE.COM", "example.com"},
		{"www.example.com.", "example.com"},
	}
	for _, c := range cases {
		if got := l.RegistrableDomain(c.domain); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.domain, got, c.want)
		}
	}
}

func TestIsPublicSuffix(t *testing.T) {
	l := Default()
	for _, s := range []string{"com", "co.uk", "github.io", "example", "zz"} {
		if !l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"example.com", "www.co.uk", ""} {
		if l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = true, want false", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		".com",
		"com.",
		"a..b",
		"!*.bad",
		"*",
		"fo*o.com",
		"com.*",
	}
	for _, rule := range bad {
		if _, err := Parse(rule); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", rule)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	l, err := Parse("// header\n\ncom // trailing note\n\t org.uk\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if got := l.PublicSuffix("x.org.uk"); got != "org.uk" {
		t.Errorf("PublicSuffix(x.org.uk) = %q, want org.uk", got)
	}
}

func TestLongestRuleWins(t *testing.T) {
	l := MustParse("com\nfoo.com\nbar.foo.com")
	if got := l.PublicSuffix("x.bar.foo.com"); got != "bar.foo.com" {
		t.Errorf("longest rule: got %q, want bar.foo.com", got)
	}
	if got := l.RegistrableDomain("x.y.bar.foo.com"); got != "y.bar.foo.com" {
		t.Errorf("RegistrableDomain: got %q, want y.bar.foo.com", got)
	}
}

// Property: RegistrableDomain is idempotent and is always a suffix of the
// input (when non-empty), and the registrable domain has exactly one more
// label than its public suffix.
func TestRegistrableDomainProperties(t *testing.T) {
	l := Default()
	labels := []string{"a", "bb", "ccc", "www", "cdn", "example", "com", "co", "uk", "ck", "io"}
	f := func(idx []uint8) bool {
		if len(idx) == 0 || len(idx) > 6 {
			return true
		}
		parts := make([]string, len(idx))
		for i, x := range idx {
			parts[i] = labels[int(x)%len(labels)]
		}
		domain := strings.Join(parts, ".")
		rd := l.RegistrableDomain(domain)
		if rd == "" {
			return true
		}
		if !strings.HasSuffix(domain, rd) {
			t.Logf("domain=%q rd=%q not a suffix", domain, rd)
			return false
		}
		if l.RegistrableDomain(rd) != rd {
			t.Logf("domain=%q rd=%q not idempotent", domain, rd)
			return false
		}
		ps := l.PublicSuffix(rd)
		if strings.Count(rd, ".") != strings.Count(ps, ".")+1 {
			t.Logf("domain=%q rd=%q ps=%q label counts wrong", domain, rd, ps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRegistrableDomain(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.RegistrableDomain("static.cdn.site-0042.example")
	}
}

func TestICANNSections(t *testing.T) {
	l := Default()
	for _, d := range []string{"example.com", "x.example.co.uk", "foo.ck", "www.kawasaki.jp"} {
		if !l.IsICANN(d) {
			t.Errorf("IsICANN(%q) = false, want true", d)
		}
	}
	for _, d := range []string{"user.github.io", "bucket.s3.amazonaws.com", "shop.example", "unknown.zz"} {
		if l.IsICANN(d) {
			t.Errorf("IsICANN(%q) = true, want false", d)
		}
	}
	// A list without section markers reports false everywhere.
	plain := MustParse("com\nio")
	if plain.IsICANN("example.com") {
		t.Error("unmarked lists must not claim ICANN status")
	}
}
