package core

import (
	"math"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tree"
)

func TestDepthBreadthHistogramMarginals(t *testing.T) {
	a := sharedExperiment(t)
	h := a.DepthBreadthHistogram()
	// Every tree contributes exactly one (breadth, depth) point, and the
	// coordinates must match the trees.
	var total int
	for _, pa := range a.Pages() {
		for _, tr := range pa.Trees {
			total++
			if h.Count(tr.Breadth(), tr.MaxDepth()) == 0 {
				t.Fatalf("tree (b=%d, d=%d) not in the histogram", tr.Breadth(), tr.MaxDepth())
			}
		}
	}
	if h.Total() != total {
		t.Errorf("histogram total %d != trees %d", h.Total(), total)
	}
}

func TestSimilarityDistributionMass(t *testing.T) {
	a := sharedExperiment(t)
	d := a.SimilarityDistribution()
	sum := func(fs []float64) float64 {
		var s float64
		for _, f := range fs {
			s += f
		}
		return s
	}
	if s := sum(d.Children.RelativeFrequencies()); math.Abs(s-1) > 1e-9 {
		t.Errorf("children frequencies sum to %v", s)
	}
	if s := sum(d.Parents.RelativeFrequencies()); math.Abs(s-1) > 1e-9 {
		t.Errorf("parent frequencies sum to %v", s)
	}
	// Paper Fig. 2: the parent distribution's top bin dominates (most
	// parents near-perfectly similar).
	pf := d.Parents.RelativeFrequencies()
	top := pf[len(pf)-1]
	for _, f := range pf[:len(pf)-1] {
		if f > top {
			t.Errorf("parent top bin (%v) not dominant (bin at %v)", top, f)
		}
	}
}

func TestNodeTypeVolumeTotals(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.NodeTypeVolume()
	var fromRows int
	for _, r := range rows {
		fromRows += r.Nodes
	}
	var fromTrees int
	for _, pa := range a.Pages() {
		for _, tr := range pa.Trees {
			fromTrees += tr.NodeCount()
		}
	}
	if fromRows != fromTrees {
		t.Errorf("Fig3 node total %d != tree total %d", fromRows, fromTrees)
	}
	// Depth-0 row counts exactly one root per tree.
	if rows[0].Nodes != len(a.Pages())*5 {
		t.Errorf("depth-0 nodes %d != trees %d", rows[0].Nodes, len(a.Pages())*5)
	}
}

func TestTypeSharesBySimilarityInvariants(t *testing.T) {
	a := sharedExperiment(t)
	f := a.TypeSharesBySimilarity("parent", 10)
	var pages int
	for _, p := range f.Pages {
		pages += p
	}
	if pages == 0 || pages > len(a.Pages()) {
		t.Errorf("binned pages = %d of %d", pages, len(a.Pages()))
	}
	for _, s := range f.Series {
		for b, share := range s.Shares {
			if share < 0 || share > 1 {
				t.Errorf("type %v bin %d share %v", s.Type, b, share)
			}
		}
	}
	// Shares within a bin never exceed 1 in total (the five plotted types
	// are a subset of all types).
	for b := 0; b < 10; b++ {
		var sum float64
		for _, s := range f.Series {
			sum += s.Shares[b]
		}
		if sum > 1+1e-9 {
			t.Errorf("bin %d type shares sum to %v", b, sum)
		}
	}
}

func TestChildrenByDepthConsistency(t *testing.T) {
	a := sharedExperiment(t)
	all := a.ChildrenByDepth(20, false)
	withKids := a.ChildrenByDepth(20, true)
	byDepthAll := map[int]ChildrenByDepthRow{}
	for _, r := range all {
		byDepthAll[r.Depth] = r
	}
	for _, r := range withKids {
		base, ok := byDepthAll[r.Depth]
		if !ok {
			t.Fatalf("with-children depth %d missing from all-nodes view", r.Depth)
		}
		if r.Nodes > base.Nodes {
			t.Errorf("depth %d: filtered nodes %d > all %d", r.Depth, r.Nodes, base.Nodes)
		}
		if r.Mean < base.Mean {
			t.Errorf("depth %d: filtering to parents must raise the mean (%v < %v)",
				r.Depth, r.Mean, base.Mean)
		}
	}
}

func TestTypeDepthSimilarityCoversObservedTypes(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.TypeDepthSimilarity(8)
	seen := map[measurement.ResourceType]bool{}
	for _, r := range rows {
		seen[r.Type] = true
	}
	// The panel set of Fig. 7 — every type the generator emits in volume
	// must appear.
	for _, ty := range []measurement.ResourceType{
		measurement.TypeScript, measurement.TypeImage, measurement.TypeStylesheet,
		measurement.TypeSubFrame, measurement.TypeXHR, measurement.TypeBeacon,
	} {
		if !seen[ty] {
			t.Errorf("Fig7 missing panel for %v", ty)
		}
	}
}

func TestSimilarityByDepthMatchesPartyOrdering(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.SimilarityByDepth()
	// Depth 1 (FP-dominated) must be more parent-similar than the deepest
	// bucket (TP-dominated) — Fig. 4's trend.
	d1, deep := rows[1], rows[len(rows)-1]
	if deep.Nodes > 50 && d1.ParentSim <= deep.ParentSim {
		t.Errorf("parent similarity should fall with depth: d1=%v deep=%v",
			d1.ParentSim, deep.ParentSim)
	}
}

// TestVolumeVsPartyAppearance cross-checks two independent computations of
// the third-party share.
func TestVolumeVsPartyAppearance(t *testing.T) {
	a := sharedExperiment(t)
	pa := a.PartyAppearance()
	// Recompute the TP share from tree instances, weighted by presence:
	// NodeTypeVolume counts instances, PartyAppearance counts distinct
	// keys, so they differ — but both must land on the same side of 50%.
	var tpInstances, instances int
	for _, page := range a.Pages() {
		for _, tr := range page.Trees {
			for _, n := range tr.Nodes() {
				if n.IsRoot() {
					continue
				}
				instances++
				if n.Party == tree.ThirdParty {
					tpInstances++
				}
			}
		}
	}
	instShare := float64(tpInstances) / float64(instances)
	if (pa.TPShare > 0.5) != (instShare > 0.5) {
		t.Errorf("TP share disagreement: keys %v vs instances %v", pa.TPShare, instShare)
	}
}
