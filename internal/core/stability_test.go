package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"webmeasure/internal/tranco"
)

func TestStabilityReport(t *testing.T) {
	a := sharedExperiment(t)
	rep := a.Stability()

	if rep.PageStability.N != len(a.Pages()) {
		t.Errorf("page scores %d != vetted pages %d", rep.PageStability.N, len(a.Pages()))
	}
	if rep.PageStability.Mean <= 0 || rep.PageStability.Mean >= 1 {
		t.Errorf("mean page stability = %v", rep.PageStability.Mean)
	}
	if got := rep.HighPages + rep.MediumPages + rep.LowPages; got != rep.PageStability.N {
		t.Errorf("category counts %d != pages %d", got, rep.PageStability.N)
	}
	if rep.ExpectedDiscovery <= 0 || rep.ExpectedDiscovery >= 0.5 {
		t.Errorf("expected discovery = %v", rep.ExpectedDiscovery)
	}
	if len(rep.ByCategory) < 4 {
		t.Fatalf("categories = %d", len(rep.ByCategory))
	}
	// Sorted by decreasing presence.
	for i := 1; i < len(rep.ByCategory); i++ {
		if rep.ByCategory[i].MeanPresence > rep.ByCategory[i-1].MeanPresence {
			t.Fatal("categories not sorted by presence")
		}
	}
	byName := map[string]CategoryStability{}
	for _, c := range rep.ByCategory {
		byName[c.Category] = c
		if c.MeanPresence <= 0 || c.MeanPresence > 1 || c.Nodes == 0 {
			t.Errorf("category %q degenerate: %+v", c.Category, c)
		}
	}
	// First-party static content must be the most stable population;
	// third-party tracking among the least (§4.3, §5.3).
	fpStatic, ok1 := byName["first-party static"]
	tpTracking, ok2 := byName["third-party tracking"]
	if !ok1 || !ok2 {
		keys := make([]string, 0, len(byName))
		for k := range byName {
			keys = append(keys, k)
		}
		t.Fatalf("expected categories missing; have %s", strings.Join(keys, ", "))
	}
	if fpStatic.MeanPresence <= tpTracking.MeanPresence {
		t.Errorf("FP static presence (%v) must beat TP tracking (%v)",
			fpStatic.MeanPresence, tpTracking.MeanPresence)
	}
}

func TestRequiredMeasurements(t *testing.T) {
	r := StabilityReport{ExpectedDiscovery: 0.2}
	// 0.2 → 0.04 → 0.008: three measurements to fall below 1%.
	if got := r.RequiredMeasurements(0.01); got != 3 {
		t.Errorf("RequiredMeasurements = %d, want 3", got)
	}
	if got := (StabilityReport{ExpectedDiscovery: 0}).RequiredMeasurements(0.01); got != 1 {
		t.Errorf("no discovery should need 1 measurement, got %d", got)
	}
	if got := (StabilityReport{ExpectedDiscovery: 1}).RequiredMeasurements(0); got < 1 || got > 100 {
		t.Errorf("degenerate inputs must stay bounded: %d", got)
	}
	// Monotone: easier epsilon needs fewer measurements.
	if r.RequiredMeasurements(0.1) > r.RequiredMeasurements(0.001) {
		t.Error("measurements must grow as epsilon shrinks")
	}
}

func TestStaticDynamic(t *testing.T) {
	a := sharedExperiment(t)
	rep := a.StaticDynamic()
	if rep.NodesCompared == 0 {
		t.Fatal("no nodes compared")
	}
	for name, v := range map[string]float64{
		"content type": rep.ContentTypeStable,
		"status":       rep.StatusStable,
		"size":         rep.SizeStable,
		"presence":     rep.PresenceStable,
		"parent":       rep.ParentStable,
		"child":        rep.ChildStable,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s stability out of range: %v", name, v)
		}
	}
	// Takeaway 3: static facets dominate dynamic facets.
	if rep.ContentTypeStable < 0.99 {
		t.Errorf("content types should be near-perfectly stable: %v", rep.ContentTypeStable)
	}
	if rep.StatusStable < 0.95 {
		t.Errorf("statuses should be highly stable: %v", rep.StatusStable)
	}
	if adv := rep.StaticAdvantage(); adv <= 0.05 {
		t.Errorf("static advantage %v too small — takeaway 3 not demonstrated", adv)
	}
	if rep.PresenceStable >= rep.StatusStable {
		t.Error("presence must be less stable than status")
	}
}

func TestEntityStability(t *testing.T) {
	a := sharedExperiment(t)
	// The shared experiment's universe isn't directly reachable here, so
	// exercise the mechanics with a synthetic entity map first: mapping
	// every domain to one entity collapses all sets to a single element.
	collapse := a.EntityStability(func(string) string { return "everything" })
	if collapse.DistinctEntities != 1 {
		t.Errorf("collapsing map should yield one entity, got %d", collapse.DistinctEntities)
	}
	if collapse.EntitySim.Mean < collapse.DomainSim.Mean {
		t.Errorf("total aggregation must not reduce similarity: %v vs %v",
			collapse.EntitySim.Mean, collapse.DomainSim.Mean)
	}
	// Identity map: entity view equals domain view.
	identity := a.EntityStability(func(string) string { return "" })
	if identity.DistinctEntities != identity.DistinctDomains {
		t.Errorf("identity map must preserve cardinality: %d vs %d",
			identity.DistinctEntities, identity.DistinctDomains)
	}
	if diff := identity.EntitySim.Mean - identity.DomainSim.Mean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("identity map must preserve similarity: %v", diff)
	}
}

func TestTimingReport(t *testing.T) {
	a := sharedExperiment(t)
	rep := a.Timing(30000)
	if rep.StartDeviation.N != len(a.Pages()) {
		t.Errorf("deviation samples %d != pages %d", rep.StartDeviation.N, len(a.Pages()))
	}
	if rep.StartDeviation.Mean <= 0 {
		t.Error("start deviation must be positive (profiles drift)")
	}
	// Appendix C: heavy-tailed deviation — SD should exceed the mean at
	// our mixture parameters, as in the paper (46s mean, 111s SD).
	if rep.StartDeviation.SD < rep.StartDeviation.Mean/3 {
		t.Errorf("deviation tail too thin: mean %.1f SD %.1f",
			rep.StartDeviation.Mean, rep.StartDeviation.SD)
	}
	if rep.Duration.Mean <= 0 || rep.Duration.Max > 30000 {
		t.Errorf("durations implausible: %+v", rep.Duration)
	}
	if rep.TimeoutShare < 0 || rep.TimeoutShare > 0.2 {
		t.Errorf("timeout share = %v", rep.TimeoutShare)
	}
}

func TestExportBundle(t *testing.T) {
	a := sharedExperiment(t)
	e := a.Export(ExportOptions{RankBoundaries: tranco.ScaledBoundaries(500)})
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"crawl_summary", "tree_overview", "depth_similarity", "resource_chains",
		"chain_stability", "profile_totals", "profile_pairs", "rank_buckets",
		"node_type_volume", "similarity_by_depth", "unique_nodes",
		"cookie_study", "tracking_study", "statistical_tests", "stability",
		"static_dynamic", "timing", "same_config",
	} {
		if _, ok := parsed[key]; !ok {
			t.Errorf("bundle missing %q", key)
		}
	}
	// Deterministic: exporting twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := a.Export(ExportOptions{RankBoundaries: tranco.ScaledBoundaries(500)}).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("export not deterministic")
	}
	// Without boundaries the bucket section is absent.
	var buf3 bytes.Buffer
	if err := a.Export(ExportOptions{}).WriteJSON(&buf3); err != nil {
		t.Fatal(err)
	}
	var parsed3 map[string]any
	_ = json.Unmarshal(buf3.Bytes(), &parsed3)
	if _, ok := parsed3["rank_buckets"]; ok {
		t.Error("rank_buckets present without boundaries")
	}
}

func TestAttributionReport(t *testing.T) {
	a := sharedExperiment(t)
	rep := a.Attribution()
	if rep.Visits == 0 || rep.Attributable == 0 {
		t.Fatal("no attribution data in simulated dataset")
	}
	if acc := rep.Accuracy(); acc < 0.85 || acc > 1 {
		t.Errorf("attribution accuracy %v outside [0.85, 1]", acc)
	}
	if rep.MergeArtifacts == 0 {
		t.Error("merge artifacts should occur at this scale (§6)")
	}
	if rep.Correct+rep.MergeArtifacts+rep.RootFallbacks > rep.Attributable {
		t.Error("attribution accounting inconsistent")
	}
	if (AttributionReport{}).Accuracy() != 1 {
		t.Error("empty report accuracy must be 1")
	}
}
