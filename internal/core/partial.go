package core

// This file is the merge half of the distributed shard-and-merge pipeline.
// A shard worker analyzes its slice of the page-key space and exports a
// Partial: the vetted pages' trees in wire form, the vetting tally, the raw
// visits, and optionally the worker's metrics dump and trace export. The
// coordinator decodes one Partial per shard and NewFromPartials lifts the
// sorted-page-key merge one level up — a k-way merge over the shards'
// already-sorted page lists — rebuilding each page's trees and recomputing
// its cross-comparison, so the merged Analysis renders report, JSON, and
// CSV byte-identical to a single-process run over the whole dataset.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"webmeasure/internal/dataset"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// PartialSchema versions the Partial wire form.
const PartialSchema = 1

// PartialPage is one vetted page in wire form: its key and its trees in
// the analysis's profile order. The cross-comparison is not shipped — it
// is deterministic in the trees and recomputed at merge time.
type PartialPage struct {
	Key   dataset.PageKey `json:"key"`
	Trees []tree.Record   `json:"trees"`
}

// Partial is one shard's contribution to a distributed analysis.
type Partial struct {
	Schema int       `json:"schema"`
	Plan   ShardPlan `json:"plan"`
	// Shard is this partial's 0-based shard index under Plan.
	Shard    int      `json:"shard"`
	Profiles []string `json:"profiles"`
	Vetting  Vetting  `json:"vetting"`
	// Pages holds the shard's vetted pages in (site, page URL) order.
	Pages []PartialPage `json:"pages"`
	// Visits carries the shard's raw dataset so the coordinator can
	// reconstruct crawl-level summaries and serve dataset exports.
	Visits []*measurement.Visit `json:"visits,omitempty"`
	// Metrics is the shard worker's registry dump; the coordinator merges
	// the dumps so page-granular counters sum exactly over shards.
	Metrics *metrics.Dump `json:"metrics,omitempty"`
	// Traces is the shard worker's trace export; traces are page-granular
	// and shards partition pages, so shard trace sets are disjoint.
	Traces []trace.TraceData `json:"traces,omitempty"`
}

// Partial exports the analysis as one shard's contribution. It validates
// that every vetted page actually belongs to the shard under the plan —
// a page on the wrong side means the crawl and the plan disagree, and a
// merge would silently duplicate or drop it.
func (a *Analysis) Partial(plan ShardPlan, shard int) (*Partial, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= plan.Count {
		return nil, fmt.Errorf("core: shard %d out of range for %s", shard, plan)
	}
	p := &Partial{
		Schema:   PartialSchema,
		Plan:     plan,
		Shard:    shard,
		Profiles: a.profiles,
		Vetting:  a.vetting,
		Pages:    make([]PartialPage, 0, len(a.pages)),
	}
	for _, pa := range a.pages {
		if got := plan.Assign(pa.Key); got != shard {
			return nil, fmt.Errorf("core: page %s/%s belongs to shard %d, not %d (%s)",
				pa.Key.Site, pa.Key.PageURL, got, shard, plan)
		}
		pp := PartialPage{Key: pa.Key, Trees: make([]tree.Record, 0, len(pa.Trees))}
		for _, t := range pa.Trees {
			pp.Trees = append(pp.Trees, t.Record())
		}
		p.Pages = append(p.Pages, pp)
	}
	if a.ds != nil {
		p.Visits = a.ds.Visits()
	}
	return p, nil
}

// Encode serializes the partial for the wire.
func (p *Partial) Encode() ([]byte, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("core: encode partial: %w", err)
	}
	return b, nil
}

// DecodePartial parses a wire partial and checks its schema.
func DecodePartial(b []byte) (*Partial, error) {
	var p Partial
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("core: decode partial: %w", err)
	}
	if p.Schema != PartialSchema {
		return nil, fmt.Errorf("core: partial schema %d, want %d", p.Schema, PartialSchema)
	}
	return &p, nil
}

// NewFromPartials assembles a full Analysis from one partial per shard.
// ds must be the union dataset (the coordinator rebuilds it from the
// partials' visits or loads it independently); filter and opts play the
// same roles as in New. The page lists arrive sorted per shard and the
// plan makes them disjoint, so a k-way merge by (site, page URL) restores
// exactly the order New produces; each page's trees are rebuilt from
// their wire records and re-compared in parallel. The result is
// indistinguishable from New over the union dataset.
func NewFromPartials(ds *dataset.Dataset, filter *filterlist.List, opts Options, plan ShardPlan, parts []*Partial) (*Analysis, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(parts) != plan.Count {
		return nil, fmt.Errorf("core: %d partials for %s", len(parts), plan)
	}
	byShard := make([]*Partial, plan.Count)
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("core: nil partial")
		}
		if p.Plan != plan {
			return nil, fmt.Errorf("core: partial of shard %d follows %s, coordinator expects %s", p.Shard, p.Plan, plan)
		}
		if p.Shard < 0 || p.Shard >= plan.Count {
			return nil, fmt.Errorf("core: partial shard %d out of range for %s", p.Shard, plan)
		}
		if byShard[p.Shard] != nil {
			return nil, fmt.Errorf("core: duplicate partial for shard %d", p.Shard)
		}
		byShard[p.Shard] = p
	}
	for i, p := range byShard {
		if p == nil {
			return nil, fmt.Errorf("core: missing partial for shard %d", i)
		}
	}
	profiles := byShard[0].Profiles
	for _, p := range byShard[1:] {
		if !equalStrings(p.Profiles, profiles) {
			return nil, fmt.Errorf("core: shard %d analyzed profiles %v, shard %d %v", byShard[0].Shard, profiles, p.Shard, p.Profiles)
		}
	}
	if len(opts.Profiles) > 0 && !equalStrings(opts.Profiles, profiles) {
		return nil, fmt.Errorf("core: partials analyzed profiles %v, options expect %v", profiles, opts.Profiles)
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: partials carry no profiles")
	}

	a := &Analysis{
		ds:       ds,
		filter:   filter,
		profiles: profiles,
		siteRank: opts.SiteRank,
		metrics:  opts.Metrics,
	}
	defer opts.Metrics.Histogram("analysis.merge_ms").Time()()
	for _, p := range byShard {
		a.vetting.PagesSeen += p.Vetting.PagesSeen
		a.vetting.PagesVetted += p.Vetting.PagesVetted
		a.vetting.ExcludedMissing += p.Vetting.ExcludedMissing
		a.vetting.ExcludedFailed += p.Vetting.ExcludedFailed
		a.vetting.ExcludedDegraded += p.Vetting.ExcludedDegraded
		a.vetting.ExcludedBuild += p.Vetting.ExcludedBuild
	}

	merged, err := mergePages(byShard)
	if err != nil {
		return nil, err
	}
	opts.Metrics.Counter("analysis.pages.merged").Add(int64(len(merged)))

	// Rebuild trees and recompute comparisons in parallel; slot-indexed
	// results keep the merged page-key order regardless of scheduling.
	results := make([]*PageAnalysis, len(merged))
	errs := make([]error, len(merged))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(merged) {
		workers = len(merged)
	}
	rebuild := func(i int) {
		pp := merged[i]
		pa := &PageAnalysis{Key: pp.Key, Trees: make([]*tree.Tree, 0, len(pp.Trees))}
		for _, tr := range pp.Trees {
			t, err := tr.Tree()
			if err != nil {
				errs[i] = err
				return
			}
			pa.Trees = append(pa.Trees, t)
		}
		pa.Cmp = treediff.Compare(pa.Trees)
		results[i] = pa
	}
	if workers <= 1 {
		for i := range merged {
			rebuild(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(merged) {
						return
					}
					rebuild(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	a.pages = results
	if len(a.pages) == 0 && !opts.AllowEmpty {
		return nil, fmt.Errorf("core: no shard contributed a vetted page (%d seen, %d excluded)",
			a.vetting.PagesSeen, a.vetting.Excluded())
	}
	return a, nil
}

// mergePages k-way merges the shards' sorted page lists by (site, page
// URL), validating per-shard order and cross-shard disjointness.
func mergePages(byShard []*Partial) ([]PartialPage, error) {
	heads := make([]int, len(byShard))
	total := 0
	for _, p := range byShard {
		total += len(p.Pages)
	}
	out := make([]PartialPage, 0, total)
	less := func(a, b dataset.PageKey) bool {
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.PageURL < b.PageURL
	}
	for len(out) < total {
		best := -1
		for s, p := range byShard {
			if heads[s] >= len(p.Pages) {
				continue
			}
			if best == -1 || less(p.Pages[heads[s]].Key, byShard[best].Pages[heads[best]].Key) {
				best = s
			}
		}
		pick := byShard[best].Pages[heads[best]]
		heads[best]++
		if n := len(out); n > 0 {
			prev := out[n-1].Key
			if !less(prev, pick.Key) {
				if prev == pick.Key {
					return nil, fmt.Errorf("core: page %s/%s appears in more than one partial", pick.Key.Site, pick.Key.PageURL)
				}
				return nil, fmt.Errorf("core: partial of shard %d lists pages out of order near %s/%s",
					byShard[best].Shard, pick.Key.Site, pick.Key.PageURL)
			}
		}
		out = append(out, pick)
	}
	return out, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
