package core

import (
	"testing"
	"testing/quick"

	"webmeasure/internal/dataset"
)

func TestShardPlanValidate(t *testing.T) {
	if err := (ShardPlan{Count: 1}).Validate(); err != nil {
		t.Errorf("count 1: %v", err)
	}
	if err := (ShardPlan{Count: 8, Seed: 42}).Validate(); err != nil {
		t.Errorf("count 8: %v", err)
	}
	if err := (ShardPlan{}).Validate(); err == nil {
		t.Error("count 0 accepted")
	}
	if err := (ShardPlan{Count: -3}).Validate(); err == nil {
		t.Error("negative count accepted")
	}
}

// TestShardPlanIsPartition: for any key and any plan, Assign lands in
// range, is stable under repetition, and Keep accepts a (site, page) pair
// for exactly one shard — the partition property the merge relies on.
func TestShardPlanIsPartition(t *testing.T) {
	prop := func(site, pageURL string, count uint8, seed int64) bool {
		plan := ShardPlan{Count: int(count%16) + 1, Seed: seed}
		key := dataset.PageKey{Site: site, PageURL: pageURL}
		shard := plan.Assign(key)
		if shard < 0 || shard >= plan.Count {
			return false
		}
		if plan.Assign(key) != shard {
			return false
		}
		keepers := 0
		for i := 0; i < plan.Count; i++ {
			if plan.Keep(i)(site, pageURL) {
				keepers++
				if i != shard {
					return false
				}
			}
		}
		return keepers == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestShardPlanSeedAndCountMatter: distinct plans must disagree on at
// least some keys — a plan change that silently kept every assignment
// would defeat the cache-isolation guarantees downstream.
func TestShardPlanSeedAndCountMatter(t *testing.T) {
	base := ShardPlan{Count: 4, Seed: 1}
	reseeded := ShardPlan{Count: 4, Seed: 2}
	diff := 0
	for i := 0; i < 200; i++ {
		key := dataset.PageKey{Site: "site", PageURL: string(rune('a' + i%26))}
		key.PageURL = key.PageURL + string(rune('0'+i/26))
		if base.Assign(key) != reseeded.Assign(key) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("reseeding the plan changed no assignment")
	}
}

// TestShardPlanBalance: the FNV hash should spread a realistic key
// population roughly evenly — no shard may end up empty on a few hundred
// keys, or distributed workers would idle.
func TestShardPlanBalance(t *testing.T) {
	plan := ShardPlan{Count: 4, Seed: 7}
	counts := make([]int, plan.Count)
	for s := 0; s < 20; s++ {
		for p := 0; p < 20; p++ {
			key := dataset.PageKey{
				Site:    "site" + string(rune('a'+s)) + ".example",
				PageURL: "https://x/page" + string(rune('a'+p)),
			}
			counts[plan.Assign(key)]++
		}
	}
	for i, n := range counts {
		if n < 40 || n > 160 { // 400 keys, fair share 100
			t.Errorf("shard %d holds %d of 400 keys — badly skewed", i, n)
		}
	}
}

// FuzzShardPlanPartition fuzzes the partition property alongside the
// repo's other fuzz targets (make fuzz-smoke).
func FuzzShardPlanPartition(f *testing.F) {
	f.Add("siteA.example", "https://siteA.example/", uint8(4), int64(1))
	f.Add("", "", uint8(0), int64(0))
	f.Add("s", "p", uint8(255), int64(-9e18))
	f.Fuzz(func(t *testing.T, site, pageURL string, count uint8, seed int64) {
		plan := ShardPlan{Count: int(count%16) + 1, Seed: seed}
		key := dataset.PageKey{Site: site, PageURL: pageURL}
		shard := plan.Assign(key)
		if shard < 0 || shard >= plan.Count {
			t.Fatalf("assign out of range: %d of %s", shard, plan)
		}
		keepers := 0
		for i := 0; i < plan.Count; i++ {
			if plan.Keep(i)(site, pageURL) {
				keepers++
			}
		}
		if keepers != 1 {
			t.Fatalf("key kept by %d shards, want exactly 1", keepers)
		}
	})
}
