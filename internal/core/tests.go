package core

import (
	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/urlutil"
)

// hostSite returns the eTLD+1 of a node key.
func hostSite(key string) string { return urlutil.Site(key) }

// StatisticalTests bundles the significance tests the evaluation reports.
type StatisticalTests struct {
	// ChildrenVsSimilarity is §4.1's Wilcoxon signed-rank test between the
	// number of children and their similarity: per page, the mean child
	// similarity of many-children nodes is paired with that of
	// few-children nodes ("nodes that have many children often load
	// different children").
	ChildrenVsSimilarity    stats.TestResult
	ChildrenVsSimilarityErr error

	// InteractionDepth is §4.4's Mann-Whitney U test of node depths with
	// mimicked interaction (Sim1) vs without (NoAction).
	InteractionDepth    stats.TestResult
	InteractionDepthErr error

	// TypeEffect is §4.2's Kruskal-Wallis test that the resource type
	// affects child similarity.
	TypeEffect    stats.TestResult
	TypeEffectErr error
}

// RunTests executes the three tests. interactionProfile/noActionProfile
// name the profiles compared by the Mann-Whitney test.
func (a *Analysis) RunTests(interactionProfile, noActionProfile string) StatisticalTests {
	var out StatisticalTests

	// Wilcoxon: per page, pair the similarity of many-children vs
	// few-children nodes.
	var many, few []float64
	for _, pa := range a.pages {
		rootKey := pa.Trees[0].Root.Key
		var m, f []float64
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey || !ni.HasChildAnywhere || ni.Presence < 2 {
				continue
			}
			if ni.MaxChildren >= 3 {
				m = append(m, ni.ChildSim)
			} else {
				f = append(f, ni.ChildSim)
			}
		}
		if len(m) > 0 && len(f) > 0 {
			many = append(many, stats.Mean(m))
			few = append(few, stats.Mean(f))
		}
	}
	out.ChildrenVsSimilarity, out.ChildrenVsSimilarityErr = stats.WilcoxonSignedRank(many, few)

	// Mann-Whitney: node depths under interaction vs no interaction.
	if a.profileIndex(interactionProfile) >= 0 && a.profileIndex(noActionProfile) >= 0 {
		var with, without []float64
		for _, pa := range a.pages {
			ti, tn := pa.TreeFor(interactionProfile), pa.TreeFor(noActionProfile)
			if ti == nil || tn == nil {
				continue
			}
			for _, n := range ti.Nodes() {
				if !n.IsRoot() {
					with = append(with, float64(n.Depth))
				}
			}
			for _, n := range tn.Nodes() {
				if !n.IsRoot() {
					without = append(without, float64(n.Depth))
				}
			}
		}
		out.InteractionDepth, out.InteractionDepthErr = stats.MannWhitneyU(with, without)
	} else {
		out.InteractionDepthErr = stats.ErrInsufficientData
	}

	// Kruskal-Wallis: child similarity grouped by resource type. Groups
	// are assembled in declaration order so the statistic is bit-stable.
	groups := map[measurement.ResourceType][]float64{}
	a.eachNonRootNode(func(pa *PageAnalysis, info *treediff.NodeInfo) {
		if info.HasChildAnywhere && info.Presence >= 2 {
			groups[info.Type] = append(groups[info.Type], info.ChildSim)
		}
	})
	var gs [][]float64
	for _, ty := range measurement.AllResourceTypes() {
		if g := groups[ty]; len(g) >= 5 {
			gs = append(gs, g)
		}
	}
	if len(gs) >= 2 {
		out.TypeEffect, out.TypeEffectErr = stats.KruskalWallis(gs...)
	} else {
		out.TypeEffectErr = stats.ErrInsufficientData
	}
	return out
}

// PartyAppearance reports §4.3's appearance-frequency statistics: in how
// many profiles a node appears, split by party and depth.
type PartyAppearance struct {
	FPDepth1Mean float64 // paper: 4.5 of 5
	FPDeeperMean float64 // paper: 3.6–4.8
	TPDepth1Mean float64 // paper: 3.9
	TPDeeperMean float64 // paper: 3.3

	FPShare float64 // share of nodes loaded first-party (paper: 32%)
	TPShare float64
	// TPDistinctDomains counts distinct third-party eTLD+1s.
	TPDistinctDomains int

	// FPChildSim / TPChildSim: similarity of children by party (paper:
	// .86 vs .68).
	FPChildSim stats.Summary
	TPChildSim stats.Summary

	// TPDeepDominance is the share of third-party nodes among nodes at
	// depth ≥ 3 (paper: 95%).
	TPDeepDominance float64
}

// PartyAppearance computes the §4.3 statistics.
func (a *Analysis) PartyAppearance() PartyAppearance {
	var res PartyAppearance
	var fp1, fpDeep, tp1, tpDeep []float64
	var fpChild, tpChild []float64
	var fpN, tpN, deepN, deepTP int
	domains := map[string]bool{}

	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		d := ni.MeanDepth()
		pres := float64(ni.Presence)
		isFP := ni.Party == tree.FirstParty
		if isFP {
			fpN++
			if d == 1 {
				fp1 = append(fp1, pres)
			} else if d > 1 {
				fpDeep = append(fpDeep, pres)
			}
			if ni.HasChildAnywhere && ni.Presence >= 2 {
				fpChild = append(fpChild, ni.ChildSim)
			}
		} else {
			tpN++
			if d == 1 {
				tp1 = append(tp1, pres)
			} else if d > 1 {
				tpDeep = append(tpDeep, pres)
			}
			if ni.HasChildAnywhere && ni.Presence >= 2 {
				tpChild = append(tpChild, ni.ChildSim)
			}
			domains[hostSite(ni.Key)] = true
		}
		if d >= 3 {
			deepN++
			if !isFP {
				deepTP++
			}
		}
	})

	res.FPDepth1Mean = stats.Mean(fp1)
	res.FPDeeperMean = stats.Mean(fpDeep)
	res.TPDepth1Mean = stats.Mean(tp1)
	res.TPDeeperMean = stats.Mean(tpDeep)
	if fpN+tpN > 0 {
		res.FPShare = float64(fpN) / float64(fpN+tpN)
		res.TPShare = float64(tpN) / float64(fpN+tpN)
	}
	delete(domains, "")
	res.TPDistinctDomains = len(domains)
	res.FPChildSim = stats.Summarize(fpChild)
	res.TPChildSim = stats.Summarize(tpChild)
	if deepN > 0 {
		res.TPDeepDominance = float64(deepTP) / float64(deepN)
	}
	return res
}

// SameConfigComparison quantifies §4.4's Sim1-vs-Sim2 comparison: depth-set
// similarity on the upper levels (≤ 5) vs the deeper levels.
type SameConfigComparison struct {
	UpperSim float64 // paper: .92
	DeepSim  float64 // paper: .75
	Pages    int
}

// CompareSameConfig compares two identically configured profiles by name.
func (a *Analysis) CompareSameConfig(p1, p2 string) SameConfigComparison {
	var res SameConfigComparison
	if a.profileIndex(p1) < 0 || a.profileIndex(p2) < 0 {
		return res
	}
	var upper, deep []float64
	for _, pa := range a.pages {
		t1, t2 := pa.TreeFor(p1), pa.TreeFor(p2)
		if t1 == nil || t2 == nil {
			continue
		}
		maxD := t1.MaxDepth()
		if d2 := t2.MaxDepth(); d2 > maxD {
			maxD = d2
		}
		var u, dp []float64
		for d := 1; d <= maxD; d++ {
			j := stats.Jaccard(t1.KeysAtDepth(d), t2.KeysAtDepth(d))
			if d <= 5 {
				u = append(u, j)
			} else {
				dp = append(dp, j)
			}
		}
		if len(u) > 0 {
			upper = append(upper, stats.Mean(u))
		}
		if len(dp) > 0 {
			deep = append(deep, stats.Mean(dp))
		}
		res.Pages++
	}
	res.UpperSim = stats.Mean(upper)
	res.DeepSim = stats.Mean(deep)
	return res
}

// ProfilePairwiseMatrix returns the mean per-page node-set similarity for
// every profile pair — the full symmetric view behind Table 6's columns.
// The diagonal is 1.
func (a *Analysis) ProfilePairwiseMatrix() ([]string, [][]float64) {
	n := len(a.profiles)
	sums := make([][]float64, n)
	counts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n)
		counts[i] = make([]int, n)
	}
	for _, pa := range a.pages {
		for i := 0; i < len(pa.Trees); i++ {
			for j := i + 1; j < len(pa.Trees); j++ {
				pi := a.profileIndex(pa.Trees[i].Profile)
				pj := a.profileIndex(pa.Trees[j].Profile)
				if pi < 0 || pj < 0 {
					continue
				}
				s := pa.Cmp.PairwisePresence(i, j)
				sums[pi][pj] += s
				sums[pj][pi] += s
				counts[pi][pj]++
				counts[pj][pi]++
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i == j {
				out[i][j] = 1
				continue
			}
			if counts[i][j] > 0 {
				out[i][j] = sums[i][j] / float64(counts[i][j])
			}
		}
	}
	return append([]string(nil), a.profiles...), out
}
