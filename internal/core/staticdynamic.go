package core

import (
	"math"

	"webmeasure/internal/tree"
)

// StaticDynamicReport operationalizes the paper's third takeaway: "an
// understanding of whether the phenomenon of interest is present in the
// dynamic (e.g., ads) or static (e.g., HTTP headers) content of a page is
// vital for planning the experiments." It contrasts the cross-profile
// stability of *static facets* of a node (HTTP status, content type, body
// size) with the stability of its *presence and relations* (the dynamic
// facets §4 shows to fluctuate).
type StaticDynamicReport struct {
	// NodesCompared is the number of node keys present in at least two
	// trees, over which the facet stabilities are computed.
	NodesCompared int

	// Static facets: the share of compared nodes whose facet is identical
	// in every tree containing them.
	ContentTypeStable float64
	StatusStable      float64
	// SizeStable uses a ±25% band: payloads may be re-rendered but a
	// header-level study would still classify them equally.
	SizeStable float64

	// Dynamic facets for contrast.
	PresenceStable float64 // nodes present in all trees
	ParentStable   float64 // nodes with ParentSim == 1
	ChildStable    float64 // nodes with ≥1 child and ChildSim == 1
}

// StaticDynamic computes the static-vs-dynamic stability contrast.
func (a *Analysis) StaticDynamic() StaticDynamicReport {
	var rep StaticDynamicReport
	var ctStable, stStable, szStable int
	var presence, parent int
	var childN, childStable int

	for _, pa := range a.pages {
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey || ni.Presence < 2 {
				continue
			}
			rep.NodesCompared++

			ctSame, stSame, szSame := true, true, true
			firstCT, firstStatus := "", 0
			minSize, maxSize := math.MaxInt, 0
			seen := 0
			for _, t := range pa.Trees {
				n := t.Node(key)
				if n == nil {
					continue
				}
				seen++
				if seen == 1 {
					firstCT, firstStatus = n.ContentType, n.Status
				} else {
					if n.ContentType != firstCT {
						ctSame = false
					}
					if n.Status != firstStatus {
						stSame = false
					}
				}
				if n.BodySize < minSize {
					minSize = n.BodySize
				}
				if n.BodySize > maxSize {
					maxSize = n.BodySize
				}
			}
			if minSize > 0 && float64(maxSize-minSize)/float64(minSize) > 0.25 {
				szSame = false
			}
			if ctSame {
				ctStable++
			}
			if stSame {
				stStable++
			}
			if szSame {
				szStable++
			}

			if ni.Presence == len(pa.Trees) {
				presence++
			}
			if ni.ParentSim == 1 {
				parent++
			}
			if ni.HasChildAnywhere {
				childN++
				if ni.ChildSim == 1 {
					childStable++
				}
			}
		}
	}
	if rep.NodesCompared > 0 {
		n := float64(rep.NodesCompared)
		rep.ContentTypeStable = float64(ctStable) / n
		rep.StatusStable = float64(stStable) / n
		rep.SizeStable = float64(szStable) / n
		rep.PresenceStable = float64(presence) / n
		rep.ParentStable = float64(parent) / n
	}
	if childN > 0 {
		rep.ChildStable = float64(childStable) / float64(childN)
	}
	return rep
}

// StaticAdvantage is the headline number: how much more stable the static
// facets are than the dynamic ones (mean static share minus mean dynamic
// share). Positive values confirm takeaway 3.
func (r StaticDynamicReport) StaticAdvantage() float64 {
	static := (r.ContentTypeStable + r.StatusStable + r.SizeStable) / 3
	dynamic := (r.PresenceStable + r.ParentStable + r.ChildStable) / 3
	return static - dynamic
}

// AttributionReport aggregates the ground-truth attribution evaluation
// (tree.EvaluateAttribution) over the vetted visits: how often the paper's
// §3.2 heuristics recover the true parent, and how often §6's URL-merge
// collapse bites.
type AttributionReport struct {
	Visits         int
	Attributable   int
	Correct        int
	RootFallbacks  int
	MergeArtifacts int
}

// Accuracy returns Correct / Attributable (1 when nothing was attributable).
func (r AttributionReport) Accuracy() float64 {
	if r.Attributable == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Attributable)
}

// Attribution evaluates parent attribution on every vetted visit carrying
// ground truth. Datasets captured by real instrumentation have none and
// yield a zero report.
func (a *Analysis) Attribution() AttributionReport {
	var rep AttributionReport
	builder := &tree.Builder{}
	for _, pa := range a.pages {
		for _, prof := range a.profiles {
			v := a.visitFor(pa, prof)
			if v == nil || !v.Success {
				continue
			}
			hasTruth := false
			for _, req := range v.Requests {
				if req.TrueParentURL != "" {
					hasTruth = true
					break
				}
			}
			if !hasTruth {
				continue
			}
			r, err := builder.EvaluateAttributionKeyed(v, a.siteKeys[pa.Key.Site])
			if err != nil {
				continue
			}
			rep.Visits++
			rep.Attributable += r.Attributable
			rep.Correct += r.Correct
			rep.RootFallbacks += r.RootFallbacks
			rep.MergeArtifacts += r.MergeArtifacts
		}
	}
	return rep
}
