// Package core is the paper's analysis pipeline: it vets the crawled
// dataset (pages successful in all profiles), builds the five dependency
// trees per page, cross-compares them, and computes every table and figure
// of the evaluation (§4, §5, appendices E–G).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"webmeasure/internal/dataset"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/urlutil"
)

// PageAnalysis holds one vetted page's trees and their cross-comparison.
type PageAnalysis struct {
	Key dataset.PageKey
	// Trees follows Analysis.Profiles order; with partial vetting
	// (Options.MinSuccessProfiles) failed profiles are simply absent, so
	// use TreeFor for profile lookups.
	Trees []*tree.Tree
	Cmp   *treediff.Comparison
}

// TreeFor returns the page's tree for a profile, or nil.
func (pa *PageAnalysis) TreeFor(profile string) *tree.Tree {
	for _, t := range pa.Trees {
		if t.Profile == profile {
			return t
		}
	}
	return nil
}

// Analysis is the fully-computed experiment analysis.
type Analysis struct {
	ds       *dataset.Dataset
	filter   *filterlist.List
	profiles []string

	pages   []*PageAnalysis
	vetting Vetting
	// siteKeys retains each streamed site block's pre-interned key cache
	// (columnar inputs only), so derived analyses that rebuild trees —
	// attribution scoring — reuse the int32-id fast path instead of
	// re-normalizing every URL. Nil for JSONL inputs and merged partials;
	// consumers fall back to plain normalization.
	siteKeys map[string]*urlutil.KeyCache
	// siteRank maps site → Tranco rank for the Appendix F bucket analysis
	// (may be empty when unknown).
	siteRank map[string]int
	// metrics times the derived analysis phases (nil-safe).
	metrics *metrics.Registry
}

// phaseTimer times one derived analysis phase (case studies, stability)
// under "analysis.<name>_ms"; usage: defer a.phaseTimer("stability")().
func (a *Analysis) phaseTimer(name string) func() {
	return a.metrics.Histogram("analysis." + name + "_ms").Time()
}

// Options configures New.
type Options struct {
	// Profiles fixes the tree ordering; defaults to the dataset's sorted
	// profile names. The first profile whose name is "Sim1" is used as the
	// Table 6 reference regardless of order.
	Profiles []string
	// SiteRank supplies Tranco ranks for the bucket analysis.
	SiteRank map[string]int
	// MinSuccessProfiles relaxes the paper's vetting for the no-vetting
	// ablation: pages succeed with at least this many profiles (0 = the
	// paper's rule, all profiles must succeed).
	MinSuccessProfiles int
	// AllowDegraded admits visits that succeeded but were truncated by an
	// injected fault (Visit.Clean() false). Off by default: the paper's
	// vetting demands consistently *clean* loads, and a half-observed
	// page would register as dissimilarity that is an artifact of the
	// measurement, not the page.
	AllowDegraded bool
	// TreeBuilder overrides the default builder (ablations on node
	// identity and attribution signals). The Filter option is applied on
	// top of it.
	TreeBuilder *tree.Builder
	// AllowEmpty tolerates an analysis with zero vetted pages. The default
	// treats that as an error (a whole-experiment analysis with nothing to
	// report is a misconfiguration), but a shard's slice of the page-key
	// space can legitimately be empty or entirely excluded by vetting.
	AllowEmpty bool
	// Workers bounds the worker pool that fans the per-page work —
	// vetting, tree building, cross-comparison — out over CPUs; the
	// pages are independent, so the pipeline is embarrassingly parallel.
	// Results are merged back in page-key order, making the analysis
	// byte-identical for every worker count. 0 or negative =
	// runtime.GOMAXPROCS(0).
	Workers int
	// Metrics, if non-nil, receives progress counters and phase timings
	// (metric names are listed in the internal/metrics package comment).
	Metrics *metrics.Registry
	// Context, if non-nil, cancels the per-page analysis between pages —
	// the hook a job server needs to abort a long analysis mid-flight.
	// New returns the context's error when it fires. A tracer carried by
	// the context (trace.NewContext) is picked up when Tracer is nil.
	Context context.Context
	// Tracer, if non-nil, records analysis spans (analyze.vet,
	// analyze.build per profile, analyze.compare with treediff.intern /
	// treediff.fill children) on each page's trace. Timestamps come from
	// a deterministic work-proportional cost model, not the wall clock,
	// so traces stay byte-identical across worker counts.
	Tracer *trace.Tracer
}

// New builds the analysis: vetting, tree construction, cross-comparison.
// filter may be nil (no tracking classification). The per-page work runs
// on Options.Workers goroutines; because pages are analyzed independently
// and merged in page-key order, the result is identical (byte for byte in
// every export) regardless of worker count.
func New(ds *dataset.Dataset, filter *filterlist.List, opts Options) (*Analysis, error) {
	profiles := opts.Profiles
	if len(profiles) == 0 {
		profiles = ds.Profiles()
	}
	s, err := newStream(ds, filter, opts, profiles)
	if err != nil {
		return nil, err
	}
	// ds.Pages() is sorted by (site, page URL); the pool writes each
	// page's result into its matching slot, so the merge preserves that
	// deterministic order.
	if err := s.addBatch(ds.Pages(), nil); err != nil {
		return nil, err
	}
	return s.Finish()
}

// Stream builds an Analysis incrementally, one batch of page groups at a
// time — the columnar-format path, where the facade decodes one site
// block, hands its page groups (plus the block's pre-interned key cache)
// to AddSite, and lets the decoder's transient memory be reclaimed
// before the next block. Batches must arrive in ascending site order so
// the accumulated pages match the page-key order the batch-free New
// produces; the result is then byte-identical in every export.
type Stream struct {
	a        *Analysis
	w        pageWorker
	ctx      context.Context
	workers  int
	opts     Options
	lastSite string
	seenSite bool
	done     bool
}

// NewStream starts an incremental analysis over ds, which the caller
// fills (dataset.Add) with the same visits whose page groups it feeds to
// AddSite — the derived analyses (timing, static/dynamic, case studies)
// read raw visits back from the dataset after the per-page pool runs.
// Unlike New, the profile order cannot be inferred from a dataset that
// does not exist yet, so Options.Profiles is required.
func NewStream(ds *dataset.Dataset, filter *filterlist.List, opts Options) (*Stream, error) {
	if len(opts.Profiles) == 0 {
		return nil, fmt.Errorf("core: streaming analysis requires Options.Profiles (the dataset is not yet loaded to infer them)")
	}
	return newStream(ds, filter, opts, opts.Profiles)
}

func newStream(ds *dataset.Dataset, filter *filterlist.List, opts Options, profiles []string) (*Stream, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: dataset has no profiles")
	}
	a := &Analysis{
		ds:       ds,
		filter:   filter,
		profiles: profiles,
		siteRank: opts.SiteRank,
		metrics:  opts.Metrics,
	}
	builder := opts.TreeBuilder
	if builder == nil {
		builder = &tree.Builder{}
	}
	builder.Filter = filter
	minSuccess := opts.MinSuccessProfiles
	if minSuccess <= 0 || minSuccess > len(profiles) {
		minSuccess = len(profiles)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = trace.TracerFrom(opts.Context)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Stream{
		a: a,
		w: pageWorker{
			profiles:      profiles,
			builder:       builder,
			minSuccess:    minSuccess,
			allowDegraded: opts.AllowDegraded,
			tracer:        tracer,
			pagesSeen:     opts.Metrics.Counter("analysis.pages"),
			pagesOK:       opts.Metrics.Counter("analysis.pages.vetted"),
			trees:         opts.Metrics.Counter("analysis.trees"),
			treesFail:     opts.Metrics.Counter("analysis.trees.failed"),
			pageMS:        opts.Metrics.Histogram("analysis.page_ms"),
		},
		ctx:     ctx,
		workers: workers,
		opts:    opts,
	}, nil
}

// AddSite analyzes one site's page groups. pages must be sorted by page
// URL (dataset block order) and sites must arrive in ascending order —
// together these make the accumulated page order equal to the global
// page-key order. keys, when non-nil, is the site's pre-interned
// normalization cache (SiteBlock.KeyCache), which routes tree building
// through the int32-id fast path.
func (s *Stream) AddSite(site string, pages []*dataset.PageVisits, keys *urlutil.KeyCache) error {
	if s.done {
		return fmt.Errorf("core: AddSite after Finish")
	}
	if s.seenSite && site <= s.lastSite {
		return fmt.Errorf("core: site %q arrived after %q; streaming analysis requires ascending site order", site, s.lastSite)
	}
	s.lastSite, s.seenSite = site, true
	for _, pv := range pages {
		if pv.Key.Site != site {
			return fmt.Errorf("core: page of site %q in batch for %q", pv.Key.Site, site)
		}
	}
	if keys != nil {
		if s.a.siteKeys == nil {
			s.a.siteKeys = make(map[string]*urlutil.KeyCache)
		}
		s.a.siteKeys[site] = keys
	}
	return s.addBatch(pages, keys)
}

// addBatch fans one batch of page groups over the worker pool and merges
// the results in slot order. Per-page work carries no cross-page state
// (the trace cost model runs on a per-page cursor), so splitting the
// page list into batches cannot change any output.
func (s *Stream) addBatch(pages []*dataset.PageVisits, keys *urlutil.KeyCache) error {
	results := make([]pageResult, len(pages))
	w := s.w
	w.keys = keys
	workers := s.workers
	if workers > len(pages) {
		workers = len(pages)
	}
	ctx := s.ctx
	if workers <= 1 {
		for i, pv := range pages {
			if ctx.Err() != nil {
				break
			}
			results[i] = w.analyze(pv)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(pages) {
						return
					}
					results[i] = w.analyze(pages[i])
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: analysis canceled: %w", err)
	}
	// Merge in slot order (= page-key order) and aggregate the vetting
	// tally; doing both after the pool drains keeps the result — counts
	// included — independent of worker scheduling.
	for _, r := range results {
		s.a.vetting.count(r.excluded)
		if r.pa != nil {
			s.a.pages = append(s.a.pages, r.pa)
		}
	}
	return nil
}

// Finish seals the stream and returns the analysis.
func (s *Stream) Finish() (*Analysis, error) {
	if s.done {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	s.done = true
	a, opts := s.a, s.opts
	for reason, n := range map[string]int{
		ExcludeMissing:  a.vetting.ExcludedMissing,
		ExcludeFailed:   a.vetting.ExcludedFailed,
		ExcludeDegraded: a.vetting.ExcludedDegraded,
		ExcludeBuild:    a.vetting.ExcludedBuild,
	} {
		opts.Metrics.Counter("analysis.pages.excluded." + reason).Add(int64(n))
	}
	if len(a.pages) == 0 && !opts.AllowEmpty {
		return nil, fmt.Errorf("core: no page was crawled cleanly by all %d profiles (%d excluded: %d missing, %d failed, %d degraded, %d build)",
			len(a.profiles), a.vetting.Excluded(), a.vetting.ExcludedMissing,
			a.vetting.ExcludedFailed, a.vetting.ExcludedDegraded, a.vetting.ExcludedBuild)
	}
	return a, nil
}

// pageWorker carries the read-only inputs and metric instruments of the
// per-page analysis; a single value is shared by all pool goroutines
// (the builder, filter list, and instruments are concurrency-safe).
type pageWorker struct {
	profiles      []string
	builder       *tree.Builder
	minSuccess    int
	allowDegraded bool
	tracer        *trace.Tracer
	// keys, when non-nil, is the current site block's pre-interned
	// normalization cache; tree builds then take the int32-id fast path.
	keys *urlutil.KeyCache

	pagesSeen, pagesOK, trees, treesFail *metrics.Counter
	pageMS                               *metrics.Histogram
}

// Analysis span timestamps are simulated: a work-proportional cost model
// on a per-page cursor, not the wall clock, so exported traces are
// byte-identical for every worker count. The base plants the analysis
// block past the crawl's timeline (offset tail ~6 min + retry budget);
// the per-unit costs are arbitrary but fixed — span *proportions* carry
// the signal (a 400-request page's build span is 4× a 100-request one's).
const (
	analysisBaseUS      = 600_000_000 // 10 simulated minutes
	vetCostUSPerProfile = 50
	buildCostUSPerReq   = 20
	internCostUSPerNode = 2
	fillCostUSPerNode   = 5
)

// analyzeSpans instruments one page's analysis on its trace (the same
// trace the crawl opened for the page, joined by key). Nil when tracing
// is off or the page was sampled out.
type analyzeSpans struct {
	tr     *trace.Trace
	cursor int64
}

func (w *pageWorker) startSpans(pv *dataset.PageVisits) *analyzeSpans {
	tr := w.tracer.Trace("page", pv.Key.Site+"|"+pv.Key.PageURL)
	if tr == nil {
		return nil
	}
	return &analyzeSpans{tr: tr, cursor: analysisBaseUS}
}

// vet records the vetting span: one eligibility sweep over the profiles.
func (s *analyzeSpans) vet(profiles, eligible int, excluded string) {
	if s == nil {
		return
	}
	sp := s.tr.Span(nil, "analyze.vet", "", s.cursor)
	sp.SetAttrInt("profiles", profiles).SetAttrInt("eligible", eligible)
	if excluded != "" {
		sp.SetAttr("excluded", excluded)
	}
	s.cursor += int64(profiles) * vetCostUSPerProfile
	sp.End(s.cursor)
}

// build records one profile's tree-build span, costed by request count.
func (s *analyzeSpans) build(profile string, requests int, t *tree.Tree, err error) {
	if s == nil {
		return
	}
	sp := s.tr.Span(nil, "analyze.build", profile, s.cursor)
	sp.SetAttr("profile", profile).SetAttrInt("requests", requests)
	s.cursor += int64(requests)*buildCostUSPerReq + buildCostUSPerReq
	if err != nil {
		sp.SetAttr("error", "build failed")
	} else {
		sp.SetAttrInt("nodes", t.NodeCount())
	}
	sp.End(s.cursor)
}

// compare records the cross-comparison span with the treediff kernel's
// two internal stages as children: interning (costed by total input
// nodes) and the per-node fill (costed by union nodes).
func (s *analyzeSpans) compare(trees []*tree.Tree, cmp *treediff.Comparison) {
	if s == nil {
		return
	}
	totalNodes := 0
	for _, t := range trees {
		totalNodes += t.NodeCount()
	}
	sp := s.tr.Span(nil, "analyze.compare", "", s.cursor)
	sp.SetAttrInt("trees", len(trees)).SetAttrInt("union_nodes", len(cmp.Nodes))
	intern := s.tr.Span(sp, "treediff.intern", "", s.cursor)
	intern.SetAttrInt("nodes", totalNodes)
	s.cursor += int64(totalNodes) * internCostUSPerNode
	intern.End(s.cursor)
	fill := s.tr.Span(sp, "treediff.fill", "", s.cursor)
	fill.SetAttrInt("nodes", len(cmp.Nodes))
	s.cursor += int64(len(cmp.Nodes)) * fillCostUSPerNode
	fill.End(s.cursor)
	sp.End(s.cursor)
}

// pageResult is one slot of the merge: the page's analysis when it was
// vetted, or the exclusion reason (one of the Exclude* constants) when
// it was dropped.
type pageResult struct {
	pa       *PageAnalysis
	excluded string
}

// analyze vets one page group, builds its trees, and cross-compares them.
// A page that fails vetting yields a nil analysis plus the most severe
// exclusion reason among its visits. The three stages run back to back
// per page (vetting → build → compare) and each is traced; the exclusion
// ranking is a max over reasons, so splitting the stages cannot change
// which reason wins.
func (w *pageWorker) analyze(pv *dataset.PageVisits) pageResult {
	defer w.pageMS.Time()()
	w.pagesSeen.Inc()
	spans := w.startSpans(pv)
	pa := &PageAnalysis{Key: pv.Key}
	worst := ""
	flag := func(reason string) {
		if exclusionRank(reason) > exclusionRank(worst) {
			worst = reason
		}
	}
	// Vetting: the per-profile eligibility sweep (the paper's "successfully
	// and consistently visited" rule).
	type candidate struct {
		profile string
		v       *measurement.Visit
	}
	var eligible []candidate
	for _, prof := range w.profiles {
		v := pv.ByProfile[prof]
		switch {
		case v == nil:
			flag(ExcludeMissing)
		case !v.Success:
			flag(ExcludeFailed)
		case !v.Clean() && !w.allowDegraded:
			flag(ExcludeDegraded)
		default:
			eligible = append(eligible, candidate{profile: prof, v: v})
		}
	}
	spans.vet(len(w.profiles), len(eligible), worst)
	// Tree construction, one tree per eligible profile.
	for _, c := range eligible {
		t, err := w.builder.BuildKeyed(c.v, w.keys)
		spans.build(c.profile, len(c.v.Requests), t, err)
		if err != nil {
			// Success flags guarantee requests; a build failure means
			// a malformed record — skip the visit rather than abort.
			w.treesFail.Inc()
			flag(ExcludeBuild)
			continue
		}
		w.trees.Inc()
		pa.Trees = append(pa.Trees, t)
	}
	if len(pa.Trees) < w.minSuccess {
		if worst == "" {
			worst = ExcludeBuild
		}
		return pageResult{excluded: worst}
	}
	// Cross-comparison over the page's trees.
	pa.Cmp = treediff.Compare(pa.Trees)
	spans.compare(pa.Trees, pa.Cmp)
	w.pagesOK.Inc()
	return pageResult{pa: pa}
}

// Profiles returns the profile order used for tree indexing.
func (a *Analysis) Profiles() []string { return a.profiles }

// Pages returns the vetted page analyses.
func (a *Analysis) Pages() []*PageAnalysis { return a.pages }

// Vetting returns the vetting-stage tally: pages seen, vetted, and
// excluded by reason.
func (a *Analysis) Vetting() Vetting { return a.vetting }

// Dataset returns the underlying dataset.
func (a *Analysis) Dataset() *dataset.Dataset { return a.ds }

// profileIndex returns the tree index of a profile name, -1 if absent.
func (a *Analysis) profileIndex(name string) int {
	for i, p := range a.profiles {
		if p == name {
			return i
		}
	}
	return -1
}

// eachNode visits every NodeInfo of every vetted page (including roots).
func (a *Analysis) eachNode(fn func(pa *PageAnalysis, ni *treediff.NodeInfo)) {
	for _, pa := range a.pages {
		for _, ni := range pa.Cmp.Nodes {
			fn(pa, ni)
		}
	}
}

// eachNonRootNode visits every non-root NodeInfo.
func (a *Analysis) eachNonRootNode(fn func(pa *PageAnalysis, ni *treediff.NodeInfo)) {
	for _, pa := range a.pages {
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			fn(pa, ni)
		}
	}
}
