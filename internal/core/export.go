package core

import (
	"encoding/json"
	"io"

	"webmeasure/internal/stats"
)

// Export bundles every analysis result in a machine-readable form, so CI
// pipelines can diff reproduction runs and downstream tooling can plot
// without scraping the text report.
type Export struct {
	CrawlSummary    CrawlSummary           `json:"crawl_summary"`
	TreeOverview    TreeOverview           `json:"tree_overview"`
	DepthSim        []DepthSimilarityRow   `json:"depth_similarity"`
	ResourceChains  []ResourceChainRow     `json:"resource_chains"`
	ChainStability  ChainStability         `json:"chain_stability"`
	ProfileTotals   []ProfileTotalsRow     `json:"profile_totals"`
	ProfilePairs    []ProfilePairRow       `json:"profile_pairs"`
	RankBuckets     *RankBucketResult      `json:"rank_buckets,omitempty"`
	NodeTypeVolume  []NodeTypeVolumeRow    `json:"node_type_volume"`
	SimByDepth      []SimilarityByDepthRow `json:"similarity_by_depth"`
	ChildStats      ChildStats             `json:"child_stats"`
	SubframeImpact  SubframeImpact         `json:"subframe_impact"`
	PartyAppearance PartyAppearance        `json:"party_appearance"`
	UniqueNodes     UniqueNodesResult      `json:"unique_nodes"`
	CookieStudy     CookieStudyResult      `json:"cookie_study"`
	TrackingStudy   TrackingStudyResult    `json:"tracking_study"`
	Tests           exportTests            `json:"statistical_tests"`
	Stability       StabilityReport        `json:"stability"`
	StaticDynamic   StaticDynamicReport    `json:"static_dynamic"`
	Timing          TimingReport           `json:"timing"`
	SameConfig      SameConfigComparison   `json:"same_config"`
}

// exportTests flattens StatisticalTests' error fields into strings so the
// bundle marshals cleanly.
type exportTests struct {
	ChildrenVsSimilarity *stats.TestResult `json:"children_vs_similarity,omitempty"`
	InteractionDepth     *stats.TestResult `json:"interaction_depth,omitempty"`
	TypeEffect           *stats.TestResult `json:"type_effect,omitempty"`
	Errors               []string          `json:"errors,omitempty"`
}

// ExportOptions parameterizes Export.
type ExportOptions struct {
	// RankBoundaries enables the rank-bucket section.
	RankBoundaries []int
	// Reference is the Table 6 reference profile (default "Sim1").
	Reference string
	// NoAction names the no-interaction profile (default "NoAction").
	NoAction string
	// TimeoutMS is the page timeout used for the timing section
	// (default 30000).
	TimeoutMS int
}

func (o ExportOptions) withDefaults() ExportOptions {
	if o.Reference == "" {
		o.Reference = "Sim1"
	}
	if o.NoAction == "" {
		o.NoAction = "NoAction"
	}
	if o.TimeoutMS == 0 {
		o.TimeoutMS = 30_000
	}
	return o
}

// Export computes the full bundle.
func (a *Analysis) Export(opts ExportOptions) *Export {
	opts = opts.withDefaults()
	e := &Export{
		CrawlSummary:    a.CrawlSummary(),
		TreeOverview:    a.TreeOverview(),
		DepthSim:        a.DepthSimilarityTable(),
		ResourceChains:  a.ResourceChainTable(),
		ChainStability:  a.ChainStability(),
		ProfileTotals:   a.ProfileTotals(),
		ProfilePairs:    a.ProfilePairTable(opts.Reference),
		NodeTypeVolume:  a.NodeTypeVolume(),
		SimByDepth:      a.SimilarityByDepth(),
		ChildStats:      a.ChildStats(),
		SubframeImpact:  a.SubframeImpact(),
		PartyAppearance: a.PartyAppearance(),
		UniqueNodes:     a.UniqueNodes(),
		CookieStudy:     a.CookieStudy(opts.NoAction),
		TrackingStudy:   a.TrackingStudy(),
		Stability:       a.Stability(),
		StaticDynamic:   a.StaticDynamic(),
		Timing:          a.Timing(opts.TimeoutMS),
		SameConfig:      a.CompareSameConfig("Sim1", "Sim2"),
	}
	if len(opts.RankBoundaries) > 0 {
		rb := a.RankBuckets(opts.RankBoundaries)
		// Error values do not marshal; surface them as text.
		if rb.TestError != nil {
			e.Tests.Errors = append(e.Tests.Errors, "rank buckets: "+rb.TestError.Error())
			rb.TestError = nil
		}
		e.RankBuckets = &rb
	}
	tests := a.RunTests(opts.Reference, opts.NoAction)
	if tests.ChildrenVsSimilarityErr == nil {
		r := tests.ChildrenVsSimilarity
		e.Tests.ChildrenVsSimilarity = &r
	} else {
		e.Tests.Errors = append(e.Tests.Errors, "wilcoxon: "+tests.ChildrenVsSimilarityErr.Error())
	}
	if tests.InteractionDepthErr == nil {
		r := tests.InteractionDepth
		e.Tests.InteractionDepth = &r
	} else {
		e.Tests.Errors = append(e.Tests.Errors, "mann-whitney: "+tests.InteractionDepthErr.Error())
	}
	if tests.TypeEffectErr == nil {
		r := tests.TypeEffect
		e.Tests.TypeEffect = &r
	} else {
		e.Tests.Errors = append(e.Tests.Errors, "kruskal-wallis: "+tests.TypeEffectErr.Error())
	}
	return e
}

// WriteJSON marshals the bundle with indentation.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
