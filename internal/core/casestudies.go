package core

import (
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/urlutil"
)

// UniqueNodesResult is the §5.1 case study: nodes whose URL appears in
// exactly one tree of the entire dataset.
type UniqueNodesResult struct {
	TotalNodes  int // distinct (page, key) node aggregates
	UniqueNodes int
	UniqueShare float64

	TrackingShare   float64 // unique nodes that are tracking requests
	ThirdPartyShare float64 // unique nodes in a third-party context
	DepthMean       float64
	DepthSD         float64
	ShareAtDepthOne float64

	// TypeShares lists the most common resource types among unique nodes.
	TypeShares []TypeShare
	// TopHosts lists the eTLD+1s hosting the most unique nodes.
	TopHosts []HostShare
	// MeanSharePerTree is the average share of unique nodes per tree.
	MeanSharePerTree float64
}

// TypeShare pairs a resource type with its share.
type TypeShare struct {
	Type  measurement.ResourceType
	Share float64
}

// HostShare pairs a hosting site with its share of unique nodes.
type HostShare struct {
	Host  string
	Share float64
}

// UniqueNodes computes the unique-node case study. Uniqueness is global:
// a node key counted once across every tree of every vetted page (§5.1
// "the URL corresponding to this node is only present once in our
// dataset").
func (a *Analysis) UniqueNodes() UniqueNodesResult {
	defer a.phaseTimer("casestudy.uniquenodes")()
	globalCount := map[string]int{}
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		globalCount[ni.Key] += ni.Presence
	})

	var res UniqueNodesResult
	var depths []float64
	typeCounts := map[measurement.ResourceType]int{}
	hostCounts := map[string]int{}
	var perTreeShares []float64

	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		res.TotalNodes++
		if globalCount[ni.Key] != 1 {
			return
		}
		res.UniqueNodes++
		if ni.Tracking {
			res.TrackingShare++
		}
		if ni.Party == tree.ThirdParty {
			res.ThirdPartyShare++
		}
		depths = append(depths, ni.MeanDepth())
		if ni.MeanDepth() == 1 {
			res.ShareAtDepthOne++
		}
		typeCounts[ni.Type]++
		if site := urlutil.Site(ni.Key); site != "" {
			hostCounts[site]++
		}
	})
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			unique := 0
			for _, n := range t.Nodes() {
				if !n.IsRoot() && globalCount[n.Key] == 1 {
					unique++
				}
			}
			if c := t.NodeCount() - 1; c > 0 {
				perTreeShares = append(perTreeShares, float64(unique)/float64(c))
			}
		}
	}

	if res.TotalNodes > 0 {
		res.UniqueShare = float64(res.UniqueNodes) / float64(res.TotalNodes)
	}
	if res.UniqueNodes > 0 {
		res.TrackingShare /= float64(res.UniqueNodes)
		res.ThirdPartyShare /= float64(res.UniqueNodes)
		res.ShareAtDepthOne /= float64(res.UniqueNodes)
		ds := stats.Summarize(depths)
		res.DepthMean, res.DepthSD = ds.Mean, ds.SD
		for ty, c := range typeCounts {
			res.TypeShares = append(res.TypeShares, TypeShare{Type: ty, Share: float64(c) / float64(res.UniqueNodes)})
		}
		sort.Slice(res.TypeShares, func(i, j int) bool {
			if res.TypeShares[i].Share != res.TypeShares[j].Share {
				return res.TypeShares[i].Share > res.TypeShares[j].Share
			}
			return res.TypeShares[i].Type < res.TypeShares[j].Type
		})
		for h, c := range hostCounts {
			res.TopHosts = append(res.TopHosts, HostShare{Host: h, Share: float64(c) / float64(res.UniqueNodes)})
		}
		sort.Slice(res.TopHosts, func(i, j int) bool {
			if res.TopHosts[i].Share != res.TopHosts[j].Share {
				return res.TopHosts[i].Share > res.TopHosts[j].Share
			}
			return res.TopHosts[i].Host < res.TopHosts[j].Host
		})
		if len(res.TopHosts) > 10 {
			res.TopHosts = res.TopHosts[:10]
		}
	}
	res.MeanSharePerTree = stats.Mean(perTreeShares)
	return res
}

// CookieStudyResult is the §5.2 case study.
type CookieStudyResult struct {
	TotalObservations int // cookie observations across all visits
	DistinctCookies   int // distinct (name, domain, path) identities
	PerProfile        map[string]int

	ShareInAllProfiles float64
	ShareInOneProfile  float64

	// MeanJaccard is the mean per-page pairwise Jaccard of cookie identity
	// sets across all profiles.
	MeanJaccard stats.Summary
	// InteractionVsNone compares profiles with interaction against the
	// NoAction profile (pairwise Jaccard vs NoAction only).
	InteractionVsNone stats.Summary
	// AttributeMismatch counts distinct cookies whose security attributes
	// differed between profiles.
	AttributeMismatch int
}

// CookieStudy computes the cookie case study over vetted pages.
func (a *Analysis) CookieStudy(noActionProfile string) CookieStudyResult {
	defer a.phaseTimer("casestudy.cookies")()
	res := CookieStudyResult{PerProfile: map[string]int{}}
	noIdx := a.profileIndex(noActionProfile)

	distinct := map[string]bool{}
	presence := map[string]map[string]bool{} // cookie ID → set of profiles
	attrs := map[string]map[string]bool{}    // cookie ID → attribute signatures
	var pageSims, noneSims []float64

	for _, pa := range a.pages {
		sets := make([]map[string]bool, len(a.profiles))
		for pi, prof := range a.profiles {
			visit := a.visitFor(pa, prof)
			set := map[string]bool{}
			if visit != nil {
				for _, c := range visit.Cookies {
					id := c.ID()
					set[id] = true
					distinct[id] = true
					if presence[id] == nil {
						presence[id] = map[string]bool{}
					}
					presence[id][prof] = true
					if attrs[id] == nil {
						attrs[id] = map[string]bool{}
					}
					attrs[id][c.AttributeSignature()] = true
					res.PerProfile[prof]++
					res.TotalObservations++
				}
			}
			sets[pi] = set
		}
		pageSims = append(pageSims, stats.PairwiseMeanJaccard(sets))
		if noIdx >= 0 {
			for pi := range sets {
				if pi == noIdx {
					continue
				}
				noneSims = append(noneSims, stats.Jaccard(sets[pi], sets[noIdx]))
			}
		}
	}

	res.DistinctCookies = len(distinct)
	var inAll, inOne int
	for _, profs := range presence {
		if len(profs) == len(a.profiles) {
			inAll++
		}
		if len(profs) == 1 {
			inOne++
		}
	}
	if res.DistinctCookies > 0 {
		res.ShareInAllProfiles = float64(inAll) / float64(res.DistinctCookies)
		res.ShareInOneProfile = float64(inOne) / float64(res.DistinctCookies)
	}
	for _, sigs := range attrs {
		if len(sigs) > 1 {
			res.AttributeMismatch++
		}
	}
	res.MeanJaccard = stats.Summarize(pageSims)
	res.InteractionVsNone = stats.Summarize(noneSims)
	return res
}

// visitFor fetches a vetted page's visit for a profile.
func (a *Analysis) visitFor(pa *PageAnalysis, profile string) *measurement.Visit {
	pv := a.ds.PageGroup(pa.Key)
	if pv == nil {
		return nil
	}
	return pv.ByProfile[profile]
}

// TrackingStudyResult is the §5.3 case study.
type TrackingStudyResult struct {
	TrackingShare float64 // share of nodes used for tracking

	TrackingNodeSim      stats.Summary // child+parent blended per-node similarity is not defined; this is presence-based node similarity per page
	TrackingChildSim     stats.Summary
	NonTrackingChildSim  stats.Summary
	TrackingParentSim    stats.Summary
	NonTrackingParentSim stats.Summary

	TrackingMeanChildren    float64
	NonTrackingMeanChildren float64

	// Depth distribution of tracking nodes.
	DepthShares []float64 // index = depth (0..len-1), last bucket = deeper

	// Parent context of tracking requests.
	TriggeredByTracker      float64 // parents that are tracking nodes
	TrackerParentThirdParty float64 // tracking parents in third-party context
	TriggeredByFirstParty   float64 // tracking nodes with first-party parents
	ParentTypeScript        float64
	ParentTypeSubframe      float64
	ParentTypeMainframe     float64
}

// TrackingStudy computes the tracking-request case study.
func (a *Analysis) TrackingStudy() TrackingStudyResult {
	defer a.phaseTimer("casestudy.tracking")()
	var res TrackingStudyResult
	var total, tracking int
	var trChild, ntChild, trParent, ntParent, trNodeSim []float64
	var trChildren, ntChildren []float64
	depthCounts := make([]int, 5) // 1,2,3,4,deeper
	var depthTotal int

	var parentTracker, parentFP, parentTP, parentTotal int
	var trackerParentTP, trackerParentTotal int
	var ptScript, ptSub, ptMain int

	for _, pa := range a.pages {
		rootKey := pa.Trees[0].Root.Key
		// Per-page presence similarity of tracking node sets.
		sets := make([]map[string]bool, len(pa.Trees))
		for ti, t := range pa.Trees {
			set := map[string]bool{}
			for _, n := range t.Nodes() {
				if n.Tracking {
					set[n.Key] = true
				}
			}
			sets[ti] = set
		}
		hasTracking := false
		for _, s := range sets {
			if len(s) > 0 {
				hasTracking = true
			}
		}
		if hasTracking {
			trNodeSim = append(trNodeSim, stats.PairwiseMeanJaccard(sets))
		}

		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			total++
			meanChildren := meanPresentChildren(ni)
			if ni.Tracking {
				tracking++
				if ni.Presence >= 2 {
					if ni.HasChildAnywhere {
						trChild = append(trChild, ni.ChildSim)
					}
					trParent = append(trParent, ni.ParentSim)
				}
				trChildren = append(trChildren, meanChildren)
				d := int(ni.MeanDepth())
				switch {
				case d <= 1:
					depthCounts[0]++
				case d == 2:
					depthCounts[1]++
				case d == 3:
					depthCounts[2]++
				case d == 4:
					depthCounts[3]++
				default:
					depthCounts[4]++
				}
				depthTotal++
			} else {
				if ni.Presence >= 2 {
					if ni.HasChildAnywhere {
						ntChild = append(ntChild, ni.ChildSim)
					}
					ntParent = append(ntParent, ni.ParentSim)
				}
				ntChildren = append(ntChildren, meanChildren)
			}
		}

		// Parent context per tracking node instance.
		for _, t := range pa.Trees {
			for _, n := range t.Nodes() {
				if !n.Tracking || n.Parent == nil {
					continue
				}
				parentTotal++
				p := n.Parent
				if p.Tracking {
					parentTracker++
					trackerParentTotal++
					if p.Party == tree.ThirdParty {
						trackerParentTP++
					}
				}
				if p.Party == tree.FirstParty {
					parentFP++
				} else {
					parentTP++
				}
				switch p.Type {
				case measurement.TypeScript:
					ptScript++
				case measurement.TypeSubFrame:
					ptSub++
				case measurement.TypeMainFrame:
					ptMain++
				}
			}
		}
	}

	if total > 0 {
		res.TrackingShare = float64(tracking) / float64(total)
	}
	res.TrackingNodeSim = stats.Summarize(trNodeSim)
	res.TrackingChildSim = stats.Summarize(trChild)
	res.NonTrackingChildSim = stats.Summarize(ntChild)
	res.TrackingParentSim = stats.Summarize(trParent)
	res.NonTrackingParentSim = stats.Summarize(ntParent)
	res.TrackingMeanChildren = stats.Mean(trChildren)
	res.NonTrackingMeanChildren = stats.Mean(ntChildren)
	if depthTotal > 0 {
		res.DepthShares = make([]float64, len(depthCounts))
		for i, c := range depthCounts {
			res.DepthShares[i] = float64(c) / float64(depthTotal)
		}
	}
	if parentTotal > 0 {
		res.TriggeredByTracker = float64(parentTracker) / float64(parentTotal)
		res.TriggeredByFirstParty = float64(parentFP) / float64(parentTotal)
		res.ParentTypeScript = float64(ptScript) / float64(parentTotal)
		res.ParentTypeSubframe = float64(ptSub) / float64(parentTotal)
		res.ParentTypeMainframe = float64(ptMain) / float64(parentTotal)
	}
	if trackerParentTotal > 0 {
		res.TrackerParentThirdParty = float64(trackerParentTP) / float64(trackerParentTotal)
	}
	return res
}

// meanPresentChildren averages a node's child counts over the trees
// containing it.
func meanPresentChildren(ni *treediff.NodeInfo) float64 {
	sum, n := 0, 0
	for _, c := range ni.NumChildren {
		if c >= 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
