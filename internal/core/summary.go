package core

import (
	"webmeasure/internal/stats"
)

// CrawlSummary reports the dataset-shaping numbers of §4 ("Success of
// Crawling Method").
type CrawlSummary struct {
	Sites            int
	Pages            int
	Visits           int
	VisitsPerProfile map[string]int
	SuccessRate      map[string]float64
	VettedSites      int
	VettedPages      int
	VettedShare      float64
	// Vetting breaks the excluded pages down by reason (§3.1).
	Vetting Vetting
	// PagesPerSite summarizes discovered pages per site.
	PagesPerSite stats.Summary
}

// CrawlSummary computes the crawl-level summary.
func (a *Analysis) CrawlSummary() CrawlSummary {
	s := CrawlSummary{
		VisitsPerProfile: map[string]int{},
		SuccessRate:      map[string]float64{},
	}
	s.Sites = len(a.ds.Sites())
	pages := a.ds.Pages()
	s.Pages = len(pages)
	s.Visits = a.ds.Len()
	for _, p := range a.profiles {
		s.SuccessRate[p] = a.ds.SuccessRate(p)
	}
	for _, v := range a.ds.Visits() {
		s.VisitsPerProfile[v.Profile]++
	}

	pagesPerSite := map[string]int{}
	for _, pv := range pages {
		pagesPerSite[pv.Key.Site]++
	}
	counts := make([]int, 0, len(pagesPerSite))
	for _, c := range pagesPerSite {
		counts = append(counts, c)
	}
	s.PagesPerSite = stats.SummarizeInts(counts)

	vettedSites := map[string]bool{}
	for _, pa := range a.pages {
		vettedSites[pa.Key.Site] = true
	}
	s.VettedSites = len(vettedSites)
	s.VettedPages = len(a.pages)
	s.Vetting = a.vetting
	if s.Pages > 0 {
		s.VettedShare = float64(s.VettedPages) / float64(s.Pages)
	}
	return s
}
