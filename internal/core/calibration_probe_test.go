package core

import (
	"context"
	"testing"

	"webmeasure/internal/crawler"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// runExperiment runs a small but fully-shaped experiment for tests.
func runExperiment(t testing.TB, nSites, maxPages int, seed int64) *Analysis {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(seed))
	list := tranco.Generate(nSites*10, seed)
	sample := list.Sample(tranco.ScaledBoundaries(nSites*10), nSites/5, seed)
	ds, _, err := crawler.Run(context.Background(), crawler.Config{
		Universe: u, Sites: sample, MaxPages: maxPages, Instances: 8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	filter, _ := filterlist.Parse(u.FilterListText())
	ranks := map[string]int{}
	for _, e := range sample {
		ranks[e.Site] = e.Rank
	}
	a, err := New(ds, filter, Options{
		Profiles: []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"},
		SiteRank: ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestProbe prints the key shape numbers; used to calibrate the generator.
func TestProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	a := runExperiment(t, 50, 8, 42)
	cs := a.CrawlSummary()
	t.Logf("sites=%d pages=%d visits=%d vetted=%d (%.2f)", cs.Sites, cs.Pages, cs.Visits, cs.VettedPages, cs.VettedShare)
	for p, r := range cs.SuccessRate {
		t.Logf("success %s = %.3f", p, r)
	}
	ov := a.TreeOverview()
	t.Logf("nodes avg=%.1f sd=%.1f min=%.0f max=%.0f", ov.Nodes.Mean, ov.Nodes.SD, ov.Nodes.Min, ov.Nodes.Max)
	t.Logf("depth avg=%.2f max=%.0f; breadth avg=%.1f max=%.0f", ov.Depth.Mean, ov.Depth.Max, ov.Breadth.Mean, ov.Breadth.Max)
	t.Logf("presence mean=%.2f inAll=%.2f inOne=%.2f pairVar=%.2f", ov.MeanPresence, ov.ShareInAll, ov.ShareInOne, ov.PairwiseVariation)
	for _, r := range a.DepthSimilarityTable() {
		t.Logf("T3 %-48s %s %.2f sd=%.2f", r.Label, r.Category, r.Sim, r.SD)
	}
	for _, r := range a.ProfileTotals() {
		t.Logf("T5 %-9s nodes=%d tp=%d trk=%d depth=%d breadth=%d", r.Profile, r.Nodes, r.ThirdParty, r.Tracker, r.MaxDepth, r.MaxBreadth)
	}
	pa := a.PartyAppearance()
	t.Logf("party: fpShare=%.2f tpShare=%.2f fp1=%.2f fpDeep=%.2f tp1=%.2f tpDeep=%.2f tpDeepDom=%.2f fpChild=%.2f tpChild=%.2f domains=%d",
		pa.FPShare, pa.TPShare, pa.FPDepth1Mean, pa.FPDeeperMean, pa.TPDepth1Mean, pa.TPDeeperMean, pa.TPDeepDominance, pa.FPChildSim.Mean, pa.TPChildSim.Mean, pa.TPDistinctDomains)
	chain := a.ChainStability()
	t.Logf("chains: all=%.2f deep=%.2f unique=%.2f sameParent=%.2f fp=%.2f tp=%.2f trk=%.2f other=%.2f",
		chain.SameChainShareAll, chain.SameChainShareDeep, chain.UniqueChainShare, chain.SameParentShare,
		chain.SameChainFP, chain.SameChainTP, chain.SameChainTracking, chain.SameChainOther)
	un := a.UniqueNodes()
	t.Logf("unique: share=%.2f tracking=%.2f tp=%.2f depthMean=%.2f d1=%.2f perTree=%.2f",
		un.UniqueShare, un.TrackingShare, un.ThirdPartyShare, un.DepthMean, un.ShareAtDepthOne, un.MeanSharePerTree)
	ck := a.CookieStudy("NoAction")
	t.Logf("cookies: total=%d distinct=%d inAll=%.2f inOne=%.2f meanJ=%.2f vsNone=%.2f attrDiff=%d",
		ck.TotalObservations, ck.DistinctCookies, ck.ShareInAllProfiles, ck.ShareInOneProfile, ck.MeanJaccard.Mean, ck.InteractionVsNone.Mean, ck.AttributeMismatch)
	tr := a.TrackingStudy()
	t.Logf("tracking: share=%.2f sim=%.2f childTr=%.2f childNt=%.2f parTr=%.2f parNt=%.2f kidsTr=%.1f kidsNt=%.1f byTracker=%.2f byFP=%.2f scr=%.2f sub=%.2f main=%.2f",
		tr.TrackingShare, tr.TrackingNodeSim.Mean, tr.TrackingChildSim.Mean, tr.NonTrackingChildSim.Mean,
		tr.TrackingParentSim.Mean, tr.NonTrackingParentSim.Mean, tr.TrackingMeanChildren, tr.NonTrackingMeanChildren,
		tr.TriggeredByTracker, tr.TriggeredByFirstParty, tr.ParentTypeScript, tr.ParentTypeSubframe, tr.ParentTypeMainframe)
	sc := a.CompareSameConfig("Sim1", "Sim2")
	t.Logf("sim1vs2: upper=%.2f deep=%.2f pages=%d", sc.UpperSim, sc.DeepSim, sc.Pages)
	sub := a.SubframeImpact()
	t.Logf("subframes: with=%d without=%d parW=%.2f parWo=%.2f chW=%.2f chWo=%.2f",
		sub.WithSubframes, sub.WithoutSubframes, sub.ParentSimWith, sub.ParentSimWithout, sub.ChildSimWith, sub.ChildSimWithout)
	tests := a.RunTests("Sim1", "NoAction")
	t.Logf("tests: wilcoxon p=%.4g err=%v; mw p=%.4g err=%v; kw p=%.4g err=%v",
		tests.ChildrenVsSimilarity.P, tests.ChildrenVsSimilarityErr,
		tests.InteractionDepth.P, tests.InteractionDepthErr,
		tests.TypeEffect.P, tests.TypeEffectErr)
}
