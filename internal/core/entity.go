package core

import (
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/urlutil"
)

// EntityReport compares two granularities for third-party analysis: the
// set of third-party *domains* a page loads versus the set of
// *organizations* behind them (an entity map, tracker-radar-style). An
// organization often owns several domains; when intra-organization churn
// dominates (a sync partner swapped for a sister domain), entity-level
// results are more stable — a practical lever for the paper's
// comparability problem.
type EntityReport struct {
	// DomainSim / EntitySim summarize per-page pairwise-mean Jaccard of
	// third-party domain sets and entity sets across the profiles.
	DomainSim stats.Summary
	EntitySim stats.Summary
	// DistinctDomains / DistinctEntities across the whole dataset.
	DistinctDomains  int
	DistinctEntities int
	// AdvantageShare is the share of pages where entity-level similarity
	// strictly exceeds domain-level similarity.
	AdvantageShare float64
}

// EntityStability computes the domain-vs-entity stability comparison.
// entityOf maps a registrable domain to its organization name ("" = no
// organization: the domain stands for itself).
func (a *Analysis) EntityStability(entityOf func(domain string) string) EntityReport {
	var rep EntityReport
	var domainSims, entitySims []float64
	advantage := 0
	allDomains := map[string]bool{}
	allEntities := map[string]bool{}

	for _, pa := range a.pages {
		domainSets := make([]map[string]bool, len(pa.Trees))
		entitySets := make([]map[string]bool, len(pa.Trees))
		for ti, t := range pa.Trees {
			ds := map[string]bool{}
			es := map[string]bool{}
			for _, n := range t.Nodes() {
				if n.Party != tree.ThirdParty {
					continue
				}
				domain := urlutil.Site(n.Key)
				if domain == "" {
					continue
				}
				ds[domain] = true
				allDomains[domain] = true
				entity := entityOf(domain)
				if entity == "" {
					entity = domain
				}
				es[entity] = true
				allEntities[entity] = true
			}
			domainSets[ti] = ds
			entitySets[ti] = es
		}
		dSim := stats.PairwiseMeanJaccard(domainSets)
		eSim := stats.PairwiseMeanJaccard(entitySets)
		domainSims = append(domainSims, dSim)
		entitySims = append(entitySims, eSim)
		if eSim > dSim {
			advantage++
		}
	}
	rep.DomainSim = stats.Summarize(domainSims)
	rep.EntitySim = stats.Summarize(entitySims)
	rep.DistinctDomains = len(allDomains)
	rep.DistinctEntities = len(allEntities)
	if len(domainSims) > 0 {
		rep.AdvantageShare = float64(advantage) / float64(len(domainSims))
	}
	return rep
}
