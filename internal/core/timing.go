package core

import (
	"webmeasure/internal/stats"
)

// TimingReport reproduces Appendix C's synchronization bookkeeping: visits
// to the same page start simultaneously at the site level but drift at the
// page level; the paper reports a 46-second mean deviation (SD 111s),
// driven by pages that time out in one profile but not another.
type TimingReport struct {
	// StartDeviation summarizes, per page, the spread (max − min start
	// offset, seconds) between the profiles' visits.
	StartDeviation stats.Summary
	// Duration summarizes the simulated page-load durations (ms) across
	// all vetted visits.
	Duration stats.Summary
	// TimeoutShare is the share of visits that ran into the page timeout
	// (duration at the cap).
	TimeoutShare float64
}

// Timing computes the visit-timing report over the vetted pages.
func (a *Analysis) Timing(timeoutMS int) TimingReport {
	var deviations, durations []float64
	var timeouts, visits int
	for _, pa := range a.pages {
		minOff, maxOff := -1.0, -1.0
		for _, prof := range a.profiles {
			v := a.visitFor(pa, prof)
			if v == nil || !v.Success {
				continue
			}
			visits++
			durations = append(durations, float64(v.DurationMS))
			if timeoutMS > 0 && v.DurationMS >= timeoutMS {
				timeouts++
			}
			if minOff < 0 || v.StartOffsetS < minOff {
				minOff = v.StartOffsetS
			}
			if v.StartOffsetS > maxOff {
				maxOff = v.StartOffsetS
			}
		}
		if maxOff >= 0 {
			deviations = append(deviations, maxOff-minOff)
		}
	}
	rep := TimingReport{
		StartDeviation: stats.Summarize(deviations),
		Duration:       stats.Summarize(durations),
	}
	if visits > 0 {
		rep.TimeoutShare = float64(timeouts) / float64(visits)
	}
	return rep
}
