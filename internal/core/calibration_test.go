package core

import "testing"

// TestCalibrationShape asserts the shape invariants DESIGN.md §5 promises:
// the synthetic web must reproduce the paper's qualitative findings (who is
// more similar, which setup sees less) within generous tolerances. If a
// generator change drifts outside these bands, the reproduction is broken
// even if all other tests pass.
func TestCalibrationShape(t *testing.T) {
	a := sharedExperiment(t)

	cs := a.CrawlSummary()
	// Per-profile success ≥ low 80s (paper ≥ 89% at full scale); vetted
	// share near the paper's 55%.
	for p, r := range cs.SuccessRate {
		if r < 0.80 || r > 0.97 {
			t.Errorf("success rate %s = %.3f outside [0.80, 0.97]", p, r)
		}
	}
	if cs.VettedShare < 0.40 || cs.VettedShare > 0.75 {
		t.Errorf("vetted share %.3f outside [0.40, 0.75] (paper: 0.55)", cs.VettedShare)
	}

	ov := a.TreeOverview()
	if ov.Nodes.Mean < 40 || ov.Nodes.Mean > 160 {
		t.Errorf("mean nodes %.1f outside [40, 160] (paper: 84)", ov.Nodes.Mean)
	}
	if ov.Depth.Mean < 2.5 || ov.Depth.Mean > 6 {
		t.Errorf("mean depth %.2f outside [2.5, 6] (paper: 3.6)", ov.Depth.Mean)
	}
	if ov.MeanPresence < 3.0 || ov.MeanPresence > 4.4 {
		t.Errorf("mean presence %.2f outside [3.0, 4.4] (paper: 3.6)", ov.MeanPresence)
	}
	if ov.ShareInAll < 0.35 || ov.ShareInAll > 0.70 {
		t.Errorf("share in all profiles %.2f outside [0.35, 0.70] (paper: 0.52)", ov.ShareInAll)
	}
	if ov.ShareInOne < 0.10 || ov.ShareInOne > 0.40 {
		t.Errorf("share in one profile %.2f outside [0.10, 0.40] (paper: 0.24)", ov.ShareInOne)
	}

	// Table 3 bands.
	rows := map[string]float64{}
	for _, r := range a.DepthSimilarityTable() {
		rows[r.Label] = r.Sim
	}
	if v := rows["nodes in all trees"]; v < 0.95 {
		t.Errorf("nodes-in-all-trees sim %.2f < 0.95 (paper: 0.99)", v)
	}
	if v := rows["first-party nodes"]; v < 0.78 || v > 0.97 {
		t.Errorf("first-party sim %.2f outside [0.78, 0.97] (paper: 0.88)", v)
	}
	if v := rows["third-party nodes"]; v < 0.45 || v > 0.85 {
		t.Errorf("third-party sim %.2f outside [0.45, 0.85] (paper: 0.76)", v)
	}

	// §4.3: party split — about two thirds third-party.
	pa := a.PartyAppearance()
	if pa.TPShare < 0.5 || pa.TPShare > 0.8 {
		t.Errorf("third-party share %.2f outside [0.5, 0.8] (paper: 0.68)", pa.TPShare)
	}
	if pa.FPDepth1Mean < 4.0 {
		t.Errorf("FP depth-1 presence %.2f < 4.0 (paper: 4.5 of 5)", pa.FPDepth1Mean)
	}
	if pa.TPDeeperMean >= pa.TPDepth1Mean {
		t.Errorf("TP presence must fall with depth: d1=%.2f deep=%.2f", pa.TPDepth1Mean, pa.TPDeeperMean)
	}
	if pa.FPChildSim.Mean <= pa.TPChildSim.Mean {
		t.Errorf("FP children (%v) must beat TP (%v) (paper: .86 vs .68)",
			pa.FPChildSim.Mean, pa.TPChildSim.Mean)
	}
	if pa.TPDeepDominance < 0.85 {
		t.Errorf("TP deep dominance %.2f < 0.85 (paper: 0.95)", pa.TPDeepDominance)
	}

	// §4.4: Table 5 deltas — NoAction 15–45% smaller; Old/Headless within
	// a few percent of Sim1.
	totals := map[string]ProfileTotalsRow{}
	for _, r := range a.ProfileTotals() {
		totals[r.Profile] = r
	}
	ratio := float64(totals["Sim1"].Nodes) / float64(totals["NoAction"].Nodes)
	if ratio < 1.10 || ratio > 1.60 {
		t.Errorf("Sim1/NoAction node ratio %.2f outside [1.10, 1.60] (paper: 1.34)", ratio)
	}
	trkRatio := float64(totals["Sim1"].Tracker) / float64(totals["NoAction"].Tracker)
	if trkRatio < 1.15 {
		t.Errorf("Sim1/NoAction tracker ratio %.2f < 1.15 (paper: 1.68)", trkRatio)
	}
	for _, name := range []string{"Old", "Sim2", "Headless"} {
		r := float64(totals[name].Nodes) / float64(totals["Sim1"].Nodes)
		if r < 0.93 || r > 1.07 {
			t.Errorf("%s/Sim1 node ratio %.3f outside [0.93, 1.07] (paper: ≈1)", name, r)
		}
	}

	// §4.2 chain stability orderings and magnitudes.
	chain := a.ChainStability()
	if chain.SameChainShareAll < 0.6 || chain.SameChainShareAll > 0.97 {
		t.Errorf("same-chain (all) %.2f outside [0.6, 0.97] (paper: 0.75)", chain.SameChainShareAll)
	}
	if chain.SameChainShareDeep < 0.35 || chain.SameChainShareDeep > 0.85 {
		t.Errorf("same-chain (deep) %.2f outside [0.35, 0.85] (paper: 0.57)", chain.SameChainShareDeep)
	}
	if chain.SameParentShare < 0.45 || chain.SameParentShare > 0.92 {
		t.Errorf("same-parent share %.2f outside [0.45, 0.92] (paper: 0.61)", chain.SameParentShare)
	}

	// §5.1 unique nodes.
	un := a.UniqueNodes()
	if un.UniqueShare < 0.08 || un.UniqueShare > 0.40 {
		t.Errorf("unique share %.2f outside [0.08, 0.40] (paper: 0.24)", un.UniqueShare)
	}
	if un.TrackingShare < 0.15 || un.TrackingShare > 0.65 {
		t.Errorf("unique tracking share %.2f outside [0.15, 0.65] (paper: 0.37)", un.TrackingShare)
	}
	if un.ThirdPartyShare < 0.7 {
		t.Errorf("unique third-party share %.2f < 0.7 (paper: 0.90)", un.ThirdPartyShare)
	}

	// §5.2 cookies.
	ck := a.CookieStudy("NoAction")
	if ck.ShareInAllProfiles < 0.15 || ck.ShareInAllProfiles > 0.65 {
		t.Errorf("cookies in all profiles %.2f outside [0.15, 0.65] (paper: 0.32)", ck.ShareInAllProfiles)
	}
	if ck.ShareInOneProfile < 0.15 || ck.ShareInOneProfile > 0.65 {
		t.Errorf("cookies in one profile %.2f outside [0.15, 0.65] (paper: 0.42)", ck.ShareInOneProfile)
	}
	if ck.MeanJaccard.Mean < 0.5 || ck.MeanJaccard.Mean > 0.9 {
		t.Errorf("cookie similarity %.2f outside [0.5, 0.9] (paper: 0.70)", ck.MeanJaccard.Mean)
	}

	// §5.3 tracking.
	tr := a.TrackingStudy()
	if tr.TrackingShare < 0.12 || tr.TrackingShare > 0.45 {
		t.Errorf("tracking share %.2f outside [0.12, 0.45] (paper: 0.22)", tr.TrackingShare)
	}
	if tr.TriggeredByTracker < 0.4 {
		t.Errorf("tracking triggered by trackers %.2f < 0.4 (paper: 0.65)", tr.TriggeredByTracker)
	}

	// §4.4 Sim1 vs Sim2: similar but not identical, upper levels more
	// similar than deep levels.
	sc := a.CompareSameConfig("Sim1", "Sim2")
	if sc.UpperSim < 0.55 || sc.UpperSim > 0.99 {
		t.Errorf("Sim1/Sim2 upper similarity %.2f outside [0.55, 0.99] (paper: 0.92)", sc.UpperSim)
	}
	if sc.DeepSim >= sc.UpperSim {
		t.Errorf("deep similarity (%v) must trail upper (%v) (paper: .75 vs .92)", sc.DeepSim, sc.UpperSim)
	}
}
