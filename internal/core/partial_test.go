package core

import (
	"bytes"
	"context"
	"testing"

	"webmeasure/internal/crawler"
	"webmeasure/internal/dataset"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// shardExperiment crawls a small experiment and returns the pieces the
// shard-and-merge tests need.
func shardExperiment(t testing.TB, seed int64) (*dataset.Dataset, *filterlist.List, Options) {
	t.Helper()
	const nSites = 10
	u := webgen.New(webgen.DefaultConfig(seed))
	list := tranco.Generate(nSites*10, seed)
	sample := list.Sample(tranco.ScaledBoundaries(nSites*10), nSites/5, seed)
	ds, _, err := crawler.Run(context.Background(), crawler.Config{
		Universe: u, Sites: sample, MaxPages: 4, Instances: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	filter, _ := filterlist.Parse(u.FilterListText())
	return ds, filter, Options{Profiles: []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"}}
}

// splitPartials analyzes each shard's slice independently and round-trips
// every partial through its wire encoding.
func splitPartials(t testing.TB, ds *dataset.Dataset, filter *filterlist.List, opts Options, plan ShardPlan) []*Partial {
	t.Helper()
	parts := make([]*Partial, plan.Count)
	for i := 0; i < plan.Count; i++ {
		keep := plan.Keep(i)
		shardDS := ds.FilterPages(func(k dataset.PageKey) bool { return keep(k.Site, k.PageURL) })
		shardOpts := opts
		shardOpts.AllowEmpty = true
		a, err := New(shardDS, filter, shardOpts)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		part, err := a.Partial(plan, i)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		wire, err := part.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if parts[i], err = DecodePartial(wire); err != nil {
			t.Fatal(err)
		}
	}
	return parts
}

// exportJSON renders the analysis's full JSON bundle — the widest net for
// "indistinguishable from the direct analysis".
func exportJSON(t testing.TB, a *Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Export(ExportOptions{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeOfSplitEqualsDirect: merge(split(X)) == X — splitting the
// dataset under a plan, analyzing each slice, and merging the partials
// must reproduce the direct analysis bit for bit.
func TestMergeOfSplitEqualsDirect(t *testing.T) {
	ds, filter, opts := shardExperiment(t, 21)
	direct, err := New(ds, filter, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 4, 7} {
		plan := ShardPlan{Count: count, Seed: 21}
		parts := splitPartials(t, ds, filter, opts, plan)
		merged, err := NewFromPartials(ds, filter, opts, plan, parts)
		if err != nil {
			t.Fatalf("%s: %v", plan, err)
		}
		if got, want := merged.Vetting(), direct.Vetting(); got != want {
			t.Errorf("%s: vetting %+v, want %+v", plan, got, want)
		}
		if got, want := exportJSON(t, merged), exportJSON(t, direct); !bytes.Equal(got, want) {
			t.Errorf("%s: merged export differs from direct (%d vs %d bytes)", plan, len(got), len(want))
		}
	}
}

// TestMergePermutationInvariant: the partials may arrive in any order —
// the merge keys on the shard index, never on arrival order.
func TestMergePermutationInvariant(t *testing.T) {
	ds, filter, opts := shardExperiment(t, 33)
	plan := ShardPlan{Count: 3, Seed: 33}
	parts := splitPartials(t, ds, filter, opts, plan)
	var want []byte
	for _, perm := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		shuffled := []*Partial{parts[perm[0]], parts[perm[1]], parts[perm[2]]}
		merged, err := NewFromPartials(ds, filter, opts, plan, shuffled)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		got := exportJSON(t, merged)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("perm %v: export differs from first permutation", perm)
		}
	}
}

// TestMergeRejectsBadPartialSets: the merge must refuse incomplete,
// duplicated, or cross-plan partial sets instead of silently producing a
// partial answer.
func TestMergeRejectsBadPartialSets(t *testing.T) {
	ds, filter, opts := shardExperiment(t, 8)
	plan := ShardPlan{Count: 2, Seed: 8}
	parts := splitPartials(t, ds, filter, opts, plan)

	if _, err := NewFromPartials(ds, filter, opts, plan, parts[:1]); err == nil {
		t.Error("short partial set accepted")
	}
	if _, err := NewFromPartials(ds, filter, opts, plan, []*Partial{parts[0], parts[0]}); err == nil {
		t.Error("duplicate shard accepted")
	}
	other := *parts[1]
	other.Plan = ShardPlan{Count: 2, Seed: 999}
	if _, err := NewFromPartials(ds, filter, opts, plan, []*Partial{parts[0], &other}); err == nil {
		t.Error("partial from a different plan accepted")
	}
	if _, err := NewFromPartials(ds, filter, opts, plan, []*Partial{parts[0], nil}); err == nil {
		t.Error("nil partial accepted")
	}
}

// TestPartialRejectsWrongShard: exporting an analysis as a shard it does
// not match must fail — the crawl and the plan disagree.
func TestPartialRejectsWrongShard(t *testing.T) {
	ds, filter, opts := shardExperiment(t, 8)
	plan := ShardPlan{Count: 2, Seed: 8}
	keep := plan.Keep(0)
	shardDS := ds.FilterPages(func(k dataset.PageKey) bool { return keep(k.Site, k.PageURL) })
	shardOpts := opts
	shardOpts.AllowEmpty = true
	a, err := New(shardDS, filter, shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pages()) == 0 {
		t.Fatal("shard 0 vetted no pages — pick another seed")
	}
	if _, err := a.Partial(plan, 1); err == nil {
		t.Error("shard-0 pages exported as shard 1")
	}
	if _, err := a.Partial(ShardPlan{Count: 0}, 0); err == nil {
		t.Error("invalid plan accepted")
	}
	if _, err := a.Partial(plan, 5); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestDecodePartialSchema: a partial from a different wire schema must be
// refused, not misread.
func TestDecodePartialSchema(t *testing.T) {
	if _, err := DecodePartial([]byte(`{"schema":99}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := DecodePartial([]byte(`not json`)); err == nil {
		t.Error("malformed partial accepted")
	}
}
