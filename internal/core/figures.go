package core

import (
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// DepthBreadthHistogram computes Fig. 1: the joint distribution of every
// vetted tree's depth (y) and breadth (x).
func (a *Analysis) DepthBreadthHistogram() *stats.Histogram2D {
	h := stats.NewHistogram2D()
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			h.Add(t.Breadth(), t.MaxDepth())
		}
	}
	return h
}

// SimilarityDistribution is Fig. 2: the distribution of per-node child and
// parent similarities.
type SimilarityDistribution struct {
	Children *stats.Histogram
	Parents  *stats.Histogram
}

// SimilarityDistribution computes Fig. 2 over all non-root nodes present in
// at least two trees.
func (a *Analysis) SimilarityDistribution() SimilarityDistribution {
	d := SimilarityDistribution{
		Children: stats.NewHistogram(0, 1, 10),
		Parents:  stats.NewHistogram(0, 1, 10),
	}
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		if ni.Presence < 2 {
			return
		}
		if ni.HasChildAnywhere {
			d.Children.Add(ni.ChildSim)
		}
		d.Parents.Add(ni.ParentSim)
	})
	return d
}

// NodeTypeVolumeRow is one depth bucket of Fig. 3.
type NodeTypeVolumeRow struct {
	Depth       string // "0".."6", "6+"
	FirstParty  float64
	ThirdParty  float64
	Tracking    float64
	NonTracking float64
	Nodes       int
}

// NodeTypeVolume computes Fig. 3: per depth (0..6, 6+ combined), the share
// of first-/third-party and tracking/non-tracking nodes. Node instances are
// counted per tree (volume, not distinct keys).
func (a *Analysis) NodeTypeVolume() []NodeTypeVolumeRow {
	const buckets = 8 // 0..6 and 6+
	var fp, tp, tr, nt, tot [buckets]int
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			for _, n := range t.Nodes() {
				b := n.Depth
				if b > 6 {
					b = 7
				}
				tot[b]++
				if n.Party == tree.FirstParty {
					fp[b]++
				} else {
					tp[b]++
				}
				if n.Tracking {
					tr[b]++
				} else {
					nt[b]++
				}
			}
		}
	}
	labels := []string{"0", "1", "2", "3", "4", "5", "6", "6+"}
	rows := make([]NodeTypeVolumeRow, buckets)
	for i := 0; i < buckets; i++ {
		rows[i].Depth = labels[i]
		rows[i].Nodes = tot[i]
		if tot[i] == 0 {
			continue
		}
		d := float64(tot[i])
		rows[i].FirstParty = float64(fp[i]) / d
		rows[i].ThirdParty = float64(tp[i]) / d
		rows[i].Tracking = float64(tr[i]) / d
		rows[i].NonTracking = float64(nt[i]) / d
	}
	return rows
}

// SimilarityByDepthRow is one depth bucket of Fig. 4.
type SimilarityByDepthRow struct {
	Depth     string // "0".."4", "4+"
	ChildSim  float64
	ParentSim float64
	Nodes     int
}

// SimilarityByDepth computes Fig. 4: mean child and parent similarity per
// depth, nodes deeper than four combined ("4+").
func (a *Analysis) SimilarityByDepth() []SimilarityByDepthRow {
	const buckets = 6
	childSums := make([][]float64, buckets)
	parentSums := make([][]float64, buckets)
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		if ni.Presence < 2 {
			return
		}
		b := int(ni.MeanDepth())
		if b >= buckets-1 {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		if ni.HasChildAnywhere {
			childSums[b] = append(childSums[b], ni.ChildSim)
		}
		parentSums[b] = append(parentSums[b], ni.ParentSim)
	})
	labels := []string{"0", "1", "2", "3", "4", "4+"}
	rows := make([]SimilarityByDepthRow, buckets)
	for i := 0; i < buckets; i++ {
		rows[i].Depth = labels[i]
		rows[i].ChildSim = stats.Mean(childSums[i])
		rows[i].ParentSim = stats.Mean(parentSums[i])
		rows[i].Nodes = len(parentSums[i])
	}
	return rows
}

// TypeShareSeries is one resource type's series in Fig. 5: the share of
// the type among the nodes of pages falling into each page-similarity bin.
type TypeShareSeries struct {
	Type   measurement.ResourceType
	Shares []float64 // indexed by bin
}

// TypeShareBySimilarity is Fig. 5a (Kind == "parent") or 5b ("children").
type TypeShareBySimilarity struct {
	Kind     string
	BinEdges []float64 // len = bins+1, over [0,1]
	Series   []TypeShareSeries
	Pages    []int // pages per bin
}

// fig5Types are the resource types the paper plots.
var fig5Types = []measurement.ResourceType{
	measurement.TypeImage,
	measurement.TypeScript,
	measurement.TypeStylesheet,
	measurement.TypeXHR,
	measurement.TypeSubFrame,
}

// TypeSharesBySimilarity computes Fig. 5: pages are binned by the average
// parent (or child) similarity of their nodes; within each bin the relative
// share of the five most common resource types is reported.
func (a *Analysis) TypeSharesBySimilarity(kind string, bins int) TypeShareBySimilarity {
	out := TypeShareBySimilarity{Kind: kind}
	for i := 0; i <= bins; i++ {
		out.BinEdges = append(out.BinEdges, float64(i)/float64(bins))
	}
	counts := make([]map[measurement.ResourceType]int, bins)
	totals := make([]int, bins)
	pages := make([]int, bins)
	for i := range counts {
		counts[i] = map[measurement.ResourceType]int{}
	}
	for _, pa := range a.pages {
		var sims []float64
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey || ni.Presence < 2 {
				continue
			}
			switch kind {
			case "parent":
				sims = append(sims, ni.ParentSim)
			default:
				if ni.HasChildAnywhere {
					sims = append(sims, ni.ChildSim)
				}
			}
		}
		if len(sims) == 0 {
			continue
		}
		avg := stats.Mean(sims)
		bin := int(avg * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		pages[bin]++
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			counts[bin][ni.Type] += ni.Presence
			totals[bin] += ni.Presence
		}
	}
	for _, ty := range fig5Types {
		series := TypeShareSeries{Type: ty, Shares: make([]float64, bins)}
		for b := 0; b < bins; b++ {
			if totals[b] > 0 {
				series.Shares[b] = float64(counts[b][ty]) / float64(totals[b])
			}
		}
		out.Series = append(out.Series, series)
	}
	out.Pages = pages
	return out
}

// SubframeImpact quantifies §4.2's strongest factor: pages with subframes
// are less similar than pages without.
type SubframeImpact struct {
	WithSubframes    int
	WithoutSubframes int
	ParentSimWith    float64
	ParentSimWithout float64
	ChildSimWith     float64
	ChildSimWithout  float64
}

// SubframeImpact computes the with/without-subframe page similarity split.
func (a *Analysis) SubframeImpact() SubframeImpact {
	var r SubframeImpact
	var pw, po, cw, co []float64
	for _, pa := range a.pages {
		hasFrame := false
		var parents, children []float64
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			if ni.Type == measurement.TypeSubFrame {
				hasFrame = true
			}
			if ni.Presence < 2 {
				continue
			}
			parents = append(parents, ni.ParentSim)
			if ni.HasChildAnywhere {
				children = append(children, ni.ChildSim)
			}
		}
		if len(parents) == 0 {
			continue
		}
		if hasFrame {
			r.WithSubframes++
			pw = append(pw, stats.Mean(parents))
			cw = append(cw, stats.Mean(children))
		} else {
			r.WithoutSubframes++
			po = append(po, stats.Mean(parents))
			co = append(co, stats.Mean(children))
		}
	}
	r.ParentSimWith = stats.Mean(pw)
	r.ParentSimWithout = stats.Mean(po)
	r.ChildSimWith = stats.Mean(cw)
	r.ChildSimWithout = stats.Mean(co)
	return r
}

// TypeDepthRow is one (type, depth) cell of Fig. 7.
type TypeDepthRow struct {
	Type      measurement.ResourceType
	Depth     int
	ChildSim  float64
	ParentSim float64
	Nodes     int
}

// TypeDepthSimilarity computes Fig. 7 (Appendix G): mean child/parent
// similarity per resource type per depth. Depths above maxDepth are
// clamped into the top bucket.
func (a *Analysis) TypeDepthSimilarity(maxDepth int) []TypeDepthRow {
	type key struct {
		ty measurement.ResourceType
		d  int
	}
	type agg struct {
		child, parent []float64
	}
	m := map[key]*agg{}
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		if ni.Presence < 2 {
			return
		}
		d := int(ni.MeanDepth())
		if d > maxDepth {
			d = maxDepth
		}
		k := key{ni.Type, d}
		g := m[k]
		if g == nil {
			g = &agg{}
			m[k] = g
		}
		g.parent = append(g.parent, ni.ParentSim)
		if ni.HasChildAnywhere {
			g.child = append(g.child, ni.ChildSim)
		}
	})
	rows := make([]TypeDepthRow, 0, len(m))
	for k, g := range m {
		rows = append(rows, TypeDepthRow{
			Type:      k.ty,
			Depth:     k.d,
			ChildSim:  stats.Mean(g.child),
			ParentSim: stats.Mean(g.parent),
			Nodes:     len(g.parent),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Type != rows[j].Type {
			return rows[i].Type < rows[j].Type
		}
		return rows[i].Depth < rows[j].Depth
	})
	return rows
}

// ChildrenByDepthRow is one depth of Fig. 8 (Appendix E).
type ChildrenByDepthRow struct {
	Depth  int
	Mean   float64
	Median float64
	Q1, Q3 float64
	Max    float64
	Nodes  int
}

// ChildrenByDepth computes Fig. 8: the distribution of per-node child
// counts at each depth (per tree instance), depths above maxDepth combined.
// onlyWithChildren restricts to nodes with ≥1 child (the long-tail view of
// §4.2).
func (a *Analysis) ChildrenByDepth(maxDepth int, onlyWithChildren bool) []ChildrenByDepthRow {
	samples := make([][]float64, maxDepth+1)
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			for _, n := range t.Nodes() {
				c := len(n.Children)
				if onlyWithChildren && c == 0 {
					continue
				}
				d := n.Depth
				if d > maxDepth {
					d = maxDepth
				}
				samples[d] = append(samples[d], float64(c))
			}
		}
	}
	rows := make([]ChildrenByDepthRow, 0, maxDepth+1)
	for d, xs := range samples {
		if len(xs) == 0 {
			continue
		}
		s := stats.Summarize(xs)
		rows = append(rows, ChildrenByDepthRow{
			Depth:  d,
			Mean:   s.Mean,
			Median: s.Median,
			Q1:     stats.Quantile(xs, 0.25),
			Q3:     stats.Quantile(xs, 0.75),
			Max:    s.Max,
			Nodes:  len(xs),
		})
	}
	return rows
}

// ChildStats reports §4.2's per-node child-count headline numbers.
type ChildStats struct {
	// PerNode is the distribution of child counts over all node instances.
	PerNode stats.Summary
	// RootChildren is the distribution of depth-zero (visited page) child
	// counts.
	RootChildren stats.Summary
	// ShareLeafDeep is the share of nodes at depth ≥ 1 with ≤ 1 child.
	ShareLeafDeep float64
}

// ChildStats computes the child-count overview.
func (a *Analysis) ChildStats() ChildStats {
	var all, root []float64
	var deepN, deepLeafish int
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			for _, n := range t.Nodes() {
				c := float64(len(n.Children))
				all = append(all, c)
				if n.IsRoot() {
					root = append(root, c)
				} else {
					deepN++
					if len(n.Children) <= 1 {
						deepLeafish++
					}
				}
			}
		}
	}
	cs := ChildStats{
		PerNode:      stats.Summarize(all),
		RootChildren: stats.Summarize(root),
	}
	if deepN > 0 {
		cs.ShareLeafDeep = float64(deepLeafish) / float64(deepN)
	}
	return cs
}
