package core

// This file implements the vetting stage (§3.1): the paper only analyzes
// pages that every profile visited "successfully and consistently". Each
// excluded page is classified by the most severe problem among its
// visits, and the counts are aggregated so reports can state how much of
// the crawl the comparison actually rests on.

// Exclusion reasons, ordered by severity (a page with both a missing
// visit and a degraded one is counted as missing).
const (
	// ExcludeMissing: at least one profile never produced a visit record.
	ExcludeMissing = "missing"
	// ExcludeFailed: at least one profile's visit failed outright.
	ExcludeFailed = "failed"
	// ExcludeDegraded: every profile produced a record, but at least one
	// observation was truncated by a fault (Visit.Clean() is false).
	ExcludeDegraded = "degraded"
	// ExcludeBuild: visits looked clean but a dependency tree could not
	// be built from a record (malformed data).
	ExcludeBuild = "build"
)

// exclusionRank orders reasons so the classifier keeps the worst one.
func exclusionRank(reason string) int {
	switch reason {
	case ExcludeMissing:
		return 4
	case ExcludeFailed:
		return 3
	case ExcludeDegraded:
		return 2
	case ExcludeBuild:
		return 1
	default:
		return 0
	}
}

// Vetting summarizes the vetting stage: how many pages the crawl saw,
// how many survived into the analysis, and why the rest were excluded.
type Vetting struct {
	// PagesSeen is the number of (site, page) groups in the dataset.
	PagesSeen int `json:"pages_seen"`
	// PagesVetted is how many pages entered the analysis.
	PagesVetted int `json:"pages_vetted"`

	// Exclusion counts by reason; each excluded page is counted once,
	// under its most severe reason.
	ExcludedMissing  int `json:"excluded_missing"`
	ExcludedFailed   int `json:"excluded_failed"`
	ExcludedDegraded int `json:"excluded_degraded"`
	ExcludedBuild    int `json:"excluded_build"`
}

// Excluded is the total number of pages dropped by vetting.
func (v Vetting) Excluded() int {
	return v.ExcludedMissing + v.ExcludedFailed + v.ExcludedDegraded + v.ExcludedBuild
}

// ExclusionShare is the excluded fraction of all pages seen (0 when the
// dataset is empty).
func (v Vetting) ExclusionShare() float64 {
	if v.PagesSeen == 0 {
		return 0
	}
	return float64(v.Excluded()) / float64(v.PagesSeen)
}

// count books one page under its exclusion reason ("" = vetted).
func (v *Vetting) count(reason string) {
	v.PagesSeen++
	switch reason {
	case "":
		v.PagesVetted++
	case ExcludeMissing:
		v.ExcludedMissing++
	case ExcludeFailed:
		v.ExcludedFailed++
	case ExcludeDegraded:
		v.ExcludedDegraded++
	case ExcludeBuild:
		v.ExcludedBuild++
	}
}
