package core

import (
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/measurement"
)

// vettingVisit fabricates one visit with enough shape to build a tree
// when it is clean.
func vettingVisit(page, profile, status string) *measurement.Visit {
	v := &measurement.Visit{
		Site:    "a.example",
		PageURL: page,
		Profile: profile,
		Status:  status,
		Success: status != measurement.VisitFailed,
	}
	if v.Success {
		v.Requests = []measurement.Request{
			{URL: page, Type: measurement.TypeMainFrame},
			{URL: "https://a.example/app.js", Type: measurement.TypeScript, FrameURL: page},
		}
	}
	return v
}

// vettingDataset builds four pages, one per exclusion scenario, plus one
// clean page.
func vettingDataset(profiles []string) *dataset.Dataset {
	ds := dataset.New()
	add := func(page string, statusFor func(prof string, i int) string) {
		for i, p := range profiles {
			st := statusFor(p, i)
			if st == "absent" {
				continue
			}
			ds.Add(vettingVisit(page, p, st))
		}
	}
	clean := func(string, int) string { return measurement.VisitOK }
	add("https://a.example/clean", clean)
	add("https://a.example/missing", func(_ string, i int) string {
		if i == 0 {
			return "absent"
		}
		return measurement.VisitOK
	})
	add("https://a.example/failed", func(_ string, i int) string {
		if i == 1 {
			return measurement.VisitFailed
		}
		return measurement.VisitOK
	})
	add("https://a.example/degraded", func(_ string, i int) string {
		if i == 2 {
			return measurement.VisitDegraded
		}
		return measurement.VisitOK
	})
	return ds
}

func TestVettingClassifiesExclusions(t *testing.T) {
	profiles := []string{"Sim1", "Sim2", "Headless"}
	a, err := New(vettingDataset(profiles), nil, Options{Profiles: profiles})
	if err != nil {
		t.Fatal(err)
	}
	vet := a.Vetting()
	want := Vetting{
		PagesSeen: 4, PagesVetted: 1,
		ExcludedMissing: 1, ExcludedFailed: 1, ExcludedDegraded: 1,
	}
	if vet != want {
		t.Errorf("vetting = %+v, want %+v", vet, want)
	}
	if vet.Excluded() != 3 {
		t.Errorf("Excluded() = %d", vet.Excluded())
	}
	if got := vet.ExclusionShare(); got != 0.75 {
		t.Errorf("ExclusionShare() = %v", got)
	}
	if len(a.Pages()) != 1 || a.Pages()[0].Key.PageURL != "https://a.example/clean" {
		t.Errorf("vetted pages = %+v", a.Pages())
	}
	cs := a.CrawlSummary()
	if cs.Vetting != vet {
		t.Errorf("CrawlSummary.Vetting = %+v, want %+v", cs.Vetting, vet)
	}
}

// TestVettingAllowDegraded: the escape hatch admits truncated loads.
func TestVettingAllowDegraded(t *testing.T) {
	profiles := []string{"Sim1", "Sim2", "Headless"}
	a, err := New(vettingDataset(profiles), nil, Options{Profiles: profiles, AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	vet := a.Vetting()
	if vet.PagesVetted != 2 || vet.ExcludedDegraded != 0 {
		t.Errorf("AllowDegraded vetting = %+v", vet)
	}
}

// TestVettingReasonPriority: a page with both a missing and a degraded
// visit counts once, under the severer reason.
func TestVettingReasonPriority(t *testing.T) {
	profiles := []string{"Sim1", "Sim2", "Headless"}
	ds := dataset.New()
	ds.Add(vettingVisit("https://a.example/p", "Sim2", measurement.VisitDegraded))
	ds.Add(vettingVisit("https://a.example/p", "Headless", measurement.VisitFailed))
	ds.Add(vettingVisit("https://a.example/ok", "Sim1", measurement.VisitOK))
	ds.Add(vettingVisit("https://a.example/ok", "Sim2", measurement.VisitOK))
	ds.Add(vettingVisit("https://a.example/ok", "Headless", measurement.VisitOK))
	a, err := New(ds, nil, Options{Profiles: profiles})
	if err != nil {
		t.Fatal(err)
	}
	vet := a.Vetting()
	if vet.ExcludedMissing != 1 || vet.Excluded() != 1 {
		t.Errorf("priority violated: %+v", vet)
	}
}

// TestVettingLegacyRecords: records without a Status field (older
// datasets) classify from the Success flag alone.
func TestVettingLegacyRecords(t *testing.T) {
	profiles := []string{"Sim1", "Sim2"}
	ds := dataset.New()
	for _, p := range profiles {
		v := vettingVisit("https://a.example/p", p, measurement.VisitOK)
		v.Status = ""
		ds.Add(v)
	}
	a, err := New(ds, nil, Options{Profiles: profiles})
	if err != nil {
		t.Fatal(err)
	}
	if vet := a.Vetting(); vet.PagesVetted != 1 || vet.Excluded() != 0 {
		t.Errorf("legacy records mishandled: %+v", a.Vetting())
	}
}
