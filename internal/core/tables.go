package core

import (
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tranco"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// TreeOverview is Table 2: dimensions of the measured trees and the
// presence of nodes across profiles.
type TreeOverview struct {
	Nodes   stats.Summary
	Depth   stats.Summary
	Breadth stats.Summary

	// MeanPresence is the average number of profiles a node appears in.
	MeanPresence float64
	PresenceSD   float64
	ShareInAll   float64 // nodes present in every profile
	ShareInOne   float64 // nodes present in exactly one profile
	// PairwiseVariation is the mean share of differing data when comparing
	// two profiles (§4: "48% of the underlying data varies").
	PairwiseVariation float64
}

// TreeOverview computes Table 2 over all vetted trees.
func (a *Analysis) TreeOverview() TreeOverview {
	var nodes, depths, breadths []float64
	var presences []float64
	var inAll, inOne, total int
	var pairSim []float64

	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			nodes = append(nodes, float64(t.NodeCount()))
			depths = append(depths, float64(t.MaxDepth()))
			breadths = append(breadths, float64(t.Breadth()))
		}
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			total++
			presences = append(presences, float64(ni.Presence))
			if ni.Presence == len(pa.Trees) {
				inAll++
			}
			if ni.Presence == 1 {
				inOne++
			}
		}
		for i := 0; i < len(pa.Trees); i++ {
			for j := i + 1; j < len(pa.Trees); j++ {
				pairSim = append(pairSim, pa.Cmp.PairwisePresence(i, j))
			}
		}
	}

	ov := TreeOverview{
		Nodes:   stats.Summarize(nodes),
		Depth:   stats.Summarize(depths),
		Breadth: stats.Summarize(breadths),
	}
	ps := stats.Summarize(presences)
	ov.MeanPresence, ov.PresenceSD = ps.Mean, ps.SD
	if total > 0 {
		ov.ShareInAll = float64(inAll) / float64(total)
		ov.ShareInOne = float64(inOne) / float64(total)
	}
	ov.PairwiseVariation = 1 - stats.Mean(pairSim)
	return ov
}

// DepthSimilarityRow is one row of Table 3.
type DepthSimilarityRow struct {
	Label    string
	Category stats.SimilarityCategory
	Sim      float64
	SD       float64
	Max      float64
	Min      float64
}

// DepthSimilarityTable computes Table 3: node-set similarity per depth
// under the paper's five population filters, aggregated over pages.
func (a *Analysis) DepthSimilarityTable() []DepthSimilarityRow {
	fp, tp := tree.FirstParty, tree.ThirdParty
	filters := []struct {
		label string
		f     treediff.DepthFilter
	}{
		{"across all depths (all nodes)", treediff.DepthFilter{}},
		{"across all depths (only nodes with children)", treediff.DepthFilter{OnlyWithChildren: true}},
		{"nodes in all trees", treediff.DepthFilter{OnlyInAllTrees: true}},
		{"first-party nodes", treediff.DepthFilter{Party: &fp}},
		{"third-party nodes", treediff.DepthFilter{Party: &tp}},
	}
	rows := make([]DepthSimilarityRow, 0, len(filters))
	for _, flt := range filters {
		var sims []float64
		for _, pa := range a.pages {
			if sim, depths := pa.Cmp.DepthSimilarity(flt.f); depths > 0 {
				sims = append(sims, sim)
			}
		}
		s := stats.Summarize(sims)
		rows = append(rows, DepthSimilarityRow{
			Label:    flt.label,
			Category: stats.Categorize(s.Mean),
			Sim:      s.Mean,
			SD:       s.SD,
			Max:      s.Max,
			Min:      s.Min,
		})
	}
	return rows
}

// ResourceChainRow is one row of Table 4a/4b.
type ResourceChainRow struct {
	Type measurement.ResourceType
	// SameChainShare is the share of the type's nodes (present in all
	// trees, depth ≥ 2) loaded by an identical dependency chain everywhere
	// (Table 4a).
	SameChainShare float64
	// ParentSim is the type's mean parent similarity (Table 4b's
	// "similarity").
	ParentSim float64
	// N is the number of nodes behind the row.
	N int
}

// ResourceChainTable computes the per-resource-type dependency-chain
// stability of §4.2 (Tables 4a and 4b). Rows are sorted by descending
// SameChainShare; slice/sort by ParentSim for the 4b view.
func (a *Analysis) ResourceChainTable() []ResourceChainRow {
	type agg struct {
		n, same   int
		parentSim []float64
	}
	byType := map[measurement.ResourceType]*agg{}
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		if ni.Presence != len(pa.Trees) || ni.MeanDepth() < 2 {
			return
		}
		g := byType[ni.Type]
		if g == nil {
			g = &agg{}
			byType[ni.Type] = g
		}
		g.n++
		if ni.ChainEqualAll {
			g.same++
		}
		g.parentSim = append(g.parentSim, ni.ParentSim)
	})
	rows := make([]ResourceChainRow, 0, len(byType))
	for ty, g := range byType {
		if g.n < 5 {
			continue // too few observations to rank
		}
		rows = append(rows, ResourceChainRow{
			Type:           ty,
			SameChainShare: float64(g.same) / float64(g.n),
			ParentSim:      stats.Mean(g.parentSim),
			N:              g.n,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SameChainShare != rows[j].SameChainShare {
			return rows[i].SameChainShare > rows[j].SameChainShare
		}
		return rows[i].Type < rows[j].Type
	})
	return rows
}

// ChainStability reports the §4.2 headline chain statistics.
type ChainStability struct {
	// SameChainShareAll: nodes (in all trees) with identical chains.
	SameChainShareAll float64
	// SameChainShareDeep: the same excluding depth-one nodes.
	SameChainShareDeep float64
	// UniqueChainShare: nodes with a chain observed in only one profile.
	UniqueChainShare float64
	// SameParentShare: nodes at the same depth in all trees loaded by the
	// same parent everywhere (the "61%" figure).
	SameParentShare float64
	// FirstParty/ThirdParty/Tracking/NonTracking same-chain shares.
	SameChainFP, SameChainTP          float64
	SameChainTracking, SameChainOther float64
}

// ChainStability computes the dependency-chain stability statistics.
func (a *Analysis) ChainStability() ChainStability {
	var all, same, deepN, deepSame, uniqueAny int
	var fpN, fpSame, tpN, tpSame, trN, trSame, ntN, ntSame int
	var sameDepthN, sameParentN int
	a.eachNonRootNode(func(pa *PageAnalysis, ni *treediff.NodeInfo) {
		if ni.Presence != len(pa.Trees) {
			return
		}
		all++
		if ni.ChainEqualAll {
			same++
		}
		if ni.UniqueChains > 0 {
			uniqueAny++
		}
		if ni.MeanDepth() >= 2 {
			deepN++
			if ni.ChainEqualAll {
				deepSame++
			}
			if ni.Party == tree.FirstParty {
				fpN++
				if ni.ChainEqualAll {
					fpSame++
				}
			} else {
				tpN++
				if ni.ChainEqualAll {
					tpSame++
				}
			}
			if ni.Tracking {
				trN++
				if ni.ChainEqualAll {
					trSame++
				}
			} else {
				ntN++
				if ni.ChainEqualAll {
					ntSame++
				}
			}
		}
		if ni.SameDepth && ni.MeanDepth() >= 2 {
			sameDepthN++
			if ni.SameParentEverywhere {
				sameParentN++
			}
		}
	})
	share := func(num, den int) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	return ChainStability{
		SameChainShareAll:  share(same, all),
		SameChainShareDeep: share(deepSame, deepN),
		UniqueChainShare:   share(uniqueAny, all),
		SameParentShare:    share(sameParentN, sameDepthN),
		SameChainFP:        share(fpSame, fpN),
		SameChainTP:        share(tpSame, tpN),
		SameChainTracking:  share(trSame, trN),
		SameChainOther:     share(ntSame, ntN),
	}
}

// ProfileTotalsRow is one row of Table 5.
type ProfileTotalsRow struct {
	Profile    string
	Nodes      int
	ThirdParty int
	Tracker    int
	MaxDepth   int
	MaxBreadth int
}

// ProfileTotals computes Table 5 over the vetted trees.
func (a *Analysis) ProfileTotals() []ProfileTotalsRow {
	rows := make([]ProfileTotalsRow, len(a.profiles))
	idx := map[string]int{}
	for i, p := range a.profiles {
		rows[i].Profile = p
		idx[p] = i
	}
	for _, pa := range a.pages {
		for _, t := range pa.Trees {
			r := &rows[idx[t.Profile]]
			r.Nodes += t.NodeCount()
			for _, n := range t.Nodes() {
				if n.Party == tree.ThirdParty {
					r.ThirdParty++
				}
				if n.Tracking {
					r.Tracker++
				}
			}
			if d := t.MaxDepth(); d > r.MaxDepth {
				r.MaxDepth = d
			}
			if b := t.Breadth(); b > r.MaxBreadth {
				r.MaxBreadth = b
			}
		}
	}
	return rows
}

// ProfilePairRow is one column of Table 6: profile `Other` compared to the
// reference profile (Sim1).
type ProfilePairRow struct {
	Other string

	FPChildrenPerfect float64
	FPChildrenNone    float64
	TPChildrenPerfect float64
	TPChildrenNone    float64
	FPParentPerfect   float64
	FPParentNone      float64
	TPParentPerfect   float64
	TPParentNone      float64

	// MeanParentSim: nodes at depth ≥ 2 (✻ in the paper's table).
	MeanParentSim float64
	// MeanChildSim: nodes with at least one child (✚).
	MeanChildSim float64
}

// ProfilePairTable computes Table 6: every profile against the reference
// (by name, typically "Sim1"). Pairs are compared on nodes present in both
// trees of a page.
func (a *Analysis) ProfilePairTable(reference string) []ProfilePairRow {
	if a.profileIndex(reference) < 0 {
		return nil
	}
	var rows []ProfilePairRow
	for _, other := range a.profiles {
		if other == reference {
			continue
		}
		row := ProfilePairRow{Other: other}
		var fpChildPerfect, fpChildNone, fpChildN int
		var tpChildPerfect, tpChildNone, tpChildN int
		var fpParPerfect, fpParNone, fpParN int
		var tpParPerfect, tpParNone, tpParN int
		var parentSims, childSims []float64

		for _, pa := range a.pages {
			ref, oth := pa.TreeFor(reference), pa.TreeFor(other)
			if ref == nil || oth == nil {
				continue
			}
			pair := treediff.Compare([]*tree.Tree{ref, oth})
			rootKey := ref.Root.Key
			for key, ni := range pair.Nodes {
				if key == rootKey || ni.Presence != 2 {
					continue
				}
				childJ := ni.ChildSim
				parJ := ni.ParentSim
				if ni.Party == tree.FirstParty {
					fpChildN++
					if childJ == 1 {
						fpChildPerfect++
					}
					if childJ == 0 {
						fpChildNone++
					}
					fpParN++
					if parJ == 1 {
						fpParPerfect++
					}
					if parJ == 0 {
						fpParNone++
					}
				} else {
					tpChildN++
					if childJ == 1 {
						tpChildPerfect++
					}
					if childJ == 0 {
						tpChildNone++
					}
					tpParN++
					if parJ == 1 {
						tpParPerfect++
					}
					if parJ == 0 {
						tpParNone++
					}
				}
				if ni.MeanDepth() >= 2 {
					parentSims = append(parentSims, parJ)
				}
				if ni.HasChildAnywhere {
					childSims = append(childSims, childJ)
				}
			}
		}
		share := func(n, d int) float64 {
			if d == 0 {
				return 0
			}
			return float64(n) / float64(d)
		}
		row.FPChildrenPerfect = share(fpChildPerfect, fpChildN)
		row.FPChildrenNone = share(fpChildNone, fpChildN)
		row.TPChildrenPerfect = share(tpChildPerfect, tpChildN)
		row.TPChildrenNone = share(tpChildNone, tpChildN)
		row.FPParentPerfect = share(fpParPerfect, fpParN)
		row.FPParentNone = share(fpParNone, fpParN)
		row.TPParentPerfect = share(tpParPerfect, tpParN)
		row.TPParentNone = share(tpParNone, tpParN)
		row.MeanParentSim = stats.Mean(parentSims)
		row.MeanChildSim = stats.Mean(childSims)
		rows = append(rows, row)
	}
	return rows
}

// RankBucketRow is one row of Table 7 (Appendix F).
type RankBucketRow struct {
	Bucket    string
	MeanNodes float64
	ChildSim  float64
	ParentSim float64
	Pages     int
}

// RankBucketResult is Table 7 plus its Kruskal-Wallis tests.
type RankBucketResult struct {
	Rows []RankBucketRow
	// NodesTest tests total nodes across buckets; SimTest tests child
	// similarity across buckets.
	NodesTest stats.TestResult
	SimTest   stats.TestResult
	// Epsilon2 is the effect size of SimTest (the paper reports ε² = .002:
	// significant but practically negligible).
	Epsilon2  float64
	TestError error
}

// RankBuckets computes the Appendix F popularity analysis. boundaries are
// the rank-bucket upper bounds (tranco.PaperBoundaries or scaled).
func (a *Analysis) RankBuckets(boundaries []int) RankBucketResult {
	n := len(boundaries)
	type agg struct {
		nodes, child, parent []float64
	}
	aggs := make([]agg, n)
	for _, pa := range a.pages {
		rank, ok := a.siteRank[pa.Key.Site]
		if !ok {
			continue
		}
		bi := tranco.BucketIndex(rank, boundaries)
		if bi < 0 {
			continue
		}
		var nodeCount float64
		for _, t := range pa.Trees {
			nodeCount += float64(t.NodeCount())
		}
		nodeCount /= float64(len(pa.Trees))
		var childSims, parentSims []float64
		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			if ni.HasChildAnywhere {
				childSims = append(childSims, ni.ChildSim)
			}
			if ni.MeanDepth() >= 2 {
				parentSims = append(parentSims, ni.ParentSim)
			}
		}
		aggs[bi].nodes = append(aggs[bi].nodes, nodeCount)
		if len(childSims) > 0 {
			aggs[bi].child = append(aggs[bi].child, stats.Mean(childSims))
		}
		if len(parentSims) > 0 {
			aggs[bi].parent = append(aggs[bi].parent, stats.Mean(parentSims))
		}
	}
	res := RankBucketResult{}
	var nodeGroups, simGroups [][]float64
	for i := range aggs {
		name := ""
		if i < len(tranco.BucketNames) {
			name = tranco.BucketNames[i]
		}
		res.Rows = append(res.Rows, RankBucketRow{
			Bucket:    name,
			MeanNodes: stats.Mean(aggs[i].nodes),
			ChildSim:  stats.Mean(aggs[i].child),
			ParentSim: stats.Mean(aggs[i].parent),
			Pages:     len(aggs[i].nodes),
		})
		if len(aggs[i].nodes) > 0 {
			nodeGroups = append(nodeGroups, aggs[i].nodes)
			simGroups = append(simGroups, aggs[i].child)
		}
	}
	if len(nodeGroups) >= 2 {
		var err error
		res.NodesTest, err = stats.KruskalWallis(nodeGroups...)
		if err == nil {
			res.SimTest, err = stats.KruskalWallis(simGroups...)
		}
		if err == nil {
			res.Epsilon2 = stats.EpsilonSquared(res.SimTest)
		}
		res.TestError = err
	}
	return res
}
