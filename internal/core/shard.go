package core

// This file defines the shard plan of the distributed analysis: a stable
// hash partition of the canonical page-key space. Sharding happens at
// page granularity because the whole pipeline is page-pure — every visit,
// tree, comparison, and trace span is a function of (seed, profile, page)
// — so any partition of the pages partitions the work without changing a
// single byte of the merged output.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"webmeasure/internal/dataset"
)

// ShardPlan is a deterministic partition of the page-key space into Count
// shards. Assignment is a pure function of (Seed, page key): the same plan
// maps the same page to the same shard on every worker, every run, and in
// every input order. All shards of one experiment must agree on the plan.
type ShardPlan struct {
	// Count is the number of shards (>= 1).
	Count int `json:"count"`
	// Seed individualizes the page→shard hash so distinct experiments
	// cannot accidentally share partial results.
	Seed int64 `json:"seed"`
}

// Validate reports whether the plan is usable.
func (p ShardPlan) Validate() error {
	if p.Count < 1 {
		return fmt.Errorf("core: shard plan needs at least 1 shard, got %d", p.Count)
	}
	return nil
}

// String renders the plan for logs and errors.
func (p ShardPlan) String() string {
	return fmt.Sprintf("shards=%d seed=%d", p.Count, p.Seed)
}

// Assign maps a page key to its shard in [0, Count). FNV-1a over the
// seeded canonical key, the same derivation family webgen and trace use.
func (p ShardPlan) Assign(key dataset.PageKey) int {
	if p.Count <= 1 {
		return 0
	}
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(p.Seed))
	h.Write(seed[:])
	h.Write([]byte(key.Site))
	h.Write([]byte{0})
	h.Write([]byte(key.PageURL))
	return int(h.Sum64() % uint64(p.Count))
}

// Keep returns the page predicate of one shard, in the (site, pageURL)
// form the crawler's page filter consumes.
func (p ShardPlan) Keep(shard int) func(site, pageURL string) bool {
	return func(site, pageURL string) bool {
		return p.Assign(dataset.PageKey{Site: site, PageURL: pageURL}) == shard
	}
}
