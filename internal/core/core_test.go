package core

import (
	"sync"
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tranco"
	"webmeasure/internal/tree"
)

// sharedAnalysis caches one experiment across the package's tests.
var (
	sharedOnce sync.Once
	shared     *Analysis
)

func sharedExperiment(t testing.TB) *Analysis {
	sharedOnce.Do(func() {
		shared = runExperiment(t, 50, 8, 42)
	})
	if shared == nil {
		t.Fatal("shared experiment failed to build")
	}
	return shared
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dataset.New(), nil, Options{}); err == nil {
		t.Error("empty dataset should error")
	}
	ds := dataset.New()
	ds.Add(&measurement.Visit{Site: "a.example", PageURL: "https://a.example/", Profile: "Sim1", Success: false, Failure: "x"})
	if _, err := New(ds, nil, Options{}); err == nil {
		t.Error("dataset without vetted pages should error")
	}
}

func TestAnalysisStructure(t *testing.T) {
	a := sharedExperiment(t)
	if len(a.Profiles()) != 5 {
		t.Fatalf("profiles = %v", a.Profiles())
	}
	if len(a.Pages()) == 0 {
		t.Fatal("no vetted pages")
	}
	for _, pa := range a.Pages() {
		if len(pa.Trees) != 5 || pa.Cmp == nil {
			t.Fatalf("page %v malformed", pa.Key)
		}
		for i, tr := range pa.Trees {
			if tr.Profile != a.Profiles()[i] {
				t.Fatalf("tree order violated: %s at %d", tr.Profile, i)
			}
			if tr.PageURL != pa.Key.PageURL {
				t.Fatalf("tree page mismatch")
			}
		}
	}
	if a.profileIndex("Sim1") < 0 || a.profileIndex("nope") != -1 {
		t.Error("profileIndex broken")
	}
}

func TestCrawlSummary(t *testing.T) {
	a := sharedExperiment(t)
	cs := a.CrawlSummary()
	if cs.Sites == 0 || cs.Pages == 0 || cs.Visits != cs.Pages*5 {
		t.Errorf("summary inconsistent: %+v", cs)
	}
	if cs.VettedPages != len(a.Pages()) {
		t.Errorf("vetted mismatch: %d vs %d", cs.VettedPages, len(a.Pages()))
	}
	if cs.VettedShare <= 0 || cs.VettedShare >= 1 {
		t.Errorf("vetted share = %v", cs.VettedShare)
	}
	for p, n := range cs.VisitsPerProfile {
		if n != cs.Pages {
			t.Errorf("profile %s visits %d != pages %d", p, n, cs.Pages)
		}
	}
	if cs.PagesPerSite.Mean <= 0 {
		t.Error("pages per site not computed")
	}
}

func TestTreeOverviewInvariants(t *testing.T) {
	a := sharedExperiment(t)
	ov := a.TreeOverview()
	if ov.Nodes.Mean <= 0 || ov.Nodes.Min < 1 || ov.Nodes.Max < ov.Nodes.Mean {
		t.Errorf("node summary: %+v", ov.Nodes)
	}
	if ov.Depth.Mean <= 0 || ov.Breadth.Mean <= 0 {
		t.Errorf("depth/breadth: %+v %+v", ov.Depth, ov.Breadth)
	}
	if ov.MeanPresence < 1 || ov.MeanPresence > 5 {
		t.Errorf("presence mean = %v", ov.MeanPresence)
	}
	if s := ov.ShareInAll + ov.ShareInOne; s <= 0 || s > 1 {
		t.Errorf("presence shares: all=%v one=%v", ov.ShareInAll, ov.ShareInOne)
	}
	if ov.PairwiseVariation <= 0 || ov.PairwiseVariation >= 1 {
		t.Errorf("pairwise variation = %v", ov.PairwiseVariation)
	}
}

func TestDepthSimilarityTableShape(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.DepthSimilarityTable()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sim < 0 || r.Sim > 1 || r.Min > r.Max {
			t.Errorf("row %q out of range: %+v", r.Label, r)
		}
		if r.Category != stats.Categorize(r.Sim) {
			t.Errorf("row %q category mismatch", r.Label)
		}
	}
	byLabel := map[string]DepthSimilarityRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Paper orderings: nodes-in-all-trees is the most similar; first-party
	// beats third-party.
	if byLabel["nodes in all trees"].Sim < byLabel["across all depths (all nodes)"].Sim {
		t.Error("nodes-in-all-trees must dominate all-nodes")
	}
	if byLabel["first-party nodes"].Sim <= byLabel["third-party nodes"].Sim {
		t.Error("first-party similarity must exceed third-party")
	}
}

func TestResourceChainTable(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.ResourceChainTable()
	if len(rows) < 4 {
		t.Fatalf("too few resource types: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SameChainShare > rows[i-1].SameChainShare {
			t.Fatal("rows not sorted by same-chain share")
		}
	}
	for _, r := range rows {
		if r.SameChainShare < 0 || r.SameChainShare > 1 || r.ParentSim < 0 || r.ParentSim > 1 {
			t.Errorf("row %v out of range: %+v", r.Type, r)
		}
		if r.N < 5 {
			t.Errorf("row %v has too few observations", r.Type)
		}
	}
}

func TestProfileTotals(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.ProfileTotals()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ProfileTotalsRow{}
	for _, r := range rows {
		byName[r.Profile] = r
		if r.Nodes <= 0 || r.ThirdParty <= 0 || r.Tracker <= 0 {
			t.Errorf("profile %s degenerate: %+v", r.Profile, r)
		}
		if r.ThirdParty >= r.Nodes || r.Tracker >= r.Nodes {
			t.Errorf("profile %s counts inconsistent: %+v", r.Profile, r)
		}
	}
	// §4.4: interaction grows trees; NoAction must be smallest.
	for _, name := range []string{"Old", "Sim1", "Sim2", "Headless"} {
		if byName["NoAction"].Nodes >= byName[name].Nodes {
			t.Errorf("NoAction (%d) not smaller than %s (%d)",
				byName["NoAction"].Nodes, name, byName[name].Nodes)
		}
		if byName["NoAction"].Tracker >= byName[name].Tracker {
			t.Errorf("NoAction trackers (%d) not fewer than %s (%d)",
				byName["NoAction"].Tracker, name, byName[name].Tracker)
		}
	}
}

func TestProfilePairTable(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.ProfilePairTable("Sim1")
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for name, v := range map[string]float64{
			"FPChildrenPerfect": r.FPChildrenPerfect, "TPChildrenPerfect": r.TPChildrenPerfect,
			"FPParentPerfect": r.FPParentPerfect, "TPParentPerfect": r.TPParentPerfect,
			"MeanParentSim": r.MeanParentSim, "MeanChildSim": r.MeanChildSim,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s.%s = %v out of range", r.Other, name, v)
			}
		}
		// First-party embeddings are more reproducible than third-party.
		if r.FPParentPerfect <= r.TPParentPerfect {
			t.Errorf("%s: FP parent perfect (%v) should exceed TP (%v)",
				r.Other, r.FPParentPerfect, r.TPParentPerfect)
		}
	}
	if rows := a.ProfilePairTable("missing"); rows != nil {
		t.Error("unknown reference should return nil")
	}
}

func TestNoActionShowsLargestDeviation(t *testing.T) {
	a := sharedExperiment(t)
	rows := a.ProfilePairTable("Sim1")
	byName := map[string]ProfilePairRow{}
	for _, r := range rows {
		byName[r.Other] = r
	}
	// §4.4 / Table 6: NoAction shows the lowest child similarity of all
	// profiles compared against Sim1.
	noa := byName["NoAction"]
	for _, other := range []string{"Sim2", "Old", "Headless"} {
		if noa.MeanChildSim >= byName[other].MeanChildSim {
			t.Errorf("NoAction child sim (%v) should be below %s (%v)",
				noa.MeanChildSim, other, byName[other].MeanChildSim)
		}
	}
}

func TestRankBuckets(t *testing.T) {
	a := sharedExperiment(t)
	res := a.RankBuckets(tranco.ScaledBoundaries(500))
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	total := 0
	for _, r := range res.Rows {
		total += r.Pages
		if r.Pages > 0 && (r.MeanNodes <= 0 || r.ChildSim <= 0 || r.ChildSim > 1) {
			t.Errorf("bucket %q degenerate: %+v", r.Bucket, r)
		}
	}
	if total != len(a.Pages()) {
		t.Errorf("bucketed pages %d != vetted %d", total, len(a.Pages()))
	}
	if res.TestError != nil {
		t.Errorf("tests failed: %v", res.TestError)
	}
	if res.Epsilon2 < 0 || res.Epsilon2 > 1 {
		t.Errorf("ε² = %v", res.Epsilon2)
	}
}

func TestFigures(t *testing.T) {
	a := sharedExperiment(t)

	h := a.DepthBreadthHistogram()
	if h.Total() != len(a.Pages())*5 {
		t.Errorf("Fig1 total %d != trees %d", h.Total(), len(a.Pages())*5)
	}

	d := a.SimilarityDistribution()
	if d.Children.Total() == 0 || d.Parents.Total() == 0 {
		t.Error("Fig2 histograms empty")
	}

	vols := a.NodeTypeVolume()
	if len(vols) != 8 {
		t.Fatalf("Fig3 rows = %d", len(vols))
	}
	for _, r := range vols {
		if r.Nodes == 0 {
			continue
		}
		if !almostOne(r.FirstParty+r.ThirdParty) || !almostOne(r.Tracking+r.NonTracking) {
			t.Errorf("Fig3 depth %s shares don't sum to 1: %+v", r.Depth, r)
		}
	}
	// Depth 0 is the visited page: first-party by construction.
	if vols[0].FirstParty < 0.99 {
		t.Errorf("depth-0 first-party share = %v", vols[0].FirstParty)
	}
	// Deeper levels are dominated by third parties (§4.3: 95% from depth 3).
	if vols[3].ThirdParty < 0.6 {
		t.Errorf("depth-3 third-party share = %v, want > 0.6", vols[3].ThirdParty)
	}

	sim := a.SimilarityByDepth()
	if len(sim) != 6 {
		t.Fatalf("Fig4 rows = %d", len(sim))
	}

	f5 := a.TypeSharesBySimilarity("parent", 8)
	if len(f5.Series) != 5 || len(f5.BinEdges) != 9 {
		t.Fatalf("Fig5 shape: %d series, %d edges", len(f5.Series), len(f5.BinEdges))
	}
	f5c := a.TypeSharesBySimilarity("children", 8)
	if f5c.Kind != "children" {
		t.Error("Fig5b kind")
	}

	f7 := a.TypeDepthSimilarity(8)
	if len(f7) == 0 {
		t.Fatal("Fig7 empty")
	}
	for _, r := range f7 {
		if r.Depth < 0 || r.Depth > 8 || r.ParentSim < 0 || r.ParentSim > 1 {
			t.Errorf("Fig7 row out of range: %+v", r)
		}
	}

	f8 := a.ChildrenByDepth(20, false)
	if len(f8) == 0 {
		t.Fatal("Fig8 empty")
	}
	f8c := a.ChildrenByDepth(20, true)
	for i, r := range f8c {
		if r.Mean < 1 {
			t.Errorf("Fig8 with-children row %d mean %v < 1", i, r.Mean)
		}
	}

	cs := a.ChildStats()
	if cs.RootChildren.Mean <= cs.PerNode.Mean {
		t.Error("roots must average more children than generic nodes")
	}
	if cs.ShareLeafDeep < 0.5 {
		t.Errorf("most non-root nodes should have ≤1 child: %v", cs.ShareLeafDeep)
	}
}

func almostOne(x float64) bool { return x > 0.999 && x < 1.001 }

func TestSubframeImpact(t *testing.T) {
	a := sharedExperiment(t)
	s := a.SubframeImpact()
	if s.WithSubframes == 0 || s.WithoutSubframes == 0 {
		t.Skipf("degenerate split: %+v", s)
	}
	// §4.2: pages without subframes are more similar.
	if s.ChildSimWithout <= s.ChildSimWith {
		t.Errorf("subframe pages should be less similar: with=%v without=%v",
			s.ChildSimWith, s.ChildSimWithout)
	}
}

func TestChainStabilityInvariants(t *testing.T) {
	a := sharedExperiment(t)
	c := a.ChainStability()
	if c.SameChainShareAll <= c.SameChainShareDeep {
		t.Errorf("including depth-one nodes must raise same-chain share: all=%v deep=%v",
			c.SameChainShareAll, c.SameChainShareDeep)
	}
	// §4.2: first-party chains are more stable than third-party; tracking
	// chains the least stable.
	if c.SameChainFP <= c.SameChainTP {
		t.Errorf("FP chains (%v) should beat TP (%v)", c.SameChainFP, c.SameChainTP)
	}
	if c.SameChainTracking >= c.SameChainOther {
		t.Errorf("tracking chains (%v) should trail non-tracking (%v)",
			c.SameChainTracking, c.SameChainOther)
	}
	if c.UniqueChainShare <= 0 {
		t.Error("some unique chains must exist")
	}
}

func TestCaseStudies(t *testing.T) {
	a := sharedExperiment(t)

	un := a.UniqueNodes()
	if un.UniqueShare <= 0.02 || un.UniqueShare >= 0.6 {
		t.Errorf("unique share = %v", un.UniqueShare)
	}
	if un.ThirdPartyShare < 0.5 {
		t.Errorf("unique nodes should be mostly third-party: %v", un.ThirdPartyShare)
	}
	if len(un.TypeShares) == 0 || len(un.TopHosts) == 0 {
		t.Error("unique node breakdowns empty")
	}

	ck := a.CookieStudy("NoAction")
	if ck.TotalObservations == 0 || ck.DistinctCookies == 0 {
		t.Fatal("no cookies observed")
	}
	if ck.PerProfile["NoAction"] >= ck.PerProfile["Sim1"] {
		t.Errorf("NoAction should observe fewest cookies: %+v", ck.PerProfile)
	}
	if ck.ShareInAllProfiles+ck.ShareInOneProfile > 1 {
		t.Errorf("cookie shares inconsistent: %+v", ck)
	}
	// §5.2: comparing interaction profiles against NoAction yields lower
	// similarity than the overall comparison.
	if ck.InteractionVsNone.Mean >= ck.MeanJaccard.Mean {
		t.Errorf("vs-NoAction similarity (%v) should be below overall (%v)",
			ck.InteractionVsNone.Mean, ck.MeanJaccard.Mean)
	}
	if ck.AttributeMismatch == 0 {
		t.Error("some cookies must differ in security attributes (§5.2)")
	}

	tr := a.TrackingStudy()
	if tr.TrackingShare <= 0.05 || tr.TrackingShare >= 0.6 {
		t.Errorf("tracking share = %v", tr.TrackingShare)
	}
	if tr.TrackingChildSim.Mean >= tr.NonTrackingChildSim.Mean {
		t.Errorf("tracking children (%v) should be less similar than non-tracking (%v)",
			tr.TrackingChildSim.Mean, tr.NonTrackingChildSim.Mean)
	}
	if tr.TrackingParentSim.Mean >= tr.NonTrackingParentSim.Mean {
		t.Errorf("tracking parents less similar expected: %v vs %v",
			tr.TrackingParentSim.Mean, tr.NonTrackingParentSim.Mean)
	}
	if tr.TriggeredByTracker < 0.3 {
		t.Errorf("trackers are mostly triggered by trackers: %v", tr.TriggeredByTracker)
	}
	var depthSum float64
	for _, s := range tr.DepthShares {
		depthSum += s
	}
	if !almostOne(depthSum) {
		t.Errorf("tracking depth shares sum to %v", depthSum)
	}
}

func TestRunTests(t *testing.T) {
	a := sharedExperiment(t)
	res := a.RunTests("Sim1", "NoAction")
	if res.ChildrenVsSimilarityErr != nil {
		t.Errorf("Wilcoxon failed: %v", res.ChildrenVsSimilarityErr)
	} else if !res.ChildrenVsSimilarity.Significant() {
		t.Errorf("children-vs-similarity not significant: p=%v", res.ChildrenVsSimilarity.P)
	}
	if res.InteractionDepthErr != nil {
		t.Errorf("Mann-Whitney failed: %v", res.InteractionDepthErr)
	}
	if res.TypeEffectErr != nil {
		t.Errorf("Kruskal-Wallis failed: %v", res.TypeEffectErr)
	} else if !res.TypeEffect.Significant() {
		t.Errorf("type effect not significant: p=%v", res.TypeEffect.P)
	}
	// Unknown profiles degrade gracefully.
	res = a.RunTests("nope", "missing")
	if res.InteractionDepthErr == nil {
		t.Error("missing profiles should error")
	}
}

func TestCompareSameConfig(t *testing.T) {
	a := sharedExperiment(t)
	sc := a.CompareSameConfig("Sim1", "Sim2")
	if sc.Pages != len(a.Pages()) {
		t.Errorf("pages = %d", sc.Pages)
	}
	if sc.UpperSim <= 0 || sc.UpperSim > 1 {
		t.Errorf("upper sim = %v", sc.UpperSim)
	}
	// §4.4: identical configurations still differ, more so on deep levels.
	if sc.UpperSim >= 0.995 {
		t.Errorf("identical profiles suspiciously identical: %v", sc.UpperSim)
	}
	if bad := a.CompareSameConfig("x", "y"); bad.Pages != 0 {
		t.Error("unknown profiles should yield zero result")
	}
}

func TestProfilePairwiseMatrix(t *testing.T) {
	a := sharedExperiment(t)
	names, m := a.ProfilePairwiseMatrix()
	if len(names) != 5 || len(m) != 5 {
		t.Fatalf("matrix shape: %d names, %d rows", len(names), len(m))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Errorf("entry (%d,%d) out of range: %v", i, j, m[i][j])
			}
			if i != j && m[i][j] == 0 {
				t.Errorf("entry (%d,%d) is zero — pages missing", i, j)
			}
		}
	}
	// NoAction's row should average lowest (the outlier setup).
	avg := func(i int) float64 {
		var s float64
		for j := range m[i] {
			if j != i {
				s += m[i][j]
			}
		}
		return s / float64(len(m[i])-1)
	}
	noa := -1
	for i, n := range names {
		if n == "NoAction" {
			noa = i
		}
	}
	if noa < 0 {
		t.Fatal("NoAction missing")
	}
	for i, n := range names {
		if i != noa && avg(noa) >= avg(i) {
			t.Errorf("NoAction row mean (%.3f) should be lowest; %s has %.3f", avg(noa), n, avg(i))
		}
	}
}

func TestPartialVettingOption(t *testing.T) {
	a := sharedExperiment(t)
	ds := a.Dataset()
	strictPages := len(a.Pages())
	loose, err := New(ds, nil, Options{Profiles: a.Profiles(), MinSuccessProfiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Pages()) <= strictPages {
		t.Errorf("loose vetting pages %d should exceed strict %d", len(loose.Pages()), strictPages)
	}
	for _, pa := range loose.Pages() {
		if len(pa.Trees) < 2 {
			t.Fatalf("page %v admitted with %d trees", pa.Key, len(pa.Trees))
		}
		for _, tr := range pa.Trees {
			if pa.TreeFor(tr.Profile) != tr {
				t.Fatal("TreeFor inconsistent under partial vetting")
			}
		}
	}
	// Totals still work (keyed by profile name, not index).
	for _, row := range loose.ProfileTotals() {
		if row.Nodes == 0 {
			t.Errorf("profile %s empty under partial vetting", row.Profile)
		}
	}
}

func TestCustomTreeBuilderOption(t *testing.T) {
	a := sharedExperiment(t)
	raw, err := New(a.Dataset(), nil, Options{
		Profiles:    a.Profiles(),
		TreeBuilder: &tree.Builder{RawURLIdentity: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Raw identity inflates node counts (session variants stay distinct).
	base := a.TreeOverview().Nodes.Mean
	inflated := raw.TreeOverview().Nodes.Mean
	if inflated <= base {
		t.Errorf("raw identity should inflate nodes: %v vs %v", inflated, base)
	}
}
