package core

import (
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// The paper's first takeaway asks for a metric that assesses the expected
// "measurement fluctuation" of a Web experiment — how much of what one
// setup observes would a repetition reproduce? StabilityReport implements
// such a metric on top of the cross-comparison: per-page stability scores,
// the expected discovery rate of an additional measurement, and the
// stability decomposition by node category that tells a study designer
// which phenomena are safe to measure once (§4.4, §8 takeaway 1).

// StabilityReport quantifies an experiment's expected fluctuation.
type StabilityReport struct {
	// PageStability summarizes per-page stability: the mean share of a
	// tree's nodes that a second, simultaneously captured tree also
	// contains (pairwise-mean Jaccard of node sets). 1 = a measurement
	// reproduces itself perfectly.
	PageStability stats.Summary
	// Categories counts pages by similarity category of their stability.
	HighPages, MediumPages, LowPages int

	// ExpectedDiscovery estimates the share of *new* node mass one more
	// measurement would surface, via the Good–Turing estimator on
	// presence counts: nodes seen by exactly one of k profiles divided by
	// all node observations.
	ExpectedDiscovery float64

	// ByCategory decomposes stability by node population; a study whose
	// phenomenon lives in a low-stability category needs repeated
	// measurements (§8 takeaway 3: know whether the phenomenon is in the
	// dynamic or static part of a page).
	ByCategory []CategoryStability
}

// CategoryStability is one node population's stability.
type CategoryStability struct {
	Category string
	// MeanPresence is the average share of profiles observing the node.
	MeanPresence float64
	// ChildSim is the population's mean child similarity.
	ChildSim float64
	Nodes    int
}

// Stability computes the fluctuation metric over the vetted pages.
func (a *Analysis) Stability() StabilityReport {
	defer a.phaseTimer("stability")()
	var rep StabilityReport
	var pageScores []float64

	type agg struct {
		presence []float64
		childSim []float64
	}
	categories := map[string]*agg{}
	bump := func(cat string, ni *treediff.NodeInfo, trees int) {
		g := categories[cat]
		if g == nil {
			g = &agg{}
			categories[cat] = g
		}
		g.presence = append(g.presence, float64(ni.Presence)/float64(trees))
		if ni.HasChildAnywhere && ni.Presence >= 2 {
			g.childSim = append(g.childSim, ni.ChildSim)
		}
	}

	var singletons, observations int

	for _, pa := range a.pages {
		k := len(pa.Trees)
		var pairSum float64
		pairs := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				pairSum += pa.Cmp.PairwisePresence(i, j)
				pairs++
			}
		}
		if pairs > 0 {
			score := pairSum / float64(pairs)
			pageScores = append(pageScores, score)
			switch stats.Categorize(score) {
			case stats.SimilarityHigh:
				rep.HighPages++
			case stats.SimilarityMedium:
				rep.MediumPages++
			default:
				rep.LowPages++
			}
		}

		rootKey := pa.Trees[0].Root.Key
		for key, ni := range pa.Cmp.Nodes {
			if key == rootKey {
				continue
			}
			observations += ni.Presence
			if ni.Presence == 1 {
				singletons++
			}
			bump(categoryOf(ni), ni, k)
		}
	}

	rep.PageStability = stats.Summarize(pageScores)
	if observations > 0 {
		rep.ExpectedDiscovery = float64(singletons) / float64(observations)
	}
	for cat, g := range categories {
		rep.ByCategory = append(rep.ByCategory, CategoryStability{
			Category:     cat,
			MeanPresence: stats.Mean(g.presence),
			ChildSim:     stats.Mean(g.childSim),
			Nodes:        len(g.presence),
		})
	}
	sort.Slice(rep.ByCategory, func(i, j int) bool {
		if rep.ByCategory[i].MeanPresence != rep.ByCategory[j].MeanPresence {
			return rep.ByCategory[i].MeanPresence > rep.ByCategory[j].MeanPresence
		}
		return rep.ByCategory[i].Category < rep.ByCategory[j].Category
	})
	return rep
}

// categoryOf buckets a node for the stability decomposition.
func categoryOf(ni *treediff.NodeInfo) string {
	party := "first-party"
	if ni.Party == tree.ThirdParty {
		party = "third-party"
	}
	switch {
	case ni.Tracking:
		return party + " tracking"
	case ni.Type == measurement.TypeSubFrame:
		return party + " subframe"
	case ni.Type.CanHaveChildren():
		return party + " active" // scripts, stylesheets, XHR, sockets
	default:
		return party + " static" // images, fonts, text, media
	}
}

// RequiredMeasurements estimates, from the presence distribution, how many
// repeated measurements are needed so that the expected share of
// still-unseen node mass drops below epsilon. It extrapolates the
// Good–Turing discovery rate geometrically: each further measurement
// uncovers roughly the same *fraction* of the remaining unseen mass as the
// last one did. A crude planning tool for §8 takeaway 4 ("use different
// profiles and execute multiple measurements").
func (r StabilityReport) RequiredMeasurements(epsilon float64) int {
	if epsilon <= 0 {
		epsilon = 0.01
	}
	d := r.ExpectedDiscovery
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		d = 0.99
	}
	n := 1
	remaining := d
	for remaining > epsilon && n < 100 {
		remaining *= d
		n++
	}
	return n
}
