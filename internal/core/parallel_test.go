package core

import (
	"reflect"
	"testing"

	"webmeasure/internal/metrics"
)

// buildWith rebuilds the shared experiment's analysis with a given worker
// count (and optional metrics registry).
func buildWith(t testing.TB, workers int, m *metrics.Registry) *Analysis {
	t.Helper()
	a := sharedExperiment(t)
	out, err := New(a.Dataset(), a.filter, Options{
		Profiles: a.Profiles(),
		SiteRank: a.siteRank,
		Workers:  workers,
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWorkerPoolDeterministic rebuilds the shared experiment's analysis
// with several worker counts and requires identical structure: same
// vetted pages in the same order, same trees, same per-node comparison
// aggregates.
func TestWorkerPoolDeterministic(t *testing.T) {
	base := buildWith(t, 1, nil)
	for _, workers := range []int{2, 4, 8} {
		got := buildWith(t, workers, nil)
		if len(got.Pages()) != len(base.Pages()) {
			t.Fatalf("workers=%d: %d pages vs %d with workers=1",
				workers, len(got.Pages()), len(base.Pages()))
		}
		for i, pa := range got.Pages() {
			ref := base.Pages()[i]
			if pa.Key != ref.Key {
				t.Fatalf("workers=%d: page %d is %v, want %v", workers, i, pa.Key, ref.Key)
			}
			if len(pa.Trees) != len(ref.Trees) {
				t.Fatalf("workers=%d: page %v has %d trees, want %d",
					workers, pa.Key, len(pa.Trees), len(ref.Trees))
			}
			for ti, tr := range pa.Trees {
				rt := ref.Trees[ti]
				if tr.Profile != rt.Profile || tr.NodeCount() != rt.NodeCount() || tr.MaxDepth() != rt.MaxDepth() {
					t.Fatalf("workers=%d: page %v tree %d differs (%s %d %d vs %s %d %d)",
						workers, pa.Key, ti,
						tr.Profile, tr.NodeCount(), tr.MaxDepth(),
						rt.Profile, rt.NodeCount(), rt.MaxDepth())
				}
			}
			if len(pa.Cmp.Nodes) != len(ref.Cmp.Nodes) {
				t.Fatalf("workers=%d: page %v has %d compared nodes, want %d",
					workers, pa.Key, len(pa.Cmp.Nodes), len(ref.Cmp.Nodes))
			}
			for key, ni := range pa.Cmp.Nodes {
				rn := ref.Cmp.Nodes[key]
				if rn == nil {
					t.Fatalf("workers=%d: node %s missing from reference", workers, key)
				}
				if !reflect.DeepEqual(ni.Depths, rn.Depths) || ni.ChildSim != rn.ChildSim || ni.ParentSim != rn.ParentSim {
					t.Fatalf("workers=%d: node %s aggregate differs", workers, key)
				}
			}
		}
	}
}

// TestWorkerPoolSameTables spot-checks that the derived tables — the
// actual outputs of the pipeline — agree across worker counts.
func TestWorkerPoolSameTables(t *testing.T) {
	one := buildWith(t, 1, nil)
	eight := buildWith(t, 8, nil)
	if !reflect.DeepEqual(one.TreeOverview(), eight.TreeOverview()) {
		t.Error("TreeOverview differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(one.DepthSimilarityTable(), eight.DepthSimilarityTable()) {
		t.Error("DepthSimilarityTable differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(one.ProfileTotals(), eight.ProfileTotals()) {
		t.Error("ProfileTotals differs between workers=1 and workers=8")
	}
}

// TestWorkerPoolMetrics checks the pool reports consistent counters: the
// pages seen equal the dataset's page groups, vetted pages equal the
// analysis output, and every vetted page timed its work.
func TestWorkerPoolMetrics(t *testing.T) {
	m := metrics.New()
	a := buildWith(t, 4, m)
	s := m.Snapshot()
	counters := map[string]int64{}
	for _, c := range s.Counters {
		counters[c.Name] = c.Value
	}
	if got, want := counters["analysis.pages"], int64(len(a.Dataset().Pages())); got != want {
		t.Errorf("analysis.pages = %d, want %d", got, want)
	}
	if got, want := counters["analysis.pages.vetted"], int64(len(a.Pages())); got != want {
		t.Errorf("analysis.pages.vetted = %d, want %d", got, want)
	}
	var treeCount int64
	for _, pa := range a.Pages() {
		treeCount += int64(len(pa.Trees))
	}
	if counters["analysis.trees"] < treeCount {
		t.Errorf("analysis.trees = %d, want >= %d (vetted pages' trees)", counters["analysis.trees"], treeCount)
	}
	var pageMS *metrics.HistogramStat
	for i := range s.Histograms {
		if s.Histograms[i].Name == "analysis.page_ms" {
			pageMS = &s.Histograms[i]
		}
	}
	if pageMS == nil || pageMS.Count != counters["analysis.pages"] {
		t.Errorf("analysis.page_ms should time every page group: %+v", pageMS)
	}
}

// TestWorkerPoolOversizedWorkers exercises the workers > pages clamp.
func TestWorkerPoolOversizedWorkers(t *testing.T) {
	a := sharedExperiment(t)
	out, err := New(a.Dataset(), a.filter, Options{
		Profiles: a.Profiles(),
		Workers:  10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pages()) != len(a.Pages()) {
		t.Fatalf("oversized pool changed the result: %d vs %d pages",
			len(out.Pages()), len(a.Pages()))
	}
}
