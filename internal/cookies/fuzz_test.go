package cookies

import (
	"testing"
	"time"
)

// FuzzParseSetCookie: arbitrary headers parse or error, never panic, and
// parsed cookies respect the invariants the jar relies on.
func FuzzParseSetCookie(f *testing.F) {
	for _, s := range []string{
		"sid=abc; Path=/; Secure; HttpOnly; SameSite=Lax",
		"k=v; Domain=.example.com; Max-Age=3600",
		"k=v; Expires=Wed, 01 Mar 2023 12:00:00 UTC",
		"=bad",
		"k=v; Max-Age=notanumber",
		"k=v; Domain=other.example",
		"weird;;; = ; Path=x",
	} {
		f.Add(s)
	}
	now := time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, header string) {
		c, err := ParseSetCookie(header, "https://shop.example.com/cart/view", now)
		if err != nil {
			return
		}
		if c.Name == "" {
			t.Fatal("parsed cookie without a name")
		}
		if c.Path == "" {
			t.Fatal("parsed cookie without a path")
		}
		if c.Domain == "" {
			t.Fatal("parsed cookie without a domain")
		}
		if !c.HostOnly && !domainMatch("shop.example.com", c.Domain) {
			t.Fatalf("domain attribute %q does not cover the request host", c.Domain)
		}
	})
}
