package cookies

import (
	"testing"
	"time"
)

var t0 = time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)

func fixedNow() time.Time { return t0 }

func TestParseSetCookieBasics(t *testing.T) {
	c, err := ParseSetCookie("sid=abc123; Path=/; Secure; HttpOnly; SameSite=Lax",
		"https://shop.example.com/cart/view", t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "sid" || c.Value != "abc123" {
		t.Errorf("name/value = %q/%q", c.Name, c.Value)
	}
	if c.Domain != "shop.example.com" || !c.HostOnly {
		t.Errorf("domain = %q hostOnly=%v", c.Domain, c.HostOnly)
	}
	if c.Path != "/" || !c.Secure || !c.HTTPOnly || c.SameSite != SameSiteLax {
		t.Errorf("attributes wrong: %+v", c)
	}
	if !c.Expires.IsZero() {
		t.Error("should be a session cookie")
	}
}

func TestParseSetCookieDomainAttribute(t *testing.T) {
	c, err := ParseSetCookie("uid=1; Domain=.example.com", "https://shop.example.com/", t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Domain != "example.com" || c.HostOnly {
		t.Errorf("domain = %q hostOnly=%v", c.Domain, c.HostOnly)
	}
	// A domain that does not cover the request host is rejected.
	if _, err := ParseSetCookie("uid=1; Domain=other.com", "https://shop.example.com/", t0); err == nil {
		t.Error("foreign domain attribute should be rejected")
	}
}

func TestParseSetCookieDefaultPath(t *testing.T) {
	cases := []struct {
		url, want string
	}{
		{"https://x.example/a/b/c.html", "/a/b"},
		{"https://x.example/a", "/"},
		{"https://x.example/", "/"},
		{"https://x.example", "/"},
	}
	for _, cse := range cases {
		c, err := ParseSetCookie("k=v", cse.url, t0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Path != cse.want {
			t.Errorf("default path for %q = %q, want %q", cse.url, c.Path, cse.want)
		}
	}
}

func TestParseSetCookieMaxAge(t *testing.T) {
	c, err := ParseSetCookie("k=v; Max-Age=3600", "https://x.example/", t0)
	if err != nil {
		t.Fatal(err)
	}
	if want := t0.Add(time.Hour); !c.Expires.Equal(want) {
		t.Errorf("expires = %v, want %v", c.Expires, want)
	}
	// Max-Age wins over Expires.
	c, err = ParseSetCookie("k=v; Max-Age=60; Expires=Wed, 01 Mar 2023 12:00:00 UTC", "https://x.example/", t0)
	if err != nil {
		t.Fatal(err)
	}
	if want := t0.Add(time.Minute); !c.Expires.Equal(want) {
		t.Errorf("Max-Age should win: %v", c.Expires)
	}
	// Non-positive Max-Age expires immediately.
	c, err = ParseSetCookie("k=v; Max-Age=0", "https://x.example/", t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Expires.After(t0) {
		t.Error("Max-Age=0 must expire in the past")
	}
}

func TestParseSetCookieExpires(t *testing.T) {
	c, err := ParseSetCookie("k=v; Expires=Wed, 01 Mar 2023 12:00:00 UTC", "https://x.example/", t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Expires.Year() != 2023 {
		t.Errorf("expires = %v", c.Expires)
	}
}

func TestParseSetCookieMalformed(t *testing.T) {
	for _, h := range []string{"", "novalue", "=v", "; Secure"} {
		if _, err := ParseSetCookie(h, "https://x.example/", t0); err == nil {
			t.Errorf("ParseSetCookie(%q) succeeded, want error", h)
		}
	}
	if _, err := ParseSetCookie("k=v", "not a url", t0); err == nil {
		t.Error("missing host should error")
	}
}

func TestCookieID(t *testing.T) {
	a, _ := ParseSetCookie("sid=1; Path=/x", "https://x.example/x/y", t0)
	b, _ := ParseSetCookie("sid=2; Path=/x", "https://x.example/x/z", t0)
	if a.ID() != b.ID() {
		t.Error("same (name,domain,path) must share identity")
	}
	c, _ := ParseSetCookie("sid=1; Path=/other", "https://x.example/other/y", t0)
	if a.ID() == c.ID() {
		t.Error("different paths must differ")
	}
}

func TestAttributeSignature(t *testing.T) {
	a, _ := ParseSetCookie("k=v; Secure; SameSite=None", "https://x.example/", t0)
	b, _ := ParseSetCookie("k=v; SameSite=None", "https://x.example/", t0)
	if a.AttributeSignature() == b.AttributeSignature() {
		t.Error("secure difference must change the signature")
	}
}

func TestJarSetAndGet(t *testing.T) {
	j := NewJar(fixedNow)
	if err := j.SetFromHeader("sid=1; Domain=example.com; Path=/", "https://shop.example.com/"); err != nil {
		t.Fatal(err)
	}
	if err := j.SetFromHeader("local=1", "https://shop.example.com/account/settings"); err != nil {
		t.Fatal(err)
	}

	// Domain cookie is visible on any subdomain; host-only is not.
	got := j.Cookies("https://other.example.com/")
	if len(got) != 1 || got[0].Name != "sid" {
		t.Errorf("subdomain sees %v", names(got))
	}
	// Path matching: /account/settings default path is /account.
	got = j.Cookies("https://shop.example.com/account/profile")
	if len(got) != 2 {
		t.Errorf("path match failed: %v", names(got))
	}
	got = j.Cookies("https://shop.example.com/checkout")
	if len(got) != 1 || got[0].Name != "sid" {
		t.Errorf("path isolation failed: %v", names(got))
	}
}

func TestJarReplacement(t *testing.T) {
	j := NewJar(fixedNow)
	_ = j.SetFromHeader("sid=old", "https://x.example/")
	_ = j.SetFromHeader("sid=new", "https://x.example/")
	all := j.All()
	if len(all) != 1 || all[0].Value != "new" {
		t.Errorf("replacement failed: %+v", all)
	}
}

func TestJarExpiry(t *testing.T) {
	j := NewJar(fixedNow)
	_ = j.SetFromHeader("keep=1; Max-Age=100", "https://x.example/")
	_ = j.SetFromHeader("keep=1; Max-Age=0", "https://x.example/")
	if len(j.All()) != 0 {
		t.Error("expired re-set should remove the cookie")
	}
}

func TestJarSecureAttribute(t *testing.T) {
	j := NewJar(fixedNow)
	_ = j.SetFromHeader("s=1; Secure", "https://x.example/")
	if len(j.Cookies("http://x.example/")) != 0 {
		t.Error("secure cookie sent over http")
	}
	if len(j.Cookies("https://x.example/")) != 1 {
		t.Error("secure cookie missing over https")
	}
}

func TestJarOrdering(t *testing.T) {
	j := NewJar(fixedNow)
	_ = j.SetFromHeader("b=1; Path=/", "https://x.example/")
	_ = j.SetFromHeader("a=1; Path=/", "https://x.example/")
	_ = j.SetFromHeader("deep=1; Path=/a/b", "https://x.example/a/b/c")
	got := j.Cookies("https://x.example/a/b/c")
	if len(got) != 3 || got[0].Name != "deep" || got[1].Name != "a" || got[2].Name != "b" {
		t.Errorf("order = %v", names(got))
	}
}

func TestPathMatch(t *testing.T) {
	cases := []struct {
		req, cookie string
		want        bool
	}{
		{"/a/b/c", "/a/b", true},
		{"/a/b", "/a/b", true},
		{"/a/bc", "/a/b", false},
		{"/", "/", true},
		{"", "/", true},
		{"/x", "/a", false},
		{"/a/b/", "/a/b/", true},
		{"/a/b/c", "/a/b/", true},
	}
	for _, c := range cases {
		if got := pathMatch(c.req, c.cookie); got != c.want {
			t.Errorf("pathMatch(%q, %q) = %v, want %v", c.req, c.cookie, got, c.want)
		}
	}
}

func names(cs []*Cookie) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func BenchmarkJarCookies(b *testing.B) {
	j := NewJar(fixedNow)
	_ = j.SetFromHeader("sid=1; Domain=example.com", "https://a.example.com/")
	_ = j.SetFromHeader("uid=2; Path=/shop", "https://a.example.com/shop/x")
	_ = j.SetFromHeader("pref=3", "https://a.example.com/")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Cookies("https://a.example.com/shop/item")
	}
}
