// Package cookies implements the RFC 6265 cookie model used by the cookie
// case study (§5.2): Set-Cookie parsing, the (name, domain, path) identity
// the paper adopts ("As per RFC 6265, we uniquely identify cookies by name,
// path, and domain"), a storage jar with domain- and path-matching, and the
// security attributes whose cross-profile differences §5.2 reports.
package cookies

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"webmeasure/internal/urlutil"
)

// SameSite is the value of the SameSite attribute.
type SameSite string

// SameSite values per the current cookie RFC draft.
const (
	SameSiteDefault SameSite = ""
	SameSiteLax     SameSite = "Lax"
	SameSiteStrict  SameSite = "Strict"
	SameSiteNone    SameSite = "None"
)

// Cookie is one stored cookie.
type Cookie struct {
	Name  string
	Value string

	// Domain is the cookie's domain attribute, lower-cased, without a
	// leading dot. HostOnly records whether the attribute was absent.
	Domain   string
	HostOnly bool
	// Path is the cookie path (default-path when the attribute was absent).
	Path string

	Secure   bool
	HTTPOnly bool
	SameSite SameSite

	// Expires is the absolute expiry; zero means a session cookie.
	Expires time.Time
}

// ID is the paper's cookie identity: name, domain, and path.
type ID struct {
	Name   string
	Domain string
	Path   string
}

// ID returns the cookie's identity tuple.
func (c *Cookie) ID() ID { return ID{Name: c.Name, Domain: c.Domain, Path: c.Path} }

// AttributeSignature encodes the security-relevant attributes (§5.2 compares
// "same site, http only, or secure" across profiles).
func (c *Cookie) AttributeSignature() string {
	var b strings.Builder
	if c.Secure {
		b.WriteString("secure;")
	}
	if c.HTTPOnly {
		b.WriteString("httponly;")
	}
	b.WriteString("samesite=")
	b.WriteString(string(c.SameSite))
	return b.String()
}

// ErrMalformedCookie is returned for Set-Cookie headers without a valid
// name=value pair.
var ErrMalformedCookie = errors.New("cookies: malformed Set-Cookie header")

// ParseSetCookie parses a Set-Cookie header received for requestURL,
// applying RFC 6265 defaulting: absent Domain → host-only cookie on the
// request host; absent Path → the default-path of the request URL. now is
// used to resolve Max-Age; pass time.Now() outside tests.
func ParseSetCookie(header, requestURL string, now time.Time) (*Cookie, error) {
	parts := strings.Split(header, ";")
	name, value, ok := strings.Cut(strings.TrimSpace(parts[0]), "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return nil, ErrMalformedCookie
	}
	host := urlutil.Host(requestURL)
	if host == "" {
		return nil, errors.New("cookies: request URL has no host")
	}
	c := &Cookie{
		Name:     name,
		Value:    strings.TrimSpace(value),
		Domain:   host,
		HostOnly: true,
		Path:     defaultPath(requestURL),
	}
	var maxAgeSet bool
	for _, attr := range parts[1:] {
		k, v, _ := strings.Cut(strings.TrimSpace(attr), "=")
		v = strings.TrimSpace(v)
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "domain":
			d := strings.ToLower(strings.TrimPrefix(v, "."))
			if d == "" {
				continue
			}
			// RFC 6265 §5.3 step 6: the request host must domain-match the
			// attribute, otherwise the cookie is rejected.
			if !domainMatch(host, d) {
				return nil, errors.New("cookies: domain attribute does not cover request host")
			}
			c.Domain = d
			c.HostOnly = false
		case "path":
			if strings.HasPrefix(v, "/") {
				c.Path = v
			}
		case "secure":
			c.Secure = true
		case "httponly":
			c.HTTPOnly = true
		case "samesite":
			switch strings.ToLower(v) {
			case "lax":
				c.SameSite = SameSiteLax
			case "strict":
				c.SameSite = SameSiteStrict
			case "none":
				c.SameSite = SameSiteNone
			}
		case "max-age":
			secs, err := strconv.ParseInt(v, 10, 64)
			if err == nil {
				maxAgeSet = true
				if secs <= 0 {
					c.Expires = now.Add(-time.Second)
				} else {
					c.Expires = now.Add(time.Duration(secs) * time.Second)
				}
			}
		case "expires":
			if maxAgeSet {
				continue // Max-Age has precedence (RFC 6265 §4.1.2.2)
			}
			for _, layout := range []string{time.RFC1123, time.RFC1123Z, time.RFC850, time.ANSIC} {
				if t, err := time.Parse(layout, v); err == nil {
					c.Expires = t
					break
				}
			}
		}
	}
	return c, nil
}

// defaultPath computes the RFC 6265 §5.1.4 default-path of a URL.
func defaultPath(rawURL string) string {
	p := urlutil.PathOf(rawURL)
	if p == "" || !strings.HasPrefix(p, "/") {
		return "/"
	}
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// domainMatch implements RFC 6265 §5.1.3: host domain-matches domain when
// they are equal or host ends with "." + domain.
func domainMatch(host, domain string) bool {
	return host == domain || strings.HasSuffix(host, "."+domain)
}

// pathMatch implements RFC 6265 §5.1.4 path matching.
func pathMatch(requestPath, cookiePath string) bool {
	if requestPath == "" {
		requestPath = "/"
	}
	if requestPath == cookiePath {
		return true
	}
	if strings.HasPrefix(requestPath, cookiePath) {
		return strings.HasSuffix(cookiePath, "/") || requestPath[len(cookiePath)] == '/'
	}
	return false
}
