package cookies

import (
	"sort"
	"strings"
	"time"

	"webmeasure/internal/urlutil"
)

// Jar stores cookies for one browser instance. The measurement runs
// stateless (Appendix C), so a fresh jar is created per page visit; the jar
// is nevertheless a complete RFC 6265 store so stateful crawls are possible.
// Jar is not safe for concurrent use; each simulated browser instance owns
// its own.
type Jar struct {
	cookies map[ID]*Cookie
	now     func() time.Time
}

// NewJar creates an empty jar. now may be nil, defaulting to time.Now; the
// crawler injects the simulation clock.
func NewJar(now func() time.Time) *Jar {
	if now == nil {
		now = time.Now
	}
	return &Jar{cookies: make(map[ID]*Cookie), now: now}
}

// SetCookie stores c, replacing any cookie with the same (name, domain,
// path) identity. An already-expired cookie deletes the stored one (the
// standard cookie-removal idiom).
func (j *Jar) SetCookie(c *Cookie) {
	if !c.Expires.IsZero() && !c.Expires.After(j.now()) {
		delete(j.cookies, c.ID())
		return
	}
	j.cookies[c.ID()] = c
}

// SetFromHeader parses a Set-Cookie header in the context of requestURL and
// stores the result. Malformed or rejected headers are reported via error
// and leave the jar unchanged.
func (j *Jar) SetFromHeader(header, requestURL string) error {
	c, err := ParseSetCookie(header, requestURL, j.now())
	if err != nil {
		return err
	}
	j.SetCookie(c)
	return nil
}

// Cookies returns the cookies that would be sent to requestURL, applying
// domain-matching (host-only cookies require exact host equality), path
// matching, the Secure attribute, and expiry. Results are ordered by
// longest path first, then by name, matching RFC 6265 §5.4 sort order
// closely enough for deterministic output.
func (j *Jar) Cookies(requestURL string) []*Cookie {
	host := urlutil.Host(requestURL)
	secure := strings.HasPrefix(strings.ToLower(requestURL), "https://")
	path := urlutil.PathOf(requestURL)
	now := j.now()

	var out []*Cookie
	for _, c := range j.cookies {
		if !c.Expires.IsZero() && !c.Expires.After(now) {
			continue
		}
		if c.HostOnly {
			if host != c.Domain {
				continue
			}
		} else if !domainMatch(host, c.Domain) {
			continue
		}
		if c.Secure && !secure {
			continue
		}
		if !pathMatch(path, c.Path) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Path) != len(out[b].Path) {
			return len(out[a].Path) > len(out[b].Path)
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// All returns every live cookie in the jar in deterministic order.
func (j *Jar) All() []*Cookie {
	now := j.now()
	out := make([]*Cookie, 0, len(j.cookies))
	for _, c := range j.cookies {
		if c.Expires.IsZero() || c.Expires.After(now) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ia, ib := out[a].ID(), out[b].ID()
		if ia.Domain != ib.Domain {
			return ia.Domain < ib.Domain
		}
		if ia.Name != ib.Name {
			return ia.Name < ib.Name
		}
		return ia.Path < ib.Path
	})
	return out
}

// Len returns the number of stored cookies, including expired ones not yet
// evicted.
func (j *Jar) Len() int { return len(j.cookies) }
