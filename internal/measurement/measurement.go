// Package measurement defines the instrumentation data model — the role
// OpenWPM's database schema plays in the paper. A page visit yields a Visit
// record whose Requests carry the three signals §3.2 builds dependency
// trees from: the parent frame of each request, the JavaScript (and CSS)
// call stack, and HTTP redirect provenance. Cookie observations (§5.2) ride
// along on the same record.
package measurement

import "fmt"

// ResourceType classifies the content a request loads, following the
// content-policy types OpenWPM/Firefox report (cf. Fig. 7's panels).
type ResourceType uint8

// Resource types observed in the experiment.
const (
	TypeOther ResourceType = iota
	TypeMainFrame
	TypeSubFrame
	TypeScript
	TypeStylesheet
	TypeImage
	TypeImageset
	TypeFont
	TypeMedia
	TypeXHR
	TypeWebSocket
	TypeBeacon
	TypeCSPReport
	TypeText

	numResourceTypes
)

var resourceTypeNames = [numResourceTypes]string{
	"other", "main_frame", "sub_frame", "script", "stylesheet", "image",
	"imageset", "font", "media", "xmlhttprequest", "websocket", "beacon",
	"csp_report", "text",
}

// String returns the OpenWPM-style name of the type.
func (t ResourceType) String() string {
	if int(t) < len(resourceTypeNames) {
		return resourceTypeNames[t]
	}
	return fmt.Sprintf("resource_type(%d)", uint8(t))
}

// AllResourceTypes lists every type in declaration order.
func AllResourceTypes() []ResourceType {
	out := make([]ResourceType, numResourceTypes)
	for i := range out {
		out[i] = ResourceType(i)
	}
	return out
}

// CanHaveChildren reports whether the type can dynamically load further
// content. §3.2 excludes depth-one nodes that cannot (e.g. plain text or
// images) from parts of the analysis because they would fake perfect
// similarity.
func (t ResourceType) CanHaveChildren() bool {
	switch t {
	case TypeMainFrame, TypeSubFrame, TypeScript, TypeStylesheet, TypeXHR, TypeWebSocket:
		return true
	default:
		return false
	}
}

// StackFrame is one entry of a JavaScript call stack as OpenWPM records it.
// Only the last entry — the function that issued the request — is used for
// parent attribution (§3.2).
type StackFrame struct {
	FuncName string `json:"func_name"`
	URL      string `json:"url"` // the script (or stylesheet) the frame executes in
	Line     int    `json:"line"`
}

// Request is one observed HTTP request with its provenance.
type Request struct {
	URL  string       `json:"url"`
	Type ResourceType `json:"type"`

	// FrameID identifies the frame issuing the request; 0 is the top-level
	// frame. FrameURL is the document URL of that frame.
	FrameID  int    `json:"frame_id"`
	FrameURL string `json:"frame_url,omitempty"`

	// CallStack is the JS/CSS call stack that issued the request (empty for
	// parser-inserted elements). The Firefox environment reports CSS
	// loading dependencies through the same channel (§3.2 [8]).
	CallStack []StackFrame `json:"call_stack,omitempty"`

	// RedirectFrom is the URL that HTTP-redirected to this request, if any.
	RedirectFrom string `json:"redirect_from,omitempty"`

	// SetCookies carries the Set-Cookie headers of the response.
	SetCookies []string `json:"set_cookies,omitempty"`

	// Status is the HTTP response status code (302 for redirect hops).
	Status int `json:"status,omitempty"`
	// ContentType is the response's Content-Type header.
	ContentType string `json:"content_type,omitempty"`
	// BodySize is the response body size in bytes.
	BodySize int `json:"body_size,omitempty"`

	// TimeOffsetMS is when the request was issued relative to navigation
	// start, in simulated milliseconds.
	TimeOffsetMS int `json:"time_offset_ms"`

	// TrueParentURL is the ground-truth initiator the simulator knows
	// (empty for the navigation request). Real instrumentation has no
	// such field; it exists to *evaluate* the paper's attribution
	// heuristics — §6 concedes that URL merging can collapse branches,
	// and this field lets the repository measure how often.
	TrueParentURL string `json:"true_parent_url,omitempty"`
}

// DefaultContentType returns the canonical Content-Type for a resource
// type (what a well-behaved server sends).
func (t ResourceType) DefaultContentType() string {
	switch t {
	case TypeMainFrame, TypeSubFrame:
		return "text/html"
	case TypeScript:
		return "application/javascript"
	case TypeStylesheet:
		return "text/css"
	case TypeImage, TypeImageset:
		return "image/jpeg"
	case TypeFont:
		return "font/woff2"
	case TypeMedia:
		return "video/mp4"
	case TypeXHR:
		return "application/json"
	case TypeBeacon:
		return "image/gif"
	case TypeCSPReport:
		return "application/csp-report"
	case TypeText:
		return "text/plain"
	case TypeWebSocket:
		return ""
	default:
		return "application/octet-stream"
	}
}

// TopFrameID is the FrameID of the top-level document.
const TopFrameID = 0

// CookieObservation is a cookie as stored in the browser's jar at the end
// of the visit, with the security attributes §5.2 compares.
type CookieObservation struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	Path     string `json:"path"`
	Secure   bool   `json:"secure"`
	HTTPOnly bool   `json:"http_only"`
	SameSite string `json:"same_site,omitempty"`
}

// ID returns the RFC 6265 identity tuple as a single key.
func (c CookieObservation) ID() string {
	return c.Name + "\x00" + c.Domain + "\x00" + c.Path
}

// AttributeSignature encodes the security attributes for cross-profile
// comparison.
func (c CookieObservation) AttributeSignature() string {
	return fmt.Sprintf("secure=%v;httponly=%v;samesite=%s", c.Secure, c.HTTPOnly, c.SameSite)
}

// Visit statuses: how cleanly a visit completed. A Visit's Status may be
// empty on records written before status tracking existed; use
// EffectiveStatus for classification.
const (
	// VisitOK: the page loaded cleanly.
	VisitOK = "ok"
	// VisitDegraded: the page "loaded" (Success is true, requests were
	// recorded) but an injected fault truncated the observation — the
	// partial load the vetting stage must exclude.
	VisitDegraded = "degraded"
	// VisitFailed: the visit produced no usable measurement.
	VisitFailed = "failed"
)

// Visit is the record of one page visit by one profile.
type Visit struct {
	Site    string `json:"site"`
	PageURL string `json:"page_url"`
	Profile string `json:"profile"`

	// Success is false when the visit failed (timeout, unreachable, crash);
	// failed visits carry no requests, except redirect-loop failures,
	// which record their 302 hop chain.
	Success bool   `json:"success"`
	Failure string `json:"failure,omitempty"`

	// Status refines Success into ok / degraded / failed (see the Visit*
	// constants). Empty on legacy records; EffectiveStatus resolves it.
	Status string `json:"status,omitempty"`
	// Attempts is how many fetch attempts the crawler made for this
	// record (0 on legacy records, meaning 1).
	Attempts int `json:"attempts,omitempty"`
	// Retryable marks a failure as transient: the fault injector judged
	// that a retry could have cleared it (the retry budget ran out).
	Retryable bool `json:"retryable,omitempty"`
	// FaultKind names the injected fault that disturbed this attempt
	// ("error", "server_error", "latency", "truncate", "redirect_loop";
	// empty when the attempt ran on a clean network), so retries and
	// degradations are attributable from the raw dataset and traces.
	FaultKind string `json:"fault_kind,omitempty"`

	Requests []Request           `json:"requests,omitempty"`
	Cookies  []CookieObservation `json:"cookies,omitempty"`

	// StartOffsetS is the visit's start time relative to the site batch
	// start, in simulated seconds (Appendix C reports the deviation).
	StartOffsetS float64 `json:"start_offset_s"`
	// DurationMS is the simulated page load duration.
	DurationMS int `json:"duration_ms"`
}

// EffectiveStatus resolves the visit's status, defaulting legacy records
// (empty Status) from the Success flag.
func (v *Visit) EffectiveStatus() string {
	if v.Status != "" {
		return v.Status
	}
	if v.Success {
		return VisitOK
	}
	return VisitFailed
}

// Clean reports whether the visit completed without failure or
// degradation — the paper's vetting criterion ("successfully and
// consistently visited").
func (v *Visit) Clean() bool {
	return v.Success && v.EffectiveStatus() != VisitDegraded
}
