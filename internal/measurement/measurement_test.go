package measurement

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestResourceTypeString(t *testing.T) {
	cases := map[ResourceType]string{
		TypeMainFrame:  "main_frame",
		TypeSubFrame:   "sub_frame",
		TypeScript:     "script",
		TypeStylesheet: "stylesheet",
		TypeImage:      "image",
		TypeXHR:        "xmlhttprequest",
		TypeWebSocket:  "websocket",
		TypeBeacon:     "beacon",
		TypeCSPReport:  "csp_report",
		TypeText:       "text",
		TypeOther:      "other",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := ResourceType(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestAllResourceTypes(t *testing.T) {
	all := AllResourceTypes()
	if len(all) != int(numResourceTypes) {
		t.Fatalf("AllResourceTypes = %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, ty := range all {
		name := ty.String()
		if seen[name] {
			t.Errorf("duplicate type name %q", name)
		}
		seen[name] = true
	}
}

func TestCanHaveChildren(t *testing.T) {
	can := []ResourceType{TypeMainFrame, TypeSubFrame, TypeScript, TypeStylesheet, TypeXHR, TypeWebSocket}
	cannot := []ResourceType{TypeImage, TypeFont, TypeMedia, TypeBeacon, TypeCSPReport, TypeText, TypeOther}
	for _, ty := range can {
		if !ty.CanHaveChildren() {
			t.Errorf("%v should be able to load children", ty)
		}
	}
	for _, ty := range cannot {
		if ty.CanHaveChildren() {
			t.Errorf("%v must not load children (§3.2 exclusion depends on it)", ty)
		}
	}
}

func TestDefaultContentType(t *testing.T) {
	for _, ty := range AllResourceTypes() {
		ct := ty.DefaultContentType()
		if ty == TypeWebSocket {
			if ct != "" {
				t.Errorf("websocket content type = %q", ct)
			}
			continue
		}
		if !strings.Contains(ct, "/") {
			t.Errorf("%v content type %q not MIME-shaped", ty, ct)
		}
	}
	if TypeScript.DefaultContentType() != "application/javascript" {
		t.Error("script content type wrong")
	}
}

func TestCookieObservationIdentity(t *testing.T) {
	a := CookieObservation{Name: "uid", Domain: "t.example", Path: "/"}
	b := CookieObservation{Name: "uid", Domain: "t.example", Path: "/", Secure: true}
	if a.ID() != b.ID() {
		t.Error("identity must ignore attributes")
	}
	c := CookieObservation{Name: "uid", Domain: "t.example", Path: "/x"}
	if a.ID() == c.ID() {
		t.Error("identity must include the path")
	}
	if a.AttributeSignature() == b.AttributeSignature() {
		t.Error("signature must reflect Secure")
	}
}

func TestVisitJSONStability(t *testing.T) {
	v := Visit{
		Site: "a.example", PageURL: "https://a.example/", Profile: "Sim1", Success: true,
		Requests: []Request{{
			URL: "https://a.example/x.js", Type: TypeScript, FrameID: 0,
			CallStack: []StackFrame{{FuncName: "f", URL: "https://a.example/", Line: 3}},
			Status:    200, ContentType: "application/javascript", BodySize: 123,
		}},
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	// Field names are part of the on-disk dataset format; breaking them
	// breaks every stored dataset.
	for _, key := range []string{`"site"`, `"page_url"`, `"profile"`, `"success"`,
		`"url"`, `"type"`, `"frame_id"`, `"call_stack"`, `"func_name"`,
		`"status"`, `"content_type"`, `"body_size"`, `"time_offset_ms"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized visit missing %s: %s", key, data)
		}
	}
	var back Visit
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests[0].CallStack[0].URL != "https://a.example/" {
		t.Error("round trip lost call stack")
	}
}
