// Package drift is the longitudinal monitoring layer: it snapshots a
// completed analysis into a schema-versioned per-epoch baseline, computes
// deltas between baselines (new/vanished third parties, tracking-share
// drift, tree-shape drift via the treediff kernels, similarity drift),
// and evaluates a configurable alert rule engine over each delta.
//
// The paper measures setup-induced differences at one point in time;
// "Beyond the Front Page" shows the third-party ecosystem itself drifts
// across repeated crawls. The deterministic seeded epochs of the site
// generator make that drift reproducible, so every artifact this package
// produces — baseline JSON, delta JSON, CSV rows, alert sequences — is
// byte-identical for a given (config, epoch) regardless of worker counts
// or crawl buffering. Two rules keep it that way: all set-valued fields
// are sorted slices, and every float mean is accumulated by
// stats.Summarize (which sorts before accumulating).
package drift

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"webmeasure/internal/core"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
	"webmeasure/internal/urlutil"
)

// SchemaVersion is the baseline/delta wire schema. Bump on any change to
// the JSON shape; decode rejects mismatches so a monitor never diffs
// baselines written by an incompatible build.
const SchemaVersion = 1

// Meta identifies the experiment a baseline was measured under. Diff
// refuses to compare baselines whose identities disagree on anything but
// the epoch: a delta between different experiment configs would read as
// ecosystem drift when it is actually setup difference — the exact
// confusion the paper warns about.
type Meta struct {
	SchemaVersion int      `json:"schema_version"`
	Epoch         int      `json:"epoch"`
	Seed          int64    `json:"seed"`
	Sites         int      `json:"sites"`
	TrancoSize    int      `json:"tranco_size"`
	PagesPerSite  int      `json:"pages_per_site"`
	Profiles      []string `json:"profiles"`
	FaultProfile  string   `json:"fault_profile,omitempty"`
}

// sameExperiment reports whether two metas describe the same experiment
// (everything but the epoch).
func (m Meta) sameExperiment(o Meta) bool {
	if m.Seed != o.Seed || m.Sites != o.Sites || m.TrancoSize != o.TrancoSize ||
		m.PagesPerSite != o.PagesPerSite || m.FaultProfile != o.FaultProfile ||
		len(m.Profiles) != len(o.Profiles) {
		return false
	}
	for i := range m.Profiles {
		if m.Profiles[i] != o.Profiles[i] {
			return false
		}
	}
	return true
}

// SiteBaseline is one site's slice of a baseline: its third-party and
// tracker domain sets plus the reference-profile tree of every vetted
// page, stored in wire form so a later Diff can rerun the treediff
// kernels across epochs.
type SiteBaseline struct {
	Site         string   `json:"site"`
	VettedPages  int      `json:"vetted_pages"`
	ThirdParties []string `json:"third_parties,omitempty"`
	Trackers     []string `json:"trackers,omitempty"`
	// Trees holds the reference-profile tree per vetted page, sorted by
	// page URL.
	Trees []tree.Record `json:"trees,omitempty"`
}

// Baseline is one epoch's persisted measurement summary.
type Baseline struct {
	Meta Meta `json:"meta"`

	SitesAnalyzed int `json:"sites_analyzed"`
	VettedPages   int `json:"vetted_pages"`

	// TrackingShare is the share of unique nodes classified as tracking
	// requests (§5.3).
	TrackingShare float64 `json:"tracking_share"`

	// Tree-shape statistics (Table 2 means).
	MeanNodes   float64 `json:"mean_nodes"`
	MeanDepth   float64 `json:"mean_depth"`
	MeanBreadth float64 `json:"mean_breadth"`

	// MeanChildSim is the horizontal similarity summary (✚: nodes with at
	// least one child anywhere); MeanParentSim the vertical one (✻: nodes
	// at mean depth ≥ 2) — the ProfilePairTable populations.
	MeanChildSim  float64 `json:"mean_child_sim"`
	MeanParentSim float64 `json:"mean_parent_sim"`

	// DepthSimilarityAll is the mean per-page depth-weighted node-set
	// similarity over all nodes (Table 3 row 1).
	DepthSimilarityAll float64 `json:"depth_similarity_all"`

	// Global third-party and tracker domain sets (eTLD+1, sorted).
	ThirdParties []string `json:"third_parties,omitempty"`
	Trackers     []string `json:"trackers,omitempty"`

	// SiteBaselines is sorted by site.
	SiteBaselines []*SiteBaseline `json:"site_baselines"`
}

// Snapshot condenses a completed analysis into a baseline. meta.Epoch
// identifies the epoch; meta.SchemaVersion is overwritten with the
// package's current version. The reference-profile tree stored per page
// is the tree of the first profile in the analysis order present on that
// page.
func Snapshot(a *core.Analysis, meta Meta) *Baseline {
	meta.SchemaVersion = SchemaVersion
	b := &Baseline{Meta: meta}

	globalTP := make(map[string]bool)
	globalTR := make(map[string]bool)
	perSite := make(map[string]*SiteBaseline)
	siteTP := make(map[string]map[string]bool)
	siteTR := make(map[string]map[string]bool)

	var childSims, parentSims, depthSims []float64

	for _, pa := range a.Pages() {
		b.VettedPages++
		site := pa.Key.Site
		sb := perSite[site]
		if sb == nil {
			sb = &SiteBaseline{Site: site}
			perSite[site] = sb
			siteTP[site] = make(map[string]bool)
			siteTR[site] = make(map[string]bool)
		}
		sb.VettedPages++

		// Reference tree: the first analysis profile present on the page.
		// Pages arrive in (site, page URL) order, so appending keeps the
		// per-site tree list sorted by page URL.
		for _, prof := range a.Profiles() {
			if t := pa.TreeFor(prof); t != nil {
				sb.Trees = append(sb.Trees, t.Record())
				break
			}
		}

		rootKey := pa.Trees[0].Root.Key
		keys := make([]string, 0, len(pa.Cmp.Nodes))
		for key := range pa.Cmp.Nodes {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if key == rootKey {
				continue
			}
			ni := pa.Cmp.Nodes[key]
			if ni.Party == tree.ThirdParty {
				if dom := urlutil.Site(ni.Key); dom != "" {
					globalTP[dom] = true
					siteTP[site][dom] = true
				}
			}
			if ni.Tracking {
				if dom := urlutil.Site(ni.Key); dom != "" {
					globalTR[dom] = true
					siteTR[site][dom] = true
				}
			}
			if ni.HasChildAnywhere {
				childSims = append(childSims, ni.ChildSim)
			}
			if ni.MeanDepth() >= 2 {
				parentSims = append(parentSims, ni.ParentSim)
			}
		}
		if sim, depths := pa.Cmp.DepthSimilarity(treediff.DepthFilter{}); depths > 0 {
			depthSims = append(depthSims, sim)
		}
	}

	b.SitesAnalyzed = len(perSite)
	b.TrackingShare = a.TrackingStudy().TrackingShare
	ov := a.TreeOverview()
	b.MeanNodes = ov.Nodes.Mean
	b.MeanDepth = ov.Depth.Mean
	b.MeanBreadth = ov.Breadth.Mean
	b.MeanChildSim = stats.Summarize(childSims).Mean
	b.MeanParentSim = stats.Summarize(parentSims).Mean
	b.DepthSimilarityAll = stats.Summarize(depthSims).Mean
	b.ThirdParties = sortedKeys(globalTP)
	b.Trackers = sortedKeys(globalTR)

	sites := make([]string, 0, len(perSite))
	for site := range perSite {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		sb := perSite[site]
		sb.ThirdParties = sortedKeys(siteTP[site])
		sb.Trackers = sortedKeys(siteTR[site])
		b.SiteBaselines = append(b.SiteBaselines, sb)
	}
	return b
}

// sortedKeys converts a string set to its sorted slice (nil when empty,
// so JSON omits the field rather than writing []).
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Encode renders the baseline as indented JSON with a trailing newline.
// Struct field order is fixed and all collections are sorted, so the
// bytes are deterministic.
func (b *Baseline) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBaseline parses and validates a baseline. It rejects unknown
// schema versions, out-of-order or duplicate sites, unsorted domain
// sets, and tree records that fail to rebuild — corruption should
// surface at load time, not as a silent wrong delta epochs later.
func DecodeBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("drift: baseline: %w", err)
	}
	if b.Meta.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("drift: baseline schema %d, want %d", b.Meta.SchemaVersion, SchemaVersion)
	}
	if err := checkSorted("third_parties", b.ThirdParties); err != nil {
		return nil, err
	}
	if err := checkSorted("trackers", b.Trackers); err != nil {
		return nil, err
	}
	lastSite := ""
	for i, sb := range b.SiteBaselines {
		if sb == nil {
			return nil, fmt.Errorf("drift: baseline: null site entry %d", i)
		}
		if sb.Site == "" {
			return nil, fmt.Errorf("drift: baseline: site entry %d has no site", i)
		}
		if i > 0 && sb.Site <= lastSite {
			return nil, fmt.Errorf("drift: baseline: site %q out of order after %q", sb.Site, lastSite)
		}
		lastSite = sb.Site
		if err := checkSorted(sb.Site+" third_parties", sb.ThirdParties); err != nil {
			return nil, err
		}
		if err := checkSorted(sb.Site+" trackers", sb.Trackers); err != nil {
			return nil, err
		}
		lastPage := ""
		for j, rec := range sb.Trees {
			if j > 0 && rec.PageURL <= lastPage {
				return nil, fmt.Errorf("drift: baseline: site %q tree %q out of order after %q", sb.Site, rec.PageURL, lastPage)
			}
			lastPage = rec.PageURL
			if _, err := rec.Tree(); err != nil {
				return nil, fmt.Errorf("drift: baseline: site %q: %w", sb.Site, err)
			}
		}
	}
	return &b, nil
}

// checkSorted rejects unsorted or duplicated set slices.
func checkSorted(what string, xs []string) error {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("drift: baseline: %s not sorted/unique at %q", what, xs[i])
		}
	}
	return nil
}
