package drift

// drift.csv: one row per computed delta, the machine-readable companion
// of the report drift section. Floats render via strconv.FormatFloat
// 'g'/-1 (shortest exact form), so the bytes are deterministic.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVRow is one drift.csv line: a delta plus the number of alerts that
// fired on it.
type CSVRow struct {
	Delta  *Delta
	Alerts int
}

// CSVHeader is the drift.csv column list.
var CSVHeader = []string{
	"from_epoch", "to_epoch",
	"third_party_jaccard", "new_third_parties", "vanished_third_parties",
	"new_trackers", "vanished_trackers",
	"tracking_share", "tracking_share_drift",
	"tree_similarity", "edge_similarity",
	"child_sim_drift", "parent_sim_drift",
	"mean_nodes_drift_rel", "vetted_pages_drift_rel",
	"new_sites", "vanished_sites", "alerts",
}

// WriteCSV renders the rows as drift.csv.
func WriteCSV(w io.Writer, rows []CSVRow) error {
	if _, err := fmt.Fprintln(w, strings.Join(CSVHeader, ",")); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range rows {
		d := row.Delta
		cols := []string{
			strconv.Itoa(d.FromEpoch), strconv.Itoa(d.ToEpoch),
			f(d.ThirdPartyJaccard), strconv.Itoa(len(d.NewThirdParties)), strconv.Itoa(len(d.VanishedThirdParties)),
			strconv.Itoa(len(d.NewTrackers)), strconv.Itoa(len(d.VanishedTrackers)),
			f(d.TrackingShareTo), f(d.TrackingShareDrift),
			f(d.TreeSimilarity), f(d.EdgeSimilarity),
			f(d.ChildSimDrift), f(d.ParentSimDrift),
			f(d.MeanNodesDriftRel), f(d.VettedPagesDriftRel),
			strconv.Itoa(len(d.NewSites)), strconv.Itoa(len(d.VanishedSites)), strconv.Itoa(row.Alerts),
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}
