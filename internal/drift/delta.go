package drift

// Delta computation: the epoch-over-epoch comparison of two baselines.
// Set drift uses sorted-merge diffs and Jaccard over the stored domain
// sets; structural drift rebuilds the stored reference trees and reruns
// the treediff kernels across epochs — the same depth-weighted node-set
// similarity the paper uses between profiles, here applied between
// epochs of the same profile, plus the whole-tree edge score.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
	"webmeasure/internal/treediff"
)

// SiteDelta is one site's epoch-over-epoch drift.
type SiteDelta struct {
	Site                 string   `json:"site"`
	NewThirdParties      []string `json:"new_third_parties,omitempty"`
	VanishedThirdParties []string `json:"vanished_third_parties,omitempty"`
	ThirdPartyJaccard    float64  `json:"third_party_jaccard"`
	NewTrackers          []string `json:"new_trackers,omitempty"`
	VanishedTrackers     []string `json:"vanished_trackers,omitempty"`
	// CommonPages counts pages vetted in both epochs; the similarities
	// below are means over them (1 when there are none: no evidence of
	// change).
	CommonPages    int     `json:"common_pages"`
	TreeSimilarity float64 `json:"tree_similarity"`
	EdgeSimilarity float64 `json:"edge_similarity"`
}

// Delta is the drift between two baselines of the same experiment.
type Delta struct {
	SchemaVersion int `json:"schema_version"`
	FromEpoch     int `json:"from_epoch"`
	ToEpoch       int `json:"to_epoch"`

	// Global third-party ecosystem drift.
	NewThirdParties      []string `json:"new_third_parties,omitempty"`
	VanishedThirdParties []string `json:"vanished_third_parties,omitempty"`
	ThirdPartyJaccard    float64  `json:"third_party_jaccard"`
	NewTrackers          []string `json:"new_trackers,omitempty"`
	VanishedTrackers     []string `json:"vanished_trackers,omitempty"`

	// Tracking-share drift (to − from).
	TrackingShareFrom  float64 `json:"tracking_share_from"`
	TrackingShareTo    float64 `json:"tracking_share_to"`
	TrackingShareDrift float64 `json:"tracking_share_drift"`

	// Tree-shape drift (to − from; Rel is relative to from, 0 when from
	// is 0).
	MeanNodesDrift    float64 `json:"mean_nodes_drift"`
	MeanNodesDriftRel float64 `json:"mean_nodes_drift_rel"`
	MeanDepthDrift    float64 `json:"mean_depth_drift"`

	// Profile-similarity drift: how much the cross-profile agreement
	// itself moved between epochs.
	ChildSimDrift        float64 `json:"child_sim_drift"`
	ParentSimDrift       float64 `json:"parent_sim_drift"`
	DepthSimilarityDrift float64 `json:"depth_similarity_drift"`

	// Cross-epoch structural similarity over common pages (means of the
	// per-site values, weighted by common pages).
	CommonPages    int     `json:"common_pages"`
	TreeSimilarity float64 `json:"tree_similarity"`
	EdgeSimilarity float64 `json:"edge_similarity"`

	VettedPagesFrom     int     `json:"vetted_pages_from"`
	VettedPagesTo       int     `json:"vetted_pages_to"`
	VettedPagesDriftRel float64 `json:"vetted_pages_drift_rel"`

	NewSites      []string    `json:"new_sites,omitempty"`
	VanishedSites []string    `json:"vanished_sites,omitempty"`
	SiteDeltas    []SiteDelta `json:"site_deltas,omitempty"`
}

// Diff computes the drift from one baseline to another. Both must carry
// the current schema version and describe the same experiment (same
// seed, scale, profiles, and fault profile — only the epoch may differ);
// anything else would conflate setup difference with ecosystem drift.
func Diff(from, to *Baseline) (*Delta, error) {
	if from == nil || to == nil {
		return nil, fmt.Errorf("drift: Diff requires two baselines")
	}
	if from.Meta.SchemaVersion != SchemaVersion || to.Meta.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("drift: baseline schema mismatch (%d vs %d, want %d)",
			from.Meta.SchemaVersion, to.Meta.SchemaVersion, SchemaVersion)
	}
	if !from.Meta.sameExperiment(to.Meta) {
		return nil, fmt.Errorf("drift: baselines describe different experiments (epoch %d seed %d vs epoch %d seed %d)",
			from.Meta.Epoch, from.Meta.Seed, to.Meta.Epoch, to.Meta.Seed)
	}

	d := &Delta{
		SchemaVersion: SchemaVersion,
		FromEpoch:     from.Meta.Epoch,
		ToEpoch:       to.Meta.Epoch,

		TrackingShareFrom:  from.TrackingShare,
		TrackingShareTo:    to.TrackingShare,
		TrackingShareDrift: to.TrackingShare - from.TrackingShare,

		MeanNodesDrift: to.MeanNodes - from.MeanNodes,
		MeanDepthDrift: to.MeanDepth - from.MeanDepth,

		ChildSimDrift:        to.MeanChildSim - from.MeanChildSim,
		ParentSimDrift:       to.MeanParentSim - from.MeanParentSim,
		DepthSimilarityDrift: to.DepthSimilarityAll - from.DepthSimilarityAll,

		VettedPagesFrom: from.VettedPages,
		VettedPagesTo:   to.VettedPages,
	}
	if from.MeanNodes != 0 {
		d.MeanNodesDriftRel = d.MeanNodesDrift / from.MeanNodes
	}
	if from.VettedPages != 0 {
		d.VettedPagesDriftRel = float64(to.VettedPages-from.VettedPages) / float64(from.VettedPages)
	}

	d.VanishedThirdParties, d.NewThirdParties = setDiff(from.ThirdParties, to.ThirdParties)
	d.ThirdPartyJaccard = stats.JaccardSorted(from.ThirdParties, to.ThirdParties)
	d.VanishedTrackers, d.NewTrackers = setDiff(from.Trackers, to.Trackers)

	// Per-site pass: sorted merge over the two site lists.
	var treeSims, edgeSims []float64
	i, j := 0, 0
	for i < len(from.SiteBaselines) || j < len(to.SiteBaselines) {
		switch {
		case j >= len(to.SiteBaselines) || (i < len(from.SiteBaselines) && from.SiteBaselines[i].Site < to.SiteBaselines[j].Site):
			d.VanishedSites = append(d.VanishedSites, from.SiteBaselines[i].Site)
			i++
		case i >= len(from.SiteBaselines) || to.SiteBaselines[j].Site < from.SiteBaselines[i].Site:
			d.NewSites = append(d.NewSites, to.SiteBaselines[j].Site)
			j++
		default:
			sd, err := siteDiff(from.SiteBaselines[i], to.SiteBaselines[j])
			if err != nil {
				return nil, err
			}
			d.SiteDeltas = append(d.SiteDeltas, sd)
			for k := 0; k < sd.CommonPages; k++ {
				treeSims = append(treeSims, sd.TreeSimilarity)
				edgeSims = append(edgeSims, sd.EdgeSimilarity)
			}
			d.CommonPages += sd.CommonPages
			i++
			j++
		}
	}
	if d.CommonPages > 0 {
		d.TreeSimilarity = stats.Summarize(treeSims).Mean
		d.EdgeSimilarity = stats.Summarize(edgeSims).Mean
	} else {
		d.TreeSimilarity, d.EdgeSimilarity = 1, 1
	}
	return d, nil
}

// siteDiff computes one common site's drift, rerunning the treediff
// kernels over the epoch pair of each common page's reference tree.
func siteDiff(from, to *SiteBaseline) (SiteDelta, error) {
	sd := SiteDelta{Site: from.Site}
	sd.VanishedThirdParties, sd.NewThirdParties = setDiff(from.ThirdParties, to.ThirdParties)
	sd.ThirdPartyJaccard = stats.JaccardSorted(from.ThirdParties, to.ThirdParties)
	sd.VanishedTrackers, sd.NewTrackers = setDiff(from.Trackers, to.Trackers)

	var treeSims, edgeSims []float64
	i, j := 0, 0
	for i < len(from.Trees) && j < len(to.Trees) {
		switch {
		case from.Trees[i].PageURL < to.Trees[j].PageURL:
			i++
		case to.Trees[j].PageURL < from.Trees[i].PageURL:
			j++
		default:
			oldT, err := from.Trees[i].Tree()
			if err != nil {
				return sd, fmt.Errorf("drift: site %q page %q (from): %w", from.Site, from.Trees[i].PageURL, err)
			}
			newT, err := to.Trees[j].Tree()
			if err != nil {
				return sd, fmt.Errorf("drift: site %q page %q (to): %w", to.Site, to.Trees[j].PageURL, err)
			}
			pair := []*tree.Tree{oldT, newT}
			cross := treediff.Compare(pair)
			if sim, depths := cross.DepthSimilarity(treediff.DepthFilter{}); depths > 0 {
				treeSims = append(treeSims, sim)
			} else {
				treeSims = append(treeSims, 1)
			}
			edgeSims = append(edgeSims, treediff.EdgeSimilarity(pair))
			sd.CommonPages++
			i++
			j++
		}
	}
	if sd.CommonPages > 0 {
		sd.TreeSimilarity = stats.Summarize(treeSims).Mean
		sd.EdgeSimilarity = stats.Summarize(edgeSims).Mean
	} else {
		sd.TreeSimilarity, sd.EdgeSimilarity = 1, 1
	}
	return sd, nil
}

// setDiff returns (only-in-a, only-in-b) over two sorted unique slices.
func setDiff(a, b []string) (onlyA, onlyB []string) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			onlyA = append(onlyA, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			onlyB = append(onlyB, b[j])
			j++
		default:
			i++
			j++
		}
	}
	return onlyA, onlyB
}

// Encode renders the delta as indented JSON with a trailing newline.
func (d *Delta) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MetricNames lists the values Metric exposes, in rule-file order.
var MetricNames = []string{
	"tracking_share",
	"tracking_share_drift",
	"third_party_jaccard",
	"new_third_parties",
	"vanished_third_parties",
	"new_trackers",
	"vanished_trackers",
	"tree_similarity",
	"edge_similarity",
	"child_sim_drift",
	"parent_sim_drift",
	"depth_similarity_drift",
	"mean_nodes_drift_rel",
	"vetted_pages_drift_rel",
	"new_sites",
	"vanished_sites",
}

// Metric resolves a rule metric name against the delta. Count-valued
// metrics are exposed as float64 so one threshold grammar covers both.
func (d *Delta) Metric(name string) (float64, bool) {
	switch name {
	case "tracking_share":
		return d.TrackingShareTo, true
	case "tracking_share_drift":
		return d.TrackingShareDrift, true
	case "third_party_jaccard":
		return d.ThirdPartyJaccard, true
	case "new_third_parties":
		return float64(len(d.NewThirdParties)), true
	case "vanished_third_parties":
		return float64(len(d.VanishedThirdParties)), true
	case "new_trackers":
		return float64(len(d.NewTrackers)), true
	case "vanished_trackers":
		return float64(len(d.VanishedTrackers)), true
	case "tree_similarity":
		return d.TreeSimilarity, true
	case "edge_similarity":
		return d.EdgeSimilarity, true
	case "child_sim_drift":
		return d.ChildSimDrift, true
	case "parent_sim_drift":
		return d.ParentSimDrift, true
	case "depth_similarity_drift":
		return d.DepthSimilarityDrift, true
	case "mean_nodes_drift_rel":
		return d.MeanNodesDriftRel, true
	case "vetted_pages_drift_rel":
		return d.VettedPagesDriftRel, true
	case "new_sites":
		return float64(len(d.NewSites)), true
	case "vanished_sites":
		return float64(len(d.VanishedSites)), true
	}
	return 0, false
}
