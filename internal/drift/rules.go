package drift

// The alert rule engine: configurable thresholds over delta metrics with
// consecutive-epoch debounce and severity levels. Everything is
// deterministic — alerts carry epochs, not timestamps, and rules
// evaluate in their declared order — so a seeded monitor run produces a
// byte-identical alert sequence.

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Severity levels, ordered.
const (
	SeverityInfo     = "info"
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Rule is one alert condition: fire when Metric Op Threshold holds for
// Consecutive epochs in a row.
type Rule struct {
	// Name identifies the rule in alerts; must be unique in an engine.
	Name string `json:"name"`
	// Metric is one of MetricNames.
	Metric string `json:"metric"`
	// Op is the comparison: "lt", "le", "gt", or "ge" (value vs
	// Threshold).
	Op string `json:"op"`
	// Threshold is the boundary value.
	Threshold float64 `json:"threshold"`
	// Consecutive is the debounce: the condition must hold for this many
	// epochs in a row before the rule fires (and keeps firing while it
	// holds). 0 means 1 — fire immediately.
	Consecutive int `json:"consecutive,omitempty"`
	// Severity is info, warning (default), or critical.
	Severity string `json:"severity,omitempty"`
}

// breached reports whether the rule's condition holds for value.
func (r Rule) breached(value float64) bool {
	switch r.Op {
	case "lt":
		return value < r.Threshold
	case "le":
		return value <= r.Threshold
	case "gt":
		return value > r.Threshold
	case "ge":
		return value >= r.Threshold
	}
	return false
}

// validate normalizes defaults and rejects malformed rules.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("drift: rule has no name")
	}
	if _, ok := (&Delta{}).Metric(r.Metric); !ok {
		return fmt.Errorf("drift: rule %q: unknown metric %q", r.Name, r.Metric)
	}
	switch r.Op {
	case "lt", "le", "gt", "ge":
	default:
		return fmt.Errorf("drift: rule %q: bad op %q (want lt/le/gt/ge)", r.Name, r.Op)
	}
	if r.Consecutive < 0 {
		return fmt.Errorf("drift: rule %q: negative consecutive", r.Name)
	}
	if r.Consecutive == 0 {
		r.Consecutive = 1
	}
	switch r.Severity {
	case "":
		r.Severity = SeverityWarning
	case SeverityInfo, SeverityWarning, SeverityCritical:
	default:
		return fmt.Errorf("drift: rule %q: bad severity %q", r.Name, r.Severity)
	}
	return nil
}

// Alert is one fired rule at one epoch. No wall-clock field by design:
// the sequence must be byte-identical across reruns.
type Alert struct {
	Epoch     int     `json:"epoch"`
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Op        string  `json:"op"`
	Severity  string  `json:"severity"`
	// Streak is how many consecutive epochs the condition has held.
	Streak  int    `json:"streak"`
	Message string `json:"message"`
}

// Engine evaluates a rule set against a stream of deltas, tracking
// per-rule breach streaks for debounce.
type Engine struct {
	rules   []Rule
	streaks map[string]int
	firing  map[string]bool
}

// NewEngine validates the rules (defaults applied in place) and builds
// an engine. Duplicate rule names are rejected: the streak state is
// keyed by name.
func NewEngine(rules []Rule) (*Engine, error) {
	e := &Engine{streaks: make(map[string]int), firing: make(map[string]bool)}
	seen := make(map[string]bool)
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
		if seen[rules[i].Name] {
			return nil, fmt.Errorf("drift: duplicate rule %q", rules[i].Name)
		}
		seen[rules[i].Name] = true
		e.rules = append(e.rules, rules[i])
	}
	return e, nil
}

// Rules returns the engine's validated rules.
func (e *Engine) Rules() []Rule { return e.rules }

// Evaluate feeds one delta through every rule in declared order and
// returns the alerts that fire at epoch d.ToEpoch. A breached rule
// increments its streak and fires once the streak reaches Consecutive; a
// clean epoch resets the streak (and the firing state).
func (e *Engine) Evaluate(d *Delta) []Alert {
	var alerts []Alert
	for _, r := range e.rules {
		value, ok := d.Metric(r.Metric)
		if !ok {
			continue
		}
		if !r.breached(value) {
			e.streaks[r.Name] = 0
			e.firing[r.Name] = false
			continue
		}
		e.streaks[r.Name]++
		streak := e.streaks[r.Name]
		if streak < r.Consecutive {
			continue
		}
		e.firing[r.Name] = true
		alerts = append(alerts, Alert{
			Epoch:     d.ToEpoch,
			Rule:      r.Name,
			Metric:    r.Metric,
			Value:     value,
			Threshold: r.Threshold,
			Op:        r.Op,
			Severity:  r.Severity,
			Streak:    streak,
			Message: fmt.Sprintf("%s: %s=%s %s %s for %d consecutive epoch(s)",
				r.Name, r.Metric, trimFloat(value), r.Op, trimFloat(r.Threshold), streak),
		})
	}
	return alerts
}

// Firing returns the number of rules currently in a firing state.
func (e *Engine) Firing() int {
	n := 0
	for _, f := range e.firing {
		if f {
			n++
		}
	}
	return n
}

// trimFloat renders a float compactly for alert messages.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ParseRules reads a JSON rule array, rejecting unknown fields so typos
// in a rule file fail loudly instead of silently never firing.
func ParseRules(r io.Reader) ([]Rule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rules []Rule
	if err := dec.Decode(&rules); err != nil {
		return nil, fmt.Errorf("drift: rules: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("drift: rules: trailing data after rule array")
	}
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// DefaultRules is the monitor's out-of-the-box rule set, tuned to the
// seeded generator's epoch churn (tracker swaps at p≈0.3, page turnover
// at p≈0.5): a run of a few epochs reliably exercises both the
// immediately-firing and the debounced paths.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "third-party-churn", Metric: "third_party_jaccard", Op: "lt", Threshold: 0.9, Severity: SeverityWarning},
		{Name: "tracker-influx", Metric: "new_trackers", Op: "ge", Threshold: 3, Severity: SeverityWarning},
		{Name: "tracking-share-jump", Metric: "tracking_share_drift", Op: "gt", Threshold: 0.05, Severity: SeverityCritical},
		{Name: "tree-shape-shift", Metric: "tree_similarity", Op: "lt", Threshold: 0.5, Consecutive: 2, Severity: SeverityWarning},
		{Name: "coverage-collapse", Metric: "vetted_pages_drift_rel", Op: "lt", Threshold: -0.5, Severity: SeverityCritical},
		{Name: "persistent-churn", Metric: "third_party_jaccard", Op: "lt", Threshold: 0.95, Consecutive: 3, Severity: SeverityInfo},
	}
}
