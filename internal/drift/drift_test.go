package drift

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"webmeasure/internal/tree"
)

// mkBaseline hand-builds a minimal valid baseline for delta/rule tests.
func mkBaseline(epoch int, thirdParties, trackers []string, trackingShare float64) *Baseline {
	return &Baseline{
		Meta: Meta{
			SchemaVersion: SchemaVersion,
			Epoch:         epoch,
			Seed:          7,
			Sites:         2,
			TrancoSize:    20,
			PagesPerSite:  2,
			Profiles:      []string{"Sim1", "Sim2"},
		},
		SitesAnalyzed: 1,
		VettedPages:   2,
		TrackingShare: trackingShare,
		ThirdParties:  thirdParties,
		Trackers:      trackers,
		SiteBaselines: []*SiteBaseline{{
			Site:         "a.example",
			VettedPages:  2,
			ThirdParties: thirdParties,
			Trackers:     trackers,
		}},
	}
}

// rec builds a tree record root→children (depth 1 chain per child list).
func rec(site, page string, keys ...string) tree.Record {
	r := tree.Record{
		Site:    site,
		PageURL: page,
		Profile: "Sim1",
		Nodes:   []tree.NodeRecord{{Key: page}},
	}
	for _, k := range keys {
		r.Nodes = append(r.Nodes, tree.NodeRecord{Key: k, Parent: page})
	}
	return r
}

func TestSetDiff(t *testing.T) {
	onlyA, onlyB := setDiff(
		[]string{"a", "b", "c", "e"},
		[]string{"b", "d", "e", "f"},
	)
	if got, want := fmt.Sprint(onlyA), "[a c]"; got != want {
		t.Errorf("onlyA = %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(onlyB), "[d f]"; got != want {
		t.Errorf("onlyB = %s, want %s", got, want)
	}
}

func TestDiffIdentity(t *testing.T) {
	b := mkBaseline(3, []string{"cdn.example", "tr.example"}, []string{"tr.example"}, 0.25)
	b.SiteBaselines[0].Trees = []tree.Record{
		rec("a.example", "https://a.example/", "https://cdn.example/x.js"),
	}
	d, err := Diff(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromEpoch != 3 || d.ToEpoch != 3 {
		t.Errorf("epochs = %d→%d", d.FromEpoch, d.ToEpoch)
	}
	if len(d.NewThirdParties)+len(d.VanishedThirdParties) != 0 {
		t.Errorf("self-diff has third-party churn: %v / %v", d.NewThirdParties, d.VanishedThirdParties)
	}
	if d.ThirdPartyJaccard != 1 {
		t.Errorf("self-diff jaccard = %v", d.ThirdPartyJaccard)
	}
	if d.TrackingShareDrift != 0 {
		t.Errorf("self-diff tracking drift = %v", d.TrackingShareDrift)
	}
	if d.TreeSimilarity != 1 || d.EdgeSimilarity != 1 {
		t.Errorf("self-diff tree/edge similarity = %v/%v", d.TreeSimilarity, d.EdgeSimilarity)
	}
	if d.CommonPages != 1 {
		t.Errorf("common pages = %d", d.CommonPages)
	}
}

func TestDiffChurn(t *testing.T) {
	from := mkBaseline(0, []string{"a.net", "b.net", "c.net"}, []string{"a.net"}, 0.2)
	to := mkBaseline(1, []string{"b.net", "c.net", "d.net", "e.net"}, []string{"a.net", "d.net"}, 0.3)
	// One common page whose tree gained a node, one page vanished, one new.
	from.SiteBaselines[0].Trees = []tree.Record{
		rec("a.example", "https://a.example/", "https://b.net/x.js"),
		rec("a.example", "https://a.example/old", "https://c.net/y.js"),
	}
	to.SiteBaselines[0].Trees = []tree.Record{
		rec("a.example", "https://a.example/", "https://b.net/x.js", "https://d.net/z.js"),
		rec("a.example", "https://a.example/new", "https://e.net/w.js"),
	}
	d, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(d.NewThirdParties), "[d.net e.net]"; got != want {
		t.Errorf("new third parties = %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(d.VanishedThirdParties), "[a.net]"; got != want {
		t.Errorf("vanished third parties = %s, want %s", got, want)
	}
	// |∩|=2, |∪|=5.
	if d.ThirdPartyJaccard != 0.4 {
		t.Errorf("jaccard = %v, want 0.4", d.ThirdPartyJaccard)
	}
	if got, want := fmt.Sprint(d.NewTrackers), "[d.net]"; got != want {
		t.Errorf("new trackers = %s, want %s", got, want)
	}
	if len(d.VanishedTrackers) != 0 {
		t.Errorf("vanished trackers = %v", d.VanishedTrackers)
	}
	if d.TrackingShareDrift < 0.0999 || d.TrackingShareDrift > 0.1001 {
		t.Errorf("tracking drift = %v, want ~0.1", d.TrackingShareDrift)
	}
	if d.CommonPages != 1 {
		t.Fatalf("common pages = %d, want 1", d.CommonPages)
	}
	if d.TreeSimilarity <= 0 || d.TreeSimilarity >= 1 {
		t.Errorf("tree similarity = %v, want in (0,1) for a grown tree", d.TreeSimilarity)
	}
	if d.EdgeSimilarity <= 0 || d.EdgeSimilarity >= 1 {
		t.Errorf("edge similarity = %v, want in (0,1)", d.EdgeSimilarity)
	}
}

func TestDiffSiteTurnover(t *testing.T) {
	from := mkBaseline(0, []string{"x.net"}, nil, 0)
	to := mkBaseline(1, []string{"x.net"}, nil, 0)
	to.SiteBaselines = []*SiteBaseline{{Site: "b.example", VettedPages: 1}}
	d, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(d.VanishedSites), "[a.example]"; got != want {
		t.Errorf("vanished sites = %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(d.NewSites), "[b.example]"; got != want {
		t.Errorf("new sites = %s, want %s", got, want)
	}
	if len(d.SiteDeltas) != 0 {
		t.Errorf("no common site expected, got %d deltas", len(d.SiteDeltas))
	}
}

func TestDiffRejectsDifferentExperiments(t *testing.T) {
	a := mkBaseline(0, nil, nil, 0)
	for _, mutate := range []func(*Baseline){
		func(b *Baseline) { b.Meta.Seed = 8 },
		func(b *Baseline) { b.Meta.Sites = 3 },
		func(b *Baseline) { b.Meta.PagesPerSite = 9 },
		func(b *Baseline) { b.Meta.Profiles = []string{"Sim1"} },
		func(b *Baseline) { b.Meta.FaultProfile = "heavy" },
		func(b *Baseline) { b.Meta.SchemaVersion = SchemaVersion + 1 },
	} {
		b := mkBaseline(1, nil, nil, 0)
		mutate(b)
		if _, err := Diff(a, b); err == nil {
			t.Errorf("Diff accepted mismatched baselines (%+v vs %+v)", a.Meta, b.Meta)
		}
	}
}

func TestBaselineEncodeDecodeRoundTrip(t *testing.T) {
	b := mkBaseline(2, []string{"cdn.example"}, []string{"cdn.example"}, 0.5)
	b.SiteBaselines[0].Trees = []tree.Record{
		rec("a.example", "https://a.example/", "https://cdn.example/x.js"),
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encode→decode→encode is not byte-identical")
	}
}

func TestDecodeBaselineRejectsCorruption(t *testing.T) {
	valid := mkBaseline(0, []string{"a.net", "b.net"}, nil, 0)
	cases := []struct {
		name   string
		mutate func(*Baseline)
	}{
		{"wrong schema", func(b *Baseline) { b.Meta.SchemaVersion = 99 }},
		{"unsorted third parties", func(b *Baseline) { b.ThirdParties = []string{"b.net", "a.net"} }},
		{"duplicate third parties", func(b *Baseline) { b.ThirdParties = []string{"a.net", "a.net"} }},
		{"sites out of order", func(b *Baseline) {
			b.SiteBaselines = []*SiteBaseline{{Site: "b.example"}, {Site: "a.example"}}
		}},
		{"empty site", func(b *Baseline) { b.SiteBaselines = []*SiteBaseline{{Site: ""}} }},
		{"bad tree record", func(b *Baseline) {
			b.SiteBaselines[0].Trees = []tree.Record{{
				Site: "a.example", PageURL: "p", Profile: "Sim1",
				Nodes: []tree.NodeRecord{{Key: "root"}, {Key: "x", Parent: "missing"}},
			}}
		}},
	}
	for _, tc := range cases {
		b := mkBaseline(0, []string{"a.net", "b.net"}, nil, 0)
		tc.mutate(b)
		data, err := b.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if _, err := DecodeBaseline(data); err == nil {
			t.Errorf("%s: DecodeBaseline accepted corrupt input", tc.name)
		}
	}
	// Sanity: the unmutated baseline decodes.
	data, _ := valid.Encode()
	if _, err := DecodeBaseline(data); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
}

// deltaWith builds a delta whose named metric reads value (other metrics
// stay at benign defaults).
func deltaWith(epoch int, metric string, value float64) *Delta {
	d := &Delta{
		SchemaVersion:     SchemaVersion,
		FromEpoch:         epoch - 1,
		ToEpoch:           epoch,
		ThirdPartyJaccard: 1,
		TreeSimilarity:    1,
		EdgeSimilarity:    1,
	}
	switch metric {
	case "third_party_jaccard":
		d.ThirdPartyJaccard = value
	case "tracking_share_drift":
		d.TrackingShareDrift = value
	case "new_trackers":
		for i := 0; i < int(value); i++ {
			d.NewTrackers = append(d.NewTrackers, fmt.Sprintf("t%d.net", i))
		}
	case "tree_similarity":
		d.TreeSimilarity = value
	case "vetted_pages_drift_rel":
		d.VettedPagesDriftRel = value
	default:
		panic("unknown metric in test: " + metric)
	}
	return d
}

// TestEngineDebounce is the table-driven rule-engine suite the
// acceptance criteria pin: an alert fires only after N consecutive
// breaching epochs, keeps firing while the breach holds, and resets on a
// clean epoch.
func TestEngineDebounce(t *testing.T) {
	cases := []struct {
		name   string
		rule   Rule
		metric string
		values []float64 // one per epoch, starting at epoch 1
		fired  []int     // epochs an alert is expected at
	}{
		{
			name:   "immediate fire, consecutive=1",
			rule:   Rule{Name: "r", Metric: "third_party_jaccard", Op: "lt", Threshold: 0.9},
			metric: "third_party_jaccard",
			values: []float64{0.95, 0.8, 0.95, 0.7},
			fired:  []int{2, 4},
		},
		{
			name:   "debounce=2 needs two breaches in a row",
			rule:   Rule{Name: "r", Metric: "third_party_jaccard", Op: "lt", Threshold: 0.9, Consecutive: 2},
			metric: "third_party_jaccard",
			values: []float64{0.8, 0.95, 0.8, 0.8, 0.8},
			fired:  []int{4, 5},
		},
		{
			name:   "debounce=3 never reached when streak breaks",
			rule:   Rule{Name: "r", Metric: "tree_similarity", Op: "lt", Threshold: 0.5, Consecutive: 3},
			metric: "tree_similarity",
			values: []float64{0.4, 0.4, 0.6, 0.4, 0.4},
			fired:  nil,
		},
		{
			name:   "debounce=3 fires on the third and keeps firing",
			rule:   Rule{Name: "r", Metric: "tree_similarity", Op: "lt", Threshold: 0.5, Consecutive: 3},
			metric: "tree_similarity",
			values: []float64{0.4, 0.4, 0.4, 0.4},
			fired:  []int{3, 4},
		},
		{
			name:   "ge op with count metric",
			rule:   Rule{Name: "r", Metric: "new_trackers", Op: "ge", Threshold: 2},
			metric: "new_trackers",
			values: []float64{1, 2, 3, 0},
			fired:  []int{2, 3},
		},
		{
			name:   "gt boundary is exclusive",
			rule:   Rule{Name: "r", Metric: "tracking_share_drift", Op: "gt", Threshold: 0.05},
			metric: "tracking_share_drift",
			values: []float64{0.05, 0.051},
			fired:  []int{2},
		},
		{
			name:   "le boundary is inclusive",
			rule:   Rule{Name: "r", Metric: "vetted_pages_drift_rel", Op: "le", Threshold: -0.5},
			metric: "vetted_pages_drift_rel",
			values: []float64{-0.5, -0.4},
			fired:  []int{1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine([]Rule{tc.rule})
			if err != nil {
				t.Fatal(err)
			}
			var fired []int
			for i, v := range tc.values {
				epoch := i + 1
				alerts := eng.Evaluate(deltaWith(epoch, tc.metric, v))
				for _, a := range alerts {
					if a.Epoch != epoch {
						t.Errorf("alert epoch = %d, want %d", a.Epoch, epoch)
					}
					if a.Severity != SeverityWarning {
						t.Errorf("default severity = %q, want warning", a.Severity)
					}
					fired = append(fired, epoch)
				}
			}
			if got, want := fmt.Sprint(fired), fmt.Sprint(tc.fired); got != want {
				t.Errorf("fired at %s, want %s", got, want)
			}
		})
	}
}

func TestEngineStreakAndFiring(t *testing.T) {
	eng, err := NewEngine([]Rule{
		{Name: "a", Metric: "third_party_jaccard", Op: "lt", Threshold: 0.9},
		{Name: "b", Metric: "tree_similarity", Op: "lt", Threshold: 0.5, Consecutive: 2, Severity: SeverityCritical},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := deltaWith(1, "third_party_jaccard", 0.5)
	d.TreeSimilarity = 0.3
	alerts := eng.Evaluate(d)
	if len(alerts) != 1 || alerts[0].Rule != "a" || alerts[0].Streak != 1 {
		t.Fatalf("epoch 1 alerts = %+v, want only rule a at streak 1", alerts)
	}
	if eng.Firing() != 1 {
		t.Errorf("firing after epoch 1 = %d, want 1", eng.Firing())
	}
	d = deltaWith(2, "third_party_jaccard", 0.5)
	d.TreeSimilarity = 0.3
	alerts = eng.Evaluate(d)
	if len(alerts) != 2 {
		t.Fatalf("epoch 2 alerts = %+v, want both rules", alerts)
	}
	if alerts[0].Rule != "a" || alerts[1].Rule != "b" {
		t.Errorf("alerts not in rule order: %+v", alerts)
	}
	if alerts[1].Severity != SeverityCritical || alerts[1].Streak != 2 {
		t.Errorf("rule b alert = %+v", alerts[1])
	}
	if eng.Firing() != 2 {
		t.Errorf("firing after epoch 2 = %d, want 2", eng.Firing())
	}
	// A clean epoch resets everything.
	alerts = eng.Evaluate(deltaWith(3, "third_party_jaccard", 1))
	if len(alerts) != 0 {
		t.Fatalf("epoch 3 alerts = %+v, want none", alerts)
	}
	if eng.Firing() != 0 {
		t.Errorf("firing after clean epoch = %d, want 0", eng.Firing())
	}
}

func TestEngineValidation(t *testing.T) {
	bad := [][]Rule{
		{{Name: "", Metric: "tree_similarity", Op: "lt", Threshold: 1}},
		{{Name: "r", Metric: "nope", Op: "lt", Threshold: 1}},
		{{Name: "r", Metric: "tree_similarity", Op: "!=", Threshold: 1}},
		{{Name: "r", Metric: "tree_similarity", Op: "lt", Threshold: 1, Severity: "fatal"}},
		{{Name: "r", Metric: "tree_similarity", Op: "lt", Threshold: 1, Consecutive: -1}},
		{
			{Name: "dup", Metric: "tree_similarity", Op: "lt", Threshold: 1},
			{Name: "dup", Metric: "edge_similarity", Op: "lt", Threshold: 1},
		},
	}
	for i, rules := range bad {
		if _, err := NewEngine(rules); err == nil {
			t.Errorf("case %d: NewEngine accepted invalid rules %+v", i, rules)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(strings.NewReader(`[
		{"name": "churn", "metric": "third_party_jaccard", "op": "lt", "threshold": 0.9},
		{"name": "shape", "metric": "tree_similarity", "op": "lt", "threshold": 0.5, "consecutive": 2, "severity": "critical"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if rules[0].Consecutive != 1 || rules[0].Severity != SeverityWarning {
		t.Errorf("defaults not applied: %+v", rules[0])
	}
	if rules[1].Consecutive != 2 || rules[1].Severity != SeverityCritical {
		t.Errorf("explicit fields lost: %+v", rules[1])
	}
	for _, input := range []string{
		`[{"name": "x", "metric": "third_party_jaccard", "op": "lt", "threshold": 0.9, "typo": 1}]`,
		`[{"name": "x", "metric": "third_party_jaccard", "op": "lt", "threshold": 0.9}] trailing`,
		`{"name": "x"}`,
	} {
		if _, err := ParseRules(strings.NewReader(input)); err == nil {
			t.Errorf("ParseRules accepted %q", input)
		}
	}
}

func TestDefaultRulesValid(t *testing.T) {
	if _, err := NewEngine(DefaultRules()); err != nil {
		t.Fatal(err)
	}
}

func TestMetricCatalogComplete(t *testing.T) {
	d := &Delta{}
	for _, name := range MetricNames {
		if _, ok := d.Metric(name); !ok {
			t.Errorf("MetricNames lists %q but Metric does not resolve it", name)
		}
	}
	if _, ok := d.Metric("bogus"); ok {
		t.Error("Metric resolved an unknown name")
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	from := mkBaseline(0, []string{"a.net", "b.net"}, []string{"a.net"}, 0.2)
	to := mkBaseline(1, []string{"b.net", "c.net"}, []string{"c.net"}, 0.25)
	d, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	rows := []CSVRow{{Delta: d, Alerts: 2}}
	if err := WriteCSV(&buf1, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&buf2, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("WriteCSV is not deterministic")
	}
	lines := strings.Split(strings.TrimRight(buf1.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	if got, want := len(strings.Split(lines[0], ",")), len(CSVHeader); got != want {
		t.Errorf("header has %d columns, want %d", got, want)
	}
	if got, want := len(strings.Split(lines[1], ",")), len(CSVHeader); got != want {
		t.Errorf("row has %d columns, want %d", got, want)
	}
	if !strings.HasPrefix(lines[1], "0,1,") {
		t.Errorf("row = %q, want epochs 0,1 first", lines[1])
	}
}
