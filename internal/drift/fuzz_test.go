package drift

import (
	"bytes"
	"testing"

	"webmeasure/internal/tree"
)

// FuzzBaselineDecode hammers the baseline codec: arbitrary bytes must
// never panic, and anything DecodeBaseline accepts must re-encode and
// decode to the same bytes (the monitor trusts persisted baselines to
// round-trip).
func FuzzBaselineDecode(f *testing.F) {
	seed := mkBaseline(1, []string{"cdn.example", "tracker.example"}, []string{"tracker.example"}, 0.3)
	seed.SiteBaselines[0].Trees = []tree.Record{
		rec("a.example", "https://a.example/", "https://cdn.example/x.js"),
	}
	data, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"meta":{"schema_version":1}}`))
	f.Add([]byte(`{"meta":{"schema_version":1},"site_baselines":[{"site":"a","trees":[{"site":"a","page_url":"p","profile":"x","nodes":[{"key":"p"}]}]}]}`))
	f.Fuzz(func(t *testing.T, input []byte) {
		b, err := DecodeBaseline(input)
		if err != nil {
			return
		}
		enc, err := b.Encode()
		if err != nil {
			t.Fatalf("accepted baseline failed to encode: %v", err)
		}
		b2, err := DecodeBaseline(enc)
		if err != nil {
			t.Fatalf("re-encoded baseline rejected: %v", err)
		}
		enc2, err := b2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encode→decode→encode not byte-stable")
		}
	})
}
