package report

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webmeasure/internal/core"
	"webmeasure/internal/crawler"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "Title", []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	out := buf.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing separator: %q", lines[2])
	}
	// Column alignment: "LongHeader" starts at the same offset in all rows.
	off := strings.Index(lines[1], "LongHeader")
	if idx := strings.Index(lines[3], "1"); idx != off {
		t.Errorf("misaligned: header at %d, cell at %d", off, idx)
	}
}

func TestCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	CSV(&buf, []string{"a", "b"}, [][]string{{"x,y", `q"u`}})
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBar(t *testing.T) {
	if Bar(1, 1) != strings.Repeat("#", 40) {
		t.Error("full bar wrong")
	}
	if Bar(0, 1) != "" {
		t.Error("empty bar wrong")
	}
	if Bar(2, 1) != strings.Repeat("#", 40) {
		t.Error("overfull bar must clamp")
	}
	if Bar(1, 0) != "" {
		t.Error("zero max must not divide")
	}
}

func TestFormatters(t *testing.T) {
	if F(0.666) != "0.67" {
		t.Errorf("F = %q", F(0.666))
	}
	if Pct(0.42) != "42%" {
		t.Errorf("Pct = %q", Pct(0.42))
	}
	cases := map[int]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567", -5: "-5"}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}

func tinyExperiment(t *testing.T) *core.Analysis {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(5))
	list := tranco.Generate(120, 5)
	sample := list.Sample(tranco.ScaledBoundaries(120), 4, 5)
	ds, _, err := crawler.Run(context.Background(), crawler.Config{
		Universe: u, Sites: sample, MaxPages: 4, Instances: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	filter, _ := filterlist.Parse(u.FilterListText())
	ranks := map[string]int{}
	for _, e := range sample {
		ranks[e.Site] = e.Rank
	}
	a, err := core.New(ds, filter, core.Options{
		Profiles: []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"},
		SiteRank: ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestWriteAllProducesEverySection(t *testing.T) {
	a := tinyExperiment(t)
	exp := &Experiment{Analysis: a, RankBoundaries: tranco.ScaledBoundaries(120)}
	var buf bytes.Buffer
	exp.WriteAll(&buf)
	out := buf.String()
	sections := []string{
		"Crawl summary",
		"Visit timing",
		"Table 1", "Table 2", "Table 3", "Table 4a", "Table 4b",
		"Table 5", "Table 6", "Table 7",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 7", "Figure 8",
		"§4.2 dependency-chain stability",
		"Static vs dynamic phenomena",
		"Profile-pair node-set similarity matrix",
		"Attribution vs ground truth",
		"Measurement stability metric",
		"§4.2 subframe impact",
		"§4.4 identical configuration",
		"Statistical tests",
		"§5.1", "§5.2", "§5.3",
		"Takeaways (§8)",
	}
	for _, s := range sections {
		if !strings.Contains(out, s) {
			t.Errorf("report missing section %q", s)
		}
	}
	if strings.Contains(out, "%!") {
		t.Error("format directive leaked into output")
	}
}

func TestWriteAllSkipsTable7WithoutBoundaries(t *testing.T) {
	a := tinyExperiment(t)
	exp := &Experiment{Analysis: a}
	var buf bytes.Buffer
	exp.WriteAll(&buf)
	if strings.Contains(buf.String(), "Table 7") {
		t.Error("Table 7 rendered without rank boundaries")
	}
}

func TestWriteCSVFiles(t *testing.T) {
	a := tinyExperiment(t)
	exp := &Experiment{Analysis: a, RankBoundaries: tranco.ScaledBoundaries(120)}
	dir := t.TempDir()
	if err := exp.WriteCSVFiles(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table2_tree_overview.csv", "table3_depth_similarity.csv",
		"table4_resource_chains.csv", "table5_profile_totals.csv",
		"table6_profile_diffs.csv", "table7_rank_buckets.csv",
		"fig2_similarity_dist.csv", "fig3_node_types.csv",
		"fig4_similarity_by_depth.csv", "fig7_type_depth.csv",
		"fig8_children_by_depth.csv",
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing CSV %s: %v", name, err)
			continue
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has no data rows", name)
		}
		header := strings.Split(lines[0], ",")
		for i, row := range lines[1:] {
			if got := len(splitCSVRow(row)); got != len(header) {
				t.Errorf("%s row %d has %d cells, header has %d", name, i+1, got, len(header))
			}
		}
	}
	// Without rank boundaries, table 7 is skipped.
	dir2 := t.TempDir()
	if err := (&Experiment{Analysis: a}).WriteCSVFiles(dir2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "table7_rank_buckets.csv")); err == nil {
		t.Error("table 7 CSV written without boundaries")
	}
}

// splitCSVRow splits a CSV row respecting double-quoted cells.
func splitCSVRow(row string) []string {
	var cells []string
	var cur strings.Builder
	inQuotes := false
	for i := 0; i < len(row); i++ {
		switch c := row[i]; {
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			cells = append(cells, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	return append(cells, cur.String())
}
