package report

// The drift section of the text report: one delta (epoch-over-epoch or
// vs a pinned baseline) rendered as the same aligned tables the paper's
// sections use, followed by the alerts that fired on it.

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"webmeasure/internal/drift"
)

// WriteDriftSection renders one delta and its alerts. Deterministic for
// a given (delta, alerts) pair.
func WriteDriftSection(w io.Writer, d *drift.Delta, alerts []drift.Alert) {
	fmt.Fprintf(w, "== Longitudinal drift: epoch %d -> %d ==\n\n", d.FromEpoch, d.ToEpoch)

	Table(w, "Ecosystem drift", []string{"metric", "value"}, [][]string{
		{"third-party Jaccard", F(d.ThirdPartyJaccard)},
		{"new third parties", strconv.Itoa(len(d.NewThirdParties))},
		{"vanished third parties", strconv.Itoa(len(d.VanishedThirdParties))},
		{"new trackers", strconv.Itoa(len(d.NewTrackers))},
		{"vanished trackers", strconv.Itoa(len(d.VanishedTrackers))},
		{"tracking share", F(d.TrackingShareFrom) + " -> " + F(d.TrackingShareTo) + " (" + signedF(d.TrackingShareDrift) + ")"},
		{"new sites", strconv.Itoa(len(d.NewSites))},
		{"vanished sites", strconv.Itoa(len(d.VanishedSites))},
	})
	fmt.Fprintln(w)

	Table(w, "Structural drift", []string{"metric", "value"}, [][]string{
		{"common pages", strconv.Itoa(d.CommonPages)},
		{"cross-epoch tree similarity", F(d.TreeSimilarity)},
		{"cross-epoch edge similarity", F(d.EdgeSimilarity)},
		{"mean nodes drift", signedF(d.MeanNodesDrift) + " (" + signedPct(d.MeanNodesDriftRel) + ")"},
		{"mean depth drift", signedF(d.MeanDepthDrift)},
		{"child-sim drift (horizontal)", signedF(d.ChildSimDrift)},
		{"parent-sim drift (vertical)", signedF(d.ParentSimDrift)},
		{"depth-similarity drift", signedF(d.DepthSimilarityDrift)},
		{"vetted pages", strconv.Itoa(d.VettedPagesFrom) + " -> " + strconv.Itoa(d.VettedPagesTo) + " (" + signedPct(d.VettedPagesDriftRel) + ")"},
	})
	fmt.Fprintln(w)

	// Top drifting sites by third-party churn, most churn first; ties
	// stay in site order (SiteDeltas is sorted by site).
	const topSites = 5
	churn := make([]drift.SiteDelta, 0, len(d.SiteDeltas))
	for _, sd := range d.SiteDeltas {
		if len(sd.NewThirdParties)+len(sd.VanishedThirdParties) > 0 {
			churn = append(churn, sd)
		}
	}
	for i := 1; i < len(churn); i++ {
		for j := i; j > 0; j-- {
			a, b := churn[j-1], churn[j]
			if len(b.NewThirdParties)+len(b.VanishedThirdParties) > len(a.NewThirdParties)+len(a.VanishedThirdParties) {
				churn[j-1], churn[j] = b, a
			} else {
				break
			}
		}
	}
	if len(churn) > 0 {
		n := len(churn)
		if n > topSites {
			n = topSites
		}
		rows := make([][]string, 0, n)
		for _, sd := range churn[:n] {
			rows = append(rows, []string{
				sd.Site,
				strconv.Itoa(len(sd.NewThirdParties)),
				strconv.Itoa(len(sd.VanishedThirdParties)),
				F(sd.ThirdPartyJaccard),
				F(sd.TreeSimilarity),
			})
		}
		Table(w, "Top drifting sites", []string{"site", "new 3p", "gone 3p", "3p jaccard", "tree sim"}, rows)
		fmt.Fprintln(w)
	}

	if len(alerts) == 0 {
		fmt.Fprintln(w, "Alerts: none")
		return
	}
	rows := make([][]string, 0, len(alerts))
	for _, a := range alerts {
		rows = append(rows, []string{
			strings.ToUpper(a.Severity),
			a.Rule,
			a.Metric,
			F(a.Value),
			a.Op + " " + F(a.Threshold),
			strconv.Itoa(a.Streak),
		})
	}
	Table(w, "Alerts", []string{"severity", "rule", "metric", "value", "condition", "streak"}, rows)
}

// signedF renders a drift value with an explicit sign.
func signedF(x float64) string { return fmt.Sprintf("%+.2f", x) }

// signedPct renders a relative drift as a signed percentage.
func signedPct(x float64) string { return fmt.Sprintf("%+.1f%%", x*100) }
