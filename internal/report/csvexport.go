package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSVTable is one exported table or figure in CSV form.
type CSVTable struct {
	Name    string // file name, e.g. "table2_tree_overview.csv"
	Headers []string
	Rows    [][]string
}

// CSVTables materializes the analysis as the full set of CSV tables and
// figures, in a fixed order:
//
//	vetting.csv
//	table2_tree_overview.csv     table3_depth_similarity.csv
//	table4_resource_chains.csv   table5_profile_totals.csv
//	table6_profile_diffs.csv     table7_rank_buckets.csv
//	fig2_similarity_dist.csv     fig3_node_types.csv
//	fig4_similarity_by_depth.csv fig7_type_depth.csv
//	fig8_children_by_depth.csv
//
// (table7 is present only when RankBoundaries is set.) Both export paths —
// one file per table (WriteCSVFiles) and one concatenated stream
// (WriteCSV) — render exactly this inventory.
func (e *Experiment) CSVTables() []CSVTable {
	a := e.Analysis
	ff := func(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }
	ii := strconv.Itoa

	var tables []CSVTable

	vet := a.Vetting()
	tables = append(tables, CSVTable{
		Name:    "vetting.csv",
		Headers: []string{"pages_seen", "pages_vetted", "excluded_missing", "excluded_failed", "excluded_degraded", "excluded_build", "exclusion_share"},
		Rows: [][]string{{
			ii(vet.PagesSeen), ii(vet.PagesVetted),
			ii(vet.ExcludedMissing), ii(vet.ExcludedFailed),
			ii(vet.ExcludedDegraded), ii(vet.ExcludedBuild),
			ff(vet.ExclusionShare()),
		}},
	})

	ov := a.TreeOverview()
	tables = append(tables, CSVTable{
		Name:    "table2_tree_overview.csv",
		Headers: []string{"metric", "avg", "sd", "min", "max"},
		Rows: [][]string{
			{"nodes", ff(ov.Nodes.Mean), ff(ov.Nodes.SD), ff(ov.Nodes.Min), ff(ov.Nodes.Max)},
			{"depth", ff(ov.Depth.Mean), ff(ov.Depth.SD), ff(ov.Depth.Min), ff(ov.Depth.Max)},
			{"breadth", ff(ov.Breadth.Mean), ff(ov.Breadth.SD), ff(ov.Breadth.Min), ff(ov.Breadth.Max)},
		},
	})

	var t3 [][]string
	for _, r := range a.DepthSimilarityTable() {
		t3 = append(t3, []string{r.Label, string(r.Category), ff(r.Sim), ff(r.SD), ff(r.Max), ff(r.Min)})
	}
	tables = append(tables, CSVTable{
		Name:    "table3_depth_similarity.csv",
		Headers: []string{"test", "category", "sim", "sd", "max", "min"},
		Rows:    t3,
	})

	var t4 [][]string
	for _, r := range a.ResourceChainTable() {
		t4 = append(t4, []string{r.Type.String(), ff(r.SameChainShare), ff(r.ParentSim), ii(r.N)})
	}
	tables = append(tables, CSVTable{
		Name:    "table4_resource_chains.csv",
		Headers: []string{"type", "same_chain_share", "parent_sim", "n"},
		Rows:    t4,
	})

	var t5 [][]string
	for _, r := range a.ProfileTotals() {
		t5 = append(t5, []string{r.Profile, ii(r.Nodes), ii(r.ThirdParty), ii(r.Tracker), ii(r.MaxDepth), ii(r.MaxBreadth)})
	}
	tables = append(tables, CSVTable{
		Name:    "table5_profile_totals.csv",
		Headers: []string{"profile", "nodes", "third_party", "tracker", "max_depth", "max_breadth"},
		Rows:    t5,
	})

	var t6 [][]string
	for _, r := range a.ProfilePairTable(e.reference()) {
		t6 = append(t6, []string{
			r.Other, ff(r.FPChildrenPerfect), ff(r.FPChildrenNone),
			ff(r.TPChildrenPerfect), ff(r.TPChildrenNone),
			ff(r.FPParentPerfect), ff(r.FPParentNone),
			ff(r.TPParentPerfect), ff(r.TPParentNone),
			ff(r.MeanParentSim), ff(r.MeanChildSim),
		})
	}
	tables = append(tables, CSVTable{
		Name: "table6_profile_diffs.csv",
		Headers: []string{"profile", "fp_children_perfect", "fp_children_none",
			"tp_children_perfect", "tp_children_none",
			"fp_parent_perfect", "fp_parent_none",
			"tp_parent_perfect", "tp_parent_none",
			"mean_parent_sim", "mean_child_sim"},
		Rows: t6,
	})

	if len(e.RankBoundaries) > 0 {
		res := a.RankBuckets(e.RankBoundaries)
		var t7 [][]string
		for _, r := range res.Rows {
			t7 = append(t7, []string{r.Bucket, ff(r.MeanNodes), ff(r.ChildSim), ff(r.ParentSim), ii(r.Pages)})
		}
		tables = append(tables, CSVTable{
			Name:    "table7_rank_buckets.csv",
			Headers: []string{"bucket", "mean_nodes", "child_sim", "parent_sim", "pages"},
			Rows:    t7,
		})
	}

	d := a.SimilarityDistribution()
	cf, pf := d.Children.RelativeFrequencies(), d.Parents.RelativeFrequencies()
	var f2 [][]string
	for i := range cf {
		f2 = append(f2, []string{ff(d.Children.BinCenter(i)), ff(cf[i]), ff(pf[i])})
	}
	tables = append(tables, CSVTable{
		Name:    "fig2_similarity_dist.csv",
		Headers: []string{"bin_center", "children_freq", "parent_freq"},
		Rows:    f2,
	})

	var f3 [][]string
	for _, r := range a.NodeTypeVolume() {
		f3 = append(f3, []string{r.Depth, ff(r.FirstParty), ff(r.ThirdParty), ff(r.Tracking), ff(r.NonTracking), ii(r.Nodes)})
	}
	tables = append(tables, CSVTable{
		Name:    "fig3_node_types.csv",
		Headers: []string{"depth", "first_party", "third_party", "tracking", "non_tracking", "nodes"},
		Rows:    f3,
	})

	var f4 [][]string
	for _, r := range a.SimilarityByDepth() {
		f4 = append(f4, []string{r.Depth, ff(r.ChildSim), ff(r.ParentSim), ii(r.Nodes)})
	}
	tables = append(tables, CSVTable{
		Name:    "fig4_similarity_by_depth.csv",
		Headers: []string{"depth", "child_sim", "parent_sim", "nodes"},
		Rows:    f4,
	})

	var f7 [][]string
	for _, r := range a.TypeDepthSimilarity(8) {
		f7 = append(f7, []string{r.Type.String(), ii(r.Depth), ff(r.ChildSim), ff(r.ParentSim), ii(r.Nodes)})
	}
	tables = append(tables, CSVTable{
		Name:    "fig7_type_depth.csv",
		Headers: []string{"type", "depth", "child_sim", "parent_sim", "nodes"},
		Rows:    f7,
	})

	var f8 [][]string
	for _, r := range a.ChildrenByDepth(20, true) {
		f8 = append(f8, []string{ii(r.Depth), ff(r.Mean), ff(r.Median), ff(r.Q1), ff(r.Q3), ff(r.Max), ii(r.Nodes)})
	}
	tables = append(tables, CSVTable{
		Name:    "fig8_children_by_depth.csv",
		Headers: []string{"depth", "mean", "median", "q1", "q3", "max", "nodes"},
		Rows:    f8,
	})

	return tables
}

// WriteCSVFiles exports the analysis as CSV files into dir (created if
// missing), one file per table/figure, for external plotting. See
// CSVTables for the inventory.
func (e *Experiment) WriteCSVFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, t := range e.CSVTables() {
		f, err := os.Create(filepath.Join(dir, t.Name))
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		CSV(f, t.Headers, t.Rows)
		if err := f.Close(); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// WriteCSV streams every table and figure into one writer, each section
// introduced by a "# <name>" comment line and separated by a blank line —
// the single-response form an HTTP result download needs.
func (e *Experiment) WriteCSV(w io.Writer) error {
	for i, t := range e.CSVTables() {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return fmt.Errorf("report: %w", err)
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", t.Name); err != nil {
			return fmt.Errorf("report: %w", err)
		}
		CSV(w, t.Headers, t.Rows)
	}
	return nil
}
