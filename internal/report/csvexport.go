package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSVFiles exports the analysis as CSV files into dir (created if
// missing), one file per table/figure, for external plotting:
//
//	table2_tree_overview.csv     table3_depth_similarity.csv
//	table4_resource_chains.csv   table5_profile_totals.csv
//	table6_profile_diffs.csv     table7_rank_buckets.csv
//	fig2_similarity_dist.csv     fig3_node_types.csv
//	fig4_similarity_by_depth.csv fig7_type_depth.csv
//	fig8_children_by_depth.csv
func (e *Experiment) WriteCSVFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	a := e.Analysis

	writeFile := func(name string, headers []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		CSV(f, headers, rows)
		return f.Close()
	}
	ff := func(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }
	ii := strconv.Itoa

	ov := a.TreeOverview()
	if err := writeFile("table2_tree_overview.csv",
		[]string{"metric", "avg", "sd", "min", "max"},
		[][]string{
			{"nodes", ff(ov.Nodes.Mean), ff(ov.Nodes.SD), ff(ov.Nodes.Min), ff(ov.Nodes.Max)},
			{"depth", ff(ov.Depth.Mean), ff(ov.Depth.SD), ff(ov.Depth.Min), ff(ov.Depth.Max)},
			{"breadth", ff(ov.Breadth.Mean), ff(ov.Breadth.SD), ff(ov.Breadth.Min), ff(ov.Breadth.Max)},
		}); err != nil {
		return err
	}

	var t3 [][]string
	for _, r := range a.DepthSimilarityTable() {
		t3 = append(t3, []string{r.Label, string(r.Category), ff(r.Sim), ff(r.SD), ff(r.Max), ff(r.Min)})
	}
	if err := writeFile("table3_depth_similarity.csv",
		[]string{"test", "category", "sim", "sd", "max", "min"}, t3); err != nil {
		return err
	}

	var t4 [][]string
	for _, r := range a.ResourceChainTable() {
		t4 = append(t4, []string{r.Type.String(), ff(r.SameChainShare), ff(r.ParentSim), ii(r.N)})
	}
	if err := writeFile("table4_resource_chains.csv",
		[]string{"type", "same_chain_share", "parent_sim", "n"}, t4); err != nil {
		return err
	}

	var t5 [][]string
	for _, r := range a.ProfileTotals() {
		t5 = append(t5, []string{r.Profile, ii(r.Nodes), ii(r.ThirdParty), ii(r.Tracker), ii(r.MaxDepth), ii(r.MaxBreadth)})
	}
	if err := writeFile("table5_profile_totals.csv",
		[]string{"profile", "nodes", "third_party", "tracker", "max_depth", "max_breadth"}, t5); err != nil {
		return err
	}

	var t6 [][]string
	for _, r := range a.ProfilePairTable(e.reference()) {
		t6 = append(t6, []string{
			r.Other, ff(r.FPChildrenPerfect), ff(r.FPChildrenNone),
			ff(r.TPChildrenPerfect), ff(r.TPChildrenNone),
			ff(r.FPParentPerfect), ff(r.FPParentNone),
			ff(r.TPParentPerfect), ff(r.TPParentNone),
			ff(r.MeanParentSim), ff(r.MeanChildSim),
		})
	}
	if err := writeFile("table6_profile_diffs.csv",
		[]string{"profile", "fp_children_perfect", "fp_children_none",
			"tp_children_perfect", "tp_children_none",
			"fp_parent_perfect", "fp_parent_none",
			"tp_parent_perfect", "tp_parent_none",
			"mean_parent_sim", "mean_child_sim"}, t6); err != nil {
		return err
	}

	if len(e.RankBoundaries) > 0 {
		res := a.RankBuckets(e.RankBoundaries)
		var t7 [][]string
		for _, r := range res.Rows {
			t7 = append(t7, []string{r.Bucket, ff(r.MeanNodes), ff(r.ChildSim), ff(r.ParentSim), ii(r.Pages)})
		}
		if err := writeFile("table7_rank_buckets.csv",
			[]string{"bucket", "mean_nodes", "child_sim", "parent_sim", "pages"}, t7); err != nil {
			return err
		}
	}

	d := a.SimilarityDistribution()
	cf, pf := d.Children.RelativeFrequencies(), d.Parents.RelativeFrequencies()
	var f2 [][]string
	for i := range cf {
		f2 = append(f2, []string{ff(d.Children.BinCenter(i)), ff(cf[i]), ff(pf[i])})
	}
	if err := writeFile("fig2_similarity_dist.csv",
		[]string{"bin_center", "children_freq", "parent_freq"}, f2); err != nil {
		return err
	}

	var f3 [][]string
	for _, r := range a.NodeTypeVolume() {
		f3 = append(f3, []string{r.Depth, ff(r.FirstParty), ff(r.ThirdParty), ff(r.Tracking), ff(r.NonTracking), ii(r.Nodes)})
	}
	if err := writeFile("fig3_node_types.csv",
		[]string{"depth", "first_party", "third_party", "tracking", "non_tracking", "nodes"}, f3); err != nil {
		return err
	}

	var f4 [][]string
	for _, r := range a.SimilarityByDepth() {
		f4 = append(f4, []string{r.Depth, ff(r.ChildSim), ff(r.ParentSim), ii(r.Nodes)})
	}
	if err := writeFile("fig4_similarity_by_depth.csv",
		[]string{"depth", "child_sim", "parent_sim", "nodes"}, f4); err != nil {
		return err
	}

	var f7 [][]string
	for _, r := range a.TypeDepthSimilarity(8) {
		f7 = append(f7, []string{r.Type.String(), ii(r.Depth), ff(r.ChildSim), ff(r.ParentSim), ii(r.Nodes)})
	}
	if err := writeFile("fig7_type_depth.csv",
		[]string{"type", "depth", "child_sim", "parent_sim", "nodes"}, f7); err != nil {
		return err
	}

	var f8 [][]string
	for _, r := range a.ChildrenByDepth(20, true) {
		f8 = append(f8, []string{ii(r.Depth), ff(r.Mean), ff(r.Median), ff(r.Q1), ff(r.Q3), ff(r.Max), ii(r.Nodes)})
	}
	return writeFile("fig8_children_by_depth.csv",
		[]string{"depth", "mean", "median", "q1", "q3", "max", "nodes"}, f8)
}
