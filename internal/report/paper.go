package report

import (
	"fmt"
	"io"
	"sort"

	"webmeasure/internal/browser"
	"webmeasure/internal/core"
	"webmeasure/internal/stats"
)

// Experiment names the analysis inputs the renderers need.
type Experiment struct {
	Analysis *core.Analysis
	// RankBoundaries for Table 7 (nil skips the bucket table).
	RankBoundaries []int
	// Reference profile for Table 6 (default "Sim1").
	Reference string
	// NoAction profile name for the §4.4/§5.2 comparisons.
	NoAction string
	// SameConfig pair for the §4.4 identical-setup comparison.
	SameConfig [2]string
}

func (e *Experiment) reference() string {
	if e.Reference == "" {
		return "Sim1"
	}
	return e.Reference
}

func (e *Experiment) noAction() string {
	if e.NoAction == "" {
		return "NoAction"
	}
	return e.NoAction
}

// WriteAll renders every table and figure in paper order.
func (e *Experiment) WriteAll(w io.Writer) {
	e.WriteCrawlSummary(w)
	e.WriteTiming(w, 30000)
	e.WriteTable1(w)
	e.WriteTable2(w)
	e.WriteFigure1(w)
	e.WriteFigure2(w)
	e.WriteTable3(w)
	e.WriteFigure3(w)
	e.WriteTable4(w)
	e.WriteChainStability(w)
	e.WriteFigure4(w)
	e.WriteFigure5(w)
	e.WriteSubframeImpact(w)
	e.WriteTable5(w)
	e.WriteTable6(w)
	e.WritePairwiseMatrix(w)
	e.WriteSameConfig(w)
	e.WriteStatisticalTests(w)
	e.WriteStaticDynamic(w)
	e.WriteAttribution(w)
	e.WriteStability(w)
	e.WriteCase1UniqueNodes(w)
	e.WriteCase2Cookies(w)
	e.WriteCase3Tracking(w)
	if len(e.RankBoundaries) > 0 {
		e.WriteTable7(w)
	}
	e.WriteFigure7(w)
	e.WriteFigure8(w)
	e.WriteExecutiveSummary(w)
}

// WriteCrawlSummary prints the §4 dataset overview.
func (e *Experiment) WriteCrawlSummary(w io.Writer) {
	cs := e.Analysis.CrawlSummary()
	fmt.Fprintf(w, "== Crawl summary (§4) ==\n")
	fmt.Fprintf(w, "sites crawled: %s   distinct pages: %s   page visits: %s\n",
		Count(cs.Sites), Count(cs.Pages), Count(cs.Visits))
	fmt.Fprintf(w, "pages per site: avg %.1f (min %.0f, max %.0f)\n",
		cs.PagesPerSite.Mean, cs.PagesPerSite.Min, cs.PagesPerSite.Max)
	profiles := e.Analysis.Profiles()
	for _, p := range profiles {
		fmt.Fprintf(w, "  success %-9s %s  (%s visits)\n", p, Pct(cs.SuccessRate[p]), Count(cs.VisitsPerProfile[p]))
	}
	fmt.Fprintf(w, "vetted (all %d profiles succeeded): %s sites, %s pages (%s of pages)\n",
		len(profiles), Count(cs.VettedSites), Count(cs.VettedPages), Pct(cs.VettedShare))
	vet := cs.Vetting
	if vet.Excluded() > 0 {
		fmt.Fprintf(w, "excluded by vetting: %s pages (%s) — %s missing, %s failed, %s degraded, %s unbuildable\n",
			Count(vet.Excluded()), Pct(vet.ExclusionShare()),
			Count(vet.ExcludedMissing), Count(vet.ExcludedFailed),
			Count(vet.ExcludedDegraded), Count(vet.ExcludedBuild))
	}
	fmt.Fprintln(w)
}

// WriteTable1 prints the profile configuration (Table 1).
func (e *Experiment) WriteTable1(w io.Writer) {
	var rows [][]string
	for i, p := range browser.DefaultProfiles() {
		ui, gui := "yes", "yes"
		if !p.UserInteraction {
			ui = "no"
		}
		if !p.GUI {
			gui = "no"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), p.Name, p.VersionString, ui, gui, p.Country})
	}
	Table(w, "== Table 1: measurement profiles ==",
		[]string{"#", "Name", "Version", "User Interaction", "GUI", "Country"}, rows)
	fmt.Fprintln(w)
}

// WriteTable2 prints the tree overview (Table 2).
func (e *Experiment) WriteTable2(w io.Writer) {
	ov := e.Analysis.TreeOverview()
	rows := [][]string{
		{"nodes", F(ov.Nodes.Mean), F(ov.Nodes.SD), fmt.Sprintf("%.0f", ov.Nodes.Min), fmt.Sprintf("%.0f", ov.Nodes.Max)},
		{"depth", F(ov.Depth.Mean), F(ov.Depth.SD), fmt.Sprintf("%.0f", ov.Depth.Min), fmt.Sprintf("%.0f", ov.Depth.Max)},
		{"breadth", F(ov.Breadth.Mean), F(ov.Breadth.SD), fmt.Sprintf("%.0f", ov.Breadth.Min), fmt.Sprintf("%.0f", ov.Breadth.Max)},
	}
	Table(w, "== Table 2: overview of the measured trees ==",
		[]string{"Tree", "avg.", "SD", "min", "max"}, rows)
	fmt.Fprintf(w, "node present in X profiles (avg): %.1f (SD %.1f)\n", ov.MeanPresence, ov.PresenceSD)
	fmt.Fprintf(w, "present in all profiles: %s    present in one profile: %s\n",
		Pct(ov.ShareInAll), Pct(ov.ShareInOne))
	fmt.Fprintf(w, "pairwise data variation between two profiles: %s\n\n", Pct(ov.PairwiseVariation))
}

// WriteFigure1 prints the depth×breadth distribution (Fig. 1) as a coarse
// text heatmap.
func (e *Experiment) WriteFigure1(w io.Writer) {
	h := e.Analysis.DepthBreadthHistogram()
	fmt.Fprintf(w, "== Figure 1: tree depth x breadth distribution (%d trees) ==\n", h.Total())
	// Bucket breadth logarithmically for readability.
	buckets := []int{1, 5, 10, 20, 40, 80, 160, 320, 1 << 30}
	labels := []string{"1-5", "6-10", "11-20", "21-40", "41-80", "81-160", "161-320", ">320"}
	maxD := h.MaxY()
	for d := 0; d <= maxD; d++ {
		counts := make([]int, len(labels))
		for x := 0; x <= h.MaxX(); x++ {
			c := h.Count(x, d)
			if c == 0 {
				continue
			}
			for bi := 1; bi < len(buckets); bi++ {
				if x <= buckets[bi] {
					counts[bi-1] += c
					break
				}
			}
		}
		fmt.Fprintf(w, "depth %2d |", d)
		for _, c := range counts {
			fmt.Fprintf(w, " %5d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "breadth   ")
	for _, l := range labels {
		fmt.Fprintf(w, " %5s", l)
	}
	fmt.Fprint(w, "\n\n")
}

// WriteFigure2 prints the similarity distributions (Fig. 2).
func (e *Experiment) WriteFigure2(w io.Writer) {
	d := e.Analysis.SimilarityDistribution()
	fmt.Fprintf(w, "== Figure 2: distribution of node similarities ==\n")
	cf, pf := d.Children.RelativeFrequencies(), d.Parents.RelativeFrequencies()
	max := 0.0
	for i := range cf {
		if cf[i] > max {
			max = cf[i]
		}
		if pf[i] > max {
			max = pf[i]
		}
	}
	for i := range cf {
		fmt.Fprintf(w, "%.1f-%.1f  children %.2f %-40s  parent %.2f %s\n",
			float64(i)/10, float64(i+1)/10, cf[i], Bar(cf[i], max), pf[i], Bar(pf[i], max))
	}
	fmt.Fprintln(w)
}

// WriteTable3 prints the per-depth similarities (Table 3).
func (e *Experiment) WriteTable3(w io.Writer) {
	var rows [][]string
	for _, r := range e.Analysis.DepthSimilarityTable() {
		rows = append(rows, []string{r.Label, string(r.Category), F(r.Sim), F(r.SD), F(r.Max), F(r.Min)})
	}
	Table(w, "== Table 3: similarity of nodes at different depths ==",
		[]string{"Test", "cat.", "sim.", "SD", "max", "min"}, rows)
	fmt.Fprintln(w)
}

// WriteFigure3 prints the node-type volume per depth (Fig. 3).
func (e *Experiment) WriteFigure3(w io.Writer) {
	var rows [][]string
	for _, r := range e.Analysis.NodeTypeVolume() {
		rows = append(rows, []string{
			r.Depth, Pct(r.FirstParty), Pct(r.ThirdParty), Pct(r.Tracking), Pct(r.NonTracking), Count(r.Nodes),
		})
	}
	Table(w, "== Figure 3: volume of node types per depth ==",
		[]string{"Depth", "First party", "Third party", "Tracking", "Non-tracking", "Nodes"}, rows)
	fmt.Fprintln(w)
}

// WriteTable4 prints the resource-type chain stability (Tables 4a/4b).
func (e *Experiment) WriteTable4(w io.Writer) {
	rows := e.Analysis.ResourceChainTable()
	var a [][]string
	for i, r := range rows {
		if i >= 5 {
			break
		}
		a = append(a, []string{r.Type.String(), Pct(r.SameChainShare), Count(r.N)})
	}
	Table(w, "== Table 4a: resource types most often loaded by the same dependency chain ==",
		[]string{"Node type", "Same chains", "N"}, a)
	bySim := append([]core.ResourceChainRow(nil), rows...)
	sort.Slice(bySim, func(i, j int) bool { return bySim[i].ParentSim < bySim[j].ParentSim })
	var b [][]string
	for i, r := range bySim {
		if i >= 5 {
			break
		}
		b = append(b, []string{r.Type.String(), F(r.ParentSim), Count(r.N)})
	}
	Table(w, "== Table 4b: resource types with the lowest similarity ==",
		[]string{"Node type", "Similarity", "N"}, b)
	fmt.Fprintln(w)
}

// WriteChainStability prints the §4.2 headline chain numbers.
func (e *Experiment) WriteChainStability(w io.Writer) {
	c := e.Analysis.ChainStability()
	fmt.Fprintf(w, "== §4.2 dependency-chain stability (nodes in all trees) ==\n")
	fmt.Fprintf(w, "same chains (all):  %s    same chains (depth ≥2): %s    unique chains: %s\n",
		Pct(c.SameChainShareAll), Pct(c.SameChainShareDeep), Pct(c.UniqueChainShare))
	fmt.Fprintf(w, "same parent (same depth, depth ≥2): %s\n", Pct(c.SameParentShare))
	fmt.Fprintf(w, "same chain by context: first-party %s, third-party %s, tracking %s, non-tracking %s\n\n",
		Pct(c.SameChainFP), Pct(c.SameChainTP), Pct(c.SameChainTracking), Pct(c.SameChainOther))
}

// WriteFigure4 prints similarity by depth (Fig. 4).
func (e *Experiment) WriteFigure4(w io.Writer) {
	var rows [][]string
	for _, r := range e.Analysis.SimilarityByDepth() {
		rows = append(rows, []string{r.Depth, F(r.ChildSim), F(r.ParentSim), Count(r.Nodes)})
	}
	Table(w, "== Figure 4: similarity of children and parents by depth ==",
		[]string{"Depth", "Children", "Parent", "Nodes"}, rows)
	fmt.Fprintln(w)
}

// WriteFigure5 prints the resource-type shares by page similarity (Fig. 5).
func (e *Experiment) WriteFigure5(w io.Writer) {
	for _, kind := range []string{"parent", "children"} {
		f := e.Analysis.TypeSharesBySimilarity(kind, 8)
		fmt.Fprintf(w, "== Figure 5 (%s): resource-type share by average page similarity ==\n", kind)
		headers := []string{"Similarity bin"}
		for _, s := range f.Series {
			headers = append(headers, s.Type.String())
		}
		headers = append(headers, "pages")
		var rows [][]string
		for b := 0; b < len(f.BinEdges)-1; b++ {
			row := []string{fmt.Sprintf("%.2f-%.2f", f.BinEdges[b], f.BinEdges[b+1])}
			for _, s := range f.Series {
				row = append(row, Pct(s.Shares[b]))
			}
			row = append(row, Count(f.Pages[b]))
			rows = append(rows, row)
		}
		Table(w, "", headers, rows)
		fmt.Fprintln(w)
	}
}

// WriteSubframeImpact prints the §4.2 subframe effect.
func (e *Experiment) WriteSubframeImpact(w io.Writer) {
	s := e.Analysis.SubframeImpact()
	fmt.Fprintf(w, "== §4.2 subframe impact ==\n")
	fmt.Fprintf(w, "pages with subframes: %s (parent sim %s, child sim %s)\n",
		Count(s.WithSubframes), F(s.ParentSimWith), F(s.ChildSimWith))
	fmt.Fprintf(w, "pages without:        %s (parent sim %s, child sim %s)\n\n",
		Count(s.WithoutSubframes), F(s.ParentSimWithout), F(s.ChildSimWithout))
}

// WriteTable5 prints the per-profile totals (Table 5).
func (e *Experiment) WriteTable5(w io.Writer) {
	var rows [][]string
	for i, r := range e.Analysis.ProfileTotals() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), r.Profile, Count(r.Nodes), Count(r.ThirdParty),
			Count(r.Tracker), fmt.Sprintf("%d", r.MaxDepth), Count(r.MaxBreadth),
		})
	}
	Table(w, "== Table 5: implications depending on different profiles ==",
		[]string{"#", "Name", "Nodes", "Third party", "Tracker", "Depth", "Breadth"}, rows)
	fmt.Fprintln(w)
}

// WriteTable6 prints the profile differences vs the reference (Table 6).
func (e *Experiment) WriteTable6(w io.Writer) {
	rows := e.Analysis.ProfilePairTable(e.reference())
	headers := []string{"Metric"}
	for _, r := range rows {
		headers = append(headers, r.Other)
	}
	get := func(f func(core.ProfilePairRow) float64, pct bool) []string {
		out := make([]string, 0, len(rows))
		for _, r := range rows {
			if pct {
				out = append(out, Pct(f(r)))
			} else {
				out = append(out, F(f(r)))
			}
		}
		return out
	}
	var body [][]string
	add := func(label string, f func(core.ProfilePairRow) float64, pct bool) {
		body = append(body, append([]string{label}, get(f, pct)...))
	}
	add("FP children: perfect similarity", func(r core.ProfilePairRow) float64 { return r.FPChildrenPerfect }, true)
	add("FP children: no similarity", func(r core.ProfilePairRow) float64 { return r.FPChildrenNone }, true)
	add("TP children: perfect similarity", func(r core.ProfilePairRow) float64 { return r.TPChildrenPerfect }, true)
	add("TP children: no similarity", func(r core.ProfilePairRow) float64 { return r.TPChildrenNone }, true)
	add("FP parent: perfect similarity", func(r core.ProfilePairRow) float64 { return r.FPParentPerfect }, true)
	add("FP parent: no similarity", func(r core.ProfilePairRow) float64 { return r.FPParentNone }, true)
	add("TP parent: perfect similarity", func(r core.ProfilePairRow) float64 { return r.TPParentPerfect }, true)
	add("TP parent: no similarity", func(r core.ProfilePairRow) float64 { return r.TPParentNone }, true)
	add("parent similarity (mean, depth>=2)", func(r core.ProfilePairRow) float64 { return r.MeanParentSim }, false)
	add("child similarity (mean, >=1 child)", func(r core.ProfilePairRow) float64 { return r.MeanChildSim }, false)
	Table(w, fmt.Sprintf("== Table 6: profile differences compared to %s ==", e.reference()), headers, body)
	fmt.Fprintln(w)
}

// WriteSameConfig prints the identical-configuration comparison (§4.4).
func (e *Experiment) WriteSameConfig(w io.Writer) {
	pair := e.SameConfig
	if pair[0] == "" {
		pair = [2]string{"Sim1", "Sim2"}
	}
	sc := e.Analysis.CompareSameConfig(pair[0], pair[1])
	fmt.Fprintf(w, "== §4.4 identical configuration (%s vs %s, %d pages) ==\n", pair[0], pair[1], sc.Pages)
	fmt.Fprintf(w, "upper levels (≤5): %s    deeper levels: %s\n\n", F(sc.UpperSim), F(sc.DeepSim))
}

// WriteStatisticalTests prints the three §3.1 tests.
func (e *Experiment) WriteStatisticalTests(w io.Writer) {
	res := e.Analysis.RunTests(e.reference(), e.noAction())
	fmt.Fprintf(w, "== Statistical tests (α = .05) ==\n")
	print := func(name string, r stats.TestResult, err error) {
		if err != nil {
			fmt.Fprintf(w, "%-46s error: %v\n", name, err)
			return
		}
		verdict := "not significant"
		if r.Significant() {
			verdict = "significant"
		}
		fmt.Fprintf(w, "%-46s stat=%.2f p=%.3g n=%d → %s\n", name, r.Statistic, r.P, r.N, verdict)
	}
	print("Wilcoxon: children count vs child similarity", res.ChildrenVsSimilarity, res.ChildrenVsSimilarityErr)
	print("Mann-Whitney U: interaction vs node depth", res.InteractionDepth, res.InteractionDepthErr)
	print("Kruskal-Wallis: resource type vs similarity", res.TypeEffect, res.TypeEffectErr)
	fmt.Fprintln(w)
}

// WriteStaticDynamic prints the takeaway-3 contrast of static HTTP facets
// against dynamic content facets.
func (e *Experiment) WriteStaticDynamic(w io.Writer) {
	r := e.Analysis.StaticDynamic()
	fmt.Fprintf(w, "== Static vs dynamic phenomena (takeaway 3, %s nodes) ==\n", Count(r.NodesCompared))
	fmt.Fprintf(w, "static facets:  content type %s   status %s   body size (±25%%) %s\n",
		Pct(r.ContentTypeStable), Pct(r.StatusStable), Pct(r.SizeStable))
	fmt.Fprintf(w, "dynamic facets: presence %s   parent %s   children %s\n",
		Pct(r.PresenceStable), Pct(r.ParentStable), Pct(r.ChildStable))
	fmt.Fprintf(w, "static advantage: %+.2f — header-level studies replicate; content-level studies need repetitions\n\n",
		r.StaticAdvantage())
}

// WriteStability prints the experiment-level fluctuation metric (takeaway 1).
func (e *Experiment) WriteStability(w io.Writer) {
	r := e.Analysis.Stability()
	fmt.Fprintf(w, "== Measurement stability metric (takeaway 1) ==\n")
	fmt.Fprintf(w, "page stability: mean %.2f (SD %.2f) — %s high, %s medium, %s low\n",
		r.PageStability.Mean, r.PageStability.SD,
		Count(r.HighPages), Count(r.MediumPages), Count(r.LowPages))
	fmt.Fprintf(w, "expected new-node mass from one more measurement: %s\n", Pct(r.ExpectedDiscovery))
	fmt.Fprintf(w, "measurements to push unseen mass below 1%%: %d\n", r.RequiredMeasurements(0.01))
	fmt.Fprintf(w, "stability by population (presence of 1.0 = always observed):\n")
	for _, c := range r.ByCategory {
		fmt.Fprintf(w, "  %-22s presence %.2f  child sim %.2f  (%s nodes)\n",
			c.Category, c.MeanPresence, c.ChildSim, Count(c.Nodes))
	}
	fmt.Fprintln(w)
}

// WriteCase1UniqueNodes prints the §5.1 case study.
func (e *Experiment) WriteCase1UniqueNodes(w io.Writer) {
	u := e.Analysis.UniqueNodes()
	fmt.Fprintf(w, "== Case study §5.1: unique nodes ==\n")
	fmt.Fprintf(w, "unique nodes: %s of %s (%s)\n", Count(u.UniqueNodes), Count(u.TotalNodes), Pct(u.UniqueShare))
	fmt.Fprintf(w, "tracking: %s   third-party: %s   mean depth: %.1f (SD %.1f)   at depth one: %s\n",
		Pct(u.TrackingShare), Pct(u.ThirdPartyShare), u.DepthMean, u.DepthSD, Pct(u.ShareAtDepthOne))
	fmt.Fprintf(w, "mean share of unique nodes per tree: %s\n", Pct(u.MeanSharePerTree))
	fmt.Fprintf(w, "top resource types:")
	for i, ts := range u.TypeShares {
		if i >= 4 {
			break
		}
		fmt.Fprintf(w, " %s %s", ts.Type, Pct(ts.Share))
	}
	fmt.Fprintf(w, "\ntop hosting sites:")
	for i, hs := range u.TopHosts {
		if i >= 3 {
			break
		}
		fmt.Fprintf(w, " %s (%s)", hs.Host, Pct(hs.Share))
	}
	fmt.Fprint(w, "\n\n")
}

// WriteCase2Cookies prints the §5.2 case study.
func (e *Experiment) WriteCase2Cookies(w io.Writer) {
	c := e.Analysis.CookieStudy(e.noAction())
	fmt.Fprintf(w, "== Case study §5.2: cookies ==\n")
	fmt.Fprintf(w, "observations: %s   distinct (name,domain,path): %s\n",
		Count(c.TotalObservations), Count(c.DistinctCookies))
	var profs []string
	for p := range c.PerProfile {
		profs = append(profs, p)
	}
	sort.Strings(profs)
	for _, p := range profs {
		fmt.Fprintf(w, "  %-9s %s cookies\n", p, Count(c.PerProfile[p]))
	}
	fmt.Fprintf(w, "in all profiles: %s   in one profile: %s\n", Pct(c.ShareInAllProfiles), Pct(c.ShareInOneProfile))
	fmt.Fprintf(w, "per-page similarity: %.2f (SD %.2f)   vs %s only: %.2f\n",
		c.MeanJaccard.Mean, c.MeanJaccard.SD, e.noAction(), c.InteractionVsNone.Mean)
	fmt.Fprintf(w, "cookies with differing security attributes: %s\n\n", Count(c.AttributeMismatch))
}

// WriteCase3Tracking prints the §5.3 case study.
func (e *Experiment) WriteCase3Tracking(w io.Writer) {
	tr := e.Analysis.TrackingStudy()
	fmt.Fprintf(w, "== Case study §5.3: tracking requests ==\n")
	fmt.Fprintf(w, "tracking nodes: %s of all nodes   per-page tracking-set similarity: %.2f (SD %.2f)\n",
		Pct(tr.TrackingShare), tr.TrackingNodeSim.Mean, tr.TrackingNodeSim.SD)
	fmt.Fprintf(w, "children similarity: tracking %.2f vs non-tracking %.2f\n",
		tr.TrackingChildSim.Mean, tr.NonTrackingChildSim.Mean)
	fmt.Fprintf(w, "parent similarity:   tracking %.2f vs non-tracking %.2f\n",
		tr.TrackingParentSim.Mean, tr.NonTrackingParentSim.Mean)
	fmt.Fprintf(w, "mean children: tracking %.1f vs non-tracking %.1f\n",
		tr.TrackingMeanChildren, tr.NonTrackingMeanChildren)
	if len(tr.DepthShares) == 5 {
		fmt.Fprintf(w, "depth distribution: d1 %s, d2 %s, d3 %s, d4 %s, deeper %s\n",
			Pct(tr.DepthShares[0]), Pct(tr.DepthShares[1]), Pct(tr.DepthShares[2]),
			Pct(tr.DepthShares[3]), Pct(tr.DepthShares[4]))
	}
	fmt.Fprintf(w, "triggered by trackers: %s (of those, %s in third-party context)\n",
		Pct(tr.TriggeredByTracker), Pct(tr.TrackerParentThirdParty))
	fmt.Fprintf(w, "parent context: first-party %s; parent types: script %s, subframe %s, mainframe %s\n\n",
		Pct(tr.TriggeredByFirstParty), Pct(tr.ParentTypeScript), Pct(tr.ParentTypeSubframe), Pct(tr.ParentTypeMainframe))
}

// WriteTable7 prints the rank-bucket analysis (Table 7, Appendix F).
func (e *Experiment) WriteTable7(w io.Writer) {
	res := e.Analysis.RankBuckets(e.RankBoundaries)
	var rows [][]string
	for i, r := range res.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), r.Bucket, fmt.Sprintf("%.0f", r.MeanNodes),
			F(r.ChildSim), F(r.ParentSim), Count(r.Pages),
		})
	}
	Table(w, "== Table 7: tree size and similarity per rank bucket (Appendix F) ==",
		[]string{"#", "Bucket", "mean nodes", "child sim", "parent sim", "pages"}, rows)
	if res.TestError == nil {
		fmt.Fprintf(w, "Kruskal-Wallis nodes: H=%.2f p=%.3g; similarity: H=%.2f p=%.3g; ε²=%.4f\n",
			res.NodesTest.Statistic, res.NodesTest.P, res.SimTest.Statistic, res.SimTest.P, res.Epsilon2)
	} else {
		fmt.Fprintf(w, "Kruskal-Wallis unavailable: %v\n", res.TestError)
	}
	fmt.Fprintln(w)
}

// WriteFigure7 prints the per-type per-depth similarities (Fig. 7).
func (e *Experiment) WriteFigure7(w io.Writer) {
	rows := e.Analysis.TypeDepthSimilarity(8)
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Type.String(), fmt.Sprintf("%d", r.Depth), F(r.ChildSim), F(r.ParentSim), Count(r.Nodes),
		})
	}
	Table(w, "== Figure 7: similarity per resource type per depth (Appendix G) ==",
		[]string{"Type", "Depth", "Children", "Parent", "Nodes"}, body)
	fmt.Fprintln(w)
}

// WriteFigure8 prints children per depth (Fig. 8, Appendix E).
func (e *Experiment) WriteFigure8(w io.Writer) {
	var rows [][]string
	for _, r := range e.Analysis.ChildrenByDepth(20, true) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Depth), F(r.Mean), F(r.Median), F(r.Q1), F(r.Q3),
			fmt.Sprintf("%.0f", r.Max), Count(r.Nodes),
		})
	}
	Table(w, "== Figure 8: number of children per depth (nodes with ≥1 child, Appendix E) ==",
		[]string{"Depth", "mean", "median", "q1", "q3", "max", "nodes"}, rows)
	fmt.Fprintln(w)
}

// WritePairwiseMatrix prints the full profile×profile similarity matrix.
func (e *Experiment) WritePairwiseMatrix(w io.Writer) {
	names, m := e.Analysis.ProfilePairwiseMatrix()
	headers := append([]string{"Profile"}, names...)
	var rows [][]string
	for i, name := range names {
		row := []string{name}
		for j := range names {
			row = append(row, F(m[i][j]))
		}
		rows = append(rows, row)
	}
	Table(w, "== Profile-pair node-set similarity matrix ==", headers, rows)
	fmt.Fprintln(w)
}

// WriteTiming prints the Appendix C synchronization statistics.
func (e *Experiment) WriteTiming(w io.Writer, timeoutMS int) {
	rep := e.Analysis.Timing(timeoutMS)
	fmt.Fprintf(w, "== Visit timing (Appendix C) ==\n")
	fmt.Fprintf(w, "per-page start deviation between profiles: avg %.0fs (SD %.0fs, max %.0fs)\n",
		rep.StartDeviation.Mean, rep.StartDeviation.SD, rep.StartDeviation.Max)
	fmt.Fprintf(w, "page-load duration: avg %.0fms (max %.0fms); visits hitting the timeout: %s\n\n",
		rep.Duration.Mean, rep.Duration.Max, Pct(rep.TimeoutShare))
}

// WriteAttribution prints the ground-truth attribution evaluation (only
// meaningful on simulated datasets; real captures carry no ground truth).
func (e *Experiment) WriteAttribution(w io.Writer) {
	r := e.Analysis.Attribution()
	if r.Visits == 0 {
		return
	}
	fmt.Fprintf(w, "== Attribution vs ground truth (§3.2 heuristics, §6 limitation) ==\n")
	fmt.Fprintf(w, "visits evaluated: %s   attributable requests: %s\n", Count(r.Visits), Count(r.Attributable))
	fmt.Fprintf(w, "correct parent: %s   root fallbacks: %s   URL-merge artifacts: %s\n\n",
		Pct(r.Accuracy()), Count(r.RootFallbacks), Count(r.MergeArtifacts))
}

// WriteExecutiveSummary prints the paper's four takeaways (§8) with this
// run's measured numbers attached — the one-pager a reader should leave
// with.
func (e *Experiment) WriteExecutiveSummary(w io.Writer) {
	a := e.Analysis
	ov := a.TreeOverview()
	st := a.Stability()
	sd := a.StaticDynamic()
	chain := a.ChainStability()
	sc := e.SameConfig
	if sc[0] == "" {
		sc = [2]string{"Sim1", "Sim2"}
	}
	same := a.CompareSameConfig(sc[0], sc[1])

	fmt.Fprintf(w, "== Takeaways (§8), with this run's numbers ==\n")
	fmt.Fprintf(w, "1. Assess variance: a node appears in %.1f of %d profiles on average;\n",
		ov.MeanPresence, len(a.Profiles()))
	fmt.Fprintf(w, "   one more measurement would surface ~%s new node mass —\n", Pct(st.ExpectedDiscovery))
	fmt.Fprintf(w, "   plan for %d repetitions to push the unseen share below 1%%.\n",
		st.RequiredMeasurements(0.01))
	fmt.Fprintf(w, "2. Loading dependencies fluctuate: only %s of nodes keep the same\n",
		Pct(chain.SameChainShareDeep))
	fmt.Fprintf(w, "   dependency chain beyond depth one; conclusions built on chains are fragile.\n")
	fmt.Fprintf(w, "3. Static vs dynamic: HTTP-level facets are %s–%s stable, content\n",
		Pct(sd.SizeStable), Pct(sd.ContentTypeStable))
	fmt.Fprintf(w, "   presence only %s — know which side your phenomenon lives on.\n",
		Pct(sd.PresenceStable))
	fmt.Fprintf(w, "4. Repeat with different profiles: even the identical %s/%s pair agrees\n",
		sc[0], sc[1])
	fmt.Fprintf(w, "   only %s on upper tree levels (%s deeper).\n\n",
		F(same.UpperSim), F(same.DeepSim))
}
