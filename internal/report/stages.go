package report

import (
	"fmt"
	"io"

	"webmeasure/internal/trace"
)

// WriteStageBreakdown renders the tracer's per-stage/per-lane breakdown
// as an aligned table: span counts and simulated-time cost per pipeline
// stage (crawl.fetch, crawl.backoff, analyze.vet, analyze.build,
// analyze.compare, treediff.intern, treediff.fill) split by lane (the
// browser profile for crawl stages, the stage family otherwise). Durations
// are simulated milliseconds — the same axis the spans themselves use —
// so the table is deterministic for a fixed seed.
func WriteStageBreakdown(w io.Writer, stats []trace.StageStat) {
	if len(stats) == 0 {
		fmt.Fprintln(w, "Stage breakdown: no spans recorded (tracing off or everything sampled out)")
		return
	}
	rows := make([][]string, 0, len(stats))
	var spans int
	var totalUS int64
	for _, s := range stats {
		rows = append(rows, []string{
			s.Stage,
			s.Lane,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.1f", float64(s.TotalUS)/1000),
			fmt.Sprintf("%.2f", s.MeanUS()/1000),
			fmt.Sprintf("%.1f", float64(s.MaxUS)/1000),
		})
		spans += s.Count
		totalUS += s.TotalUS
	}
	Table(w, fmt.Sprintf("Stage breakdown (%d spans, %.1f simulated ms total)", spans, float64(totalUS)/1000),
		[]string{"stage", "lane", "spans", "total_ms", "mean_ms", "max_ms"}, rows)
}
