// Package report renders the analysis results as the tables and figure
// series the paper presents: aligned ASCII tables for Tables 1–7 and
// text-based series/heatmaps for Figures 1–8, plus CSV output for external
// plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned ASCII table. Every row must have len(headers)
// cells.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// CSV writes rows as comma-separated values with minimal quoting.
func CSV(w io.Writer, headers []string, rows [][]string) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
}

// Bar renders a horizontal bar of width proportional to value/max (max
// width 40 runes).
func Bar(value, max float64) string {
	const width = 40
	if max <= 0 {
		return ""
	}
	n := int(value / max * width)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// F formats a float with two decimals, the paper's table style.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a share as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Count formats an integer with thousands separators, as the paper prints
// large counts.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
