package coverage

import (
	"testing"

	"webmeasure/internal/browser"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func testPage(t *testing.T) (*webgen.Page, *filterlist.List) {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(42))
	s := u.GenerateSite(tranco.Entry{Rank: 2, Site: "coverage-site.example"})
	f, _ := filterlist.Parse(u.FilterListText())
	return s.Landing, f
}

func TestAccumulateMonotonicAndDeterministic(t *testing.T) {
	page, filter := testPage(t)
	r := &Runner{Filter: filter, Seed: 9}
	prof, _ := browser.ProfileByName("Sim1")
	c, err := r.Accumulate(page, prof, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Measurements() != 8 || len(c.PerVisit) != 8 {
		t.Fatalf("measurements = %d", c.Measurements())
	}
	for i := 1; i < len(c.Distinct); i++ {
		if c.Distinct[i] < c.Distinct[i-1] {
			t.Fatalf("accumulation must be monotone: %v", c.Distinct)
		}
	}
	if c.Total() < c.PerVisit[0] {
		t.Errorf("total %d < first visit %d", c.Total(), c.PerVisit[0])
	}
	// Repeated visits must discover something beyond the first visit on a
	// page with ads/volatile content.
	if c.Total() == c.Distinct[0] {
		t.Error("no new nodes across 8 visits — volatility dead")
	}
	// Deterministic given the seed.
	c2, err := r.Accumulate(page, prof, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Distinct {
		if c.Distinct[i] != c2.Distinct[i] {
			t.Fatal("accumulation not deterministic")
		}
	}
}

func TestCurveDerivedMetrics(t *testing.T) {
	c := Curve{Distinct: []int{50, 60, 65, 66}}
	if got := c.Total(); got != 66 {
		t.Errorf("Total = %d", got)
	}
	if got := c.NewShare(1); got != 50.0/66 {
		t.Errorf("NewShare(1) = %v", got)
	}
	if got := c.NewShare(2); got != 10.0/66 {
		t.Errorf("NewShare(2) = %v", got)
	}
	if got := c.CoverageAt(2); got != 60.0/66 {
		t.Errorf("CoverageAt(2) = %v", got)
	}
	if got := c.CoverageAt(99); got != 1 {
		t.Errorf("CoverageAt(99) = %v", got)
	}
	if got := c.MeasurementsFor(0.9); got != 2 {
		t.Errorf("MeasurementsFor(0.9) = %d", got)
	}
	if got := c.MeasurementsFor(1.01); got != 0 {
		t.Errorf("unreachable coverage should be 0, got %d", got)
	}
	empty := Curve{}
	if empty.Total() != 0 || empty.NewShare(1) != 0 || empty.CoverageAt(1) != 0 {
		t.Error("empty curve metrics must be zero")
	}
}

func TestAccumulateAcrossProfiles(t *testing.T) {
	page, filter := testPage(t)
	r := &Runner{Filter: filter, Seed: 3}
	prof, _ := browser.ProfileByName("Sim1")
	single, err := r.Accumulate(page, prof, 6)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := r.AccumulateAcrossProfiles(page, browser.DefaultProfiles(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: multiple profiles capture at least as much as repeating one —
	// typically more, because version/interaction gates differ. Allow
	// equality for pages without gated content.
	if multi.Total() < single.Total()-2 {
		t.Errorf("multi-profile coverage (%d) unexpectedly below single-profile (%d)",
			multi.Total(), single.Total())
	}
}

func TestAccumulateValidation(t *testing.T) {
	page, _ := testPage(t)
	r := &Runner{Seed: 1}
	prof, _ := browser.ProfileByName("Sim1")
	if _, err := r.Accumulate(page, prof, 0); err == nil {
		t.Error("zero visits should error")
	}
	if _, err := r.AccumulateAcrossProfiles(page, nil, 3); err == nil {
		t.Error("no profiles should error")
	}
}
