// Package coverage implements the repeated-measurement analysis behind the
// paper's fourth takeaway: "researchers should use different profiles and
// execute multiple measurements to assess the potential of 'randomized'
// findings." It renders the same page repeatedly (and across profiles) and
// reports node-accumulation curves — how much of a page's behaviour k
// measurements capture, in the spirit of species-accumulation analysis.
package coverage

import (
	"fmt"

	"webmeasure/internal/browser"
	"webmeasure/internal/filterlist"
	"webmeasure/internal/tree"
	"webmeasure/internal/webgen"
)

// Curve is a node-accumulation curve: Distinct[k-1] is the number of
// distinct nodes observed after k successful measurements.
type Curve struct {
	// Distinct is cumulative distinct node counts per measurement.
	Distinct []int
	// PerVisit is the node count of each individual measurement.
	PerVisit []int
	// Failures counts visits that failed and were retried.
	Failures int
}

// Measurements returns the number of successful measurements in the curve.
func (c Curve) Measurements() int { return len(c.Distinct) }

// Total returns the distinct nodes after all measurements.
func (c Curve) Total() int {
	if len(c.Distinct) == 0 {
		return 0
	}
	return c.Distinct[len(c.Distinct)-1]
}

// NewShare returns the share of the final node population that measurement
// k (1-based) added. NewShare(1) is the first visit's share.
func (c Curve) NewShare(k int) float64 {
	if k < 1 || k > len(c.Distinct) || c.Total() == 0 {
		return 0
	}
	prev := 0
	if k > 1 {
		prev = c.Distinct[k-2]
	}
	return float64(c.Distinct[k-1]-prev) / float64(c.Total())
}

// CoverageAt returns the fraction of the final population seen after k
// measurements.
func (c Curve) CoverageAt(k int) float64 {
	if k < 1 || c.Total() == 0 {
		return 0
	}
	if k > len(c.Distinct) {
		k = len(c.Distinct)
	}
	return float64(c.Distinct[k-1]) / float64(c.Total())
}

// MeasurementsFor returns the smallest k reaching the given coverage of
// the final population (0 when never reached).
func (c Curve) MeasurementsFor(coverage float64) int {
	for k := 1; k <= len(c.Distinct); k++ {
		if c.CoverageAt(k) >= coverage {
			return k
		}
	}
	return 0
}

// Runner renders repeated measurements of pages. Filter may be nil.
type Runner struct {
	Filter *filterlist.List
	// Seed individualizes the visit nonces.
	Seed int64
}

// Accumulate visits the page `visits` times with one profile, building the
// dependency tree of each visit and accumulating distinct node keys.
// Failed visits are retried with fresh nonces (they contribute to
// Curve.Failures) so the curve always holds `visits` measurements.
func (r *Runner) Accumulate(page *webgen.Page, prof browser.Profile, visits int) (Curve, error) {
	return r.accumulate(page, []browser.Profile{prof}, visits)
}

// AccumulateAcrossProfiles interleaves measurements across the given
// profiles (visit i uses profiles[i mod len]), the multi-profile strategy
// §4.3 recommends for capturing a complete view of a page.
func (r *Runner) AccumulateAcrossProfiles(page *webgen.Page, profiles []browser.Profile, visits int) (Curve, error) {
	return r.accumulate(page, profiles, visits)
}

func (r *Runner) accumulate(page *webgen.Page, profiles []browser.Profile, visits int) (Curve, error) {
	if visits < 1 {
		return Curve{}, fmt.Errorf("coverage: visits must be positive")
	}
	if len(profiles) == 0 {
		return Curve{}, fmt.Errorf("coverage: at least one profile required")
	}
	builder := &tree.Builder{Filter: r.Filter}
	seen := map[string]bool{}
	var curve Curve
	attempt := 0
	for k := 0; k < visits; k++ {
		prof := profiles[k%len(profiles)]
		b := browser.New(prof)
		var t *tree.Tree
		for {
			attempt++
			if attempt > visits*20 {
				return curve, fmt.Errorf("coverage: too many failed visits for %s", page.URL)
			}
			nonce := webgen.NonceFor(uint64(r.Seed), fmt.Sprintf("%s#%d", prof.Name, attempt), page.URL)
			v := b.Visit(page, nonce)
			if !v.Success {
				curve.Failures++
				continue
			}
			var err error
			t, err = builder.Build(v)
			if err != nil {
				curve.Failures++
				continue
			}
			break
		}
		count := 0
		for _, n := range t.Nodes() {
			if n.IsRoot() {
				continue
			}
			count++
			seen[n.Key] = true
		}
		curve.PerVisit = append(curve.PerVisit, count)
		curve.Distinct = append(curve.Distinct, len(seen))
	}
	return curve, nil
}
