package faults

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range append(Names(), "") {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "off"
		}
		if p.Name != want {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("hurricane"); err == nil {
		t.Error("unknown profile name must error")
	}
}

func TestOffInjectsNothing(t *testing.T) {
	in, err := New(1, Off())
	if err != nil {
		t.Fatal(err)
	}
	if in.Enabled() {
		t.Fatal("off profile reports enabled")
	}
	for i := 0; i < 500; i++ {
		out := in.RoundTrip("Sim1", urlN(i), 0)
		if out.Kind != None {
			t.Fatalf("off profile injected %v", out.Kind)
		}
	}
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Error("nil injector reports enabled")
	}
}

func urlN(i int) string {
	return "https://site.example/page" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestValidation(t *testing.T) {
	if _, err := New(1, Profile{ErrorProb: 0.7, TruncateProb: 0.5}); err == nil {
		t.Error("probability mass > 1 must be rejected")
	}
	if _, err := New(1, Profile{ErrorProb: -0.1}); err == nil {
		t.Error("negative probability must be rejected")
	}
}

// TestDeterminism: identical (seed, profile, url, attempt) tuples always
// yield identical outcomes; a different seed yields a different schedule.
func TestDeterminism(t *testing.T) {
	a, _ := New(42, Heavy())
	b, _ := New(42, Heavy())
	c, _ := New(43, Heavy())
	same, diff := 0, 0
	for i := 0; i < 2000; i++ {
		u := urlN(i)
		for attempt := 0; attempt < 3; attempt++ {
			oa := a.RoundTrip("Sim1", u, attempt)
			ob := b.RoundTrip("Sim1", u, attempt)
			if oa != ob {
				t.Fatalf("same seed diverged on %s attempt %d: %+v vs %+v", u, attempt, oa, ob)
			}
			if oa == c.RoundTrip("Sim1", u, attempt) {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced the identical fault schedule")
	}
}

// TestRates: the observed per-attempt fault mix tracks the configured
// probabilities within sampling tolerance.
func TestRates(t *testing.T) {
	p := Light()
	in, _ := New(7, p)
	const n = 20000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		out := in.RoundTrip("Sim1", urlN(i)+"/"+string(rune('0'+i%10)), 5) // attempt past flaky recovery
		counts[out.Kind]++
	}
	check := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v rate = %.3f, want ≈ %.3f", kind, got, want)
		}
	}
	// Attempt 5 is past every flaky schedule, so flaky pages contribute
	// None; the remaining kinds shrink by (1 - FlakyProb).
	keep := 1 - p.FlakyProb
	check(Error, p.ErrorProb*keep)
	check(ServerError, p.ServerErrorProb*keep)
	check(RedirectLoop, p.RedirectLoopProb*keep)
	check(Latency, p.LatencyProb*keep)
	check(Truncate, p.TruncateProb*keep)
}

// TestFlakyRecovers: a page selected as flaky fails its first
// FlakyFailures attempts and then deterministically succeeds.
func TestFlakyRecovers(t *testing.T) {
	p := Profile{Name: "flaky-only", FlakyProb: 1, FlakyFailures: 2}
	in, _ := New(9, p)
	u := "https://flaky.example/"
	for attempt := 0; attempt < 2; attempt++ {
		out := in.RoundTrip("Sim1", u, attempt)
		if out.Kind != Error || !out.Retryable {
			t.Fatalf("attempt %d: %+v, want retryable error", attempt, out)
		}
	}
	if out := in.RoundTrip("Sim1", u, 2); out.Kind != None {
		t.Fatalf("attempt 2 should recover, got %+v", out)
	}
}

// TestOutcomeShape: every kind carries exactly the fields its effect
// needs.
func TestOutcomeShape(t *testing.T) {
	in, _ := New(3, Heavy())
	seen := map[Kind]bool{}
	for i := 0; i < 50000 && len(seen) < 6; i++ {
		out := in.RoundTrip("Headless", urlN(i)+"/q", 9)
		seen[out.Kind] = true
		switch out.Kind {
		case Error, ServerError:
			if out.Failure == "" || !out.Retryable || !out.Fails() {
				t.Fatalf("%v outcome malformed: %+v", out.Kind, out)
			}
		case RedirectLoop:
			if out.Hops <= 0 || out.Failure == "" || !out.Fails() {
				t.Fatalf("redirect loop malformed: %+v", out)
			}
		case Latency:
			if out.ExtraLatencyMS <= 0 || out.Fails() || out.Degrades() {
				t.Fatalf("latency malformed: %+v", out)
			}
		case Truncate:
			if out.TruncateAtMS <= 0 || out.Fails() || !out.Degrades() {
				t.Fatalf("truncate malformed: %+v", out)
			}
		}
	}
	for _, k := range []Kind{Error, ServerError, RedirectLoop, Latency, Truncate} {
		if !seen[k] {
			t.Errorf("kind %v never observed under the heavy profile", k)
		}
	}
}

func TestRedirectChain(t *testing.T) {
	chain := RedirectChain(5, "Sim1", "https://a.example/", 6)
	if len(chain) != 6 {
		t.Fatalf("chain length = %d", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i] == chain[i-1] {
			t.Fatalf("consecutive hops identical at %d: %s", i, chain[i])
		}
	}
	again := RedirectChain(5, "Sim1", "https://a.example/", 6)
	for i := range chain {
		if chain[i] != again[i] {
			t.Fatal("redirect chain not deterministic")
		}
	}
	if RedirectChain(5, "Sim1", "https://a.example/", 0) != nil {
		t.Error("zero hops must yield nil")
	}
	if got := len(RedirectChain(5, "Sim1", "https://a.example/", 999)); got != redirectLoopCap {
		t.Errorf("hop cap not applied: %d", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Error: "error", ServerError: "server_error",
		Latency: "latency", Truncate: "truncate", RedirectLoop: "redirect_loop",
		Kind(99): "kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
