// Package faults injects deterministic failures into the crawler's fetch
// path. The paper's data-vetting step (§3.2) silently absorbs the
// timeouts, errors, and partial loads a real crawl produces — and "The
// Blind Men and the Internet" shows those failures differ per vantage
// point and bias similarity results. This package makes the synthetic web
// exactly as messy as a configured fault profile demands while keeping
// the whole experiment reproducible: every decision is a pure function of
// (master seed, fault profile, browser profile, page URL, attempt), so
// the same seed and profile yield the identical fault schedule regardless
// of worker count, visit order, or wall-clock timing.
//
// The injector plugs into the browser as a Transport-style hook (see
// browser.Transport): before a page-load attempt renders, the browser
// asks the injector for the attempt's Outcome and applies it — a hard
// error, a 5xx, an injected latency, a truncated body, a redirect loop,
// or a flaky-connection schedule that fails the first attempts and then
// recovers (the case bounded retries exist for).
package faults

import (
	"fmt"

	"webmeasure/internal/metrics"
	"webmeasure/internal/webgen"
)

// Kind enumerates the injectable fault outcomes.
type Kind uint8

// The fault kinds. None means the attempt proceeds untouched.
const (
	None Kind = iota
	// Error is a hard network-level failure (connection reset, DNS
	// servfail). The visit fails; a retry rolls independently.
	Error
	// ServerError is an origin 5xx on the navigation request. The visit
	// fails; 5xx responses are classically transient, so retryable.
	ServerError
	// Latency stalls the whole page load by ExtraLatencyMS before any
	// resource arrives; slow resources then cross the page timeout and
	// the measurement records a truncated (degraded) tree.
	Latency
	// Truncate cuts the response stream at TruncateAtMS: resources that
	// would finish later are never observed. The visit succeeds but is
	// degraded — exactly the partial load the vetting stage must catch.
	Truncate
	// RedirectLoop bounces the navigation between two URLs until the
	// browser's hop cap; the visit fails with the loop chain recorded.
	RedirectLoop
)

// String names the kind for counters and failure strings.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case ServerError:
		return "server_error"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	case RedirectLoop:
		return "redirect_loop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Outcome is the injector's decision for one fetch attempt.
type Outcome struct {
	Kind Kind
	// ExtraLatencyMS (Latency) delays the start of the render.
	ExtraLatencyMS int
	// TruncateAtMS (Truncate) is the simulated time the body stream is
	// cut; resources finishing later are never recorded.
	TruncateAtMS int
	// Hops (RedirectLoop) is how many loop hops the browser follows
	// before giving up.
	Hops int
	// Failure is the error string a failed visit records.
	Failure string
	// Retryable marks transient faults a bounded retry may clear.
	Retryable bool
}

// Fails reports whether the outcome fails the visit outright (as opposed
// to degrading or merely delaying it).
func (o Outcome) Fails() bool {
	return o.Kind == Error || o.Kind == ServerError || o.Kind == RedirectLoop
}

// Degrades reports whether the outcome yields a successful but partial
// visit.
func (o Outcome) Degrades() bool {
	return o.Kind == Truncate
}

// Profile is a named fault mix. All probabilities are per attempt and
// independent of each other only in the sense that a single uniform roll
// is carved into ranges — the total per-attempt fault probability is the
// sum of the individual probabilities (which must stay ≤ 1).
type Profile struct {
	Name string

	// ErrorProb is the per-attempt probability of a hard network error.
	ErrorProb float64
	// ServerErrorProb is the per-attempt probability of an origin 5xx.
	ServerErrorProb float64
	// RedirectLoopProb is the per-attempt probability of a redirect loop.
	RedirectLoopProb float64
	// LatencyProb injects LatencyMS of stall before the render starts.
	LatencyProb float64
	LatencyMS   int
	// TruncateProb cuts the body stream partway through the page load.
	TruncateProb float64
	// FlakyProb selects (browser profile, page) pairs whose first
	// FlakyFailures attempts deterministically fail and then recover —
	// the schedule that makes bounded retries observable and testable.
	FlakyProb     float64
	FlakyFailures int
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.ErrorProb > 0 || p.ServerErrorProb > 0 || p.RedirectLoopProb > 0 ||
		p.LatencyProb > 0 || p.TruncateProb > 0 || p.FlakyProb > 0
}

// totalProb is the per-attempt probability mass carved from one roll.
func (p Profile) totalProb() float64 {
	return p.ErrorProb + p.ServerErrorProb + p.RedirectLoopProb + p.LatencyProb + p.TruncateProb
}

// validate rejects profiles whose probability mass cannot be carved from
// a single uniform roll.
func (p Profile) validate() error {
	for _, v := range []float64{p.ErrorProb, p.ServerErrorProb, p.RedirectLoopProb,
		p.LatencyProb, p.TruncateProb, p.FlakyProb} {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: probability %v outside [0,1] in profile %q", v, p.Name)
		}
	}
	if t := p.totalProb(); t > 1 {
		return fmt.Errorf("faults: per-attempt probabilities sum to %v > 1 in profile %q", t, p.Name)
	}
	return nil
}

// Off is the empty profile: no injection, the seed pipeline's behavior.
func Off() Profile { return Profile{Name: "off"} }

// Light is the ~10% per-attempt fault mix the acceptance experiment runs:
// enough failures to exercise retries and vetting without drowning the
// similarity signal.
func Light() Profile {
	return Profile{
		Name:             "light",
		ErrorProb:        0.04,
		ServerErrorProb:  0.02,
		RedirectLoopProb: 0.01,
		LatencyProb:      0.02,
		LatencyMS:        8_000,
		TruncateProb:     0.02,
		FlakyProb:        0.05,
		FlakyFailures:    1,
	}
}

// Heavy is a hostile network: roughly a third of attempts are disturbed,
// the stress point for the degradation paths.
func Heavy() Profile {
	return Profile{
		Name:             "heavy",
		ErrorProb:        0.10,
		ServerErrorProb:  0.06,
		RedirectLoopProb: 0.03,
		LatencyProb:      0.08,
		LatencyMS:        15_000,
		TruncateProb:     0.06,
		FlakyProb:        0.10,
		FlakyFailures:    2,
	}
}

// Names lists the built-in profile names in escalation order.
func Names() []string { return []string{"off", "light", "heavy"} }

// ByName resolves a built-in profile. The empty string means off.
func ByName(name string) (Profile, error) {
	switch name {
	case "", "off":
		return Off(), nil
	case "light":
		return Light(), nil
	case "heavy":
		return Heavy(), nil
	default:
		return Profile{}, fmt.Errorf("faults: unknown fault profile %q (have %v)", name, Names())
	}
}

// Injector derives fault outcomes. The decision path holds no mutable
// state — every outcome is a pure function of its arguments — so one
// injector is safely shared by every browser instance of every profile
// client. The optional counters (InstrumentWith) are atomic and do not
// influence decisions.
type Injector struct {
	seed    uint64
	profile Profile
	// counters tallies injected faults by kind; written once by
	// InstrumentWith before the crawl starts, then only read.
	counters map[Kind]*metrics.Counter
}

// kinds lists every injectable (non-None) kind.
var kinds = []Kind{Error, ServerError, Latency, Truncate, RedirectLoop}

// InstrumentWith binds per-kind injected-fault counters
// (faults.injected.total{kind="..."} in the Prometheus exposition) from
// the registry to the injector. Call before the crawl starts; a nil
// registry or injector is a no-op.
func (in *Injector) InstrumentWith(reg *metrics.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.counters = make(map[Kind]*metrics.Counter, len(kinds))
	for _, k := range kinds {
		in.counters[k] = reg.Counter(metrics.Labeled("faults.injected.total", "kind", k.String()))
	}
}

// countInjected tallies a decided fault.
func (in *Injector) countInjected(k Kind) {
	if c := in.counters[k]; c != nil {
		c.Inc()
	}
}

// New creates an injector for a crawl seed and fault profile. Invalid
// profiles (probability mass > 1) are rejected.
func New(seed int64, p Profile) (*Injector, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Injector{seed: uint64(seed), profile: p}, nil
}

// Profile returns the injector's fault mix.
func (in *Injector) Profile() Profile { return in.profile }

// Enabled reports whether the injector can ever disturb an attempt. A nil
// injector is permanently disabled.
func (in *Injector) Enabled() bool {
	return in != nil && in.profile.Enabled()
}

// attemptKey folds the attempt number into the roll so every retry is an
// independent draw, while (seed, profile, url) alone pins the schedule.
func attemptKey(attempt int) string {
	return fmt.Sprintf("attempt%d", attempt)
}

// RoundTrip decides the fate of one page-load attempt. It implements the
// browser's Transport hook. Attempt counts from zero.
func (in *Injector) RoundTrip(profile, pageURL string, attempt int) Outcome {
	out := in.decide(profile, pageURL, attempt)
	if out.Kind != None {
		in.countInjected(out.Kind)
	}
	return out
}

// decide is the pure decision function behind RoundTrip.
func (in *Injector) decide(profile, pageURL string, attempt int) Outcome {
	if !in.Enabled() {
		return Outcome{}
	}
	p := in.profile
	// Flaky-then-recover is a per-(profile, page) schedule, not a
	// per-attempt roll: the first FlakyFailures attempts always fail, the
	// next always proceeds — deterministic recovery a retry loop can
	// count on.
	if p.FlakyProb > 0 &&
		webgen.RollProb(in.seed, 0, profile+"|"+pageURL, "faults.flaky") < p.FlakyProb {
		failures := p.FlakyFailures
		if failures <= 0 {
			failures = 1
		}
		if attempt < failures {
			return Outcome{
				Kind:      Error,
				Failure:   fmt.Sprintf("injected: flaky connection (attempt %d/%d)", attempt+1, failures),
				Retryable: true,
			}
		}
		return Outcome{}
	}
	r := webgen.RollProb(in.seed, 0, profile+"|"+pageURL, "faults."+attemptKey(attempt))
	switch {
	case r < p.ErrorProb:
		return Outcome{Kind: Error, Failure: "injected: connection reset", Retryable: true}
	case r < p.ErrorProb+p.ServerErrorProb:
		// 500, 502, 503 — pick deterministically for variety in the data.
		codes := []int{500, 502, 503}
		code := codes[webgen.RollChoice(in.seed, 0, profile+"|"+pageURL, "faults.5xx."+attemptKey(attempt), len(codes))]
		return Outcome{
			Kind:      ServerError,
			Failure:   fmt.Sprintf("injected: http %d", code),
			Retryable: true,
		}
	case r < p.ErrorProb+p.ServerErrorProb+p.RedirectLoopProb:
		hops := redirectLoopCap
		return Outcome{
			Kind:      RedirectLoop,
			Hops:      hops,
			Failure:   fmt.Sprintf("injected: redirect loop (%d hops)", hops),
			Retryable: true,
		}
	case r < p.ErrorProb+p.ServerErrorProb+p.RedirectLoopProb+p.LatencyProb:
		ms := p.LatencyMS
		if ms <= 0 {
			ms = 5_000
		}
		// 50–150% of the configured stall, deterministically jittered.
		jit := webgen.RollProb(in.seed, 0, profile+"|"+pageURL, "faults.latjit."+attemptKey(attempt))
		return Outcome{Kind: Latency, ExtraLatencyMS: ms/2 + int(jit*float64(ms))}
	case r < p.totalProb():
		// The cut lands between 20% and 80% of the page timeout window;
		// the browser clamps it to its own configured timeout.
		frac := 0.2 + 0.6*webgen.RollProb(in.seed, 0, profile+"|"+pageURL, "faults.cut."+attemptKey(attempt))
		return Outcome{Kind: Truncate, TruncateAtMS: int(frac * 30_000)}
	default:
		return Outcome{}
	}
}

// redirectLoopCap is how many hops the simulated browser follows before
// declaring a loop (Firefox's default network.http.redirection-limit is
// 20; the loop is detected well before).
const redirectLoopCap = 20

// RedirectChain materializes the URL sequence of an injected redirect
// loop: the navigation URL bounces between deterministically derived
// interstitial hosts until the hop cap. The chain is bookkeeping for the
// failed visit's request log (and the fuzzer's invariant surface): chains
// are deterministic, never empty for hops ≥ 1, and alternate between two
// distinct URLs after the first hop.
func RedirectChain(seed int64, profile, pageURL string, hops int) []string {
	if hops <= 0 {
		return nil
	}
	if hops > redirectLoopCap {
		hops = redirectLoopCap
	}
	a := "https://r1-" + webgen.RollToken(uint64(seed), 0, profile+"|"+pageURL, "faults.loop.a") + ".example/loop"
	b := "https://r2-" + webgen.RollToken(uint64(seed), 0, profile+"|"+pageURL, "faults.loop.b") + ".example/loop"
	chain := make([]string, hops)
	for i := range chain {
		if i%2 == 0 {
			chain[i] = a
		} else {
			chain[i] = b
		}
	}
	return chain
}
