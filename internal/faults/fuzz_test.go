package faults

import (
	"strings"
	"testing"
)

// FuzzRedirectChain guards the redirect-loop chain generator against
// arbitrary (seed, profile, url, hops) inputs: it must never panic, must
// be deterministic, must respect the hop cap, must never emit empty or
// consecutive-duplicate hops, and every hop must be an https URL distinct
// from the navigation target.
func FuzzRedirectChain(f *testing.F) {
	f.Add(int64(1), "Sim1", "https://site.example/page", 6)
	f.Add(int64(-9), "Headless", "", 0)
	f.Add(int64(0), "", "http://[::1", 25)
	f.Add(int64(1<<62), "Old", strings.Repeat("x", 500), 1)
	f.Add(int64(7), "NoAction", "https://a.example/?q=1&q=2", 1000000)
	f.Fuzz(func(t *testing.T, seed int64, profile, pageURL string, hops int) {
		chain := RedirectChain(seed, profile, pageURL, hops)
		if hops <= 0 {
			if chain != nil {
				t.Fatalf("hops=%d produced a chain", hops)
			}
			return
		}
		want := hops
		if want > redirectLoopCap {
			want = redirectLoopCap
		}
		if len(chain) != want {
			t.Fatalf("chain length %d, want %d", len(chain), want)
		}
		for i, hop := range chain {
			if !strings.HasPrefix(hop, "https://") {
				t.Fatalf("hop %d not https: %q", i, hop)
			}
			if hop == pageURL {
				t.Fatalf("hop %d equals the navigation URL", i)
			}
			if i > 0 && hop == chain[i-1] {
				t.Fatalf("consecutive duplicate hop at %d: %q", i, hop)
			}
		}
		again := RedirectChain(seed, profile, pageURL, hops)
		for i := range chain {
			if chain[i] != again[i] {
				t.Fatalf("chain not deterministic at hop %d", i)
			}
		}
	})
}

// FuzzRoundTrip guards the injector's decision function: no panic on any
// input, outcomes are deterministic, and every outcome is well-formed for
// its kind (failures carry a reason, delays carry a positive duration).
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), "Sim1", "https://site.example/", 0)
	f.Add(int64(2), "", "", -3)
	f.Add(int64(3), "Old", strings.Repeat("u", 300), 1<<30)
	f.Fuzz(func(t *testing.T, seed int64, profile, pageURL string, attempt int) {
		in, err := New(seed, Heavy())
		if err != nil {
			t.Fatal(err)
		}
		out := in.RoundTrip(profile, pageURL, attempt)
		if out != in.RoundTrip(profile, pageURL, attempt) {
			t.Fatal("RoundTrip not deterministic")
		}
		switch out.Kind {
		case Error, ServerError, RedirectLoop:
			if out.Failure == "" || !out.Fails() {
				t.Fatalf("failing outcome without reason: %+v", out)
			}
		case Latency:
			if out.ExtraLatencyMS <= 0 {
				t.Fatalf("latency outcome without delay: %+v", out)
			}
		case Truncate:
			if out.TruncateAtMS <= 0 {
				t.Fatalf("truncate outcome without cut point: %+v", out)
			}
		}
	})
}
