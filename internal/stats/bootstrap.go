package stats

import (
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Low, High float64
	// Point is the statistic on the original sample.
	Point float64
	// Level is the confidence level, e.g. 0.95.
	Level float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Low && v <= c.High }

// Width returns High − Low.
func (c CI) Width() float64 { return c.High - c.Low }

// BootstrapMeanCI computes a percentile-bootstrap confidence interval for
// the mean of xs: iters resamples with replacement, seeded for
// reproducibility. The paper reports bare means; intervals let a
// reproduction say whether a deviation is noise or signal. Returns a
// degenerate CI around the point estimate for samples of fewer than two
// observations.
func BootstrapMeanCI(xs []float64, level float64, iters int, seed int64) CI {
	return bootstrapCI(xs, Mean, level, iters, seed)
}

// BootstrapMedianCI is BootstrapMeanCI for the median.
func BootstrapMedianCI(xs []float64, level float64, iters int, seed int64) CI {
	median := func(s []float64) float64 { return Quantile(s, 0.5) }
	return bootstrapCI(xs, median, level, iters, seed)
}

func bootstrapCI(xs []float64, stat func([]float64) float64, level float64, iters int, seed int64) CI {
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if iters < 10 {
		iters = 1000
	}
	point := stat(xs)
	if len(xs) < 2 {
		return CI{Low: point, High: point, Point: point, Level: level}
	}
	rng := rand.New(rand.NewSource(seed))
	estimates := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		estimates[i] = stat(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(iters))
	hi := int((1 - alpha) * float64(iters))
	if hi >= iters {
		hi = iters - 1
	}
	return CI{Low: estimates[lo], High: estimates[hi], Point: point, Level: level}
}
