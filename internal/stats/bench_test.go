package stats

import (
	"fmt"
	"testing"
)

// benchSets builds five overlapping ~60-element sets, the population shape
// the tree-diff hot loop feeds PairwiseMeanJaccard (five profiles, medium
// page). Returned both as maps (legacy kernel) and as the sorted dense-id
// slices the interned kernel consumes.
func benchSets() ([]map[string]bool, [][]int32) {
	maps := make([]map[string]bool, 5)
	ints := make([][]int32, 5)
	for p := range maps {
		m := map[string]bool{}
		var ids []int32
		for i := 0; i < 64; i++ {
			if (i+p)%13 == 0 {
				continue
			}
			m[fmt.Sprintf("e%02d", i)] = true
			ids = append(ids, int32(i))
		}
		maps[p], ints[p] = m, ids
	}
	return maps, ints
}

func BenchmarkPairwiseJaccard(b *testing.B) {
	maps, ints := benchSets()
	b.Run("maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			PairwiseMeanJaccard(maps)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			PairwiseMeanJaccardSorted(ints)
		}
	})
}
