package stats

import (
	"errors"
	"math"
)

// SpearmanRho computes Spearman's rank correlation coefficient between two
// paired samples, with average ranks for ties, plus the two-sided p-value
// from the t-distribution approximation (normal for the sample sizes the
// analyses produce). Used to correlate per-node child counts with child
// similarity (§4.1's relationship, expressed as a coefficient).
func SpearmanRho(x, y []float64) (rho, p float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: paired samples must have equal length")
	}
	n := len(x)
	if n < 5 {
		return 0, 0, ErrInsufficientData
	}
	rx, _ := rankData(x)
	ry, _ := rankData(y)
	// Pearson correlation of the ranks.
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += rx[i]
		sy += ry[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, 0, ErrInsufficientData
	}
	rho = cov / math.Sqrt(vx*vy)
	// Normal approximation: z = rho * sqrt(n-1).
	z := rho * math.Sqrt(float64(n-1))
	p = 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return rho, p, nil
}

// CliffsDelta computes Cliff's δ, a non-parametric effect size for two
// independent samples: the probability a value from a exceeds one from b,
// minus the reverse. δ ∈ [-1, 1]; |δ| < .147 is conventionally negligible,
// < .33 small, < .474 medium, else large. Complements the Mann-Whitney U
// test's p-value with a magnitude, the practice Appendix F's ε² discussion
// calls for.
func CliffsDelta(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrInsufficientData
	}
	// O((n+m) log(n+m)) via merged ranking instead of the naive O(nm).
	ranks, _ := rankData(append(append([]float64(nil), a...), b...))
	na, nb := float64(len(a)), float64(len(b))
	var ra float64
	for i := 0; i < len(a); i++ {
		ra += ranks[i]
	}
	// U statistic for a over b, then δ = 2U/(na·nb) − 1.
	u := ra - na*(na+1)/2
	return 2*u/(na*nb) - 1, nil
}

// DeltaMagnitude names the conventional |δ| interpretation bucket.
func DeltaMagnitude(delta float64) string {
	switch d := math.Abs(delta); {
	case d < 0.147:
		return "negligible"
	case d < 0.33:
		return "small"
	case d < 0.474:
		return "medium"
	default:
		return "large"
	}
}
