package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d Mean=%v", s.N, s.Mean)
	}
	if !almostEqual(s.SD, 2.13809, 1e-4) {
		t.Errorf("SD = %v, want ~2.13809", s.SD)
	}
	if s.Min != 2 || s.Max != 9 || s.Median != 4.5 {
		t.Errorf("Min=%v Max=%v Median=%v", s.Min, s.Max, s.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary not zero: %+v", z)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("unexpected: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median quantile = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
}

func TestJaccard(t *testing.T) {
	a := ToSet([]string{"a", "b", "c"})
	b := ToSet([]string{"a", "c"})
	if j := Jaccard(a, b); !almostEqual(j, 2.0/3, 1e-12) {
		t.Errorf("J = %v, want 2/3", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Errorf("J(∅,∅) = %v, want 1", j)
	}
	if j := Jaccard(a, nil); j != 0 {
		t.Errorf("J(A,∅) = %v, want 0", j)
	}
	if j := JaccardSlices([]string{"x", "x", "y"}, []string{"y", "x"}); j != 1 {
		t.Errorf("duplicates should be ignored: %v", j)
	}
}

// TestPairwiseMeanJaccardPaperExample checks the worked example from
// Appendix D (Fig. 6): trees with depth-one children {a,b,c}, {a,c},
// {a,b,c} yield a mean pairwise Jaccard of (2/3 + 1 + 2/3)/3 ≈ .77.
func TestPairwiseMeanJaccardPaperExample(t *testing.T) {
	sets := []map[string]bool{
		ToSet([]string{"a", "b", "c"}),
		ToSet([]string{"a", "c"}),
		ToSet([]string{"a", "b", "c"}),
	}
	got := PairwiseMeanJaccard(sets)
	want := (2.0/3 + 1 + 2.0/3) / 3
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("mean pairwise J = %v, want %v", got, want)
	}
	// All-node comparison from the same appendix: (6/7 + 5/7 + 5/6)/3 = .8
	all := []map[string]bool{
		ToSet([]string{"a", "b", "c", "d", "e", "x", "y"}),
		ToSet([]string{"a", "c", "d", "e", "x", "y"}),
		ToSet([]string{"a", "c", "d", "e", "y"}),
	}
	got = PairwiseMeanJaccard(all)
	want = (6.0/7 + 5.0/7 + 5.0/6) / 3
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("all-node mean pairwise J = %v, want %v", got, want)
	}
	// Parent of node e: {d}, {d}, absent → (1 + 0 + 0)/3 ≈ .3
	parents := []map[string]bool{
		ToSet([]string{"d"}),
		ToSet([]string{"d"}),
		nil,
	}
	got = PairwiseMeanJaccard(parents)
	want = 1.0 / 3
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("parent mean pairwise J = %v, want %v", got, want)
	}
}

func TestPairwiseMeanJaccardDegenerate(t *testing.T) {
	if PairwiseMeanJaccard(nil) != 1 {
		t.Error("no sets should yield 1")
	}
	if PairwiseMeanJaccard([]map[string]bool{ToSet([]string{"a"})}) != 1 {
		t.Error("single set should yield 1")
	}
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		sim  float64
		want SimilarityCategory
	}{
		{1, SimilarityHigh}, {0.8, SimilarityHigh}, {0.79, SimilarityMedium},
		{0.3, SimilarityMedium}, {0.29, SimilarityLow}, {0, SimilarityLow},
	}
	for _, c := range cases {
		if got := Categorize(c.sim); got != c.want {
			t.Errorf("Categorize(%v) = %v, want %v", c.sim, got, c.want)
		}
	}
}

func TestRankData(t *testing.T) {
	ranks, ties := rankData([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
	if len(ties) != 1 || ties[0] != 2 {
		t.Errorf("ties = %v, want [2]", ties)
	}
}

// Property: ranks always sum to n(n+1)/2.
func TestRankSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		ranks, _ := rankData(xs)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return almostEqual(sum, n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	// Classic textbook example; W = 18, p ≈ 0.64 (normal approximation
	// with tie and continuity corrections).
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic != 18 {
		t.Errorf("W = %v, want 18", r.Statistic)
	}
	if r.N != 9 {
		t.Errorf("N = %d, want 9 (zero difference dropped)", r.N)
	}
	if r.P < 0.60 || r.P > 0.68 {
		t.Errorf("p = %v, want ≈ 0.64", r.P)
	}
	if r.Significant() {
		t.Error("should not be significant")
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("all-zero differences should error")
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 3 + float64(i%3) // consistent positive shift
	}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant() {
		t.Errorf("consistent shift not detected: p = %v", r.P)
	}
}

func TestMannWhitneyU(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9, 10}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic != 0 {
		t.Errorf("U = %v, want 0", r.Statistic)
	}
	if !almostEqual(r.P, 0.0122, 0.002) {
		t.Errorf("p = %v, want ≈ 0.0122", r.P)
	}
	if !r.Significant() {
		t.Error("complete separation should be significant")
	}
}

func TestMannWhitneySymmetric(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	r1, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MannWhitneyU(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r1.P, r2.P, 1e-12) || !almostEqual(r1.Statistic, r2.Statistic, 1e-12) {
		t.Errorf("not symmetric: %+v vs %+v", r1, r2)
	}
}

func TestMannWhitneyNoDifference(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r, err := MannWhitneyU(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant() {
		t.Errorf("identical samples significant: p = %v", r.P)
	}
}

func TestKruskalWallis(t *testing.T) {
	// H = 7.2 with df = 2 → p = exp(-3.6) ≈ 0.0273.
	r, err := KruskalWallis(
		[]float64{1, 2, 3},
		[]float64{4, 5, 6},
		[]float64{7, 8, 9},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Statistic, 7.2, 1e-9) {
		t.Errorf("H = %v, want 7.2", r.Statistic)
	}
	if !almostEqual(r.P, math.Exp(-3.6), 1e-6) {
		t.Errorf("p = %v, want %v", r.P, math.Exp(-3.6))
	}
	if r.DF != 2 {
		t.Errorf("df = %d, want 2", r.DF)
	}
}

func TestKruskalWallisTies(t *testing.T) {
	r, err := KruskalWallis(
		[]float64{1, 1, 2, 2},
		[]float64{2, 2, 3, 3},
		[]float64{3, 3, 4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic <= 0 {
		t.Errorf("H = %v, want > 0", r.Statistic)
	}
}

func TestKruskalWallisErrors(t *testing.T) {
	if _, err := KruskalWallis([]float64{1, 2, 3}); err == nil {
		t.Error("one group should error")
	}
	if _, err := KruskalWallis([]float64{1, 2}, nil); err == nil {
		t.Error("empty group should error")
	}
}

func TestEpsilonSquared(t *testing.T) {
	r := TestResult{Statistic: 7.2, N: 9}
	if e := EpsilonSquared(r); !almostEqual(e, 0.9, 1e-12) {
		t.Errorf("ε² = %v, want 0.9", e)
	}
	if e := EpsilonSquared(TestResult{N: 1}); e != 0 {
		t.Errorf("degenerate ε² = %v, want 0", e)
	}
}

func TestNormalSF(t *testing.T) {
	if p := normalSF(1.959963985); !almostEqual(p, 0.025, 1e-6) {
		t.Errorf("SF(1.96) = %v, want 0.025", p)
	}
	if p := normalSF(0); !almostEqual(p, 0.5, 1e-12) {
		t.Errorf("SF(0) = %v, want 0.5", p)
	}
}

// Property: for df = 2 the chi-square survival function is exactly
// exp(-x/2), a closed form we can check the incomplete gamma against.
func TestChiSquareSFClosedForm(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if math.IsNaN(x) || math.IsInf(x, 0) || x > 500 {
			return true
		}
		got := chiSquareSF(x, 2)
		want := math.Exp(-x / 2)
		return almostEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Spot checks for other dfs (reference values from standard tables).
	if p := chiSquareSF(3.841, 1); !almostEqual(p, 0.05, 5e-4) {
		t.Errorf("SF(3.841, 1) = %v, want ~0.05", p)
	}
	if p := chiSquareSF(16.919, 9); !almostEqual(p, 0.05, 5e-4) {
		t.Errorf("SF(16.919, 9) = %v, want ~0.05", p)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.05, 0.95, 1.5, -1} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // two 0.05s plus the clamped -1
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 0.95 plus the clamped 1.5
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	rf := h.RelativeFrequencies()
	var sum float64
	for _, f := range rf {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("relative frequencies sum to %v", sum)
	}
	if c := h.BinCenter(0); !almostEqual(c, 0.05, 1e-12) {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid config")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestHistogram2D(t *testing.T) {
	h := NewHistogram2D()
	h.Add(3, 44)
	h.Add(3, 44)
	h.Add(-1, 2)
	if h.Count(3, 44) != 2 || h.Count(0, 2) != 1 {
		t.Errorf("counts wrong: %d %d", h.Count(3, 44), h.Count(0, 2))
	}
	if h.MaxX() != 3 || h.MaxY() != 44 || h.Total() != 3 {
		t.Errorf("MaxX=%d MaxY=%d Total=%d", h.MaxX(), h.MaxY(), h.Total())
	}
}

func BenchmarkPairwiseMeanJaccard(b *testing.B) {
	sets := make([]map[string]bool, 5)
	for i := range sets {
		s := make(map[string]bool)
		for j := 0; j < 50; j++ {
			if (j+i)%7 != 0 {
				s["node-"+string(rune('a'+j%26))+string(rune('0'+j/26))] = true
			}
		}
		sets[i] = s
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PairwiseMeanJaccard(sets)
	}
}

func BenchmarkKruskalWallis(b *testing.B) {
	groups := make([][]float64, 5)
	for i := range groups {
		g := make([]float64, 1000)
		for j := range g {
			g[j] = float64((j*31+i*17)%97) / 97
		}
		groups[i] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KruskalWallis(groups...); err != nil {
			b.Fatal(err)
		}
	}
}
