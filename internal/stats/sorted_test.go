package stats

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// Equivalence suite for the sorted-merge kernel: on any input, the int32
// kernel must agree exactly (==, not within epsilon) with the map kernel —
// both compute the same (intersection, union) integers before the one
// division, so any drift is a logic bug, not float noise.

// randIDSet draws a sorted, duplicate-free set of dense ids from a small
// pool (overlap-heavy, like interned node keys of similar trees).
func randIDSet(rng *rand.Rand, maxLen int) []int32 {
	n := rng.Intn(maxLen + 1)
	seen := map[int32]bool{}
	for i := 0; i < n; i++ {
		seen[int32(rng.Intn(2*maxLen))] = true
	}
	out := make([]int32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// asStringSet maps dense ids onto the map kernel's domain.
func asStringSet(ids []int32) map[string]bool {
	s := make(map[string]bool, len(ids))
	for _, id := range ids {
		s[fmt.Sprintf("e%04d", id)] = true
	}
	return s
}

func TestJaccardSortedMatchesMapKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		a, b := randIDSet(rng, 12), randIDSet(rng, 12)
		got := JaccardSorted(a, b)
		want := Jaccard(asStringSet(a), asStringSet(b))
		if got != want {
			t.Fatalf("JaccardSorted(%v, %v) = %v, map kernel = %v", a, b, got, want)
		}
		if sym := JaccardSorted(b, a); sym != got {
			t.Fatalf("JaccardSorted not symmetric: %v vs %v", got, sym)
		}
	}
}

func TestJaccardSortedEmptyConvention(t *testing.T) {
	if j := JaccardSorted[int32](nil, nil); j != 1 {
		t.Errorf("J(∅,∅) = %v, want 1", j)
	}
	if j := JaccardSorted(nil, []int32{3}); j != 0 {
		t.Errorf("J(∅,{3}) = %v, want 0", j)
	}
	if j := JaccardSorted([]int32{3}, []int32{3}); j != 1 {
		t.Errorf("J({3},{3}) = %v, want 1", j)
	}
}

func TestJaccardSortedToleratesDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 500; i++ {
		a, b := randIDSet(rng, 10), randIDSet(rng, 10)
		dup := func(xs []int32) []int32 {
			var out []int32
			for _, x := range xs {
				for r := 0; r <= rng.Intn(3); r++ {
					out = append(out, x)
				}
			}
			return out
		}
		if got, want := JaccardSorted(dup(a), dup(b)), JaccardSorted(a, b); got != want {
			t.Fatalf("duplicate runs changed J: %v vs %v (a=%v b=%v)", got, want, a, b)
		}
	}
}

func TestPairwiseMeanJaccardSortedMatchesMapKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 500; i++ {
		ints := make([][]int32, 2+rng.Intn(5))
		maps := make([]map[string]bool, len(ints))
		for j := range ints {
			ints[j] = randIDSet(rng, 10)
			maps[j] = asStringSet(ints[j])
		}
		if got, want := PairwiseMeanJaccardSorted(ints), PairwiseMeanJaccard(maps); got != want {
			t.Fatalf("sorted mean %v != map mean %v for %v", got, want, ints)
		}
	}
	if PairwiseMeanJaccardSorted[int32](nil) != 1 ||
		PairwiseMeanJaccardSorted([][]int32{{1}}) != 1 {
		t.Error("fewer than two sets must yield 1")
	}
}

func TestJaccardSlicesMatchesSetProjection(t *testing.T) {
	// The no-map JaccardSlices must keep the historical contract on
	// duplicate-bearing and unsorted inputs: score the set projections.
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 500; i++ {
		a, b := randSet(rng, 8), randSet(rng, 8)
		var as, bs []string
		for k := range a {
			for r := 0; r <= rng.Intn(3); r++ {
				as = append(as, k)
			}
		}
		for k := range b {
			for r := 0; r <= rng.Intn(3); r++ {
				bs = append(bs, k)
			}
		}
		rng.Shuffle(len(as), func(i, j int) { as[i], as[j] = as[j], as[i] })
		rng.Shuffle(len(bs), func(i, j int) { bs[i], bs[j] = bs[j], bs[i] })
		if got, want := JaccardSlices(as, bs), Jaccard(a, b); got != want {
			t.Fatalf("JaccardSlices %v != Jaccard %v", got, want)
		}
	}
	if JaccardSlices(nil, nil) != 1 {
		t.Error("JaccardSlices(∅,∅) must be 1")
	}
}

// FuzzSortedMerge cross-checks the linear-merge intersection/union counts
// against a map reference on arbitrary (unsorted, duplicate-bearing) byte
// strings, after sorting them as the kernel requires.
func FuzzSortedMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{5, 5, 5}, []byte{5})
	f.Add([]byte{0, 255}, []byte{255, 255, 0})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a := make([]int32, len(ab))
		for i, x := range ab {
			a[i] = int32(x)
		}
		b := make([]int32, len(bb))
		for i, x := range bb {
			b[i] = int32(x)
		}
		slices.Sort(a)
		slices.Sort(b)
		inter, union := sortedInterUnion(a, b)

		seenA, seenB := map[int32]bool{}, map[int32]bool{}
		for _, x := range a {
			seenA[x] = true
		}
		for _, x := range b {
			seenB[x] = true
		}
		wantInter, wantUnion := 0, len(seenA)
		for x := range seenB {
			if seenA[x] {
				wantInter++
			} else {
				wantUnion++
			}
		}
		if inter != wantInter || union != wantUnion {
			t.Fatalf("merge (%d,%d) != reference (%d,%d) for %v vs %v",
				inter, union, wantInter, wantUnion, a, b)
		}
		if inter > union {
			t.Fatalf("intersection %d exceeds union %d", inter, union)
		}
	})
}
