package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 4, 9, 16, 30, 40, 60, 90} // monotone, non-linear
	rho, p, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Errorf("rho = %v, want 1", rho)
	}
	if p > 0.05 {
		t.Errorf("p = %v for perfect correlation", p)
	}
	// Perfect anti-correlation.
	rev := make([]float64, len(y))
	for i := range y {
		rev[i] = -y[i]
	}
	rho, _, err = SpearmanRho(x, rev)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, -1, 1e-12) {
		t.Errorf("rho = %v, want -1", rho)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example: ranks with one inversion.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 3, 5, 4}
	rho, _, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// d² = (0,0,0,1,1) → rho = 1 - 6*2/(5*24) = 0.9.
	if !almostEqual(rho, 0.9, 1e-12) {
		t.Errorf("rho = %v, want 0.9", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, _, err := SpearmanRho([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := SpearmanRho([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few points should error")
	}
	if _, _, err := SpearmanRho([]float64{1, 1, 1, 1, 1}, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Error("constant sample should error")
	}
}

// Property: rho is symmetric and bounded.
func TestSpearmanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 10 {
			return true
		}
		x := make([]float64, 0, len(raw)/2)
		y := make([]float64, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := raw[i], raw[i+1]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
				return true
			}
			x = append(x, a)
			y = append(y, b)
		}
		r1, _, err1 := SpearmanRho(x, y)
		r2, _, err2 := SpearmanRho(y, x)
		if err1 != nil || err2 != nil {
			return true
		}
		return almostEqual(r1, r2, 1e-9) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCliffsDelta(t *testing.T) {
	// Complete separation: δ = 1.
	d, err := CliffsDelta([]float64{5, 6, 7}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("δ = %v, want 1", d)
	}
	// Reversed: δ = -1.
	d, _ = CliffsDelta([]float64{1, 2, 3}, []float64{5, 6, 7})
	if !almostEqual(d, -1, 1e-12) {
		t.Errorf("δ = %v, want -1", d)
	}
	// Identical samples: δ = 0 (ties split evenly).
	d, _ = CliffsDelta([]float64{1, 2, 3}, []float64{1, 2, 3})
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("δ = %v, want 0", d)
	}
	// Hand-computed: a={1,3}, b={2}: pairs (1<2 → -1), (3>2 → +1) → δ=0.
	d, _ = CliffsDelta([]float64{1, 3}, []float64{2})
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("δ = %v, want 0", d)
	}
	if _, err := CliffsDelta(nil, []float64{1}); err == nil {
		t.Error("empty sample should error")
	}
}

// Property: Cliff's delta matches the naive O(nm) dominance count.
func TestCliffsDeltaMatchesNaive(t *testing.T) {
	f := func(au, bu []uint8) bool {
		if len(au) == 0 || len(bu) == 0 || len(au) > 30 || len(bu) > 30 {
			return true
		}
		a := make([]float64, len(au))
		b := make([]float64, len(bu))
		for i, v := range au {
			a[i] = float64(v % 10)
		}
		for i, v := range bu {
			b[i] = float64(v % 10)
		}
		got, err := CliffsDelta(a, b)
		if err != nil {
			return false
		}
		var dom float64
		for _, x := range a {
			for _, y := range b {
				switch {
				case x > y:
					dom++
				case x < y:
					dom--
				}
			}
		}
		want := dom / float64(len(a)*len(b))
		return almostEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDeltaMagnitude(t *testing.T) {
	cases := map[float64]string{
		0: "negligible", 0.1: "negligible", -0.2: "small",
		0.4: "medium", 0.9: "large", -1: "large",
	}
	for d, want := range cases {
		if got := DeltaMagnitude(d); got != want {
			t.Errorf("DeltaMagnitude(%v) = %q, want %q", d, got, want)
		}
	}
}
