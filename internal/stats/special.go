package stats

import "math"

// normalSF returns the survival function 1 - Φ(z) of the standard normal
// distribution, computed via the complementary error function for numerical
// stability in the tails.
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// chiSquareSF returns the survival function P(X > x) of a chi-square
// distribution with df degrees of freedom: Q(df/2, x/2), the regularized
// upper incomplete gamma function.
func chiSquareSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return regIncGammaQ(float64(df)/2, x/2)
}

// regIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction otherwise (Numerical Recipes' gammq).
func regIncGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaCFQ(a, x)
	}
}

// gammaSeriesP evaluates P(a,x) by its series representation.
func gammaSeriesP(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCFQ evaluates Q(a,x) by its continued fraction representation
// (modified Lentz's method).
func gammaCFQ(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
