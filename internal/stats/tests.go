package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a test has too few observations to
// produce a meaningful result.
var ErrInsufficientData = errors.New("stats: insufficient data for test")

// WilcoxonSignedRank performs the two-sided Wilcoxon signed-rank test on
// paired samples x and y (§3.1 test (1): "differences between two continuous
// variables"). Zero differences are discarded (Wilcoxon's convention) and
// the normal approximation with tie correction and continuity correction is
// used, matching common practice for the sample sizes web measurements
// produce.
func WilcoxonSignedRank(x, y []float64) (TestResult, error) {
	if len(x) != len(y) {
		return TestResult{}, errors.New("stats: paired samples must have equal length")
	}
	var diffs []float64
	for i := range x {
		if d := x[i] - y[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 5 {
		return TestResult{}, ErrInsufficientData
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks, ties := rankData(abs)
	var wPlus, wMinus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf * (nf + 1) * (2*nf + 1) / 24
	for _, t := range ties {
		tf := float64(t)
		variance -= tf * (tf*tf - 1) / 48
	}
	if variance <= 0 {
		return TestResult{}, ErrInsufficientData
	}
	// Continuity correction toward the mean.
	z := (w - mean + 0.5) / math.Sqrt(variance)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: w, Z: z, P: p, N: n}, nil
}

// MannWhitneyU performs the two-sided Mann-Whitney U test on two independent
// samples (§3.1 test (2)), using the normal approximation with tie and
// continuity corrections.
func MannWhitneyU(a, b []float64) (TestResult, error) {
	n1, n2 := len(a), len(b)
	if n1 < 3 || n2 < 3 {
		return TestResult{}, ErrInsufficientData
	}
	combined := make([]float64, 0, n1+n2)
	combined = append(combined, a...)
	combined = append(combined, b...)
	ranks, ties := rankData(combined)
	var r1 float64
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	f1, f2 := float64(n1), float64(n2)
	u1 := r1 - f1*(f1+1)/2
	u2 := f1*f2 - u1
	u := math.Min(u1, u2)
	nTot := f1 + f2
	mean := f1 * f2 / 2
	variance := f1 * f2 / 12 * (nTot + 1)
	if len(ties) > 0 {
		var tieSum float64
		for _, t := range ties {
			tf := float64(t)
			tieSum += tf*tf*tf - tf
		}
		variance = f1 * f2 / 12 * ((nTot + 1) - tieSum/(nTot*(nTot-1)))
	}
	if variance <= 0 {
		return TestResult{}, ErrInsufficientData
	}
	z := (u - mean + 0.5) / math.Sqrt(variance)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: u, Z: z, P: p, N: n1 + n2}, nil
}

// KruskalWallis performs the Kruskal-Wallis H test across k ≥ 2 groups
// (§3.1 test (3): differences in the central tendency across multiple
// groups), with tie correction and the chi-square approximation for the
// p-value.
func KruskalWallis(groups ...[]float64) (TestResult, error) {
	if len(groups) < 2 {
		return TestResult{}, errors.New("stats: Kruskal-Wallis needs at least two groups")
	}
	var combined []float64
	for _, g := range groups {
		if len(g) == 0 {
			return TestResult{}, ErrInsufficientData
		}
		combined = append(combined, g...)
	}
	n := len(combined)
	if n < 5 {
		return TestResult{}, ErrInsufficientData
	}
	ranks, ties := rankData(combined)
	nf := float64(n)
	var h float64
	off := 0
	for _, g := range groups {
		var rSum float64
		for i := range g {
			rSum += ranks[off+i]
		}
		off += len(g)
		h += rSum * rSum / float64(len(g))
	}
	h = 12/(nf*(nf+1))*h - 3*(nf+1)

	// Tie correction.
	if len(ties) > 0 {
		var tieSum float64
		for _, t := range ties {
			tf := float64(t)
			tieSum += tf*tf*tf - tf
		}
		c := 1 - tieSum/(nf*nf*nf-nf)
		if c <= 0 {
			return TestResult{}, ErrInsufficientData
		}
		h /= c
	}
	df := len(groups) - 1
	p := chiSquareSF(h, df)
	return TestResult{Statistic: h, P: p, N: n, DF: df}, nil
}

// EpsilonSquared computes the ε² effect size for a Kruskal-Wallis result:
// ε² = H / ((n² − 1) / (n + 1)) = H · (n+1) / (n² − 1). The paper reports
// ε² = .002 for the rank-bucket analysis (Appendix F) and calls it
// "practically negligible".
func EpsilonSquared(r TestResult) float64 {
	n := float64(r.N)
	if n <= 1 {
		return 0
	}
	return r.Statistic * (n + 1) / (n*n - 1)
}
