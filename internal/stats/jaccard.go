package stats

import "slices"

// Jaccard returns the Jaccard index J(A,B) = |A∩B| / |A∪B| of two string
// sets. By the paper's convention two empty sets are perfectly similar
// (J = 1): they agree that nothing was loaded.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardSlices is Jaccard over slices, treating them as sets (duplicates
// ignored). It sorts scratch copies and linear-merges them instead of
// materializing two maps per call; the merge counts duplicate runs once,
// so duplicate-bearing inputs score exactly as their set projections.
func JaccardSlices(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	as := slices.Clone(a)
	bs := slices.Clone(b)
	slices.Sort(as)
	slices.Sort(bs)
	return JaccardSorted(as, bs)
}

// PairwiseMeanJaccard implements the paper's multi-set similarity: the
// arithmetic mean of the Jaccard index over all unordered pairs of the given
// sets (§3.2: "To compare five sets, we computed the pairwise similarity
// between all sets and used the arithmetic mean value"). With fewer than two
// sets it returns 1 (a single observation is trivially self-consistent).
func PairwiseMeanJaccard(sets []map[string]bool) float64 {
	if len(sets) < 2 {
		return 1
	}
	var sum float64
	var n int
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sum += Jaccard(sets[i], sets[j])
			n++
		}
	}
	return sum / float64(n)
}

// ToSet converts a slice into a set.
func ToSet(xs []string) map[string]bool {
	s := make(map[string]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// SimilarityCategory is the paper's three-way interpretation bucket for
// similarity scores (§3.2, following Demir et al. [14]).
type SimilarityCategory string

// Similarity categories: high (≥ 0.8), medium (0.3 ≤ s < 0.8), low (< 0.3).
const (
	SimilarityHigh   SimilarityCategory = "high"
	SimilarityMedium SimilarityCategory = "med."
	SimilarityLow    SimilarityCategory = "low"
)

// Categorize maps a similarity score to its category.
func Categorize(sim float64) SimilarityCategory {
	switch {
	case sim >= 0.8:
		return SimilarityHigh
	case sim >= 0.3:
		return SimilarityMedium
	default:
		return SimilarityLow
	}
}
