package stats

import "math"

// Histogram is a fixed-width binned frequency count over [Min, Max]. It is
// used to regenerate the distribution figures (Fig. 2, Fig. 5).
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with n bins spanning [min, max]. Values
// outside the range are clamped into the first/last bin, matching how the
// paper's plots cap their axes.
func NewHistogram(min, max float64, n int) *Histogram {
	if n < 1 || max <= min {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	bin := int(math.Floor((v - h.Min) / (h.Max - h.Min) * float64(n)))
	if bin < 0 {
		bin = 0
	}
	if bin >= n {
		bin = n - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// RelativeFrequencies returns each bin's share of the total (all zeros when
// empty).
func (h *Histogram) RelativeFrequencies() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// Histogram2D is a two-dimensional integer-keyed frequency count, used for
// the depth×breadth distribution in Fig. 1.
type Histogram2D struct {
	counts map[[2]int]int
	maxX   int
	maxY   int
	total  int
}

// NewHistogram2D creates an empty 2D histogram.
func NewHistogram2D() *Histogram2D {
	return &Histogram2D{counts: make(map[[2]int]int)}
}

// Add records an (x, y) observation; negative coordinates are clamped to 0.
func (h *Histogram2D) Add(x, y int) {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	h.counts[[2]int{x, y}]++
	if x > h.maxX {
		h.maxX = x
	}
	if y > h.maxY {
		h.maxY = y
	}
	h.total++
}

// Count returns the frequency at (x, y).
func (h *Histogram2D) Count(x, y int) int { return h.counts[[2]int{x, y}] }

// MaxX and MaxY return the largest observed coordinates.
func (h *Histogram2D) MaxX() int { return h.maxX }

// MaxY returns the largest observed y coordinate.
func (h *Histogram2D) MaxY() int { return h.maxY }

// Total returns the number of observations.
func (h *Histogram2D) Total() int { return h.total }
