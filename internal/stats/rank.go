package stats

import "sort"

// rankData assigns average ranks (1-based) to xs, resolving ties by the
// midrank convention, and returns the ranks alongside the sizes of each tie
// group (needed for tie corrections in the rank tests).
func rankData(xs []float64) (ranks []float64, tieGroups []int) {
	n := len(xs)
	ranks = make([]float64, n)
	if n == 0 {
		return ranks, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		if j > i {
			tieGroups = append(tieGroups, j-i+1)
		}
		i = j + 1
	}
	return ranks, tieGroups
}

// TestResult reports the outcome of one of the non-parametric tests.
type TestResult struct {
	// Statistic is the test statistic: W (Wilcoxon, the smaller signed-rank
	// sum), U (Mann-Whitney, the smaller of U1/U2), or H (Kruskal-Wallis,
	// tie-corrected).
	Statistic float64
	// Z is the normal approximation's standardized statistic where
	// applicable (Wilcoxon, Mann-Whitney); 0 for Kruskal-Wallis.
	Z float64
	// P is the two-sided p-value (Kruskal-Wallis: upper-tail chi-square).
	P float64
	// N is the effective sample size (pairs with non-zero difference for
	// Wilcoxon; total observations otherwise).
	N int
	// DF is the degrees of freedom (Kruskal-Wallis only).
	DF int
}

// Significant reports whether the result is significant at the paper's
// α = .05 level.
func (r TestResult) Significant() bool { return r.P < 0.05 }
