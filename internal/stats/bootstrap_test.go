package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapMeanCIBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci := BootstrapMeanCI(xs, 0.95, 2000, 7)
	if !ci.Contains(ci.Point) {
		t.Errorf("interval must contain the point estimate: %+v", ci)
	}
	if !ci.Contains(10) {
		t.Errorf("true mean outside the 95%% CI: %+v", ci)
	}
	if ci.Width() <= 0 || ci.Width() > 0.5 {
		t.Errorf("CI width implausible for n=400: %v", ci.Width())
	}
	if ci.Level != 0.95 {
		t.Errorf("level = %v", ci.Level)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	a := BootstrapMeanCI(xs, 0.9, 500, 42)
	b := BootstrapMeanCI(xs, 0.9, 500, 42)
	if a != b {
		t.Errorf("same seed must reproduce the interval: %+v vs %+v", a, b)
	}
	c := BootstrapMeanCI(xs, 0.9, 500, 43)
	if a == c {
		t.Error("different seeds should usually differ")
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	ci := BootstrapMeanCI([]float64{5}, 0.95, 100, 1)
	if ci.Low != 5 || ci.High != 5 || ci.Point != 5 {
		t.Errorf("single-sample CI must collapse: %+v", ci)
	}
	ci = BootstrapMeanCI(nil, 0.95, 100, 1)
	if ci.Point != 0 || ci.Width() != 0 {
		t.Errorf("empty-sample CI must be zero: %+v", ci)
	}
	// Bad parameters are repaired.
	ci = BootstrapMeanCI([]float64{1, 2, 3, 4, 5}, -1, 0, 1)
	if ci.Level != 0.95 {
		t.Errorf("level not defaulted: %+v", ci)
	}
}

func TestBootstrapWidthShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := make([]float64, 1000)
	for i := range big {
		big[i] = rng.Float64()
	}
	small := big[:50]
	wBig := BootstrapMeanCI(big, 0.95, 800, 3).Width()
	wSmall := BootstrapMeanCI(small, 0.95, 800, 3).Width()
	if wBig >= wSmall {
		t.Errorf("CI must shrink with sample size: n=1000 width %v vs n=50 width %v", wBig, wSmall)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 100} // outlier
	meanCI := BootstrapMeanCI(xs, 0.95, 1000, 5)
	medCI := BootstrapMedianCI(xs, 0.95, 1000, 5)
	if medCI.Point != 4.5 {
		t.Errorf("median point = %v", medCI.Point)
	}
	if medCI.High >= meanCI.High {
		t.Errorf("median CI should resist the outlier: med %+v vs mean %+v", medCI, meanCI)
	}
}

func BenchmarkBootstrapMeanCI(b *testing.B) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i % 97)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BootstrapMeanCI(xs, 0.95, 200, int64(i))
	}
}
