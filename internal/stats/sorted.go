package stats

import "cmp"

// The sorted-merge kernel: the allocation-free counterpart of the map-based
// Jaccard above, used by the tree-diff hot loop on interned dense ids. Both
// kernels compute the same integer (intersection, union) pair and divide
// once, so their float64 results are bit-identical — the property suite and
// FuzzSortedMerge pin that equivalence.

// sortedInterUnion linear-merges two ascending slices and returns the
// distinct-element intersection and union sizes. Duplicates within a slice
// are tolerated (counted once), so dedup'd and raw sorted inputs agree.
func sortedInterUnion[T cmp.Ordered](a, b []T) (inter, union int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			union++
			v := a[i]
			for i < len(a) && a[i] == v {
				i++
			}
			for j < len(b) && b[j] == v {
				j++
			}
		case a[i] < b[j]:
			union++
			v := a[i]
			for i < len(a) && a[i] == v {
				i++
			}
		default:
			union++
			v := b[j]
			for j < len(b) && b[j] == v {
				j++
			}
		}
	}
	for i < len(a) {
		union++
		v := a[i]
		for i < len(a) && a[i] == v {
			i++
		}
	}
	for j < len(b) {
		union++
		v := b[j]
		for j < len(b) && b[j] == v {
			j++
		}
	}
	return inter, union
}

// JaccardSorted is Jaccard over ascending-sorted slices: a single linear
// merge, no allocation. Two empty slices are perfectly similar (J = 1),
// matching the map kernel's convention.
func JaccardSorted[T cmp.Ordered](a, b []T) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, union := sortedInterUnion(a, b)
	return float64(inter) / float64(union)
}

// PairwiseMeanJaccardSorted is PairwiseMeanJaccard over ascending-sorted
// slices, pairing sets in the same (i, j) order so the accumulated float
// sum — and therefore the mean — is bit-identical to the map kernel's.
func PairwiseMeanJaccardSorted[T cmp.Ordered](sets [][]T) float64 {
	if len(sets) < 2 {
		return 1
	}
	var sum float64
	var n int
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sum += JaccardSorted(sets[i], sets[j])
			n++
		}
	}
	return sum / float64(n)
}
