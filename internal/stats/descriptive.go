// Package stats implements the statistical machinery the paper relies on:
// descriptive summaries, the Jaccard index and its pairwise-mean extension
// (§3.2 "Computing Tree Similarities"), the three non-parametric tests fixed
// in §3.1 (Wilcoxon signed-rank, Mann-Whitney U, Kruskal-Wallis) with tie
// corrections, the ε² effect size (Appendix F), and histogram helpers used
// to regenerate the figures. Everything is implemented from scratch on the
// standard library.
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for tree
// characteristics (avg, SD, min, max) plus the median used by the rank
// tests' narrative.
type Summary struct {
	N      int
	Mean   float64
	SD     float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary. All accumulation runs over a sorted copy, so the result is
// bit-identical regardless of the input's order — analyses feed samples
// collected from map iteration, and floating-point addition is not
// associative.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	return s
}

// SummarizeInts is Summarize over integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Mean returns the arithmetic mean of xs (0 for empty input). Like
// Summarize it sums over a sorted copy for order-insensitive results.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It sorts a copy of the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
