package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property-based suite for the similarity primitives: rather than fixed
// examples, these tests check the algebraic invariants of the Jaccard
// index over randomized inputs with a fixed seed, so a regression in the
// set arithmetic cannot hide behind a lucky example.

// randSet draws a set of up to maxLen elements from a small token pool,
// so random pairs overlap often enough to exercise the intersection path.
func randSet(rng *rand.Rand, maxLen int) map[string]bool {
	n := rng.Intn(maxLen + 1)
	s := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		s[fmt.Sprintf("e%d", rng.Intn(2*maxLen))] = true
	}
	return s
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func TestJaccardBoundsAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randSet(rng, 12), randSet(rng, 12)
		j := Jaccard(a, b)
		if j < 0 || j > 1 || math.IsNaN(j) {
			t.Fatalf("J out of [0,1]: %v for %v vs %v", j, a, b)
		}
		if back := Jaccard(b, a); back != j {
			t.Fatalf("J not symmetric: %v vs %v", j, back)
		}
	}
}

func TestJaccardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := randSet(rng, 12)
		if j := Jaccard(a, cloneSet(a)); j != 1 {
			t.Fatalf("J(A,A) = %v for %v", j, a)
		}
	}
}

func TestJaccardEmptyConvention(t *testing.T) {
	// Two empty observations agree that nothing was loaded: J = 1.
	if j := Jaccard(nil, nil); j != 1 {
		t.Errorf("J(∅,∅) = %v, want 1", j)
	}
	if j := Jaccard(map[string]bool{}, nil); j != 1 {
		t.Errorf("J({},∅) = %v, want 1", j)
	}
	// An empty set against a non-empty one shares nothing: J = 0.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		b := randSet(rng, 12)
		if len(b) == 0 {
			continue
		}
		if j := Jaccard(nil, b); j != 0 {
			t.Fatalf("J(∅,B) = %v for %v", j, b)
		}
	}
}

func TestJaccardDisjointAndSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a := randSet(rng, 10)
		// Disjoint translate: prefixed copies share nothing.
		b := make(map[string]bool, len(a))
		for k := range a {
			b["x"+k] = true
		}
		if len(a) > 0 {
			if j := Jaccard(a, b); j != 0 {
				t.Fatalf("disjoint sets J = %v", j)
			}
		}
		// Subset: J(A,S) = |S|/|A| for S ⊆ A.
		sub := make(map[string]bool)
		for k := range a {
			if rng.Intn(2) == 0 {
				sub[k] = true
			}
		}
		if len(a) > 0 {
			want := float64(len(sub)) / float64(len(a))
			if j := Jaccard(a, sub); math.Abs(j-want) > 1e-12 {
				t.Fatalf("subset J = %v, want %v", j, want)
			}
		}
	}
}

// TestJaccardSharedElementMonotone is the metamorphic core: adding the
// same new element to both sets never decreases their similarity, and
// adding it to only one never increases it.
func TestJaccardSharedElementMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b := randSet(rng, 12), randSet(rng, 12)
		j := Jaccard(a, b)

		a2, b2 := cloneSet(a), cloneSet(b)
		shared := fmt.Sprintf("new%d", i)
		a2[shared] = true
		b2[shared] = true
		if j2 := Jaccard(a2, b2); j2 < j-1e-12 {
			t.Fatalf("shared element decreased J: %v -> %v (%v vs %v)", j, j2, a, b)
		}

		a3 := cloneSet(a)
		a3[fmt.Sprintf("only%d", i)] = true
		if j3 := Jaccard(a3, b); j3 > j+1e-12 {
			t.Fatalf("one-sided element increased J: %v -> %v (%v vs %v)", j, j3, a, b)
		}
	}
}

func TestJaccardSlicesIgnoresDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		a, b := randSet(rng, 8), randSet(rng, 8)
		var as, bs []string
		for k := range a {
			for r := 0; r <= rng.Intn(3); r++ {
				as = append(as, k)
			}
		}
		for k := range b {
			for r := 0; r <= rng.Intn(3); r++ {
				bs = append(bs, k)
			}
		}
		if got, want := JaccardSlices(as, bs), Jaccard(a, b); got != want {
			t.Fatalf("JaccardSlices %v != Jaccard %v", got, want)
		}
	}
}

func TestPairwiseMeanJaccardProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		sets := make([]map[string]bool, 2+rng.Intn(5))
		for j := range sets {
			sets[j] = randSet(rng, 10)
		}
		m := PairwiseMeanJaccard(sets)
		if m < 0 || m > 1 || math.IsNaN(m) {
			t.Fatalf("mean out of [0,1]: %v", m)
		}
		// Permutation invariance: the mean over unordered pairs cannot
		// depend on the slice order.
		perm := make([]map[string]bool, len(sets))
		for j, p := range rng.Perm(len(sets)) {
			perm[j] = sets[p]
		}
		if pm := PairwiseMeanJaccard(perm); math.Abs(pm-m) > 1e-12 {
			t.Fatalf("mean not permutation invariant: %v vs %v", m, pm)
		}
		// Identical sets are perfectly similar.
		same := make([]map[string]bool, len(sets))
		for j := range same {
			same[j] = cloneSet(sets[0])
		}
		if sm := PairwiseMeanJaccard(same); sm != 1 {
			t.Fatalf("identical sets mean = %v", sm)
		}
	}
	// Degenerate inputs are trivially self-consistent.
	if PairwiseMeanJaccard(nil) != 1 || PairwiseMeanJaccard([]map[string]bool{{"a": true}}) != 1 {
		t.Error("fewer than two sets must yield 1")
	}
}

func TestCategorizeBoundaries(t *testing.T) {
	cases := map[float64]SimilarityCategory{
		1.0:  SimilarityHigh,
		0.8:  SimilarityHigh,
		0.79: SimilarityMedium,
		0.3:  SimilarityMedium,
		0.29: SimilarityLow,
		0.0:  SimilarityLow,
	}
	for sim, want := range cases {
		if got := Categorize(sim); got != want {
			t.Errorf("Categorize(%v) = %q, want %q", sim, got, want)
		}
	}
	// Every score lands in exactly one of the three buckets.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		switch Categorize(rng.Float64()) {
		case SimilarityHigh, SimilarityMedium, SimilarityLow:
		default:
			t.Fatal("score fell outside the three categories")
		}
	}
}
