package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webmeasure"
	"webmeasure/internal/service"
	"webmeasure/internal/service/scaler"
)

// burstyConfig is the golden scenario: a burst arrival process hot
// enough to force scale-ups, with off windows long enough to scale back
// down — so the determinism assertions cover a non-trivial scale-event
// sequence, not an idle pool.
func burstyConfig() Config {
	return Config{
		Seed:       42,
		Arrival:    "burst",
		RatePerSec: 60,
		BurstOnMS:  3000,
		BurstOffMS: 9000,
		DurationMS: 40_000,
		Mix:        Mix{CachedShare: 0.3, FaultLightShare: 0.2, FaultHeavyShare: 0.1, ShardedShare: 0.1},
		Service: Service{
			MinWorkers: 1, MaxWorkers: 6, QueueDepth: 32,
			JobBaseUS: 20_000, JobPerVisitUS: 4_000,
			// Cooldowns and damping shortened to fit the 3s-on / 9s-off
			// cycle, so the pool both grows and shrinks within a run.
			Scaler: scaler.Config{UpCooldownMS: 500, DownCooldownMS: 2000, DownStableMS: 1000},
		},
		SLO: SLO{QueueWaitP95MS: 2_000, E2EP99MS: 5_000, MaxRejectedShare: 0.2, MinCacheHitRatio: 0.05},
	}
}

// renderReport runs the config through the simulator and returns the
// text report bytes plus the report itself.
func renderReport(t *testing.T, cfg Config) ([]byte, *Report) {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	rep.WriteText(&b)
	return b.Bytes(), rep
}

// TestLoadgenDeterministic is the golden determinism suite: the same
// seeded config must produce byte-identical SLO reports and identical
// scale-event sequences across repeated runs, and across analysis
// worker counts (workers never change result bytes, so they must never
// change the report either). A different seed must actually change the
// report — determinism by constancy would be vacuous.
func TestLoadgenDeterministic(t *testing.T) {
	first, rep1 := renderReport(t, burstyConfig())
	second, rep2 := renderReport(t, burstyConfig())
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, different reports:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if len(rep1.Events) == 0 {
		t.Fatal("golden scenario produced no scale events; the determinism claim is vacuous")
	}
	if rep1.ScaleUps == 0 || rep1.ScaleDowns == 0 {
		t.Fatalf("golden scenario should scale both ways, got %d up / %d down", rep1.ScaleUps, rep1.ScaleDowns)
	}
	for i := range rep1.Events {
		if rep1.Events[i] != rep2.Events[i] {
			t.Fatalf("scale event %d differs: %+v vs %+v", i, rep1.Events[i], rep2.Events[i])
		}
	}

	workersVariant := burstyConfig()
	workersVariant.Mix.AnalysisWorkers = 8
	third, _ := renderReport(t, workersVariant)
	if !bytes.Equal(first, third) {
		t.Fatalf("analysis worker count changed the report:\n--- workers=default ---\n%s\n--- workers=8 ---\n%s", first, third)
	}

	reseeded := burstyConfig()
	reseeded.Seed = 43
	fourth, _ := renderReport(t, reseeded)
	if bytes.Equal(first, fourth) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSimReportShape sanity-checks the simulated run's bookkeeping: the
// traffic section must balance and the configured SLO targets must all
// appear as checks.
func TestSimReportShape(t *testing.T) {
	text, rep := renderReport(t, burstyConfig())
	if rep.Submitted == 0 || rep.Completed == 0 {
		t.Fatalf("no traffic simulated: %+v", rep)
	}
	if rep.Submitted != rep.Completed+rep.CacheHits+rep.Rejected {
		t.Fatalf("traffic does not balance: submitted %d != completed %d + hits %d + rejected %d",
			rep.Submitted, rep.Completed, rep.CacheHits, rep.Rejected)
	}
	if rep.CacheHits == 0 {
		t.Fatal("a 30% cached share warmed no cache hits")
	}
	if rep.E2E.Count == 0 || rep.QueueWait.P95 < 0 {
		t.Fatalf("latency sections empty: %+v", rep)
	}
	if len(rep.Checks) != 4 {
		t.Fatalf("configured 4 SLO targets, report has %d checks", len(rep.Checks))
	}
	for _, want := range []string{
		"=== loadgen SLO report ===", "--- traffic ---", "--- latency (ms) ---",
		"--- autoscaling", "--- SLO ---", "overall:",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
}

// TestClosedLoopSim covers the closed loop: a fixed client population
// must never reject (the loop self-limits at clients ≤ queue+workers)
// and must keep submitting across the whole duration.
func TestClosedLoopSim(t *testing.T) {
	cfg := Config{
		Seed: 7, Loop: "closed", Clients: 3, ThinkMS: 50, DurationMS: 20_000,
		Mix:     Mix{CachedShare: 0.5},
		Service: Service{MinWorkers: 1, MaxWorkers: 4, QueueDepth: 16, JobBaseUS: 30_000, JobPerVisitUS: 2_000},
	}
	_, rep := renderReport(t, cfg)
	if rep.Rejected != 0 {
		t.Fatalf("3 closed-loop clients overflowed a 16-deep queue: %d rejected", rep.Rejected)
	}
	if rep.Submitted < int64(cfg.DurationMS/1000) {
		t.Fatalf("closed loop starved: only %d submissions in %dms", rep.Submitted, cfg.DurationMS)
	}
	a, _ := renderReport(t, cfg)
	b, _ := renderReport(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("closed-loop run is not deterministic")
	}
}

// TestArrivalProcesses pins the three processes' gross shapes on one
// seed: fixed is evenly spaced, poisson jitters around the same mean,
// burst concentrates arrivals in on-windows.
func TestArrivalProcesses(t *testing.T) {
	base := Config{Seed: 1, RatePerSec: 100, DurationMS: 10_000}
	count := func(cfg Config) (n int, inOn int) {
		cfg, err := cfg.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		a := newArrivals(cfg, newRNG(cfg.Seed))
		for {
			at := a.next()
			if at < 0 {
				break
			}
			n++
			if cfg.Arrival == "burst" {
				cycle := (cfg.BurstOnMS + cfg.BurstOffMS) * 1000
				if at%cycle < cfg.BurstOnMS*1000 {
					inOn++
				}
			}
		}
		return n, inOn
	}

	fixed := base
	fixed.Arrival = "fixed"
	if n, _ := count(fixed); n != 1000 {
		t.Fatalf("fixed 100/s over 10s = %d arrivals, want 1000", n)
	}
	poisson := base
	poisson.Arrival = "poisson"
	if n, _ := count(poisson); n < 800 || n > 1200 {
		t.Fatalf("poisson 100/s over 10s = %d arrivals, want ~1000", n)
	}
	burst := base
	burst.Arrival = "burst"
	burst.BurstOnMS, burst.BurstOffMS = 1000, 4000
	n, inOn := count(burst)
	if n == 0 || inOn != n {
		t.Fatalf("burst with idle_frac 0 placed %d of %d arrivals outside on-windows", n-inOn, n)
	}
}

// TestConfigNormalize covers defaulting, validation errors, and
// idempotence.
func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode != "sim" || c.Loop != "open" || c.Arrival != "poisson" || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Service.Scaler.MinWorkers != c.Service.MinWorkers || c.Service.Scaler.UpCooldownMS == 0 {
		t.Fatalf("scaler policy not completed: %+v", c.Service.Scaler)
	}
	c2, err := c.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatalf("Normalize is not idempotent:\n%+v\n%+v", c, c2)
	}

	for name, bad := range map[string]Config{
		"bad mode":    {Mode: "chaos"},
		"bad loop":    {Loop: "spiral"},
		"bad arrival": {Arrival: "stampede"},
		"live without target": {Mode: "live"},
		"inverted bounds":     {Service: Service{MinWorkers: 8, MaxWorkers: 2}},
		"share > 1":           {Mix: Mix{CachedShare: 1.5}},
		"fault shares > 1":    {Mix: Mix{FaultLightShare: 0.7, FaultHeavyShare: 0.7}},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, bad)
		}
	}
}

// TestParseStrict: unknown fields and trailing garbage are loud errors.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"seed": 3, "arrival": "poisson"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse([]byte(`{"sede": 3}`)); err == nil {
		t.Fatal("typoed field parsed silently")
	}
	if _, err := Parse([]byte(`{"seed": 3}{"seed": 4}`)); err == nil {
		t.Fatal("trailing object parsed silently")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("garbage parsed silently")
	}
}

// TestLiveModeAgainstInProcessServer drives live mode at an in-process
// service with a stubbed instant runner: the report must carry traffic,
// e2e latencies, and the server-scraped families.
func TestLiveModeAgainstInProcessServer(t *testing.T) {
	srv := service.New(service.Config{
		Workers: 1, MinWorkers: 1, MaxWorkers: 4, QueueDepth: 16,
		ScaleInterval: 20 * time.Millisecond,
		Runner: func(ctx context.Context, wcfg webmeasure.Config) (*webmeasure.Results, error) {
			return webmeasure.Run(ctx, wcfg)
		},
	})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := Config{
		Seed: 5, Target: ts.URL, Loop: "closed", Clients: 2, ThinkMS: 10,
		DurationMS: 1500,
		Mix:        Mix{CachedShare: 0.5, Sites: 3, PagesPerSite: 2},
		SLO:        SLO{E2EP99MS: 60_000},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "live" {
		t.Fatalf("mode = %q, want live (implied by target)", rep.Mode)
	}
	if rep.Submitted == 0 || rep.Completed == 0 {
		t.Fatalf("no live traffic recorded: %+v", rep)
	}
	if rep.E2E.Count == 0 {
		t.Fatal("no client-side end-to-end latencies recorded")
	}
	var out bytes.Buffer
	rep.WriteText(&out)
	if !strings.Contains(out.String(), "mode=live") {
		t.Fatalf("report text: %s", out.String())
	}

	// The report's JSON form must round-trip (cmd/loadgen -json).
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
}
