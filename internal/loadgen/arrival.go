package loadgen

import "math/rand"

// newRNG is the run's seeded source; everything random in a run (arrival
// gaps, mix draws, cost jitter) comes from one stream in event order.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// arrivalProcess yields successive open-loop submission times on the
// simulated (or, in live mode, relative wall) clock, in microseconds.
// Every draw comes from the run's seeded rng, so the whole schedule is a
// pure function of (config, seed).
type arrivalProcess struct {
	cfg    Config
	rng    *rand.Rand
	lastUS int64
}

func newArrivals(cfg Config, rng *rand.Rand) *arrivalProcess {
	return &arrivalProcess{cfg: cfg, rng: rng}
}

// next returns the next arrival time, or -1 once the schedule has run
// past the configured duration. Arrivals always advance by at least 1µs
// so the schedule terminates at any rate.
func (a *arrivalProcess) next() int64 {
	horizonUS := a.cfg.DurationMS * 1000
	switch a.cfg.Arrival {
	case "fixed":
		a.lastUS += gapUS(a.cfg.RatePerSec)
	case "poisson":
		// Exponential inter-arrival gaps: the memoryless process whose
		// burstiness open-loop benchmarks are usually missing (see the
		// coordinated-omission literature).
		gap := int64(a.rng.ExpFloat64() / a.cfg.RatePerSec * 1e6)
		if gap < 1 {
			gap = 1
		}
		a.lastUS += gap
	case "burst":
		// On/off windows: full rate during on, BurstIdleFrac of it during
		// off (zero idle skips straight to the next on window). A gap that
		// would cross a window edge clamps to the edge and re-draws at the
		// next window's rate, so on-window arrivals stay in on-windows.
		cycleUS := (a.cfg.BurstOnMS + a.cfg.BurstOffMS) * 1000
		onUS := a.cfg.BurstOnMS * 1000
		for {
			cycleStart := (a.lastUS / cycleUS) * cycleUS
			pos := a.lastUS - cycleStart
			if pos < onUS {
				if gap := gapUS(a.cfg.RatePerSec); pos+gap < onUS {
					a.lastUS += gap
					break
				}
				a.lastUS = cycleStart + onUS
				continue
			}
			idle := a.cfg.RatePerSec * a.cfg.BurstIdleFrac
			if idle > 0 {
				if gap := gapUS(idle); pos+gap < cycleUS {
					a.lastUS += gap
					break
				}
			}
			a.lastUS = cycleStart + cycleUS
			if a.lastUS > horizonUS {
				return -1
			}
		}
	}
	if a.lastUS > horizonUS {
		return -1
	}
	return a.lastUS
}

// gapUS is the deterministic inter-arrival gap of a fixed-rate process.
func gapUS(ratePerSec float64) int64 {
	gap := int64(1e6 / ratePerSec)
	if gap < 1 {
		gap = 1
	}
	return gap
}
