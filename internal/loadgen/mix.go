package loadgen

import (
	"math/rand"

	"webmeasure/internal/service"
)

// mixLimits is what the harness validates specs against — the service's
// own defaults, so a spec loadgen emits is a spec cmd/serve accepts.
var mixLimits = service.Limits{MaxSites: 2000, MaxPagesPerSite: 100, MaxShards: 16}

// mixer draws the job mix in submission order from the run's seeded rng:
// a CachedShare of submissions repeat one of HotSpecs hot specs (cache
// hits once warmed), the rest are cold — fresh seeds, optionally faulted
// or sharded per the configured shares.
type mixer struct {
	cfg     Config
	rng     *rand.Rand
	coldSeq int64
}

func newMixer(cfg Config, rng *rand.Rand) *mixer {
	return &mixer{cfg: cfg, rng: rng}
}

// spec draws the next submission's spec. Hot draws are plain repeats (no
// faults, no shards) so their cache keys actually collide; cold draws
// carry the fault and shard variety.
func (m *mixer) spec() service.JobSpec {
	mix := m.cfg.Mix
	spec := service.JobSpec{
		Sites:        mix.Sites,
		PagesPerSite: mix.PagesPerSite,
		Workers:      mix.AnalysisWorkers,
	}
	if m.rng.Float64() < mix.CachedShare {
		spec.Seed = 1000 + int64(m.rng.Intn(mix.HotSpecs))
		return spec
	}
	m.coldSeq++
	spec.Seed = 1_000_000 + m.coldSeq
	switch u := m.rng.Float64(); {
	case u < mix.FaultLightShare:
		spec.FaultProfile = "light"
	case u < mix.FaultLightShare+mix.FaultHeavyShare:
		spec.FaultProfile = "heavy"
	}
	if m.rng.Float64() < mix.ShardedShare {
		spec.Shards = mix.Shards
	}
	return spec
}

// costUS is the sim's job cost model: base plus per-visit work over
// sites × pages × the five Table 1 profiles, a fault-profile multiplier
// (faulted visits retry), a coordinator overhead for sharded jobs, and a
// ±20% seeded jitter drawn per job in submission order.
func (m *mixer) costUS(spec service.JobSpec) int64 {
	visits := int64(spec.Sites) * int64(spec.PagesPerSite) * 5
	us := float64(m.cfg.Service.JobBaseUS + visits*m.cfg.Service.JobPerVisitUS)
	switch spec.FaultProfile {
	case "light":
		us *= 1.25
	case "heavy":
		us *= 1.6
	}
	if spec.Shards > 1 {
		us *= 1.1
	}
	us *= 0.8 + 0.4*m.rng.Float64()
	if us < 1 {
		us = 1
	}
	return int64(us)
}
