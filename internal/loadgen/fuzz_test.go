package loadgen

import (
	"testing"
)

// FuzzConfigParse hammers the config entry point with arbitrary bytes:
// Parse must never panic, and any config it accepts must either be
// rejected by Normalize with an error or normalize to something
// self-consistent — valid enums, ordered worker bounds, shares inside
// [0,1], and a scaler policy completed against those bounds. Normalize
// must also be idempotent, since cmd/loadgen normalizes once and the
// simulator trusts the result.
func FuzzConfigParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 42, "arrival": "burst", "burst_on_ms": 3000, "burst_off_ms": 9000}`))
	f.Add([]byte(`{"mode": "live", "target": "http://localhost:8080", "loop": "closed", "clients": 4}`))
	f.Add([]byte(`{"mix": {"cached_share": 0.5, "fault_light_share": 0.2}, "service": {"min_workers": 1, "max_workers": 8}}`))
	f.Add([]byte(`{"slo": {"queue_wait_p95_ms": 500, "min_cache_hit_ratio": 0.1}}`))
	f.Add([]byte(`{"seed": -1, "rate_per_sec": 1e308, "duration_ms": -5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		norm, err := cfg.Normalize()
		if err != nil {
			return
		}
		switch norm.Mode {
		case "sim", "live":
		default:
			t.Fatalf("Normalize accepted mode %q", norm.Mode)
		}
		switch norm.Loop {
		case "open", "closed":
		default:
			t.Fatalf("Normalize accepted loop %q", norm.Loop)
		}
		switch norm.Arrival {
		case "fixed", "poisson", "burst":
		default:
			t.Fatalf("Normalize accepted arrival %q", norm.Arrival)
		}
		if norm.Service.MinWorkers < 1 || norm.Service.MaxWorkers < norm.Service.MinWorkers {
			t.Fatalf("Normalize accepted worker bounds %d..%d", norm.Service.MinWorkers, norm.Service.MaxWorkers)
		}
		if norm.Service.Scaler.MinWorkers != norm.Service.MinWorkers ||
			norm.Service.Scaler.MaxWorkers != norm.Service.MaxWorkers {
			t.Fatalf("scaler policy bounds %d..%d drifted from service bounds %d..%d",
				norm.Service.Scaler.MinWorkers, norm.Service.Scaler.MaxWorkers,
				norm.Service.MinWorkers, norm.Service.MaxWorkers)
		}
		for name, share := range map[string]float64{
			"cached_share":      norm.Mix.CachedShare,
			"fault_light_share": norm.Mix.FaultLightShare,
			"fault_heavy_share": norm.Mix.FaultHeavyShare,
			"sharded_share":     norm.Mix.ShardedShare,
		} {
			if share < 0 || share > 1 {
				t.Fatalf("Normalize accepted %s = %v", name, share)
			}
		}
		again, err := norm.Normalize()
		if err != nil {
			t.Fatalf("Normalize rejected its own output: %v", err)
		}
		if again != norm {
			t.Fatalf("Normalize is not idempotent:\n%+v\n%+v", norm, again)
		}
	})
}
