// Package loadgen is the deterministic load harness for the job service:
// seeded open- and closed-loop arrival processes driving a configurable
// job mix, with an SLO report (latency quantiles vs targets, rejection
// rate, cache hit ratio) computed from the same Prometheus exposition the
// service serves at /metrics.
//
// Two modes share one report format. Sim mode (the default) runs a
// discrete-event simulation on seeded simulated time: it reuses the real
// scaler decision function, the real spec canonicalization (so cache-hit
// modeling agrees with the server byte-for-byte), and the real metrics
// registry + exposition, which makes the whole run a pure function of
// (config, seed) — same seed, byte-identical report, identical
// scale-event sequence. That is what lets capacity questions ("will
// min=1/max=8 hold 50 jobs/s under p95 < 500ms?") sit inside a golden
// test. Live mode points the same arrival processes at a real cmd/serve
// over HTTP; wall-clock numbers vary run to run, but the report shape and
// the SLO verdicts read the same.
package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"

	"webmeasure/internal/service/scaler"
)

// Mix is the job-mix recipe: what share of submissions are cacheable
// repeats, faulted, or sharded, and how big each measurement is.
type Mix struct {
	// HotSpecs is how many distinct specs the cacheable "hot set" holds;
	// CachedShare of submissions draw from it (repeats hit the result
	// cache once warmed), the rest get a fresh never-seen seed.
	HotSpecs    int     `json:"hot_specs,omitempty"`
	CachedShare float64 `json:"cached_share,omitempty"`
	// Sites and PagesPerSite size each measurement job.
	Sites        int `json:"sites,omitempty"`
	PagesPerSite int `json:"pages_per_site,omitempty"`
	// FaultLightShare and FaultHeavyShare route that share of submissions
	// through the light/heavy fault-injection profiles.
	FaultLightShare float64 `json:"fault_light_share,omitempty"`
	FaultHeavyShare float64 `json:"fault_heavy_share,omitempty"`
	// ShardedShare submits that share as sharded coordinator jobs over
	// Shards slices.
	ShardedShare float64 `json:"sharded_share,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	// AnalysisWorkers is the analysis worker-pool size stamped on every
	// spec. It must never change the SLO report in sim mode — the service
	// excludes it from the cache key for the same reason (results are
	// byte-identical for every worker count).
	AnalysisWorkers int `json:"analysis_workers,omitempty"`
}

// Service shapes the simulated service (sim mode) or documents the live
// target's expected shape (live mode reports it as configured).
type Service struct {
	MinWorkers      int           `json:"min_workers,omitempty"`
	MaxWorkers      int           `json:"max_workers,omitempty"`
	QueueDepth      int           `json:"queue_depth,omitempty"`
	ScaleIntervalMS int64         `json:"scale_interval_ms,omitempty"`
	Scaler          scaler.Config `json:"scaler,omitempty"`
	// JobBaseUS and JobPerVisitUS are the sim cost model: a job executes
	// for JobBaseUS + visits·JobPerVisitUS microseconds (±20% seeded
	// jitter), visits = sites × pages × 5 profiles.
	JobBaseUS     int64 `json:"job_base_us,omitempty"`
	JobPerVisitUS int64 `json:"job_per_visit_us,omitempty"`
	// CacheSize bounds the simulated result cache (default 64, matching
	// the service default).
	CacheSize int `json:"cache_size,omitempty"`
}

// SLO is the pass/fail targets of the report. Zero-valued targets are
// not asserted.
type SLO struct {
	QueueWaitP95MS   float64 `json:"queue_wait_p95_ms,omitempty"`
	QueueWaitP99MS   float64 `json:"queue_wait_p99_ms,omitempty"`
	E2EP95MS         float64 `json:"e2e_p95_ms,omitempty"`
	E2EP99MS         float64 `json:"e2e_p99_ms,omitempty"`
	MaxRejectedShare float64 `json:"max_rejected_share,omitempty"`
	MinCacheHitRatio float64 `json:"min_cache_hit_ratio,omitempty"`
}

// Config is the full harness configuration, parseable from JSON (the
// -config flag) with every field optional.
type Config struct {
	// Seed pins the arrival processes, the job mix, and the cost jitter.
	Seed int64 `json:"seed,omitempty"`
	// Mode is "sim" (default: deterministic discrete-event simulation) or
	// "live" (drive a real server at Target over HTTP).
	Mode string `json:"mode,omitempty"`
	// Target is the live server's base URL; setting it implies live mode.
	Target string `json:"target,omitempty"`
	// Loop is "open" (arrivals fire on the arrival process regardless of
	// completions; default) or "closed" (Clients submitters each wait for
	// completion plus ThinkMS before the next submission).
	Loop string `json:"loop,omitempty"`
	// Arrival is the open-loop process: "fixed", "poisson", or "burst".
	Arrival    string  `json:"arrival,omitempty"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// BurstOnMS/BurstOffMS are the burst process's on/off window lengths;
	// during off windows arrivals run at BurstIdleFrac of RatePerSec.
	BurstOnMS     int64   `json:"burst_on_ms,omitempty"`
	BurstOffMS    int64   `json:"burst_off_ms,omitempty"`
	BurstIdleFrac float64 `json:"burst_idle_frac,omitempty"`
	// Clients and ThinkMS shape the closed loop.
	Clients int   `json:"clients,omitempty"`
	ThinkMS int64 `json:"think_ms,omitempty"`
	// DurationMS is how long arrivals run; in-flight jobs then drain.
	DurationMS int64 `json:"duration_ms,omitempty"`

	Mix     Mix     `json:"mix,omitempty"`
	Service Service `json:"service,omitempty"`
	SLO     SLO     `json:"slo,omitempty"`
}

// Parse decodes a JSON config strictly: unknown fields are errors, so a
// typoed knob fails loudly instead of silently running the defaults.
func Parse(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("loadgen: invalid config: %w", err)
	}
	// Trailing garbage after the object is also a config mistake.
	if dec.More() {
		return Config{}, fmt.Errorf("loadgen: invalid config: trailing data after JSON object")
	}
	return c, nil
}

// Normalize fills defaults and validates; the returned config is what a
// run actually uses, and normalizing it again is the identity.
func (c Config) Normalize() (Config, error) {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Target != "" && c.Mode == "" {
		c.Mode = "live"
	}
	if c.Mode == "" {
		c.Mode = "sim"
	}
	if c.Mode != "sim" && c.Mode != "live" {
		return c, fmt.Errorf("loadgen: unknown mode %q (want sim or live)", c.Mode)
	}
	if c.Mode == "live" && c.Target == "" {
		return c, fmt.Errorf("loadgen: live mode needs a target URL")
	}
	if c.Loop == "" {
		c.Loop = "open"
	}
	if c.Loop != "open" && c.Loop != "closed" {
		return c, fmt.Errorf("loadgen: unknown loop %q (want open or closed)", c.Loop)
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	switch c.Arrival {
	case "fixed", "poisson", "burst":
	default:
		return c, fmt.Errorf("loadgen: unknown arrival %q (want fixed, poisson, or burst)", c.Arrival)
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 20
	}
	if c.RatePerSec < 0 {
		return c, fmt.Errorf("loadgen: rate_per_sec must be positive")
	}
	if c.Arrival == "burst" {
		if c.BurstOnMS <= 0 {
			c.BurstOnMS = 2000
		}
		if c.BurstOffMS <= 0 {
			c.BurstOffMS = 4000
		}
		if c.BurstIdleFrac < 0 || c.BurstIdleFrac >= 1 {
			return c, fmt.Errorf("loadgen: burst_idle_frac must be in [0, 1)")
		}
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.ThinkMS < 0 {
		return c, fmt.Errorf("loadgen: think_ms must be non-negative")
	}
	if c.DurationMS <= 0 {
		c.DurationMS = 30_000
	}

	if c.Mix.HotSpecs <= 0 {
		c.Mix.HotSpecs = 4
	}
	if c.Mix.Sites <= 0 {
		c.Mix.Sites = 5
	}
	if c.Mix.PagesPerSite <= 0 {
		c.Mix.PagesPerSite = 2
	}
	if c.Mix.Shards <= 0 {
		c.Mix.Shards = 2
	}
	if c.Mix.AnalysisWorkers <= 0 {
		c.Mix.AnalysisWorkers = 2
	}
	for name, share := range map[string]float64{
		"cached_share":      c.Mix.CachedShare,
		"fault_light_share": c.Mix.FaultLightShare,
		"fault_heavy_share": c.Mix.FaultHeavyShare,
		"sharded_share":     c.Mix.ShardedShare,
	} {
		if share < 0 || share > 1 {
			return c, fmt.Errorf("loadgen: mix %s must be in [0, 1]", name)
		}
	}
	if c.Mix.FaultLightShare+c.Mix.FaultHeavyShare > 1 {
		return c, fmt.Errorf("loadgen: fault shares sum past 1")
	}

	if c.Service.MinWorkers <= 0 {
		c.Service.MinWorkers = 1
	}
	if c.Service.MaxWorkers <= 0 {
		c.Service.MaxWorkers = 8
	}
	if c.Service.MaxWorkers < c.Service.MinWorkers {
		return c, fmt.Errorf("loadgen: max_workers %d below min_workers %d",
			c.Service.MaxWorkers, c.Service.MinWorkers)
	}
	if c.Service.QueueDepth <= 0 {
		c.Service.QueueDepth = 16
	}
	if c.Service.ScaleIntervalMS <= 0 {
		c.Service.ScaleIntervalMS = 250
	}
	if c.Service.JobBaseUS <= 0 {
		c.Service.JobBaseUS = 5_000
	}
	if c.Service.JobPerVisitUS <= 0 {
		c.Service.JobPerVisitUS = 400
	}
	if c.Service.CacheSize <= 0 {
		c.Service.CacheSize = 64
	}
	c.Service.Scaler.MinWorkers = c.Service.MinWorkers
	c.Service.Scaler.MaxWorkers = c.Service.MaxWorkers
	c.Service.Scaler = c.Service.Scaler.WithDefaults()

	for name, target := range map[string]float64{
		"queue_wait_p95_ms":   c.SLO.QueueWaitP95MS,
		"queue_wait_p99_ms":   c.SLO.QueueWaitP99MS,
		"e2e_p95_ms":          c.SLO.E2EP95MS,
		"e2e_p99_ms":          c.SLO.E2EP99MS,
		"max_rejected_share":  c.SLO.MaxRejectedShare,
		"min_cache_hit_ratio": c.SLO.MinCacheHitRatio,
	} {
		if target < 0 {
			return c, fmt.Errorf("loadgen: slo %s must be non-negative", name)
		}
	}
	return c, nil
}
