package loadgen

import (
	"container/heap"
	"math/rand"

	"webmeasure/internal/metrics"
	"webmeasure/internal/service"
	"webmeasure/internal/service/scaler"
)

// The discrete-event simulator behind sim mode. It models the job
// service's serving path — bounded queue, autoscaling worker pool, LRU
// result cache keyed on the real spec canonicalization — on simulated
// time, and records everything into a real metrics.Registry under the
// same names the service uses ("service.queue_wait_ms", "service.job_ms",
// "service.workers_current", ...). The SLO report is then computed from
// the registry's Prometheus exposition, so the exact scrape-and-parse
// path a live run uses is exercised by every golden test. The scaling
// decisions are the real scaler.Decide on the simulated clock: the
// scale-event sequence the report prints is what the service would do
// under this load.

// event kinds, ordered only for documentation — ties on time break on
// sequence number, which encodes scheduling order deterministically.
const (
	evArrival = iota // open-loop arrival (draws a spec, submits)
	evSubmit         // closed-loop client submission
	evFinish         // a running job completes
	evScale          // scaler evaluation tick
)

type simJob struct {
	key      string
	costUS   int64
	submitUS int64
	clientOf int // closed-loop client waiting on this job, -1 for open-loop
}

type simEvent struct {
	atUS   int64
	seq    int
	kind   int
	client int
	job    *simJob
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atUS != h[j].atUS {
		return h[i].atUS < h[j].atUS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// simLRU is the simulated result cache: identical keying and eviction
// order to the service's resultCache, holding only membership.
type simLRU struct {
	cap   int
	keys  []string // eviction order, oldest first
	items map[string]bool
}

func newSimLRU(cap int) *simLRU {
	return &simLRU{cap: cap, items: make(map[string]bool, cap)}
}

func (c *simLRU) get(key string) bool {
	if !c.items[key] {
		return false
	}
	c.touch(key)
	return true
}

func (c *simLRU) put(key string) {
	if c.items[key] {
		c.touch(key)
		return
	}
	if len(c.keys) >= c.cap {
		oldest := c.keys[0]
		c.keys = c.keys[1:]
		delete(c.items, oldest)
	}
	c.keys = append(c.keys, key)
	c.items[key] = true
}

func (c *simLRU) touch(key string) {
	for i, k := range c.keys {
		if k == key {
			c.keys = append(append(append([]string(nil), c.keys[:i]...), c.keys[i+1:]...), key)
			return
		}
	}
}

// sim is one simulation run's state.
type sim struct {
	cfg   Config
	mixer *mixer
	reg   *metrics.Registry

	events eventHeap
	seq    int

	queue []*simJob
	busy  int
	cur   int
	cache *simLRU

	// scaler state, maintained exactly like the service pool's
	lastScaleMS int64
	lowSinceMS  int64
	waits       []float64 // recent queue-wait ring (ms)
	waitAtMS    []int64   // per-sample timestamps, same indices
	waitsN      int
	scaleLog    []scaler.Event

	endUS int64 // latest event time seen (the drain end)

	cSubmitted, cCompleted, cRejected   *metrics.Counter
	cCacheHits, cCacheMisses            *metrics.Counter
	cScaleUp, cScaleDown                *metrics.Counter
	gWorkers                            *metrics.Gauge
	hQueueMS, hJobMS, hE2EMS            *metrics.Histogram
}

// simWaitRing matches the service pool's recent-sample window size.
const simWaitRing = 128

// runSim executes one deterministic simulation and returns the report.
func runSim(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := metrics.New()
	s := &sim{
		cfg:         cfg,
		mixer:       newMixer(cfg, rng),
		reg:         reg,
		cur:         cfg.Service.MinWorkers,
		cache:       newSimLRU(cfg.Service.CacheSize),
		lastScaleMS: -1,
		lowSinceMS:  -1,
		waits:       make([]float64, 0, simWaitRing),
		waitAtMS:    make([]int64, 0, simWaitRing),

		cSubmitted:   reg.Counter("service.jobs.submitted"),
		cCompleted:   reg.Counter("service.jobs.completed"),
		cRejected:    reg.Counter("service.jobs.rejected"),
		cCacheHits:   reg.Counter("service.cache.hits"),
		cCacheMisses: reg.Counter("service.cache.misses"),
		cScaleUp:     reg.Counter(metrics.Labeled("service.scale_events.total", "dir", "up")),
		cScaleDown:   reg.Counter(metrics.Labeled("service.scale_events.total", "dir", "down")),
		gWorkers:     reg.Gauge("service.workers_current"),
		hQueueMS:     reg.Histogram("service.queue_wait_ms"),
		hJobMS:       reg.Histogram("service.job_ms"),
		hE2EMS:       reg.Histogram("loadgen.e2e_ms"),
	}
	s.gWorkers.Set(int64(s.cur))

	// Seed the schedule: scaler ticks across the whole run, then either
	// the open-loop arrival process or one submission per closed-loop
	// client (staggered 1ms apart so no two clients are synchronized).
	for t := cfg.Service.ScaleIntervalMS; t <= cfg.DurationMS; t += cfg.Service.ScaleIntervalMS {
		s.push(simEvent{atUS: t * 1000, kind: evScale})
	}
	if cfg.Loop == "open" {
		arrivals := newArrivals(cfg, rng)
		if at := arrivals.next(); at >= 0 {
			s.push(simEvent{atUS: at, kind: evArrival})
		}
		s.runLoop(arrivals)
	} else {
		for c := 0; c < cfg.Clients; c++ {
			s.push(simEvent{atUS: int64(c) * 1000, kind: evSubmit, client: c})
		}
		s.runLoop(nil)
	}

	durMS := s.endUS / 1000
	if durMS < cfg.DurationMS {
		durMS = cfg.DurationMS
	}
	return buildReport(cfg, expositionOf(reg), s.scaleLog, durMS, s.cur)
}

func (s *sim) push(e simEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *sim) runLoop(arrivals *arrivalProcess) {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(simEvent)
		if e.atUS > s.endUS {
			s.endUS = e.atUS
		}
		switch e.kind {
		case evArrival:
			s.submit(e.atUS, -1)
			if at := arrivals.next(); at >= 0 {
				s.push(simEvent{atUS: at, kind: evArrival})
			}
		case evSubmit:
			s.submit(e.atUS, e.client)
		case evFinish:
			s.finish(e.atUS, e)
		case evScale:
			s.evaluateScale(e.atUS / 1000)
		}
	}
}

// submit models the service's Submit path: cache hit answers instantly,
// a full queue rejects, anything else queues (and starts immediately when
// a worker is free). client >= 0 marks a closed-loop submission, whose
// next think-time cycle is scheduled off the outcome.
func (s *sim) submit(atUS int64, client int) {
	spec := s.mixer.spec()
	_, key, err := spec.Canonical(mixLimits)
	if err != nil {
		// The mixer only emits specs the service accepts; a validation
		// error here is a harness bug worth failing loudly over.
		panic("loadgen: mixer produced an invalid spec: " + err.Error())
	}
	s.cSubmitted.Inc()
	job := &simJob{key: key, costUS: s.mixer.costUS(spec), submitUS: atUS, clientOf: client}
	switch {
	case s.cache.get(key):
		s.cCacheHits.Inc()
		s.hE2EMS.Observe(0)
		s.clientNext(atUS, client)
	case len(s.queue) >= s.cfg.Service.QueueDepth:
		s.cRejected.Inc()
		s.clientNext(atUS, client)
	default:
		// A closed-loop client waits for this job: its next submission is
		// scheduled at finish time via clientOf.
		s.queue = append(s.queue, job)
		s.startIdle(atUS)
	}
}

// clientNext schedules a closed-loop client's next submission after its
// think time; open-loop submissions (client < 0) have none.
func (s *sim) clientNext(atUS int64, client int) {
	if client < 0 {
		return
	}
	next := atUS + s.cfg.ThinkMS*1000
	if next/1000 > s.cfg.DurationMS {
		return
	}
	s.push(simEvent{atUS: next, kind: evSubmit, client: client})
}

// startIdle puts queued jobs onto free workers.
func (s *sim) startIdle(atUS int64) {
	for s.busy < s.cur && len(s.queue) > 0 {
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.busy++
		s.cCacheMisses.Inc()
		waitMS := float64(atUS-job.submitUS) / 1000
		s.hQueueMS.Observe(waitMS)
		s.observeWait(waitMS, atUS/1000)
		s.push(simEvent{atUS: atUS + job.costUS, kind: evFinish, job: job})
	}
}

func (s *sim) finish(atUS int64, e simEvent) {
	job := e.job
	s.busy--
	s.cCompleted.Inc()
	s.cache.put(job.key)
	s.hJobMS.Observe(float64(job.costUS) / 1000)
	s.hE2EMS.Observe(float64(atUS-job.submitUS) / 1000)
	s.clientNext(atUS, job.clientOf)
	s.startIdle(atUS)
}

func (s *sim) observeWait(ms float64, atMS int64) {
	if len(s.waits) < simWaitRing {
		s.waits = append(s.waits, ms)
		s.waitAtMS = append(s.waitAtMS, atMS)
	} else {
		s.waits[s.waitsN%simWaitRing] = ms
		s.waitAtMS[s.waitsN%simWaitRing] = atMS
	}
	s.waitsN++
}

// recentP95 ages samples out of the window exactly like the service
// pool's p95Since, so the sim's scale decisions track the real pool's.
func (s *sim) recentP95(nowMS int64) float64 {
	fresh := make([]float64, 0, len(s.waits))
	for i, v := range s.waits {
		if nowMS-s.waitAtMS[i] <= service.WaitWindowMS {
			fresh = append(fresh, v)
		}
	}
	return p95Of(fresh)
}

// evaluateScale mirrors Server.evaluateScale on the simulated clock: same
// inputs, same low-load window bookkeeping, same decision function.
func (s *sim) evaluateScale(nowMS int64) {
	in := scaler.Inputs{
		NowMS:                nowMS,
		QueueDepth:           len(s.queue),
		BusyWorkers:          s.busy,
		CurrentWorkers:       s.cur,
		RecentP95QueueWaitMS: s.recentP95(nowMS),
		LastScaleMS:          s.lastScaleMS,
	}
	if scaler.LowLoad(s.cfg.Service.Scaler, in) {
		if s.lowSinceMS < 0 {
			s.lowSinceMS = nowMS
		}
	} else {
		s.lowSinceMS = -1
	}
	in.LowLoadSinceMS = s.lowSinceMS
	d := scaler.Decide(s.cfg.Service.Scaler, in)
	if d.Target == s.cur {
		return
	}
	if d.Target > s.cur {
		s.cScaleUp.Inc()
	} else {
		s.cScaleDown.Inc()
	}
	s.scaleLog = append(s.scaleLog, scaler.Event{
		AtMS:           nowMS,
		From:           s.cur,
		To:             d.Target,
		Reason:         d.Reason,
		QueueDepth:     in.QueueDepth,
		P95QueueWaitMS: in.RecentP95QueueWaitMS,
	})
	s.cur = d.Target
	s.gWorkers.Set(int64(s.cur))
	s.lastScaleMS = nowMS
	s.startIdle(nowMS * 1000)
}
