package loadgen

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"webmeasure/internal/metrics"
	"webmeasure/internal/service/scaler"
)

// The SLO report. Both modes feed it the same way: a Prometheus text
// exposition (the simulator's registry, or the live server's /metrics
// scrape concatenated with the client-side registry) is parsed back into
// samples, and the report's traffic, latency, and pass/fail sections are
// computed from those. Going through the exposition instead of reading
// registries directly means the bytes a scraper would see are exactly
// what the SLO verdicts are judged on.

// promSamples maps "family" or `family{k="v",...}` to the sample value.
type promSamples map[string]float64

// parsePrometheus reads a text exposition (0.0.4), ignoring comments and
// anything it cannot parse — the report only needs the families it asks
// for by exact name.
func parsePrometheus(text string) promSamples {
	out := make(promSamples)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name{labels} value" or "name value"; the label block may hold
		// spaces inside quotes, so split on the last space.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		name, valueStr := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// q returns the quantile-companion gauge of a histogram family.
func (p promSamples) q(family, quantile string) float64 {
	return p[family+`_quantile{q="`+quantile+`"}`]
}

// expositionOf renders a registry the way /metrics would.
func expositionOf(reg *metrics.Registry) string {
	var b strings.Builder
	_ = reg.Snapshot().WritePrometheus(&b)
	return b.String()
}

// p95Of estimates the 95th percentile of a sample window (0 when empty),
// with the same arithmetic the service pool uses.
func p95Of(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	idx := int(math.Ceil(0.95*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Quantiles is one latency family's headline numbers, in milliseconds.
type Quantiles struct {
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
	Count int64   `json:"count"`
}

func quantilesOf(p promSamples, family string) Quantiles {
	return Quantiles{
		P50:   p.q(family, "0.5"),
		P95:   p.q(family, "0.95"),
		P99:   p.q(family, "0.99"),
		Max:   p.q(family, "max"),
		Count: int64(p[family+"_count"]),
	}
}

// Check is one SLO assertion: actual vs target, with direction.
type Check struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	Actual float64 `json:"actual"`
	// AtLeast inverts the comparison (cache hit ratio wants actual >=
	// target; every latency/rate target wants actual <= target).
	AtLeast bool `json:"at_least,omitempty"`
	Pass    bool `json:"pass"`
}

// Report is the harness's output: traffic, latency, SLO verdicts, and
// the scale-event sequence, all derived from the exposition text.
type Report struct {
	Mode    string `json:"mode"`
	Loop    string `json:"loop"`
	Arrival string `json:"arrival"`
	Seed    int64  `json:"seed"`
	// DurationMS covers arrivals plus drain (simulated in sim mode).
	DurationMS int64 `json:"duration_ms"`

	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// RejectedShare is rejected/submitted; CacheHitRatio is hits over
	// (hits + misses); Throughput counts completions plus cache hits.
	RejectedShare  float64 `json:"rejected_share"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	ThroughputJobs float64 `json:"throughput_jobs_per_sec"`

	QueueWait Quantiles `json:"queue_wait"`
	JobRun    Quantiles `json:"job_run"`
	E2E       Quantiles `json:"e2e"`

	WorkersFinal int            `json:"workers_final"`
	ScaleUps     int64          `json:"scale_ups"`
	ScaleDowns   int64          `json:"scale_downs"`
	Events       []scaler.Event `json:"events"`

	Checks []Check `json:"checks"`
	Pass   bool    `json:"pass"`
}

// buildReport computes the report from an exposition text plus the run's
// scale-event log.
func buildReport(cfg Config, exposition string, events []scaler.Event, durMS int64, workersFinal int) *Report {
	p := parsePrometheus(exposition)
	r := &Report{
		Mode:       cfg.Mode,
		Loop:       cfg.Loop,
		Arrival:    cfg.Arrival,
		Seed:       cfg.Seed,
		DurationMS: durMS,

		Submitted:   int64(p["service_jobs_submitted"]),
		Completed:   int64(p["service_jobs_completed"]),
		Rejected:    int64(p["service_jobs_rejected"]),
		CacheHits:   int64(p["service_cache_hits"]),
		CacheMisses: int64(p["service_cache_misses"]),

		QueueWait: quantilesOf(p, "service_queue_wait_ms"),
		JobRun:    quantilesOf(p, "service_job_ms"),
		E2E:       quantilesOf(p, "loadgen_e2e_ms"),

		WorkersFinal: workersFinal,
		ScaleUps:     int64(p[`service_scale_events_total{dir="up"}`]),
		ScaleDowns:   int64(p[`service_scale_events_total{dir="down"}`]),
		Events:       events,
	}
	if r.Submitted > 0 {
		r.RejectedShare = float64(r.Rejected) / float64(r.Submitted)
	}
	if lookups := r.CacheHits + r.CacheMisses; lookups > 0 {
		r.CacheHitRatio = float64(r.CacheHits) / float64(lookups)
	}
	if durMS > 0 {
		r.ThroughputJobs = float64(r.Completed+r.CacheHits) / (float64(durMS) / 1000)
	}

	add := func(name string, target, actual float64, atLeast bool) {
		if target == 0 {
			return
		}
		pass := actual <= target
		if atLeast {
			pass = actual >= target
		}
		r.Checks = append(r.Checks, Check{Name: name, Target: target, Actual: actual, AtLeast: atLeast, Pass: pass})
	}
	add("queue_wait_p95_ms", cfg.SLO.QueueWaitP95MS, r.QueueWait.P95, false)
	add("queue_wait_p99_ms", cfg.SLO.QueueWaitP99MS, r.QueueWait.P99, false)
	add("e2e_p95_ms", cfg.SLO.E2EP95MS, r.E2E.P95, false)
	add("e2e_p99_ms", cfg.SLO.E2EP99MS, r.E2E.P99, false)
	add("max_rejected_share", cfg.SLO.MaxRejectedShare, r.RejectedShare, false)
	add("min_cache_hit_ratio", cfg.SLO.MinCacheHitRatio, r.CacheHitRatio, true)
	r.Pass = true
	for _, c := range r.Checks {
		if !c.Pass {
			r.Pass = false
		}
	}
	return r
}

// WriteText renders the human-readable report. Every number is formatted
// with fixed precision, so for a deterministic run the bytes are stable.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "=== loadgen SLO report ===\n")
	fmt.Fprintf(w, "mode=%s loop=%s arrival=%s seed=%d duration_ms=%d\n\n",
		r.Mode, r.Loop, r.Arrival, r.Seed, r.DurationMS)

	fmt.Fprintf(w, "--- traffic ---\n")
	fmt.Fprintf(w, "submitted    %d\n", r.Submitted)
	fmt.Fprintf(w, "completed    %d\n", r.Completed)
	fmt.Fprintf(w, "rejected     %d (%.2f%%)\n", r.Rejected, 100*r.RejectedShare)
	fmt.Fprintf(w, "cache hits   %d (hit ratio %.2f%%)\n", r.CacheHits, 100*r.CacheHitRatio)
	fmt.Fprintf(w, "throughput   %.2f jobs/s\n\n", r.ThroughputJobs)

	fmt.Fprintf(w, "--- latency (ms) ---\n")
	writeQ(w, "queue wait", r.QueueWait)
	writeQ(w, "job run   ", r.JobRun)
	writeQ(w, "end-to-end", r.E2E)
	fmt.Fprintln(w)

	fmt.Fprintf(w, "--- autoscaling (workers end at %d; %d up, %d down) ---\n",
		r.WorkersFinal, r.ScaleUps, r.ScaleDowns)
	if len(r.Events) == 0 {
		fmt.Fprintf(w, "(no scale events)\n")
	}
	for _, e := range r.Events {
		fmt.Fprintf(w, "%s\n", e.String())
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "--- SLO ---\n")
	if len(r.Checks) == 0 {
		fmt.Fprintf(w, "(no targets configured)\n")
	}
	for _, c := range r.Checks {
		op := "<="
		if c.AtLeast {
			op = ">="
		}
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-20s %.3f %s %.3f: %s\n", c.Name, c.Actual, op, c.Target, verdict)
	}
	overall := "PASS"
	if !r.Pass {
		overall = "FAIL"
	}
	fmt.Fprintf(w, "overall: %s\n", overall)
}

func writeQ(w io.Writer, label string, q Quantiles) {
	fmt.Fprintf(w, "%s  p50=%.3f p95=%.3f p99=%.3f max=%.3f (n=%d)\n",
		label, q.P50, q.P95, q.P99, q.Max, q.Count)
}
