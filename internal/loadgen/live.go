package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"webmeasure/internal/metrics"
	"webmeasure/internal/service"
	"webmeasure/internal/service/scaler"
)

// Run executes the harness per the (already normalized) config: the
// deterministic simulator by default, the HTTP driver when the config
// targets a live server. Live numbers are wall-clock and vary run to
// run; the report format and SLO verdicts are shared with sim mode.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Mode == "sim" {
		return runSim(cfg), nil
	}
	return runLive(ctx, cfg)
}

// runLive drives a real server over HTTP with the same seeded arrival
// schedule and job mix as the simulator. Client-side end-to-end latency
// lands in a local registry; the server-side families come from scraping
// the target's /metrics at the end, and the scale events from
// /debug/scale — so the report covers the target's lifetime counters
// (point it at a freshly started server for clean numbers).
func runLive(ctx context.Context, cfg Config) (*Report, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	if _, err := fetch(ctx, client, cfg.Target+"/healthz"); err != nil {
		return nil, fmt.Errorf("loadgen: target not reachable: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := newMixer(cfg, rng)
	reg := metrics.New()
	hE2E := reg.Histogram("loadgen.e2e_ms")

	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(time.Duration(cfg.DurationMS) * time.Millisecond)
	runOne := func(spec service.JobSpec) {
		defer wg.Done()
		t0 := time.Now()
		if done := submitAndWait(ctx, client, cfg.Target, spec); done {
			hE2E.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		}
	}

	if cfg.Loop == "open" {
		// The arrival schedule is drawn up front on the same rng stream as
		// the mixer draws interleave per submission in sim mode; here the
		// schedule and the specs come from one stream sequentially, which
		// keeps the live driver simple (its numbers are wall-clock anyway).
		arrivals := newArrivals(cfg, rng)
		for {
			at := arrivals.next()
			if at < 0 || ctx.Err() != nil {
				break
			}
			sleepUntil(ctx, start.Add(time.Duration(at)*time.Microsecond))
			wg.Add(1)
			go runOne(mix.spec())
		}
	} else {
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) && ctx.Err() == nil {
					wg.Add(1)
					runOne(mix.specLocked())
					sleepUntil(ctx, time.Now().Add(time.Duration(cfg.ThinkMS)*time.Millisecond))
				}
			}()
		}
	}
	wg.Wait()

	scraped, err := fetch(ctx, client, cfg.Target+"/metrics")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /metrics: %w", err)
	}
	events, workers, err := fetchScale(ctx, client, cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /debug/scale: %w", err)
	}
	durMS := time.Since(start).Milliseconds()
	exposition := string(scraped) + expositionOf(reg)
	return buildReport(cfg, exposition, events, durMS, workers), nil
}

// specLocked serializes mixer draws for the concurrent closed-loop
// clients (the sim and the open loop draw from a single goroutine).
var mixMu sync.Mutex

func (m *mixer) specLocked() service.JobSpec {
	mixMu.Lock()
	defer mixMu.Unlock()
	return m.spec()
}

// submitAndWait posts one job and polls it to a terminal state. Returns
// whether an end-to-end latency was actually measured (cache hits and
// completions; rejections and errors are server-counted, not timed).
func submitAndWait(ctx context.Context, client *http.Client, target string, spec service.JobSpec) bool {
	body, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil || resp.StatusCode == http.StatusTooManyRequests {
		return false
	}
	if resp.StatusCode == http.StatusOK { // cache hit answered instantly
		return true
	}
	if resp.StatusCode != http.StatusAccepted {
		return false
	}
	for ctx.Err() == nil {
		b, err := fetch(ctx, client, target+"/v1/jobs/"+view.ID)
		if err != nil {
			return false
		}
		if err := json.Unmarshal(b, &view); err != nil {
			return false
		}
		switch view.State {
		case "done":
			return true
		case "failed", "canceled":
			return false
		}
		sleepUntil(ctx, time.Now().Add(25*time.Millisecond))
	}
	return false
}

func fetch(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// fetchScale reads the target's applied scale events and current pool
// size from /debug/scale.
func fetchScale(ctx context.Context, client *http.Client, target string) ([]scaler.Event, int, error) {
	b, err := fetch(ctx, client, target+"/debug/scale")
	if err != nil {
		return nil, 0, err
	}
	var view struct {
		WorkersCurrent int            `json:"workers_current"`
		Events         []scaler.Event `json:"events"`
	}
	if err := json.Unmarshal(b, &view); err != nil {
		return nil, 0, err
	}
	return view.Events, view.WorkersCurrent, nil
}

// sleepUntil sleeps to a deadline, returning early when ctx ends.
func sleepUntil(ctx context.Context, t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
