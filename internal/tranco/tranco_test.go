package tranco

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministicAndUnique(t *testing.T) {
	a := Generate(500, 42)
	b := Generate(500, 42)
	if a.Len() != 500 || b.Len() != 500 {
		t.Fatalf("lengths: %d %d", a.Len(), b.Len())
	}
	seen := make(map[string]bool)
	for i, e := range a.Entries() {
		if e != b.Entries()[i] {
			t.Fatalf("not deterministic at %d: %+v vs %+v", i, e, b.Entries()[i])
		}
		if e.Rank != i+1 {
			t.Fatalf("rank %d at index %d", e.Rank, i)
		}
		if seen[e.Site] {
			t.Fatalf("duplicate site %q", e.Site)
		}
		seen[e.Site] = true
	}
	c := Generate(500, 43)
	if c.Entries()[0].Site == a.Entries()[0].Site && c.Entries()[1].Site == a.Entries()[1].Site {
		t.Error("different seeds produced identical prefix")
	}
}

func TestAt(t *testing.T) {
	l := Generate(10, 1)
	if e, ok := l.At(1); !ok || e.Rank != 1 {
		t.Errorf("At(1) = %+v, %v", e, ok)
	}
	if _, ok := l.At(0); ok {
		t.Error("At(0) should fail")
	}
	if _, ok := l.At(11); ok {
		t.Error("At(11) should fail")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		rank, want int
	}{
		{1, 0}, {5000, 0}, {5001, 1}, {10000, 1}, {10001, 2},
		{50000, 2}, {50001, 3}, {250000, 3}, {250001, 4}, {500000, 4}, {500001, -1},
	}
	for _, c := range cases {
		if got := BucketIndex(c.rank, PaperBoundaries); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.rank, got, c.want)
		}
	}
}

func TestScaledBoundaries(t *testing.T) {
	b := ScaledBoundaries(500)
	want := []int{5, 10, 50, 250, 500}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ScaledBoundaries(500) = %v, want %v", b, want)
		}
	}
	// Tiny totals still yield strictly increasing buckets.
	b = ScaledBoundaries(5)
	prev := 0
	for _, v := range b {
		if v <= prev {
			t.Fatalf("non-increasing boundaries: %v", b)
		}
		prev = v
	}
	if b[len(b)-1] != 5 {
		t.Fatalf("last boundary must equal total: %v", b)
	}
}

func TestSample(t *testing.T) {
	l := Generate(500, 7)
	bounds := ScaledBoundaries(500) // 5,10,50,250,500
	got := Sampled(t, l, bounds, 5)
	if len(got) != 25 {
		t.Fatalf("sample size = %d, want 25", len(got))
	}
	// Bucket 0 is taken wholesale.
	for i := 0; i < 5; i++ {
		if got[i].Rank != i+1 {
			t.Errorf("top bucket not taken in full: %+v", got[:5])
		}
	}
	// Exactly perBucket entries per bucket, ranks within bounds.
	counts := make([]int, 5)
	for _, e := range got {
		bi := BucketIndex(e.Rank, bounds)
		if bi < 0 {
			t.Fatalf("rank %d outside buckets", e.Rank)
		}
		counts[bi]++
	}
	for i, c := range counts {
		if c != 5 {
			t.Errorf("bucket %d has %d entries, want 5", i, c)
		}
	}
	// No duplicates; sorted by rank.
	for i := 1; i < len(got); i++ {
		if got[i].Rank <= got[i-1].Rank {
			t.Fatalf("not sorted/unique at %d: %v", i, got)
		}
	}
	// Deterministic for a fixed seed.
	again := Sampled(t, l, bounds, 5)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func Sampled(t *testing.T, l *List, bounds []int, per int) []Entry {
	t.Helper()
	return l.Sample(bounds, per, 99)
}

func TestSampleSmallList(t *testing.T) {
	l := Generate(8, 1)
	got := l.Sample([]int{5, 10}, 5, 1)
	if len(got) != 8 {
		t.Fatalf("want all 8 entries, got %d", len(got))
	}
}

// Property: every sampled rank falls in the list, sample is duplicate-free.
func TestSampleProperty(t *testing.T) {
	l := Generate(200, 3)
	f := func(seed int64, per uint8) bool {
		p := int(per%10) + 1
		got := l.Sample(ScaledBoundaries(200), p, seed)
		seen := map[int]bool{}
		for _, e := range got {
			if e.Rank < 1 || e.Rank > 200 || seen[e.Rank] {
				return false
			}
			seen[e.Rank] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
