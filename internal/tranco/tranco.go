// Package tranco provides the ranked site list the experiment samples from.
// It generates a deterministic Tranco-like ranking of synthetic sites and
// implements the paper's sampling scheme (§3.1.2): the full top bucket plus
// a random sample from each deeper rank bucket, and the bucket partition of
// Appendix F (1–5k, 5,001–10k, 10,001–50k, 50,001–250k, 250,001–500k).
package tranco

import (
	"fmt"
	"math/rand"
	"sort"
)

// Entry is one ranked site.
type Entry struct {
	Rank int    // 1-based
	Site string // registrable domain (eTLD+1)
}

// List is a ranking of sites by popularity.
type List struct {
	entries []Entry
}

// PaperBoundaries are the upper bounds of the paper's five rank buckets.
var PaperBoundaries = []int{5_000, 10_000, 50_000, 250_000, 500_000}

// BucketNames labels the paper's buckets in Table 7 order.
var BucketNames = []string{"1-5k", "5,001-10k", "10,001-50k", "50,001-250k", "250,001-500k"}

// tlds weights the suffixes used for generated sites. ".example" dominates
// so generated traffic is visibly synthetic; the rest exercise multi-label
// suffix handling downstream.
var tlds = []string{"example", "example", "example", "com", "net", "org", "io", "co.uk", "de"}

// Generate creates a deterministic ranking of n sites from seed. Domains
// are unique.
func Generate(n int, seed int64) *List {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, 0, n)
	used := make(map[string]bool, n)
	for rank := 1; rank <= n; rank++ {
		site := ""
		for {
			site = randomName(rng) + "." + tlds[rng.Intn(len(tlds))]
			if !used[site] {
				break
			}
			// Collisions get a numeric disambiguator instead of looping
			// forever on small name spaces.
			site = fmt.Sprintf("%s%d.%s", randomName(rng), rank, tlds[rng.Intn(len(tlds))])
			if !used[site] {
				break
			}
		}
		used[site] = true
		entries = append(entries, Entry{Rank: rank, Site: site})
	}
	return &List{entries: entries}
}

var (
	consonants = []string{"b", "c", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "st", "tr", "pl"}
	vowels     = []string{"a", "e", "i", "o", "u", "ai", "ou"}
)

func randomName(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	name := ""
	for i := 0; i < n; i++ {
		name += consonants[rng.Intn(len(consonants))] + vowels[rng.Intn(len(vowels))]
	}
	return name
}

// Len returns the number of ranked sites.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the full ranking in rank order. The returned slice must
// not be modified.
func (l *List) Entries() []Entry { return l.entries }

// At returns the entry with the given 1-based rank.
func (l *List) At(rank int) (Entry, bool) {
	if rank < 1 || rank > len(l.entries) {
		return Entry{}, false
	}
	return l.entries[rank-1], true
}

// BucketIndex returns the index of the bucket containing rank under the
// given ascending boundaries, or -1 when rank exceeds the last boundary.
func BucketIndex(rank int, boundaries []int) int {
	for i, b := range boundaries {
		if rank <= b {
			return i
		}
	}
	return -1
}

// ScaledBoundaries shrinks PaperBoundaries proportionally to a list of
// total sites, preserving the paper's 1% / 1% / 8% / 40% / 50% partition.
// Every bucket is at least one rank wide.
func ScaledBoundaries(total int) []int {
	out := make([]int, len(PaperBoundaries))
	prev := 0
	for i, b := range PaperBoundaries {
		v := b * total / PaperBoundaries[len(PaperBoundaries)-1]
		if v <= prev {
			v = prev + 1
		}
		out[i] = v
		prev = v
	}
	out[len(out)-1] = total
	return out
}

// Sample implements the paper's site selection: all of the first bucket up
// to perBucket entries ("the top 5k sites"), then perBucket sites drawn
// uniformly without replacement from each subsequent bucket. The result is
// sorted by rank.
func (l *List) Sample(boundaries []int, perBucket int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	var out []Entry
	lo := 0
	for i, hi := range boundaries {
		if hi > len(l.entries) {
			hi = len(l.entries)
		}
		if lo >= hi {
			break
		}
		bucket := l.entries[lo:hi]
		if i == 0 || len(bucket) <= perBucket {
			n := perBucket
			if n > len(bucket) {
				n = len(bucket)
			}
			out = append(out, bucket[:n]...)
		} else {
			idx := rng.Perm(len(bucket))[:perBucket]
			sort.Ints(idx)
			for _, j := range idx {
				out = append(out, bucket[j])
			}
		}
		lo = hi
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Rank < out[b].Rank })
	return out
}
