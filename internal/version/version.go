// Package version centralizes the build identity the -version flags and
// the /healthz endpoint report. The version string tracks the PR
// sequence growing this repository; builds installed via `go install`
// additionally surface the module version and VCS revision when the
// toolchain embedded them.
package version

import (
	"runtime"
	"runtime/debug"
)

// Version is the semantic version of the measurement pipeline.
const Version = "0.10.0"

// String renders the full identity: version, optional VCS revision, and
// the Go toolchain.
func String() string {
	s := "webmeasure " + Version
	if rev := revision(); rev != "" {
		s += " (" + rev + ")"
	}
	return s + " " + runtime.Version()
}

// revision returns the short VCS revision when the build embedded one.
func revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			if len(kv.Value) > 12 {
				return kv.Value[:12]
			}
			return kv.Value
		}
	}
	return ""
}
