package tree

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRecordRoundTrip: Record → Tree must reproduce every analysis-visible
// property of the original — node fields, children order, depths, chain
// keys, and the memoized views — and a second flattening must yield a
// deeply equal Record (the fixed point the wire protocol relies on).
func TestRecordRoundTrip(t *testing.T) {
	orig := build(t)
	rec := orig.Record()
	back, err := rec.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if back.Site != orig.Site || back.PageURL != orig.PageURL || back.Profile != orig.Profile {
		t.Errorf("identity differs: %s/%s/%s", back.Site, back.PageURL, back.Profile)
	}
	if back.StrippedURLs != orig.StrippedURLs || back.TotalRequests != orig.TotalRequests {
		t.Errorf("counters differ: stripped %d/%d, total %d/%d",
			back.StrippedURLs, orig.StrippedURLs, back.TotalRequests, orig.TotalRequests)
	}
	if back.NodeCount() != orig.NodeCount() {
		t.Fatalf("node count %d, want %d", back.NodeCount(), orig.NodeCount())
	}
	if back.MaxDepth() != orig.MaxDepth() {
		t.Errorf("max depth %d, want %d", back.MaxDepth(), orig.MaxDepth())
	}
	for _, n := range orig.Nodes() {
		m := back.Node(n.Key)
		if m == nil {
			t.Fatalf("node %q missing after round trip", n.Key)
		}
		if m.Depth != n.Depth || m.ChainKey() != n.ChainKey() {
			t.Errorf("node %q: depth %d/%d chainKey %q/%q", n.Key, m.Depth, n.Depth, m.ChainKey(), n.ChainKey())
		}
		if m.Type != n.Type || m.Party != n.Party || m.Tracking != n.Tracking ||
			m.RawURL != n.RawURL || m.Status != n.Status ||
			m.ContentType != n.ContentType || m.BodySize != n.BodySize {
			t.Errorf("node %q: fields differ after round trip", n.Key)
		}
		if len(m.Children) != len(n.Children) {
			t.Fatalf("node %q: %d children, want %d", n.Key, len(m.Children), len(n.Children))
		}
		for i := range n.Children {
			if m.Children[i].Key != n.Children[i].Key {
				t.Errorf("node %q: child %d is %q, want %q (order lost)",
					n.Key, i, m.Children[i].Key, n.Children[i].Key)
			}
		}
	}
	if again := back.Record(); !reflect.DeepEqual(again, rec) {
		t.Error("second flattening differs from the first — Record is not a fixed point")
	}
}

// TestRecordJSONRoundTrip: the wire actually ships JSON; parse errors or
// field drift would surface here.
func TestRecordJSONRoundTrip(t *testing.T) {
	rec := build(t).Record()
	wire, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := json.Unmarshal(wire, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Error("record changed across JSON round trip")
	}
	if _, err := got.Tree(); err != nil {
		t.Errorf("rebuild after JSON: %v", err)
	}
}

// TestRecordTreeValidation: malformed wire records must be rejected.
func TestRecordTreeValidation(t *testing.T) {
	base := build(t).Record()
	for _, tc := range []struct {
		name   string
		mutate func(r *Record)
	}{
		{"empty", func(r *Record) { r.Nodes = nil }},
		{"rooted first node", func(r *Record) { r.Nodes[0].Parent = "nowhere" }},
		{"duplicate key", func(r *Record) { r.Nodes[2].Key = r.Nodes[1].Key }},
		{"unknown parent", func(r *Record) { r.Nodes[len(r.Nodes)-1].Parent = "ghost" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := base
			rec.Nodes = append([]NodeRecord(nil), base.Nodes...)
			tc.mutate(&rec)
			if _, err := rec.Tree(); err == nil {
				t.Error("malformed record accepted")
			}
		})
	}
}
