package tree

import (
	"testing"

	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
)

const page = "https://news.example/article"

// visitFixture builds a hand-crafted visit exercising every attribution
// signal:
//
//	root ── app.js ──(stack)── api        (XHR)
//	  │        └─(stack)── tracker.js ──(stack)── sync-a →(redir)→ sync-b →(redir)→ done
//	  ├── logo.png                        (parser-inserted, no stack)
//	  └── adtag.js ──(stack)── frame ──(frame)── creative.js ──(stack)── ad.png
func visitFixture() *measurement.Visit {
	stack := func(url string) []measurement.StackFrame {
		return []measurement.StackFrame{{FuncName: "f", URL: url}}
	}
	return &measurement.Visit{
		Site: "news.example", PageURL: page, Profile: "Sim1", Success: true,
		Requests: []measurement.Request{
			{URL: page, Type: measurement.TypeMainFrame},
			{URL: "https://news.example/js/app.js", Type: measurement.TypeScript},
			{URL: "https://news.example/logo.png", Type: measurement.TypeImage},
			{URL: "https://news.example/api/v1/data?sid=123", Type: measurement.TypeXHR,
				CallStack: stack("https://news.example/js/app.js")},
			{URL: "https://trk-metrics.example/js/analytics.js", Type: measurement.TypeScript,
				CallStack: stack("https://news.example/js/app.js")},
			{URL: "https://trk-metrics.example/sync?uid=a", Type: measurement.TypeImage,
				CallStack: stack("https://trk-metrics.example/js/analytics.js")},
			{URL: "https://partner-metrics.example/sync?uid=b", Type: measurement.TypeImage,
				RedirectFrom: "https://trk-metrics.example/sync?uid=a"},
			{URL: "https://partner-metrics.example/track/done", Type: measurement.TypeImage,
				RedirectFrom: "https://partner-metrics.example/sync?uid=b"},
			{URL: "https://adnet-ads.example/js/adtag.js", Type: measurement.TypeScript},
			{URL: "https://adnet-ads.example/frame/slot-0", Type: measurement.TypeSubFrame,
				CallStack: stack("https://adnet-ads.example/js/adtag.js")},
			{URL: "https://adhost-adcontent.example/creative/c1/ad.js", Type: measurement.TypeScript,
				FrameID: 1, FrameURL: "https://adnet-ads.example/frame/slot-0"},
			{URL: "https://adhost-adcontent.example/creative/c1/img.png", Type: measurement.TypeImage,
				FrameID: 1, FrameURL: "https://adnet-ads.example/frame/slot-0",
				CallStack: stack("https://adhost-adcontent.example/creative/c1/ad.js")},
		},
	}
}

func testFilter(t *testing.T) *filterlist.List {
	t.Helper()
	l, skipped := filterlist.Parse("||trk-metrics.example^\n||partner-metrics.example^\n/track/\n/sync?\n")
	if skipped != 0 {
		t.Fatalf("filter skipped %d", skipped)
	}
	return l
}

func build(t *testing.T) *Tree {
	t.Helper()
	b := &Builder{Filter: testFilter(t)}
	tr, err := b.Build(visitFixture())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildStructure(t *testing.T) {
	tr := build(t)
	if tr.NodeCount() != 12 {
		t.Fatalf("nodes = %d, want 12", tr.NodeCount())
	}
	if tr.Root.Key != page {
		t.Errorf("root key = %q", tr.Root.Key)
	}
	check := func(key string, wantDepth int, wantParent string) {
		t.Helper()
		n := tr.Node(key)
		if n == nil {
			t.Fatalf("node %q missing", key)
		}
		if n.Depth != wantDepth {
			t.Errorf("%q depth = %d, want %d", key, n.Depth, wantDepth)
		}
		if wantParent == "" {
			if !n.IsRoot() {
				t.Errorf("%q should be root", key)
			}
		} else if n.Parent == nil || n.Parent.Key != wantParent {
			t.Errorf("%q parent = %v, want %q", key, n.Parent, wantParent)
		}
	}
	check(page, 0, "")
	check("https://news.example/js/app.js", 1, page)
	check("https://news.example/logo.png", 1, page)
	check("https://news.example/api/v1/data?sid=", 2, "https://news.example/js/app.js")
	check("https://trk-metrics.example/js/analytics.js", 2, "https://news.example/js/app.js")
	check("https://trk-metrics.example/sync?uid=", 3, "https://trk-metrics.example/js/analytics.js")
	check("https://partner-metrics.example/sync?uid=", 4, "https://trk-metrics.example/sync?uid=")
	check("https://partner-metrics.example/track/done", 5, "https://partner-metrics.example/sync?uid=")
	check("https://adnet-ads.example/frame/slot-0", 2, "https://adnet-ads.example/js/adtag.js")
	check("https://adhost-adcontent.example/creative/c1/ad.js", 3, "https://adnet-ads.example/frame/slot-0")
	check("https://adhost-adcontent.example/creative/c1/img.png", 4, "https://adhost-adcontent.example/creative/c1/ad.js")
}

func TestBuildMetrics(t *testing.T) {
	tr := build(t)
	if d := tr.MaxDepth(); d != 5 {
		t.Errorf("MaxDepth = %d, want 5", d)
	}
	if b := tr.Breadth(); b != 3 {
		t.Errorf("Breadth = %d, want 3 (depth 1 and 2 have 3 nodes)", b)
	}
	if got := len(tr.AtDepth(1)); got != 3 {
		t.Errorf("AtDepth(1) = %d, want 3", got)
	}
	if got := tr.KeysAtDepth(5); len(got) != 1 || !got["https://partner-metrics.example/track/done"] {
		t.Errorf("KeysAtDepth(5) = %v", got)
	}
	// Normalization stripped: api?sid=123, sync?uid=a, sync?uid=b.
	if tr.StrippedURLs != 3 {
		t.Errorf("StrippedURLs = %d, want 3", tr.StrippedURLs)
	}
	if tr.TotalRequests != 12 {
		t.Errorf("TotalRequests = %d", tr.TotalRequests)
	}
}

func TestPartyAndTracking(t *testing.T) {
	tr := build(t)
	cases := []struct {
		key      string
		party    Party
		tracking bool
	}{
		{"https://news.example/js/app.js", FirstParty, false},
		{"https://news.example/api/v1/data?sid=", FirstParty, false},
		{"https://trk-metrics.example/js/analytics.js", ThirdParty, true},
		{"https://partner-metrics.example/track/done", ThirdParty, true},
		{"https://adnet-ads.example/js/adtag.js", ThirdParty, false},
		{"https://adhost-adcontent.example/creative/c1/img.png", ThirdParty, false},
	}
	for _, c := range cases {
		n := tr.Node(c.key)
		if n == nil {
			t.Fatalf("missing %q", c.key)
		}
		if n.Party != c.party || n.Tracking != c.tracking {
			t.Errorf("%q: party=%v tracking=%v, want %v/%v", c.key, n.Party, n.Tracking, c.party, c.tracking)
		}
	}
}

func TestChain(t *testing.T) {
	tr := build(t)
	n := tr.Node("https://partner-metrics.example/track/done")
	chain := n.Chain()
	want := []string{
		page,
		"https://news.example/js/app.js",
		"https://trk-metrics.example/js/analytics.js",
		"https://trk-metrics.example/sync?uid=",
		"https://partner-metrics.example/sync?uid=",
		"https://partner-metrics.example/track/done",
	}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %q, want %q", i, chain[i], want[i])
		}
	}
	if tr.Root.ChainKey() == n.ChainKey() {
		t.Error("chain keys must differ")
	}
}

func TestMergeDuplicateURLs(t *testing.T) {
	v := visitFixture()
	// The same script requested again with a different session ID merges.
	v.Requests = append(v.Requests, measurement.Request{
		URL:  "https://news.example/api/v1/data?sid=999",
		Type: measurement.TypeXHR,
		CallStack: []measurement.StackFrame{
			{FuncName: "g", URL: "https://adnet-ads.example/js/adtag.js"},
		},
	})
	b := &Builder{}
	tr, err := b.Build(v)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Node("https://news.example/api/v1/data?sid=")
	if n == nil {
		t.Fatal("merged node missing")
	}
	// First parent wins.
	if n.Parent.Key != "https://news.example/js/app.js" {
		t.Errorf("merge changed parent: %q", n.Parent.Key)
	}
}

func TestUnattributableAttachesToRoot(t *testing.T) {
	v := &measurement.Visit{
		Site: "x.example", PageURL: "https://x.example/", Profile: "Sim1", Success: true,
		Requests: []measurement.Request{
			{URL: "https://x.example/", Type: measurement.TypeMainFrame},
			{URL: "https://cdn.example/lost.js", Type: measurement.TypeScript,
				CallStack: []measurement.StackFrame{{URL: "https://never-seen.example/ghost.js"}}},
		},
	}
	tr, err := (&Builder{}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Node("https://cdn.example/lost.js")
	if n == nil || !n.Parent.IsRoot() {
		t.Error("orphaned request must attach to the root")
	}
}

func TestBuildErrors(t *testing.T) {
	b := &Builder{}
	if _, err := b.Build(&measurement.Visit{Success: false, Failure: "x"}); err == nil {
		t.Error("failed visit should error")
	}
	if _, err := b.Build(&measurement.Visit{Success: true}); err == nil {
		t.Error("empty visit should error")
	}
}

func TestNodesOrderingDeterministic(t *testing.T) {
	tr := build(t)
	nodes := tr.Nodes()
	if len(nodes) != tr.NodeCount() {
		t.Fatalf("Nodes() length %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		a, b := nodes[i-1], nodes[i]
		if a.Depth > b.Depth || (a.Depth == b.Depth && a.Key >= b.Key) {
			t.Fatalf("ordering violated at %d", i)
		}
	}
	if nodes[0] != tr.Root {
		t.Error("root must sort first")
	}
}

func TestChildKeys(t *testing.T) {
	tr := build(t)
	app := tr.Node("https://news.example/js/app.js")
	keys := app.ChildKeys()
	if len(keys) != 2 || !keys["https://trk-metrics.example/js/analytics.js"] {
		t.Errorf("ChildKeys = %v", keys)
	}
}

func BenchmarkBuild(b *testing.B) {
	v := visitFixture()
	builder := &Builder{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(v); err != nil {
			b.Fatal(err)
		}
	}
}
