package tree

import (
	"testing"

	"webmeasure/internal/measurement"
)

func TestRawURLIdentityKeepsSessionVariants(t *testing.T) {
	v := visitFixture()
	// Re-request the API endpoint with a different session ID.
	v.Requests = append(v.Requests, measurement.Request{
		URL:  "https://news.example/api/v1/data?sid=OTHER",
		Type: measurement.TypeXHR,
		CallStack: []measurement.StackFrame{
			{FuncName: "f", URL: "https://news.example/js/app.js"},
		},
	})

	normal, err := (&Builder{}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&Builder{RawURLIdentity: true}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	// Under normalization both session variants merge; under raw identity
	// they are two nodes — the distortion §3.2 avoids.
	if raw.NodeCount() != normal.NodeCount()+1 {
		t.Errorf("raw=%d normal=%d, want raw = normal+1", raw.NodeCount(), normal.NodeCount())
	}
	if raw.Node("https://news.example/api/v1/data?sid=123") == nil ||
		raw.Node("https://news.example/api/v1/data?sid=OTHER") == nil {
		t.Error("raw identity must keep both variants")
	}
	if raw.StrippedURLs != 0 {
		t.Errorf("raw mode must not strip: %d", raw.StrippedURLs)
	}
}

func TestIgnoreCallStacksFlattensChains(t *testing.T) {
	v := visitFixture()
	normal, err := (&Builder{}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := (&Builder{IgnoreCallStacks: true}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	if flat.MaxDepth() >= normal.MaxDepth() {
		t.Errorf("ignoring stacks should flatten: flat depth %d vs normal %d",
			flat.MaxDepth(), normal.MaxDepth())
	}
	// Script-loaded XHR collapses to the root without its call stack.
	n := flat.Node("https://news.example/api/v1/data?sid=")
	if n == nil || !n.Parent.IsRoot() {
		t.Error("stack-attributed node should fall back to the root")
	}
	// Frame attribution still works.
	img := flat.Node("https://adhost-adcontent.example/creative/c1/img.png")
	if img == nil || img.Parent.Key != "https://adnet-ads.example/frame/slot-0" {
		t.Errorf("frame attribution lost: %+v", img)
	}
	// Redirect attribution still works.
	done := flat.Node("https://partner-metrics.example/track/done")
	if done == nil || done.Parent.Key != "https://partner-metrics.example/sync?uid=" {
		t.Errorf("redirect attribution lost: %+v", done)
	}
}

func TestAttributionAccuracyOnFixture(t *testing.T) {
	v := visitFixture()
	// Inject ground truth matching the fixture's structure.
	truth := map[string]string{
		"https://news.example/js/app.js":                       "https://news.example/article",
		"https://news.example/logo.png":                        "https://news.example/article",
		"https://news.example/api/v1/data?sid=123":             "https://news.example/js/app.js",
		"https://trk-metrics.example/js/analytics.js":          "https://news.example/js/app.js",
		"https://trk-metrics.example/sync?uid=a":               "https://trk-metrics.example/js/analytics.js",
		"https://partner-metrics.example/sync?uid=b":           "https://trk-metrics.example/sync?uid=a",
		"https://partner-metrics.example/track/done":           "https://partner-metrics.example/sync?uid=b",
		"https://adnet-ads.example/js/adtag.js":                "https://news.example/article",
		"https://adnet-ads.example/frame/slot-0":               "https://adnet-ads.example/js/adtag.js",
		"https://adhost-adcontent.example/creative/c1/ad.js":   "https://adnet-ads.example/frame/slot-0",
		"https://adhost-adcontent.example/creative/c1/img.png": "https://adhost-adcontent.example/creative/c1/ad.js",
	}
	for i := range v.Requests {
		v.Requests[i].TrueParentURL = truth[v.Requests[i].URL]
	}
	rep, err := (&Builder{}).EvaluateAttribution(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attributable != 11 {
		t.Fatalf("attributable = %d, want 11", rep.Attributable)
	}
	if rep.Accuracy() != 1 {
		t.Fatalf("fixture attribution must be perfect: %+v", rep)
	}

	// A second occurrence of an existing URL under a different true parent
	// is a merge artifact.
	v.Requests = append(v.Requests, measurement.Request{
		URL:           "https://news.example/api/v1/data?sid=999",
		Type:          measurement.TypeXHR,
		CallStack:     []measurement.StackFrame{{URL: "https://adnet-ads.example/js/adtag.js"}},
		TrueParentURL: "https://adnet-ads.example/js/adtag.js",
	})
	rep, err = (&Builder{}).EvaluateAttribution(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MergeArtifacts != 1 {
		t.Errorf("merge artifacts = %d, want 1: %+v", rep.MergeArtifacts, rep)
	}
	if rep.Accuracy() >= 1 {
		t.Error("accuracy must drop below 1 with a merge artifact")
	}
}
