// Package tree builds the paper's dependency trees (§3.2): each node is a
// loaded resource identified by its query-value-stripped URL, each edge the
// HTTP communication that caused the load. Parent attribution uses, in
// order, HTTP redirect provenance, the last entry of the JavaScript/CSS
// call stack, and the (nested) iframe structure; resources with no
// assignable branch attach to the root — the visited page itself.
package tree

import (
	"fmt"
	"sort"
	"sync"

	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
	"webmeasure/internal/urlutil"
)

// Party is the loading context of a node relative to the visited site.
type Party uint8

// Party values.
const (
	FirstParty Party = iota
	ThirdParty
)

// String names the party.
func (p Party) String() string {
	if p == FirstParty {
		return "first-party"
	}
	return "third-party"
}

// Node is one resource in a dependency tree.
type Node struct {
	// Key is the node identity: the normalized URL (§3.2).
	Key string
	// RawURL is the first observed un-normalized URL.
	RawURL string
	Type   measurement.ResourceType
	Party  Party
	// Tracking is true when the URL matches the tracking filter list.
	Tracking bool

	// Response metadata of the first observed request (static facets the
	// takeaway-3 analysis compares against dynamic presence).
	Status      int
	ContentType string
	BodySize    int

	Parent   *Node
	Children []*Node
	Depth    int

	// chainKey and sortedChildKeys memoize the derived strings the
	// cross-comparison reads once per (node, tree, comparison); both are
	// fixed by Builder.Build before the tree is published, so reads are
	// safe under concurrency.
	chainKey        string
	sortedChildKeys []string
}

// IsRoot reports whether the node is the visited page.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// Chain returns the node's dependency chain: the keys from the root down
// to the node itself.
func (n *Node) Chain() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Key)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// ChainKey returns the chain as a single comparable string. Builder.Build
// memoizes it at construction (each node extends its parent's chain), so
// the usual call is a field read; nodes assembled by hand fall back to the
// walk without caching.
func (n *Node) ChainKey() string {
	if n.chainKey != "" {
		return n.chainKey
	}
	key := ""
	for cur := n; cur != nil; cur = cur.Parent {
		key = cur.Key + "\x00" + key
	}
	return key
}

// Tree is one page visit's dependency tree.
type Tree struct {
	Site    string
	PageURL string
	Profile string

	Root  *Node
	nodes map[string]*Node
	// nodeList is the (depth, key)-sorted node slice, memoized by
	// Builder.Build's finalize pass; Nodes() then returns it without the
	// per-call sort the analysis hot loop used to pay.
	nodeList []*Node
	// maxDepth is memoized alongside (root = 0).
	maxDepth int

	// StrippedURLs counts requests whose URL lost query values during
	// normalization (the paper's "40% of observed URLs" statistic).
	StrippedURLs int
	// TotalRequests is the number of requests consumed, including merged
	// duplicates.
	TotalRequests int
}

// Node returns the node with the given normalized-URL key, or nil.
func (t *Tree) Node(key string) *Node { return t.nodes[key] }

// Contains reports whether a key is present.
func (t *Tree) Contains(key string) bool { return t.nodes[key] != nil }

// NodeCount returns the number of nodes including the root.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Nodes returns all nodes sorted by (depth, key) for deterministic
// iteration. Trees from Builder.Build return a memoized slice; callers
// must not modify it.
func (t *Tree) Nodes() []*Node {
	if t.nodeList != nil {
		return t.nodeList
	}
	return t.sortNodes()
}

func (t *Tree) sortNodes() []*Node {
	out := make([]*Node, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Depth != out[b].Depth {
			return out[a].Depth < out[b].Depth
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Finalize memoizes the derived views — the sorted node list, the max
// depth, and each node's sorted child keys — once the tree's shape is
// fixed. Builder.Build calls it before returning; mutating the tree
// afterwards invalidates the memos.
func (t *Tree) Finalize() {
	t.nodeList = t.sortNodes()
	t.maxDepth = 0
	for _, n := range t.nodeList {
		if n.Depth > t.maxDepth {
			t.maxDepth = n.Depth
		}
		n.sortedChildKeys = n.childKeysSorted()
	}
}

// MaxDepth returns the deepest node's depth (root = 0).
func (t *Tree) MaxDepth() int {
	if t.nodeList != nil {
		return t.maxDepth
	}
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}

// Breadth returns the maximum number of nodes at any single depth.
func (t *Tree) Breadth() int {
	counts := map[int]int{}
	best := 0
	for _, n := range t.nodes {
		counts[n.Depth]++
		if counts[n.Depth] > best {
			best = counts[n.Depth]
		}
	}
	return best
}

// AtDepth returns the nodes at the given depth, sorted by key.
func (t *Tree) AtDepth(d int) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Depth == d {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// KeysAtDepth returns the node keys at a depth as a set.
func (t *Tree) KeysAtDepth(d int) map[string]bool {
	out := map[string]bool{}
	for _, n := range t.nodes {
		if n.Depth == d {
			out[n.Key] = true
		}
	}
	return out
}

// ChildKeys returns a node's children keys as a set.
func (n *Node) ChildKeys() map[string]bool {
	out := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		out[c.Key] = true
	}
	return out
}

// SortedChildKeys returns the children keys ascending. Finalized trees
// return a memoized slice (callers must not modify it); hand-built nodes
// fall back to a fresh sorted copy.
func (n *Node) SortedChildKeys() []string {
	if n.sortedChildKeys != nil {
		return n.sortedChildKeys
	}
	return n.childKeysSorted()
}

func (n *Node) childKeysSorted() []string {
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Key
	}
	sort.Strings(out)
	return out
}

// Builder constructs trees from visits. Filter may be nil (no tracking
// classification). The two ablation switches alter the paper's method for
// sensitivity analysis:
//
//   - RawURLIdentity keeps query values in node identities, so session IDs
//     make equal resources look different (§3.2 argues against this);
//   - IgnoreCallStacks drops the JavaScript/CSS attribution signal, leaving
//     only redirects and frames (everything else collapses to the root).
type Builder struct {
	Filter           *filterlist.List
	RawURLIdentity   bool
	IgnoreCallStacks bool

	// memo caches Filter's match decisions across visits (and across the
	// analysis worker pool sharing this builder), so a URL requested by
	// every profile of every page pays the rule engine once.
	memoMu sync.Mutex
	memo   *filterlist.Memo
}

// matchMemo returns the builder's shared match memo for the current
// Filter, creating it on first use and replacing it when Filter changed.
func (b *Builder) matchMemo() *filterlist.Memo {
	b.memoMu.Lock()
	defer b.memoMu.Unlock()
	if b.memo == nil || b.memo.List() != b.Filter {
		b.memo = filterlist.NewMemo(b.Filter, filterlist.DefaultMemoSize)
	}
	return b.memo
}

// key computes a node identity under the builder's identity mode.
func (b *Builder) key(rawURL string) (string, bool) {
	if b.RawURLIdentity {
		return rawURL, false
	}
	return urlutil.Normalize(rawURL)
}

// keyed is the per-Build lookup state. With a KeyCache (columnar inputs)
// node identities resolve to pre-interned int32 ids and node lookups are
// array indexes; without one (JSONL inputs, ablations) every lookup goes
// through Normalize and the string-keyed node map as before. Both paths
// produce identical trees.
type keyed struct {
	b    *Builder
	keys *urlutil.KeyCache
	byID []*Node // key id → node, nil where absent
	// pageSite is the visited page's eTLD+1, resolved once per build so
	// the cached per-key sites classify first- vs third-party without
	// re-parsing either URL. Valid only when haveSite.
	pageSite string
	haveSite bool
}

// key resolves a raw URL to (node key, key id, stripped); id is -1 when
// the URL is outside the cache's universe (or no cache is attached).
func (k *keyed) key(rawURL string) (string, int32, bool) {
	if k.keys != nil {
		if key, id, stripped, ok := k.keys.Lookup(rawURL); ok {
			return key, id, stripped
		}
	}
	key, stripped := k.b.key(rawURL)
	return key, -1, stripped
}

// node looks a key up, by id when pre-interned.
func (k *keyed) node(t *Tree, key string, id int32) *Node {
	if id >= 0 {
		return k.byID[id]
	}
	return t.nodes[key]
}

// insert publishes a node under its key (and id when pre-interned).
func (k *keyed) insert(t *Tree, n *Node, id int32) {
	if id >= 0 {
		k.byID[id] = n
	}
	t.nodes[n.Key] = n
}

// Build constructs the dependency tree of a successful visit. It returns
// an error for failed or empty visits.
func (b *Builder) Build(v *measurement.Visit) (*Tree, error) {
	return b.BuildKeyed(v, nil)
}

// BuildKeyed is Build consuming a pre-interned key cache (one per
// columnar site block): node identities arrive as int32 key ids, so the
// hot loop skips both the per-request URL normalization and the string
// hashing of the node map — the re-interning the int32 comparison kernel
// otherwise pays again. keys may be nil; the RawURLIdentity ablation
// ignores it (raw identities are not what the cache holds).
func (b *Builder) BuildKeyed(v *measurement.Visit, keys *urlutil.KeyCache) (*Tree, error) {
	if !v.Success {
		return nil, fmt.Errorf("tree: visit of %s by %s failed: %s", v.PageURL, v.Profile, v.Failure)
	}
	if len(v.Requests) == 0 {
		return nil, fmt.Errorf("tree: visit of %s by %s has no requests", v.PageURL, v.Profile)
	}

	var matcher *filterlist.Memo
	if b.Filter != nil {
		matcher = b.matchMemo()
	}
	t := &Tree{
		Site:    v.Site,
		PageURL: v.PageURL,
		Profile: v.Profile,
		nodes:   make(map[string]*Node, len(v.Requests)),
	}
	k := &keyed{b: b}
	if keys != nil && !b.RawURLIdentity {
		k.keys = keys
		k.byID = make([]*Node, keys.NumKeys())
	}
	rootKey, rootID, stripped := k.key(v.PageURL)
	if stripped {
		t.StrippedURLs++
	}
	if k.keys != nil {
		if rootID >= 0 {
			k.pageSite = k.keys.SiteByID(rootID)
		} else {
			k.pageSite = urlutil.Site(v.PageURL)
		}
		k.haveSite = true
	}
	t.Root = &Node{
		Key:      rootKey,
		RawURL:   v.PageURL,
		Type:     measurement.TypeMainFrame,
		Party:    FirstParty,
		chainKey: rootKey + "\x00",
	}
	k.insert(t, t.Root, rootID)

	for _, req := range v.Requests {
		t.TotalRequests++
		key, id, wasStripped := k.key(req.URL)
		if wasStripped {
			t.StrippedURLs++
		}
		if key == rootKey {
			continue // the navigation request is the root itself
		}
		if k.node(t, key, id) != nil {
			// Equal or near-equal resources loaded via different URLs (or
			// repeatedly) merge into one node; the first observed branch
			// wins (§3.2, limitations §6).
			continue
		}
		parent := k.resolveParent(t, req, rootKey)
		node := &Node{
			Key:         key,
			RawURL:      req.URL,
			Type:        req.Type,
			Party:       k.party(req.URL, id, v.PageURL),
			Status:      req.Status,
			ContentType: req.ContentType,
			BodySize:    req.BodySize,
			Parent:      parent,
			Depth:       parent.Depth + 1,
			// Parents precede children, so the parent's memoized chain
			// extends in O(len) instead of re-walking to the root.
			chainKey: parent.chainKey + key + "\x00",
		}
		if matcher != nil {
			node.Tracking = matcher.Matches(filterlist.Request{
				URL:     req.URL,
				PageURL: v.PageURL,
				Type:    filterType(req.Type),
			})
		}
		parent.Children = append(parent.Children, node)
		k.insert(t, node, id)
	}
	t.Finalize()
	return t, nil
}

// resolveParent implements §3.2's attribution order: redirects, then the
// latest call-stack entry, then the parent frame, then the root.
func (k *keyed) resolveParent(t *Tree, req measurement.Request, rootKey string) *Node {
	if req.RedirectFrom != "" {
		if key, id, _ := k.key(req.RedirectFrom); k.node(t, key, id) != nil {
			return k.node(t, key, id)
		}
	}
	if len(req.CallStack) > 0 && !k.b.IgnoreCallStacks {
		last := req.CallStack[len(req.CallStack)-1]
		if key, id, _ := k.key(last.URL); k.node(t, key, id) != nil {
			return k.node(t, key, id)
		}
	}
	if req.FrameID != measurement.TopFrameID && req.FrameURL != "" {
		if key, id, _ := k.key(req.FrameURL); k.node(t, key, id) != nil {
			return k.node(t, key, id)
		}
	}
	return t.nodes[rootKey]
}

func partyOf(resourceURL, pageURL string) Party {
	if urlutil.IsThirdParty(resourceURL, pageURL) {
		return ThirdParty
	}
	return FirstParty
}

// party is partyOf reading both eTLD+1s from the key cache when the
// request resolved to a cached id — the same classification without the
// two URL parses per request.
func (k *keyed) party(resourceURL string, id int32, pageURL string) Party {
	if k.haveSite && id >= 0 {
		rs := k.keys.SiteByID(id)
		if rs == "" || k.pageSite == "" || rs != k.pageSite {
			return ThirdParty
		}
		return FirstParty
	}
	return partyOf(resourceURL, pageURL)
}

// filterType maps measurement resource types onto ABP option types.
func filterType(t measurement.ResourceType) filterlist.RequestType {
	switch t {
	case measurement.TypeScript:
		return filterlist.TypeScript
	case measurement.TypeImage, measurement.TypeImageset:
		return filterlist.TypeImage
	case measurement.TypeStylesheet:
		return filterlist.TypeStylesheet
	case measurement.TypeSubFrame:
		return filterlist.TypeSubdocument
	case measurement.TypeXHR:
		return filterlist.TypeXMLHTTPRequest
	case measurement.TypeWebSocket:
		return filterlist.TypeWebSocket
	case measurement.TypeFont:
		return filterlist.TypeFont
	case measurement.TypeMedia:
		return filterlist.TypeMedia
	case measurement.TypeBeacon:
		return filterlist.TypePing
	case measurement.TypeMainFrame:
		return filterlist.TypeDocument
	case measurement.TypeCSPReport:
		return filterlist.TypeCSPReport
	default:
		return filterlist.TypeOther
	}
}
