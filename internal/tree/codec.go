package tree

// This file is the wire codec for finalized trees: a flat, JSON-friendly
// Record that a shard worker can ship to the coordinator and that rebuilds
// into a Tree equal to the original in every analysis-visible way — node
// fields, children order, chain keys, and the memoized sorted views. The
// cross-comparison is deliberately NOT serialized; it is deterministic in
// the trees and cheap to recompute at merge time.

import (
	"fmt"

	"webmeasure/internal/measurement"
)

// NodeRecord is the wire form of one tree node. Parent is the parent's
// key ("" marks the root); Depth and the chain key are derived on rebuild.
type NodeRecord struct {
	Key         string                   `json:"key"`
	RawURL      string                   `json:"raw_url,omitempty"`
	Type        measurement.ResourceType `json:"type"`
	Party       Party                    `json:"party"`
	Tracking    bool                     `json:"tracking,omitempty"`
	Status      int                      `json:"status,omitempty"`
	ContentType string                   `json:"content_type,omitempty"`
	BodySize    int                      `json:"body_size,omitempty"`
	Parent      string                   `json:"parent,omitempty"`
}

// Record is the wire form of a finalized tree. Nodes are in pre-order —
// every parent precedes its children, siblings keep their construction
// order — so the rebuild reproduces each node's Children slice exactly.
type Record struct {
	Site    string `json:"site"`
	PageURL string `json:"page_url"`
	Profile string `json:"profile"`

	StrippedURLs  int `json:"stripped_urls,omitempty"`
	TotalRequests int `json:"total_requests,omitempty"`

	Nodes []NodeRecord `json:"nodes"`
}

// Record flattens the tree for the wire.
func (t *Tree) Record() Record {
	r := Record{
		Site:          t.Site,
		PageURL:       t.PageURL,
		Profile:       t.Profile,
		StrippedURLs:  t.StrippedURLs,
		TotalRequests: t.TotalRequests,
		Nodes:         make([]NodeRecord, 0, len(t.nodes)),
	}
	// Iterative pre-order walk; children are pushed in reverse so they pop
	// in their original order.
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nr := NodeRecord{
			Key:         n.Key,
			RawURL:      n.RawURL,
			Type:        n.Type,
			Party:       n.Party,
			Tracking:    n.Tracking,
			Status:      n.Status,
			ContentType: n.ContentType,
			BodySize:    n.BodySize,
		}
		if n.Parent != nil {
			nr.Parent = n.Parent.Key
		}
		r.Nodes = append(r.Nodes, nr)
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
	return r
}

// Tree rebuilds the tree from its wire form, re-deriving depths and chain
// keys with the same rules Builder.Build uses and finalizing the memoized
// views. It validates the structural invariants the pre-order encoding
// promises: a single parentless root first, unique keys, parents before
// children.
func (r Record) Tree() (*Tree, error) {
	if len(r.Nodes) == 0 {
		return nil, fmt.Errorf("tree: record of %s/%s has no nodes", r.Site, r.PageURL)
	}
	t := &Tree{
		Site:          r.Site,
		PageURL:       r.PageURL,
		Profile:       r.Profile,
		StrippedURLs:  r.StrippedURLs,
		TotalRequests: r.TotalRequests,
		nodes:         make(map[string]*Node, len(r.Nodes)),
	}
	for i, nr := range r.Nodes {
		if t.nodes[nr.Key] != nil {
			return nil, fmt.Errorf("tree: record of %s/%s repeats node %q", r.Site, r.PageURL, nr.Key)
		}
		n := &Node{
			Key:         nr.Key,
			RawURL:      nr.RawURL,
			Type:        nr.Type,
			Party:       nr.Party,
			Tracking:    nr.Tracking,
			Status:      nr.Status,
			ContentType: nr.ContentType,
			BodySize:    nr.BodySize,
		}
		if i == 0 {
			if nr.Parent != "" {
				return nil, fmt.Errorf("tree: record of %s/%s: first node %q is not a root", r.Site, r.PageURL, nr.Key)
			}
			n.chainKey = n.Key + "\x00"
			t.Root = n
		} else {
			parent := t.nodes[nr.Parent]
			if parent == nil {
				return nil, fmt.Errorf("tree: record of %s/%s: node %q references unknown parent %q", r.Site, r.PageURL, nr.Key, nr.Parent)
			}
			n.Parent = parent
			n.Depth = parent.Depth + 1
			n.chainKey = parent.chainKey + n.Key + "\x00"
			parent.Children = append(parent.Children, n)
		}
		t.nodes[nr.Key] = n
	}
	t.Finalize()
	return t, nil
}
