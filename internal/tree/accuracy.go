package tree

import (
	"webmeasure/internal/measurement"
	"webmeasure/internal/urlutil"
)

// AttributionAccuracy evaluates the paper's parent-attribution heuristics
// (§3.2) against the simulator's ground truth. §6 concedes two lossy
// steps — query-value stripping can merge distinct resources, and
// first-parent-wins merging can mis-attribute later occurrences — and
// this report measures how often they bite.
type AttributionAccuracy struct {
	// Attributable is the number of non-navigation requests carrying a
	// ground-truth parent.
	Attributable int
	// Correct counts nodes whose reconstructed parent equals the
	// normalized ground-truth parent.
	Correct int
	// RootFallbacks counts nodes that fell back to the root although
	// their true parent was a different resource.
	RootFallbacks int
	// MergeArtifacts counts requests that merged into an existing node
	// whose recorded parent differs from this request's true parent (the
	// §6 collapse).
	MergeArtifacts int
}

// Accuracy returns the share of attributable requests whose parent was
// reconstructed correctly (1 when nothing was attributable).
func (r AttributionAccuracy) Accuracy() float64 {
	if r.Attributable == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Attributable)
}

// EvaluateAttribution rebuilds the visit's tree and scores every request's
// reconstructed parent against measurement.Request.TrueParentURL.
func (b *Builder) EvaluateAttribution(v *measurement.Visit) (AttributionAccuracy, error) {
	return b.EvaluateAttributionKeyed(v, nil)
}

// EvaluateAttributionKeyed is EvaluateAttribution consuming a
// pre-interned key cache (see BuildKeyed): both the rebuild and the
// per-request scoring lookups resolve through the cache instead of
// re-normalizing every URL. keys may be nil; the result is identical
// either way.
func (b *Builder) EvaluateAttributionKeyed(v *measurement.Visit, keys *urlutil.KeyCache) (AttributionAccuracy, error) {
	var rep AttributionAccuracy
	t, err := b.BuildKeyed(v, keys)
	if err != nil {
		return rep, err
	}
	lookup := b.key
	if keys != nil && !b.RawURLIdentity {
		lookup = func(raw string) (string, bool) {
			if key, _, stripped, ok := keys.Lookup(raw); ok {
				return key, stripped
			}
			return b.key(raw)
		}
	}
	rootKey := t.Root.Key
	seen := map[string]bool{rootKey: true}
	for _, req := range v.Requests {
		key, _ := lookup(req.URL)
		if key == rootKey || req.TrueParentURL == "" {
			continue
		}
		rep.Attributable++
		trueKey, _ := lookup(req.TrueParentURL)
		node := t.Node(key)
		if node == nil || node.Parent == nil {
			continue
		}
		if seen[key] {
			// A later occurrence merged into an existing node; its stored
			// parent reflects the first occurrence.
			if node.Parent.Key != trueKey {
				rep.MergeArtifacts++
			} else {
				rep.Correct++
			}
			continue
		}
		seen[key] = true
		switch {
		case node.Parent.Key == trueKey:
			rep.Correct++
		case node.Parent.Key == rootKey:
			rep.RootFallbacks++
		}
	}
	return rep, nil
}
