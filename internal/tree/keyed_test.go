package tree

import (
	"encoding/json"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/urlutil"
)

// visitStrings collects every string the visit references — the universe
// a columnar site block's string table would hold.
func visitStrings(v *measurement.Visit) []string {
	out := []string{v.Site, v.PageURL, v.Profile, v.Status, v.Failure, v.FaultKind}
	for _, q := range v.Requests {
		out = append(out, q.URL, q.FrameURL, q.RedirectFrom, q.ContentType, q.TrueParentURL)
		for _, f := range q.CallStack {
			out = append(out, f.FuncName, f.URL)
		}
		out = append(out, q.SetCookies...)
	}
	return out
}

// TestBuildKeyedMatchesBuild is the equivalence guarantee behind the
// columnar fast path: building through a pre-interned KeyCache must
// produce a tree identical — node for node, parent for parent, flag for
// flag — to the string-keyed Build, across the ablation variants.
func TestBuildKeyedMatchesBuild(t *testing.T) {
	v := visitFixture()
	cache := urlutil.BuildKeyCache(visitStrings(v))
	builders := map[string]*Builder{
		"default":           {Filter: testFilter(t)},
		"no-filter":         {},
		"raw-url-identity":  {Filter: testFilter(t), RawURLIdentity: true},
		"ignore-callstacks": {Filter: testFilter(t), IgnoreCallStacks: true},
	}
	for name, b := range builders {
		t.Run(name, func(t *testing.T) {
			plain, err := b.Build(v)
			if err != nil {
				t.Fatal(err)
			}
			keyed, err := b.BuildKeyed(v, cache)
			if err != nil {
				t.Fatal(err)
			}
			pj, err := json.Marshal(plain.Record())
			if err != nil {
				t.Fatal(err)
			}
			kj, err := json.Marshal(keyed.Record())
			if err != nil {
				t.Fatal(err)
			}
			if string(pj) != string(kj) {
				t.Errorf("keyed build differs from plain build:\nplain: %s\nkeyed: %s", pj, kj)
			}
		})
	}
}

// TestBuildKeyedPartialCache exercises the fallback: URLs outside the
// cache's universe (possible only with a hand-built cache, never with a
// block-derived one) must fall back to direct normalization.
func TestBuildKeyedPartialCache(t *testing.T) {
	v := visitFixture()
	cache := urlutil.BuildKeyCache([]string{v.PageURL}) // deliberately incomplete
	b := &Builder{Filter: testFilter(t)}
	plain, err := b.Build(v)
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := b.BuildKeyed(v, cache)
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := json.Marshal(plain.Record())
	kj, _ := json.Marshal(keyed.Record())
	if string(pj) != string(kj) {
		t.Errorf("partial-cache build differs:\nplain: %s\nkeyed: %s", pj, kj)
	}
}
