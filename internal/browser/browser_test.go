package browser

import (
	"strings"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func testPage(t *testing.T) *webgen.Page {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(42))
	s := u.GenerateSite(tranco.Entry{Rank: 1, Site: "render-site.example"})
	return s.Landing
}

func profileNamed(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("profile %q missing", name)
	}
	return p
}

// visitOK renders with retries over nonces so the injected browser failure
// probability cannot flake the test.
func visitOK(t *testing.T, b *Browser, page *webgen.Page, nonce uint64) *measurement.Visit {
	t.Helper()
	for i := 0; i < 20; i++ {
		if v := b.Visit(page, nonce+uint64(i)*1000); v.Success {
			return v
		}
	}
	t.Fatal("no successful visit in 20 attempts")
	return nil
}

func TestDefaultProfilesMatchTable1(t *testing.T) {
	ps := DefaultProfiles()
	if len(ps) != 5 {
		t.Fatalf("got %d profiles, want 5", len(ps))
	}
	type row struct {
		name    string
		version string
		ui, gui bool
	}
	want := []row{
		{"Old", "86.0.1", true, true},
		{"Sim1", "95.0", true, true},
		{"Sim2", "95.0", true, true},
		{"NoAction", "95.0", false, true},
		{"Headless", "95.0", true, false},
	}
	for i, w := range want {
		p := ps[i]
		if p.Name != w.name || p.VersionString != w.version || p.UserInteraction != w.ui || p.GUI != w.gui || p.Country != "DE" {
			t.Errorf("profile %d = %+v, want %+v", i, p, w)
		}
	}
	// Sim1 and Sim2 are configured identically apart from the name.
	s1, s2 := ps[1], ps[2]
	s2.Name = s1.Name
	if s1 != s2 {
		t.Error("Sim1 and Sim2 must share the configuration")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestVisitDeterministic(t *testing.T) {
	page := testPage(t)
	b := New(profileNamed(t, "Sim1"))
	a := b.Visit(page, 7)
	c := b.Visit(page, 7)
	if a.Success != c.Success || len(a.Requests) != len(c.Requests) {
		t.Fatalf("visits differ: %d vs %d requests", len(a.Requests), len(c.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i].URL != c.Requests[i].URL {
			t.Fatalf("request %d differs: %q vs %q", i, a.Requests[i].URL, c.Requests[i].URL)
		}
	}
}

func TestVisitNonceChangesTraffic(t *testing.T) {
	page := testPage(t)
	b := New(profileNamed(t, "Sim1"))
	a := visitOK(t, b, page, 1)
	c := visitOK(t, b, page, 50_000)
	urlsA := map[string]bool{}
	for _, r := range a.Requests {
		urlsA[r.URL] = true
	}
	diff := 0
	for _, r := range c.Requests {
		if !urlsA[r.URL] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different nonces should observe some different URLs")
	}
}

func TestVisitShape(t *testing.T) {
	page := testPage(t)
	v := visitOK(t, New(profileNamed(t, "Sim1")), page, 3)
	if len(v.Requests) < 20 {
		t.Fatalf("only %d requests", len(v.Requests))
	}
	if v.Requests[0].URL != page.URL || v.Requests[0].Type != measurement.TypeMainFrame {
		t.Errorf("first request must be the main document: %+v", v.Requests[0])
	}
	var frames, stacks, redirects int
	for _, r := range v.Requests {
		if r.FrameID != measurement.TopFrameID {
			frames++
		}
		if len(r.CallStack) > 0 {
			stacks++
		}
		if r.RedirectFrom != "" {
			redirects++
		}
		if r.TimeOffsetMS < 0 || r.TimeOffsetMS > DefaultTimeoutMS {
			t.Errorf("offset out of range: %d", r.TimeOffsetMS)
		}
	}
	if stacks == 0 {
		t.Error("no call-stack-attributed requests observed")
	}
	if v.DurationMS <= 0 || v.DurationMS > DefaultTimeoutMS {
		t.Errorf("duration = %d", v.DurationMS)
	}
	if len(v.Cookies) == 0 {
		t.Error("no cookies observed")
	}
	// Frames and redirects exist on typical landing pages; tolerate their
	// absence only if the page genuinely embeds none.
	t.Logf("requests=%d frames=%d stacks=%d redirects=%d cookies=%d",
		len(v.Requests), frames, stacks, redirects, len(v.Cookies))
}

func TestNoActionSeesFewerRequests(t *testing.T) {
	page := testPage(t)
	sim := visitOK(t, New(profileNamed(t, "Sim1")), page, 11)
	noa := visitOK(t, New(profileNamed(t, "NoAction")), page, 11)
	if len(noa.Requests) >= len(sim.Requests) {
		t.Errorf("NoAction (%d) should see fewer requests than Sim1 (%d)",
			len(noa.Requests), len(sim.Requests))
	}
}

func TestVersionGating(t *testing.T) {
	// Build enough pages that version-gated resources certainly occur.
	u := webgen.New(webgen.DefaultConfig(42))
	old := New(profileNamed(t, "Old"))
	sim := New(profileNamed(t, "Sim1"))
	var oldModern, simModern, oldLegacy, simLegacy int
	for i := 0; i < 10; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i + 1, Site: strings.Repeat("v", i%3+1) + "-gate.example"})
		for _, page := range s.AllPages()[:3] {
			vo := old.Visit(page, 5)
			vs := sim.Visit(page, 5)
			for _, r := range vo.Requests {
				if strings.Contains(r.URL, "/v2/") || strings.Contains(r.URL, ".mjs") {
					oldModern++
				}
				if strings.Contains(r.URL, "legacy") {
					oldLegacy++
				}
			}
			for _, r := range vs.Requests {
				if strings.Contains(r.URL, "/v2/") || strings.Contains(r.URL, ".mjs") {
					simModern++
				}
				if strings.Contains(r.URL, "legacy") {
					simLegacy++
				}
			}
		}
	}
	if oldModern != 0 {
		t.Errorf("old browser loaded %d modern modules", oldModern)
	}
	if simLegacy != 0 {
		t.Errorf("new browser loaded %d legacy modules", simLegacy)
	}
	if simModern == 0 || oldLegacy == 0 {
		t.Errorf("gating never exercised: simModern=%d oldLegacy=%d", simModern, oldLegacy)
	}
}

func TestHeadlessSkipsGUIOnly(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(42))
	head := New(profileNamed(t, "Headless"))
	sim := New(profileNamed(t, "Sim1"))
	var headEnv, simEnv int
	for i := 0; i < 60; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i + 1, Site: nameFor(i) + "-gui.example"})
		pages := s.AllPages()
		if len(pages) > 4 {
			pages = pages[:4]
		}
		for _, page := range pages {
			for _, r := range head.Visit(page, 9).Requests {
				if strings.HasSuffix(r.URL, "/track/env") || strings.Contains(r.URL, "/track/env?") {
					headEnv++
				}
			}
			for _, r := range sim.Visit(page, 9).Requests {
				if strings.HasSuffix(r.URL, "/track/env") || strings.Contains(r.URL, "/track/env?") {
					simEnv++
				}
			}
		}
	}
	if headEnv != 0 {
		t.Errorf("headless loaded %d GUI-only beacons", headEnv)
	}
	if simEnv == 0 {
		t.Error("GUI profile never loaded a GUI-only beacon (knob dead)")
	}
}

func TestRedirectChainsFormRequestChains(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(42))
	b := New(profileNamed(t, "Sim1"))
	var pages []*webgen.Page
	for i := 0; i < 10; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i + 1, Site: nameFor(i) + "-redir.example"})
		all := s.AllPages()
		if len(all) > 4 {
			all = all[:4]
		}
		pages = append(pages, all...)
	}
	found := false
	for _, page := range pages {
		if found {
			break
		}
		v := b.Visit(page, 7)
		byURL := map[string]measurement.Request{}
		for _, r := range v.Requests {
			byURL[r.URL] = r
		}
		for _, r := range v.Requests {
			if r.RedirectFrom != "" {
				if _, ok := byURL[r.RedirectFrom]; !ok {
					t.Fatalf("redirect source %q missing from the request log", r.RedirectFrom)
				}
				found = true
			}
		}
	}
	if !found {
		t.Error("no redirect chains rendered across 40 pages")
	}
}

func nameFor(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestVolatilePathsDifferPerVisit(t *testing.T) {
	page := testPage(t)
	b := New(profileNamed(t, "Sim1"))
	creatives := func(v *measurement.Visit) []string {
		var out []string
		for _, r := range v.Requests {
			if strings.Contains(r.URL, "/creative/") {
				out = append(out, r.URL)
			}
		}
		return out
	}
	a := creatives(visitOK(t, b, page, 101))
	c := creatives(visitOK(t, b, page, 99_000))
	if len(a) == 0 && len(c) == 0 {
		t.Skip("page has no ad creatives; generator randomness")
	}
	inA := map[string]bool{}
	for _, u := range a {
		inA[u] = true
	}
	same := 0
	for _, u := range c {
		if inA[u] {
			same++
		}
	}
	if len(c) > 0 && same == len(c) && len(a) == len(c) {
		t.Error("creatives identical across visits; volatility dead")
	}
}

func TestCookiesRespectProfile(t *testing.T) {
	page := testPage(t)
	sim := visitOK(t, New(profileNamed(t, "Sim1")), page, 21)
	noa := visitOK(t, New(profileNamed(t, "NoAction")), page, 21)
	if len(noa.Cookies) > len(sim.Cookies) {
		t.Errorf("NoAction observed more cookies (%d) than Sim1 (%d)", len(noa.Cookies), len(sim.Cookies))
	}
	for _, c := range sim.Cookies {
		if c.SameSite == "None" && !c.Secure {
			t.Errorf("SameSite=None cookie without Secure: %+v", c)
		}
	}
}

func TestFailureInjection(t *testing.T) {
	page := testPage(t)
	b := New(profileNamed(t, "Sim1"))
	failures := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if v := b.Visit(page, uint64(i)); !v.Success {
			failures++
			if v.Failure == "" || len(v.Requests) != 0 {
				t.Fatalf("failed visit malformed: %+v", v)
			}
		}
	}
	rate := float64(failures) / n
	if rate < 0.01 || rate > 0.06 {
		t.Errorf("browser failure rate %.3f outside [0.01, 0.06]", rate)
	}
}

func TestTimeoutTruncates(t *testing.T) {
	page := testPage(t)
	b := &Browser{Profile: profileNamed(t, "Sim1"), TimeoutMS: 400}
	long := New(profileNamed(t, "Sim1"))
	short := visitOK(t, b, page, 5)
	full := visitOK(t, long, page, 5)
	if len(short.Requests) >= len(full.Requests) {
		t.Errorf("short timeout (%d reqs) should truncate vs full (%d reqs)",
			len(short.Requests), len(full.Requests))
	}
	if short.DurationMS > 400 {
		t.Errorf("duration %d exceeds timeout", short.DurationMS)
	}
}

func BenchmarkVisit(b *testing.B) {
	u := webgen.New(webgen.DefaultConfig(42))
	page := u.GenerateSite(tranco.Entry{Rank: 1, Site: "bench-site.example"}).Landing
	br := New(DefaultProfiles()[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Visit(page, uint64(i))
	}
}
