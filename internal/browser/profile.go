// Package browser simulates the instrumented browser environment of the
// paper (Firefox driven by OpenWPM): it renders a webgen page spec into a
// measurement.Visit — the observed HTTP traffic with frame hierarchy,
// JavaScript/CSS call stacks, redirect provenance, and cookies. The five
// profile configurations of Table 1 differ in browser version, mimicked
// user interaction (Page Down/Tab/End keystrokes after load), and
// GUI/headless mode.
package browser

// Profile is one measurement configuration (a row of Table 1).
type Profile struct {
	// Name identifies the profile ("Old", "Sim1", ...).
	Name string
	// Version is the Firefox major version (86 or 95 in the paper).
	Version int
	// VersionString is the full version as documented ("86.0.1", "95.0").
	VersionString string
	// UserInteraction mimics Page Down, Tab, and End keystrokes after the
	// page finished loading, triggering lazy content.
	UserInteraction bool
	// GUI spawns the browser with a user interface; false = headless.
	GUI bool
	// Country is the measurement vantage point.
	Country string
}

// DefaultProfiles returns the paper's five profiles (Table 1). Profiles #2
// (Sim1) and #3 (Sim2) use the identical setup; comparing them isolates
// the Web's own dynamics from configuration effects.
func DefaultProfiles() []Profile {
	return []Profile{
		{Name: "Old", Version: 86, VersionString: "86.0.1", UserInteraction: true, GUI: true, Country: "DE"},
		{Name: "Sim1", Version: 95, VersionString: "95.0", UserInteraction: true, GUI: true, Country: "DE"},
		{Name: "Sim2", Version: 95, VersionString: "95.0", UserInteraction: true, GUI: true, Country: "DE"},
		{Name: "NoAction", Version: 95, VersionString: "95.0", UserInteraction: false, GUI: true, Country: "DE"},
		{Name: "Headless", Version: 95, VersionString: "95.0", UserInteraction: true, GUI: false, Country: "DE"},
	}
}

// ProfileByName returns the default profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range DefaultProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
