package browser

import (
	"strings"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// collectVisits gathers several successful visits across pages for
// structural assertions.
func collectVisits(t *testing.T, n int) []*measurement.Visit {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(42))
	b := New(DefaultProfiles()[1]) // Sim1
	var out []*measurement.Visit
	for i := 1; len(out) < n && i < 60; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i, Site: nameFor(i) + "-rt.example"})
		if s.Unreachable {
			continue
		}
		for _, p := range s.AllPages()[:min(3, len(s.AllPages()))] {
			if v := b.Visit(p, 5); v.Success {
				out = append(out, v)
				if len(out) == n {
					break
				}
			}
		}
	}
	if len(out) < n {
		t.Fatalf("only %d successful visits", len(out))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestResponseMetadataFilled(t *testing.T) {
	var statuses = map[int]bool{}
	for _, v := range collectVisits(t, 10) {
		for _, r := range v.Requests {
			if r.Status == 0 {
				t.Fatalf("request %s has no status", r.URL)
			}
			statuses[r.Status] = true
			if r.Type != measurement.TypeWebSocket && r.ContentType == "" {
				t.Fatalf("request %s has no content type", r.URL)
			}
			if r.BodySize < 0 {
				t.Fatalf("request %s has negative size", r.URL)
			}
			switch r.Type {
			case measurement.TypeBeacon:
				if r.Status != 204 && r.Status != 302 {
					t.Errorf("beacon status = %d", r.Status)
				}
			case measurement.TypeWebSocket:
				if r.Status != 101 {
					t.Errorf("websocket status = %d", r.Status)
				}
			}
			// Images respond 200, soft-404, or 302 (cookie-sync hops keep
			// the final resource's type).
			if r.Type == measurement.TypeImage &&
				r.Status != 200 && r.Status != 404 && r.Status != 302 {
				t.Errorf("image status = %d", r.Status)
			}
		}
	}
	if !statuses[200] {
		t.Error("no 200 responses observed")
	}
}

func TestRedirectHopsAre302(t *testing.T) {
	found := false
	for _, v := range collectVisits(t, 15) {
		byURL := map[string]measurement.Request{}
		for _, r := range v.Requests {
			byURL[r.URL] = r
		}
		for _, r := range v.Requests {
			if r.RedirectFrom != "" {
				src := byURL[r.RedirectFrom]
				if src.Status != 302 {
					t.Errorf("redirect source %s has status %d, want 302", src.URL, src.Status)
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no redirects in sample")
	}
}

func TestFrameIDsConsistent(t *testing.T) {
	for _, v := range collectVisits(t, 10) {
		// Every non-top frame referenced by a request must correspond to a
		// subframe request observed earlier.
		frameDocs := map[string]bool{v.PageURL: true}
		for _, r := range v.Requests {
			if r.Type == measurement.TypeSubFrame {
				frameDocs[r.URL] = true
			}
		}
		for _, r := range v.Requests {
			if r.FrameID != measurement.TopFrameID && r.FrameURL != "" {
				if !frameDocs[r.FrameURL] {
					t.Fatalf("request %s rides in unknown frame %s", r.URL, r.FrameURL)
				}
			}
		}
	}
}

func TestTimeOffsetsRespectCausality(t *testing.T) {
	for _, v := range collectVisits(t, 10) {
		offsets := map[string]int{}
		for _, r := range v.Requests {
			offsets[r.URL] = r.TimeOffsetMS
		}
		for _, r := range v.Requests {
			// A call-stack child cannot be issued before its initiator
			// finished loading.
			if len(r.CallStack) > 0 {
				parent := r.CallStack[len(r.CallStack)-1].URL
				if po, ok := offsets[parent]; ok && r.TimeOffsetMS < po {
					t.Fatalf("child %s at %dms precedes parent %s at %dms",
						r.URL, r.TimeOffsetMS, parent, po)
				}
			}
			if r.RedirectFrom != "" {
				if po, ok := offsets[r.RedirectFrom]; ok && r.TimeOffsetMS < po {
					t.Fatalf("redirect target %s precedes source", r.URL)
				}
			}
		}
	}
}

func TestVariantChoiceStablePerVisit(t *testing.T) {
	// The same nonce must always pick the same ad creative; different
	// nonces eventually pick different ones.
	u := webgen.New(webgen.DefaultConfig(42))
	var page *webgen.Page
	for i := 1; i < 60; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i, Site: nameFor(i) + "-var.example"})
		if !s.Unreachable && s.Landing.CountResources() > 120 {
			page = s.Landing
			break
		}
	}
	if page == nil {
		t.Skip("no ad-heavy page found")
	}
	b := New(DefaultProfiles()[1])
	creativeSet := func(nonce uint64) string {
		v := b.Visit(page, nonce)
		if !v.Success {
			return ""
		}
		var urls []string
		for _, r := range v.Requests {
			if strings.Contains(r.URL, "/creative/") {
				urls = append(urls, r.URL)
			}
		}
		return strings.Join(urls, "|")
	}
	a1, a2 := creativeSet(77), creativeSet(77)
	if a1 != a2 {
		t.Error("same nonce must pick the same creatives")
	}
	differs := false
	for n := uint64(100); n < 140; n++ {
		if s := creativeSet(n); s != "" && s != a1 {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("creative choice never varied across nonces")
	}
}

func TestStatefulJarSharedAcrossVisits(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(42))
	var site *webgen.Site
	for i := 1; i < 40; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i, Site: nameFor(i) + "-jar.example"})
		if !s.Unreachable && len(s.Pages) >= 2 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no suitable site")
	}
	b := New(DefaultProfiles()[1])
	jar := NewJar()
	var v1, v2 *measurement.Visit
	for n := uint64(0); n < 30; n++ {
		v1 = b.VisitWithJar(site.Pages[0], n, jar)
		if v1.Success {
			break
		}
	}
	for n := uint64(50); n < 90; n++ {
		v2 = b.VisitWithJar(site.Pages[1], n, jar)
		if v2.Success {
			break
		}
	}
	if v1 == nil || !v1.Success || v2 == nil || !v2.Success {
		t.Skip("visits failed")
	}
	if len(v2.Cookies) < len(v1.Cookies) {
		t.Errorf("shared jar must accumulate: first %d, second %d", len(v1.Cookies), len(v2.Cookies))
	}
}

func TestKeystrokeBindingForLazyContent(t *testing.T) {
	ks := Keystrokes()
	if len(ks) != 3 || ks[0].Key != "PageDown" || ks[1].Key != "Tab" || ks[2].Key != "End" {
		t.Fatalf("keystroke sequence wrong: %+v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i].AtMS <= ks[i-1].AtMS {
			t.Fatal("keystrokes must be ordered in time")
		}
	}
	// Lazy resources never load before the first keystroke; an anchored
	// subset waits for later keystrokes.
	u := webgen.New(webgen.DefaultConfig(42))
	b := New(DefaultProfiles()[1])
	lazyOffsets := map[int]int{}
	for i := 1; i < 30; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i, Site: nameFor(i) + "-keys.example"})
		if s.Unreachable {
			continue
		}
		v := b.Visit(s.Landing, 3)
		if !v.Success {
			continue
		}
		for _, r := range v.Requests {
			if strings.Contains(r.URL, "/assets/lazy-") {
				lazyOffsets[r.TimeOffsetMS]++
				if r.TimeOffsetMS < ks[0].AtMS {
					t.Fatalf("lazy image at %dms before first keystroke", r.TimeOffsetMS)
				}
			}
		}
	}
	if len(lazyOffsets) < 2 {
		t.Error("lazy loads all bound to one instant; keystroke spread dead")
	}
}
