package browser

import (
	"fmt"
	"strings"
	"time"

	"webmeasure/internal/cookies"
	"webmeasure/internal/faults"
	"webmeasure/internal/measurement"
	"webmeasure/internal/webgen"
)

// Transport intercepts a page-load attempt before it renders — the
// Transport-style hook the fault injector (internal/faults) plugs into.
// Implementations must be pure functions of their arguments so the crawl
// stays deterministic for any worker count.
type Transport interface {
	RoundTrip(profile, pageURL string, attempt int) faults.Outcome
}

// DefaultTimeoutMS is the per-page timeout the paper configures (30s,
// Appendix C).
const DefaultTimeoutMS = 30_000

// Keystrokes mimicking user interaction (§3.1.1): once the page settled,
// the crawler sends Page Down, Tab, and End with short delays in between.
// Each lazy resource is bound to the keystroke that would bring it into
// view, so interaction-gated loads spread over the keystroke sequence.
type keystroke struct {
	Key  string
	AtMS int
}

// Keystrokes returns the mimicked interaction sequence with its timing.
func Keystrokes() []keystroke {
	return []keystroke{
		{Key: "PageDown", AtMS: 1_500},
		{Key: "Tab", AtMS: 1_700},
		{Key: "End", AtMS: 1_900},
	}
}

// Browser renders pages under one profile. It is stateless across visits
// (the measurement's stateless mode, Appendix C) and safe for concurrent
// use by multiple goroutines ("browser instances").
type Browser struct {
	Profile   Profile
	TimeoutMS int // 0 = DefaultTimeoutMS
	// Transport, if non-nil, may disturb page-load attempts (injected
	// errors, 5xx, latency, truncation, redirect loops). nil = the clean
	// network of the seed pipeline.
	Transport Transport
}

// New creates a browser for a profile with the default timeout.
func New(p Profile) *Browser { return &Browser{Profile: p} }

func (b *Browser) timeout() int {
	if b.TimeoutMS > 0 {
		return b.TimeoutMS
	}
	return DefaultTimeoutMS
}

// visitFailureProb is the per-visit probability of a browser-level failure
// (crash, TLS error, server 5xx). Combined with crawler-level failures the
// per-profile failure rate lands near the paper's ~11%.
const visitFailureProb = 0.03

// Visit renders one page statelessly (a fresh cookie jar per visit, the
// measurement's default, Appendix C). nonce individualizes the visit's
// volatile behaviour: distinct nonces model distinct points in time /
// sessions, so even identically configured profiles observe different
// traffic.
func (b *Browser) Visit(page *webgen.Page, nonce uint64) *measurement.Visit {
	return b.VisitAttempt(page, nonce, 0, NewJar())
}

// NewJar creates a cookie jar on the simulation clock, for stateful crawls
// that preserve cookies across page visits.
func NewJar() *cookies.Jar {
	return cookies.NewJar(func() time.Time { return simEpoch })
}

// VisitWithJar renders one page against an existing cookie jar — the
// stateful mode Appendix C discusses as the alternative design choice. The
// jar accumulates the visit's cookies; the visit's Cookies field snapshots
// the jar afterwards.
func (b *Browser) VisitWithJar(page *webgen.Page, nonce uint64, jar *cookies.Jar) *measurement.Visit {
	return b.VisitAttempt(page, nonce, 0, jar)
}

// VisitAttempt renders one fetch attempt of a page. attempt counts from
// zero and individualizes the Transport's fault rolls only — the page's
// own volatile behaviour stays pinned to nonce, so a retried visit that
// finally succeeds observes exactly what an undisturbed visit would have
// (determinism across retry schedules and worker counts).
func (b *Browser) VisitAttempt(page *webgen.Page, nonce uint64, attempt int, jar *cookies.Jar) *measurement.Visit {
	v := &measurement.Visit{
		Site:     page.Site,
		PageURL:  page.URL,
		Profile:  b.Profile.Name,
		Attempts: attempt + 1,
	}
	if webgen.RollProb(page.Seed, nonce, "visit", "browser-fail") < visitFailureProb {
		// A browser-level crash is a property of the session, not the
		// network: retrying the same session cannot clear it.
		v.Failure = "navigation failed"
		v.Status = measurement.VisitFailed
		return v
	}

	var out faults.Outcome
	if b.Transport != nil {
		out = b.Transport.RoundTrip(b.Profile.Name, page.URL, attempt)
	}
	if out.Kind != faults.None {
		v.FaultKind = out.Kind.String()
	}
	switch out.Kind {
	case faults.Error, faults.ServerError:
		v.Failure = out.Failure
		v.Status = measurement.VisitFailed
		v.Retryable = out.Retryable
		return v
	case faults.RedirectLoop:
		// The navigation bounces between interstitials until the hop cap;
		// the hop chain is recorded so the failure is diagnosable from
		// the raw dataset.
		v.Failure = out.Failure
		v.Status = measurement.VisitFailed
		v.Retryable = out.Retryable
		chain := faults.RedirectChain(int64(page.Seed), b.Profile.Name, page.URL, out.Hops)
		prev := ""
		for i, hop := range chain {
			v.Requests = append(v.Requests, measurement.Request{
				URL:          hop,
				Type:         measurement.TypeMainFrame,
				RedirectFrom: prev,
				Status:       302,
				ContentType:  "text/html",
				TimeOffsetMS: (i + 1) * 30,
			})
			prev = hop
		}
		return v
	}

	r := &renderer{
		browser:   b,
		page:      page,
		nonce:     nonce,
		visit:     v,
		timeout:   b.timeout(),
		jar:       jar,
		nextFrame: measurement.TopFrameID,
	}
	r.cutoff = r.timeout
	if out.Kind == faults.Truncate && out.TruncateAtMS < r.cutoff {
		r.cutoff = out.TruncateAtMS
	}
	start := 0
	if out.Kind == faults.Latency {
		start = out.ExtraLatencyMS
	}

	rootLatency := r.latencyOf(page.Root)
	rootURL := page.URL
	r.emit(measurement.Request{
		URL:  rootURL,
		Type: measurement.TypeMainFrame,
	}, page.Root, rootURL, start)
	ctx := frameContext{frameID: measurement.TopFrameID, frameURL: rootURL}
	r.walkChildren(page.Root, ctx, "", start+rootLatency)

	v.Success = true
	v.Status = measurement.VisitOK
	switch {
	case out.Kind == faults.Truncate:
		v.Status = measurement.VisitDegraded
	case out.Kind == faults.Latency && r.dropped > 0:
		// The injected stall pushed resources past the page timeout: the
		// tree was observed, but incompletely.
		v.Status = measurement.VisitDegraded
	}
	v.Cookies = r.collectCookies()
	if r.maxCompletion > r.timeout {
		v.DurationMS = r.timeout
	} else {
		v.DurationMS = r.maxCompletion
	}
	return v
}

// simEpoch is the fixed simulation wall-clock; cookie Max-Age resolution is
// relative to it, keeping runs reproducible.
var simEpoch = time.Date(2022, 3, 15, 12, 0, 0, 0, time.UTC)

// frameContext carries the frame a walk is inside of.
type frameContext struct {
	frameID  int
	frameURL string
}

type renderer struct {
	browser       *Browser
	page          *webgen.Page
	nonce         uint64
	visit         *measurement.Visit
	timeout       int
	cutoff        int // ≤ timeout; a Truncate fault lowers it
	jar           *cookies.Jar
	nextFrame     int
	maxCompletion int
	dropped       int // resources lost past the cutoff (degradation signal)
}

// emit appends the request and applies its cookies.
func (r *renderer) emit(req measurement.Request, res *webgen.Resource, realizedURL string, at int) {
	req.TimeOffsetMS = at
	r.fillResponseMeta(&req, realizedURL)
	for _, cs := range res.SetCookies {
		header := r.cookieHeader(cs, res)
		req.SetCookies = append(req.SetCookies, header)
		// Browsers apply Set-Cookie as responses arrive.
		_ = r.jar.SetFromHeader(header, realizedURL)
	}
	r.visit.Requests = append(r.visit.Requests, req)
	if at > r.maxCompletion {
		r.maxCompletion = at
	}
}

// fillResponseMeta synthesizes the HTTP response metadata: status,
// content type, and body size. Headers are the *static* face of a page —
// near-identical across setups — which is exactly the contrast the paper's
// third takeaway draws against dynamic content; only a small volatile
// share (soft 404s, A/B'd payload sizes) varies per visit.
func (r *renderer) fillResponseMeta(req *measurement.Request, realizedURL string) {
	if req.Status != 0 {
		return // redirect hops etc. set their own status
	}
	switch req.Type {
	case measurement.TypeWebSocket:
		req.Status = 101
	case measurement.TypeBeacon, measurement.TypeCSPReport:
		req.Status = 204
	default:
		req.Status = 200
	}
	// A sliver of volatile failures: ad servers occasionally 404 a
	// creative that still "loads" an error payload.
	if req.Status == 200 &&
		webgen.RollProb(r.page.Seed, r.nonce, realizedURL, "soft404") < 0.004 {
		req.Status = 404
	}
	req.ContentType = req.Type.DefaultContentType()

	// Body size: a stable per-resource base plus per-visit jitter for
	// dynamic payloads (documents, JSON, scripts with volatile params).
	base := 200 + int(webgen.RollProb(1, 0, realizedURL, "size")*50_000)
	switch req.Type {
	case measurement.TypeImage, measurement.TypeImageset, measurement.TypeMedia:
		req.BodySize = base * 4 // media is heavier but stable
	case measurement.TypeMainFrame, measurement.TypeSubFrame, measurement.TypeXHR:
		jitter := webgen.RollProb(r.page.Seed, r.nonce, realizedURL, "sizejit")
		req.BodySize = base + int(jitter*float64(base)/4)
	default:
		req.BodySize = base
	}
}

// cookieHeader renders a CookieSpec as a Set-Cookie header, resolving the
// occasional volatile attribute flip (§5.2's differing attributes).
func (r *renderer) cookieHeader(cs webgen.CookieSpec, res *webgen.Resource) string {
	var sb strings.Builder
	value := webgen.RollToken(r.page.Seed, r.nonce, res.ID+cs.Name, "cookieval")
	name := cs.Name
	if cs.VolatileName {
		name += "_" + webgen.RollToken(r.page.Seed, r.nonce, res.ID+cs.Name, "cookiename")
	}
	fmt.Fprintf(&sb, "%s=%s", name, value)
	if cs.Domain != "" {
		fmt.Fprintf(&sb, "; Domain=%s", cs.Domain)
	}
	path := cs.Path
	if path == "" {
		path = "/"
	}
	fmt.Fprintf(&sb, "; Path=%s", path)
	if cs.MaxAge > 0 {
		fmt.Fprintf(&sb, "; Max-Age=%d", cs.MaxAge)
	}
	secure, sameSite := cs.Secure, cs.SameSite
	if cs.VolatileAttrs && webgen.RollProb(r.page.Seed, r.nonce, res.ID+cs.Name, "attrflip") < 0.3 {
		secure = !secure
		if sameSite == "None" {
			sameSite = "Lax"
		} else {
			sameSite = "None"
		}
	}
	// SameSite=None requires Secure; browsers reject it otherwise.
	if sameSite == "None" {
		secure = true
	}
	if secure {
		sb.WriteString("; Secure")
	}
	if cs.HTTPOnly {
		sb.WriteString("; HttpOnly")
	}
	if sameSite != "" {
		fmt.Fprintf(&sb, "; SameSite=%s", sameSite)
	}
	return sb.String()
}

// included resolves all per-visit gates for a resource.
func (r *renderer) included(res *webgen.Resource) bool {
	p := r.browser.Profile
	if res.Lazy && !p.UserInteraction {
		return false
	}
	if res.MinVersion > 0 && p.Version < res.MinVersion {
		return false
	}
	if res.MaxVersion > 0 && p.Version > res.MaxVersion {
		return false
	}
	if res.GUIOnly && !p.GUI {
		return false
	}
	if res.IncludeProb < 1 &&
		webgen.RollProb(r.page.Seed, r.nonce, res.ID, "incl") >= res.IncludeProb {
		return false
	}
	return true
}

// latencyOf resolves the per-visit load latency, including stalls and
// jitter.
func (r *renderer) latencyOf(res *webgen.Resource) int {
	if res.StallProb > 0 &&
		webgen.RollProb(r.page.Seed, r.nonce, res.ID, "stall") < res.StallProb {
		return res.StallMS
	}
	jitter := webgen.RollProb(r.page.Seed, r.nonce, res.ID, "jitter")
	return res.LatencyMS + int(jitter*float64(res.LatencyMS)*0.5)
}

// realizeURL substitutes volatile path tokens and appends volatile query
// parameter values.
func (r *renderer) realizeURL(res *webgen.Resource) string {
	url := res.URL
	if res.VolatilePath {
		url = strings.ReplaceAll(url, webgen.VolatilePathMarker,
			webgen.RollToken(r.page.Seed, r.nonce, res.ID, "vtok"))
	}
	if len(res.VolatileParams) > 0 {
		sep := "?"
		if strings.ContainsRune(url, '?') {
			sep = "&"
		}
		var sb strings.Builder
		sb.WriteString(url)
		for i, p := range res.VolatileParams {
			sb.WriteString(sep)
			if i > 0 {
				sep = "&"
			}
			sb.WriteString(p)
			sb.WriteByte('=')
			sb.WriteString(webgen.RollToken(r.page.Seed, r.nonce, res.ID+p, "param"))
			sep = "&"
		}
		return sb.String()
	}
	return url
}

// walkChildren renders the children (and the chosen variant bundle) of a
// loaded resource. parent is the realized URL of the script/stylesheet that
// issues child requests via a call stack ("" for parser-inserted content —
// children of documents). startAt is the simulated time the parent
// finished loading.
func (r *renderer) walkChildren(res *webgen.Resource, ctx frameContext, stackURL string, startAt int) {
	children := res.Children
	if len(res.Variants) > 0 {
		idx := webgen.RollChoice(r.page.Seed, r.nonce, res.ID, "variant", len(res.Variants))
		children = append(append([]*webgen.Resource(nil), children...), res.Variants[idx]...)
	}
	for _, c := range children {
		r.renderResource(c, ctx, stackURL, startAt)
	}
}

// renderResource renders one resource and its subtree.
func (r *renderer) renderResource(res *webgen.Resource, ctx frameContext, stackURL string, startAt int) {
	if !r.included(res) {
		return
	}
	at := startAt
	if res.Lazy {
		// Lazy content begins once its triggering keystroke fired.
		ks := Keystrokes()
		trigger := ks[webgen.RollChoice(r.page.Seed, 0, res.ID, "keystroke", len(ks))]
		if at < trigger.AtMS {
			at = trigger.AtMS
		}
	}

	// Redirect chain hops each cost a round trip and form a node chain.
	var redirectFrom string
	for _, hop := range res.RedirectVia {
		at += 10 + int(webgen.RollProb(r.page.Seed, r.nonce, res.ID+hop, "hoplat")*40)
		if at > r.cutoff {
			r.dropped++
			return
		}
		req := measurement.Request{
			URL:          hop,
			Type:         res.Type,
			FrameID:      ctx.frameID,
			FrameURL:     ctx.frameURL,
			RedirectFrom: redirectFrom,
			Status:       302,
			ContentType:  "text/html",
		}
		if redirectFrom == "" {
			if stackURL != "" {
				req.CallStack = []measurement.StackFrame{{FuncName: "load", URL: stackURL}}
				req.TrueParentURL = stackURL
			} else {
				req.TrueParentURL = ctx.frameURL
			}
		} else {
			req.TrueParentURL = redirectFrom
		}
		r.emit(req, &webgen.Resource{}, hop, at)
		redirectFrom = hop
	}

	at += r.latencyOf(res)
	if at > r.cutoff {
		// The page timed out (or the injected truncation cut the stream)
		// before this resource finished; the measurement never records it
		// (truncation divergence).
		r.dropped++
		return
	}

	realized := r.realizeURL(res)
	req := measurement.Request{
		URL:          realized,
		Type:         res.Type,
		FrameID:      ctx.frameID,
		FrameURL:     ctx.frameURL,
		RedirectFrom: redirectFrom,
	}
	switch {
	case redirectFrom != "":
		req.TrueParentURL = redirectFrom
	case stackURL != "":
		req.CallStack = []measurement.StackFrame{{FuncName: "load", URL: stackURL}}
		req.TrueParentURL = stackURL
	default:
		req.TrueParentURL = ctx.frameURL
	}
	r.emit(req, res, realized, at)

	switch res.Type {
	case measurement.TypeSubFrame:
		// Children render inside the new frame; their requests carry the
		// frame's ID and document URL, not a call stack.
		r.nextFrame++
		sub := frameContext{frameID: r.nextFrame, frameURL: realized}
		r.walkChildren(res, sub, "", at)
	case measurement.TypeScript, measurement.TypeStylesheet, measurement.TypeXHR:
		// Scripts issue child requests with a JS call stack whose last
		// entry is the script itself; Firefox reports CSS dependencies the
		// same way (§3.2).
		r.walkChildren(res, ctx, realized, at)
	default:
		// Other types cannot load children; defensive walk for specs that
		// attach children anyway.
		r.walkChildren(res, ctx, stackURL, at)
	}
}

// collectCookies snapshots the jar.
func (r *renderer) collectCookies() []measurement.CookieObservation {
	all := r.jar.All()
	out := make([]measurement.CookieObservation, len(all))
	for i, c := range all {
		out[i] = measurement.CookieObservation{
			Name:     c.Name,
			Domain:   c.Domain,
			Path:     c.Path,
			Secure:   c.Secure,
			HTTPOnly: c.HTTPOnly,
			SameSite: string(c.SameSite),
		}
	}
	return out
}
