package urlutil

// KeyCache is a pre-computed normalization table: raw URL → (normalized
// node key, dense key id, stripped flag). The columnar store builds one
// per site block from the block's interned string table, so Normalize —
// a full URL parse — runs once per distinct string per site instead of
// once per request per visit, and consumers that index by the int32 key
// id (the tree builder) skip string hashing entirely. A cache is
// immutable after construction and safe for concurrent readers.
type KeyCache struct {
	refs map[string]keyRef
	keys []string
	// sites holds the eTLD+1 per key id ("" when the key has no
	// registrable host). Normalize preserves the host, so Site(key) ==
	// Site(raw) for every raw mapping to the key; consumers classifying
	// first- vs third-party read the table instead of re-parsing URLs.
	sites []string
}

type keyRef struct {
	id       int32
	stripped bool
}

// BuildKeyCache normalizes every raw string once and assigns dense ids to
// the distinct normalized keys in first-seen order. Non-URL strings in
// the input (profile names, header values) simply normalize to themselves
// and cost one table entry; callers pass whatever string universe their
// visits reference.
func BuildKeyCache(raws []string) *KeyCache {
	c := &KeyCache{refs: make(map[string]keyRef, len(raws))}
	ids := make(map[string]int32, len(raws))
	for _, raw := range raws {
		if _, ok := c.refs[raw]; ok {
			continue
		}
		key, stripped := Normalize(raw)
		id, ok := ids[key]
		if !ok {
			id = int32(len(c.keys))
			ids[key] = id
			c.keys = append(c.keys, key)
			c.sites = append(c.sites, Site(key))
		}
		c.refs[raw] = keyRef{id: id, stripped: stripped}
	}
	return c
}

// Lookup resolves a raw URL to its cached normalization. ok is false when
// the URL was not in the cache's universe; callers then fall back to
// Normalize directly.
func (c *KeyCache) Lookup(raw string) (key string, id int32, stripped, ok bool) {
	if c == nil {
		return "", 0, false, false
	}
	ref, ok := c.refs[raw]
	if !ok {
		return "", 0, false, false
	}
	return c.keys[ref.id], ref.id, ref.stripped, true
}

// SiteByID returns the eTLD+1 of the key with the given id ("" when the
// key has no registrable host). The id must come from Lookup on this
// cache.
func (c *KeyCache) SiteByID(id int32) string {
	return c.sites[id]
}

// NumKeys returns the number of distinct normalized keys — the exclusive
// upper bound of the ids Lookup returns.
func (c *KeyCache) NumKeys() int {
	if c == nil {
		return 0
	}
	return len(c.keys)
}
