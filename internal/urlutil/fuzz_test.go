package urlutil

import (
	"strings"
	"testing"
)

// FuzzNormalize guards the node-identity normalization against arbitrary
// input: it must never panic, must be idempotent, and must never leave a
// non-empty query value behind.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"https://foo.com/scriptA.js?s_id=1234",
		"https://foo.com/a.js?x=&y=",
		"http://[::1",
		"//proto-relative.example/x?a=b",
		"https://h.example/p?a=1&a=2&b&c=",
		"https://h.example/%zz?bad=escape",
		"?only=query",
		strings.Repeat("a", 300) + "?k=v",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		norm, _ := Normalize(raw)
		again, stripped := Normalize(norm)
		if again != norm {
			t.Fatalf("not idempotent: %q → %q → %q", raw, norm, again)
		}
		if stripped {
			t.Fatalf("second pass stripped values: %q → %q", raw, norm)
		}
	})
}

// FuzzSite guards eTLD+1 extraction: never panic; the result, when
// non-empty, must be a suffix of the host.
func FuzzSite(f *testing.F) {
	for _, s := range []string{
		"https://a.b.example.co.uk/x",
		"https://com/",
		"https://127.0.0.1:8080/",
		"garbage",
		"https://.leading.dot.example/",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		site := Site(raw)
		if site == "" {
			return
		}
		// The PSL layer canonicalizes FQDN trailing dots away.
		host := strings.TrimSuffix(Host(raw), ".")
		if host != site && !strings.HasSuffix(host, "."+site) {
			t.Fatalf("Site(%q) = %q not a suffix of host %q", raw, site, host)
		}
	})
}
