// Package urlutil provides the URL handling used throughout the measurement
// pipeline: parsing, the query-value-stripping normalization from §3.2 of
// the paper (node identity), site (eTLD+1) extraction, and first-/third-
// party classification.
package urlutil

import (
	"net/url"
	"strings"

	"webmeasure/internal/psl"
)

// Normalize canonicalizes a URL into the node identity used when comparing
// dependency trees. Following §3.2 of the paper it keeps the scheme, host,
// and path, drops the fragment, and *keeps query parameter names while
// dropping their values*, so that
//
//	https://foo.com/scriptA.js?s_id=1234  and
//	https://foo.com/scriptA.js?s_id=abcd
//
// normalize to the same identity "https://foo.com/scriptA.js?s_id=".
// Parameter names keep their original order; repeated names are kept once.
// The boolean result reports whether any query value was actually dropped
// (the paper reports this applied to ~40% of observed URLs).
func Normalize(raw string) (norm string, stripped bool) {
	u, err := url.Parse(raw)
	if err != nil {
		// Unparseable URLs are compared verbatim; the paper compares
		// whatever string the instrumentation recorded.
		return raw, false
	}
	u.Fragment = ""
	u.Host = strings.ToLower(u.Host)
	u.Scheme = strings.ToLower(u.Scheme)
	if u.RawQuery == "" {
		return u.String(), false
	}
	names := queryNames(u.RawQuery)
	var b strings.Builder
	seen := make(map[string]bool, len(names))
	for _, kv := range names {
		if seen[kv.name] {
			if kv.hasValue {
				stripped = true
			}
			continue
		}
		seen[kv.name] = true
		if b.Len() > 0 {
			b.WriteByte('&')
		}
		b.WriteString(kv.name)
		b.WriteByte('=')
		if kv.hasValue {
			stripped = true
		}
	}
	u.RawQuery = b.String()
	return u.String(), stripped
}

type queryName struct {
	name     string
	hasValue bool
}

// queryNames splits a raw query into parameter names, preserving order and
// recording whether each carried a non-empty value. It deliberately avoids
// url.ParseQuery so malformed queries degrade gracefully instead of being
// dropped wholesale.
func queryNames(rawQuery string) []queryName {
	parts := strings.Split(rawQuery, "&")
	out := make([]queryName, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			continue
		}
		name, value, found := strings.Cut(p, "=")
		out = append(out, queryName{name: name, hasValue: found && value != ""})
	}
	return out
}

// Host returns the lower-cased host of raw without a port, or "" when the
// URL cannot be parsed or has no host.
func Host(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// Site returns the eTLD+1 of the URL's host using the embedded public suffix
// list — the paper's notion of a "site". It returns "" for URLs without a
// registrable host.
func Site(raw string) string {
	return SiteWithList(raw, psl.Default())
}

// SiteWithList is Site with an explicit public suffix list.
func SiteWithList(raw string, list *psl.List) string {
	h := Host(raw)
	if h == "" {
		return ""
	}
	return list.RegistrableDomain(h)
}

// SameSite reports whether the two URLs share an eTLD+1.
func SameSite(a, b string) bool {
	sa, sb := Site(a), Site(b)
	return sa != "" && sa == sb
}

// IsThirdParty reports whether resourceURL is third-party relative to the
// visited page pageURL, i.e. their eTLD+1s differ. Resources whose site
// cannot be determined are conservatively classified as third-party, which
// matches how measurement studies treat opaque origins.
func IsThirdParty(resourceURL, pageURL string) bool {
	rs, ps := Site(resourceURL), Site(pageURL)
	if rs == "" || ps == "" {
		return true
	}
	return rs != ps
}

// PathOf returns the path component of raw ("" if unparseable). Used by the
// filter list engine and by branch-merging diagnostics.
func PathOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Path
}
