package urlutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeStripsQueryValues(t *testing.T) {
	cases := []struct {
		in, want string
		stripped bool
	}{
		{"https://foo.com/scriptA.js?s_id=1234", "https://foo.com/scriptA.js?s_id=", true},
		{"https://foo.com/scriptA.js?s_id=abcd", "https://foo.com/scriptA.js?s_id=", true},
		{"https://foo.com/a.js", "https://foo.com/a.js", false},
		{"https://foo.com/a.js?x=&y=", "https://foo.com/a.js?x=&y=", false},
		{"https://foo.com/a.js?x=1&y=2", "https://foo.com/a.js?x=&y=", true},
		{"https://foo.com/a.js?b=2&a=1", "https://foo.com/a.js?b=&a=", true},
		{"https://foo.com/a#frag", "https://foo.com/a", false},
		{"HTTPS://FOO.com/Path?Q=1", "https://foo.com/Path?Q=", true},
		{"https://foo.com/a?flag", "https://foo.com/a?flag=", false},
		{"https://foo.com/a?x=1&x=2", "https://foo.com/a?x=", true},
		{"https://foo.com/a?&&x=9", "https://foo.com/a?x=", true},
	}
	for _, c := range cases {
		got, stripped := Normalize(c.in)
		if got != c.want || stripped != c.stripped {
			t.Errorf("Normalize(%q) = (%q, %v), want (%q, %v)", c.in, got, stripped, c.want, c.stripped)
		}
	}
}

func TestNormalizeCollapsesSessionVariants(t *testing.T) {
	a, _ := Normalize("https://cdn.example.com/lib.js?v=1.2.3&session=aaa")
	b, _ := Normalize("https://cdn.example.com/lib.js?v=2.0.0&session=bbb")
	if a != b {
		t.Errorf("session variants did not collapse: %q vs %q", a, b)
	}
}

func TestNormalizeUnparseable(t *testing.T) {
	bad := "http://[::1"
	got, stripped := Normalize(bad)
	if got != bad || stripped {
		t.Errorf("Normalize(%q) = (%q, %v), want identity", bad, got, stripped)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(path, q1, q2 string) bool {
		raw := "https://site.example/" + sanitize(path) + "?a=" + sanitize(q1) + "&b=" + sanitize(q2)
		once, _ := Normalize(raw)
		twice, again := Normalize(once)
		return once == twice && !again
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestHostAndSite(t *testing.T) {
	cases := []struct {
		in, host, site string
	}{
		{"https://www.example.com:8443/x", "www.example.com", "example.com"},
		{"https://a.b.example.co.uk/", "a.b.example.co.uk", "example.co.uk"},
		{"https://site-0001.example/page", "site-0001.example", "site-0001.example"},
		{"not a url at all ://", "", ""},
		{"https://com/", "com", ""},
	}
	for _, c := range cases {
		if got := Host(c.in); got != c.host {
			t.Errorf("Host(%q) = %q, want %q", c.in, got, c.host)
		}
		if got := Site(c.in); got != c.site {
			t.Errorf("Site(%q) = %q, want %q", c.in, got, c.site)
		}
	}
}

func TestIsThirdParty(t *testing.T) {
	page := "https://www.shop.example.com/checkout"
	cases := []struct {
		res  string
		want bool
	}{
		{"https://cdn.example.com/app.js", false},
		{"https://static.example.com/logo.png", false},
		{"https://tracker.ads-example.net/pixel.gif", true},
		{"https://example.org/widget.js", true},
		{"", true},
	}
	for _, c := range cases {
		if got := IsThirdParty(c.res, page); got != c.want {
			t.Errorf("IsThirdParty(%q, page) = %v, want %v", c.res, got, c.want)
		}
	}
}

func TestSameSite(t *testing.T) {
	if !SameSite("https://a.example.com/x", "https://b.example.com/y") {
		t.Error("subdomains of the same registrable domain should be same-site")
	}
	if SameSite("https://example.com/", "https://example.org/") {
		t.Error("different registrable domains must not be same-site")
	}
	if SameSite("::bad::", "::bad::") {
		t.Error("unparseable URLs must not be same-site")
	}
}

func TestPathOf(t *testing.T) {
	if got := PathOf("https://x.example/a/b.js?q=1"); got != "/a/b.js" {
		t.Errorf("PathOf = %q", got)
	}
	if got := PathOf("http://[::1"); got != "" {
		t.Errorf("PathOf(bad) = %q, want empty", got)
	}
}

func BenchmarkNormalize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Normalize("https://cdn.site-0042.example/assets/lib.js?v=1.8.2&session=f00ba4&ab=exp7")
	}
}
