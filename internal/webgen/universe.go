package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"webmeasure/internal/tranco"
)

// ServiceKind classifies a third-party service.
type ServiceKind uint8

// Service kinds in the synthetic ecosystem.
const (
	KindAdNetwork ServiceKind = iota
	KindTracker
	KindCDN
	KindSocial
	KindTagManager
	KindCMP
	KindAdHost // creative-hosting long tail behind ad networks
)

// String names the kind.
func (k ServiceKind) String() string {
	switch k {
	case KindAdNetwork:
		return "ad_network"
	case KindTracker:
		return "tracker"
	case KindCDN:
		return "cdn"
	case KindSocial:
		return "social"
	case KindTagManager:
		return "tag_manager"
	case KindCMP:
		return "cmp"
	case KindAdHost:
		return "ad_host"
	default:
		return fmt.Sprintf("service_kind(%d)", uint8(k))
	}
}

// Service is one third-party provider.
type Service struct {
	Name   string
	Domain string // registrable domain
	Kind   ServiceKind
	// Tracking marks services whose URLs the filter list targets.
	Tracking bool
}

// Config sizes the synthetic universe. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Seed int64

	AdNetworks  int
	Trackers    int
	CDNs        int
	Social      int
	TagManagers int
	CMPs        int
	AdHosts     int

	// PagesPerSite bounds the number of subpages generated per site (the
	// paper collects up to 25).
	PagesPerSite int
}

// DefaultConfig returns a universe sized for laptop-scale runs while
// keeping the ecosystem diverse enough for the paper's distributions.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		AdNetworks:   24,
		Trackers:     48,
		CDNs:         16,
		Social:       8,
		TagManagers:  6,
		CMPs:         5,
		AdHosts:      60,
		PagesPerSite: 25,
	}
}

// Universe is the generated web: the third-party ecosystem plus the site
// generator. It is immutable after New and safe for concurrent use.
type Universe struct {
	cfg Config

	adNetworks  []*Service
	trackers    []*Service
	cdns        []*Service
	social      []*Service
	tagManagers []*Service
	cmps        []*Service
	adHosts     []*Service

	orgs        []*Organization
	orgByDomain map[string]string
}

// New generates a universe from cfg.
func New(cfg Config) *Universe {
	if cfg.PagesPerSite <= 0 {
		cfg.PagesPerSite = 25
	}
	u := &Universe{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u.adNetworks = makeServices(rng, cfg.AdNetworks, KindAdNetwork, "ads", true)
	u.trackers = makeServices(rng, cfg.Trackers, KindTracker, "metrics", true)
	u.cdns = makeServices(rng, cfg.CDNs, KindCDN, "cdn", false)
	u.social = makeServices(rng, cfg.Social, KindSocial, "social", false)
	u.tagManagers = makeServices(rng, cfg.TagManagers, KindTagManager, "tags", false)
	u.cmps = makeServices(rng, cfg.CMPs, KindCMP, "consent", false)
	u.adHosts = makeServices(rng, cfg.AdHosts, KindAdHost, "adcontent", false)
	u.buildEntities(rng)
	return u
}

func makeServices(rng *rand.Rand, n int, kind ServiceKind, suffix string, tracking bool) []*Service {
	out := make([]*Service, n)
	seen := map[string]bool{}
	for i := range out {
		name := serviceName(rng)
		domain := fmt.Sprintf("%s-%s.example", name, suffix)
		for seen[domain] {
			domain = fmt.Sprintf("%s%d-%s.example", name, i, suffix)
		}
		seen[domain] = true
		out[i] = &Service{Name: name, Domain: domain, Kind: kind, Tracking: tracking}
	}
	return out
}

var nameSyllables = []string{"ad", "bid", "click", "data", "pix", "sig", "sync", "tag", "trk", "vast", "yld", "zed", "omni", "meta", "next", "pro", "max", "net"}

func serviceName(rng *rand.Rand) string {
	a := nameSyllables[rng.Intn(len(nameSyllables))]
	b := nameSyllables[rng.Intn(len(nameSyllables))]
	return a + b
}

// Config returns the universe's configuration.
func (u *Universe) Config() Config { return u.cfg }

// Services returns all services of a kind. The slice must not be modified.
func (u *Universe) Services(kind ServiceKind) []*Service {
	switch kind {
	case KindAdNetwork:
		return u.adNetworks
	case KindTracker:
		return u.trackers
	case KindCDN:
		return u.cdns
	case KindSocial:
		return u.social
	case KindTagManager:
		return u.tagManagers
	case KindCMP:
		return u.cmps
	case KindAdHost:
		return u.adHosts
	default:
		return nil
	}
}

// AllServices returns every service in the universe.
func (u *Universe) AllServices() []*Service {
	var out []*Service
	for _, k := range []ServiceKind{KindAdNetwork, KindTracker, KindCDN, KindSocial, KindTagManager, KindCMP, KindAdHost} {
		out = append(out, u.Services(k)...)
	}
	return out
}

// FilterListText renders the universe's tracking filter list in EasyList
// (Adblock Plus) syntax: domain rules for every tracking service plus the
// generic path patterns the ecosystem's beacons use. This plays the role
// EasyList plays in the paper (§3.2).
func (u *Universe) FilterListText() string {
	var b strings.Builder
	b.WriteString("! Synthetic EasyList for the generated web universe\n")
	b.WriteString("! Generic tracking endpoints\n")
	b.WriteString("/track/\n")
	b.WriteString("/pixel.$image\n")
	b.WriteString("/beacon^\n")
	b.WriteString("/sync?\n")
	b.WriteString("! Tracking service domains\n")
	for _, s := range u.AllServices() {
		if s.Tracking {
			fmt.Fprintf(&b, "||%s^\n", s.Domain)
		}
	}
	b.WriteString("! Allow consented analytics documentation pages\n")
	b.WriteString("@@||docs.\n")
	return b.String()
}

// PrivacyListText renders a second, EasyPrivacy-style list: it targets the
// telemetry the primary list leaves alone — tag managers, consent
// platforms, and social-widget data endpoints. §6 discusses stacking such
// lists: coverage grows, but the notion of "tracking" shifts with it.
func (u *Universe) PrivacyListText() string {
	var b strings.Builder
	b.WriteString("! Synthetic EasyPrivacy for the generated web universe\n")
	for _, s := range u.Services(KindTagManager) {
		fmt.Fprintf(&b, "||%s^$third-party\n", s.Domain)
	}
	for _, s := range u.Services(KindCMP) {
		fmt.Fprintf(&b, "||%s^$third-party\n", s.Domain)
	}
	b.WriteString("! Social telemetry\n")
	b.WriteString("/api/feed$third-party\n")
	b.WriteString("! First-party analytics endpoints\n")
	b.WriteString("/api/v1/data$xmlhttprequest\n")
	return b.String()
}

// pick returns a deterministic, site-stable selection of n services from
// pool using the provided rng (already seeded per site/page).
func pick(rng *rand.Rand, pool []*Service, n int) []*Service {
	if n >= len(pool) {
		out := make([]*Service, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]*Service, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// GenerateSite builds the full site (landing page + subpages) for a ranked
// entry. Generation is deterministic in (cfg.Seed, entry).
func (u *Universe) GenerateSite(entry tranco.Entry) *Site {
	seed := mix(uint64(u.cfg.Seed), hash64("site", entry.Site))
	rng := rand.New(rand.NewSource(int64(seed)))

	s := &Site{Domain: entry.Site, Rank: entry.Rank}
	// ~1% of sites are not meant for humans (ad/CDN landing pages).
	if rng.Float64() < 0.01 {
		s.Unreachable = true
	}

	profile := buildSiteProfile(u, rng, entry.Site, entry.Rank)

	// Number of subpages: most sites have plenty of links; some are
	// link-poor (paper: min 0, avg 14.6 of 25).
	nPages := u.cfg.PagesPerSite
	switch {
	case rng.Float64() < 0.08:
		nPages = rng.Intn(u.cfg.PagesPerSite / 2)
	case rng.Float64() < 0.3:
		nPages = u.cfg.PagesPerSite/2 + rng.Intn(u.cfg.PagesPerSite/2+1)
	}

	links := make([]string, nPages)
	for i := range links {
		links[i] = fmt.Sprintf("https://%s/page-%02d", s.Domain, i+1)
	}
	// The landing page links a subset of the subpages directly; the rest
	// are only reachable through other subpages, so a discovery crawl with
	// too few landing links must recurse (§3.1.2 "We repeated the process
	// recursively if the landing page did not hold enough links").
	direct := links
	if len(links) > 4 && rng.Float64() < 0.4 {
		direct = links[:len(links)/2]
	}
	s.Landing = u.generatePage(profile, fmt.Sprintf("https://%s/", s.Domain), "landing", direct)
	s.Pages = make([]*Page, nPages)
	for i, link := range links {
		// Subpages cross-link a few siblings (and occasionally external
		// sites, which discovery must filter out).
		var sub []string
		for j := 0; j < 3 && nPages > 1; j++ {
			k := rng.Intn(nPages)
			if links[k] != link {
				sub = append(sub, links[k])
			}
		}
		if rng.Float64() < 0.3 {
			sub = append(sub, "https://partner-site.example/promo")
		}
		s.Pages[i] = u.generatePage(profile, link, fmt.Sprintf("p%02d", i+1), sub)
	}
	return s
}
