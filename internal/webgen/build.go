package webgen

import (
	"fmt"
	"math/rand"

	"webmeasure/internal/measurement"
)

// generatePage builds the spec tree for one page. All structural decisions
// here use rng (seeded per page) and are therefore identical for every
// profile and visit; per-visit volatility is expressed through the
// Resource fields the browser simulator resolves.
//
// Two mechanisms drive the paper's instability findings:
//
//   - volatile inclusion / rotation / volatile paths make node *presence*
//     differ between visits;
//   - shared resources (the same URL attached beneath several possible
//     parents, each with volatile inclusion) make node *attribution*
//     differ: the tree builder merges equal URLs and credits the first
//     requester, so the dependency chain of a shared node changes from
//     visit to visit — the §4.2 phenomenon.
func (u *Universe) generatePage(p *siteProfile, pageURL, pageID string, links []string) *Page {
	seed := mix(p.seed, hash64("page", pageID))
	rng := rand.New(rand.NewSource(int64(seed)))
	b := &pageBuilder{u: u, p: p, rng: rng, pageID: pageID}

	root := &Resource{
		ID:        "root",
		URL:       pageURL,
		Type:      measurement.TypeMainFrame,
		LatencyMS: 150 + rng.Intn(400),
		SetCookies: []CookieSpec{
			{Name: "sid", MaxAge: 0, HTTPOnly: true},
		},
	}
	if rng.Float64() < 0.5 {
		root.SetCookies = append(root.SetCookies, CookieSpec{Name: "prefs", MaxAge: 86400 * 30, SameSite: "Lax"})
	}

	portalScale := 1.0
	if p.portal {
		portalScale = 3.0
	}
	// ~10% of pages are plain (logins, legal pages): first-party only.
	plain := rng.Float64() < 0.10 && !p.portal

	b.addStaticText(root, rng.Intn(4))
	b.addFirstPartyImages(root, int(float64(8+rng.Intn(16))*p.imageRich*portalScale))
	b.addLazyImages(root, 2+rng.Intn(4))
	b.addStylesheets(root, 1+rng.Intn(3))
	fpScripts := b.addFirstPartyScripts(root, 2+rng.Intn(4))
	b.addSharedLibrary(fpScripts)
	if !plain {
		b.addCDNLibs(root, fpScripts, 2+rng.Intn(len(p.cdns)+1))
		if len(p.trackers) > 0 {
			b.addTrackers(root, fpScripts)
		}
		if len(p.adNetworks) > 0 {
			slots := p.adSlotsBase + rng.Intn(3)
			if p.portal {
				slots += 3
			}
			b.addAdSlots(root, slots)
		}
		if p.social != nil && rng.Float64() < 0.8 {
			b.addSocialWidget(root)
		}
		if p.cmp != nil {
			b.addCMP(root)
		}
	}

	return &Page{
		Site:  p.domain,
		URL:   pageURL,
		Seed:  seed,
		Root:  root,
		Links: links,
	}
}

// pageBuilder accumulates spec nodes with unique IDs.
type pageBuilder struct {
	u      *Universe
	p      *siteProfile
	rng    *rand.Rand
	pageID string
	nextID int
}

func (b *pageBuilder) id(kind string) string {
	b.nextID++
	return fmt.Sprintf("%s.%s%d", b.pageID, kind, b.nextID)
}

// addStaticText adds depth-one nodes that cannot load children (plain text
// documents); §3.2 excludes them from parts of the analysis, so the
// generator must produce some for that code path to matter.
func (b *pageBuilder) addStaticText(root *Resource, n int) {
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, &Resource{
			ID:          b.id("txt"),
			URL:         fmt.Sprintf("https://%s/content/section-%02d.txt", b.p.domain, i),
			Type:        measurement.TypeText,
			IncludeProb: 1,
			LatencyMS:   5 + b.rng.Intn(20),
		})
	}
}

// addFirstPartyImages adds the stable depth-one content that gives
// first-party nodes their near-perfect similarity (§4.3); a small share
// rotates or is one-off.
func (b *pageBuilder) addFirstPartyImages(root *Resource, n int) {
	assetHost := "static." + b.p.domain
	if b.p.imageCDN != nil {
		assetHost = b.p.domain + "." + b.p.imageCDN.Domain
	}
	for i := 0; i < n; i++ {
		img := &Resource{
			ID:          b.id("img"),
			URL:         fmt.Sprintf("https://%s/assets/img-%03d.jpg", assetHost, b.rng.Intn(400)),
			Type:        measurement.TypeImage,
			IncludeProb: 0.995,
			LatencyMS:   10 + b.rng.Intn(40),
		}
		r := b.rng.Float64()
		switch {
		case r < 0.05:
			// Rotating editorial images differ between visits.
			img.IncludeProb = 0.5
		case r < 0.09:
			// One-off personalized/resized images: unique per visit.
			img.URL = fmt.Sprintf("https://%s/resize/%s/hero-%02d.jpg", assetHost, VolatilePathMarker, i)
			img.VolatilePath = true
			img.IncludeProb = 0.6
		case r < 0.35:
			img.VolatileParams = []string{"cb"}
		}
		root.Children = append(root.Children, img)
	}
}

func (b *pageBuilder) addLazyImages(root *Resource, n int) {
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, &Resource{
			ID:          b.id("lazyimg"),
			URL:         fmt.Sprintf("https://static.%s/assets/lazy-%03d.jpg", b.p.domain, b.rng.Intn(400)),
			Type:        measurement.TypeImage,
			IncludeProb: 0.97,
			Lazy:        true,
			LatencyMS:   10 + b.rng.Intn(40),
		})
	}
}

func (b *pageBuilder) addStylesheets(root *Resource, n int) {
	// Fonts are shared between stylesheets: both sheets reference the same
	// face and the first to load it gets the attribution.
	sharedFont := fmt.Sprintf("https://%s/fonts/face-%02d.woff2",
		b.p.cdns[b.rng.Intn(len(b.p.cdns))].Domain, b.rng.Intn(40))
	for i := 0; i < n; i++ {
		css := &Resource{
			ID:          b.id("css"),
			URL:         fmt.Sprintf("https://%s/styles/theme-%d.css", b.p.domain, i),
			Type:        measurement.TypeStylesheet,
			IncludeProb: 1,
			LatencyMS:   15 + b.rng.Intn(30),
		}
		css.Children = append(css.Children, &Resource{
			ID:          b.id("font"),
			URL:         sharedFont,
			Type:        measurement.TypeFont,
			IncludeProb: 0.75,
			LatencyMS:   10 + b.rng.Intn(25),
		})
		for g := 0; g < 1+b.rng.Intn(3); g++ {
			css.Children = append(css.Children, &Resource{
				ID:          b.id("bgimg"),
				URL:         fmt.Sprintf("https://static.%s/assets/bg-%02d.png", b.p.domain, b.rng.Intn(60)),
				Type:        measurement.TypeImage,
				IncludeProb: 0.99,
				LatencyMS:   8 + b.rng.Intn(25),
			})
		}
		root.Children = append(root.Children, css)
	}
}

// addFirstPartyScripts returns the created scripts so later builders can
// hang shared resources beneath them.
func (b *pageBuilder) addFirstPartyScripts(root *Resource, n int) []*Resource {
	scripts := make([]*Resource, 0, n)
	for i := 0; i < n; i++ {
		js := &Resource{
			ID:          b.id("fpjs"),
			URL:         fmt.Sprintf("https://%s/js/app-%d.js", b.p.domain, i),
			Type:        measurement.TypeScript,
			IncludeProb: 1,
			LatencyMS:   20 + b.rng.Intn(60),
		}
		for x := 0; x < b.rng.Intn(3); x++ {
			js.Children = append(js.Children, &Resource{
				ID:             b.id("fpxhr"),
				URL:            fmt.Sprintf("https://%s/api/v1/data-%d", b.p.domain, x),
				Type:           measurement.TypeXHR,
				IncludeProb:    0.95,
				VolatileParams: []string{"sid"},
				LatencyMS:      30 + b.rng.Intn(80),
			})
		}
		if b.p.fpAnalytics && i == 0 {
			js.Children = append(js.Children, &Resource{
				ID:             b.id("fptrack"),
				URL:            fmt.Sprintf("https://%s/track/pageview", b.p.domain),
				Type:           measurement.TypeBeacon,
				IncludeProb:    0.95,
				VolatileParams: []string{"sid", "t"},
				LatencyMS:      10 + b.rng.Intn(20),
			})
		}
		// Media players on some pages.
		if b.rng.Float64() < 0.1 {
			js.Children = append(js.Children, &Resource{
				ID:          b.id("media"),
				URL:         fmt.Sprintf("https://static.%s/media/clip-%02d.mp4", b.p.domain, b.rng.Intn(30)),
				Type:        measurement.TypeMedia,
				IncludeProb: 0.9,
				Lazy:        true,
				LatencyMS:   100 + b.rng.Intn(300),
			})
		}
		root.Children = append(root.Children, js)
		scripts = append(scripts, js)
	}
	return scripts
}

// addSharedLibrary hangs the same utility bundle URL beneath every
// first-party script with partial inclusion: whichever script requests it
// first in a given visit becomes the attributed parent — dependency chains
// for the library differ across visits even though the node is always
// present (§4.2's unstable chains).
func (b *pageBuilder) addSharedLibrary(scripts []*Resource) {
	if len(scripts) < 2 {
		return
	}
	url := fmt.Sprintf("https://%s/js/vendor/common.js", b.p.domain)
	for _, js := range scripts {
		js.Children = append(js.Children, &Resource{
			ID:          b.id("shared"),
			URL:         url,
			Type:        measurement.TypeScript,
			IncludeProb: 0.6,
			LatencyMS:   15 + b.rng.Intn(40),
		})
	}
}

// addCDNLibs adds third-party libraries; a slice of them is A/B-tested and
// not loaded on every visit, and some are additionally dynamic-imported by
// first-party code — a shared resource whose attributed parent flips.
func (b *pageBuilder) addCDNLibs(root *Resource, fpScripts []*Resource, n int) {
	for i := 0; i < n; i++ {
		cdn := b.p.cdns[b.rng.Intn(len(b.p.cdns))]
		lib := &Resource{
			ID:          b.id("cdnjs"),
			URL:         fmt.Sprintf("https://%s/libs/lib-%02d/main.min.js", cdn.Domain, b.rng.Intn(30)),
			Type:        measurement.TypeScript,
			IncludeProb: 1,
			LatencyMS:   15 + b.rng.Intn(50),
		}
		if b.rng.Float64() < 0.3 {
			lib.IncludeProb = 0.7 // A/B-tested embed
			lib.SetCookies = []CookieSpec{{Name: "ab", MaxAge: 86400, SameSite: "Lax"}}
		}
		if b.rng.Float64() < 0.25 {
			lib.VolatileParams = []string{"v"}
		}
		if len(fpScripts) > 0 && b.rng.Float64() < 0.5 {
			// The same library is also dynamic-imported by app code; when
			// the import wins the race the chain (and depth) differ.
			host := fpScripts[b.rng.Intn(len(fpScripts))]
			host.Children = append(host.Children, &Resource{
				ID:          b.id("cdndup"),
				URL:         lib.URL,
				Type:        measurement.TypeScript,
				IncludeProb: 0.4,
				LatencyMS:   lib.LatencyMS,
			})
		}
		// Newer browsers fetch an ES-module build in addition.
		if b.rng.Float64() < 0.2 {
			lib.Children = append(lib.Children, &Resource{
				ID:          b.id("cdnmod"),
				URL:         fmt.Sprintf("https://%s/libs/lib-%02d/module.mjs", cdn.Domain, b.rng.Intn(30)),
				Type:        measurement.TypeScript,
				IncludeProb: 1,
				MinVersion:  90,
				LatencyMS:   15 + b.rng.Intn(40),
			})
		}
		// Legacy polyfill for older browsers.
		if b.rng.Float64() < 0.2 {
			lib.Children = append(lib.Children, &Resource{
				ID:          b.id("cdnpoly"),
				URL:         fmt.Sprintf("https://%s/libs/polyfill/legacy.js", cdn.Domain),
				Type:        measurement.TypeScript,
				IncludeProb: 1,
				MaxVersion:  89,
				LatencyMS:   15 + b.rng.Intn(40),
			})
		}
		root.Children = append(root.Children, lib)
	}
}

// addTrackers embeds the site's trackers: via the tag manager when the
// site has one, plus inline snippets in first-party scripts. The same
// tracker script URL may be reachable from both — another shared-resource
// attribution instability.
func (b *pageBuilder) addTrackers(root *Resource, fpScripts []*Resource) {
	trackers := b.p.trackers
	if b.p.tagManager != nil {
		tm := &Resource{
			ID:          b.id("tagman"),
			URL:         fmt.Sprintf("https://%s/tm.js?id=GTM-%04d", b.p.tagManager.Domain, b.rng.Intn(10000)),
			Type:        measurement.TypeScript,
			IncludeProb: 1,
			LatencyMS:   30 + b.rng.Intn(60),
		}
		for _, tr := range trackers {
			tm.Children = append(tm.Children, b.trackerBundle(tr, 0))
			// Inline snippets in app code also kick off trackers —
			// whichever requester fires first owns the analytics subtree
			// that visit. Both candidate parents sit at depth one, so the
			// node's depth is stable while its chain is not (§4.1: nodes
			// in all trees keep their depth; §4.2: chains fluctuate).
			if len(fpScripts) > 0 {
				host := fpScripts[b.rng.Intn(len(fpScripts))]
				dup := b.trackerScriptStub(tr)
				dup.IncludeProb = 0.55
				host.Children = append(host.Children, dup)
			}
		}
		root.Children = append(root.Children, tm)
		return
	}
	// No tag manager: trackers ride in the site's own scripts, and a
	// second script races for the same tracker — a same-depth parent flip.
	for i, tr := range trackers {
		host := root
		if len(fpScripts) > 0 {
			host = fpScripts[i%len(fpScripts)]
		}
		host.Children = append(host.Children, b.trackerBundle(tr, 0))
		if len(fpScripts) > 1 {
			dup := b.trackerScriptStub(tr)
			dup.IncludeProb = 0.5
			fpScripts[(i+1)%len(fpScripts)].Children = append(fpScripts[(i+1)%len(fpScripts)].Children, dup)
		}
	}
}

// trackerScriptStub builds just the tracker's script node (no payload);
// used for shared-resource duplicates. The URL matches trackerBundle's.
func (b *pageBuilder) trackerScriptStub(tr *Service) *Resource {
	return &Resource{
		ID:          b.id("trdup"),
		URL:         fmt.Sprintf("https://%s/js/analytics.js", tr.Domain),
		Type:        measurement.TypeScript,
		IncludeProb: 1,
		LatencyMS:   25 + b.rng.Intn(60),
	}
}

// trackerBundle builds one tracker's script with the privacy-invasive
// payloads the case studies analyze: beacons, pixels, cookie-sync redirect
// chains, and cookies. chainDepth caps tracker-loads-tracker recursion.
func (b *pageBuilder) trackerBundle(tr *Service, chainDepth int) *Resource {
	script := &Resource{
		ID:          b.id("trjs"),
		URL:         fmt.Sprintf("https://%s/js/analytics.js", tr.Domain),
		Type:        measurement.TypeScript,
		IncludeProb: 0.97,
		LatencyMS:   25 + b.rng.Intn(60),
	}
	// Event beacon; often on a one-off (per-visit) collection path, which
	// makes it a unique tracking node (§5.1: 37% of unique nodes track).
	beacon := &Resource{
		ID:             b.id("trbeacon"),
		URL:            fmt.Sprintf("https://%s/track/event", tr.Domain),
		Type:           measurement.TypeBeacon,
		IncludeProb:    0.95,
		VolatileParams: []string{"sid", "t"},
		LatencyMS:      10 + b.rng.Intn(25),
		SetCookies: []CookieSpec{{
			Name: "uid", MaxAge: 86400 * 365, Secure: true, SameSite: "None",
			VolatileName:  b.rng.Float64() < 0.04,
			VolatileAttrs: b.rng.Float64() < 0.02,
		}},
	}
	if b.rng.Float64() < 0.45 {
		beacon.URL = fmt.Sprintf("https://%s/track/%s/event", tr.Domain, VolatilePathMarker)
		beacon.VolatilePath = true
	}
	script.Children = append(script.Children, beacon)
	// Engagement beacons exist only under user interaction — the §4.4
	// tracker deficit of the NoAction profile.
	if b.rng.Float64() < 0.8 {
		script.Children = append(script.Children, &Resource{
			ID:             b.id("trscroll"),
			URL:            fmt.Sprintf("https://%s/track/scroll", tr.Domain),
			Type:           measurement.TypeBeacon,
			IncludeProb:    0.9,
			Lazy:           true,
			VolatileParams: []string{"sid", "depth"},
			LatencyMS:      10 + b.rng.Intn(20),
			SetCookies: []CookieSpec{{
				Name: "eng", MaxAge: 86400 * 7, SameSite: "Lax",
			}},
		})
	}
	if b.rng.Float64() < 0.35 {
		script.Children = append(script.Children, &Resource{
			ID:             b.id("trheart"),
			URL:            fmt.Sprintf("https://%s/track/heartbeat", tr.Domain),
			Type:           measurement.TypeBeacon,
			IncludeProb:    0.85,
			Lazy:           true,
			VolatileParams: []string{"sid"},
			LatencyMS:      10 + b.rng.Intn(20),
		})
	}
	if b.rng.Float64() < 0.75 {
		script.Children = append(script.Children, &Resource{
			ID:             b.id("trpixel"),
			URL:            fmt.Sprintf("https://%s/pixel.gif", tr.Domain),
			Type:           measurement.TypeImage,
			IncludeProb:    0.8,
			Lazy:           b.rng.Float64() < 0.5,
			VolatileParams: []string{"uid"},
			LatencyMS:      8 + b.rng.Intn(20),
		})
	}
	// Trackers load partner trackers (tag piggybacking), extending the
	// dependency chain — §5.3: 65% of tracking requests are triggered by
	// other trackers.
	if chainDepth < 2 && b.rng.Float64() < 0.2 {
		partner := b.u.trackers[b.rng.Intn(len(b.u.trackers))]
		if partner != tr {
			script.Children = append(script.Children, b.trackerBundle(partner, chainDepth+1))
		}
	}
	cfgURL := fmt.Sprintf("https://%s/config/site.json", tr.Domain)
	if b.rng.Float64() < 0.8 {
		script.Children = append(script.Children, &Resource{
			ID:          b.id("trcfg"),
			URL:         cfgURL,
			Type:        measurement.TypeXHR,
			IncludeProb: 0.7,
			LatencyMS:   20 + b.rng.Intn(50),
		})
	}
	// Feature-gated measurement modules. The v2 module re-fetches the
	// shared config when the base script has not (another parent flip).
	if b.rng.Float64() < 0.3 {
		v2 := &Resource{
			ID:          b.id("trv2"),
			URL:         fmt.Sprintf("https://%s/js/v2/metrics.js", tr.Domain),
			Type:        measurement.TypeScript,
			IncludeProb: 1,
			MinVersion:  90,
			LatencyMS:   20 + b.rng.Intn(40),
		}
		v2.Children = append(v2.Children, &Resource{
			ID:          b.id("trcfgdup"),
			URL:         cfgURL,
			Type:        measurement.TypeXHR,
			IncludeProb: 0.6,
			LatencyMS:   20 + b.rng.Intn(50),
		})
		script.Children = append(script.Children, v2)
	}
	if b.rng.Float64() < 0.15 {
		script.Children = append(script.Children, &Resource{
			ID:          b.id("trlegacy"),
			URL:         fmt.Sprintf("https://%s/js/legacy/metrics.js", tr.Domain),
			Type:        measurement.TypeScript,
			IncludeProb: 1,
			MaxVersion:  89,
			LatencyMS:   20 + b.rng.Intn(40),
		})
	}
	// Cookie-sync redirect chain through a partner: each hop is a tree
	// node, pushing tracking content deeper (§4.1, §5.3).
	if b.rng.Float64() < 0.35 && len(b.u.trackers) > 2 {
		via := []string{fmt.Sprintf("https://%s/sync?partner=init", tr.Domain)}
		if b.rng.Float64() < 0.4 {
			partner := b.u.trackers[b.rng.Intn(len(b.u.trackers))]
			via = append(via, fmt.Sprintf("https://%s/sync?uid=", partner.Domain))
		}
		final := b.u.trackers[b.rng.Intn(len(b.u.trackers))]
		script.Children = append(script.Children, &Resource{
			ID:             b.id("trsync"),
			URL:            fmt.Sprintf("https://%s/track/syncdone", final.Domain),
			Type:           measurement.TypeImage,
			IncludeProb:    0.8,
			VolatileParams: []string{"uid"},
			RedirectVia:    via,
			LatencyMS:      15 + b.rng.Intn(30),
			SetCookies: []CookieSpec{{
				Name: "syncid", MaxAge: 86400 * 180, Secure: true, SameSite: "None",
				VolatileName: b.rng.Float64() < 0.04,
			}},
		})
	}
	// Live-measurement web socket.
	if b.rng.Float64() < 0.12 {
		script.Children = append(script.Children, &Resource{
			ID:          b.id("trws"),
			URL:         fmt.Sprintf("wss://%s/live", tr.Domain),
			Type:        measurement.TypeWebSocket,
			IncludeProb: 0.9,
			LatencyMS:   30 + b.rng.Intn(40),
		})
	}
	// Bot detection: a GUI-check beacon, rare (headless mode has no
	// significant effect in the paper).
	if b.rng.Float64() < 0.05 {
		script.Children = append(script.Children, &Resource{
			ID:          b.id("trgui"),
			URL:         fmt.Sprintf("https://%s/track/env", tr.Domain),
			Type:        measurement.TypeBeacon,
			IncludeProb: 0.9,
			GUIOnly:     true,
			LatencyMS:   10 + b.rng.Intn(20),
		})
	}
	return script
}

// addAdSlots embeds ad slots. Each ad network contributes one tag script;
// slots hang beneath it as iframes whose content is chosen per visit from a
// set of creatives (the auction). Below-the-fold slots are lazy — the
// dominant source of the NoAction profile's smaller trees (§4.4).
func (b *pageBuilder) addAdSlots(root *Resource, slots int) {
	if slots <= 0 {
		return
	}
	tagByNetwork := make(map[*Service]*Resource)
	for i := 0; i < slots; i++ {
		adnet := b.p.adNetworks[b.rng.Intn(len(b.p.adNetworks))]
		tag := tagByNetwork[adnet]
		if tag == nil {
			tag = &Resource{
				ID:          b.id("adtag"),
				URL:         fmt.Sprintf("https://%s/js/adtag.js", adnet.Domain),
				Type:        measurement.TypeScript,
				IncludeProb: 1,
				LatencyMS:   30 + b.rng.Intn(70),
			}
			tagByNetwork[adnet] = tag
			root.Children = append(root.Children, tag)
		}
		lazySlot := b.rng.Float64() < 0.85
		if i == 0 {
			lazySlot = b.rng.Float64() < 0.3
		}
		// Bid request precedes the frame.
		tag.Children = append(tag.Children, &Resource{
			ID:             b.id("adbid"),
			URL:            fmt.Sprintf("https://%s/bid", adnet.Domain),
			Type:           measurement.TypeXHR,
			IncludeProb:    0.95,
			Lazy:           lazySlot,
			VolatileParams: []string{"slot", "auction"},
			LatencyMS:      40 + b.rng.Intn(120),
		})
		frame := &Resource{
			ID:          b.id("adframe"),
			URL:         fmt.Sprintf("https://%s/frame/slot-%d", adnet.Domain, i),
			Type:        measurement.TypeSubFrame,
			IncludeProb: 0.85, // fill rate
			Lazy:        lazySlot,
			LatencyMS:   100 + b.rng.Intn(200),
			StallProb:   0.015,
			StallMS:     15000 + b.rng.Intn(10000),
		}
		// Impression and viewability pixels load directly inside the frame
		// document (parser-inserted → the frame is their parent; §5.3's
		// 34% of tracker parents are subframes).
		frame.Children = append(frame.Children, &Resource{
			ID:             b.id("adimp"),
			URL:            fmt.Sprintf("https://%s/track/imp", adnet.Domain),
			Type:           measurement.TypeImage,
			IncludeProb:    0.95,
			VolatileParams: []string{"imp"},
			LatencyMS:      8 + b.rng.Intn(20),
		})
		for v := 0; v < 1; v++ {
			vtr := b.u.trackers[b.rng.Intn(len(b.u.trackers))]
			frame.Children = append(frame.Children, &Resource{
				ID:             b.id("advwpx"),
				URL:            fmt.Sprintf("https://%s/track/view", vtr.Domain),
				Type:           measurement.TypeImage,
				IncludeProb:    0.85,
				VolatileParams: []string{"slot"},
				LatencyMS:      8 + b.rng.Intn(20),
			})
		}
		nCreatives := 2 + b.rng.Intn(2)
		for c := 0; c < nCreatives; c++ {
			frame.Variants = append(frame.Variants, b.creative(adnet))
		}
		tag.Children = append(tag.Children, frame)
	}
}

// creative builds one ad creative bundle hosted on a random ad host.
func (b *pageBuilder) creative(adnet *Service) []*Resource {
	host := b.u.adHosts[b.rng.Intn(len(b.u.adHosts))]
	volatile := b.rng.Float64() < 0.45
	base := fmt.Sprintf("https://%s/creative/c%05d", host.Domain, b.rng.Intn(100000))
	if volatile {
		base = fmt.Sprintf("https://%s/creative/%s", host.Domain, VolatilePathMarker)
	}
	script := &Resource{
		ID:           b.id("cradjs"),
		URL:          base + "/ad.js",
		Type:         measurement.TypeScript,
		IncludeProb:  1,
		VolatilePath: volatile,
		LatencyMS:    25 + b.rng.Intn(60),
	}
	// Creative artwork comes from the host's stable asset library: the
	// same image URL recurs under whichever creative script references it,
	// so artwork nodes keep their identity while their parents rotate.
	nImgs := 1 + b.rng.Intn(3)
	for j := 0; j < nImgs; j++ {
		script.Children = append(script.Children, &Resource{
			ID:          b.id("crimg"),
			URL:         fmt.Sprintf("https://%s/library/img-%03d.jpg", host.Domain, b.rng.Intn(25)),
			Type:        measurement.TypeImage,
			IncludeProb: 0.97,
			LatencyMS:   15 + b.rng.Intn(40),
		})
	}
	// Click/impression tracking back to the ad network.
	script.Children = append(script.Children, &Resource{
		ID:             b.id("crtrk"),
		URL:            fmt.Sprintf("https://%s/track/click", adnet.Domain),
		Type:           measurement.TypeBeacon,
		IncludeProb:    0.9,
		VolatileParams: []string{"imp"},
		LatencyMS:      10 + b.rng.Intn(20),
	})
	// Viewability measurement by one of the site's own trackers: the same
	// pixel URL recurs beneath whichever creative wins the auction, so its
	// attributed parent flips between visits.
	if len(b.p.trackers) > 0 && b.rng.Float64() < 0.5 {
		tr := b.p.trackers[b.rng.Intn(len(b.p.trackers))]
		script.Children = append(script.Children, &Resource{
			ID:             b.id("crview"),
			URL:            fmt.Sprintf("https://%s/pixel.gif", tr.Domain),
			Type:           measurement.TypeImage,
			IncludeProb:    0.85,
			VolatileParams: []string{"cid"},
			LatencyMS:      8 + b.rng.Intn(20),
			SetCookies: []CookieSpec{{
				Name: "vw", MaxAge: 86400 * 30, Secure: true, SameSite: "None",
				VolatileName: b.rng.Float64() < 0.08,
			}},
		})
	}
	// Some creatives nest further frames (rich media), deepening the tree.
	if b.rng.Float64() < 0.2 {
		script.Children = append(script.Children, b.nestedAdFrame(adnet, 0))
	}
	// CSP violation reports fire rarely and unpredictably (Table 4b's
	// least-similar resource type).
	csp := &Resource{
		ID:          b.id("crcsp"),
		URL:         fmt.Sprintf("https://%s/csp-report", b.p.domain),
		Type:        measurement.TypeCSPReport,
		IncludeProb: 0.08,
		LatencyMS:   5 + b.rng.Intn(10),
	}
	script.Children = append(script.Children, csp)
	return []*Resource{script}
}

// nestedAdFrame builds a rich-media frame; level bounds the recursion —
// rich media occasionally nests two or three frames deep, producing the
// long depth tail of Fig. 1.
func (b *pageBuilder) nestedAdFrame(adnet *Service, level int) *Resource {
	inner := b.u.adHosts[b.rng.Intn(len(b.u.adHosts))]
	volatile := b.rng.Float64() < 0.4
	base := fmt.Sprintf("https://%s/inner/f%04d", inner.Domain, b.rng.Intn(10000))
	if volatile {
		base = fmt.Sprintf("https://%s/inner/%s", inner.Domain, VolatilePathMarker)
	}
	sub := &Resource{
		ID:           b.id("crsub"),
		URL:          base + "/frame",
		Type:         measurement.TypeSubFrame,
		IncludeProb:  0.8,
		VolatilePath: volatile,
		LatencyMS:    80 + b.rng.Intn(150),
	}
	for j := 0; j < 1+b.rng.Intn(2); j++ {
		sub.Children = append(sub.Children, &Resource{
			ID:           b.id("crsubimg"),
			URL:          fmt.Sprintf("%s/img-%d.png", base, j),
			Type:         measurement.TypeImage,
			IncludeProb:  0.95,
			VolatilePath: volatile,
			LatencyMS:    15 + b.rng.Intn(30),
		})
	}
	sub.Children = append(sub.Children, &Resource{
		ID:             b.id("crsubtrk"),
		URL:            fmt.Sprintf("https://%s/track/nested", adnet.Domain),
		Type:           measurement.TypeBeacon,
		IncludeProb:    0.85,
		VolatileParams: []string{"imp"},
		LatencyMS:      10 + b.rng.Intn(20),
	})
	if level < 2 && b.rng.Float64() < 0.3 {
		sub.Children = append(sub.Children, b.nestedAdFrame(adnet, level+1))
	}
	return sub
}

func (b *pageBuilder) addSocialWidget(root *Resource) {
	soc := b.p.social
	script := &Resource{
		ID:          b.id("socjs"),
		URL:         fmt.Sprintf("https://%s/widget.js", soc.Domain),
		Type:        measurement.TypeScript,
		IncludeProb: 1,
		LatencyMS:   25 + b.rng.Intn(60),
	}
	frame := &Resource{
		ID:          b.id("socframe"),
		URL:         fmt.Sprintf("https://%s/embed/feed", soc.Domain),
		Type:        measurement.TypeSubFrame,
		IncludeProb: 0.95,
		Lazy:        b.rng.Float64() < 0.6,
		LatencyMS:   80 + b.rng.Intn(150),
	}
	for j := 0; j < 2+b.rng.Intn(3); j++ {
		frame.Children = append(frame.Children, &Resource{
			ID:          b.id("socimg"),
			URL:         fmt.Sprintf("https://%s/media/post-%03d.jpg", soc.Domain, b.rng.Intn(500)),
			Type:        measurement.TypeImage,
			IncludeProb: 0.7, // feed content rotates
			LatencyMS:   15 + b.rng.Intn(40),
		})
	}
	frame.Children = append(frame.Children, &Resource{
		ID:             b.id("socxhr"),
		URL:            fmt.Sprintf("https://%s/api/feed", soc.Domain),
		Type:           measurement.TypeXHR,
		IncludeProb:    0.95,
		VolatileParams: []string{"cursor"},
		LatencyMS:      30 + b.rng.Intn(80),
	})
	script.Children = append(script.Children, frame)
	root.Children = append(root.Children, script)
}

func (b *pageBuilder) addCMP(root *Resource) {
	cmp := b.p.cmp
	script := &Resource{
		ID:          b.id("cmpjs"),
		URL:         fmt.Sprintf("https://%s/cmp.js", cmp.Domain),
		Type:        measurement.TypeScript,
		IncludeProb: 1,
		LatencyMS:   20 + b.rng.Intn(40),
	}
	script.Children = append(script.Children, &Resource{
		ID:          b.id("cmpcfg"),
		URL:         fmt.Sprintf("https://%s/consent/config.json", cmp.Domain),
		Type:        measurement.TypeXHR,
		IncludeProb: 0.98,
		LatencyMS:   25 + b.rng.Intn(60),
		SetCookies: []CookieSpec{{
			Name: "euconsent", MaxAge: 86400 * 365, SameSite: "Lax",
		}},
	})
	root.Children = append(root.Children, script)
}
