package webgen

import (
	"testing"

	"webmeasure/internal/tranco"
)

func epochEntry(i int) tranco.Entry {
	return tranco.Entry{Rank: i, Site: nameFor(i) + "-epoch.example"}
}

func TestGenerateSiteAtEpochZeroMatchesBase(t *testing.T) {
	u := testUniverse()
	e := epochEntry(3)
	a, b := u.GenerateSite(e), u.GenerateSiteAt(e, 0)
	if a.Landing.Seed != b.Landing.Seed || len(a.Pages) != len(b.Pages) {
		t.Error("epoch 0 must equal the base site")
	}
}

func TestGenerateSiteAtDeterministic(t *testing.T) {
	u := testUniverse()
	e := epochEntry(5)
	a, b := u.GenerateSiteAt(e, 3), u.GenerateSiteAt(e, 3)
	if len(a.Pages) != len(b.Pages) || a.Landing.Seed != b.Landing.Seed {
		t.Fatal("epochs must be deterministic")
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || a.Pages[i].Seed != b.Pages[i].Seed {
			t.Fatalf("page %d differs across identical generations", i)
		}
	}
}

func TestEpochChurnsContent(t *testing.T) {
	u := testUniverse()
	var churnedPages, churnedCounts, trials int
	for i := 1; i <= 25; i++ {
		e := epochEntry(i)
		base := u.GenerateSiteAt(e, 0)
		later := u.GenerateSiteAt(e, 2)
		if base.Unreachable || len(base.Pages) < 3 {
			continue
		}
		trials++
		if len(later.Pages) != len(base.Pages) {
			churnedCounts++
		}
		// Same-URL pages whose seed changed were re-edited.
		baseByURL := map[string]*Page{}
		for _, p := range base.Pages {
			baseByURL[p.URL] = p
		}
		for _, p := range later.Pages {
			if bp := baseByURL[p.URL]; bp != nil && bp.Seed != p.Seed {
				churnedPages++
			}
		}
	}
	if trials == 0 {
		t.Skip("no usable sites")
	}
	if churnedPages == 0 {
		t.Error("no page content churned across epochs")
	}
	if churnedCounts == 0 {
		t.Error("no page turnover across epochs")
	}
}

func TestEpochPreservesIdentity(t *testing.T) {
	u := testUniverse()
	e := epochEntry(7)
	base := u.GenerateSiteAt(e, 0)
	later := u.GenerateSiteAt(e, 4)
	if base.Unreachable != later.Unreachable || base.Domain != later.Domain {
		t.Fatal("site identity must survive epochs")
	}
	// Surviving pages keep their URLs.
	baseURLs := map[string]bool{}
	for _, p := range base.Pages {
		baseURLs[p.URL] = true
	}
	kept := 0
	for _, p := range later.Pages {
		if baseURLs[p.URL] {
			kept++
		}
	}
	if len(base.Pages) > 3 && kept == 0 {
		t.Error("no page URLs survived 4 epochs — churn too aggressive")
	}
}

func TestEpochDriftGrowsWithDistance(t *testing.T) {
	u := testUniverse()
	// Average page-URL overlap should shrink as epochs advance.
	overlap := func(epoch int) float64 {
		var total, shared int
		for i := 1; i <= 20; i++ {
			e := epochEntry(i)
			base := u.GenerateSiteAt(e, 0)
			later := u.GenerateSiteAt(e, epoch)
			if base.Unreachable || len(base.Pages) == 0 {
				continue
			}
			baseURLs := map[string]bool{}
			for _, p := range base.Pages {
				baseURLs[p.URL] = true
				total++
			}
			for _, p := range later.Pages {
				if baseURLs[p.URL] {
					shared++
				}
			}
		}
		if total == 0 {
			return 1
		}
		return float64(shared) / float64(total)
	}
	near, far := overlap(1), overlap(6)
	if far > near {
		t.Errorf("drift must grow with epoch distance: overlap e1=%.2f e6=%.2f", near, far)
	}
}
