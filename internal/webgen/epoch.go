package webgen

import (
	"fmt"
	"math/rand"

	"webmeasure/internal/tranco"
)

// The paper compares a ten-month-old browser against a current one to
// "simulate differences one would face when comparing current results to
// ones from previous studies" (§3.1.1) — but notes the web itself changes
// over time. GenerateSiteAt models that second axis: the same site at a
// later epoch keeps its identity (domain, rough structure, third-party
// relationships) while churning the parts that change in the wild —
// editorial content turns over, a tracker gets swapped, pages are added
// and retired. Epoch 0 is identical to GenerateSite.

// epochChurn tunes how much a site changes per epoch step.
const (
	// pageUpdateProb is the chance a given page's content was re-edited
	// in a given epoch (new images/articles under the same URL).
	pageUpdateProb = 0.45
	// trackerSwapProb is the chance a site swapped one tracker per epoch.
	trackerSwapProb = 0.3
	// pageTurnoverProb is the chance the site added/removed a page.
	pageTurnoverProb = 0.5
)

// GenerateSiteAt builds the site as it exists at the given epoch ≥ 0.
// Deterministic in (seed, entry, epoch); epoch 0 equals GenerateSite.
func (u *Universe) GenerateSiteAt(entry tranco.Entry, epoch int) *Site {
	if epoch <= 0 {
		return u.GenerateSite(entry)
	}
	base := u.GenerateSite(entry)
	if base.Unreachable {
		return base
	}

	seed := mix(uint64(u.cfg.Seed), hash64("site", entry.Site))
	rng := rand.New(rand.NewSource(int64(seed)))
	_ = rng.Float64() // consume the unreachable roll, as GenerateSite does
	profile := buildSiteProfile(u, rng, entry.Site, entry.Rank)

	// Accumulate churn per epoch step so drift grows with distance.
	updated := map[int]int{} // page index → latest epoch it was edited
	removed := map[int]bool{}
	extraPages := 0
	for e := 1; e <= epoch; e++ {
		erng := rand.New(rand.NewSource(int64(mix(seed, uint64(e)))))
		// Swap one tracker for a different one.
		if len(profile.trackers) > 0 && erng.Float64() < trackerSwapProb {
			profile.trackers[erng.Intn(len(profile.trackers))] =
				u.trackers[erng.Intn(len(u.trackers))]
		}
		// Content updates.
		for i := range base.Pages {
			if erng.Float64() < pageUpdateProb {
				updated[i] = e
			}
		}
		if erng.Float64() < pageUpdateProb {
			updated[-1] = e // landing page
		}
		// Page turnover.
		if erng.Float64() < pageTurnoverProb {
			if erng.Float64() < 0.5 && len(base.Pages) > len(removed)+1 {
				// Retire a random page.
				for {
					i := erng.Intn(len(base.Pages))
					if !removed[i] {
						removed[i] = true
						break
					}
				}
			} else {
				extraPages++
			}
		}
	}

	s := &Site{Domain: base.Domain, Rank: base.Rank}
	var links []string
	regen := func(url, id string, e int, pageLinks []string) *Page {
		pid := id
		if e > 0 {
			pid = fmt.Sprintf("%s@e%d", id, e)
		}
		return u.generatePage(profile, url, pid, pageLinks)
	}
	for i := range base.Pages {
		if removed[i] {
			continue
		}
		links = append(links, base.Pages[i].URL)
	}
	for j := 0; j < extraPages; j++ {
		links = append(links, fmt.Sprintf("https://%s/page-%02d", s.Domain, len(base.Pages)+j+1))
	}
	s.Landing = regen(fmt.Sprintf("https://%s/", s.Domain), "landing", updated[-1], links)

	idx := 0
	for i := range base.Pages {
		if removed[i] {
			continue
		}
		s.Pages = append(s.Pages, regen(base.Pages[i].URL, fmt.Sprintf("p%02d", i+1), updated[i], crossLinks(links, idx)))
		idx++
	}
	for j := 0; j < extraPages; j++ {
		url := fmt.Sprintf("https://%s/page-%02d", s.Domain, len(base.Pages)+j+1)
		s.Pages = append(s.Pages, regen(url, fmt.Sprintf("p%02d", len(base.Pages)+j+1), epoch, crossLinks(links, idx)))
		idx++
	}
	return s
}

// crossLinks gives a subpage a few sibling links, as GenerateSite does.
func crossLinks(links []string, i int) []string {
	if len(links) < 2 {
		return nil
	}
	var out []string
	for j := 1; j <= 2; j++ {
		out = append(out, links[(i+j)%len(links)])
	}
	return out
}
