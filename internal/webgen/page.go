package webgen

import "math/rand"

// siteProfile captures the site-stable choices shared by every page of a
// site: which third parties it embeds and how ad-heavy it is.
type siteProfile struct {
	u      *Universe
	domain string
	seed   uint64

	cdns       []*Service
	imageCDN   *Service // nil = images served first-party
	tagManager *Service
	trackers   []*Service
	adNetworks []*Service
	social     *Service
	cmp        *Service

	adSlotsBase  int     // base ad slots per page
	imageRich    float64 // multiplier on image counts
	portal       bool    // heavy-tail page factory (news portals)
	fpAnalytics  bool    // first-party /track/ analytics endpoint
	pageVariance float64 // how much pages differ from each other
}

// buildSiteProfile derives the per-site embedding profile.
func buildSiteProfile(u *Universe, rng *rand.Rand, domain string, rank int) *siteProfile {
	p := &siteProfile{
		u:      u,
		domain: domain,
		seed:   mix(uint64(u.cfg.Seed), hash64("siteprofile", domain)),
	}
	p.cdns = pick(rng, u.cdns, 1+rng.Intn(3))
	// Half the sites serve their static assets from a third-party CDN:
	// stable content in a third-party context.
	if rng.Float64() < 0.5 {
		p.imageCDN = p.cdns[rng.Intn(len(p.cdns))]
	}
	if rng.Float64() < 0.7 {
		p.tagManager = u.tagManagers[rng.Intn(len(u.tagManagers))]
	}
	// ~12% of sites embed no analytics at all; the rest use 2–5 trackers.
	if rng.Float64() < 0.12 {
		p.tagManager = nil
	} else {
		p.trackers = pick(rng, u.trackers, 2+rng.Intn(3))
	}
	if rng.Float64() < 0.6 {
		p.adNetworks = pick(rng, u.adNetworks, 1+rng.Intn(2))
	}
	if rng.Float64() < 0.35 {
		p.social = u.social[rng.Intn(len(u.social))]
	}
	if rng.Float64() < 0.5 {
		p.cmp = u.cmps[rng.Intn(len(u.cmps))]
	}
	p.adSlotsBase = rng.Intn(3)
	// Popular sites skew larger (Appendix F: higher-ranked sites have more
	// nodes), with substantial overlap between buckets.
	p.imageRich = 0.8 + rng.Float64()
	if rank <= 50 {
		p.imageRich += 0.4
	}
	p.portal = rng.Float64() < 0.04
	p.fpAnalytics = rng.Float64() < 0.3
	p.pageVariance = rng.Float64()
	return p
}
