package webgen

import (
	"fmt"
	"math/rand"
	"sort"
)

// Real ad-tech organizations operate many domains (an ad exchange, a
// metrics host, a CDN). Studies that count *domains* therefore overstate
// ecosystem churn compared to studies that count *entities* — an analysis
// axis related work (e.g. tracker-radar-style entity maps) relies on.
// The universe groups its services into organizations deterministically.

// Organization is one company owning one or more service domains.
type Organization struct {
	Name    string
	Domains []string
}

// Organizations returns the universe's entity map, sorted by name. Built
// lazily and cached; safe for concurrent use after the first call from a
// single goroutine (New pre-builds it).
func (u *Universe) Organizations() []*Organization {
	return u.orgs
}

// OrganizationOf returns the organization name owning a service domain,
// or "" when the domain belongs to no known organization (first parties,
// unknown hosts).
func (u *Universe) OrganizationOf(domain string) string {
	return u.orgByDomain[domain]
}

// buildEntities groups services into organizations: a third of the
// organizations are conglomerates owning several domains across service
// kinds (the GAFA-like tail), the rest are single-domain outfits.
func (u *Universe) buildEntities(rng *rand.Rand) {
	services := u.AllServices()
	// Shuffle deterministically, then carve into organizations.
	perm := rng.Perm(len(services))
	u.orgByDomain = make(map[string]string, len(services))

	i := 0
	orgIdx := 0
	for i < len(services) {
		size := 1
		if rng.Float64() < 0.3 {
			size = 2 + rng.Intn(4) // conglomerate: 2–5 domains
		}
		if size > len(services)-i {
			size = len(services) - i
		}
		org := &Organization{Name: fmt.Sprintf("org-%03d", orgIdx)}
		for j := 0; j < size; j++ {
			d := services[perm[i+j]].Domain
			org.Domains = append(org.Domains, d)
			u.orgByDomain[d] = org.Name
		}
		sort.Strings(org.Domains)
		u.orgs = append(u.orgs, org)
		orgIdx++
		i += size
	}
	sort.Slice(u.orgs, func(a, b int) bool { return u.orgs[a].Name < u.orgs[b].Name })
}
