// Package webgen generates the synthetic web the experiment crawls: a
// ranked population of sites whose pages embed first-party content and a
// shared third-party ecosystem (ad networks, trackers, CDNs, tag managers,
// social widgets, consent platforms). Pages are *generative programs*: a
// spec tree of resources with stable structure (decided at generation time
// from the page seed) and volatile behaviour (probabilistic inclusion, ad
// rotation, session identifiers, lazy loading) resolved per visit by the
// browser simulator. This separation is what lets identical measurement
// setups observe different trees — the paper's central phenomenon.
package webgen

import "hash/fnv"

// hash64 mixes the given parts into a 64-bit value with FNV-1a. It is the
// single source of derived randomness so that every structure is a pure
// function of the master seed.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// mix folds extra 64-bit state into a hash (used to combine page seeds with
// visit nonces).
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	// SplitMix64 finalizer for avalanche.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a 64-bit hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// RollProb returns a deterministic pseudo-random value in [0,1) for a node
// identified by id within a visit identified by (pageSeed, nonce) and a
// purpose label. The browser simulator uses it for inclusion rolls so that
// decisions are order-independent.
func RollProb(pageSeed uint64, nonce uint64, id, purpose string) float64 {
	return unitFloat(mix(mix(pageSeed, nonce), hash64(id, purpose)))
}

// RollChoice returns a deterministic choice in [0, n) under the same scheme.
func RollChoice(pageSeed uint64, nonce uint64, id, purpose string, n int) int {
	if n <= 0 {
		return 0
	}
	return int(mix(mix(pageSeed, nonce), hash64(id, purpose)) % uint64(n))
}

// NonceFor derives a visit nonce from a crawl seed, a profile name, and a
// page URL. Distinct profiles always receive distinct nonces: they are
// distinct browser sessions observing distinct server-side state.
func NonceFor(seed uint64, profile, pageURL string) uint64 {
	return mix(seed, hash64("nonce", profile, pageURL))
}

// RollToken returns a short deterministic hex-like token for session
// identifiers and volatile path segments.
func RollToken(pageSeed uint64, nonce uint64, id, purpose string) string {
	h := mix(mix(pageSeed, nonce), hash64(id, purpose))
	const digits = "0123456789abcdef"
	buf := make([]byte, 8)
	for i := range buf {
		buf[i] = digits[h&0xf]
		h >>= 4
	}
	return string(buf)
}
