package webgen

import (
	"strings"
	"testing"

	"webmeasure/internal/filterlist"
	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
	"webmeasure/internal/urlutil"
)

func testUniverse() *Universe {
	return New(DefaultConfig(42))
}

func TestUniverseDeterministic(t *testing.T) {
	a, b := New(DefaultConfig(7)), New(DefaultConfig(7))
	sa, sb := a.AllServices(), b.AllServices()
	if len(sa) != len(sb) || len(sa) == 0 {
		t.Fatalf("service counts: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if *sa[i] != *sb[i] {
			t.Fatalf("service %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	c := New(DefaultConfig(8))
	if c.AllServices()[0].Domain == sa[0].Domain {
		t.Log("note: first service domain equal across seeds (allowed, names are few)")
	}
}

func TestUniverseServiceCounts(t *testing.T) {
	u := testUniverse()
	cfg := u.Config()
	checks := []struct {
		kind ServiceKind
		want int
	}{
		{KindAdNetwork, cfg.AdNetworks},
		{KindTracker, cfg.Trackers},
		{KindCDN, cfg.CDNs},
		{KindSocial, cfg.Social},
		{KindTagManager, cfg.TagManagers},
		{KindCMP, cfg.CMPs},
		{KindAdHost, cfg.AdHosts},
	}
	for _, c := range checks {
		if got := len(u.Services(c.kind)); got != c.want {
			t.Errorf("%v: %d services, want %d", c.kind, got, c.want)
		}
	}
	if u.Services(ServiceKind(99)) != nil {
		t.Error("unknown kind should return nil")
	}
}

func TestServiceDomainsUniqueAndRegistrable(t *testing.T) {
	u := testUniverse()
	seen := map[string]bool{}
	for _, s := range u.AllServices() {
		if seen[s.Domain] {
			t.Errorf("duplicate service domain %q", s.Domain)
		}
		seen[s.Domain] = true
		if got := urlutil.Site("https://" + s.Domain + "/x"); got != s.Domain {
			t.Errorf("service domain %q is not registrable (site=%q)", s.Domain, got)
		}
	}
}

func TestTrackingFlags(t *testing.T) {
	u := testUniverse()
	for _, s := range u.Services(KindTracker) {
		if !s.Tracking {
			t.Errorf("tracker %q not flagged tracking", s.Domain)
		}
	}
	for _, s := range u.Services(KindCDN) {
		if s.Tracking {
			t.Errorf("CDN %q flagged tracking", s.Domain)
		}
	}
}

func TestFilterListMatchesEcosystem(t *testing.T) {
	u := testUniverse()
	list, skipped := filterlist.Parse(u.FilterListText())
	if skipped != 0 {
		t.Fatalf("filter list skipped %d rules", skipped)
	}
	tr := u.Services(KindTracker)[0]
	cdn := u.Services(KindCDN)[0]
	page := "https://news.example/article"
	if !list.Matches(filterlist.Request{URL: "https://" + tr.Domain + "/js/analytics.js", PageURL: page, Type: filterlist.TypeScript}) {
		t.Error("tracker script should match the generated list")
	}
	if !list.Matches(filterlist.Request{URL: "https://news.example/track/pageview?sid=", PageURL: page, Type: filterlist.TypePing}) {
		t.Error("generic /track/ rule should match first-party analytics")
	}
	if list.Matches(filterlist.Request{URL: "https://" + cdn.Domain + "/libs/lib-01/main.min.js", PageURL: page, Type: filterlist.TypeScript}) {
		t.Error("CDN library must not match")
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	u := testUniverse()
	e := tranco.Entry{Rank: 3, Site: "news-site.example"}
	a, b := u.GenerateSite(e), u.GenerateSite(e)
	if a.Domain != b.Domain || len(a.Pages) != len(b.Pages) {
		t.Fatalf("site shape differs: %d vs %d pages", len(a.Pages), len(b.Pages))
	}
	if a.Landing.Seed != b.Landing.Seed {
		t.Error("page seeds differ across generations")
	}
	if na, nb := a.Landing.CountResources(), b.Landing.CountResources(); na != nb {
		t.Errorf("landing resource counts differ: %d vs %d", na, nb)
	}
}

func TestGenerateSiteShape(t *testing.T) {
	u := testUniverse()
	s := u.GenerateSite(tranco.Entry{Rank: 10, Site: "shop-site.example"})
	if s.Landing == nil {
		t.Fatal("no landing page")
	}
	if s.Landing.URL != "https://shop-site.example/" {
		t.Errorf("landing URL = %q", s.Landing.URL)
	}
	if len(s.Pages) > 0 && len(s.Landing.Links) == 0 {
		t.Error("landing page must link some subpages")
	}
	if len(s.Landing.Links) > len(s.Pages) {
		t.Errorf("landing links (%d) exceed pages (%d)", len(s.Landing.Links), len(s.Pages))
	}
	pageURLs := map[string]bool{}
	for _, p := range s.Pages {
		pageURLs[p.URL] = true
	}
	for _, l := range s.Landing.Links {
		if !pageURLs[l] {
			t.Errorf("landing links to unknown page %q", l)
		}
	}
	for i, p := range s.Pages {
		if p.Site != s.Domain {
			t.Errorf("page %d site = %q", i, p.Site)
		}
		if !strings.HasPrefix(p.URL, "https://"+s.Domain+"/") {
			t.Errorf("page %d URL = %q not on site", i, p.URL)
		}
		if p.Root == nil || p.Root.Type != measurement.TypeMainFrame {
			t.Errorf("page %d root malformed", i)
		}
	}
	if got := len(s.AllPages()); got != len(s.Pages)+1 {
		t.Errorf("AllPages = %d", got)
	}
}

func TestPageSpecInvariants(t *testing.T) {
	u := testUniverse()
	var pages []*Page
	for _, site := range []string{"a-site.example", "b-site.example", "c-site.example"} {
		s := u.GenerateSite(tranco.Entry{Rank: 100, Site: site})
		pages = append(pages, s.AllPages()...)
	}
	for _, p := range pages {
		ids := map[string]bool{}
		var walk func(r *Resource)
		walk = func(r *Resource) {
			if ids[r.ID] {
				t.Fatalf("page %s: duplicate resource ID %q", p.URL, r.ID)
			}
			ids[r.ID] = true
			if r.IncludeProb < 0 || r.IncludeProb > 1 {
				t.Fatalf("page %s: node %s IncludeProb %v", p.URL, r.ID, r.IncludeProb)
			}
			if r.VolatilePath && !strings.Contains(r.URL, VolatilePathMarker) {
				t.Fatalf("page %s: node %s VolatilePath without marker: %q", p.URL, r.ID, r.URL)
			}
			if !r.VolatilePath && strings.Contains(r.URL, VolatilePathMarker) {
				t.Fatalf("page %s: node %s has marker but not volatile", p.URL, r.ID)
			}
			if len(r.Variants) > 0 && r.Type != measurement.TypeSubFrame {
				t.Fatalf("page %s: variants on non-frame node %s", p.URL, r.ID)
			}
			for _, c := range r.Children {
				walk(c)
			}
			for _, v := range r.Variants {
				for _, c := range v {
					walk(c)
				}
			}
		}
		walk(p.Root)
	}
}

func TestPageSizesPlausible(t *testing.T) {
	u := testUniverse()
	total, n := 0, 0
	for i := 0; i < 20; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i*25 + 1, Site: strings.Repeat("x", i%3+1) + "-size.example"})
		for _, p := range s.AllPages() {
			total += p.CountResources()
			n++
		}
	}
	avg := float64(total) / float64(n)
	// Spec nodes exceed observed nodes (variants + probabilistic pruning);
	// plausible band for an ~80-node average observed tree.
	if avg < 40 || avg > 400 {
		t.Errorf("average spec size %.1f outside plausible band [40, 400]", avg)
	}
}

func TestUnreachableSitesExist(t *testing.T) {
	u := testUniverse()
	count := 0
	for i := 0; i < 400; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i + 1, Site: strings.ToLower(strings.Repeat("q", i%5+1)) + nameFor(i) + ".example"})
		if s.Unreachable {
			count++
		}
	}
	if count == 0 || count > 30 {
		t.Errorf("unreachable sites = %d of 400, want ~1%%", count)
	}
}

func nameFor(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestRollsDeterministicAndUniform(t *testing.T) {
	if RollProb(1, 2, "a", "b") != RollProb(1, 2, "a", "b") {
		t.Error("RollProb not deterministic")
	}
	if RollProb(1, 2, "a", "b") == RollProb(1, 3, "a", "b") {
		t.Error("nonce should change the roll")
	}
	if RollToken(1, 2, "a", "b") != RollToken(1, 2, "a", "b") {
		t.Error("RollToken not deterministic")
	}
	if len(RollToken(1, 2, "a", "b")) != 8 {
		t.Error("token length")
	}
	// Crude uniformity check.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += RollProb(uint64(i), 0, "x", "u")
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Errorf("roll mean %v not ~0.5", mean)
	}
	if RollChoice(1, 2, "a", "b", 0) != 0 {
		t.Error("RollChoice(n=0) should be 0")
	}
	if c := RollChoice(1, 2, "a", "b", 5); c < 0 || c >= 5 {
		t.Errorf("RollChoice out of range: %d", c)
	}
}

func TestVolatilityKnobsPresent(t *testing.T) {
	u := testUniverse()
	var lazy, volatileParam, volatilePath, variants, redirects, guiOnly, verGated int
	for i := 0; i < 30; i++ {
		s := u.GenerateSite(tranco.Entry{Rank: i + 1, Site: nameFor(i) + "-knobs.example"})
		for _, p := range s.AllPages() {
			var walk func(r *Resource)
			walk = func(r *Resource) {
				if r.Lazy {
					lazy++
				}
				if len(r.VolatileParams) > 0 {
					volatileParam++
				}
				if r.VolatilePath {
					volatilePath++
				}
				if len(r.Variants) > 0 {
					variants++
				}
				if len(r.RedirectVia) > 0 {
					redirects++
				}
				if r.GUIOnly {
					guiOnly++
				}
				if r.MinVersion > 0 || r.MaxVersion > 0 {
					verGated++
				}
				for _, c := range r.Children {
					walk(c)
				}
				for _, v := range r.Variants {
					for _, c := range v {
						walk(c)
					}
				}
			}
			walk(p.Root)
		}
	}
	for name, c := range map[string]int{
		"lazy": lazy, "volatileParam": volatileParam, "volatilePath": volatilePath,
		"variants": variants, "redirects": redirects, "guiOnly": guiOnly, "verGated": verGated,
	} {
		if c == 0 {
			t.Errorf("volatility knob %q never used", name)
		}
	}
}

func TestPrivacyListExtendsCoverage(t *testing.T) {
	u := testUniverse()
	base, s1 := filterlist.Parse(u.FilterListText())
	privacy, s2 := filterlist.Parse(u.PrivacyListText())
	if s1 != 0 || s2 != 0 {
		t.Fatalf("skipped rules: %d %d", s1, s2)
	}
	combined := filterlist.Merge(base, privacy)
	page := "https://news.example/article"
	tm := u.Services(KindTagManager)[0]
	tmReq := filterlist.Request{URL: "https://" + tm.Domain + "/tm.js?id=GTM-0001", PageURL: page, Type: filterlist.TypeScript}
	if base.Matches(tmReq) {
		t.Error("base list should not target tag managers")
	}
	if !combined.Matches(tmReq) {
		t.Error("combined list should target tag managers")
	}
	// The base list's coverage is preserved.
	tr := u.Services(KindTracker)[0]
	if !combined.Matches(filterlist.Request{URL: "https://" + tr.Domain + "/pixel.gif", PageURL: page, Type: filterlist.TypeImage}) {
		t.Error("combined list lost base coverage")
	}
}

func TestOrganizations(t *testing.T) {
	u := testUniverse()
	orgs := u.Organizations()
	if len(orgs) == 0 {
		t.Fatal("no organizations built")
	}
	services := u.AllServices()
	covered := map[string]bool{}
	multi := 0
	for _, o := range orgs {
		if len(o.Domains) == 0 {
			t.Fatalf("organization %s owns no domains", o.Name)
		}
		if len(o.Domains) > 1 {
			multi++
		}
		for _, d := range o.Domains {
			if covered[d] {
				t.Fatalf("domain %s owned by two organizations", d)
			}
			covered[d] = true
			if u.OrganizationOf(d) != o.Name {
				t.Fatalf("OrganizationOf(%s) = %q, want %q", d, u.OrganizationOf(d), o.Name)
			}
		}
	}
	if len(covered) != len(services) {
		t.Errorf("entity map covers %d of %d services", len(covered), len(services))
	}
	if multi == 0 {
		t.Error("no conglomerates generated")
	}
	if u.OrganizationOf("unknown.example") != "" {
		t.Error("unknown domains must have no organization")
	}
	// Deterministic across generations.
	again := New(DefaultConfig(42))
	if again.OrganizationOf(services[0].Domain) != u.OrganizationOf(services[0].Domain) {
		t.Error("entity map not deterministic")
	}
}

func TestDescribe(t *testing.T) {
	u := testUniverse()
	var entries []tranco.Entry
	for i := 1; i <= 20; i++ {
		entries = append(entries, tranco.Entry{Rank: i, Site: nameFor(i) + "-desc.example"})
	}
	p := u.Describe(entries)
	if p.Sites != 20 || p.Pages == 0 {
		t.Fatalf("profile degenerate: %+v", p)
	}
	if p.SpecNodesPerPage.Mean < float64(p.SpecNodesPerPage.Min) ||
		p.SpecNodesPerPage.Mean > float64(p.SpecNodesPerPage.Max) {
		t.Errorf("mean outside [min,max]: %+v", p.SpecNodesPerPage)
	}
	for _, knob := range []struct {
		name string
		v    int
	}{
		{"lazy", p.LazyNodes}, {"volatile-param", p.VolatileParamNodes},
		{"volatile-path", p.VolatilePathNodes}, {"variants", p.VariantFrames},
		{"redirects", p.RedirectChains}, {"cookies", p.CookieSetters},
		{"version", p.VersionGated},
	} {
		if knob.v == 0 {
			t.Errorf("knob %s unused in profile", knob.name)
		}
	}
	if p.TypeCounts["script"] == 0 || p.TypeCounts["image"] == 0 {
		t.Errorf("type mix empty: %v", p.TypeCounts)
	}
	if p.ThirdPartyRefs == 0 {
		t.Error("no third-party services referenced")
	}
	var sb strings.Builder
	p.Write(&sb)
	if !strings.Contains(sb.String(), "universe profile") {
		t.Error("Write output malformed")
	}
}

func TestNonceForDistinctAcrossProfiles(t *testing.T) {
	// Distinct profiles must always see distinct nonces for the same page
	// (the Sim1/Sim2 phenomenon depends on it).
	pages := []string{"https://a.example/", "https://a.example/page-01", "https://b.example/"}
	profiles := []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"}
	for _, page := range pages {
		seen := map[uint64]string{}
		for _, p := range profiles {
			n := NonceFor(7, p, page)
			if prev, ok := seen[n]; ok {
				t.Fatalf("nonce collision between %s and %s on %s", prev, p, page)
			}
			seen[n] = p
		}
	}
	if NonceFor(7, "Sim1", pages[0]) == NonceFor(8, "Sim1", pages[0]) {
		t.Error("seed must change the nonce")
	}
}

func TestRollChoiceUniformity(t *testing.T) {
	const n = 5
	counts := make([]int, n)
	for i := 0; i < 20000; i++ {
		counts[RollChoice(uint64(i), 3, "node", "variant", n)]++
	}
	for c, got := range counts {
		if got < 3400 || got > 4600 {
			t.Errorf("choice %d drawn %d of 20000 (expected ~4000)", c, got)
		}
	}
}

func TestFilterListTextDeterministic(t *testing.T) {
	a, b := testUniverse().FilterListText(), testUniverse().FilterListText()
	if a != b {
		t.Error("filter list text not deterministic")
	}
	if testUniverse().PrivacyListText() != testUniverse().PrivacyListText() {
		t.Error("privacy list text not deterministic")
	}
}

func TestRenderHTMLEscaping(t *testing.T) {
	p := &Page{
		Site:  "x.example",
		URL:   `https://x.example/q?a=1&b="two"`,
		Root:  &Resource{ID: "root", URL: `https://x.example/q?a=1&b="two"`, Type: measurement.TypeMainFrame},
		Links: []string{`https://x.example/p?x=1&y=2`},
	}
	html := RenderHTML(p)
	if strings.Contains(html, `b="two"`) {
		t.Error("unescaped quotes in rendered HTML")
	}
	if !strings.Contains(html, "&amp;") {
		t.Error("ampersands not escaped")
	}
}
