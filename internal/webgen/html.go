package webgen

import (
	"fmt"
	"strings"

	"webmeasure/internal/measurement"
)

// RenderHTML materializes a page's document: the markup a crawler's link
// discovery pass actually parses (§3.1.2). The document references the
// page's depth-one resources with the appropriate tags and carries the
// first-party links to the site's subpages as anchors. Rendering is
// deterministic — the document reflects the page's *stable* structure; the
// per-visit volatile behaviour only exists in the traffic, exactly like a
// saved HTML file versus a live page load.
func RenderHTML(p *Page) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n<title>%s</title>\n", htmlEscape(p.URL))

	var bodyParts []string
	for _, r := range p.Root.Children {
		switch r.Type {
		case measurement.TypeStylesheet:
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", htmlEscape(r.URL))
		case measurement.TypeScript:
			fmt.Fprintf(&b, "<script src=\"%s\" async></script>\n", htmlEscape(r.URL))
		case measurement.TypeImage:
			attr := ""
			if r.Lazy {
				attr = " loading=\"lazy\""
			}
			bodyParts = append(bodyParts,
				fmt.Sprintf("<img src=\"%s\"%s alt=\"\">", htmlEscape(r.URL), attr))
		case measurement.TypeMedia:
			bodyParts = append(bodyParts,
				fmt.Sprintf("<video src=\"%s\" preload=\"none\"></video>", htmlEscape(r.URL)))
		case measurement.TypeText:
			bodyParts = append(bodyParts,
				fmt.Sprintf("<section data-src=\"%s\"><p>Lorem ipsum dolor sit amet.</p></section>", htmlEscape(r.URL)))
		}
	}
	b.WriteString("</head>\n<body>\n")
	b.WriteString("<nav>\n")
	for _, link := range p.Links {
		fmt.Fprintf(&b, "  <a href=\"%s\">%s</a>\n", htmlEscape(link), htmlEscape(linkLabel(link)))
	}
	b.WriteString("</nav>\n<main>\n")
	for _, part := range bodyParts {
		b.WriteString("  ")
		b.WriteString(part)
		b.WriteByte('\n')
	}
	b.WriteString("</main>\n</body>\n</html>\n")
	return b.String()
}

func linkLabel(link string) string {
	if i := strings.LastIndexByte(link, '/'); i >= 0 && i+1 < len(link) {
		return link[i+1:]
	}
	return link
}

var htmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func htmlEscape(s string) string { return htmlEscaper.Replace(s) }
