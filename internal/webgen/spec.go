package webgen

import "webmeasure/internal/measurement"

// Resource is one node of a page's generative spec. Structure that is
// stable across visits (which resources a page *can* load, their URLs and
// nesting) is fixed here at generation time; the fields below parameterize
// the per-visit volatility the browser simulator resolves.
type Resource struct {
	// ID uniquely identifies the node within its page and seeds all
	// per-visit rolls for it.
	ID string
	// URL is the resource URL template. It may contain the VolatilePath
	// marker (substituted per visit) and receives VolatileParams appended
	// as query parameters with per-visit values.
	URL string
	// Type is the resource's content-policy type.
	Type measurement.ResourceType

	// IncludeProb is the per-visit probability the resource loads given its
	// parent loaded (1 = always). This models ad fill rates, A/B tests, and
	// flaky third parties.
	IncludeProb float64
	// Lazy marks content loaded only after user interaction (Page
	// Down/Tab/End), e.g. below-the-fold ad slots and lazy images.
	Lazy bool
	// MinVersion/MaxVersion gate the resource on the browser version
	// (0 = unbounded). Models feature detection and legacy code paths.
	MinVersion int
	MaxVersion int
	// GUIOnly marks resources served only to browsers with a GUI
	// (bot-detection-gated content); kept rare, matching the paper's
	// finding that headless mode has no significant effect.
	GUIOnly bool

	// VolatileParams lists query parameter names that receive a fresh
	// value each visit (session IDs, cache busters). Normalization strips
	// the values, so these do not change node identity — they feed the
	// "40% of URLs" statistic.
	VolatileParams []string
	// VolatilePath, when true, substitutes a per-visit token for the
	// VolatilePathMarker in URL: the node is a different node in every
	// tree (unique-node population, §5.1).
	VolatilePath bool

	// RedirectVia lists intermediate URLs: the request for the first entry
	// HTTP-redirects along the chain and ends at URL. Each hop becomes a
	// tree node (cookie-sync chains).
	RedirectVia []string

	// SetCookies are cookies the response sets.
	SetCookies []CookieSpec

	// LatencyMS is the nominal load latency; the simulator adds jitter and
	// enforces the page timeout against the accumulated total.
	LatencyMS int
	// StallProb is the per-visit probability the resource stalls for
	// StallMS instead (slow ads; drives timeout divergence).
	StallProb float64
	StallMS   int

	// Children load after (and because of) this resource.
	Children []*Resource
	// Variants, when non-empty, is a set of alternative child bundles of
	// which exactly one is chosen per visit (ad auctions / rotation).
	Variants [][]*Resource
}

// VolatilePathMarker is the placeholder substituted per visit when
// VolatilePath is set.
const VolatilePathMarker = "{vtok}"

// CookieSpec describes a cookie a resource's response sets.
type CookieSpec struct {
	Name     string
	Domain   string // empty = host-only on the resource's host
	Path     string // empty = "/"
	Secure   bool
	HTTPOnly bool
	SameSite string
	MaxAge   int // seconds; 0 = session cookie
	// VolatileName appends a per-visit token to the cookie name (the
	// "_ga_<measurement-id>"-style cookies), so the cookie's (name,
	// domain, path) identity differs in every visit — the §5.2 finding
	// that only 32% of cookies appear in all profiles.
	VolatileName bool
	// VolatileAttrs flips the Secure/SameSite attributes with a small
	// per-visit probability, producing the paper's surprising observation
	// that even "hard-coded" attributes differ (§5.2, 0.2% of cookies).
	VolatileAttrs bool
}

// Page is one generated webpage.
type Page struct {
	Site string // registrable domain of the site
	URL  string
	// Seed drives all volatile rolls for visits to this page.
	Seed uint64
	// Root is the main document; its children are the page's depth-one
	// resources. Root.URL equals the page URL.
	Root *Resource
	// Links are same-site subpage URLs found on this page (crawler
	// discovery, §3.1.2).
	Links []string
}

// Site is one generated website.
type Site struct {
	Domain string
	Rank   int
	// Unreachable marks sites no human is meant to visit (CDN/ad-network
	// landing pages); every profile fails on them (§4 "Success of Crawling
	// Method").
	Unreachable bool
	// Landing is the landing page; Pages are the subpages reachable from
	// it (including none for link-poor sites).
	Landing *Page
	Pages   []*Page
}

// AllPages returns the landing page plus subpages.
func (s *Site) AllPages() []*Page {
	out := make([]*Page, 0, len(s.Pages)+1)
	out = append(out, s.Landing)
	out = append(out, s.Pages...)
	return out
}

// CountResources returns the total number of spec nodes in the page
// including the root, counting each variant bundle (diagnostic helper).
func (p *Page) CountResources() int {
	var walk func(r *Resource) int
	walk = func(r *Resource) int {
		n := 1
		for _, c := range r.Children {
			n += walk(c)
		}
		for _, v := range r.Variants {
			for _, c := range v {
				n += walk(c)
			}
		}
		return n
	}
	return walk(p.Root)
}
