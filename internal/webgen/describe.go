package webgen

import (
	"fmt"
	"io"
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
)

// UniverseProfile describes the statistical shape of a generated web —
// the calibration dashboard behind DESIGN.md §5. It is computed from spec
// trees (no visits), so it characterizes what the web *can* serve rather
// than what one measurement observed.
type UniverseProfile struct {
	Sites       int
	Unreachable int
	Pages       int

	// SpecNodesPerPage summarizes spec-tree sizes (larger than observed
	// trees: variants and probabilistic inclusion prune at render time).
	SpecNodesPerPage MinMeanMax
	// PagesPerSite summarizes subpage counts.
	PagesPerSite MinMeanMax

	// TypeCounts tallies spec nodes per resource type.
	TypeCounts map[string]int
	// Knobs tallies volatility mechanisms.
	LazyNodes, VolatileParamNodes, VolatilePathNodes int
	VariantFrames, RedirectChains, CookieSetters     int
	VersionGated, GUIGated                           int

	// ThirdPartyRefs counts distinct third-party service domains
	// referenced by the sampled sites.
	ThirdPartyRefs int
}

// MinMeanMax is a compact distribution summary for integer counts.
type MinMeanMax struct {
	Min  int
	Mean float64
	Max  int
}

func (m *MinMeanMax) add(v int, first bool) {
	if first || v < m.Min {
		m.Min = v
	}
	if v > m.Max {
		m.Max = v
	}
	m.Mean += float64(v) // normalized by the caller
}

// Describe profiles the universe over the given site entries.
func (u *Universe) Describe(entries []tranco.Entry) UniverseProfile {
	p := UniverseProfile{TypeCounts: map[string]int{}}
	serviceDomains := map[string]bool{}
	for _, s := range u.AllServices() {
		serviceDomains[s.Domain] = true
	}
	referenced := map[string]bool{}

	pageCount := 0
	for si, entry := range entries {
		site := u.GenerateSite(entry)
		p.Sites++
		if site.Unreachable {
			p.Unreachable++
			continue
		}
		p.PagesPerSite.add(len(site.Pages), si == 0)
		for _, page := range site.AllPages() {
			p.Pages++
			n := 0
			var walk func(r *Resource)
			walk = func(r *Resource) {
				n++
				p.TypeCounts[r.Type.String()]++
				if r.Lazy {
					p.LazyNodes++
				}
				if len(r.VolatileParams) > 0 {
					p.VolatileParamNodes++
				}
				if r.VolatilePath {
					p.VolatilePathNodes++
				}
				if len(r.Variants) > 0 {
					p.VariantFrames++
				}
				if len(r.RedirectVia) > 0 {
					p.RedirectChains++
				}
				if len(r.SetCookies) > 0 {
					p.CookieSetters++
				}
				if r.MinVersion > 0 || r.MaxVersion > 0 {
					p.VersionGated++
				}
				if r.GUIOnly {
					p.GUIGated++
				}
				if r.Type == measurement.TypeSubFrame || r.Type == measurement.TypeScript ||
					r.Type == measurement.TypeImage || r.Type == measurement.TypeBeacon {
					if d := hostDomainOf(r.URL); serviceDomains[d] {
						referenced[d] = true
					}
				}
				for _, c := range r.Children {
					walk(c)
				}
				for _, v := range r.Variants {
					for _, c := range v {
						walk(c)
					}
				}
			}
			walk(page.Root)
			p.SpecNodesPerPage.add(n, pageCount == 0)
			pageCount++
		}
	}
	if pageCount > 0 {
		p.SpecNodesPerPage.Mean /= float64(pageCount)
	}
	if reachable := p.Sites - p.Unreachable; reachable > 0 {
		p.PagesPerSite.Mean /= float64(reachable)
	}
	p.ThirdPartyRefs = len(referenced)
	return p
}

// hostDomainOf extracts "host" from "scheme://host/..." without a full URL
// parse (spec URLs are generator-controlled).
func hostDomainOf(url string) string {
	i := 0
	for ; i+2 < len(url); i++ {
		if url[i] == ':' && url[i+1] == '/' && url[i+2] == '/' {
			i += 3
			break
		}
	}
	start := i
	for ; i < len(url); i++ {
		if c := url[i]; c == '/' || c == '?' || c == ':' {
			break
		}
	}
	host := url[start:i]
	// Strip one subdomain layer at a time until a known pattern: the
	// generator's service domains are registrable as-is; site asset hosts
	// carry one prefix label.
	return host
}

// Write renders the profile as text.
func (p UniverseProfile) Write(w io.Writer) {
	fmt.Fprintf(w, "universe profile over %d sites (%d unreachable), %d pages\n",
		p.Sites, p.Unreachable, p.Pages)
	fmt.Fprintf(w, "spec nodes/page: min %d, mean %.1f, max %d; pages/site: min %d, mean %.1f, max %d\n",
		p.SpecNodesPerPage.Min, p.SpecNodesPerPage.Mean, p.SpecNodesPerPage.Max,
		p.PagesPerSite.Min, p.PagesPerSite.Mean, p.PagesPerSite.Max)
	fmt.Fprintf(w, "volatility: lazy %d, volatile-param %d, volatile-path %d, variant frames %d, redirect chains %d\n",
		p.LazyNodes, p.VolatileParamNodes, p.VolatilePathNodes, p.VariantFrames, p.RedirectChains)
	fmt.Fprintf(w, "gates: version %d, gui %d; cookie setters %d; third-party services referenced: %d\n",
		p.VersionGated, p.GUIGated, p.CookieSetters, p.ThirdPartyRefs)
	var types []string
	for ty := range p.TypeCounts {
		types = append(types, ty)
	}
	sort.Strings(types)
	fmt.Fprintf(w, "type mix:")
	for _, ty := range types {
		fmt.Fprintf(w, " %s=%d", ty, p.TypeCounts[ty])
	}
	fmt.Fprintln(w)
}
