// Prometheus text exposition (version 0.0.4) for a metrics Snapshot — the
// format every Prometheus-compatible scraper (Prometheus itself, Grafana
// Agent, VictoriaMetrics) ingests from a /metrics endpoint. The encoder
// renders only what the snapshot holds, so it is deterministic: same
// snapshot, same bytes.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName maps an internal dotted metric name ("crawl.visit_ms") to a
// valid Prometheus metric name ("crawl_visit_ms"): every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus parses it (shortest exact
// representation; integral values without an exponent).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Counters become counter families; each histogram becomes a
// histogram family (cumulative le-buckets over the non-empty log buckets,
// plus _sum and _count) and a companion <name>_quantile gauge family
// carrying the estimated p50/p95/p99 and the exact max, so dashboards get
// both aggregatable buckets and ready-made latency quantiles. Output is
// sorted by name and byte-deterministic for a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.Le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
		if h.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			value float64
		}{
			{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}, {"max", h.Max},
		} {
			if _, err := fmt.Fprintf(w, "%s_quantile{q=%q} %s\n", name, q.label, promFloat(q.value)); err != nil {
				return err
			}
		}
	}
	return nil
}
