// Prometheus text exposition (version 0.0.4) for a metrics Snapshot — the
// format every Prometheus-compatible scraper (Prometheus itself, Grafana
// Agent, VictoriaMetrics) ingests from a /metrics endpoint. The encoder
// renders only what the snapshot holds, so it is deterministic: same
// snapshot, same bytes.
//
// Labeled series (internal names carrying a "|k=v,..." suffix, see
// Labeled) are grouped under one family: a single HELP + TYPE header and
// one sample line per label combination, the way a scraper expects
// `faults_injected_total{kind="latency"}` to join its siblings.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName maps an internal dotted metric name ("crawl.visit_ms") to a
// valid Prometheus metric name ("crawl_visit_ms"): every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus parses it (shortest exact
// representation; integral values without an exponent).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelsInner renders a raw "k=v,k2=v2" label suffix as
// `k="v",k2="v2"` (no braces), sanitizing label names and quoting values.
// Returns "" for an empty suffix.
func promLabelsInner(raw string) string {
	if raw == "" {
		return ""
	}
	var b strings.Builder
	for i, part := range strings.Split(raw, ",") {
		k, v, _ := strings.Cut(part, "=")
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	return b.String()
}

// promSeries renders "family{labels}" — just "family" when unlabeled.
func promSeries(family, inner string) string {
	if inner == "" {
		return family
	}
	return family + "{" + inner + "}"
}

// withLe appends the le (or q) label to an inner label set.
func withLe(inner, key, value string) string {
	lab := key + "=" + strconv.Quote(value)
	if inner == "" {
		return lab
	}
	return inner + "," + lab
}

// helpText documents the metric families the pipeline registers; families
// not listed fall back to a generic line so HELP is never missing.
var helpText = map[string]string{
	"crawl.sites":                  "Sites completed by the crawl.",
	"crawl.pages":                  "Pages discovered by the crawl.",
	"crawl.visits":                 "Visits performed, including resume-reused ones.",
	"crawl.visits.failed":          "Visits that ended in failure.",
	"crawl.visits.reused":          "Visits reused from a resume checkpoint.",
	"crawl.visit_ms":               "Simulated page-load duration in milliseconds.",
	"crawl.site_ms":                "Wall-clock milliseconds per completed site batch.",
	"crawl.retries.total":          "Visit retries by the fault kind that triggered them.",
	"faults.injected.total":        "Faults injected by the deterministic injector, by kind.",
	"analysis.pages":               "Page groups examined by the analysis.",
	"analysis.pages.vetted":        "Pages passing the vetting rule.",
	"analysis.trees":               "Trees built.",
	"analysis.trees.failed":        "Malformed visits skipped by the tree builder.",
	"analysis.page_ms":             "Wall-clock milliseconds per analyzed page.",
	"trace.spans.total":            "Trace spans recorded per pipeline stage.",
	"trace.span_us":                "Simulated span duration in microseconds per stage.",
	"service.jobs.total":           "Jobs accepted by the service.",
	"service.cache_hits":           "Jobs served from the result cache.",
	"service.workers_current":      "Current size of the autoscaling job worker pool.",
	"service.scale_events.total":   "Applied autoscaling decisions, by direction.",
	"go.goroutines":                "Number of live goroutines, sampled at scrape time.",
	"go.heap_inuse_bytes":          "Bytes of heap memory in use, sampled at scrape time.",
	"go.gc_pause_p95_ms":           "p95 of recent GC stop-the-world pauses in milliseconds.",
	"process.uptime_seconds":       "Seconds since the process started.",
	"monitor.epochs.total":         "Measurement epochs completed by monitor mode.",
	"monitor.current_epoch":        "Epoch most recently completed by monitor mode.",
	"drift.alerts.total":           "Drift alerts emitted across all epochs.",
	"drift.alerts.firing":          "Alert rules currently in a firing state.",
	"drift.tracking_share":         "Tracking share of the latest monitored epoch.",
	"drift.tracking_share_drift":   "Tracking-share change vs the previous epoch.",
	"drift.third_party_jaccard":    "Jaccard similarity of global third-party sets vs the previous epoch.",
	"drift.tree_similarity":        "Mean cross-epoch tree similarity over common pages.",
	"drift.new_third_parties":      "Third-party domains new in the latest epoch.",
	"drift.vanished_third_parties": "Third-party domains gone in the latest epoch.",
}

// helpFor returns the HELP text of a family's internal base name.
func helpFor(base string) string {
	if h := helpText[base]; h != "" {
		return h
	}
	return "webmeasure metric " + base + "."
}

// familyHeader writes the one HELP + TYPE header of a family.
func familyHeader(w io.Writer, family, base, kind string) error {
	help := strings.NewReplacer("\\", "\\\\", "\n", "\\n").Replace(helpFor(base))
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, kind)
	return err
}

// series is one instrument resolved to its family coordinates.
type series struct {
	base   string // internal base name ("faults.injected.total")
	family string // sanitized family name
	inner  string // rendered inner label set ("" when unlabeled)
	idx    int    // index into the snapshot slice it came from
}

// resolveSeries maps internal names to (family, labels) and orders them
// by family then label set, so every family's series are adjacent and a
// single header precedes them — the grouping the exposition format
// requires (duplicate TYPE lines are a lint error).
func resolveSeries(names []string) []series {
	out := make([]series, len(names))
	for i, name := range names {
		base, labels := splitLabels(name)
		out[i] = series{base: base, family: promName(base), inner: promLabelsInner(labels), idx: i}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].family != out[b].family {
			return out[a].family < out[b].family
		}
		return out[a].inner < out[b].inner
	})
	return out
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Counters become counter families, gauges gauge families; each histogram becomes a
// histogram family (cumulative le-buckets over the non-empty log buckets,
// plus _sum and _count) and a companion <name>_quantile gauge family
// carrying the estimated p50/p95/p99 and the exact max, so dashboards get
// both aggregatable buckets and ready-made latency quantiles. Every
// family carries HELP + TYPE exactly once; labeled series share their
// family's header. Output is sorted and byte-deterministic for a given
// snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		names[i] = c.Name
	}
	lastFamily := ""
	for _, se := range resolveSeries(names) {
		if se.family != lastFamily {
			if err := familyHeader(w, se.family, se.base, "counter"); err != nil {
				return err
			}
			lastFamily = se.family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(se.family, se.inner), s.Counters[se.idx].Value); err != nil {
			return err
		}
	}

	names = make([]string, len(s.Gauges))
	for i, g := range s.Gauges {
		names[i] = g.Name
	}
	lastFamily = ""
	for _, se := range resolveSeries(names) {
		if se.family != lastFamily {
			if err := familyHeader(w, se.family, se.base, "gauge"); err != nil {
				return err
			}
			lastFamily = se.family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(se.family, se.inner), s.Gauges[se.idx].Value); err != nil {
			return err
		}
	}

	// Float gauges render as their own gauge families after the integer
	// ones. Families never collide: a name is either an int or a float
	// gauge in a given registry, never both.
	names = make([]string, len(s.FloatGauges))
	for i, g := range s.FloatGauges {
		names[i] = g.Name
	}
	lastFamily = ""
	for _, se := range resolveSeries(names) {
		if se.family != lastFamily {
			if err := familyHeader(w, se.family, se.base, "gauge"); err != nil {
				return err
			}
			lastFamily = se.family
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(se.family, se.inner), promFloat(s.FloatGauges[se.idx].Value)); err != nil {
			return err
		}
	}

	names = make([]string, len(s.Histograms))
	for i, h := range s.Histograms {
		names[i] = h.Name
	}
	ordered := resolveSeries(names)
	lastFamily = ""
	for _, se := range ordered {
		h := s.Histograms[se.idx]
		if se.family != lastFamily {
			if err := familyHeader(w, se.family, se.base, "histogram"); err != nil {
				return err
			}
			lastFamily = se.family
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", se.family, withLe(se.inner, "le", promFloat(b.Le)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n%s %s\n%s %d\n",
			se.family, withLe(se.inner, "le", "+Inf"), h.Count,
			promSeries(se.family+"_sum", se.inner), promFloat(h.Sum),
			promSeries(se.family+"_count", se.inner), h.Count); err != nil {
			return err
		}
	}
	// Companion quantile gauges, one family per histogram family, emitted
	// after the histogram block so families never interleave.
	lastFamily = ""
	for _, se := range ordered {
		h := s.Histograms[se.idx]
		if h.Count == 0 {
			continue
		}
		qFamily := se.family + "_quantile"
		if qFamily != lastFamily {
			help := strings.NewReplacer("\\", "\\\\", "\n", "\\n").Replace("Estimated quantiles of " + se.base + ".")
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", qFamily, help, qFamily); err != nil {
				return err
			}
			lastFamily = qFamily
		}
		for _, q := range []struct {
			label string
			value float64
		}{
			{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}, {"max", h.Max},
		} {
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", qFamily, withLe(se.inner, "q", q.label), promFloat(q.value)); err != nil {
				return err
			}
		}
	}
	return nil
}
