package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestMergeCountersSum: merging shard dumps into one registry must sum
// every counter exactly — the property the coordinator's aggregate view
// relies on.
func TestMergeCountersSum(t *testing.T) {
	shards := make([]Dump, 3)
	for i := range shards {
		r := New()
		r.Counter("crawl.pages").Add(int64(10 * (i + 1)))
		r.Counter("faults.injected.total").Add(int64(i))
		shards[i] = r.Dump()
	}
	merged := New()
	for _, d := range shards {
		if err := merged.Merge(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.Counter("crawl.pages").Value(); got != 60 {
		t.Errorf("crawl.pages merged to %d, want 60", got)
	}
	if got := merged.Counter("faults.injected.total").Value(); got != 3 {
		t.Errorf("faults.injected.total merged to %d, want 3", got)
	}
}

// TestMergeHistogramsExact: observing a sample set split across two
// registries and merging the dumps must reproduce the single registry's
// histogram bucket for bucket — the dump carries raw bucket indices, not
// lossy summaries.
func TestMergeHistogramsExact(t *testing.T) {
	samples := []float64{0.1, 0.5, 1, 3, 7, 12, 42, 99, 310, 1234, 50000}

	whole := New()
	for _, v := range samples {
		whole.Histogram("visit_ms").Observe(v)
	}

	a, b := New(), New()
	for i, v := range samples {
		if i%2 == 0 {
			a.Histogram("visit_ms").Observe(v)
		} else {
			b.Histogram("visit_ms").Observe(v)
		}
	}
	merged := New()
	for _, d := range []Dump{a.Dump(), b.Dump()} {
		if err := merged.Merge(d); err != nil {
			t.Fatal(err)
		}
	}

	got, want := merged.Histogram("visit_ms").Stats(), whole.Histogram("visit_ms").Stats()
	if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
		t.Errorf("merged stats {count %d sum %g max %g}, want {count %d sum %g max %g}",
			got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) {
		t.Errorf("merged buckets %v, want %v", got.Buckets, want.Buckets)
	}
	if !reflect.DeepEqual(merged.Dump(), whole.Dump()) {
		t.Error("merged dump differs from single-registry dump")
	}
}

// TestMergeIdempotentShape: merging an empty dump changes nothing, and a
// dump survives a JSON round trip (it is the wire format of Partial.Metrics).
func TestMergeDumpWire(t *testing.T) {
	r := New()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(2.5)
	d := r.Dump()

	wire, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Error("dump changed across JSON round trip")
	}

	merged := New()
	if err := merged.Merge(Dump{}); err != nil {
		t.Errorf("empty dump rejected: %v", err)
	}
	if s := merged.Snapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Error("empty dump created instruments")
	}
	if err := merged.Merge(back); err != nil {
		t.Fatal(err)
	}
	if got := merged.Counter("c").Value(); got != 5 {
		t.Errorf("counter after wire merge = %d, want 5", got)
	}
	if got := merged.Histogram("h").Count(); got != 1 {
		t.Errorf("histogram count after wire merge = %d, want 1", got)
	}
}

// TestMergeRejectsBadBuckets: a dump with an out-of-range or non-numeric
// bucket index must be refused — silently dropping samples would skew the
// merged distribution.
func TestMergeRejectsBadBuckets(t *testing.T) {
	for name, buckets := range map[string]map[string]int64{
		"negative":     {"-1": 3},
		"out of range": {"100000": 3},
		"non-numeric":  {"p95": 3},
	} {
		d := Dump{Histograms: map[string]HistogramDump{
			"h": {Count: 3, Sum: 1, Max: 1, Buckets: buckets},
		}}
		if err := New().Merge(d); err == nil {
			t.Errorf("%s bucket index accepted", name)
		}
	}
}

// TestDumpNilSafe: nil registries dump empty and swallow merges — the
// no-op contract every instrument in this package follows.
func TestDumpNilSafe(t *testing.T) {
	var r *Registry
	if d := r.Dump(); len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Error("nil registry produced a non-empty dump")
	}
	if err := r.Merge(Dump{Counters: map[string]int64{"c": 1}}); err != nil {
		t.Errorf("nil registry merge: %v", err)
	}
}
