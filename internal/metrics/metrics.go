// Package metrics instruments the long-running halves of the system — the
// crawl and the analysis pipeline — with concurrency-safe progress
// counters and timing histograms, the observability layer a multi-day
// measurement needs (the paper's commander UI monitors its clients the
// same way, Appendix C).
//
// The design goals are the ones a hot path dictates: counters are single
// atomic adds, histograms are lock-free log-bucketed arrays (no sample
// retention, ~15% relative quantile error, O(1) memory regardless of how
// many of the ~387k pages stream through), and Snapshot() can be called
// from any goroutine while work is in flight to render a progress line.
//
// All types tolerate nil receivers: a nil *Registry hands out nil
// *Counter/*Histogram whose methods are no-ops, so instrumented code
// never branches on "is monitoring enabled".
//
// Metric names used by the pipeline:
//
//	crawl.sites            sites completed
//	crawl.pages            pages discovered
//	crawl.visits           visits performed (incl. reused)
//	crawl.visits.failed    failed visits
//	crawl.visits.reused    visits reused from a resume checkpoint
//	crawl.visit_ms         simulated page-load duration histogram
//	crawl.site_ms          wall-clock per completed site batch
//	analysis.pages         page groups examined
//	analysis.pages.vetted  pages passing the vetting rule
//	analysis.trees         trees built
//	analysis.trees.failed  malformed visits skipped by the tree builder
//	analysis.page_ms       wall-clock per page (build + cross-compare)
//
// Labeled series (see Labeled; the Prometheus encoder renders the suffix
// as {k="v"} labels on one family):
//
//	crawl.visit_ms|profile=<p>      per-profile simulated visit duration
//	crawl.retries.total|kind=<k>    retries by triggering fault kind
//	faults.injected.total|kind=<k>  injected faults by kind
//	trace.spans.total|stage=<s>     spans recorded per stage (tracing on)
//	trace.span_us|stage=<s>         simulated span duration per stage
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labeled builds the internal name of a labeled metric: the base name
// plus a "|k=v[,k2=v2...]" suffix. The registry treats the whole string
// as an opaque name (each label combination is its own series); the
// Prometheus encoder splits the suffix back out and renders it as
// {k="v",...} labels on a shared family. kv alternates key, value; a
// trailing odd element is ignored.
func Labeled(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('|')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	return b.String()
}

// splitLabels separates an internal metric name into its base name and
// the raw label suffix ("" when unlabeled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '|'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level — a value that goes up and down, like the
// autoscaling pool's current worker count, as opposed to a Counter's
// monotone total. The zero value is ready to use; a nil Gauge ignores
// writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: geometric buckets growing by histGrowth per
// step starting at histMin. 320 buckets at 15% growth cover histMin up to
// ~histMin·1.15^318 ≈ 2e16, far beyond any duration in milliseconds.
const (
	histBuckets = 320
	histGrowth  = 1.15
	histMin     = 0.001
)

// logGrowth is precomputed for bucket index math.
var logGrowth = math.Log(histGrowth)

// Histogram is a lock-free log-bucketed histogram for non-negative
// samples (typically durations in milliseconds). Quantiles are estimated
// from the bucket boundaries with at most one bucket (~15%) of relative
// error. The zero value is ready to use; a nil Histogram ignores writes.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the running max
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	idx := int(math.Log(v/histMin)/logGrowth) + 1
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns a bucket's inclusive upper bound, the "le" value a
// Prometheus exposition reports for it.
func bucketUpper(i int) float64 {
	return histMin * math.Pow(histGrowth, float64(i))
}

// bucketValue returns the representative value of a bucket (its geometric
// midpoint), the value quantile estimates report.
func bucketValue(i int) float64 {
	if i <= 0 {
		return histMin
	}
	return histMin * math.Pow(histGrowth, float64(i)-0.5)
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Time starts a wall-clock timer; the returned func records the elapsed
// time in milliseconds. Usage: defer h.Time()().
func (h *Histogram) Time() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// BucketCount is one non-empty histogram bucket in a Stats capture: the
// cumulative number of samples ≤ Le (Prometheus "le" semantics).
type BucketCount struct {
	Le    float64
	Count int64
}

// Stats summarizes a histogram at one point in time.
type Stats struct {
	Count         int64
	Sum           float64
	Mean          float64
	P50, P95, P99 float64
	Max           float64
	// Buckets holds the cumulative counts of the non-empty buckets in
	// ascending Le order (the sparse view a Prometheus exposition needs;
	// empty buckets carry no information and are omitted).
	Buckets []BucketCount
}

// Stats computes the histogram's summary. Safe to call while Observe is
// running in other goroutines; the result is a consistent-enough snapshot
// for progress reporting.
func (h *Histogram) Stats() Stats {
	if h == nil {
		return Stats{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := Stats{Count: total, Max: math.Float64frombits(h.maxBits.Load())}
	if total == 0 {
		return st
	}
	st.Sum = math.Float64frombits(h.sumBits.Load())
	st.Mean = st.Sum / float64(h.count.Load())
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		st.Buckets = append(st.Buckets, BucketCount{Le: bucketUpper(i), Count: cum})
	}
	// Bucket representatives are geometric midpoints and can overshoot
	// the true maximum; a quantile is never allowed to exceed it.
	clamp := func(v float64) float64 {
		if st.Max > 0 && v > st.Max {
			return st.Max
		}
		return v
	}
	st.P50 = clamp(quantileFrom(counts[:], total, 0.50))
	st.P95 = clamp(quantileFrom(counts[:], total, 0.95))
	st.P99 = clamp(quantileFrom(counts[:], total, 0.99))
	return st
}

// quantileFrom walks the cumulative bucket counts to the bucket holding
// the q-th sample and returns its representative value.
func quantileFrom(counts []int64, total int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketValue(i)
		}
	}
	return bucketValue(len(counts) - 1)
}

// Registry is a named collection of counters and histograms. The zero
// value is not usable; create with New. A nil Registry hands out nil
// instruments, so callers can thread an optional registry without checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterStat is one counter's value in a snapshot.
type CounterStat struct {
	Name  string
	Value int64
}

// GaugeStat is one gauge's level in a snapshot.
type GaugeStat struct {
	Name  string
	Value int64
}

// HistogramStat is one histogram's summary in a snapshot.
type HistogramStat struct {
	Name string
	Stats
}

// Snapshot is a point-in-time view of every instrument, sorted by name
// for deterministic rendering.
type Snapshot struct {
	Counters    []CounterStat
	Gauges      []GaugeStat
	FloatGauges []FloatGaugeStat
	Histograms  []HistogramStat
}

// Snapshot captures every instrument. Safe to call concurrently with
// metric updates.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for name, g := range r.fgauges {
		fgauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	var s Snapshot
	for name, c := range counters {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: g.Value()})
	}
	for name, g := range fgauges {
		s.FloatGauges = append(s.FloatGauges, FloatGaugeStat{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, HistogramStat{Name: name, Stats: h.Stats()})
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	sort.Slice(s.FloatGauges, func(a, b int) bool { return s.FloatGauges[a].Name < s.FloatGauges[b].Name })
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	return s
}

// String renders the snapshot as one progress line:
//
//	crawl.sites=12 crawl.visits=480 | crawl.visit_ms n=480 mean=91.2 p50=80.1 p95=210.4 p99=390.8 max=412.0
func (s Snapshot) String() string {
	var b strings.Builder
	for i, c := range s.Counters {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c.Name, c.Value)
	}
	for i, g := range s.Gauges {
		if i > 0 || len(s.Counters) > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", g.Name, g.Value)
	}
	for i, g := range s.FloatGauges {
		if i > 0 || len(s.Counters)+len(s.Gauges) > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.4g", g.Name, g.Value)
	}
	for i, h := range s.Histograms {
		if i == 0 && len(s.Counters)+len(s.Gauges)+len(s.FloatGauges) > 0 {
			b.WriteString(" | ")
		} else if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
			h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
