package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"crawl.visit_ms":     "crawl_visit_ms",
		"service.jobs.done":  "service_jobs_done",
		"9lives":             "_9lives",
		"a-b c":              "a_b_c",
		"already_fine:total": "already_fine:total",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusDeterministic renders the same registry twice and
// checks the exposition is byte-identical and structurally correct.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := New()
	r.Counter("service.jobs.submitted").Add(7)
	r.Counter("service.cache.hits").Add(3)
	h := r.Histogram("service.job_ms")
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}

	var a, b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}

	out := a.String()
	for _, want := range []string{
		"# TYPE service_cache_hits counter\nservice_cache_hits 3\n",
		"# TYPE service_jobs_submitted counter\nservice_jobs_submitted 7\n",
		"# TYPE service_job_ms histogram\n",
		"service_job_ms_bucket{le=\"+Inf\"} 5\n",
		"service_job_ms_count 5\n",
		"service_job_ms_sum 1015\n",
		"# TYPE service_job_ms_quantile gauge\n",
		"service_job_ms_quantile{q=\"max\"} 1000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters are sorted by name: cache.hits before jobs.submitted.
	if strings.Index(out, "service_cache_hits") > strings.Index(out, "service_jobs_submitted") {
		t.Errorf("counters not sorted by name:\n%s", out)
	}
}

// TestWritePrometheusLabels checks labeled series share one family
// header and render their label suffix as Prometheus labels.
func TestWritePrometheusLabels(t *testing.T) {
	r := New()
	r.Counter(Labeled("faults.injected.total", "kind", "latency")).Add(4)
	r.Counter(Labeled("faults.injected.total", "kind", "error")).Add(2)
	h := r.Histogram(Labeled("crawl.visit_ms", "profile", "Chrome-A"))
	h.Observe(10)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP faults_injected_total ",
		"# TYPE faults_injected_total counter\n",
		"faults_injected_total{kind=\"error\"} 2\n",
		"faults_injected_total{kind=\"latency\"} 4\n",
		"# TYPE crawl_visit_ms histogram\n",
		"crawl_visit_ms_bucket{profile=\"Chrome-A\",le=\"+Inf\"} 1\n",
		"crawl_visit_ms_sum{profile=\"Chrome-A\"} 10\n",
		"crawl_visit_ms_count{profile=\"Chrome-A\"} 1\n",
		"crawl_visit_ms_quantile{profile=\"Chrome-A\",q=\"max\"} 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE faults_injected_total counter") != 1 {
		t.Errorf("family header must appear exactly once:\n%s", out)
	}
}

// TestWritePrometheusBucketsCumulative checks the le-bucket counts are
// monotonically non-decreasing and end at the sample count.
func TestWritePrometheusBucketsCumulative(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	st := h.Stats()
	if len(st.Buckets) == 0 {
		t.Fatal("no buckets captured")
	}
	var prevLe float64 = -1
	var prevCount int64
	for _, b := range st.Buckets {
		if b.Le <= prevLe {
			t.Fatalf("bucket le %v not ascending (prev %v)", b.Le, prevLe)
		}
		if b.Count < prevCount {
			t.Fatalf("bucket count %d not cumulative (prev %d)", b.Count, prevCount)
		}
		prevLe, prevCount = b.Le, b.Count
	}
	if last := st.Buckets[len(st.Buckets)-1].Count; last != st.Count {
		t.Fatalf("last cumulative bucket %d != count %d", last, st.Count)
	}
	if st.Sum != 4950 {
		t.Fatalf("sum = %v, want 4950", st.Sum)
	}
}

// TestWritePrometheusEmptyHistogram renders a histogram with no samples:
// buckets collapse to the +Inf line and no quantile gauges appear.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := New()
	r.Histogram("idle_ms")
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "idle_ms_bucket{le=\"+Inf\"} 0\n") {
		t.Errorf("missing +Inf bucket for empty histogram:\n%s", out)
	}
	if strings.Contains(out, "idle_ms_quantile") {
		t.Errorf("empty histogram must not emit quantiles:\n%s", out)
	}
}
