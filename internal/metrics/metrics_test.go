package metrics

import (
	"bytes"
	"context"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter reads %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read zero")
	}
	h := r.Histogram("y")
	h.Observe(1)
	h.Time()()
	if h.Count() != 0 || h.Stats().Count != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	stop := StartProgress(context.Background(), &bytes.Buffer{}, r, time.Millisecond)
	stop()
	stop() // double-stop must be safe
}

// TestConcurrentCounter is the satellite's concurrency requirement:
// increments from N goroutines sum correctly.
func TestConcurrentCounter(t *testing.T) {
	const goroutines, perG = 16, 10_000
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != goroutines*perG {
		t.Fatalf("concurrent counter = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentHistogram(t *testing.T) {
	const goroutines, perG = 8, 5_000
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("lat")
			for i := 0; i < perG; i++ {
				h.Observe(float64(g + 1))
			}
		}(g)
	}
	wg.Wait()
	st := r.Histogram("lat").Stats()
	if st.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", st.Count, goroutines*perG)
	}
	// Sum of g+1 for g in [0,8) is 36; mean = 36/8 = 4.5 exactly (the
	// sum is tracked outside the buckets, so no bucketing error).
	if math.Abs(st.Mean-4.5) > 1e-9 {
		t.Fatalf("histogram mean = %v, want 4.5", st.Mean)
	}
	if math.Abs(st.Max-8) > 1e-9 {
		t.Fatalf("histogram max = %v, want 8", st.Max)
	}
}

// TestHistogramQuantilesMatchReference compares bucket-estimated
// percentiles against exact order statistics on a fixed deterministic
// sample; the log-bucket layout guarantees ≤ one growth factor (15%) of
// relative error.
func TestHistogramQuantilesMatchReference(t *testing.T) {
	var h Histogram
	var samples []float64
	// Deterministic skewed sample: a quadratic ramp (most mass low, long
	// tail), the shape page-visit latencies take.
	for i := 1; i <= 10_000; i++ {
		v := float64(i) * float64(i) / 1000.0 // 0.001 .. 100_000
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	ref := func(q float64) float64 {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		return samples[rank]
	}
	st := h.Stats()
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", st.P50, ref(0.50)},
		{"p95", st.P95, ref(0.95)},
		{"p99", st.P99, ref(0.99)},
	} {
		relErr := math.Abs(tc.got-tc.want) / tc.want
		if relErr > histGrowth-1 {
			t.Errorf("%s = %v, reference %v (relative error %.3f > %.2f)",
				tc.name, tc.got, tc.want, relErr, histGrowth-1)
		}
	}
	if st.Max != samples[len(samples)-1] {
		t.Errorf("max = %v, want %v", st.Max, samples[len(samples)-1])
	}
}

func TestHistogramEdgeSamples(t *testing.T) {
	var h Histogram
	h.Observe(-5)         // clamped to 0
	h.Observe(math.NaN()) // clamped to 0
	h.Observe(0)          // bucket 0
	h.Observe(1e30)       // clamped to last bucket
	st := h.Stats()
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4", st.Count)
	}
	if st.P50 != histMin {
		t.Fatalf("p50 of mostly-zero sample = %v, want %v", st.P50, histMin)
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []float64{0, histMin, 0.01, 0.1, 1, 10, 100, 1e3, 1e6, 1e12, 1e18} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %v: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", v, idx)
		}
		prev = idx
	}
}

func TestSnapshotDeterministicOrderAndFormat(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("z.ms").Observe(10)
	r.Histogram("m.ms").Observe(5)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.count" || s.Counters[1].Name != "b.count" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "m.ms" || s.Histograms[1].Name != "z.ms" {
		t.Fatalf("histograms not sorted: %+v", s.Histograms)
	}
	line := s.String()
	for _, want := range []string{"a.count=1", "b.count=2", "m.ms n=1", "z.ms n=1", "p95="} {
		if !strings.Contains(line, want) {
			t.Errorf("snapshot line missing %q: %s", want, line)
		}
	}
	// Two snapshots of an idle registry render identically.
	if again := r.Snapshot().String(); again != line {
		t.Fatalf("snapshot not deterministic:\n%s\n%s", line, again)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter should return the same instance per name")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram should return the same instance per name")
	}
}

func TestHistogramTime(t *testing.T) {
	var h Histogram
	done := h.Time()
	time.Sleep(2 * time.Millisecond)
	done()
	st := h.Stats()
	if st.Count != 1 {
		t.Fatalf("Time() recorded %d samples, want 1", st.Count)
	}
	if st.Max <= 0 {
		t.Fatalf("Time() recorded non-positive duration %v", st.Max)
	}
}

func TestStartProgressWritesLines(t *testing.T) {
	r := New()
	r.Counter("work").Add(7)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(context.Background(), w, r, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: work=7") {
		t.Fatalf("progress output missing snapshot line: %q", out)
	}
}

// TestStartProgressStopsOnContextCancel is the leak regression test:
// canceling the context alone — without ever calling stop — must
// terminate the ticker goroutines. Before the context hook, a caller
// bailing out on an error path leaked one goroutine per StartProgress.
func TestStartProgressStopsOnContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	r := New()
	r.Counter("work").Inc()
	// Several tickers so the goroutine-count signal dominates noise from
	// unrelated runtime goroutines.
	for i := 0; i < 8; i++ {
		StartProgress(ctx, io.Discard, r, time.Millisecond)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("progress goroutines leaked after context cancel: %d running, started from %d",
		runtime.NumGoroutine(), base)
}

// TestStartProgressStopAfterCancel: stop() must return promptly even when
// the context already tore the goroutine down.
func TestStartProgressStopAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New()
	stop := StartProgress(ctx, io.Discard, r, time.Millisecond)
	cancel()
	donec := make(chan struct{})
	go func() { stop(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() hung after context cancel")
	}
}

func TestLabeled(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"faults.injected.total", []string{"kind", "latency"}, "faults.injected.total|kind=latency"},
		{"crawl.visit_ms", []string{"profile", "Chrome-A"}, "crawl.visit_ms|profile=Chrome-A"},
		{"x", []string{"a", "1", "b", "2"}, "x|a=1,b=2"},
		{"bare", nil, "bare"},
		{"odd", []string{"k"}, "odd"},
	}
	for _, tc := range cases {
		if got := Labeled(tc.base, tc.kv...); got != tc.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", tc.base, tc.kv, got, tc.want)
		}
		base, _ := splitLabels(tc.want)
		if base != tc.base {
			t.Errorf("splitLabels(%q) base = %q, want %q", tc.want, base, tc.base)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
