package metrics

// FloatGauge is the floating-point counterpart of Gauge, added for the
// longitudinal drift monitor: similarity scores and drift deltas are
// ratios in [0, 1] (or small signed drifts) that an int64 gauge cannot
// carry. The value is stored as float64 bits in a single atomic word, so
// Set/Value are lock-free like the other instruments. The zero value is
// ready to use; a nil FloatGauge ignores writes and reads as zero.

import (
	"math"
	"sync/atomic"
)

// FloatGauge is a settable float64 level.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value. NaN is stored as zero so expositions
// and merges never propagate it.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) {
		v = 0
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *FloatGauge) Add(delta float64) {
	if g == nil || math.IsNaN(delta) {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current level.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.fgauges[name]
	if g == nil {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// FloatGaugeStat is one float gauge's level in a snapshot.
type FloatGaugeStat struct {
	Name  string
	Value float64
}
