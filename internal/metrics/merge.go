package metrics

// This file makes registries mergeable for the distributed shard-and-merge
// pipeline: a shard worker dumps its registry to a wire-friendly Dump, the
// coordinator merges the dumps into its own registry, and every counter
// comes out as the exact sum over shards (the fault-sweep suite asserts
// this for faults.injected.total and crawl.retries.total). Histograms
// merge losslessly at bucket granularity: the dump carries raw per-index
// bucket counts, not the float "le" bounds, so merging never re-buckets.

import (
	"fmt"
	"math"
	"strconv"
)

// HistogramDump is one histogram's mergeable state. Buckets maps the
// bucket index (decimal string, so the JSON form is a plain object) to its
// sample count; empty buckets are omitted.
type HistogramDump struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Max     float64          `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Dump is a registry's mergeable state: every counter value and every
// histogram's raw buckets.
type Dump struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges merge additively like counters: the shard pipeline never
	// publishes gauges, so summing is only ever applied to disjoint
	// contributions (e.g. per-component capacity levels).
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// FloatGauges merge additively like Gauges.
	FloatGauges map[string]float64       `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramDump `json:"histograms,omitempty"`
}

// Dump captures the registry for merging. Safe to call concurrently with
// metric updates (each instrument is read atomically, like Snapshot).
func (r *Registry) Dump() Dump {
	if r == nil {
		return Dump{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for name, g := range r.fgauges {
		fgauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	d := Dump{}
	if len(counters) > 0 {
		d.Counters = make(map[string]int64, len(counters))
		for name, c := range counters {
			d.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		d.Gauges = make(map[string]int64, len(gauges))
		for name, g := range gauges {
			d.Gauges[name] = g.Value()
		}
	}
	if len(fgauges) > 0 {
		d.FloatGauges = make(map[string]float64, len(fgauges))
		for name, g := range fgauges {
			d.FloatGauges[name] = g.Value()
		}
	}
	if len(hists) > 0 {
		d.Histograms = make(map[string]HistogramDump, len(hists))
		for name, h := range hists {
			d.Histograms[name] = h.dump()
		}
	}
	return d
}

// dump captures one histogram's raw state.
func (h *Histogram) dump() HistogramDump {
	d := HistogramDump{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[string]int64)
			}
			d.Buckets[strconv.Itoa(i)] = c
		}
	}
	return d
}

// Merge adds a dump into the registry: counters add, histogram buckets add
// index for index, maxima combine. Merging the dumps of N disjoint shard
// registries leaves every counter equal to the sum over shards.
func (r *Registry) Merge(d Dump) error {
	if r == nil {
		return nil
	}
	for name, v := range d.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range d.Gauges {
		r.Gauge(name).Add(v)
	}
	for name, v := range d.FloatGauges {
		r.FloatGauge(name).Add(v)
	}
	for name, hd := range d.Histograms {
		if err := r.Histogram(name).mergeDump(hd); err != nil {
			return fmt.Errorf("metrics: histogram %q: %w", name, err)
		}
	}
	return nil
}

// mergeDump folds a dumped histogram into this one.
func (h *Histogram) mergeDump(d HistogramDump) error {
	if h == nil {
		return nil
	}
	for idxStr, c := range d.Buckets {
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= histBuckets {
			return fmt.Errorf("bad bucket index %q", idxStr)
		}
		h.buckets[idx].Add(c)
	}
	h.count.Add(d.Count)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d.Sum)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= d.Max {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(d.Max)) {
			break
		}
	}
	return nil
}
