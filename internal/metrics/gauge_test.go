package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestGaugeBasics covers Set/Add/Value, the nil no-op contract, and
// registry identity (same name, same gauge).
func TestGaugeBasics(t *testing.T) {
	var nilG *Gauge
	nilG.Set(5)
	nilG.Add(3)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}

	r := New()
	g := r.Gauge("service.workers_current")
	g.Set(4)
	g.Add(-1)
	g.Add(2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge value = %d, want 5", got)
	}
	if r.Gauge("service.workers_current") != g {
		t.Fatal("registry handed out a different gauge for the same name")
	}
	var nilReg *Registry
	if nilReg.Gauge("x") != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
}

// TestGaugeConcurrent hammers a gauge from many goroutines; the deltas
// cancel, so the final level is the initial Set. Run under -race in tier2.
func TestGaugeConcurrent(t *testing.T) {
	g := New().Gauge("g")
	g.Set(100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 100 {
		t.Fatalf("gauge after balanced adds = %d, want 100", got)
	}
}

// TestGaugeSnapshotAndPrometheus checks that gauges land in snapshots
// (sorted, rendered in String) and are exposed as a TYPE gauge family.
func TestGaugeSnapshotAndPrometheus(t *testing.T) {
	r := New()
	r.Gauge("b.gauge").Set(2)
	r.Gauge("a.gauge").Set(7)
	r.Counter("c.count").Inc()

	s := r.Snapshot()
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "a.gauge" || s.Gauges[1].Name != "b.gauge" {
		t.Fatalf("snapshot gauges = %+v", s.Gauges)
	}
	line := s.String()
	for _, want := range []string{"c.count=1", "a.gauge=7", "b.gauge=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() missing %q: %s", want, line)
		}
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge",
		"a_gauge 7",
		"# TYPE b_gauge gauge",
		"b_gauge 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestGaugeDumpMerge: gauges ride the shard-merge wire format additively.
func TestGaugeDumpMerge(t *testing.T) {
	a, b := New(), New()
	a.Gauge("g").Set(3)
	b.Gauge("g").Set(4)
	dst := New()
	if err := dst.Merge(a.Dump()); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(b.Dump()); err != nil {
		t.Fatal(err)
	}
	if got := dst.Gauge("g").Value(); got != 7 {
		t.Fatalf("merged gauge = %d, want 7", got)
	}
}
