package metrics

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// StartProgress spawns a goroutine that writes one snapshot line to w
// every interval until the context is canceled or the returned stop func
// is called — the periodic progress output a long crawl or analysis
// prints while running. Tying the goroutine to the context means a
// caller that returns early (error path, signal) cannot leak the ticker
// even if it never reaches its stop call. A non-positive interval or nil
// registry disables the ticker; stop is always safe to call (and call
// twice, or concurrently).
func StartProgress(ctx context.Context, w io.Writer, r *Registry, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "progress: %s\n", r.Snapshot())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
