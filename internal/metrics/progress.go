package metrics

import (
	"fmt"
	"io"
	"time"
)

// StartProgress spawns a goroutine that writes one snapshot line to w
// every interval until the returned stop func is called — the periodic
// progress output a long crawl or analysis prints while running. A
// non-positive interval or nil registry disables the ticker; stop is
// always safe to call (and call twice).
func StartProgress(w io.Writer, r *Registry, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "progress: %s\n", r.Snapshot())
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-finished
	}
}
