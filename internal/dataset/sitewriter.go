package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"webmeasure/internal/colstore"
	"webmeasure/internal/measurement"
)

// SiteWriter is a streaming dataset sink: the site-parallel crawl hands
// it one site at a time, in final dataset order, and Close seals the
// file. Both implementations produce byte-identical output to their
// buffered counterparts (WriteJSONL / WriteCol of a dataset whose
// insertion order matches the emission order), so a streamed crawl and a
// buffered crawl of the same configuration write the same files — only
// the peak memory differs.
type SiteWriter interface {
	// WriteSite appends one site's visits. Visits must belong to site;
	// sites must not repeat.
	WriteSite(site string, visits []*measurement.Visit) error
	// Close flushes and finalizes the output. The writer cannot be used
	// afterwards.
	Close() error
}

// JSONLSiteWriter streams visits as JSON Lines, one visit per line in
// emission order — the streaming form of WriteJSONL.
type JSONLSiteWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSiteWriter starts a JSONL stream on w.
func NewJSONLSiteWriter(w io.Writer) *JSONLSiteWriter {
	bw := bufio.NewWriter(w)
	return &JSONLSiteWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteSite appends one site's visits as lines.
func (s *JSONLSiteWriter) WriteSite(site string, visits []*measurement.Visit) error {
	for _, v := range visits {
		if v.Site != site {
			return fmt.Errorf("dataset: visit of site %q written under site %q", v.Site, site)
		}
		if err := s.enc.Encode(v); err != nil {
			return fmt.Errorf("dataset: encode visit: %w", err)
		}
	}
	return nil
}

// Close flushes the buffered lines.
func (s *JSONLSiteWriter) Close() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// ColSiteWriter streams visits into the columnar format, one block per
// site in emission order. Sequence numbers are assigned globally in
// emission order, so ReadCol of the output restores exactly the visit
// order the sites were written in — the same order the JSONL stream
// preserves positionally.
type ColSiteWriter struct {
	cw  *colstore.Writer
	seq uint64
}

// NewColSiteWriter starts a columnar file on w.
func NewColSiteWriter(w io.Writer) *ColSiteWriter {
	return &ColSiteWriter{cw: colstore.NewWriter(w)}
}

// WriteSite encodes one site's visits as a block.
func (s *ColSiteWriter) WriteSite(site string, visits []*measurement.Visit) error {
	rows := make([]colstore.VisitRow, len(visits))
	for i, v := range visits {
		rows[i] = colstore.VisitRow{Seq: s.seq, Visit: v}
		s.seq++
	}
	return s.cw.WriteSite(site, rows)
}

// Close writes the footer index and flushes.
func (s *ColSiteWriter) Close() error {
	return s.cw.Close()
}
