package dataset

import (
	"bytes"
	"testing"

	"webmeasure/internal/measurement"
)

// streamSites is the fixture for the streaming-writer tests: three sites
// in crawl (non-lexicographic) order, two pages each, two profiles.
func streamSites() (sites []string, bySite map[string][]*measurement.Visit) {
	sites = []string{"m.example", "a.example", "z.example"}
	bySite = make(map[string][]*measurement.Visit)
	for _, s := range sites {
		for _, page := range []string{"https://" + s + "/", "https://" + s + "/p1"} {
			for _, prof := range []string{"Sim1", "Sim2"} {
				bySite[s] = append(bySite[s], visit(s, page, prof, true))
			}
		}
	}
	return sites, bySite
}

// TestJSONLSiteWriterMatchesWriteJSONL checks the streamed JSONL equals
// the buffered WriteJSONL of a dataset with the same insertion order.
func TestJSONLSiteWriterMatchesWriteJSONL(t *testing.T) {
	sites, bySite := streamSites()
	ds := New()
	var streamed bytes.Buffer
	sw := NewJSONLSiteWriter(&streamed)
	for _, s := range sites {
		for _, v := range bySite[s] {
			ds.Add(v)
		}
		if err := sw.WriteSite(s, bySite[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var buffered bytes.Buffer
	if err := ds.WriteJSONL(&buffered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Error("streamed JSONL differs from buffered WriteJSONL")
	}
}

// TestJSONLSiteWriterRejectsForeignVisit checks the site/visit ownership
// guard.
func TestJSONLSiteWriterRejectsForeignVisit(t *testing.T) {
	sw := NewJSONLSiteWriter(&bytes.Buffer{})
	err := sw.WriteSite("a.example", []*measurement.Visit{visit("b.example", "https://b.example/", "Sim1", true)})
	if err == nil {
		t.Fatal("visit of another site was accepted")
	}
}

// TestColSiteWriterRoundTrip streams sites in crawl order into the
// columnar format and checks ReadCol restores exactly the streamed visit
// order (global sequence numbers are assigned in emission order).
func TestColSiteWriterRoundTrip(t *testing.T) {
	sites, bySite := streamSites()
	var want []*measurement.Visit
	var buf bytes.Buffer
	cw := NewColSiteWriter(&buf)
	for _, s := range sites {
		want = append(want, bySite[s]...)
		if err := cw.WriteSite(s, bySite[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCol(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(want) {
		t.Fatalf("read %d visits, wrote %d", ds.Len(), len(want))
	}
	var wantJSONL, gotJSONL bytes.Buffer
	wantDS := New()
	for _, v := range want {
		wantDS.Add(v)
	}
	if err := wantDS.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteJSONL(&gotJSONL); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSONL.Bytes(), gotJSONL.Bytes()) {
		t.Error("columnar round trip does not restore the streamed visit order")
	}
}

// TestColSiteWriterMatchesWriteCol checks that streaming sites in any
// order produces byte-identical output to the buffered WriteCol of a
// dataset with the same insertion order — the equivalence that lets a
// streamed crawl replace the buffered writer without changing any
// artifact (WriteCol emits blocks in first-insertion order).
func TestColSiteWriterMatchesWriteCol(t *testing.T) {
	order, bySite := streamSites()
	ds := New()
	var streamed bytes.Buffer
	cw := NewColSiteWriter(&streamed)
	for _, s := range order {
		for _, v := range bySite[s] {
			ds.Add(v)
		}
		if err := cw.WriteSite(s, bySite[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var buffered bytes.Buffer
	if err := ds.WriteCol(&buffered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Error("streamed columnar file differs from buffered WriteCol")
	}
}
