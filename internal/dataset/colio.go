package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"webmeasure/internal/colstore"
	"webmeasure/internal/measurement"
)

// Format names the on-disk encodings a dataset can round-trip through.
// JSONL is the interchange format (human-greppable, line-per-visit);
// columnar is the compact analysis format (per-site blocks, interned
// strings, delta-coded columns).
const (
	FormatJSONL = "jsonl"
	FormatCol   = "col"
)

// WriteCol writes the dataset in the columnar format: one block per
// site, blocks in first-insertion order (the footer index stays sorted
// by site for seeks), each visit tagged with its insertion sequence
// number so ReadCol can restore the exact insertion order the JSONL form
// preserves positionally. A crawl-ordered dataset therefore encodes to
// the same bytes whether buffered through WriteCol or streamed site by
// site through ColSiteWriter, and a col -> jsonl -> col round trip is
// byte-identical.
func (d *Dataset) WriteCol(w io.Writer) error {
	visits := d.Visits()
	bySite := make(map[string][]colstore.VisitRow)
	var sites []string
	for i, v := range visits {
		if _, seen := bySite[v.Site]; !seen {
			sites = append(sites, v.Site)
		}
		bySite[v.Site] = append(bySite[v.Site], colstore.VisitRow{Seq: uint64(i), Visit: v})
	}
	cw := colstore.NewWriter(w)
	for _, site := range sites {
		if err := cw.WriteSite(site, bySite[site]); err != nil {
			return err
		}
	}
	return cw.Close()
}

// ReadCol loads a columnar dataset, restoring the original insertion
// order from the per-visit sequence numbers.
func ReadCol(r io.Reader) (*Dataset, error) {
	var rows []colstore.VisitRow
	if _, err := colstore.Scan(r, func(sb *colstore.SiteBlock) error {
		for i, v := range sb.Visits {
			rows = append(rows, colstore.VisitRow{Seq: sb.Seqs[i], Visit: v})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Seq < rows[b].Seq })
	d := New()
	for _, r := range rows {
		d.Add(r.Visit)
	}
	return d, nil
}

// ScanColSites streams a columnar dataset site by site without holding
// more than one site's visits in memory at once: fn receives each site's
// visits in sequence order. The streaming analysis path uses this to
// bound transient decode memory by the largest site block.
func ScanColSites(r io.Reader, fn func(sb *colstore.SiteBlock) error) (*colstore.Index, error) {
	return colstore.Scan(r, fn)
}

// DetectFormat sniffs the first bytes of r and reports which dataset
// format it holds, returning a reader that still yields the full stream
// (the sniffed prefix is not consumed). Empty input reports JSONL — an
// empty JSONL file is a valid empty dataset, while an empty columnar
// file is impossible (the envelope is mandatory).
func DetectFormat(r io.Reader) (format string, rd io.Reader, err error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	prefix, err := br.Peek(len(colstore.Magic))
	if err != nil && err != io.EOF {
		return "", nil, fmt.Errorf("dataset: sniff format: %w", err)
	}
	if colstore.Sniff(prefix) {
		return FormatCol, br, nil
	}
	return FormatJSONL, br, nil
}

// ReadAuto loads a dataset in either format, auto-detected from the
// magic bytes.
func ReadAuto(r io.Reader) (*Dataset, error) {
	format, rd, err := DetectFormat(r)
	if err != nil {
		return nil, err
	}
	if format == FormatCol {
		return ReadCol(rd)
	}
	return ReadJSONL(rd)
}

// OpenCol opens a columnar dataset for random access through its footer
// index — the shard-worker path, which decodes only the blocks whose
// page lists intersect the shard's assignment.
func OpenCol(ra io.ReaderAt, size int64) (*colstore.Reader, error) {
	return colstore.OpenReader(ra, size)
}

// GroupVisits builds per-page visit groups from a flat visit slice,
// sorted by (site, page URL) — the grouping a site block's visits need
// before they can enter the per-page analysis pool.
func GroupVisits(visits []*measurement.Visit) []*PageVisits {
	byPage := make(map[PageKey]*PageVisits, 16)
	var out []*PageVisits
	for _, v := range visits {
		key := PageKey{Site: v.Site, PageURL: v.PageURL}
		pv := byPage[key]
		if pv == nil {
			pv = &PageVisits{Key: key, ByProfile: make(map[string]*measurement.Visit)}
			byPage[key] = pv
			out = append(out, pv)
		}
		pv.ByProfile[v.Profile] = v
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key.Site != out[b].Key.Site {
			return out[a].Key.Site < out[b].Key.Site
		}
		return out[a].Key.PageURL < out[b].Key.PageURL
	})
	return out
}
