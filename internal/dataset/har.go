package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"webmeasure/internal/measurement"
)

// HTTP Archive (HAR) 1.2 export: the interchange format web tooling
// expects, so the raw visits can be inspected in devtools-style viewers or
// fed to third-party analyzers. One HAR log per visit.

type harLog struct {
	Log harLogBody `json:"log"`
}

type harLogBody struct {
	Version string     `json:"version"`
	Creator harCreator `json:"creator"`
	Pages   []harPage  `json:"pages"`
	Entries []harEntry `json:"entries"`
}

type harCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type harPage struct {
	StartedDateTime string         `json:"startedDateTime"`
	ID              string         `json:"id"`
	Title           string         `json:"title"`
	PageTimings     harPageTimings `json:"pageTimings"`
}

type harPageTimings struct {
	OnLoad int `json:"onLoad"`
}

type harEntry struct {
	Pageref         string      `json:"pageref"`
	StartedDateTime string      `json:"startedDateTime"`
	Time            int         `json:"time"`
	Request         harRequest  `json:"request"`
	Response        harResponse `json:"response"`
}

type harRequest struct {
	Method      string      `json:"method"`
	URL         string      `json:"url"`
	HTTPVersion string      `json:"httpVersion"`
	Headers     []harHeader `json:"headers"`
}

type harResponse struct {
	Status      int         `json:"status"`
	StatusText  string      `json:"statusText"`
	HTTPVersion string      `json:"httpVersion"`
	Headers     []harHeader `json:"headers"`
	Content     harContent  `json:"content"`
	RedirectURL string      `json:"redirectURL"`
}

type harHeader struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type harContent struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
}

// harEpoch anchors the synthetic timestamps (the simulation clock).
var harEpoch = time.Date(2022, 3, 15, 12, 0, 0, 0, time.UTC)

// WriteHAR exports one visit as a HAR 1.2 log. Failed visits produce an
// error: there is no traffic to export.
func WriteHAR(w io.Writer, v *measurement.Visit) error {
	if !v.Success {
		return fmt.Errorf("dataset: visit of %s by %s failed; no HAR to export", v.PageURL, v.Profile)
	}
	pageID := "page_1"
	log := harLog{Log: harLogBody{
		Version: "1.2",
		Creator: harCreator{Name: "webmeasure", Version: "1.0"},
		Pages: []harPage{{
			StartedDateTime: harEpoch.Format(time.RFC3339),
			ID:              pageID,
			Title:           v.PageURL,
			PageTimings:     harPageTimings{OnLoad: v.DurationMS},
		}},
	}}
	for _, req := range v.Requests {
		entry := harEntry{
			Pageref:         pageID,
			StartedDateTime: harEpoch.Add(time.Duration(req.TimeOffsetMS) * time.Millisecond).Format(time.RFC3339Nano),
			Time:            req.TimeOffsetMS,
			Request: harRequest{
				Method:      methodFor(req.Type),
				URL:         req.URL,
				HTTPVersion: "HTTP/2",
				Headers:     []harHeader{{Name: "Referer", Value: v.PageURL}},
			},
			Response: harResponse{
				Status:      req.Status,
				StatusText:  statusText(req.Status),
				HTTPVersion: "HTTP/2",
				Content:     harContent{Size: req.BodySize, MimeType: req.ContentType},
			},
		}
		for _, sc := range req.SetCookies {
			entry.Response.Headers = append(entry.Response.Headers,
				harHeader{Name: "Set-Cookie", Value: sc})
		}
		if req.ContentType != "" {
			entry.Response.Headers = append(entry.Response.Headers,
				harHeader{Name: "Content-Type", Value: req.ContentType})
		}
		log.Log.Entries = append(log.Log.Entries, entry)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func methodFor(t measurement.ResourceType) string {
	switch t {
	case measurement.TypeBeacon, measurement.TypeCSPReport:
		return "POST"
	default:
		return "GET"
	}
}

func statusText(code int) string {
	switch code {
	case 101:
		return "Switching Protocols"
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 302:
		return "Found"
	case 404:
		return "Not Found"
	default:
		return ""
	}
}
