package dataset

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"webmeasure/internal/measurement"
)

func visit(site, page, profile string, ok bool) *measurement.Visit {
	v := &measurement.Visit{Site: site, PageURL: page, Profile: profile, Success: ok}
	if ok {
		v.Requests = []measurement.Request{{URL: page, Type: measurement.TypeMainFrame}}
	} else {
		v.Failure = "injected"
	}
	return v
}

func TestAddAndGroup(t *testing.T) {
	d := New()
	d.Add(visit("a.example", "https://a.example/", "Sim1", true))
	d.Add(visit("a.example", "https://a.example/", "Sim2", true))
	d.Add(visit("a.example", "https://a.example/p1", "Sim1", true))
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	pages := d.Pages()
	if len(pages) != 2 {
		t.Fatalf("pages = %d", len(pages))
	}
	if pages[0].Key.PageURL != "https://a.example/" {
		t.Errorf("sort order wrong: %+v", pages[0].Key)
	}
	if len(pages[0].ByProfile) != 2 {
		t.Errorf("grouping wrong: %d profiles", len(pages[0].ByProfile))
	}
}

func TestVetting(t *testing.T) {
	d := New()
	profiles := []string{"Sim1", "Sim2"}
	// Page 1: both succeed. Page 2: one fails. Page 3: one missing.
	d.Add(visit("a.example", "https://a.example/1", "Sim1", true))
	d.Add(visit("a.example", "https://a.example/1", "Sim2", true))
	d.Add(visit("a.example", "https://a.example/2", "Sim1", true))
	d.Add(visit("a.example", "https://a.example/2", "Sim2", false))
	d.Add(visit("a.example", "https://a.example/3", "Sim1", true))
	vetted := d.VettedPages(profiles)
	if len(vetted) != 1 || vetted[0].Key.PageURL != "https://a.example/1" {
		t.Errorf("vetted = %+v", vetted)
	}
}

func TestProfilesSitesSuccessRate(t *testing.T) {
	d := New()
	d.Add(visit("a.example", "https://a.example/", "Sim1", true))
	d.Add(visit("b.example", "https://b.example/", "Sim1", false))
	d.Add(visit("b.example", "https://b.example/", "Old", true))
	if got := d.Profiles(); len(got) != 2 || got[0] != "Old" || got[1] != "Sim1" {
		t.Errorf("Profiles = %v", got)
	}
	if got := d.Sites(); len(got) != 2 || got[0] != "a.example" {
		t.Errorf("Sites = %v", got)
	}
	if r := d.SuccessRate("Sim1"); r != 0.5 {
		t.Errorf("SuccessRate(Sim1) = %v", r)
	}
	if r := d.SuccessRate("missing"); r != 0 {
		t.Errorf("SuccessRate(missing) = %v", r)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := New()
	v := visit("a.example", "https://a.example/", "Sim1", true)
	v.Requests = append(v.Requests, measurement.Request{
		URL:       "https://tr-metrics.example/track/event?sid=abc",
		Type:      measurement.TypeBeacon,
		FrameID:   1,
		FrameURL:  "https://ads.example/frame",
		CallStack: []measurement.StackFrame{{FuncName: "send", URL: "https://tr-metrics.example/js/analytics.js", Line: 10}},
	})
	v.Cookies = []measurement.CookieObservation{{Name: "uid", Domain: "tr-metrics.example", Path: "/", Secure: true, SameSite: "None"}}
	d.Add(v)
	d.Add(visit("b.example", "https://b.example/", "Old", false))

	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	rv := got.Pages()[0].ByProfile["Sim1"]
	if rv == nil || len(rv.Requests) != 2 || rv.Requests[1].CallStack[0].URL != "https://tr-metrics.example/js/analytics.js" {
		t.Errorf("round trip lost request detail: %+v", rv)
	}
	if len(rv.Cookies) != 1 || rv.Cookies[0].AttributeSignature() != "secure=true;httponly=false;samesite=None" {
		t.Errorf("round trip lost cookies: %+v", rv.Cookies)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON should error")
	}
	d, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || d.Len() != 0 {
		t.Errorf("blank lines should be skipped: %v %d", err, d.Len())
	}
}

func TestConcurrentAdd(t *testing.T) {
	d := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				d.Add(visit("c.example", "https://c.example/", "P"+string(rune('0'+g)), true))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 800 {
		t.Errorf("Len = %d, want 800", d.Len())
	}
}

func TestWriteHAR(t *testing.T) {
	v := &measurement.Visit{
		Site: "a.example", PageURL: "https://a.example/", Profile: "Sim1",
		Success: true, DurationMS: 1234,
		Requests: []measurement.Request{
			{URL: "https://a.example/", Type: measurement.TypeMainFrame, Status: 200,
				ContentType: "text/html", BodySize: 5000},
			{URL: "https://trk-metrics.example/track/event?sid=x", Type: measurement.TypeBeacon,
				Status: 204, ContentType: "image/gif", BodySize: 43, TimeOffsetMS: 250,
				SetCookies: []string{"uid=abc; Path=/; Secure"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteHAR(&buf, v); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("HAR is not valid JSON: %v", err)
	}
	log := parsed["log"].(map[string]any)
	if log["version"] != "1.2" {
		t.Errorf("version = %v", log["version"])
	}
	entries := log["entries"].([]any)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	beacon := entries[1].(map[string]any)
	reqObj := beacon["request"].(map[string]any)
	if reqObj["method"] != "POST" {
		t.Errorf("beacon method = %v", reqObj["method"])
	}
	respObj := beacon["response"].(map[string]any)
	if respObj["status"].(float64) != 204 {
		t.Errorf("beacon status = %v", respObj["status"])
	}
	headers := respObj["headers"].([]any)
	foundCookie := false
	for _, h := range headers {
		if h.(map[string]any)["name"] == "Set-Cookie" {
			foundCookie = true
		}
	}
	if !foundCookie {
		t.Error("Set-Cookie header missing from HAR response")
	}
	// Failed visits cannot export.
	if err := WriteHAR(&buf, &measurement.Visit{Success: false}); err == nil {
		t.Error("failed visit must not export")
	}
}

func TestFilterProfilesAndSites(t *testing.T) {
	d := New()
	d.Add(visit("a.example", "https://a.example/", "Sim1", true))
	d.Add(visit("a.example", "https://a.example/", "Old", true))
	d.Add(visit("b.example", "https://b.example/", "Sim1", false))

	fp := d.FilterProfiles("Sim1")
	if fp.Len() != 2 || len(fp.Profiles()) != 1 {
		t.Errorf("FilterProfiles: %d visits, %v", fp.Len(), fp.Profiles())
	}
	fs := d.FilterSites("b.example")
	if fs.Len() != 1 || fs.Sites()[0] != "b.example" {
		t.Errorf("FilterSites: %d visits %v", fs.Len(), fs.Sites())
	}
	// Original untouched.
	if d.Len() != 3 {
		t.Error("filters must not mutate the source")
	}
}

func TestMergeDatasets(t *testing.T) {
	a := New()
	a.Add(visit("a.example", "https://a.example/", "Sim1", false)) // failed first try
	a.Add(visit("a.example", "https://a.example/p1", "Sim1", true))
	b := New()
	b.Add(visit("a.example", "https://a.example/", "Sim1", true)) // retried OK
	b.Add(visit("c.example", "https://c.example/", "Old", true))

	m := Merge(a, b, nil)
	if m.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", m.Len())
	}
	pv := m.PageGroup(PageKey{Site: "a.example", PageURL: "https://a.example/"})
	if pv == nil || !pv.ByProfile["Sim1"].Success {
		t.Error("later dataset must win on conflicts")
	}
	if len(m.Sites()) != 2 {
		t.Errorf("sites = %v", m.Sites())
	}
}

// flushCountingWriter records how often Flush is called, standing in for
// an http.ResponseWriter behind StreamJSONL.
type flushCountingWriter struct {
	bytes.Buffer
	flushes int
}

func (w *flushCountingWriter) Flush() { w.flushes++ }

func TestStreamJSONLFlushesAndMatchesWriteJSONL(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		d.Add(visit("a.example", "https://a.example/"+strings.Repeat("p", i+1), "Sim1", true))
	}
	var plain bytes.Buffer
	if err := d.WriteJSONL(&plain); err != nil {
		t.Fatal(err)
	}
	w := &flushCountingWriter{}
	if err := d.StreamJSONL(w, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), w.Buffer.Bytes()) {
		t.Fatal("StreamJSONL bytes differ from WriteJSONL")
	}
	// 10 visits, flush every 3 → pushes after visits 3, 6, 9.
	if w.flushes != 3 {
		t.Fatalf("flushes = %d, want 3", w.flushes)
	}
	if got := len(strings.Split(strings.TrimRight(w.String(), "\n"), "\n")); got != 10 {
		t.Fatalf("lines = %d, want 10", got)
	}
}
