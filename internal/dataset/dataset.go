// Package dataset stores the measurement output — the role the BigQuery
// warehouse plays in the paper's framework (Appendix C). Visits are held in
// memory with page-level grouping for the cross-profile analyses and can be
// round-tripped through JSON Lines for cmd/crawl → cmd/analyze pipelines.
package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"webmeasure/internal/measurement"
)

// PageKey identifies a page within its site.
type PageKey struct {
	Site    string `json:"site"`
	PageURL string `json:"page_url"`
}

// PageVisits groups the visits every profile made to one page.
type PageVisits struct {
	Key       PageKey
	ByProfile map[string]*measurement.Visit
}

// AllSucceeded reports whether every one of the given profiles crawled the
// page cleanly — the paper's vetting criterion (§3.2 "Comparing Request
// Trees"). Degraded visits (fault-truncated observations) do not count.
func (p *PageVisits) AllSucceeded(profiles []string) bool {
	for _, name := range profiles {
		v := p.ByProfile[name]
		if v == nil || !v.Clean() {
			return false
		}
	}
	return true
}

// Dataset is a collection of visits. It is safe for concurrent Add.
type Dataset struct {
	mu     sync.Mutex
	visits []*measurement.Visit
	byPage map[PageKey]*PageVisits
}

// New creates an empty dataset.
func New() *Dataset {
	return &Dataset{byPage: make(map[PageKey]*PageVisits)}
}

// Add records a visit.
func (d *Dataset) Add(v *measurement.Visit) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.visits = append(d.visits, v)
	key := PageKey{Site: v.Site, PageURL: v.PageURL}
	pv := d.byPage[key]
	if pv == nil {
		pv = &PageVisits{Key: key, ByProfile: make(map[string]*measurement.Visit)}
		d.byPage[key] = pv
	}
	pv.ByProfile[v.Profile] = v
}

// Len returns the number of stored visits.
func (d *Dataset) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.visits)
}

// Visits returns all visits in insertion order. The slice must not be
// modified.
func (d *Dataset) Visits() []*measurement.Visit {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.visits
}

// Pages returns the per-page visit groups sorted by (site, page URL) for
// deterministic iteration.
func (d *Dataset) Pages() []*PageVisits {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*PageVisits, 0, len(d.byPage))
	for _, pv := range d.byPage {
		out = append(out, pv)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key.Site != out[b].Key.Site {
			return out[a].Key.Site < out[b].Key.Site
		}
		return out[a].Key.PageURL < out[b].Key.PageURL
	})
	return out
}

// PageGroup returns the visit group for one page key, or nil.
func (d *Dataset) PageGroup(key PageKey) *PageVisits {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.byPage[key]
}

// VettedPages returns the pages every given profile crawled successfully.
func (d *Dataset) VettedPages(profiles []string) []*PageVisits {
	var out []*PageVisits
	for _, pv := range d.Pages() {
		if pv.AllSucceeded(profiles) {
			out = append(out, pv)
		}
	}
	return out
}

// Profiles returns the distinct profile names present, sorted.
func (d *Dataset) Profiles() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := map[string]bool{}
	for _, v := range d.visits {
		seen[v.Profile] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sites returns the distinct sites present, sorted.
func (d *Dataset) Sites() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := map[string]bool{}
	for _, v := range d.visits {
		seen[v.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SuccessRate returns a profile's share of successful visits (0 when the
// profile made none).
func (d *Dataset) SuccessRate(profile string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	total, ok := 0, 0
	for _, v := range d.visits {
		if v.Profile != profile {
			continue
		}
		total++
		if v.Success {
			ok++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// WriteJSONL streams the dataset as one visit per line.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	return d.StreamJSONL(w, 0)
}

// flusher is the push half of http.Flusher, matched structurally so this
// package does not import net/http.
type flusher interface{ Flush() }

// StreamJSONL writes the dataset as one visit per line, flushing the
// buffer — and, when w is an http.ResponseWriter that supports it, the
// HTTP chunk — every flushEvery visits, so a client watching a large
// download sees steady progress instead of one burst at the end.
// flushEvery <= 0 flushes only once at the end (WriteJSONL's behavior).
func (d *Dataset) StreamJSONL(w io.Writer, flushEvery int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	fl, _ := w.(flusher)
	for i, v := range d.Visits() {
		if err := enc.Encode(v); err != nil {
			return fmt.Errorf("dataset: encode visit: %w", err)
		}
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("dataset: flush: %w", err)
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
	return bw.Flush()
}

// maxJSONLLine caps a single JSONL visit record. A visit with tens of
// thousands of requests fits comfortably; anything larger is almost
// certainly a corrupted or concatenated file.
const maxJSONLLine = 64 << 20

// ReadJSONL loads a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxJSONLLine)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var v measurement.Visit
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		d.Add(&v)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("dataset: line %d: visit record exceeds the %d MiB per-line limit (corrupt file, or use the columnar format): %w",
				line+1, maxJSONLLine>>20, err)
		}
		return nil, fmt.Errorf("dataset: line %d: read: %w", line+1, err)
	}
	return d, nil
}

// FilterProfiles returns a new dataset holding only the given profiles'
// visits (e.g. to analyze a two-profile subset of a five-profile crawl).
func (d *Dataset) FilterProfiles(profiles ...string) *Dataset {
	keep := make(map[string]bool, len(profiles))
	for _, p := range profiles {
		keep[p] = true
	}
	out := New()
	for _, v := range d.Visits() {
		if keep[v.Profile] {
			out.Add(v)
		}
	}
	return out
}

// FilterPages returns a new dataset holding only visits to the pages the
// keep predicate selects — e.g. one shard's slice of the page-key space
// under a shard plan.
func (d *Dataset) FilterPages(keep func(PageKey) bool) *Dataset {
	out := New()
	for _, v := range d.Visits() {
		if keep(PageKey{Site: v.Site, PageURL: v.PageURL}) {
			out.Add(v)
		}
	}
	return out
}

// FilterSites returns a new dataset holding only visits to the given sites.
func (d *Dataset) FilterSites(sites ...string) *Dataset {
	keep := make(map[string]bool, len(sites))
	for _, s := range sites {
		keep[s] = true
	}
	out := New()
	for _, v := range d.Visits() {
		if keep[v.Site] {
			out.Add(v)
		}
	}
	return out
}

// Merge combines several datasets into a new one. Later datasets win when
// the same (site, page, profile) visit appears twice (checkpoint merging).
func Merge(sets ...*Dataset) *Dataset {
	out := New()
	seen := map[string]int{} // visit key → index in out.visits
	for _, d := range sets {
		if d == nil {
			continue
		}
		for _, v := range d.Visits() {
			key := v.Site + "\x00" + v.PageURL + "\x00" + v.Profile
			if idx, ok := seen[key]; ok {
				out.mu.Lock()
				out.visits[idx] = v
				pv := out.byPage[PageKey{Site: v.Site, PageURL: v.PageURL}]
				pv.ByProfile[v.Profile] = v
				out.mu.Unlock()
				continue
			}
			out.Add(v)
			seen[key] = out.Len() - 1
		}
	}
	return out
}
