package treediff

import (
	"math"
	"strings"
	"testing"

	"webmeasure/internal/tree"
)

func TestComputeDiffFig6(t *testing.T) {
	trees := fig6Trees(t)
	d := ComputeDiff(trees[0], trees[2]) // T1 vs T3
	// T1: a,b,c,d,e(x,y under e); T3: a,b,c,d,y(under d).
	if len(d.OnlyA) != 2 || d.OnlyA[0] != u("e") || d.OnlyA[1] != u("x") {
		t.Errorf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 0 {
		t.Errorf("OnlyB = %v", d.OnlyB)
	}
	if len(d.Moved) != 1 || d.Moved[0].Key != u("y") {
		t.Fatalf("Moved = %+v", d.Moved)
	}
	m := d.Moved[0]
	if m.ParentA != u("e") || m.ParentB != u("d") || m.DepthA != 4 || m.DepthB != 3 {
		t.Errorf("move detail: %+v", m)
	}
	if d.Stable != 4 { // a, b, c, d
		t.Errorf("Stable = %d, want 4", d.Stable)
	}
	if d.Identical() {
		t.Error("differing trees reported identical")
	}
}

func TestComputeDiffIdentical(t *testing.T) {
	trees := fig6Trees(t)
	d := ComputeDiff(trees[0], trees[0])
	if !d.Identical() || d.Stable != 7 {
		t.Errorf("self-diff wrong: %s", d.Summary())
	}
}

func TestDiffDepthChanged(t *testing.T) {
	// Same parent sets, but an ancestor moved: c is a child of b in tree
	// two instead of a, so d (child of c in both) changes depth... build:
	// T1: root→a, a→c, c→d.  T2: root→a, root→b? Simplest depth change
	// with same parent: impossible unless an ancestor moved; construct:
	// T1: root→a, a→b, b→c.  T2: root→b(!), b→c. Then c's parent is b in
	// both, but depth differs (3 vs 2); b itself is "moved".
	t1 := buildTree(t, "D1", [][2]string{
		{u("a"), rootURL}, {u("b"), u("a")}, {u("c"), u("b")},
	})
	t2 := buildTree(t, "D2", [][2]string{
		{u("b"), rootURL}, {u("c"), u("b")},
	})
	d := ComputeDiff(t1, t2)
	if len(d.Moved) != 1 || d.Moved[0].Key != u("b") {
		t.Fatalf("Moved = %+v", d.Moved)
	}
	if len(d.DepthChanged) != 1 || d.DepthChanged[0].Key != u("c") {
		t.Fatalf("DepthChanged = %+v", d.DepthChanged)
	}
	if d.DepthChanged[0].DepthA != 3 || d.DepthChanged[0].DepthB != 2 {
		t.Errorf("depths: %+v", d.DepthChanged[0])
	}
}

func TestDiffWrite(t *testing.T) {
	trees := fig6Trees(t)
	d := ComputeDiff(trees[0], trees[2])
	var sb strings.Builder
	d.Write(&sb, 1)
	out := sb.String()
	for _, want := range []string{"diff P1 vs P3", "only in P1", "moved:", "… 1 more"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// Unlimited output holds every key.
	sb.Reset()
	d.Write(&sb, 0)
	if !strings.Contains(sb.String(), u("x")) {
		t.Error("unlimited output truncated")
	}
}

// TestDiffConsistentWithComparison: nodes the pairwise Comparison scores as
// same-parent must never appear in Diff.Moved, and presence mismatches
// must land in OnlyA/OnlyB.
func TestDiffConsistentWithComparison(t *testing.T) {
	trees := fig6Trees(t)
	d := ComputeDiff(trees[0], trees[1])
	cmp := Compare([]*tree.Tree{trees[0], trees[1]})
	movedSet := map[string]bool{}
	for _, m := range d.Moved {
		movedSet[m.Key] = true
	}
	for key, ni := range cmp.Nodes {
		if key == rootURL {
			continue
		}
		if ni.Presence == 2 && ni.SameParentEverywhere && movedSet[key] {
			t.Errorf("node %s same-parent in Comparison but moved in Diff", key)
		}
		if ni.Presence == 1 {
			found := false
			for _, k := range append(append([]string{}, d.OnlyA...), d.OnlyB...) {
				if k == key {
					found = true
				}
			}
			if !found {
				t.Errorf("single-presence node %s missing from Only sets", key)
			}
		}
	}
}

func TestDepthSimilarityWeighting(t *testing.T) {
	// Build trees where a populous stable depth-1 coexists with a sparse
	// volatile depth-2: weighting must pull the score toward the stable
	// mass, the unweighted variant toward the volatile level.
	mk := func(profile, deepChild string) *tree.Tree {
		edges := [][2]string{}
		for i := 0; i < 10; i++ {
			edges = append(edges, [2]string{u("stable" + name(i)), rootURL})
		}
		edges = append(edges, [2]string{u(deepChild), u("stable" + name(0))})
		return buildTree(t, profile, edges)
	}
	trees := []*tree.Tree{mk("W1", "volatileA"), mk("W2", "volatileB")}
	cmp := Compare(trees)
	weighted, _ := cmp.DepthSimilarity(DepthFilter{})
	unweighted, _ := cmp.DepthSimilarity(DepthFilter{Unweighted: true})
	// Depth 1: J = 10/10 = 1 (11 nodes incl. one volatile? no — volatile
	// children are at depth 2). Depth 2: J = 0. Weighted: (1*10 + 0*2)/12;
	// unweighted: (1+0)/2.
	if wWant := 10.0 / 12; math.Abs(weighted-wWant) > 1e-12 {
		t.Errorf("weighted = %v, want %v", weighted, wWant)
	}
	if math.Abs(unweighted-0.5) > 1e-12 {
		t.Errorf("unweighted = %v, want 0.5", unweighted)
	}
}

func TestConsensus(t *testing.T) {
	trees := fig6Trees(t)
	// Presences: a=3, b=2, c=3, d=3, e=2, x=2, y=3.
	cons := Consensus(trees, 3)
	keys := map[string]ConsensusNode{}
	for _, c := range cons {
		keys[c.Key] = c
	}
	for _, want := range []string{u("a"), u("c"), u("d"), u("y")} {
		if _, ok := keys[want]; !ok {
			t.Errorf("consensus(3) missing %s", want)
		}
	}
	for _, not := range []string{u("b"), u("e"), u("x")} {
		if _, ok := keys[not]; ok {
			t.Errorf("consensus(3) must exclude %s", not)
		}
	}
	// y: parents e(2), d(1) → majority e with 2/3 agreement.
	y := keys[u("y")]
	if y.Parent != u("e") || math.Abs(y.ParentAgreement-2.0/3) > 1e-12 {
		t.Errorf("y consensus parent: %+v", y)
	}
	// d: parent c in all three → perfect agreement.
	if d := keys[u("d")]; d.Parent != u("c") || d.ParentAgreement != 1 {
		t.Errorf("d consensus parent: %+v", d)
	}

	// Quorum 2 admits the rest.
	cons2 := Consensus(trees, 2)
	if len(cons2) != 7 {
		t.Errorf("consensus(2) size = %d, want 7", len(cons2))
	}
	// Default quorum = strict majority (2 of 3).
	if got := Consensus(trees, 0); len(got) != len(cons2) {
		t.Errorf("default quorum size = %d, want %d", len(got), len(cons2))
	}
	// Sorted output.
	for i := 1; i < len(cons2); i++ {
		if cons2[i].Key <= cons2[i-1].Key {
			t.Fatal("consensus not sorted")
		}
	}
}

func TestConsensusShare(t *testing.T) {
	trees := fig6Trees(t)
	all := ConsensusShare(trees, 1) // union
	maj := ConsensusShare(trees, 2) // 7/7 of the union present ≥2
	strict := ConsensusShare(trees, 3)
	if all != 1 {
		t.Errorf("quorum-1 share = %v, want 1", all)
	}
	if maj != 1 {
		t.Errorf("quorum-2 share = %v (every fig6 node is in ≥2 trees)", maj)
	}
	if math.Abs(strict-4.0/7) > 1e-12 {
		t.Errorf("quorum-3 share = %v, want 4/7", strict)
	}
	if ConsensusShare(nil, 1) != 1 {
		t.Error("no trees should report 1")
	}
}
