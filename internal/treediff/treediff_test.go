package treediff

import (
	"math"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tree"
)

const rootURL = "https://fig6.example/"

// buildTree constructs a tree from (child, parent) edges using synthetic
// call stacks; parents must precede children.
func buildTree(t *testing.T, profile string, edges [][2]string) *tree.Tree {
	t.Helper()
	v := &measurement.Visit{
		Site: "fig6.example", PageURL: rootURL, Profile: profile, Success: true,
		Requests: []measurement.Request{{URL: rootURL, Type: measurement.TypeMainFrame}},
	}
	for _, e := range edges {
		req := measurement.Request{URL: e[0], Type: measurement.TypeScript}
		if e[1] != rootURL {
			req.CallStack = []measurement.StackFrame{{FuncName: "f", URL: e[1]}}
		}
		v.Requests = append(v.Requests, req)
	}
	tr, err := (&tree.Builder{}).Build(v)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func u(name string) string { return "https://fig6.example/" + name }

// fig6Trees builds the Appendix D example:
//
//	T1: F→{a,b,c}, c→d, d→e, e→{x,y}
//	T2: F→{a,c},   c→d, d→e, e→{x,y}
//	T3: F→{a,b,c}, c→d, d→y        (e absent)
func fig6Trees(t *testing.T) []*tree.Tree {
	t1 := buildTree(t, "P1", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("e"), u("d")}, {u("x"), u("e")}, {u("y"), u("e")},
	})
	t2 := buildTree(t, "P2", [][2]string{
		{u("a"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("e"), u("d")}, {u("x"), u("e")}, {u("y"), u("e")},
	})
	t3 := buildTree(t, "P3", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("c"), rootURL},
		{u("d"), u("c")}, {u("y"), u("d")},
	})
	return []*tree.Tree{t1, t2, t3}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFig6DepthOneSimilarity(t *testing.T) {
	c := Compare(fig6Trees(t))
	// Horizontal, depth one: ({a,b,c},{a,c},{a,b,c}) → (2/3 + 1 + 2/3)/3 ≈ .77
	root := c.Nodes[rootURL]
	want := (2.0/3 + 1 + 2.0/3) / 3
	if !almost(root.ChildSim, want) {
		t.Errorf("depth-one similarity = %v, want %v", root.ChildSim, want)
	}
}

func TestFig6ParentOfE(t *testing.T) {
	c := Compare(fig6Trees(t))
	e := c.Nodes[u("e")]
	if e == nil {
		t.Fatal("node e missing")
	}
	// Parents: {d}, {d}, absent → (1 + 0 + 0)/3 ≈ .3 (Appendix D).
	if !almost(e.ParentSim, 1.0/3) {
		t.Errorf("parent similarity of e = %v, want 1/3", e.ParentSim)
	}
	if e.Presence != 2 || !e.SameDepth || !e.SameParentEverywhere {
		t.Errorf("e aggregate wrong: %+v", e)
	}
}

func TestFig6AllNodesSimilarity(t *testing.T) {
	c := Compare(fig6Trees(t))
	// Sets: {a,b,c,d,e,x,y}, {a,c,d,e,x,y}, {a,b,c,d,y} →
	// (6/7 + 5/7 + 4/7)/3 = 5/7.
	if got := c.AllNodesSimilarity(); !almost(got, 5.0/7) {
		t.Errorf("all-nodes similarity = %v, want 5/7", got)
	}
}

func TestPresenceAndDepths(t *testing.T) {
	c := Compare(fig6Trees(t))
	a := c.Nodes[u("a")]
	if a.Presence != 3 || !a.SameDepth || a.Depths[0] != 1 {
		t.Errorf("a: %+v", a)
	}
	b := c.Nodes[u("b")]
	if b.Presence != 2 {
		t.Errorf("b presence = %d", b.Presence)
	}
	y := c.Nodes[u("y")]
	if y.Presence != 3 || y.SameDepth {
		t.Errorf("y should differ in depth: %+v", y)
	}
	if got := y.MeanDepth(); !almost(got, (4.0+4+3)/3) {
		t.Errorf("y mean depth = %v", got)
	}
	if c.Nodes[rootURL].Presence != 3 {
		t.Error("root must be present everywhere")
	}
}

func TestChains(t *testing.T) {
	c := Compare(fig6Trees(t))
	d := c.Nodes[u("d")]
	if !d.ChainEqualAll {
		t.Errorf("d has identical chains in all trees: %+v", d)
	}
	if d.UniqueChains != 0 {
		t.Errorf("d unique chains = %d", d.UniqueChains)
	}
	y := c.Nodes[u("y")]
	if y.ChainEqualAll {
		t.Error("y chains differ (T3 loads y from d)")
	}
	// y's chain F/c/d/e/y appears in T1 and T2 (shared); F/c/d/y only in
	// T3 → one unique chain.
	if y.UniqueChains != 1 {
		t.Errorf("y unique chains = %d, want 1", y.UniqueChains)
	}
	e := c.Nodes[u("e")]
	if e.ChainEqualAll {
		t.Error("e absent from T3 cannot have ChainEqualAll")
	}
}

func TestSameParentEverywhere(t *testing.T) {
	c := Compare(fig6Trees(t))
	if !c.Nodes[u("d")].SameParentEverywhere {
		t.Error("d always loaded by c")
	}
	if c.Nodes[u("y")].SameParentEverywhere {
		t.Error("y loaded by e and d")
	}
}

func TestChildCounts(t *testing.T) {
	c := Compare(fig6Trees(t))
	e := c.Nodes[u("e")]
	if e.MaxChildren != 2 || !e.HasChildAnywhere {
		t.Errorf("e children: %+v", e)
	}
	if e.NumChildren[2] != -1 {
		t.Errorf("absent tree must report -1: %v", e.NumChildren)
	}
	x := c.Nodes[u("x")]
	if x.HasChildAnywhere || x.MaxChildren != 0 {
		t.Errorf("x is a leaf: %+v", x)
	}
}

func TestDepthSimilarityFilters(t *testing.T) {
	c := Compare(fig6Trees(t))
	all, depths := c.DepthSimilarity(DepthFilter{})
	if depths != 4 {
		t.Fatalf("depths compared = %d, want 4", depths)
	}
	if all <= 0 || all > 1 {
		t.Fatalf("similarity out of range: %v", all)
	}
	inAll, _ := c.DepthSimilarity(DepthFilter{OnlyInAllTrees: true})
	if inAll < all {
		t.Errorf("nodes-in-all-trees similarity (%v) should be ≥ all-nodes (%v)", inAll, all)
	}
	withChildren, _ := c.DepthSimilarity(DepthFilter{OnlyWithChildren: true})
	if withChildren <= 0 || withChildren > 1 {
		t.Errorf("with-children similarity out of range: %v", withChildren)
	}
	fp := tree.FirstParty
	fpSim, fpDepths := c.DepthSimilarity(DepthFilter{Party: &fp})
	if fpDepths == 0 || fpSim <= 0 {
		t.Errorf("first-party similarity degenerate: %v %d", fpSim, fpDepths)
	}
	// Degenerate: filter admitting nothing yields (1, 0).
	tp := tree.ThirdParty
	tpSim, tpDepths := c.DepthSimilarity(DepthFilter{Party: &tp})
	if tpDepths != 0 || tpSim != 1 {
		t.Errorf("no third-party nodes here: got %v %d", tpSim, tpDepths)
	}
}

func TestHorizontalSimilarities(t *testing.T) {
	c := Compare(fig6Trees(t))
	h := c.HorizontalSimilarities()
	if _, ok := h[rootURL]; !ok {
		t.Error("root must appear in the horizontal pass")
	}
	if _, ok := h[u("x")]; ok {
		t.Error("leaf without children must not appear")
	}
	if _, ok := h[u("e")]; !ok {
		t.Error("e (present twice, has children) must appear")
	}
}

func TestPairwisePresence(t *testing.T) {
	c := Compare(fig6Trees(t))
	// T1 vs T2 (non-root nodes + root? PairwisePresence uses all keys incl.
	// root): T1 has 8 keys, T2 7, shared 7 → 7/8.
	if got := c.PairwisePresence(0, 1); !almost(got, 7.0/8) {
		t.Errorf("pairwise presence T1,T2 = %v, want 7/8", got)
	}
	if got := c.PairwisePresence(0, 0); got != 1 {
		t.Errorf("self presence = %v", got)
	}
}

func TestSingleTreeDegenerate(t *testing.T) {
	trees := fig6Trees(t)[:1]
	c := Compare(trees)
	for _, ni := range c.Nodes {
		if ni.ChildSim != 1 || ni.ParentSim != 1 {
			t.Errorf("single-tree similarities must be 1: %+v", ni)
		}
		if !ni.ChainEqualAll {
			t.Errorf("single tree: all chains trivially equal: %+v", ni)
		}
	}
}

// BenchmarkCompare and the rest of the kernel benchmark suite live in
// bench_test.go.
