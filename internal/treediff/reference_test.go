package treediff

import (
	"fmt"
	"math/rand"
	"testing"

	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
)

// The historical map-of-strings kernel, kept verbatim as the reference the
// interned int32 kernel must match bit-for-bit: both count the same
// (intersection, union) integers and divide once, so every similarity —
// floats included — is compared with ==, not a tolerance.

type refNode struct {
	childSim, parentSim float64
	sameParent          bool
	chainEqualAll       bool
	uniqueChains        int
}

func refFill(trees []*tree.Tree, ni *NodeInfo) refNode {
	var out refNode
	var childSets []map[string]bool
	parentSets := make([]map[string]bool, len(trees))
	chainByTree := make([]string, len(trees))
	out.sameParent = true
	var firstParent string
	haveParent := false
	for ti, t := range trees {
		n := t.Node(ni.Key)
		if n == nil {
			parentSets[ti] = nil
			continue
		}
		childSets = append(childSets, n.ChildKeys())
		ps := map[string]bool{}
		if n.Parent != nil {
			ps[n.Parent.Key] = true
			if !haveParent {
				firstParent, haveParent = n.Parent.Key, true
			} else if n.Parent.Key != firstParent {
				out.sameParent = false
			}
		}
		parentSets[ti] = ps
		chainByTree[ti] = n.ChainKey()
	}
	out.childSim = stats.PairwiseMeanJaccard(childSets)
	out.parentSim = stats.PairwiseMeanJaccard(parentSets)
	counts := map[string]int{}
	for _, ch := range chainByTree {
		if ch != "" {
			counts[ch]++
		}
	}
	out.chainEqualAll = ni.Presence == len(trees) && len(counts) == 1 && len(trees) > 0
	for _, ch := range chainByTree {
		if ch != "" && counts[ch] == 1 {
			out.uniqueChains++
		}
	}
	return out
}

func refDepthSimilarity(trees []*tree.Tree, c *Comparison, f DepthFilter) (float64, int) {
	maxDepth := 0
	for _, t := range trees {
		if d := t.MaxDepth(); d > maxDepth {
			maxDepth = d
		}
	}
	var sum, weight float64
	depths := 0
	for d := 1; d <= maxDepth; d++ {
		sets := make([]map[string]bool, len(trees))
		union := map[string]bool{}
		for ti, t := range trees {
			set := map[string]bool{}
			for key := range t.KeysAtDepth(d) {
				ni := c.Nodes[key]
				if ni != nil && f.admit(ni, len(trees)) {
					set[key] = true
					union[key] = true
				}
			}
			sets[ti] = set
		}
		if len(union) == 0 {
			continue
		}
		w := float64(len(union))
		if f.Unweighted {
			w = 1
		}
		sum += stats.PairwiseMeanJaccard(sets) * w
		weight += w
		depths++
	}
	if depths == 0 {
		return 1, 0
	}
	return sum / weight, depths
}

func refAllNodesSimilarity(trees []*tree.Tree) float64 {
	sets := make([]map[string]bool, len(trees))
	for ti, t := range trees {
		set := make(map[string]bool, t.NodeCount())
		for _, n := range t.Nodes() {
			if !n.IsRoot() {
				set[n.Key] = true
			}
		}
		sets[ti] = set
	}
	return stats.PairwiseMeanJaccard(sets)
}

func refPairwisePresence(a, b *tree.Tree) float64 {
	setA, setB := map[string]bool{}, map[string]bool{}
	for _, n := range a.Nodes() {
		setA[n.Key] = true
	}
	for _, n := range b.Nodes() {
		setB[n.Key] = true
	}
	return stats.Jaccard(setA, setB)
}

// TestCompareMatchesMapReference pins the interned kernel to the map
// kernel on randomized tree populations: every per-node aggregate and
// every aggregate similarity must be byte-identical (exact float
// equality), so swapping kernels can never move a report by even one
// formatting digit.
func TestCompareMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 120; iter++ {
		trees := randTrees(t, rng, 1+rng.Intn(5))
		c := Compare(trees)
		for key, ni := range c.Nodes {
			want := refFill(trees, ni)
			if ni.ChildSim != want.childSim {
				t.Fatalf("iter %d node %s: ChildSim %v != reference %v", iter, key, ni.ChildSim, want.childSim)
			}
			if ni.ParentSim != want.parentSim {
				t.Fatalf("iter %d node %s: ParentSim %v != reference %v", iter, key, ni.ParentSim, want.parentSim)
			}
			if ni.SameParentEverywhere != want.sameParent {
				t.Fatalf("iter %d node %s: SameParentEverywhere %v != reference %v", iter, key, ni.SameParentEverywhere, want.sameParent)
			}
			if ni.ChainEqualAll != want.chainEqualAll {
				t.Fatalf("iter %d node %s: ChainEqualAll %v != reference %v", iter, key, ni.ChainEqualAll, want.chainEqualAll)
			}
			if ni.UniqueChains != want.uniqueChains {
				t.Fatalf("iter %d node %s: UniqueChains %d != reference %d", iter, key, ni.UniqueChains, want.uniqueChains)
			}
		}
		if got, want := c.AllNodesSimilarity(), refAllNodesSimilarity(trees); got != want {
			t.Fatalf("iter %d: AllNodesSimilarity %v != reference %v", iter, got, want)
		}
		fp, tp := tree.FirstParty, tree.ThirdParty
		for _, f := range []DepthFilter{
			{}, {OnlyWithChildren: true}, {OnlyInAllTrees: true}, {Unweighted: true},
			{Party: &fp}, {Party: &tp}, {OnlyWithChildren: true, OnlyInAllTrees: true, Unweighted: true},
		} {
			gotSim, gotDepths := c.DepthSimilarity(f)
			wantSim, wantDepths := refDepthSimilarity(trees, c, f)
			if gotSim != wantSim || gotDepths != wantDepths {
				t.Fatalf("iter %d filter %+v: DepthSimilarity (%v, %d) != reference (%v, %d)",
					iter, f, gotSim, gotDepths, wantSim, wantDepths)
			}
		}
		for i := range trees {
			for j := range trees {
				if got, want := c.PairwisePresence(i, j), refPairwisePresence(trees[i], trees[j]); got != want {
					t.Fatalf("iter %d: PairwisePresence(%d,%d) %v != reference %v", iter, i, j, got, want)
				}
			}
		}
	}
}

// TestCompareConcurrentDepthSimilarity exercises the pooled scratch from
// several goroutines on several comparisons at once — the job-server usage
// pattern — so `go test -race` guards the pool's isolation.
func TestCompareConcurrentDepthSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cmps := make([]*Comparison, 8)
	wants := make([]float64, len(cmps))
	for i := range cmps {
		cmps[i] = Compare(randTrees(t, rng, 2+rng.Intn(3)))
		wants[i], _ = cmps[i].DepthSimilarity(DepthFilter{})
	}
	done := make(chan error, 4*len(cmps))
	for w := 0; w < 4; w++ {
		go func() {
			for i, c := range cmps {
				sim, _ := c.DepthSimilarity(DepthFilter{})
				if sim != wants[i] {
					done <- fmt.Errorf("comparison %d: concurrent sim %v != %v", i, sim, wants[i])
					continue
				}
				done <- nil
			}
		}()
	}
	for i := 0; i < 4*len(cmps); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
