package treediff

import (
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
)

// The paper chooses node-level comparison over whole-tree distances
// ("We choose not to compute similarities of entire trees (e.g., using the
// Hamming distance) ... as it provides deeper insights into the changes in
// the relationships between the nodes", §3.2). The functions below
// implement the rejected alternative so the choice can be evaluated: a
// single score per tree pair, with no per-node attribution.

// EdgeSimilarity treats each tree as its set of (parent, child) edges and
// returns the pairwise-mean Jaccard over all trees. A coarse whole-tree
// score: sensitive to both presence and attribution changes, but unable to
// say *which* nodes moved.
func EdgeSimilarity(trees []*tree.Tree) float64 {
	sets := make([]map[string]bool, len(trees))
	for i, t := range trees {
		set := map[string]bool{}
		for _, n := range t.Nodes() {
			if n.Parent != nil {
				set[n.Parent.Key+"\x00"+n.Key] = true
			}
		}
		sets[i] = set
	}
	return stats.PairwiseMeanJaccard(sets)
}

// HammingSimilarity aligns all trees on the union of node keys and scores
// each pair by the share of positions that agree — a node position agrees
// when both trees either lack the key or contain it *with the same parent*
// (the vectorized Hamming view of a labelled tree). Returns the pairwise
// mean over all tree pairs; 1 for fewer than two trees.
func HammingSimilarity(trees []*tree.Tree) float64 {
	if len(trees) < 2 {
		return 1
	}
	union := map[string]bool{}
	for _, t := range trees {
		for _, n := range t.Nodes() {
			if !n.IsRoot() {
				union[n.Key] = true
			}
		}
	}
	if len(union) == 0 {
		return 1
	}
	parentOf := func(t *tree.Tree, key string) (string, bool) {
		n := t.Node(key)
		if n == nil || n.Parent == nil {
			return "", n != nil
		}
		return n.Parent.Key, true
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			agree := 0
			for key := range union {
				pi, oki := parentOf(trees[i], key)
				pj, okj := parentOf(trees[j], key)
				if oki == okj && pi == pj {
					agree++
				}
			}
			sum += float64(agree) / float64(len(union))
			pairs++
		}
	}
	return sum / float64(pairs)
}
