package treediff

import (
	"math/rand"
	"testing"

	"webmeasure/internal/tree"
)

func TestEdgeSimilarityFig6(t *testing.T) {
	trees := fig6Trees(t)
	got := EdgeSimilarity(trees)
	// Edges T1: F-a F-b F-c c-d d-e e-x e-y (7)
	//       T2: F-a F-c c-d d-e e-x e-y (6)
	//       T3: F-a F-b F-c c-d d-y (5)
	// J(T1,T2)=6/7, J(T1,T3)=4/8=1/2, J(T2,T3)=3/8.
	want := (6.0/7 + 0.5 + 3.0/8) / 3
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("EdgeSimilarity = %v, want %v", got, want)
	}
}

func TestEdgeSimilarityIdenticalTrees(t *testing.T) {
	trees := fig6Trees(t)
	if got := EdgeSimilarity([]*tree.Tree{trees[0], trees[0]}); got != 1 {
		t.Errorf("identical trees should score 1, got %v", got)
	}
	if got := EdgeSimilarity(trees[:1]); got != 1 {
		t.Errorf("single tree should score 1, got %v", got)
	}
}

func TestHammingSimilarityFig6(t *testing.T) {
	trees := fig6Trees(t)
	got := HammingSimilarity(trees)
	// Union of non-root keys: a b c d e x y (7).
	// T1 vs T2: b absent in T2 (disagree); others same parent → 6/7.
	// T1 vs T3: e,x absent in T3 (2 disagreements), y parent e vs d → 4/7.
	// T2 vs T3: b absent in T2 present in T3, e,x absent in T3, y parent
	// differs → agree on a,c,d → 3/7.
	want := (6.0/7 + 4.0/7 + 3.0/7) / 3
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("HammingSimilarity = %v, want %v", got, want)
	}
	if got := HammingSimilarity(trees[:1]); got != 1 {
		t.Errorf("single tree = %v, want 1", got)
	}
}

// TestWholeTreeScoresHideAttribution demonstrates why the paper prefers the
// node-level analysis: two tree sets with identical whole-tree scores can
// have completely different failure modes (missing nodes vs moved nodes),
// which only the per-node comparison distinguishes.
func TestWholeTreeScoresHideAttribution(t *testing.T) {
	// Set A: node e missing from the second tree.
	a1 := buildTree(t, "A1", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("e"), u("a")},
	})
	a2 := buildTree(t, "A2", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL},
	})
	// Set B: node e present in both but re-parented.
	b1 := buildTree(t, "B1", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("e"), u("a")},
	})
	b2 := buildTree(t, "B2", [][2]string{
		{u("a"), rootURL}, {u("b"), rootURL}, {u("e"), u("b")},
	})
	hamA := HammingSimilarity([]*tree.Tree{a1, a2})
	hamB := HammingSimilarity([]*tree.Tree{b1, b2})
	if hamA != hamB {
		t.Fatalf("setup broken: want equal whole-tree scores, got %v vs %v", hamA, hamB)
	}
	cmpA := Compare([]*tree.Tree{a1, a2})
	cmpB := Compare([]*tree.Tree{b1, b2})
	eA, eB := cmpA.Nodes[u("e")], cmpB.Nodes[u("e")]
	if eA.Presence == eB.Presence {
		t.Error("node-level presence should distinguish the sets")
	}
	if eB.SameParentEverywhere {
		t.Error("node-level parent tracking should flag the re-parenting")
	}
}

// Property: both whole-tree scores stay in [0,1] and equal 1 for
// duplicated trees, on randomly generated tree shapes.
func TestWholeTreeScoreProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		var trees []*tree.Tree
		for p := 0; p < 3; p++ {
			n := 3 + rng.Intn(12)
			var edges [][2]string
			names := []string{rootURL}
			for i := 0; i < n; i++ {
				child := u(name(trial*100 + i))
				parent := names[rng.Intn(len(names))]
				edges = append(edges, [2]string{child, parent})
				names = append(names, child)
			}
			trees = append(trees, buildTree(t, name(p), edges))
		}
		for _, score := range []float64{EdgeSimilarity(trees), HammingSimilarity(trees)} {
			if score < 0 || score > 1 {
				t.Fatalf("score out of range: %v", score)
			}
		}
		dup := []*tree.Tree{trees[0], trees[0], trees[0]}
		if EdgeSimilarity(dup) != 1 || HammingSimilarity(dup) != 1 {
			t.Fatal("duplicated trees must score 1")
		}
	}
}

// Property: Compare's aggregates respect structural invariants on random
// tree sets.
func TestCompareInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var trees []*tree.Tree
		shared := 4 + rng.Intn(8)
		for p := 0; p < 4; p++ {
			var edges [][2]string
			names := []string{rootURL}
			for i := 0; i < shared; i++ {
				child := u("s" + name(i))
				parent := names[rng.Intn(len(names))]
				// Shared nodes appear in most trees.
				if rng.Float64() < 0.8 {
					edges = append(edges, [2]string{child, parent})
					names = append(names, child)
				}
			}
			for i := 0; i < rng.Intn(4); i++ {
				edges = append(edges, [2]string{u("p" + name(p*10+i)), rootURL})
			}
			trees = append(trees, buildTree(t, name(p), edges))
		}
		cmp := Compare(trees)
		for key, ni := range cmp.Nodes {
			if ni.Presence < 1 || ni.Presence > len(trees) {
				t.Fatalf("presence out of range for %s: %d", key, ni.Presence)
			}
			if ni.ChildSim < 0 || ni.ChildSim > 1 || ni.ParentSim < 0 || ni.ParentSim > 1 {
				t.Fatalf("similarities out of range for %s", key)
			}
			if ni.UniqueChains > ni.Presence {
				t.Fatalf("unique chains %d > presence %d", ni.UniqueChains, ni.Presence)
			}
			if ni.ChainEqualAll && ni.Presence != len(trees) {
				t.Fatalf("ChainEqualAll requires full presence")
			}
			present := 0
			for _, d := range ni.Depths {
				if d >= 0 {
					present++
				}
			}
			if present != ni.Presence {
				t.Fatalf("Depths inconsistent with Presence for %s", key)
			}
		}
	}
}
