package treediff

import (
	"fmt"
	"io"
	"sort"

	"webmeasure/internal/tree"
)

// Diff is the operational pairwise comparison a researcher eyeballs when
// two setups disagree: which nodes one tree has and the other lacks, which
// nodes moved (same identity, different parent or depth), and which kept
// everything. It complements the aggregate Comparison with per-node
// attribution.
type Diff struct {
	A, B *tree.Tree

	// OnlyA / OnlyB hold node keys exclusive to one tree, sorted.
	OnlyA, OnlyB []string
	// Moved holds nodes present in both trees whose parent differs.
	Moved []MovedNode
	// DepthChanged holds nodes with equal parents but different depth
	// (an ancestor moved).
	DepthChanged []MovedNode
	// Stable counts nodes with identical parent and depth in both trees.
	Stable int
}

// MovedNode records one re-attributed node.
type MovedNode struct {
	Key            string
	ParentA        string
	ParentB        string
	DepthA, DepthB int
}

// ComputeDiff compares two trees node by node.
func ComputeDiff(a, b *tree.Tree) *Diff {
	d := &Diff{A: a, B: b}
	seen := map[string]bool{}
	for _, n := range a.Nodes() {
		if n.IsRoot() {
			continue
		}
		seen[n.Key] = true
		m := b.Node(n.Key)
		if m == nil {
			d.OnlyA = append(d.OnlyA, n.Key)
			continue
		}
		pa, pb := parentKey(n), parentKey(m)
		switch {
		case pa != pb:
			d.Moved = append(d.Moved, MovedNode{
				Key: n.Key, ParentA: pa, ParentB: pb, DepthA: n.Depth, DepthB: m.Depth,
			})
		case n.Depth != m.Depth:
			d.DepthChanged = append(d.DepthChanged, MovedNode{
				Key: n.Key, ParentA: pa, ParentB: pb, DepthA: n.Depth, DepthB: m.Depth,
			})
		default:
			d.Stable++
		}
	}
	for _, m := range b.Nodes() {
		if !m.IsRoot() && !seen[m.Key] {
			d.OnlyB = append(d.OnlyB, m.Key)
		}
	}
	sort.Strings(d.OnlyA)
	sort.Strings(d.OnlyB)
	sort.Slice(d.Moved, func(i, j int) bool { return d.Moved[i].Key < d.Moved[j].Key })
	sort.Slice(d.DepthChanged, func(i, j int) bool { return d.DepthChanged[i].Key < d.DepthChanged[j].Key })
	return d
}

func parentKey(n *tree.Node) string {
	if n.Parent == nil {
		return ""
	}
	return n.Parent.Key
}

// Identical reports whether the trees agree on every node and edge.
func (d *Diff) Identical() bool {
	return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 &&
		len(d.Moved) == 0 && len(d.DepthChanged) == 0
}

// Summary returns the one-line accounting.
func (d *Diff) Summary() string {
	return fmt.Sprintf("stable %d, moved %d, depth-changed %d, only-%s %d, only-%s %d",
		d.Stable, len(d.Moved), len(d.DepthChanged),
		d.A.Profile, len(d.OnlyA), d.B.Profile, len(d.OnlyB))
}

// Write renders the diff as text, truncating long sections to limit lines
// each (0 = unlimited).
func (d *Diff) Write(w io.Writer, limit int) {
	fmt.Fprintf(w, "diff %s vs %s for %s\n", d.A.Profile, d.B.Profile, d.A.PageURL)
	fmt.Fprintf(w, "  %s\n", d.Summary())
	section := func(title string, keys []string) {
		if len(keys) == 0 {
			return
		}
		fmt.Fprintf(w, "  %s:\n", title)
		for i, k := range keys {
			if limit > 0 && i >= limit {
				fmt.Fprintf(w, "    … %d more\n", len(keys)-limit)
				return
			}
			fmt.Fprintf(w, "    %s\n", k)
		}
	}
	section("only in "+d.A.Profile, d.OnlyA)
	section("only in "+d.B.Profile, d.OnlyB)
	if len(d.Moved) > 0 {
		fmt.Fprintf(w, "  moved:\n")
		for i, m := range d.Moved {
			if limit > 0 && i >= limit {
				fmt.Fprintf(w, "    … %d more\n", len(d.Moved)-limit)
				break
			}
			fmt.Fprintf(w, "    %s\n      %s (d%d) → %s (d%d)\n", m.Key, m.ParentA, m.DepthA, m.ParentB, m.DepthB)
		}
	}
}
