// Package treediff implements the paper's cross-comparison of the
// dependency trees different profiles observed for the same page (§3.2,
// Appendix D): the horizontal analysis (which siblings/children appear,
// recursively from depth one), the vertical analysis (dependency chains
// and the parents of a node), per-depth node-set similarity, and the
// supporting per-node bookkeeping the result tables aggregate.
//
// The set machinery runs on an interned core: Compare resolves every node
// key to a dense int32 once, and all similarities are linear merges over
// sorted id slices carved from per-comparison arenas (internal/stats'
// sorted kernel). The results are bit-identical to the historical
// map-of-strings kernel — TestCompareMatchesMapReference pins that — while
// the hot loop allocates per comparison instead of per node.
package treediff

import (
	"slices"
	"sync"

	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
)

// NodeInfo aggregates one node key's appearance across the compared trees.
type NodeInfo struct {
	Key  string
	Type measurement.ResourceType
	// Party/Tracking as first observed (stable across trees in practice:
	// both derive from the URL).
	Party    tree.Party
	Tracking bool

	// Presence is the number of trees containing the node.
	Presence int
	// Depths is the node's depth per tree, -1 where absent.
	Depths []int
	// SameDepth is true when the node sits at the same depth in every tree
	// that contains it.
	SameDepth bool

	// ChildSim is the mean pairwise Jaccard of the node's child sets over
	// the trees containing it (horizontal analysis).
	ChildSim float64
	// ParentSim is the mean pairwise Jaccard of the node's parent sets
	// over *all* trees (absent trees contribute the empty set), matching
	// the Appendix D worked example.
	ParentSim float64
	// SameParentEverywhere is true when the node is loaded by the same
	// parent in every tree containing it.
	SameParentEverywhere bool

	// NumChildren is the per-tree child count (-1 where absent).
	NumChildren []int
	// MaxChildren is the largest per-tree child count.
	MaxChildren int
	// HasChildAnywhere is true when the node has ≥1 child in some tree.
	HasChildAnywhere bool

	// ChainEqualAll is true when the node appears in all trees with an
	// identical dependency chain.
	ChainEqualAll bool
	// UniqueChains counts the trees whose chain for this node appears in
	// no other tree (the "unique dependency chain" population of §4.2).
	UniqueChains int
}

// MeanDepth returns the node's average depth over the trees containing it.
func (ni *NodeInfo) MeanDepth() float64 {
	sum, n := 0, 0
	for _, d := range ni.Depths {
		if d >= 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Comparison is the cross-comparison of one page's trees.
type Comparison struct {
	Trees []*tree.Tree
	// Nodes maps every key observed in any tree (including the root) to
	// its aggregate.
	Nodes map[string]*NodeInfo

	// Interned core. Every key in any tree gets a dense id (first-seen
	// order); all set similarities run over ascending []int32 views carved
	// from arenas sized once per comparison.
	keys     []string              // id → key
	ids      map[string]int32      // key → id
	infoByID []*NodeInfo           // id → aggregate
	nodeID   map[*tree.Node]int32  // node → id (no string hashing in fill)
	nodeByID [][]*tree.Node        // per tree: id → node, nil where absent
	treeKeys [][]int32             // per tree: ascending ids, root included
	nonRoot  [][]int32             // per tree: ascending ids, that tree's root excluded
	byDepth  [][][]int32           // per tree, per depth ≥ 1: ascending ids
	maxDepth int
}

// Compare cross-compares the trees of one page. At least two trees are
// required for the similarities to be meaningful; with fewer, similarities
// default to 1 (self-consistency).
func Compare(trees []*tree.Tree) *Comparison {
	// bound caps the interned universe: the union of keys can never exceed
	// the summed node counts, so arenas sized by it never reallocate and
	// pointers into them stay valid.
	bound := 0
	maxDepth := 0
	for _, t := range trees {
		bound += t.NodeCount()
		if d := t.MaxDepth(); d > maxDepth {
			maxDepth = d
		}
	}
	nt := len(trees)
	c := &Comparison{
		Trees:    trees,
		Nodes:    make(map[string]*NodeInfo, bound),
		keys:     make([]string, 0, bound),
		ids:      make(map[string]int32, bound),
		infoByID: make([]*NodeInfo, 0, bound),
		nodeID:   make(map[*tree.Node]int32, bound),
		nodeByID: make([][]*tree.Node, nt),
		treeKeys: make([][]int32, nt),
		nonRoot:  make([][]int32, nt),
		byDepth:  make([][][]int32, nt),
		maxDepth: maxDepth,
	}
	infoArena := make([]NodeInfo, 0, bound)
	// One backing array holds every NodeInfo's Depths and NumChildren.
	intArena := make([]int, 2*nt*bound)
	intOff := 0

	for ti, t := range trees {
		nodes := t.Nodes()
		lookup := make([]*tree.Node, bound)
		tks := make([]int32, 0, len(nodes))
		depths := make([][]int32, maxDepth+1)
		for _, n := range nodes {
			id, ok := c.ids[n.Key]
			if !ok {
				id = int32(len(c.keys))
				c.ids[n.Key] = id
				c.keys = append(c.keys, n.Key)
				infoArena = append(infoArena, NodeInfo{
					Key:         n.Key,
					Type:        n.Type,
					Party:       n.Party,
					Tracking:    n.Tracking,
					Depths:      fillSlot(intArena, &intOff, nt),
					NumChildren: fillSlot(intArena, &intOff, nt),
				})
				ni := &infoArena[len(infoArena)-1]
				c.Nodes[n.Key] = ni
				c.infoByID = append(c.infoByID, ni)
			}
			c.nodeID[n] = id
			lookup[id] = n
			ni := c.infoByID[id]
			ni.Presence++
			ni.Depths[ti] = n.Depth
			nc := len(n.Children)
			ni.NumChildren[ti] = nc
			if nc > ni.MaxChildren {
				ni.MaxChildren = nc
			}
			if nc > 0 {
				ni.HasChildAnywhere = true
			}
			tks = append(tks, id)
			if d := n.Depth; d >= 1 {
				depths[d] = append(depths[d], id)
			}
		}
		slices.Sort(tks)
		nr := make([]int32, 0, len(tks))
		rootID := int32(-1)
		if t.Root != nil {
			rootID = c.ids[t.Root.Key]
		}
		for _, id := range tks {
			if id != rootID {
				nr = append(nr, id)
			}
		}
		for d := range depths {
			slices.Sort(depths[d])
		}
		c.nodeByID[ti] = lookup
		c.treeKeys[ti] = tks
		c.nonRoot[ti] = nr
		c.byDepth[ti] = depths
	}

	s := &fillScratch{
		childSets: make([][]int32, 0, nt),
		parentIDs: make([]int32, nt),
		chains:    make([]string, nt),
	}
	// id order is deterministic (first-seen over the sorted node lists),
	// unlike the map-range order the pre-interning kernel used; fill only
	// writes to its own NodeInfo either way.
	for id, ni := range c.infoByID {
		c.fill(int32(id), ni, s)
	}
	return c
}

// fillSlot carves an n-int sub-slice off the shared arena, filled with -1.
func fillSlot(arena []int, off *int, n int) []int {
	out := arena[*off : *off+n : *off+n]
	*off += n
	for i := range out {
		out[i] = -1
	}
	return out
}

// fillScratch is the per-Compare reusable state of fill: child-set arena,
// parent ids, and chain strings, sized once for all nodes.
type fillScratch struct {
	childSets  [][]int32
	childArena []int32
	parentIDs  []int32 // -1 = empty parent set (absent tree or root)
	chains     []string
}

// fill computes the per-node similarity aggregates.
func (c *Comparison) fill(id int32, ni *NodeInfo, s *fillScratch) {
	// Same depth across containing trees?
	ni.SameDepth = true
	first := -1
	for _, d := range ni.Depths {
		if d < 0 {
			continue
		}
		if first < 0 {
			first = d
		} else if d != first {
			ni.SameDepth = false
		}
	}

	nt := len(c.Trees)
	s.childSets = s.childSets[:0]
	buf := s.childArena[:0]
	sameParent := true
	firstParent := int32(-1)
	haveParent := false

	for ti := range c.Trees {
		n := c.nodeByID[ti][id]
		if n == nil {
			s.parentIDs[ti] = -1
			s.chains[ti] = ""
			continue
		}
		// Child set of the containing tree (horizontal): ids of the
		// children, sorted in place inside the arena.
		start := len(buf)
		for _, ch := range n.Children {
			buf = append(buf, c.nodeID[ch])
		}
		set := buf[start:len(buf):len(buf)]
		slices.Sort(set)
		s.childSets = append(s.childSets, set)
		// Parent set (vertical): 0-or-1 keys, so an id with -1 for "empty"
		// replaces the historical single-element map.
		if n.Parent != nil {
			pid := c.nodeID[n.Parent]
			s.parentIDs[ti] = pid
			if !haveParent {
				firstParent, haveParent = pid, true
			} else if pid != firstParent {
				sameParent = false
			}
		} else {
			s.parentIDs[ti] = -1
		}
		s.chains[ti] = n.ChainKey()
	}
	s.childArena = buf[:0]

	ni.ChildSim = stats.PairwiseMeanJaccardSorted(s.childSets)
	// ParentSim over *all* trees: J of two 0-or-1 element sets is the
	// equality indicator (∅ vs ∅ = 1, ∅ vs {p} = 0, {p} vs {q} = [p == q]),
	// so the pairwise mean needs no sets at all.
	if nt < 2 {
		ni.ParentSim = 1
	} else {
		agree, pairs := 0, 0
		for i := 0; i < nt; i++ {
			for j := i + 1; j < nt; j++ {
				if s.parentIDs[i] == s.parentIDs[j] {
					agree++
				}
				pairs++
			}
		}
		ni.ParentSim = float64(agree) / float64(pairs)
	}
	ni.SameParentEverywhere = sameParent

	// Chain bookkeeping over the ≤ len(trees) memoized chain strings;
	// quadratic in the tree count, allocation-free.
	distinct := 0
	ni.UniqueChains = 0
	for i := 0; i < nt; i++ {
		if s.chains[i] == "" {
			continue
		}
		count := 0
		firstAt := i
		for j := 0; j < nt; j++ {
			if s.chains[j] == s.chains[i] {
				count++
				if j < firstAt {
					firstAt = j
				}
			}
		}
		if firstAt == i {
			distinct++
		}
		if count == 1 {
			ni.UniqueChains++
		}
	}
	ni.ChainEqualAll = ni.Presence == nt && distinct == 1 && nt > 0
}

// DepthFilter selects the node population for per-depth similarity
// (Table 3's rows).
type DepthFilter struct {
	// OnlyWithChildren keeps nodes that have ≥1 child in some tree,
	// excluding depth-one content that cannot introduce dynamics (§3.2).
	OnlyWithChildren bool
	// OnlyInAllTrees keeps nodes present in every tree.
	OnlyInAllTrees bool
	// Party restricts to one loading context.
	Party *tree.Party
	// Unweighted averages the per-depth Jaccard values equally instead of
	// weighting by each depth's population — the ablation for the
	// weighting decision documented on DepthSimilarity.
	Unweighted bool
}

func (f DepthFilter) admit(ni *NodeInfo, total int) bool {
	if f.OnlyWithChildren && !ni.HasChildAnywhere {
		return false
	}
	if f.OnlyInAllTrees && ni.Presence != total {
		return false
	}
	if f.Party != nil && ni.Party != *f.Party {
		return false
	}
	return true
}

// depthScratch is the reusable state of one DepthSimilarity call: the
// per-id admission table, the filtered per-tree sets and their arena, and
// a generation-stamped union counter. Pooled so concurrent calls stay
// safe and steady-state calls stay allocation-free.
type depthScratch struct {
	admit []bool
	seen  []int32
	gen   int32
	sets  [][]int32
	arena []int32
}

var depthScratchPool = sync.Pool{New: func() any { return new(depthScratch) }}

// DepthSimilarity computes the paper's per-depth node-set similarity: for
// every depth d ≥ 1 occupied in some tree, the pairwise mean Jaccard of the
// admitted keys at d, averaged over depths weighted by each depth's node
// population (the union of admitted keys), so a depth holding forty nodes
// counts accordingly more than a sparse deep level. It returns
// (similarity, number of depths compared); with no admissible depth the
// similarity is 1.
func (c *Comparison) DepthSimilarity(f DepthFilter) (float64, int) {
	nt := len(c.Trees)
	nk := len(c.keys)
	s := depthScratchPool.Get().(*depthScratch)
	defer depthScratchPool.Put(s)
	if cap(s.admit) < nk {
		s.admit = make([]bool, nk)
		s.seen = make([]int32, nk)
	}
	s.admit = s.admit[:nk]
	s.seen = s.seen[:nk]
	if cap(s.sets) < nt {
		s.sets = make([][]int32, nt)
	}
	s.sets = s.sets[:nt]
	for id, ni := range c.infoByID {
		s.admit[id] = f.admit(ni, nt)
	}

	var sum, weight float64
	depths := 0
	for d := 1; d <= c.maxDepth; d++ {
		// The union count rides along while filtering: a generation stamp
		// per id replaces the per-depth union map.
		s.gen++
		union := 0
		buf := s.arena[:0]
		for ti := range c.Trees {
			var src []int32
			if d < len(c.byDepth[ti]) {
				src = c.byDepth[ti][d]
			}
			start := len(buf)
			for _, id := range src {
				if s.admit[id] {
					buf = append(buf, id)
					if s.seen[id] != s.gen {
						s.seen[id] = s.gen
						union++
					}
				}
			}
			s.sets[ti] = buf[start:len(buf):len(buf)]
		}
		s.arena = buf[:0]
		if union == 0 {
			continue
		}
		w := float64(union)
		if f.Unweighted {
			w = 1
		}
		sum += stats.PairwiseMeanJaccardSorted(s.sets) * w
		weight += w
		depths++
	}
	if depths == 0 {
		return 1, 0
	}
	return sum / weight, depths
}

// AllNodesSimilarity is the whole-tree node-set pairwise mean Jaccard (the
// Appendix D "all nodes in all trees" figure), read off the interned
// per-tree id sets built by Compare.
func (c *Comparison) AllNodesSimilarity() float64 {
	return stats.PairwiseMeanJaccardSorted(c.nonRoot)
}

// HorizontalSimilarities runs the paper's recursive horizontal pass: the
// Jaccard of the depth-one children of the pages, then recursively of the
// children of every node present in at least two trees with at least one
// child. It returns the per-node similarities keyed by node; the root's
// entry is the depth-one comparison.
func (c *Comparison) HorizontalSimilarities() map[string]float64 {
	out := make(map[string]float64)
	for key, ni := range c.Nodes {
		if ni.Presence >= 2 && (ni.HasChildAnywhere || isRootKey(c, key)) {
			out[key] = ni.ChildSim
		}
	}
	return out
}

func isRootKey(c *Comparison, key string) bool {
	return len(c.Trees) > 0 && c.Trees[0].Root != nil && c.Trees[0].Root.Key == key
}

// PairwisePresence reports, for two tree indices, the share of the union
// of their node keys present in both — the §4 "comparing two different
// profiles, 48% of the underlying data varies" statistic is 1 minus this.
func (c *Comparison) PairwisePresence(i, j int) float64 {
	return stats.JaccardSorted(c.treeKeys[i], c.treeKeys[j])
}
