// Package treediff implements the paper's cross-comparison of the
// dependency trees different profiles observed for the same page (§3.2,
// Appendix D): the horizontal analysis (which siblings/children appear,
// recursively from depth one), the vertical analysis (dependency chains
// and the parents of a node), per-depth node-set similarity, and the
// supporting per-node bookkeeping the result tables aggregate.
package treediff

import (
	"webmeasure/internal/measurement"
	"webmeasure/internal/stats"
	"webmeasure/internal/tree"
)

// NodeInfo aggregates one node key's appearance across the compared trees.
type NodeInfo struct {
	Key  string
	Type measurement.ResourceType
	// Party/Tracking as first observed (stable across trees in practice:
	// both derive from the URL).
	Party    tree.Party
	Tracking bool

	// Presence is the number of trees containing the node.
	Presence int
	// Depths is the node's depth per tree, -1 where absent.
	Depths []int
	// SameDepth is true when the node sits at the same depth in every tree
	// that contains it.
	SameDepth bool

	// ChildSim is the mean pairwise Jaccard of the node's child sets over
	// the trees containing it (horizontal analysis).
	ChildSim float64
	// ParentSim is the mean pairwise Jaccard of the node's parent sets
	// over *all* trees (absent trees contribute the empty set), matching
	// the Appendix D worked example.
	ParentSim float64
	// SameParentEverywhere is true when the node is loaded by the same
	// parent in every tree containing it.
	SameParentEverywhere bool

	// NumChildren is the per-tree child count (-1 where absent).
	NumChildren []int
	// MaxChildren is the largest per-tree child count.
	MaxChildren int
	// HasChildAnywhere is true when the node has ≥1 child in some tree.
	HasChildAnywhere bool

	// ChainEqualAll is true when the node appears in all trees with an
	// identical dependency chain.
	ChainEqualAll bool
	// UniqueChains counts the trees whose chain for this node appears in
	// no other tree (the "unique dependency chain" population of §4.2).
	UniqueChains int
}

// MeanDepth returns the node's average depth over the trees containing it.
func (ni *NodeInfo) MeanDepth() float64 {
	sum, n := 0, 0
	for _, d := range ni.Depths {
		if d >= 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Comparison is the cross-comparison of one page's trees.
type Comparison struct {
	Trees []*tree.Tree
	// Nodes maps every key observed in any tree (including the root) to
	// its aggregate.
	Nodes map[string]*NodeInfo
}

// Compare cross-compares the trees of one page. At least two trees are
// required for the similarities to be meaningful; with fewer, similarities
// default to 1 (self-consistency).
func Compare(trees []*tree.Tree) *Comparison {
	c := &Comparison{Trees: trees, Nodes: make(map[string]*NodeInfo)}

	// Collect the union of keys with per-tree lookups.
	for ti, t := range trees {
		for _, n := range t.Nodes() {
			ni := c.Nodes[n.Key]
			if ni == nil {
				ni = &NodeInfo{
					Key:         n.Key,
					Type:        n.Type,
					Party:       n.Party,
					Tracking:    n.Tracking,
					Depths:      filled(len(trees), -1),
					NumChildren: filled(len(trees), -1),
				}
				c.Nodes[n.Key] = ni
			}
			ni.Presence++
			ni.Depths[ti] = n.Depth
			ni.NumChildren[ti] = len(n.Children)
			if len(n.Children) > ni.MaxChildren {
				ni.MaxChildren = len(n.Children)
			}
			if len(n.Children) > 0 {
				ni.HasChildAnywhere = true
			}
		}
	}

	for _, ni := range c.Nodes {
		c.fill(ni)
	}
	return c
}

func filled(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// fill computes the per-node similarity aggregates.
func (c *Comparison) fill(ni *NodeInfo) {
	// Same depth across containing trees?
	ni.SameDepth = true
	first := -1
	for _, d := range ni.Depths {
		if d < 0 {
			continue
		}
		if first < 0 {
			first = d
		} else if d != first {
			ni.SameDepth = false
		}
	}

	// Child sets over containing trees (horizontal).
	var childSets []map[string]bool
	// Parent sets over all trees (vertical); empty set where absent.
	parentSets := make([]map[string]bool, len(c.Trees))
	// Chains per containing tree.
	chainByTree := make([]string, len(c.Trees))
	sameParent := true
	var firstParent string
	haveParent := false

	for ti, t := range c.Trees {
		n := t.Node(ni.Key)
		if n == nil {
			parentSets[ti] = nil
			continue
		}
		childSets = append(childSets, n.ChildKeys())
		ps := map[string]bool{}
		if n.Parent != nil {
			ps[n.Parent.Key] = true
			if !haveParent {
				firstParent, haveParent = n.Parent.Key, true
			} else if n.Parent.Key != firstParent {
				sameParent = false
			}
		}
		parentSets[ti] = ps
		chainByTree[ti] = n.ChainKey()
	}

	ni.ChildSim = stats.PairwiseMeanJaccard(childSets)
	ni.ParentSim = stats.PairwiseMeanJaccard(parentSets)
	ni.SameParentEverywhere = sameParent

	// Chain bookkeeping.
	counts := map[string]int{}
	for _, ch := range chainByTree {
		if ch != "" {
			counts[ch]++
		}
	}
	ni.ChainEqualAll = ni.Presence == len(c.Trees) && len(counts) == 1 && len(c.Trees) > 0
	for _, ch := range chainByTree {
		if ch != "" && counts[ch] == 1 {
			ni.UniqueChains++
		}
	}
}

// DepthFilter selects the node population for per-depth similarity
// (Table 3's rows).
type DepthFilter struct {
	// OnlyWithChildren keeps nodes that have ≥1 child in some tree,
	// excluding depth-one content that cannot introduce dynamics (§3.2).
	OnlyWithChildren bool
	// OnlyInAllTrees keeps nodes present in every tree.
	OnlyInAllTrees bool
	// Party restricts to one loading context.
	Party *tree.Party
	// Unweighted averages the per-depth Jaccard values equally instead of
	// weighting by each depth's population — the ablation for the
	// weighting decision documented on DepthSimilarity.
	Unweighted bool
}

func (f DepthFilter) admit(ni *NodeInfo, total int) bool {
	if f.OnlyWithChildren && !ni.HasChildAnywhere {
		return false
	}
	if f.OnlyInAllTrees && ni.Presence != total {
		return false
	}
	if f.Party != nil && ni.Party != *f.Party {
		return false
	}
	return true
}

// DepthSimilarity computes the paper's per-depth node-set similarity: for
// every depth d ≥ 1 occupied in some tree, the pairwise mean Jaccard of the
// admitted keys at d, averaged over depths weighted by each depth's node
// population (the union of admitted keys), so a depth holding forty nodes
// counts accordingly more than a sparse deep level. It returns
// (similarity, number of depths compared); with no admissible depth the
// similarity is 1.
func (c *Comparison) DepthSimilarity(f DepthFilter) (float64, int) {
	maxDepth := 0
	for _, t := range c.Trees {
		if d := t.MaxDepth(); d > maxDepth {
			maxDepth = d
		}
	}
	var sum, weight float64
	depths := 0
	for d := 1; d <= maxDepth; d++ {
		sets := make([]map[string]bool, len(c.Trees))
		union := map[string]bool{}
		for ti, t := range c.Trees {
			set := map[string]bool{}
			for key := range t.KeysAtDepth(d) {
				ni := c.Nodes[key]
				if ni != nil && f.admit(ni, len(c.Trees)) {
					set[key] = true
					union[key] = true
				}
			}
			sets[ti] = set
		}
		if len(union) == 0 {
			continue
		}
		w := float64(len(union))
		if f.Unweighted {
			w = 1
		}
		sum += stats.PairwiseMeanJaccard(sets) * w
		weight += w
		depths++
	}
	if depths == 0 {
		return 1, 0
	}
	return sum / weight, depths
}

// AllNodesSimilarity is the whole-tree node-set pairwise mean Jaccard (the
// Appendix D "all nodes in all trees" figure).
func (c *Comparison) AllNodesSimilarity() float64 {
	sets := make([]map[string]bool, len(c.Trees))
	for ti, t := range c.Trees {
		set := make(map[string]bool, t.NodeCount())
		for _, n := range t.Nodes() {
			if !n.IsRoot() {
				set[n.Key] = true
			}
		}
		sets[ti] = set
	}
	return stats.PairwiseMeanJaccard(sets)
}

// HorizontalSimilarities runs the paper's recursive horizontal pass: the
// Jaccard of the depth-one children of the pages, then recursively of the
// children of every node present in at least two trees with at least one
// child. It returns the per-node similarities keyed by node; the root's
// entry is the depth-one comparison.
func (c *Comparison) HorizontalSimilarities() map[string]float64 {
	out := make(map[string]float64)
	for key, ni := range c.Nodes {
		if ni.Presence >= 2 && (ni.HasChildAnywhere || isRootKey(c, key)) {
			out[key] = ni.ChildSim
		}
	}
	return out
}

func isRootKey(c *Comparison, key string) bool {
	return len(c.Trees) > 0 && c.Trees[0].Root != nil && c.Trees[0].Root.Key == key
}

// PairwisePresence reports, for two tree indices, the share of the union
// of their node keys present in both — the §4 "comparing two different
// profiles, 48% of the underlying data varies" statistic is 1 minus this.
func (c *Comparison) PairwisePresence(i, j int) float64 {
	a, b := c.Trees[i], c.Trees[j]
	setA, setB := map[string]bool{}, map[string]bool{}
	for _, n := range a.Nodes() {
		setA[n.Key] = true
	}
	for _, n := range b.Nodes() {
		setB[n.Key] = true
	}
	return stats.Jaccard(setA, setB)
}
