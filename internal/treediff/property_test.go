package treediff

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"webmeasure/internal/tree"
)

// Property-based suite for the cross-comparison: randomized tree shapes
// with a fixed seed check the invariants every Comparison must satisfy —
// similarities in [0,1], perfect scores for identical trees, symmetry of
// the pairwise presence — independent of any worked example.

// randEdges grows a random tree of n nodes: each node's parent is drawn
// among the root and the previously added nodes, so parents always
// precede children as buildTree requires.
func randEdges(rng *rand.Rand, n int) [][2]string {
	edges := make([][2]string, 0, n)
	names := []string{rootURL}
	for i := 0; i < n; i++ {
		child := u(fmt.Sprintf("n%d", i))
		parent := names[rng.Intn(len(names))]
		edges = append(edges, [2]string{child, parent})
		names = append(names, child)
	}
	return edges
}

func randTrees(t *testing.T, rng *rand.Rand, count int) []*tree.Tree {
	trees := make([]*tree.Tree, count)
	for i := range trees {
		trees[i] = buildTree(t, fmt.Sprintf("P%d", i+1), randEdges(rng, 1+rng.Intn(12)))
	}
	return trees
}

func TestCompareSimilaritiesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		c := Compare(randTrees(t, rng, 2+rng.Intn(4)))
		inUnit := func(what string, v float64) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s out of [0,1]: %v", what, v)
			}
		}
		inUnit("AllNodesSimilarity", c.AllNodesSimilarity())
		for key, ni := range c.Nodes {
			inUnit("ChildSim of "+key, ni.ChildSim)
			inUnit("ParentSim of "+key, ni.ParentSim)
			if ni.Presence < 1 || ni.Presence > len(c.Trees) {
				t.Fatalf("presence of %s = %d with %d trees", key, ni.Presence, len(c.Trees))
			}
		}
		for _, f := range []DepthFilter{{}, {OnlyWithChildren: true}, {OnlyInAllTrees: true}, {Unweighted: true}} {
			sim, _ := c.DepthSimilarity(f)
			inUnit(fmt.Sprintf("DepthSimilarity %+v", f), sim)
		}
		for _, sim := range c.HorizontalSimilarities() {
			inUnit("HorizontalSimilarities", sim)
		}
	}
}

// TestCompareIdenticalTreesPerfect: cloning one random shape across all
// profiles must score 1 everywhere — any deviation would mean the
// comparison invents differences.
func TestCompareIdenticalTreesPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 100; iter++ {
		edges := randEdges(rng, 1+rng.Intn(12))
		trees := make([]*tree.Tree, 2+rng.Intn(4))
		for i := range trees {
			trees[i] = buildTree(t, fmt.Sprintf("P%d", i+1), edges)
		}
		c := Compare(trees)
		if got := c.AllNodesSimilarity(); got != 1 {
			t.Fatalf("identical trees AllNodesSimilarity = %v", got)
		}
		if sim, _ := c.DepthSimilarity(DepthFilter{}); sim != 1 {
			t.Fatalf("identical trees DepthSimilarity = %v", sim)
		}
		for key, ni := range c.Nodes {
			if ni.Presence != len(trees) {
				t.Fatalf("node %s presence %d of %d", key, ni.Presence, len(trees))
			}
			if ni.ChildSim != 1 || ni.ParentSim != 1 {
				t.Fatalf("node %s sims = %v/%v", key, ni.ChildSim, ni.ParentSim)
			}
			if !ni.SameDepth || !ni.SameParentEverywhere || !ni.ChainEqualAll {
				t.Fatalf("node %s consistency flags wrong: %+v", key, ni)
			}
			if ni.UniqueChains != 0 {
				t.Fatalf("node %s has %d unique chains in identical trees", key, ni.UniqueChains)
			}
		}
		for i := 0; i < len(trees); i++ {
			for j := 0; j < len(trees); j++ {
				if p := c.PairwisePresence(i, j); p != 1 {
					t.Fatalf("identical trees PairwisePresence(%d,%d) = %v", i, j, p)
				}
			}
		}
	}
}

func TestPairwisePresenceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		c := Compare(randTrees(t, rng, 2+rng.Intn(4)))
		for i := 0; i < len(c.Trees); i++ {
			for j := 0; j < len(c.Trees); j++ {
				a, b := c.PairwisePresence(i, j), c.PairwisePresence(j, i)
				if a != b {
					t.Fatalf("presence not symmetric: (%d,%d)=%v (%d,%d)=%v", i, j, a, j, i, b)
				}
				if a < 0 || a > 1 {
					t.Fatalf("presence out of [0,1]: %v", a)
				}
				if i == j && a != 1 {
					t.Fatalf("self presence = %v", a)
				}
			}
		}
	}
}

// TestCompareDepthsConsistent: every recorded depth must match the
// observed presence bookkeeping — -1 exactly where the tree lacks the
// node, non-negative elsewhere.
func TestCompareDepthsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 100; iter++ {
		c := Compare(randTrees(t, rng, 2+rng.Intn(4)))
		for key, ni := range c.Nodes {
			if len(ni.Depths) != len(c.Trees) || len(ni.NumChildren) != len(c.Trees) {
				t.Fatalf("node %s slices sized %d/%d for %d trees",
					key, len(ni.Depths), len(ni.NumChildren), len(c.Trees))
			}
			present := 0
			for ti, d := range ni.Depths {
				node := c.Trees[ti].Node(key)
				if (d >= 0) != (node != nil) {
					t.Fatalf("node %s depth %d disagrees with tree %d", key, d, ti)
				}
				if d >= 0 {
					present++
					if ni.NumChildren[ti] != len(node.Children) {
						t.Fatalf("node %s child count mismatch in tree %d", key, ti)
					}
				} else if ni.NumChildren[ti] != -1 {
					t.Fatalf("node %s absent in tree %d but child count %d", key, ti, ni.NumChildren[ti])
				}
			}
			if present != ni.Presence {
				t.Fatalf("node %s presence %d but %d trees contain it", key, ni.Presence, present)
			}
		}
	}
}

// TestCompareSharedSubtreeMonotone is the metamorphic check: grafting the
// same extra child under the root of every tree never lowers the
// whole-tree similarity.
func TestCompareSharedSubtreeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 100; iter++ {
		perTree := make([][][2]string, 2+rng.Intn(3))
		for i := range perTree {
			perTree[i] = randEdges(rng, 1+rng.Intn(10))
		}
		build := func(extra bool) *Comparison {
			trees := make([]*tree.Tree, len(perTree))
			for i, edges := range perTree {
				if extra {
					edges = append(append([][2]string{}, edges...), [2]string{u("shared-extra"), rootURL})
				}
				trees[i] = buildTree(t, fmt.Sprintf("P%d", i+1), edges)
			}
			return Compare(trees)
		}
		before := build(false).AllNodesSimilarity()
		after := build(true).AllNodesSimilarity()
		if after < before-1e-12 {
			t.Fatalf("shared subtree lowered similarity: %v -> %v", before, after)
		}
	}
}
