package treediff

import (
	"fmt"
	"testing"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tree"
)

// The comparison kernel's perf trajectory is tracked by `make bench-json`
// (BENCH_treediff.json) from this suite: Compare over three synthetic
// universe sizes, the per-depth similarity pass, and the pairwise Jaccard
// primitive (internal/stats). EXPERIMENTS.md records the before/after
// numbers of the interned-kernel rewrite.

// name mirrors the historical node namer: letter+digit keeps the URLs
// query-free for i < 260 (the medium universe), so node identities survive
// normalization.
func name(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func benchVisit(edges [][2]string, p int) *measurement.Visit {
	v := &measurement.Visit{
		Site: "fig6.example", PageURL: rootURL, Profile: name(p), Success: true,
		Requests: []measurement.Request{{URL: rootURL, Type: measurement.TypeMainFrame}},
	}
	for _, e := range edges {
		req := measurement.Request{URL: e[0], Type: measurement.TypeScript}
		if e[1] != rootURL {
			req.CallStack = []measurement.StackFrame{{FuncName: "f", URL: e[1]}}
		}
		v.Requests = append(v.Requests, req)
	}
	return v
}

// benchTrees builds five overlapping trees of n candidate nodes each:
// profile-shifted gaps every `gap` nodes make the trees similar but not
// identical, the first tenth hangs off the root, the rest nest under
// earlier nodes. The medium shape (n=60, gap=13) is the pre-interning
// BenchmarkCompare universe, kept identical so the trajectory in
// BENCH_treediff.json stays comparable across the kernel rewrite.
func benchTrees(b *testing.B, n, gap int, namer func(int) string) []*tree.Tree {
	b.Helper()
	var trees []*tree.Tree
	for p := 0; p < 5; p++ {
		var edges [][2]string
		for i := 0; i < n; i++ {
			if (i+p)%gap == 0 {
				continue // profile-specific gaps
			}
			parent := rootURL
			if i >= n/6 {
				parent = u(namer(i / 3))
			}
			edges = append(edges, [2]string{u(namer(i)), parent})
		}
		tr, err := (&tree.Builder{}).Build(benchVisit(edges, p))
		if err != nil {
			b.Fatal(err)
		}
		trees = append(trees, tr)
	}
	return trees
}

func wideName(i int) string { return fmt.Sprintf("r%03d", i) }

func BenchmarkCompare(b *testing.B) {
	for _, size := range []struct {
		name  string
		n     int
		gap   int
		namer func(int) string
	}{
		{"small", 12, 5, name},
		{"medium", 60, 13, name},
		{"large", 400, 17, wideName},
	} {
		b.Run(size.name, func(b *testing.B) {
			trees := benchTrees(b, size.n, size.gap, size.namer)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Compare(trees)
			}
		})
	}
}

func BenchmarkDepthSimilarity(b *testing.B) {
	c := Compare(benchTrees(b, 60, 13, name))
	filters := []DepthFilter{{}, {OnlyWithChildren: true}, {OnlyInAllTrees: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range filters {
			c.DepthSimilarity(f)
		}
	}
}
