package treediff

import (
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/tree"
)

// ConsensusNode is one node of the consensus view: the stable skeleton of a
// page across repeated measurements. §4.3 recommends multiple measurements
// "to capture a complete view" of a page; the consensus is the part of
// that view a study can rely on.
type ConsensusNode struct {
	Key  string
	Type measurement.ResourceType
	// Presence is the number of trees containing the node.
	Presence int
	// Parent is the majority parent among the trees containing the node
	// ("" when no parent reaches the quorum share of its observations).
	Parent string
	// ParentAgreement is the majority parent's share of observations.
	ParentAgreement float64
	Tracking        bool
	ThirdParty      bool
}

// Consensus computes the stable skeleton: nodes present in at least quorum
// of the trees, each with its majority parent. Nodes are returned sorted
// by key. quorum values below 1 default to a strict majority of the trees.
func Consensus(trees []*tree.Tree, quorum int) []ConsensusNode {
	if len(trees) == 0 {
		return nil
	}
	if quorum < 1 {
		quorum = len(trees)/2 + 1
	}

	type acc struct {
		presence int
		parents  map[string]int
		ty       measurement.ResourceType
		tracking bool
		tp       bool
	}
	nodes := map[string]*acc{}
	for _, t := range trees {
		for _, n := range t.Nodes() {
			if n.IsRoot() {
				continue
			}
			a := nodes[n.Key]
			if a == nil {
				a = &acc{parents: map[string]int{}, ty: n.Type, tracking: n.Tracking, tp: n.Party == tree.ThirdParty}
				nodes[n.Key] = a
			}
			a.presence++
			if n.Parent != nil {
				a.parents[n.Parent.Key]++
			}
		}
	}

	var out []ConsensusNode
	for key, a := range nodes {
		if a.presence < quorum {
			continue
		}
		best, bestCount := "", 0
		for p, c := range a.parents {
			if c > bestCount || (c == bestCount && p < best) {
				best, bestCount = p, c
			}
		}
		cn := ConsensusNode{
			Key:        key,
			Type:       a.ty,
			Presence:   a.presence,
			Tracking:   a.tracking,
			ThirdParty: a.tp,
		}
		if a.presence > 0 {
			share := float64(bestCount) / float64(a.presence)
			cn.ParentAgreement = share
			// The majority parent must itself be a consensus member (or
			// the root) and command a strict majority.
			if share > 0.5 {
				cn.Parent = best
			}
		}
		out = append(out, cn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ConsensusShare returns the fraction of the union of node keys that the
// consensus at the given quorum retains — a one-number answer to "how much
// of this page is measurable reliably?".
func ConsensusShare(trees []*tree.Tree, quorum int) float64 {
	union := map[string]bool{}
	for _, t := range trees {
		for _, n := range t.Nodes() {
			if !n.IsRoot() {
				union[n.Key] = true
			}
		}
	}
	if len(union) == 0 {
		return 1
	}
	return float64(len(Consensus(trees, quorum))) / float64(len(union))
}
