package colstore

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"webmeasure/internal/measurement"
)

// makeVisit builds a visit exercising every encoded field: nested
// requests with call stacks, redirects, set-cookie headers, cookie
// observations, fault metadata, and float timing.
func makeVisit(site, page, profile string, nreq int) *measurement.Visit {
	v := &measurement.Visit{
		Site:         site,
		PageURL:      page,
		Profile:      profile,
		Success:      nreq%3 != 0,
		Status:       "ok",
		Attempts:     1 + nreq%2,
		Retryable:    nreq%5 == 0,
		StartOffsetS: 0.25 * float64(nreq),
		DurationMS:   1200 + 17*nreq,
	}
	if !v.Success {
		v.Failure = "timeout"
		v.FaultKind = "nav-timeout"
		v.Status = "degraded"
	}
	for i := 0; i < nreq; i++ {
		req := measurement.Request{
			URL:          fmt.Sprintf("https://%s/asset-%d.js", site, i),
			Type:         measurement.ResourceType(i % 4),
			FrameID:      i % 2,
			Status:       200,
			ContentType:  "application/javascript",
			BodySize:     4096 + 13*i,
			TimeOffsetMS: 40 * i,
		}
		if i%2 == 1 {
			req.FrameURL = fmt.Sprintf("https://%s/frame", site)
			req.RedirectFrom = fmt.Sprintf("https://%s/asset-%d.js?v=1", site, i)
			req.CallStack = []measurement.StackFrame{
				{FuncName: "loadAsset", URL: page, Line: 10 + i},
				{FuncName: "main", URL: fmt.Sprintf("https://%s/app.js", site), Line: 2},
			}
			req.SetCookies = []string{fmt.Sprintf("sess=%d; Path=/", i)}
			req.TrueParentURL = page
		}
		v.Requests = append(v.Requests, req)
	}
	v.Cookies = []measurement.CookieObservation{
		{Name: "sess", Domain: site, Path: "/", Secure: true, HTTPOnly: true, SameSite: "Lax"},
		{Name: "pref", Domain: "." + site, Path: "/"},
	}
	return v
}

func siteRows(site string, startSeq uint64, pages, profiles int) []VisitRow {
	var rows []VisitRow
	seq := startSeq
	for p := 0; p < pages; p++ {
		page := fmt.Sprintf("https://%s/page-%d", site, p)
		for pr := 0; pr < profiles; pr++ {
			rows = append(rows, VisitRow{
				Seq:   seq,
				Visit: makeVisit(site, page, fmt.Sprintf("profile-%d", pr), 3+p+pr),
			})
			seq += 2 // gaps exercise the delta encoding
		}
	}
	return rows
}

func TestBlockRoundTrip(t *testing.T) {
	rows := siteRows("example.org", 7, 3, 2)
	payload := encodeBlock("example.org", rows)
	sb, err := decodeBlock(payload)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Site != "example.org" {
		t.Errorf("site = %q", sb.Site)
	}
	if len(sb.Visits) != len(rows) {
		t.Fatalf("decoded %d visits, want %d", len(sb.Visits), len(rows))
	}
	for i, r := range rows {
		if sb.Seqs[i] != r.Seq {
			t.Errorf("visit %d: seq %d, want %d", i, sb.Seqs[i], r.Seq)
		}
		if !reflect.DeepEqual(sb.Visits[i], r.Visit) {
			t.Errorf("visit %d differs after round trip:\n got %+v\nwant %+v", i, sb.Visits[i], r.Visit)
		}
	}
	if got, want := sb.Pages(), []string{
		"https://example.org/page-0", "https://example.org/page-1", "https://example.org/page-2",
	}; !reflect.DeepEqual(got, want) {
		t.Errorf("Pages() = %v, want %v", got, want)
	}
	if kc := sb.KeyCache(); kc.NumKeys() == 0 {
		t.Error("KeyCache has no keys")
	}
}

func TestBlockRoundTripEmptyFields(t *testing.T) {
	// A minimal visit: no requests, no cookies — decoded slices must be
	// nil (not empty) so JSON re-encoding omits them identically.
	v := &measurement.Visit{Site: "s.org", PageURL: "https://s.org/", Profile: "p", Success: true}
	sb, err := decodeBlock(encodeBlock("s.org", []VisitRow{{Seq: 0, Visit: v}}))
	if err != nil {
		t.Fatal(err)
	}
	got := sb.Visits[0]
	if got.Requests != nil || got.Cookies != nil {
		t.Errorf("empty slices decoded non-nil: requests=%v cookies=%v", got.Requests, got.Cookies)
	}
	if !reflect.DeepEqual(got, v) {
		t.Errorf("round trip: got %+v, want %+v", got, v)
	}
}

func TestStringInterning(t *testing.T) {
	rows := siteRows("intern.net", 0, 2, 3)
	sb, err := decodeBlock(encodeBlock("intern.net", rows))
	if err != nil {
		t.Fatal(err)
	}
	// Two visits to the same page must share one string header, not hold
	// equal copies — the retained-memory property of the format.
	a, b := sb.Visits[0].PageURL, sb.Visits[1].PageURL
	if a != b {
		t.Fatalf("expected same page, got %q and %q", a, b)
	}
	if unsafeStringData(a) != unsafeStringData(b) {
		t.Error("identical page URLs decoded to distinct string headers (not interned)")
	}
}

func unsafeStringData(s string) uintptr {
	return (*reflect.StringHeader)(reflect.ValueOf(&s).Elem().UnsafePointer()).Data
}

func writeFile(t *testing.T, sites map[string][]VisitRow) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	names := make([]string, 0, len(sites))
	for s := range sites {
		names = append(names, s)
	}
	// Writer demands ascending site order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, s := range names {
		if err := w.WriteSite(s, sites[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterScanReader(t *testing.T) {
	sites := map[string][]VisitRow{
		"a.org": siteRows("a.org", 0, 2, 2),
		"b.org": siteRows("b.org", 100, 1, 2),
		"c.org": siteRows("c.org", 200, 3, 1),
	}
	data := writeFile(t, sites)

	// Sequential scan sees every site in order with matching visits.
	var order []string
	idx, err := Scan(bytes.NewReader(data), func(sb *SiteBlock) error {
		order = append(order, sb.Site)
		want := sites[sb.Site]
		if len(sb.Visits) != len(want) {
			t.Errorf("site %s: %d visits, want %d", sb.Site, len(sb.Visits), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(sb.Visits[i], want[i].Visit) {
				t.Errorf("site %s visit %d differs", sb.Site, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"a.org", "b.org", "c.org"}) {
		t.Errorf("scan order %v", order)
	}
	if idx.Schema != SchemaVersion || len(idx.Blocks) != 3 {
		t.Fatalf("index: schema %d, %d blocks", idx.Schema, len(idx.Blocks))
	}
	if got := idx.TotalVisits(); got != 4+2+3 {
		t.Errorf("TotalVisits = %d", got)
	}

	// Random access through the footer index.
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i, meta := range r.Index().Blocks {
		if meta.Visits != len(sites[meta.Site]) {
			t.Errorf("block %d meta visits %d", i, meta.Visits)
		}
		for j := 1; j < len(meta.Pages); j++ {
			if meta.Pages[j-1] >= meta.Pages[j] {
				t.Errorf("block %d pages not sorted: %v", i, meta.Pages)
			}
		}
		sb, err := r.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Site != meta.Site {
			t.Errorf("block %d: decoded %q, index %q", i, sb.Site, meta.Site)
		}
		if !reflect.DeepEqual(sb.Pages(), meta.Pages) {
			t.Errorf("block %d: pages %v vs index %v", i, sb.Pages(), meta.Pages)
		}
	}
	if _, err := r.Block(3); err == nil {
		t.Error("Block(3) out of range succeeded")
	}
}

func TestWriterEmptyDataset(t *testing.T) {
	data := writeFile(t, nil)
	idx, err := Scan(bytes.NewReader(data), func(*SiteBlock) error {
		t.Error("fn called on empty dataset")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Blocks) != 0 {
		t.Errorf("%d blocks", len(idx.Blocks))
	}
	if _, err := OpenReader(bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatalf("OpenReader on empty dataset: %v", err)
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteSite("m.org", siteRows("m.org", 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSite("m.org", siteRows("m.org", 10, 1, 1)); err == nil {
		t.Error("duplicate site accepted")
	}

	w2 := NewWriter(&bytes.Buffer{})
	if err := w2.WriteSite("x.org", siteRows("y.org", 0, 1, 1)); err == nil {
		t.Error("mismatched visit site accepted")
	}

	w3 := NewWriter(&bytes.Buffer{})
	rows := siteRows("z.org", 5, 1, 2)
	rows[0].Seq, rows[1].Seq = rows[1].Seq, rows[0].Seq
	if err := w3.WriteSite("z.org", rows); err == nil {
		t.Error("out-of-sequence rows accepted")
	}
}

func TestWriterAnySiteOrder(t *testing.T) {
	// The streaming crawl emits blocks in site-list order, which for the
	// generated site names is not lexicographic.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	emitted := []string{"m.org", "a.org", "z.org"}
	for i, site := range emitted {
		if err := w.WriteSite(site, siteRows(site, uint64(i*10), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// The body scans in emission order...
	var bodyOrder []string
	idx, err := Scan(bytes.NewReader(data), func(sb *SiteBlock) error {
		bodyOrder = append(bodyOrder, sb.Site)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bodyOrder, emitted) {
		t.Errorf("body order %v, want %v", bodyOrder, emitted)
	}
	// ...but the footer index is sorted by site, so index consumers never
	// depend on emission order.
	var idxOrder []string
	for _, b := range idx.Blocks {
		idxOrder = append(idxOrder, b.Site)
	}
	if !reflect.DeepEqual(idxOrder, []string{"a.org", "m.org", "z.org"}) {
		t.Errorf("index order %v", idxOrder)
	}
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i, meta := range r.Index().Blocks {
		sb, err := r.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Site != meta.Site {
			t.Errorf("block %d: decoded %q, index %q", i, sb.Site, meta.Site)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := writeFile(t, map[string][]VisitRow{"a.org": siteRows("a.org", 0, 2, 2)})

	t.Run("flipped-payload-byte", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[len(Magic)+len(blockMagic)+6] ^= 0xff
		if _, err := Scan(bytes.NewReader(bad), func(*SiteBlock) error { return nil }); err == nil {
			t.Error("scan accepted corrupted block")
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("error does not mention checksum: %v", err)
		}
	})
	t.Run("bad-header", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[0] = 'X'
		if _, err := Scan(bytes.NewReader(bad), nil); err == nil {
			t.Error("scan accepted bad header magic")
		}
		if _, err := OpenReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Error("OpenReader accepted bad header magic")
		}
	})
	t.Run("truncated-tail", func(t *testing.T) {
		bad := data[:len(data)-4]
		if _, err := OpenReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Error("OpenReader accepted truncated file")
		}
	})
	t.Run("truncated-mid-block", func(t *testing.T) {
		bad := data[:len(Magic)+len(blockMagic)+3]
		if _, err := Scan(bytes.NewReader(bad), func(*SiteBlock) error { return nil }); err == nil {
			t.Error("scan accepted truncated block")
		}
	})
	t.Run("short-file", func(t *testing.T) {
		if _, err := OpenReader(bytes.NewReader(data[:8]), 8); err == nil {
			t.Error("OpenReader accepted 8-byte file")
		}
	})
}

func TestScanCallbackErrorAborts(t *testing.T) {
	data := writeFile(t, map[string][]VisitRow{
		"a.org": siteRows("a.org", 0, 1, 1),
		"b.org": siteRows("b.org", 10, 1, 1),
	})
	calls := 0
	wantErr := fmt.Errorf("stop here")
	_, err := Scan(bytes.NewReader(data), func(*SiteBlock) error {
		calls++
		return wantErr
	})
	if err != wantErr {
		t.Errorf("err = %v, want the callback's error verbatim", err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after erroring", calls)
	}
}

func TestSniff(t *testing.T) {
	data := writeFile(t, nil)
	if !Sniff(data) {
		t.Error("Sniff rejected a columnar file")
	}
	if Sniff([]byte(`{"site":"a.org"}`)) {
		t.Error("Sniff accepted JSONL")
	}
	if Sniff(data[:4]) {
		t.Error("Sniff accepted a too-short prefix")
	}
}
