package colstore

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzColBlockDecode throws arbitrary bytes at the block decoder. The
// decoder must never panic and never over-allocate (every count is
// validated against the remaining payload before allocation), and any
// payload it accepts must re-encode to the identical bytes — the decoder
// and encoder are exact inverses on the valid subset of inputs.
func FuzzColBlockDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(EncodeBlockPayload("seed.org", nil))
	f.Add(EncodeBlockPayload("seed.org", siteRows("seed.org", 0, 1, 1)))
	f.Add(EncodeBlockPayload("seed.org", siteRows("seed.org", 3, 2, 3)))
	big := EncodeBlockPayload("big.example", siteRows("big.example", 0, 4, 2))
	f.Add(big)
	// A corrupted valid payload seeds the interesting error paths.
	mut := bytes.Clone(big)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, payload []byte) {
		sb, err := DecodeBlockPayload(payload)
		if err != nil {
			return
		}
		rows := make([]VisitRow, len(sb.Visits))
		ascending := true
		for i := range sb.Visits {
			rows[i] = VisitRow{Seq: sb.Seqs[i], Visit: sb.Visits[i]}
			if i > 0 && sb.Seqs[i-1] >= sb.Seqs[i] {
				ascending = false
			}
		}
		// Seq deltas of zero decode fine but are unreachable from the
		// Writer (it enforces strictly ascending rows), so only strictly
		// ascending payloads are expected to round-trip canonically.
		if !ascending {
			return
		}
		re := EncodeBlockPayload(sb.Site, rows)
		if !bytes.Equal(re, payload) {
			sb2, err := DecodeBlockPayload(re)
			if err != nil {
				t.Fatalf("re-encoded payload fails to decode: %v", err)
			}
			// Non-canonical but semantically lossless inputs (e.g. an
			// over-long varint) may re-encode shorter; the decoded values
			// must still agree.
			if sb2.Site != sb.Site || !reflect.DeepEqual(sb2.Seqs, sb.Seqs) || !reflect.DeepEqual(sb2.Visits, sb.Visits) {
				t.Fatalf("decode→encode→decode is not value-stable")
			}
		}
	})
}
