package colstore

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Writer emits a columnar dataset file: header, one block per WriteSite
// call, and the index footer on Close. Each site may be written at most
// once, in any order — the streaming crawl emits blocks in site-list
// order, the batch writer in ascending site order — and each site's rows
// must carry ascending sequence numbers (the delta columns rely on it).
// Close sorts the footer's block list by site regardless of the order the
// body was written in, so index lookups never depend on emission order.
type Writer struct {
	bw     *bufio.Writer
	off    uint64
	blocks []BlockMeta
	seen   map[string]bool
	err    error
	closed bool
}

// NewWriter starts a columnar file on w by writing the header magic.
func NewWriter(w io.Writer) *Writer {
	cw := &Writer{bw: bufio.NewWriterSize(w, 1<<16), seen: make(map[string]bool)}
	if _, err := cw.bw.WriteString(Magic); err != nil {
		cw.err = fmt.Errorf("colstore: write header: %w", err)
	}
	cw.off = uint64(len(Magic))
	return cw
}

// WriteSite encodes one site's visit rows as a block. Rows must carry
// ascending sequence numbers and visits whose Site equals site.
func (w *Writer) WriteSite(site string, rows []VisitRow) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("colstore: WriteSite after Close")
	}
	if w.seen[site] {
		return w.setErr(fmt.Errorf("colstore: duplicate block for site %q", site))
	}
	w.seen[site] = true
	pages := make(map[string]bool, 16)
	for i, r := range rows {
		if r.Visit.Site != site {
			return w.setErr(fmt.Errorf("colstore: visit of site %q in block for %q", r.Visit.Site, site))
		}
		if i > 0 && rows[i-1].Seq >= r.Seq {
			return w.setErr(fmt.Errorf("colstore: site %q rows out of sequence order (%d then %d)", site, rows[i-1].Seq, r.Seq))
		}
		pages[r.Visit.PageURL] = true
	}
	payload := encodeBlock(site, rows)
	length, err := w.writeRecord(blockMagic, payload)
	if err != nil {
		return w.setErr(err)
	}
	meta := BlockMeta{
		Site:   site,
		Offset: w.off,
		Length: length,
		Visits: len(rows),
		Pages:  make([]string, 0, len(pages)),
	}
	for p := range pages {
		meta.Pages = append(meta.Pages, p)
	}
	sort.Strings(meta.Pages)
	w.blocks = append(w.blocks, meta)
	w.off += length
	return nil
}

// Close writes the index footer and tail and flushes. The Writer cannot
// be used afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	// The footer lists blocks in site order whatever order the body was
	// written in: readers look blocks up by site through the index's
	// offsets, never by body position.
	sort.Slice(w.blocks, func(a, b int) bool { return w.blocks[a].Site < w.blocks[b].Site })
	var idx buf
	idx.uvarint(SchemaVersion)
	idx.uvarint(uint64(len(w.blocks)))
	for _, b := range w.blocks {
		idx.str(b.Site)
		idx.uvarint(b.Offset)
		idx.uvarint(b.Length)
		idx.uvarint(uint64(b.Visits))
		idx.uvarint(uint64(len(b.Pages)))
		for _, p := range b.Pages {
			idx.str(p)
		}
	}
	indexOff := w.off
	if _, err := w.writeRecord(indexMagic, idx.bytes()); err != nil {
		return w.setErr(err)
	}
	var tail buf
	tail.u64le(indexOff)
	tail.b = append(tail.b, tailMagic...)
	if _, err := w.bw.Write(tail.bytes()); err != nil {
		return w.setErr(fmt.Errorf("colstore: write tail: %w", err))
	}
	if err := w.bw.Flush(); err != nil {
		return w.setErr(fmt.Errorf("colstore: flush: %w", err))
	}
	return nil
}

func (w *Writer) setErr(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}

// writeRecord writes magic + uvarint(len) + payload + crc32 and returns
// the record's total byte length.
func (w *Writer) writeRecord(magic string, payload []byte) (uint64, error) {
	var hdr buf
	hdr.b = append(hdr.b, magic...)
	hdr.uvarint(uint64(len(payload)))
	if _, err := w.bw.Write(hdr.bytes()); err != nil {
		return 0, fmt.Errorf("colstore: write record header: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return 0, fmt.Errorf("colstore: write record payload: %w", err)
	}
	var crc buf
	crc.b = binary32le(crc.b, crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(crc.bytes()); err != nil {
		return 0, fmt.Errorf("colstore: write record checksum: %w", err)
	}
	return uint64(len(hdr.b)) + uint64(len(payload)) + 4, nil
}

func binary32le(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
